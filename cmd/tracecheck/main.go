// Command tracecheck validates Chrome trace-event JSON: the file must
// parse, every worker timeline must have properly nested B/E pairs with
// monotonic timestamps, and no span may be left open. It prints a
// one-line summary and exits non-zero on any violation — the CI smoke
// job runs it against a trace of the example corpus.
//
// Usage:
//
//	tracecheck trace.json            # a file from `slc -trace`
//	tracecheck -response resp.json   # an slcd ?trace=1 response body
//
// With -response the argument is an slcd API response: the embedded
// per-request trace is extracted and validated, and the trace id is
// required (it is what links the trace to /debug/events and the span
// ring).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	response := flag.Bool("response", false, "treat the file as an slcd response body with an embedded ?trace=1 trace")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-response] trace.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	traceID := ""
	if *response {
		var resp struct {
			TraceID string          `json:"trace_id"`
			Trace   json.RawMessage `json:"trace"`
		}
		if err := json.Unmarshal(data, &resp); err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck: response body:", err)
			os.Exit(1)
		}
		if resp.TraceID == "" {
			fmt.Fprintln(os.Stderr, "tracecheck: response has no trace_id")
			os.Exit(1)
		}
		if len(resp.Trace) == 0 {
			fmt.Fprintln(os.Stderr, "tracecheck: response has no trace (was ?trace=1 set?)")
			os.Exit(1)
		}
		traceID = resp.TraceID
		data = resp.Trace
	}
	sum, err := obs.ValidateTrace(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	if traceID != "" {
		fmt.Printf("tracecheck: ok — trace %s: %d events, %d spans, %d instants, %d workers\n",
			traceID, sum.Events, sum.Spans, sum.Instants, sum.Workers)
		return
	}
	fmt.Printf("tracecheck: ok — %d events, %d spans, %d instants, %d workers\n",
		sum.Events, sum.Spans, sum.Instants, sum.Workers)
}
