// Command tracecheck validates a Chrome trace-event JSON file produced
// by `slc -trace`: the file must parse, every worker timeline must have
// properly nested B/E pairs with monotonic timestamps, and no span may
// be left open. It prints a one-line summary and exits non-zero on any
// violation — the CI smoke job runs it against a trace of the example
// corpus.
//
// Usage:
//
//	tracecheck trace.json
package main

import (
	"fmt"
	"os"

	"repro/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	sum, err := obs.ValidateTrace(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
	fmt.Printf("tracecheck: ok — %d events, %d spans, %d instants, %d workers\n",
		sum.Events, sum.Spans, sum.Instants, sum.Workers)
}
