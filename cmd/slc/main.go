// Command slc is the S-1 Lisp compiler driver: it compiles Lisp source
// files to S-1 assembly, optionally prints the §5-style optimizer
// transcript and the generated listings, runs top-level forms and a named
// entry function on the simulator, and reports the machine meters.
//
// Usage:
//
//	slc [flags] file.lisp [args...]
//
// Flags select phases (every phase defaults to on), mirror the paper's
// ablations, and control output:
//
//	slc -listing -transcript examples/testfn.lisp
//	slc -run main -stats prog.lisp 10 20
//	slc -no-tnbind -no-rep -listing prog.lisp
//	slc -run main -nofuse -notier prog.lisp      # plain decoded dispatch
//	slc -run main -hot-threshold 0 prog.lisp     # promote every function at load
//
// Observability flags (see DESIGN.md §8):
//
//	slc -trace out.json -jobs 4 prog.lisp     # Chrome trace-event JSON
//	slc -phase-stats -rule-stats 10 prog.lisp # aggregate compile reports
//	slc -run main -profile prog.lisp          # runtime cycle profile
//	slc -repl -debug-addr localhost:6060      # /metrics + pprof over HTTP
//
// Fault-tolerance flags (see DESIGN.md §9): a load reports every failed
// unit with its source position and still compiles the rest; the driver
// exits non-zero only when at least one unit failed.
//
//	slc -max-errors 50 prog.lisp              # store up to 50 diagnostics
//	slc -run main -max-steps 1000000 -max-heap 65536 prog.lisp
//	slc -fault 'optimize:defun=exptl:panic' -jobs 8 prog.lisp
//
// Durability flags (see DESIGN.md §11):
//
//	slc -cache-dir /tmp/slc-cache prog.lisp   # crash-safe durable compile cache
//	slc -gc-stress -run main prog.lisp        # GC before every allocation
//	slc -image-hash prog.lisp                 # print the machine-image fingerprint
//
// Snapshot flags (see DESIGN.md §14): a snapshot is a versioned,
// checksummed serialization of the whole compiled machine; restoring it
// reproduces the image byte-for-byte (verified against the recorded
// fingerprint) without recompiling. A snapshot that fails verification
// degrades to a cold compile with a warning, never a wrong image.
//
//	slc -snapshot-out boot.snap prelude.lisp  # compile once, snapshot
//	slc -snapshot-in boot.snap -run main      # warm boot, no compile
//	slc -snapshot-in boot.snap more.lisp      # warm boot, load more on top
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"sort"

	"repro/internal/codegen"
	"repro/internal/compilecache"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/obs"
	"repro/internal/s1"
	"repro/internal/sexp"
	"repro/internal/snapshot"
)

// tierThreshold maps the -hot-threshold flag onto core.Options
// semantics: the flag's 0 means "promote everything at load", which
// core expresses as a negative threshold (0 there keeps the machine
// default).
func tierThreshold(flagVal int64) int64 {
	if flagVal <= 0 {
		return -1
	}
	return flagVal
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		noOpt      = flag.Bool("no-opt", false, "disable the source-level optimizer")
		noTN       = flag.Bool("no-tnbind", false, "disable TNBIND register allocation")
		noRep      = flag.Bool("no-rep", false, "disable representation analysis")
		noPdl      = flag.Bool("no-pdl", false, "disable pdl-number stack allocation")
		noCache    = flag.Bool("no-spec-cache", false, "disable special-variable lookup caching")
		noFuse     = flag.Bool("nofuse", false, "disable peephole superinstruction fusion in the simulator")
		noTier     = flag.Bool("notier", false, "disable tiered execution (hot-function re-fusion and block lowering)")
		hotThresh  = flag.Int64("hot-threshold", s1.DefaultHotThreshold, "invocations before a function is re-optimized (0 = promote everything at load)")
		listing    = flag.Bool("listing", false, "print assembly listings for every function")
		transcript = flag.Bool("transcript", false, "print the source-to-source transformation transcript")
		stats      = flag.Bool("stats", false, "print machine meters after execution")
		runFn      = flag.String("run", "", "after loading, call this function with the remaining arguments")
		interpret  = flag.Bool("interp", false, "run -run through the interpreter instead of compiled code")
		replMode   = flag.Bool("repl", false, "start an interactive compiled REPL (after loading files, if any)")
		useCache   = flag.Bool("cache", false, "memoize compiled functions by source content (re-loads of a seen defun skip the middle end)")
		cacheDir   = flag.String("cache-dir", "", "durable on-disk compile cache directory (crash-safe; shareable between processes)")
		gcStress   = flag.Bool("gc-stress", false, "force a garbage collection before every runtime allocation (invariant shakeout)")
		gcStressM  = flag.Bool("gc-stress-minor", false, "force a minor collection before every runtime allocation (write-barrier shakeout)")
		gcNoGen    = flag.Bool("gc-nogen", false, "disable generational GC: every automatic collection is a full mark-sweep")
		gcMinorBud = flag.Duration("gc-minor-budget", 0, "escalate to a full collection after a minor GC pause exceeds this budget (0 = none)")
		imageHash  = flag.Bool("image-hash", false, "print the machine-image fingerprint after loading")
		snapOut    = flag.String("snapshot-out", "", "after a clean load, write a versioned machine snapshot to this file")
		snapIn     = flag.String("snapshot-in", "", "boot from this machine snapshot instead of cold compiling (verified; falls back to cold compile on damage or mismatch)")
		jobs       = flag.Int("jobs", 0, "concurrent compile workers (0 = GOMAXPROCS, 1 = sequential)")
		traceOut   = flag.String("trace", "", "write a Chrome trace-event JSON file of the compile pipeline (load in Perfetto)")
		phaseStats = flag.Bool("phase-stats", false, "print an aggregated per-phase compile-time table")
		ruleStats  = flag.Int("rule-stats", 0, "print the top-N optimizer rules by fire count")
		profile    = flag.Bool("profile", false, "profile simulator execution (per-opcode and per-function cycle attribution)")
		folded     = flag.String("folded", "", "with -profile, also write collapsed-stack flamegraph lines to this file")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics (Prometheus text) and /debug/pprof on this address")
		maxErrors  = flag.Int("max-errors", 20, "store at most this many error diagnostics per load (-1 = unlimited; failures past the cap are still counted)")
		maxSteps   = flag.Int64("max-steps", 0, "bound total simulator instructions (0 = machine default)")
		maxHeap    = flag.Int64("max-heap", 0, "bound live simulator heap words; exhaustion after GC is a runtime error (0 = unlimited)")
		faultSpec  = flag.String("fault", "", "fault-injection plan, e.g. 'optimize:defun=exptl:panic;cache:*:corrupt' (default $SLC_FAULT)")
		optWatch   = flag.Duration("opt-watchdog", 0, "wall-clock budget for each unit's optimizer fixpoint (0 = none)")
		logJSON    = flag.Bool("log-json", false, "emit informational stderr messages as structured JSON (slog)")
	)
	flag.Parse()

	var handler slog.Handler
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	} else {
		handler = slog.NewTextHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	var faultPlan *diag.Plan
	{
		var err error
		if *faultSpec != "" {
			faultPlan, err = diag.ParsePlan(*faultSpec)
		} else {
			faultPlan, err = diag.PlanFromEnv()
		}
		if err != nil {
			return err
		}
	}
	// Positional arguments are [file.lisp] [run-args...]. The source file
	// is optional when booting from a snapshot (or into a REPL): with
	// -snapshot-in, a first argument that is not an existing file is
	// taken as the first -run argument instead.
	runArgs := flag.Args()
	var src []byte
	if flag.NArg() >= 1 {
		first := flag.Arg(0)
		if _, err := os.Stat(first); err == nil || *snapIn == "" {
			var rerr error
			if src, rerr = os.ReadFile(first); rerr != nil {
				return rerr
			}
			runArgs = runArgs[1:]
		}
	} else if !*replMode && *snapIn == "" {
		flag.Usage()
		return fmt.Errorf("need a source file (or -repl / -snapshot-in)")
	}

	opts := codegen.DefaultOptions()
	opts.Optimize = !*noOpt
	opts.UseTN = !*noTN
	opts.RepAnalysis = !*noRep
	opts.PdlNumbers = !*noPdl
	opts.SpecialCaching = !*noCache

	sysOpts := core.Options{Codegen: &opts, Out: os.Stdout,
		Cache: *useCache, Jobs: *jobs,
		MaxErrors: *maxErrors, Fault: faultPlan,
		MaxSteps: *maxSteps, MaxHeapWords: *maxHeap,
		OptWatchdog: *optWatch, NoFuse: *noFuse,
		NoTier: *noTier, HotThreshold: tierThreshold(*hotThresh),
		GCStress: *gcStress, GCStressMinor: *gcStressM,
		GCNoGen: *gcNoGen, GCMinorBudget: *gcMinorBud}
	if *cacheDir != "" {
		d, err := compilecache.OpenDisk(*cacheDir, faultPlan)
		if err != nil {
			return err
		}
		defer d.Close()
		sysOpts.DiskCache = d
	}
	if *transcript {
		sysOpts.OptimizerLog = os.Stdout
	}
	if *traceOut != "" || *phaseStats || *ruleStats > 0 {
		sysOpts.Obs = obs.NewRecorder()
	}
	// The flight recorder is always on (bounded, lock-cheap): GC pauses,
	// tier promotions and cache traffic from this process land in it and
	// serve at /debug/events when -debug-addr is up.
	flight := obs.NewFlight(obs.DefaultFlightSize)
	sysOpts.Flight = flight
	// Boot: from a verified snapshot when -snapshot-in names a usable
	// one, cold otherwise. Snapshot damage is never fatal as long as
	// there is something to cold-compile instead.
	var sys *core.System
	if *snapIn != "" {
		if snap, err := snapshot.ReadFile(*snapIn); err != nil {
			fmt.Fprintf(os.Stderr, "slc: snapshot %s unusable (%v); cold compiling\n", *snapIn, err)
		} else if restored, err := core.RestoreSystem(sysOpts, snap); err != nil {
			fmt.Fprintf(os.Stderr, "slc: snapshot %s failed verification (%v); cold compiling\n", *snapIn, err)
		} else {
			sys = restored
		}
		if sys == nil && len(src) == 0 && !*replMode {
			return fmt.Errorf("snapshot %s unusable and no source file to cold compile", *snapIn)
		}
	}
	if sys == nil {
		sys = core.NewSystem(sysOpts)
	}
	if *profile || *folded != "" {
		sys.EnableProfile()
	}
	if *debugAddr != "" {
		reg := obs.NewRegistry().AddMetrics(sys.MetricsSnapshot).SetFlight(flight)
		srv, err := obs.StartDebugServer(*debugAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		log.Info("debug server up", "addr", "http://"+srv.Addr(),
			"endpoints", "/metrics /debug/events /debug/pprof")
	}
	// Load with error accumulation: every good unit compiles, every bad
	// one is reported with its source position, and failure of the load
	// is decided at the end so listings/stats of the survivors still
	// print.
	var loadErrors int
	if len(src) > 0 {
		list := sys.LoadStringDiag(string(src))
		for _, d := range list.All() {
			fmt.Fprintf(os.Stderr, "%s:%s\n", flag.Arg(0), d.Error())
		}
		if n := list.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "%s: %d more error(s) past -max-errors\n", flag.Arg(0), n)
		}
		loadErrors = list.Errors()
	}

	if *imageHash {
		fmt.Println(sys.Machine.ImageFingerprint())
	}

	if *snapOut != "" {
		if loadErrors > 0 {
			fmt.Fprintf(os.Stderr, "slc: not writing %s: load had errors\n", *snapOut)
		} else {
			snap, err := sys.Snapshot()
			if err != nil {
				return err
			}
			if err := snapshot.WriteFile(*snapOut, snap); err != nil {
				return err
			}
			log.Info("snapshot written", "file", *snapOut, "image", snap.Meta.ImageHash)
		}
	}

	if *listing {
		names := make([]string, 0, len(sys.Defs))
		for n := range sys.Defs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			l, err := sys.Listing(n)
			if err != nil {
				return err
			}
			fmt.Println(l)
		}
	}

	if *runFn != "" {
		args := make([]sexp.Value, 0, len(runArgs))
		for _, a := range runArgs {
			v, err := sexp.ReadOne(a)
			if err != nil {
				return fmt.Errorf("argument %q: %w", a, err)
			}
			args = append(args, v)
		}
		var v sexp.Value
		var err error
		if *interpret {
			v, err = sys.Interpret(*runFn, args...)
		} else {
			v, err = sys.Call(*runFn, args...)
		}
		if err != nil {
			return err
		}
		fmt.Println(sexp.Print(v))
	}

	if *stats {
		sys.WriteMeters(os.Stdout, *interpret)
	}
	if *phaseStats {
		sys.Obs.WritePhaseStats(os.Stdout)
	}
	if *ruleStats > 0 {
		sys.Obs.WriteTopRules(os.Stdout, *ruleStats)
	}
	if *profile {
		sys.WriteProfile(os.Stdout)
	}
	if *folded != "" {
		f, err := os.Create(*folded)
		if err != nil {
			return err
		}
		sys.WriteCollapsed(f)
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := sys.Obs.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *replMode {
		return repl(sys, os.Stdin, os.Stdout)
	}
	if loadErrors > 0 {
		return fmt.Errorf("%d compilation unit(s) failed", loadErrors)
	}
	return nil
}
