// Command slc is the S-1 Lisp compiler driver: it compiles Lisp source
// files to S-1 assembly, optionally prints the §5-style optimizer
// transcript and the generated listings, runs top-level forms and a named
// entry function on the simulator, and reports the machine meters.
//
// Usage:
//
//	slc [flags] file.lisp [args...]
//
// Flags select phases (every phase defaults to on), mirror the paper's
// ablations, and control output:
//
//	slc -listing -transcript examples/testfn.lisp
//	slc -run main -stats prog.lisp 10 20
//	slc -no-tnbind -no-rep -listing prog.lisp
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/sexp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		noOpt      = flag.Bool("no-opt", false, "disable the source-level optimizer")
		noTN       = flag.Bool("no-tnbind", false, "disable TNBIND register allocation")
		noRep      = flag.Bool("no-rep", false, "disable representation analysis")
		noPdl      = flag.Bool("no-pdl", false, "disable pdl-number stack allocation")
		noCache    = flag.Bool("no-spec-cache", false, "disable special-variable lookup caching")
		listing    = flag.Bool("listing", false, "print assembly listings for every function")
		transcript = flag.Bool("transcript", false, "print the source-to-source transformation transcript")
		stats      = flag.Bool("stats", false, "print machine meters after execution")
		runFn      = flag.String("run", "", "after loading, call this function with the remaining arguments")
		interpret  = flag.Bool("interp", false, "run -run through the interpreter instead of compiled code")
		replMode   = flag.Bool("repl", false, "start an interactive compiled REPL (after loading files, if any)")
		useCache   = flag.Bool("cache", false, "memoize compiled functions by source content (re-loads of a seen defun skip the middle end)")
		jobs       = flag.Int("jobs", 0, "concurrent compile workers (0 = GOMAXPROCS, 1 = sequential)")
	)
	flag.Parse()
	var src []byte
	if flag.NArg() >= 1 {
		var err error
		if src, err = os.ReadFile(flag.Arg(0)); err != nil {
			return err
		}
	} else if !*replMode {
		flag.Usage()
		return fmt.Errorf("need a source file (or -repl)")
	}

	opts := codegen.DefaultOptions()
	opts.Optimize = !*noOpt
	opts.UseTN = !*noTN
	opts.RepAnalysis = !*noRep
	opts.PdlNumbers = !*noPdl
	opts.SpecialCaching = !*noCache

	sysOpts := core.Options{Codegen: &opts, Out: os.Stdout,
		Cache: *useCache, Jobs: *jobs}
	if *transcript {
		sysOpts.OptimizerLog = os.Stdout
	}
	sys := core.NewSystem(sysOpts)
	if err := sys.LoadString(string(src)); err != nil {
		return err
	}

	if *listing {
		names := make([]string, 0, len(sys.Defs))
		for n := range sys.Defs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			l, err := sys.Listing(n)
			if err != nil {
				return err
			}
			fmt.Println(l)
		}
	}

	if *runFn != "" {
		args := make([]sexp.Value, 0, flag.NArg()-1)
		for _, a := range flag.Args()[1:] {
			v, err := sexp.ReadOne(a)
			if err != nil {
				return fmt.Errorf("argument %q: %w", a, err)
			}
			args = append(args, v)
		}
		var v sexp.Value
		var err error
		if *interpret {
			v, err = sys.Interpret(*runFn, args...)
		} else {
			v, err = sys.Call(*runFn, args...)
		}
		if err != nil {
			return err
		}
		fmt.Println(sexp.Print(v))
	}

	if *stats {
		printStats(sys, *interpret)
	}
	if *replMode {
		return repl(sys, os.Stdin, os.Stdout)
	}
	return nil
}

func printStats(sys *core.System, interpreted bool) {
	s := sys.Stats()
	fmt.Println(";; --- machine meters ---")
	fmt.Printf(";; cycles:            %d\n", s.Cycles)
	fmt.Printf(";; instructions:      %d\n", s.Instrs)
	fmt.Printf(";; calls / tail:      %d / %d\n", s.Calls, s.TailCalls)
	fmt.Printf(";; heap words:        %d (%d conses, %d flonums, %d envs)\n",
		s.HeapWords, s.ConsAllocs, s.FlonumAllocs, s.EnvAllocs)
	fmt.Printf(";; max stack depth:   %d\n", s.MaxStack)
	fmt.Printf(";; certifications:    %d (%d copies)\n", s.Certifies, s.CertifyCopies)
	fmt.Printf(";; special lookups:   %d (%d probe steps)\n",
		s.SpecialLookups, s.SpecialSearchSteps)
	if s.CompileCacheHits+s.CompileCacheMisses > 0 {
		fmt.Printf(";; compile cache:     %d hits / %d misses\n",
			s.CompileCacheHits, s.CompileCacheMisses)
	}
	if interpreted {
		is := sys.Interp.Stats
		fmt.Printf(";; interpreter:       %d calls, %d builtins, %d conses\n",
			is.Calls, is.BuiltinCalls, is.Conses)
	}
}
