package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/compilecache"
)

// multiProcSrc is the corpus both processes compile; it exercises
// closures, loops and constants so the durable entries are non-trivial.
const multiProcSrc = `
(defun mp-add (x y) (+ x y))
(defun mp-sq (x) (* x x))
(defun mp-exptl (b n a) (if (= n 0) a (mp-exptl b (- n 1) (* a b))))
(defun mp-make-adder (k) (function (lambda (x) (+ x k))))
(defun mp-adder-test (k x) (funcall (mp-make-adder k) x))
(defun mp-sum (n)
  (prog (i s)
    (setq i 0 s 0)
   loop
    (if (> i n) (return s) nil)
    (setq s (+ s i) i (+ i 1))
    (go loop)))
(defun mp-consts (x) (list x '(a b c) "tag" 3.5))
(defun mp-rest (x &rest r) (cons x r))
`

// buildSLC compiles the driver binary once per test into a temp dir.
func buildSLC(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "slc")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// TestMultiProcessCacheConsistency is the cross-process acceptance test
// for the durable cache: two slc processes compiling the same corpus
// into the same -cache-dir simultaneously must produce byte-identical
// images (same -image-hash as a cache-less compile), and the cache
// directory must come out consistent — every entry verifiable, nothing
// quarantined by a subsequent recovery pass.
func TestMultiProcessCacheConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs child processes")
	}
	bin := buildSLC(t)
	srcFile := filepath.Join(t.TempDir(), "corpus.lisp")
	if err := os.WriteFile(srcFile, []byte(multiProcSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(t.TempDir(), "cache")

	// Reference fingerprint from a compile with no cache at all.
	ref, err := exec.Command(bin, "-image-hash", srcFile).Output()
	if err != nil {
		t.Fatalf("reference compile: %v", err)
	}
	want := strings.TrimSpace(string(ref))
	if want == "" {
		t.Fatal("empty reference fingerprint")
	}

	// Rounds of concurrent pairs: round 0 races two cold writers, later
	// rounds race readers against writers of the same keys.
	for round := 0; round < 3; round++ {
		var wg sync.WaitGroup
		outs := make([]string, 2)
		errs := make([]error, 2)
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				out, err := exec.Command(bin, "-cache-dir", cacheDir, "-image-hash", srcFile).Output()
				outs[i], errs[i] = strings.TrimSpace(string(out)), err
			}(i)
		}
		wg.Wait()
		for i := 0; i < 2; i++ {
			if errs[i] != nil {
				t.Fatalf("round %d process %d: %v", round, i, errs[i])
			}
			if outs[i] != want {
				t.Errorf("round %d process %d: image %s differs from cache-less compile %s",
					round, i, outs[i], want)
			}
		}
	}

	// The directory must be consistent: recovery finds nothing to
	// quarantine and every surviving entry verifies.
	d, err := compilecache.OpenDisk(cacheDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	st := d.Stats()
	if st.Quarantined != 0 {
		t.Errorf("recovery quarantined %d entries after concurrent access", st.Quarantined)
	}

	// A warm run over the consistent cache must replay, not recompile.
	out, err := exec.Command(bin, "-cache-dir", cacheDir, "-image-hash", "-run", "mp-exptl", srcFile, "2", "10", "1").Output()
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(out)), "\n")
	if len(lines) != 2 || lines[0] != want || lines[1] != "1024" {
		t.Errorf("warm run output = %q (want fingerprint %s then 1024)", out, want)
	}
}
