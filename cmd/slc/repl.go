package main

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
	"repro/internal/sexp"
)

// repl runs a read-compile-run-print loop: every form typed is compiled
// to S-1 code and executed on the simulator. Definitions accumulate;
// `:listing f` prints a function's assembly, `:stats` the meters,
// `:reset-stats` clears them, `:profile` prints the runtime cycle
// profile (enabling the profiler on first use), `:quit` exits.
func repl(sys *core.System, in io.Reader, out io.Writer) error {
	fmt.Fprintln(out, ";;; S-1 Lisp — compiled REPL (every form runs on the simulator)")
	fmt.Fprintln(out, ";;; :listing <fn>  :stats  :reset-stats  :profile  :quit")
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	prompt := func() {
		if pending.Len() == 0 {
			fmt.Fprint(out, "slc> ")
		} else {
			fmt.Fprint(out, "...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if pending.Len() == 0 && strings.HasPrefix(trimmed, ":") {
			if done := replCommand(sys, out, trimmed); done {
				return nil
			}
			prompt()
			continue
		}
		pending.WriteString(line)
		pending.WriteString("\n")
		src := pending.String()
		if !balanced(src) {
			prompt()
			continue
		}
		pending.Reset()
		if strings.TrimSpace(src) == "" {
			prompt()
			continue
		}
		// The REPL survives anything the load path can report — syntax
		// errors, failed units, runtime errors — printing each diagnostic
		// and carrying on with the next input.
		v, list := sys.EvalStringDiag(src)
		for _, d := range list.All() {
			fmt.Fprintln(out, ";;", d.Error())
		}
		if n := list.Dropped(); n > 0 {
			fmt.Fprintf(out, ";; %d more error(s) past -max-errors\n", n)
		}
		if !list.HasErrors() {
			fmt.Fprintln(out, sexp.Print(v))
		}
		prompt()
	}
	fmt.Fprintln(out)
	return sc.Err()
}

func replCommand(sys *core.System, out io.Writer, cmd string) (quit bool) {
	fields := strings.Fields(cmd)
	switch fields[0] {
	case ":quit", ":q":
		return true
	case ":stats":
		sys.WriteMeters(out, false)
	case ":reset-stats":
		sys.ResetMeters()
		fmt.Fprintln(out, ";; meters reset")
	case ":profile":
		// First use enables the profiler; cycles spent before that are
		// simply not attributed.
		if sys.Machine.Profile() == nil {
			sys.EnableProfile()
			fmt.Fprintln(out, ";; profiler enabled; run some forms and :profile again")
			return false
		}
		sys.WriteProfile(out)
	case ":listing":
		if len(fields) != 2 {
			fmt.Fprintln(out, ";; usage: :listing <function>")
			return false
		}
		l, err := sys.Listing(fields[1])
		if err != nil {
			fmt.Fprintln(out, ";; error:", err)
			return false
		}
		fmt.Fprintln(out, l)
	default:
		fmt.Fprintln(out, ";; unknown command", fields[0])
	}
	return false
}

// balanced reports whether every open paren is closed (strings and
// comments respected).
func balanced(src string) bool {
	depth := 0
	inStr := false
	inComment := false
	for i := 0; i < len(src); i++ {
		c := src[i]
		switch {
		case inComment:
			if c == '\n' {
				inComment = false
			}
		case inStr:
			if c == '\\' {
				i++
			} else if c == '"' {
				inStr = false
			}
		case c == '"':
			inStr = true
		case c == ';':
			inComment = true
		case c == '(':
			depth++
		case c == ')':
			depth--
		}
	}
	return depth <= 0 && !inStr
}
