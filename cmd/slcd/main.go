// Command slcd is the long-running compile/eval daemon: a local
// HTTP/JSON service that compiles Lisp source and runs compiled
// functions on the S-1 simulator, request by request, without dying.
//
// Each request runs in a fresh per-request system under its own step
// and heap budgets with a context deadline; compile errors, runtime
// faults, panics and timeouts all degrade to structured JSON
// diagnostics while the daemon keeps serving. Admission is bounded:
// past -workers executing plus -queue-depth waiting requests, slcd
// sheds with 429 + Retry-After. SIGINT/SIGTERM drain in-flight
// requests (bounded by -drain-timeout) before exit.
//
// Scheduling (DESIGN.md §16): by default requests multiplex over an
// M:N machine scheduler (-sched-mode, $SLCD_SCHED_MODE) — at most
// -sched-workers machines execute at once, everyone else parks at
// simulator safepoints, and slots are granted by deficit round-robin
// over tenants so a flooding tenant cannot starve a polite one. With
// -gas-rate set, each tenant gets a gas budget in simulated S-1 cycles
// (burst -gas-burst); exhausting it is a typed 429, not a timeout.
// POST /session creates a resident session — a machine that keeps its
// definitions and heap between requests ({"session": id} on /run
// resumes it) — bounded by -max-sessions and expired after
// -session-idle-ttl idle. With -snapshot-dir, a clean drain checkpoints
// every session and the next boot restores them; after a hard kill the
// manifest reports them lost on /readyz (degraded, still serving).
//
// The durable compile cache (-cache-dir) is shared across requests and
// across processes: it is crash-safe (temp-file + atomic rename,
// per-entry checksums, flock) and self-healing (startup recovery
// quarantines torn entries; a circuit breaker shunts it after repeated
// corruption). See DESIGN.md §11.
//
// Warm boot (DESIGN.md §14): with -prelude, every request's system gets
// that library pre-loaded; with -snapshot-dir, the compiled prelude is
// served from a crash-safe verified snapshot — the daemon restores it
// at startup instead of recompiling, writes a checkpoint after a cold
// prelude compile, and re-checkpoints on SIGUSR1 or POST
// /admin/checkpoint. A missing, stale or corrupt snapshot degrades to a
// cold compile (corrupt files are quarantined), never a crash.
//
// Observability (DESIGN.md §13): every request gets a W3C traceparent
// (accepted or generated) that links its daemon span, compile phases,
// tier promotions and GC pauses; an always-on flight recorder of the
// last -events runtime events serves at /debug/events and dumps as
// JSON on SIGQUIT or panic; request/phase/GC latency histograms export
// on /metrics; logs are structured JSON on stderr (trace-correlated).
//
// Usage:
//
//	slcd -addr localhost:7171 -cache-dir /tmp/slc-cache -debug-addr localhost:6060
//
//	curl -s localhost:7171/run -d '{
//	  "source": "(defun exptl (b n a) (if (= n 0) a (exptl b (- n 1) (* a b))))",
//	  "fn": "exptl", "args": ["2", "10", "1"]
//	}'
//
// Health, readiness and the request-span ring are served off
// -debug-addr: /healthz, /readyz, /requests, plus /metrics,
// /debug/events and /debug/pprof. Append ?trace=1 to /run or /compile
// for a per-request Chrome trace in the response.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/compilecache"
	"repro/internal/daemon"
	"repro/internal/diag"
	"repro/internal/obs"
	"repro/internal/s1"
	"repro/internal/snapshot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "slcd:", err)
		os.Exit(1)
	}
}

// tierThreshold maps the -hot-threshold flag onto daemon.Config
// semantics: the flag's 0 means "promote everything at load", which the
// config expresses as a negative threshold (0 there keeps the machine
// default).
func tierThreshold(flagVal int64) int64 {
	if flagVal <= 0 {
		return -1
	}
	return flagVal
}

func run() error {
	var (
		addr       = flag.String("addr", "localhost:7171", "API listen address")
		workers    = flag.Int("workers", 0, "concurrently executing requests (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue-depth", 16, "requests allowed to wait for a worker before shedding")
		reqTimeout = flag.Duration("req-timeout", 10*time.Second, "per-request deadline")
		drainTime  = flag.Duration("drain-timeout", 30*time.Second, "bound on draining in-flight requests at shutdown")
		maxSteps   = flag.Int64("max-steps", 50_000_000, "per-request simulator instruction budget (0 = machine default)")
		maxHeap    = flag.Int64("max-heap", 4<<20, "per-request live heap word budget (0 = unlimited)")
		cacheDir   = flag.String("cache-dir", "", "durable on-disk compile cache directory shared across requests and processes")
		preludeF   = flag.String("prelude", "", "Lisp source file loaded into every request's system (the daemon's standard library)")
		snapDir    = flag.String("snapshot-dir", "", "durable machine-snapshot directory for warm boot and session durability across restarts")
		faultSpec  = flag.String("fault", "", "fault-injection plan, e.g. 'disk:*:cache-write;request:unit=slow:deadline' (default $SLC_FAULT)")
		optWatch   = flag.Duration("opt-watchdog", 5*time.Second, "wall-clock budget for each unit's optimizer fixpoint (0 = none)")
		noTier     = flag.Bool("notier", false, "disable tiered execution in per-request machines")
		gcNoGen    = flag.Bool("gc-nogen", false, "disable generational GC in per-request machines (every collection full)")
		gcMinorBud = flag.Duration("gc-minor-budget", 0, "escalate to a full collection after a minor GC pause exceeds this budget (0 = none)")
		hotThresh  = flag.Int64("hot-threshold", s1.DefaultHotThreshold, "invocations before a function is re-optimized (0 = promote everything at load)")
		schedMode  = flag.String("sched-mode", "", "machine scheduler mode: on, off, or stress (default $SLCD_SCHED_MODE, then on)")
		schedWork  = flag.Int("sched-workers", 0, "concurrently executing machines under the scheduler (0 = -workers)")
		gasRate    = flag.Int64("gas-rate", 0, "per-tenant gas refill in simulated S-1 cycles per second (0 = gas metering off)")
		gasBurst   = flag.Int64("gas-burst", 0, "per-tenant gas bucket capacity in cycles (0 = 10x -gas-rate)")
		maxSess    = flag.Int("max-sessions", 10000, "resident sessions held at once")
		sessTTL    = flag.Duration("session-idle-ttl", 30*time.Minute, "expire sessions idle longer than this (0 = never)")
		debugAddr  = flag.String("debug-addr", "", "serve /healthz, /readyz, /requests, /metrics, /debug/events and /debug/pprof on this address")
		events     = flag.Int("events", obs.DefaultFlightSize, "flight recorder capacity (most recent events kept)")
		logText    = flag.Bool("log-text", false, "log human-readable text instead of JSON")
	)
	flag.Parse()

	var handler slog.Handler
	if *logText {
		handler = slog.NewTextHandler(os.Stderr, nil)
	} else {
		handler = slog.NewJSONHandler(os.Stderr, nil)
	}
	log := slog.New(handler)

	flight := obs.NewFlight(*events)
	// A daemon panic that escapes everything still leaves a post-mortem:
	// the flight recorder's recent events go to stderr before the crash
	// propagates.
	defer func() {
		if r := recover(); r != nil {
			log.Error("panic, dumping flight recorder", "panic", fmt.Sprint(r))
			flight.WriteJSON(os.Stderr, obs.Filter{})
			panic(r)
		}
	}()

	var faultPlan *diag.Plan
	{
		var err error
		if *faultSpec != "" {
			faultPlan, err = diag.ParsePlan(*faultSpec)
		} else {
			faultPlan, err = diag.PlanFromEnv()
		}
		if err != nil {
			return err
		}
	}
	if faultPlan != nil {
		faultPlan.OnFire = func(kind, phase, unit string) {
			flight.Record(obs.Event{Kind: obs.EvFault, Unit: unit,
				Msg: fmt.Sprintf("%s fault at %s", kind, phase)})
		}
	}

	cfg := daemon.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		ReqTimeout:     *reqTimeout,
		MaxSteps:       *maxSteps,
		MaxHeapWords:   *maxHeap,
		OptWatchdog:    *optWatch,
		Fault:          faultPlan,
		NoTier:         *noTier,
		HotThreshold:   tierThreshold(*hotThresh),
		GCNoGen:        *gcNoGen,
		GCMinorBudget:  *gcMinorBud,
		SchedMode:      *schedMode,
		SchedWorkers:   *schedWork,
		GasRate:        *gasRate,
		GasBurst:       *gasBurst,
		MaxSessions:    *maxSess,
		SessionIdleTTL: *sessTTL,
		Flight:         flight,
		Logger:         log,
	}
	if *cacheDir != "" {
		d, err := compilecache.OpenDisk(*cacheDir, faultPlan)
		if err != nil {
			return err
		}
		defer d.Close()
		d.SetEventHook(func(kind, name string) {
			flight.Record(obs.Event{Kind: kind, Unit: name})
		})
		cfg.Disk = d
		log.Info("durable cache open", "dir", *cacheDir)
	}
	if *preludeF != "" {
		b, err := os.ReadFile(*preludeF)
		if err != nil {
			return err
		}
		cfg.Prelude = string(b)
	}
	if *snapDir != "" {
		// Without -prelude the store still backs session durability
		// (drain-time checkpoints + the session manifest); warm boot just
		// has nothing to restore.
		st, err := snapshot.OpenStore(*snapDir, faultPlan)
		if err != nil {
			return err
		}
		defer st.Close()
		cfg.Snapshots = st
		log.Info("snapshot store open", "dir", *snapDir)
	}
	srv := daemon.New(cfg)
	// Arm warm boot: restore the pinned snapshot or cold compile the
	// prelude and checkpoint. Only an uncompilable prelude is fatal.
	if err := srv.Boot(); err != nil {
		return err
	}

	if *debugAddr != "" {
		reg := obs.NewRegistry()
		srv.Register(reg)
		dbg, err := obs.StartDebugServer(*debugAddr, reg, srv.RegisterDebug)
		if err != nil {
			return err
		}
		defer dbg.Close()
		log.Info("debug server up", "addr", "http://"+dbg.Addr(),
			"endpoints", "/healthz /readyz /requests /metrics /debug/events /debug/pprof")
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	log.Info("slcd serving", "addr", "http://"+ln.Addr().String(),
		"endpoints", "POST /compile, POST /run, POST/GET/DELETE /session")

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM, syscall.SIGQUIT, syscall.SIGUSR1)
loop:
	for {
		select {
		case sig := <-sigc:
			switch sig {
			case syscall.SIGUSR1:
				// Operator-requested re-checkpoint (the signal spelling of
				// POST /admin/checkpoint); failure logs and keeps serving.
				if err := srv.Checkpoint(); err != nil {
					log.Warn("SIGUSR1 checkpoint failed", "err", err.Error())
				} else {
					log.Info("SIGUSR1 checkpoint written")
				}
				continue
			case syscall.SIGQUIT:
				// Post-mortem on demand: dump the flight recorder as JSON and
				// exit non-zero (mirroring the Go runtime's SIGQUIT convention
				// of "crash with state", minus the goroutine dump).
				log.Error("SIGQUIT: dumping flight recorder")
				fmt.Fprintln(os.Stderr, ";; flight recorder dump")
				flight.WriteJSON(os.Stderr, obs.Filter{})
				hs.Close()
				os.Exit(2)
			}
			log.Info("draining in-flight requests", "signal", sig.String())
			break loop
		case err := <-errc:
			return err
		}
	}

	// Drain: stop admitting, finish in-flight work, then close the
	// listener. Shutdown alone would wait on requests too, but Drain
	// flips readiness first so load balancers stop routing here.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTime)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		hs.Close()
		return err
	}
	if err := hs.Shutdown(ctx); err != nil {
		return err
	}
	log.Info("drained cleanly")
	return nil
}
