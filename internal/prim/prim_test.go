package prim

import (
	"testing"

	"repro/internal/sexp"
	"repro/internal/tree"
)

func TestLookup(t *testing.T) {
	if Lookup(sexp.Intern("cons")) == nil {
		t.Fatal("cons missing")
	}
	if Lookup(sexp.Intern("no-such-primitive")) != nil {
		t.Fatal("unknown name should miss")
	}
	if !IsPrimitive(sexp.Intern("car")) || IsPrimitive(sexp.Intern("frotz")) {
		t.Fatal("IsPrimitive")
	}
	if LookupString("+$f") == nil {
		t.Fatal("+$f missing")
	}
}

func TestSafetyClassification(t *testing.T) {
	// §6.3: "checking the type of a pointer is safe, as is passing a
	// pointer to a procedure. However, storing a pointer into a global
	// variable or into a heap object (as with rplaca) is unsafe."
	for _, safe := range []string{"consp", "null", "+$f", "cons", "car", "eq"} {
		if p := LookupString(safe); p == nil || !p.Safe {
			t.Errorf("%s should be safe", safe)
		}
	}
	for _, unsafe := range []string{"rplaca", "rplacd", "set", "aset", "throw"} {
		if p := LookupString(unsafe); p == nil || p.Safe {
			t.Errorf("%s should be unsafe", unsafe)
		}
	}
}

func TestAssocCommutIdentity(t *testing.T) {
	add := LookupString("+$f")
	if !add.Assoc || !add.Commut {
		t.Error("+$f is associative and commutative")
	}
	if !sexp.Eql(add.Identity, sexp.Flonum(0)) {
		t.Errorf("+$f identity = %v", add.Identity)
	}
	sub := LookupString("-$f")
	if sub.Assoc || sub.Commut {
		t.Error("-$f must not be reassociated")
	}
	mul := LookupString("*")
	if !sexp.Eql(mul.Identity, sexp.Fixnum(1)) {
		t.Error("* identity")
	}
}

func TestRepresentationSignatures(t *testing.T) {
	if p := LookupString("+$f"); p.ArgRep != tree.RepSWFLO || p.ResRep != tree.RepSWFLO {
		t.Error("+$f signature")
	}
	if p := LookupString("+&"); p.ArgRep != tree.RepSWFIX || p.ResRep != tree.RepSWFIX {
		t.Error("+& signature")
	}
	if p := LookupString("<$f"); p.ArgRep != tree.RepSWFLO || !p.Jumpable {
		t.Error("<$f should take raw floats and deliver a jump")
	}
	if p := LookupString("+"); p.ArgRep != tree.RepUnknown {
		t.Error("generic + has no fixed arg rep")
	}
	if p := LookupString("aref$f"); p.ResRep != tree.RepSWFLO {
		t.Error("aref$f yields raw floats")
	}
}

func TestEffectsClassification(t *testing.T) {
	if !LookupString("+").Foldable {
		t.Error("+ foldable")
	}
	if LookupString("cons").Foldable {
		t.Error("cons is not foldable (allocation identity)")
	}
	if LookupString("rplaca").Effects&tree.EffWrite == 0 {
		t.Error("rplaca writes")
	}
	if LookupString("car").Effects&tree.EffRead == 0 {
		t.Error("car reads mutable state")
	}
	if LookupString("funcall").Effects != tree.EffAny {
		t.Error("funcall may do anything")
	}
	if LookupString("throw").Effects&tree.EffControl == 0 {
		t.Error("throw transfers control")
	}
}

func TestMachineOpMapping(t *testing.T) {
	cases := map[string]string{
		"+$f": "FADD", "-$f": "FSUB", "*$f": "FMULT", "/$f": "FDIV",
		"max$f": "FMAX", "min$f": "FMIN",
	}
	for name, op := range cases {
		if got := BinaryFloatOp(name); got != op {
			t.Errorf("BinaryFloatOp(%s) = %s want %s", name, got, op)
		}
	}
	if BinaryFloatOp("car") != "" {
		t.Error("car is not a float op")
	}
	if BinaryFixOp("+&") != "ADD" || BinaryFixOp("*&") != "MULT" {
		t.Error("fix op mapping")
	}
	if BinaryFixOp("cons") != "" {
		t.Error("cons is not a fix op")
	}
}

func TestJumpablePredicates(t *testing.T) {
	for _, n := range []string{"null", "zerop", "eq", "<", "=$f", "<&"} {
		if p := LookupString(n); p == nil || !p.Jumpable {
			t.Errorf("%s should be jumpable", n)
		}
	}
	if LookupString("cons").Jumpable {
		t.Error("cons is not a predicate")
	}
}
