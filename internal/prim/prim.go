// Package prim is the compiler's table of primitive-operation properties.
// The paper's compiler is "table-driven to a great extent"; this is the
// table. It records, per primitive: side effects, compile-time
// foldability, associativity/commutativity and identity operands (for the
// META-EVALUATE-ASSOC-COMMUT-CALL transformation), pdl-safety (§6.3), and
// representation signatures (§6.2).
package prim

import (
	"repro/internal/sexp"
	"repro/internal/tree"
)

// Info describes one primitive operation.
type Info struct {
	Name string
	// MinArgs/MaxArgs for compile-time arity checking; MaxArgs -1 means
	// variadic.
	MinArgs, MaxArgs int
	// Effects classifies side effects of a call.
	Effects tree.Effect
	// Foldable marks primitives "known to be free of side effects" whose
	// calls on constant operands the optimizer evaluates at compile time.
	Foldable bool
	// Assoc/Commut drive reduction of n-ary calls to binary compositions
	// and constant-first argument reordering.
	Assoc, Commut bool
	// Identity is the identity operand for table-driven elimination
	// ((+ x 0) => x), or nil.
	Identity sexp.Value
	// Safe marks pdl-safe operations: ones that may receive a pointer
	// into the stack (§6.3). Unsafe operations (rplaca, set) require
	// certification first.
	Safe bool
	// ArgRep/ResRep give the representation signature for type-specific
	// operations (SWFLO for +$f, SWFIX for +&); RepUnknown for generic.
	ArgRep, ResRep tree.Rep
	// Jumpable marks comparison primitives that can deliver their result
	// as a conditional jump (WANTREP = JUMP).
	Jumpable bool
}

var table = map[string]*Info{}

// Lookup returns the Info for a primitive name, or nil.
func Lookup(name *sexp.Symbol) *Info { return table[name.Name] }

// LookupString is Lookup by string name.
func LookupString(name string) *Info { return table[name] }

// IsPrimitive reports whether name denotes a known primitive.
func IsPrimitive(name *sexp.Symbol) bool { return table[name.Name] != nil }

func def(i Info) {
	cp := i
	table[i.Name] = &cp
}

func init() {
	pureSafe := func(name string, min, max int) Info {
		return Info{Name: name, MinArgs: min, MaxArgs: max, Foldable: true, Safe: true}
	}

	// Lists and conses. cons allocates; car/cdr read mutable heap state.
	def(Info{Name: "cons", MinArgs: 2, MaxArgs: 2, Effects: tree.EffAlloc, Safe: true})
	def(Info{Name: "list", MinArgs: 0, MaxArgs: -1, Effects: tree.EffAlloc, Safe: true})
	def(Info{Name: "list*", MinArgs: 1, MaxArgs: -1, Effects: tree.EffAlloc, Safe: true})
	def(Info{Name: "append", MinArgs: 0, MaxArgs: -1, Effects: tree.EffAlloc | tree.EffRead, Safe: true})
	def(Info{Name: "reverse", MinArgs: 1, MaxArgs: 1, Effects: tree.EffAlloc | tree.EffRead, Safe: true})
	for _, n := range []string{"car", "cdr", "caar", "cadr", "cdar", "cddr",
		"caddr", "cdddr", "first", "second", "rest", "nth", "nthcdr", "last",
		"length", "assq", "assoc", "memq", "member"} {
		def(Info{Name: n, MinArgs: 1, MaxArgs: 2, Effects: tree.EffRead, Foldable: true, Safe: true})
	}
	// rplaca/rplacd store pointers into heap objects: the unsafe
	// archetypes of §6.3.
	def(Info{Name: "rplaca", MinArgs: 2, MaxArgs: 2, Effects: tree.EffWrite, Safe: false})
	def(Info{Name: "rplacd", MinArgs: 2, MaxArgs: 2, Effects: tree.EffWrite, Safe: false})

	// Predicates: pure, safe (type checking a pointer is safe).
	for _, n := range []string{"atom", "consp", "listp", "null", "not",
		"symbolp", "numberp", "integerp", "floatp", "stringp", "functionp",
		"zerop", "plusp", "minusp", "oddp", "evenp"} {
		i := pureSafe(n, 1, 1)
		i.Jumpable = true
		def(i)
	}
	def(Info{Name: "eq", MinArgs: 2, MaxArgs: 2, Foldable: true, Safe: true, Jumpable: true})
	def(Info{Name: "eql", MinArgs: 2, MaxArgs: 2, Foldable: true, Safe: true, Jumpable: true})
	def(Info{Name: "equal", MinArgs: 2, MaxArgs: 2, Effects: tree.EffRead, Foldable: true, Safe: true, Jumpable: true})

	// Generic arithmetic: pure, safe, assoc/commut where mathematically
	// sanctioned by the dialect ("the user-level semantics for such
	// operators explicitly permits such re-association").
	add := pureSafe("+", 0, -1)
	add.Assoc, add.Commut, add.Identity = true, true, sexp.Fixnum(0)
	def(add)
	mul := pureSafe("*", 0, -1)
	mul.Assoc, mul.Commut, mul.Identity = true, true, sexp.Fixnum(1)
	def(mul)
	def(pureSafe("-", 1, -1))
	def(pureSafe("/", 1, -1))
	def(pureSafe("1+", 1, 1))
	def(pureSafe("1-", 1, 1))
	mn := pureSafe("min", 1, -1)
	mn.Assoc, mn.Commut = true, true
	def(mn)
	mx := pureSafe("max", 1, -1)
	mx.Assoc, mx.Commut = true, true
	def(mx)
	def(pureSafe("abs", 1, 1))
	def(pureSafe("mod", 2, 2))
	def(pureSafe("rem", 2, 2))
	def(pureSafe("floor", 1, 2))
	def(pureSafe("ceiling", 1, 2))
	def(pureSafe("truncate", 1, 2))
	def(pureSafe("round", 1, 2))
	def(pureSafe("expt", 2, 2))
	def(pureSafe("gcd", 0, -1))
	for _, n := range []string{"=", "<", ">", "<=", ">=", "/="} {
		i := pureSafe(n, 1, -1)
		i.Jumpable = true
		def(i)
	}
	for _, n := range []string{"sqrt", "sin", "cos", "tan", "atan", "exp", "log"} {
		def(pureSafe(n, 1, 2))
	}

	// Type-specific float operators: SWFLO signatures (§6.2).
	flo := func(name string, min, max int) Info {
		i := pureSafe(name, min, max)
		i.ArgRep, i.ResRep = tree.RepSWFLO, tree.RepSWFLO
		return i
	}
	fadd := flo("+$f", 2, -1)
	fadd.Assoc, fadd.Commut, fadd.Identity = true, true, sexp.Flonum(0)
	def(fadd)
	fmul := flo("*$f", 2, -1)
	fmul.Assoc, fmul.Commut, fmul.Identity = true, true, sexp.Flonum(1)
	def(fmul)
	def(flo("-$f", 2, 2))
	def(flo("/$f", 2, 2))
	fmax := flo("max$f", 2, -1)
	fmax.Assoc, fmax.Commut = true, true
	def(fmax)
	fmin := flo("min$f", 2, -1)
	fmin.Assoc, fmin.Commut = true, true
	def(fmin)
	for _, n := range []string{"neg$f", "abs$f", "sqrt$f", "sin$f", "cos$f",
		"sinc$f", "cosc$f", "atan$f", "exp$f", "log$f"} {
		def(flo(n, 1, 1))
	}
	for _, n := range []string{"=$f", "<$f", ">$f", "<=$f", ">=$f"} {
		i := pureSafe(n, 2, 2)
		i.ArgRep, i.ResRep = tree.RepSWFLO, tree.RepUnknown
		i.Jumpable = true
		def(i)
	}
	cf := pureSafe("float", 1, 1)
	cf.ResRep = tree.RepSWFLO
	def(cf)
	fx := pureSafe("fix", 1, 1)
	fx.ResRep = tree.RepSWFIX
	def(fx)

	// Type-specific fixnum operators: SWFIX signatures.
	fixop := func(name string, min, max int) Info {
		i := pureSafe(name, min, max)
		i.ArgRep, i.ResRep = tree.RepSWFIX, tree.RepSWFIX
		return i
	}
	iadd := fixop("+&", 2, -1)
	iadd.Assoc, iadd.Commut, iadd.Identity = true, true, sexp.Fixnum(0)
	def(iadd)
	imul := fixop("*&", 2, -1)
	imul.Assoc, imul.Commut, imul.Identity = true, true, sexp.Fixnum(1)
	def(imul)
	def(fixop("-&", 2, 2))
	def(fixop("/&", 2, 2))
	def(fixop("1+&", 1, 1))
	def(fixop("1-&", 1, 1))
	for _, n := range []string{"=&", "<&", ">&", "<=&", ">=&"} {
		i := pureSafe(n, 2, 2)
		i.ArgRep, i.ResRep = tree.RepSWFIX, tree.RepUnknown
		i.Jumpable = true
		def(i)
	}

	// Arrays. aref reads mutable state; aset writes (unsafe: stores a
	// pointer into a heap object).
	def(Info{Name: "make-array", MinArgs: 1, MaxArgs: 2, Effects: tree.EffAlloc, Safe: true})
	def(Info{Name: "make-float-array", MinArgs: 1, MaxArgs: 1, Effects: tree.EffAlloc, Safe: true})
	def(Info{Name: "aref", MinArgs: 1, MaxArgs: -1, Effects: tree.EffRead, Safe: true})
	def(Info{Name: "aset", MinArgs: 2, MaxArgs: -1, Effects: tree.EffWrite, Safe: false})
	def(Info{Name: "array-dimensions", MinArgs: 1, MaxArgs: 1, Effects: tree.EffRead | tree.EffAlloc, Safe: true})
	arf := Info{Name: "aref$f", MinArgs: 1, MaxArgs: -1, Effects: tree.EffRead, Safe: true,
		ResRep: tree.RepSWFLO}
	def(arf)
	asf := Info{Name: "aset$f", MinArgs: 2, MaxArgs: -1, Effects: tree.EffWrite, Safe: true,
		ResRep: tree.RepSWFLO}
	// aset$f stores a *raw float*, never a pointer, so it is pdl-safe even
	// though it writes.
	def(asf)

	// Control and environment.
	def(Info{Name: "funcall", MinArgs: 1, MaxArgs: -1, Effects: tree.EffAny, Safe: true})
	def(Info{Name: "apply", MinArgs: 2, MaxArgs: -1, Effects: tree.EffAny, Safe: true})
	def(Info{Name: "throw", MinArgs: 2, MaxArgs: 2, Effects: tree.EffControl, Safe: false})
	def(Info{Name: "error", MinArgs: 1, MaxArgs: -1, Effects: tree.EffControl, Safe: true})
	def(Info{Name: "identity", MinArgs: 1, MaxArgs: 1, Foldable: true, Safe: true})
	def(Info{Name: "symbol-value", MinArgs: 1, MaxArgs: 1, Effects: tree.EffRead, Safe: true})
	def(Info{Name: "set", MinArgs: 2, MaxArgs: 2, Effects: tree.EffWrite, Safe: false})
	def(Info{Name: "boundp", MinArgs: 1, MaxArgs: 1, Effects: tree.EffRead, Safe: true})
	def(Info{Name: "gensym", MinArgs: 0, MaxArgs: 1, Effects: tree.EffAlloc, Safe: true})

	// Output.
	for _, n := range []string{"print", "prin1", "princ"} {
		def(Info{Name: n, MinArgs: 1, MaxArgs: 1, Effects: tree.EffWrite, Safe: true})
	}
	def(Info{Name: "terpri", MinArgs: 0, MaxArgs: 0, Effects: tree.EffWrite, Safe: true})
}

// BinaryFloatOp maps a type-specific float operator to its machine
// operation name for the code generator, or "" if it is not a two-operand
// float instruction.
func BinaryFloatOp(name string) string {
	switch name {
	case "+$f":
		return "FADD"
	case "-$f":
		return "FSUB"
	case "*$f":
		return "FMULT"
	case "/$f":
		return "FDIV"
	case "max$f":
		return "FMAX"
	case "min$f":
		return "FMIN"
	}
	return ""
}

// BinaryFixOp maps a type-specific fixnum operator to its machine
// operation.
func BinaryFixOp(name string) string {
	switch name {
	case "+&":
		return "ADD"
	case "-&":
		return "SUB"
	case "*&":
		return "MULT"
	case "/&":
		return "DIV"
	}
	return ""
}
