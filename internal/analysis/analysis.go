// Package analysis implements the source-program analysis phases of §4.2:
// environment analysis (variables read/written per subtree), side-effects
// analysis, complexity analysis, tail-recursion analysis, and the
// special-variable lookup placement of §4.4 (smallest containing subtree).
//
// The results decorate the tree's Info slots and feed both the
// source-level optimizer and the machine-dependent annotation phases.
package analysis

import (
	"repro/internal/prim"
	"repro/internal/sexp"
	"repro/internal/tree"
)

// Analyze runs environment, side-effects, complexity and tail analyses
// over the tree rooted at root, filling the Info slots. Parent links are
// recomputed first, so Analyze may be called after arbitrary tree surgery.
func Analyze(root tree.Node) {
	tree.ComputeParents(root)
	analyzeNode(root)
	markTail(root, root.Kind() == tree.KindLambda)
}

// Recompute re-runs environment/effects/complexity analysis on a subtree
// without touching parent links or tail flags. The optimizer uses it to
// get fresh effect information for nodes it has just created, mid-pass.
func Recompute(n tree.Node) { analyzeNode(n) }

// RecomputeShallow refreshes n's own Info from its children's existing
// (assumed fresh) results without re-walking the subtree. The optimizer's
// dirty-path bookkeeping uses it for the ancestors of a changed region,
// whose other children are known to be unchanged.
func RecomputeShallow(n tree.Node) { computeOne(n) }

// analyzeNode computes Reads/Writes/Effects/Complexity bottom-up.
func analyzeNode(n tree.Node) {
	for _, c := range tree.Children(n) {
		analyzeNode(c)
	}
	computeOne(n)
}

// computeOne fills n's Info from its children's already-computed Info.
func computeOne(n tree.Node) {
	in := n.Info()
	in.Reads, in.Writes = nil, nil
	in.Effects = tree.EffNone
	in.Complexity = 0
	in.Dirty = false

	merge := func(c tree.Node) {
		ci := c.Info()
		in.Reads = in.Reads.Union(ci.Reads)
		in.Writes = in.Writes.Union(ci.Writes)
		in.Effects |= ci.Effects
		in.Complexity += ci.Complexity
	}

	switch x := n.(type) {
	case *tree.Literal:
		in.Complexity = 1

	case *tree.VarRef:
		in.Reads = in.Reads.Add(x.Var)
		in.Complexity = 1
		if x.Var.Special {
			// Reading a dynamic binding is a read of mutable state.
			in.Effects |= tree.EffRead
			in.Complexity = 2
		}

	case *tree.Setq:
		merge(x.Value)
		in.Writes = in.Writes.Add(x.Var)
		in.Effects |= tree.EffWrite
		in.Complexity++

	case *tree.If:
		merge(x.Test)
		merge(x.Then)
		merge(x.Else)
		in.Complexity++

	case *tree.Progn:
		for _, f := range x.Forms {
			merge(f)
		}

	case *tree.Lambda:
		// A lambda-expression in value position performs only the
		// (possible) closure allocation when evaluated; its body's
		// effects happen at call time. Reads/Writes do include the
		// body's free activity so that binding annotation can see
		// closed-over variables.
		for _, o := range x.Optional {
			in.Reads = in.Reads.Union(o.Default.Info().Reads)
			in.Writes = in.Writes.Union(o.Default.Info().Writes)
		}
		in.Reads = in.Reads.Union(x.Body.Info().Reads)
		in.Writes = in.Writes.Union(x.Body.Info().Writes)
		in.Effects = tree.EffAlloc
		in.Complexity = 2 + x.Body.Info().Complexity

	case *tree.Call:
		for _, a := range x.Args {
			merge(a)
		}
		switch fn := x.Fn.(type) {
		case *tree.Lambda:
			// Direct call of a manifest lambda (a let): the body runs.
			for _, o := range fn.Optional {
				merge(o.Default)
			}
			merge(fn.Body)
			in.Complexity += 2
		case *tree.FunRef:
			if p := prim.Lookup(fn.Name); p != nil {
				in.Effects |= p.Effects
				in.Complexity += 2
			} else {
				// Unknown user function: anything may happen.
				in.Effects |= tree.EffAny
				in.Complexity += 3
			}
		default:
			merge(x.Fn)
			in.Effects |= tree.EffAny
			in.Complexity += 3
		}

	case *tree.FunRef:
		in.Complexity = 1

	case *tree.ProgBody:
		for _, f := range x.Forms {
			merge(f)
		}
		in.Complexity++

	case *tree.Go:
		in.Effects |= tree.EffControl
		in.Complexity = 1

	case *tree.Return:
		merge(x.Value)
		in.Effects |= tree.EffControl
		in.Complexity++

	case *tree.Catcher:
		merge(x.Tag)
		merge(x.Body)
		in.Complexity += 3

	case *tree.Caseq:
		merge(x.Key)
		for _, cl := range x.Clauses {
			merge(cl.Body)
		}
		if x.Default != nil {
			merge(x.Default)
		}
		in.Complexity += 2
	}
}

// markTail sets the Tail flags: a node is in tail position when its value
// is delivered as the value of the enclosing lambda, so a call there "is
// more akin to a parameter-passing goto than to a recursive call".
func markTail(n tree.Node, tail bool) {
	n.Info().Tail = tail
	switch x := n.(type) {
	case *tree.If:
		markTail(x.Test, false)
		markTail(x.Then, tail)
		markTail(x.Else, tail)
	case *tree.Progn:
		for i, f := range x.Forms {
			markTail(f, tail && i == len(x.Forms)-1)
		}
	case *tree.Setq:
		markTail(x.Value, false)
	case *tree.Call:
		if l, ok := x.Fn.(*tree.Lambda); ok {
			// Calling a manifest lambda: its body inherits the call's
			// tail position; the lambda node itself is not "evaluated",
			// so it must not also be visited as a value (that would walk
			// the body twice per nesting level — exponentially).
			l.Info().Tail = false
			for _, o := range l.Optional {
				markTail(o.Default, false)
			}
			markTail(l.Body, tail)
		} else {
			markTail(x.Fn, false)
		}
		for _, a := range x.Args {
			markTail(a, false)
		}
	case *tree.Lambda:
		// A lambda in value position starts a new function: its body is
		// the new function's tail.
		for _, o := range x.Optional {
			markTail(o.Default, false)
		}
		markTail(x.Body, true)
	case *tree.ProgBody:
		for _, f := range x.Forms {
			markTail(f, false)
		}
		// Returns targeting a tail progbody deliver the lambda's value.
		if tail {
			tree.Walk(n, func(m tree.Node) bool {
				if r, ok := m.(*tree.Return); ok && r.Target == x {
					r.Value.Info().Tail = true
					propagateTailInto(r.Value)
				}
				return true
			})
		}
	case *tree.Catcher:
		markTail(x.Tag, false)
		markTail(x.Body, false) // must pop the catch frame before returning
	case *tree.Caseq:
		markTail(x.Key, false)
		for _, cl := range x.Clauses {
			markTail(cl.Body, tail)
		}
		if x.Default != nil {
			markTail(x.Default, tail)
		}
	}
}

// propagateTailInto re-propagates tailness into a subtree already marked
// (used for return values of tail progbodies).
func propagateTailInto(n tree.Node) { markTail(n, true) }

// SpecialPlacements computes, for each lambda, the smallest subtree that
// contains all of that lambda's own references to each special variable:
// "the lookup and pointer caching for that variable is performed before
// execution of that smallest subtree" (§4.4). References inside nested
// lambdas belong to the nested lambda. Call after Analyze (parent links
// must be valid).
func SpecialPlacements(root tree.Node) map[*tree.Lambda]map[*sexp.Symbol]tree.Node {
	out := map[*tree.Lambda]map[*sexp.Symbol]tree.Node{}
	// Collect the special references per owning lambda.
	refs := map[*tree.Lambda]map[*sexp.Symbol][]tree.Node{}
	tree.Walk(root, func(n tree.Node) bool {
		var v *tree.Var
		switch x := n.(type) {
		case *tree.VarRef:
			v = x.Var
		case *tree.Setq:
			v = x.Var
		default:
			return true
		}
		if !v.Special || v.Binder != nil {
			// Special *parameters* are bound, not looked up.
			if !v.Special {
				return true
			}
		}
		owner := activationLambda(n)
		if owner == nil {
			return true
		}
		if refs[owner] == nil {
			refs[owner] = map[*sexp.Symbol][]tree.Node{}
		}
		refs[owner][v.Name] = append(refs[owner][v.Name], n)
		return true
	})
	for lam, bySym := range refs {
		out[lam] = map[*sexp.Symbol]tree.Node{}
		for sym, nodes := range bySym {
			place := lcaWithin(lam, nodes)
			// "The trick is further refined to take loops into account":
			// hoist the lookup above any enclosing progbody, so a loop
			// does not re-search per iteration.
			place = hoistAboveLoops(lam, place)
			out[lam][sym] = place
		}
	}
	return out
}

// activationLambda finds the nearest enclosing lambda that owns a run-time
// activation (open-coded and jump lambdas execute in their host's frame).
func activationLambda(n tree.Node) *tree.Lambda {
	for m := n.Info().Parent; m != nil; m = m.Info().Parent {
		l, ok := m.(*tree.Lambda)
		if !ok {
			continue
		}
		if l.Strategy == tree.StrategyOpen || l.Strategy == tree.StrategyJump {
			continue
		}
		return l
	}
	return nil
}

// hoistAboveLoops moves a placement above the outermost progbody between
// it and the owning lambda.
func hoistAboveLoops(limit tree.Node, place tree.Node) tree.Node {
	out := place
	for m := place; m != nil && m != limit; m = m.Info().Parent {
		if _, ok := m.(*tree.ProgBody); ok {
			out = m
		}
	}
	return out
}

// lcaWithin finds the lowest common ancestor of nodes, not ascending
// above limit.
func lcaWithin(limit tree.Node, nodes []tree.Node) tree.Node {
	path := func(n tree.Node) []tree.Node {
		var p []tree.Node
		for m := n; m != nil; m = m.Info().Parent {
			p = append(p, m)
			if m == limit {
				break
			}
		}
		// reverse to root-first
		for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
			p[i], p[j] = p[j], p[i]
		}
		return p
	}
	cur := path(nodes[0])
	for _, n := range nodes[1:] {
		p := path(n)
		k := 0
		for k < len(cur) && k < len(p) && cur[k] == p[k] {
			k++
		}
		cur = cur[:k]
	}
	if len(cur) == 0 {
		return limit
	}
	return cur[len(cur)-1]
}

// TailCalls returns the calls in tail position within lam whose callee is
// the given variable (used by binding annotation to detect loop-style
// lambdas).
func TailCalls(lam *tree.Lambda, v *tree.Var) (tail, nonTail []*tree.Call) {
	tree.Walk(lam.Body, func(n tree.Node) bool {
		if c, ok := n.(*tree.Call); ok {
			if r, ok := c.Fn.(*tree.VarRef); ok && r.Var == v {
				if c.Info().Tail {
					tail = append(tail, c)
				} else {
					nonTail = append(nonTail, c)
				}
			}
		}
		return true
	})
	return tail, nonTail
}
