package analysis

import (
	"testing"

	"repro/internal/convert"
	"repro/internal/sexp"
	"repro/internal/tree"
)

func conv(t *testing.T, src string) tree.Node {
	t.Helper()
	c := convert.New()
	n, err := c.ConvertForm(mustRead(src))
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	return n
}

func analyzed(t *testing.T, src string) tree.Node {
	t.Helper()
	n := conv(t, src)
	Analyze(n)
	return n
}

func TestReadsWrites(t *testing.T) {
	n := analyzed(t, "(lambda (x y) (progn (setq y 1) (+ x y)))").(*tree.Lambda)
	x, y := n.Required[0], n.Required[1]
	body := n.Body.Info()
	if !body.Reads.Has(x) || !body.Reads.Has(y) {
		t.Error("body should read x and y")
	}
	if !body.Writes.Has(y) || body.Writes.Has(x) {
		t.Error("body should write exactly y")
	}
	// Lambda node itself carries the union too.
	if !n.NodeInfo.Reads.Has(x) {
		t.Error("lambda info should include body reads")
	}
}

func TestEffectsClassification(t *testing.T) {
	cases := []struct {
		src  string
		want func(tree.Effect) bool
		desc string
	}{
		{"(+ 1 2)", func(e tree.Effect) bool { return e.Pure() }, "pure arithmetic"},
		{"(cons 1 2)", func(e tree.Effect) bool { return e.PureExceptAlloc() && e&tree.EffAlloc != 0 }, "cons allocates only"},
		{"(rplaca x y)", func(e tree.Effect) bool { return e&tree.EffWrite != 0 }, "rplaca writes"},
		{"(car x)", func(e tree.Effect) bool { return e&tree.EffWrite == 0 && e&tree.EffRead != 0 }, "car reads"},
		{"(frobnicate 1)", func(e tree.Effect) bool { return e&tree.EffCall != 0 }, "unknown call"},
		{"(lambda (x) (rplaca x 1))", func(e tree.Effect) bool { return e.PureExceptAlloc() }, "lambda value only allocates"},
		{"((lambda (x) (rplaca x 1)) y)", func(e tree.Effect) bool { return e&tree.EffWrite != 0 }, "direct lambda call runs body"},
		{"(throw 'a 1)", func(e tree.Effect) bool { return e&tree.EffControl != 0 }, "throw is control"},
	}
	for _, c := range cases {
		n := conv(t, "(lambda (x y) "+c.src+")").(*tree.Lambda)
		Analyze(n)
		eff := n.Body.Info().Effects
		if !c.want(eff) {
			t.Errorf("%s: effects = %v", c.desc, eff)
		}
	}
}

func TestSpecialReadIsEffect(t *testing.T) {
	n := analyzed(t, "(lambda () *global*)").(*tree.Lambda)
	if n.Body.Info().Effects&tree.EffRead == 0 {
		t.Error("special read should be EffRead")
	}
	n2 := analyzed(t, "(lambda (x) x)").(*tree.Lambda)
	if !n2.Body.Info().Effects.Pure() {
		t.Error("lexical read is pure")
	}
}

func TestComplexityGrows(t *testing.T) {
	small := analyzed(t, "(lambda (x) x)")
	big := analyzed(t, "(lambda (x) (if (f x) (g (h x) (h (h x))) (i x 1 2 3)))")
	if small.Info().Complexity >= big.Info().Complexity {
		t.Errorf("complexity: small=%d big=%d", small.Info().Complexity,
			big.Info().Complexity)
	}
}

func TestTailMarking(t *testing.T) {
	// (lambda (n) (if (zerop n) 'done (loop (- n 1)))): the recursive call
	// is tail; the (- n 1) inside is not.
	n := analyzed(t, "(lambda (n) (if (zerop n) 'done (loop2 (- n 1))))").(*tree.Lambda)
	iff := n.Body.(*tree.If)
	if !iff.Then.Info().Tail || !iff.Else.Info().Tail {
		t.Error("if arms should be tail")
	}
	if iff.Test.Info().Tail {
		t.Error("test is not tail")
	}
	call := iff.Else.(*tree.Call)
	if !call.Info().Tail {
		t.Error("recursive call should be tail")
	}
	if call.Args[0].Info().Tail {
		t.Error("arguments are never tail")
	}
}

func TestTailThroughLetBody(t *testing.T) {
	// The body of a let ((lambda…) call) inherits tailness.
	n := analyzed(t, "(lambda (x) (let ((y (f x))) (g y)))").(*tree.Lambda)
	outer := n.Body.(*tree.Call)
	letLam := outer.Fn.(*tree.Lambda)
	if !letLam.Body.Info().Tail {
		t.Error("let body should be tail")
	}
	if outer.Args[0].Info().Tail {
		t.Error("let initializer is not tail")
	}
}

func TestTailThroughProgn(t *testing.T) {
	n := analyzed(t, "(lambda () (progn (f) (g)))").(*tree.Lambda)
	pg := n.Body.(*tree.Progn)
	if pg.Forms[0].Info().Tail {
		t.Error("non-final progn form is not tail")
	}
	if !pg.Forms[1].Info().Tail {
		t.Error("final progn form is tail")
	}
}

func TestTailReturnInProg(t *testing.T) {
	n := analyzed(t, "(lambda (x) (prog () (return (f x))))").(*tree.Lambda)
	var ret *tree.Return
	tree.Walk(n, func(m tree.Node) bool {
		if r, ok := m.(*tree.Return); ok {
			ret = r
		}
		return true
	})
	if ret == nil {
		t.Fatal("no return found")
	}
	if !ret.Value.Info().Tail {
		t.Error("return value of tail progbody should be tail")
	}
}

func TestCatchBodyNotTail(t *testing.T) {
	n := analyzed(t, "(lambda () (catch 'x (f)))").(*tree.Lambda)
	cat := n.Body.(*tree.Catcher)
	if cat.Body.Info().Tail {
		t.Error("catch body must not be tail (frame must pop)")
	}
}

func TestCaseqArmsTail(t *testing.T) {
	n := analyzed(t, "(lambda (k) (caseq k (1 (f)) (t (g))))").(*tree.Lambda)
	cq := n.Body.(*tree.Caseq)
	if !cq.Clauses[0].Body.Info().Tail || !cq.Default.Info().Tail {
		t.Error("caseq arms should be tail")
	}
	if cq.Key.Info().Tail {
		t.Error("caseq key is not tail")
	}
}

func TestSpecialPlacementsSmallestSubtree(t *testing.T) {
	// *s* referenced only in the then-arm: the lookup belongs inside the
	// arm, not at function entry — "this may avoid a lookup if the
	// subtree is in an arm of a conditional".
	n := analyzed(t, "(lambda (p) (if p (+ *s* *s*) 0))").(*tree.Lambda)
	pl := SpecialPlacements(n)
	m := pl[n]
	if m == nil {
		t.Fatal("no placements for lambda")
	}
	node := m[sexp.Intern("*s*")]
	if node == nil {
		t.Fatal("no placement for *s*")
	}
	// The placement must be the (+ *s* *s*) call (inside the then arm),
	// not the if or the lambda.
	call, ok := node.(*tree.Call)
	if !ok {
		t.Fatalf("placement is %T, want the + call", node)
	}
	if fr, ok := call.Fn.(*tree.FunRef); !ok || fr.Name.Name != "+" {
		t.Errorf("placement should be the + call")
	}
}

func TestSpecialPlacementsSpanningBothArms(t *testing.T) {
	n := analyzed(t, "(lambda (p) (if p *s* (f *s*)))").(*tree.Lambda)
	m := SpecialPlacements(n)[n]
	node := m[sexp.Intern("*s*")]
	if _, ok := node.(*tree.If); !ok {
		t.Errorf("placement spanning both arms should be the if, got %T", node)
	}
}

func TestSpecialPlacementsPerLambda(t *testing.T) {
	// The inner lambda's reference belongs to the inner lambda.
	n := analyzed(t, "(lambda () (lambda () *s*))").(*tree.Lambda)
	pl := SpecialPlacements(n)
	if pl[n] != nil && pl[n][sexp.Intern("*s*")] != nil {
		t.Error("outer lambda should have no placement for *s*")
	}
	inner := n.Body.(*tree.Lambda)
	if pl[inner] == nil || pl[inner][sexp.Intern("*s*")] == nil {
		t.Error("inner lambda should own the placement")
	}
}

func TestTailCallsHelper(t *testing.T) {
	// ((lambda (f) ...) ...) pattern with calls through the variable.
	outer := analyzed(t, `(lambda (p g)
	  ((lambda (lp) (if p (lp 1) (g (lp 2)))) (lambda (i) i)))`).(*tree.Lambda)
	n := outer.Body.(*tree.Call)
	lam := n.Fn.(*tree.Lambda)
	f := lam.Required[0]
	tail, nonTail := TailCalls(lam, f)
	if len(tail) != 1 || len(nonTail) != 1 {
		t.Errorf("tail=%d nonTail=%d, want 1 and 1", len(tail), len(nonTail))
	}
}

func TestAnalyzeIsIdempotent(t *testing.T) {
	n := conv(t, "(lambda (x) (if x (setq x 1) (f x)))")
	Analyze(n)
	r1 := len(n.Info().Reads)
	c1 := n.Info().Complexity
	Analyze(n)
	if len(n.Info().Reads) != r1 || n.Info().Complexity != c1 {
		t.Error("re-analysis changed results")
	}
}

// mustRead parses one form, panicking on error — a test-table
// convenience; the production reader paths all return errors.
func mustRead(src string) sexp.Value {
	v, err := sexp.ReadOne(src)
	if err != nil {
		panic(err)
	}
	return v
}
