package tn

import (
	"testing"
	"testing/quick"

	"repro/internal/s1"
)

func TestDisjointIntervalsShareRegister(t *testing.T) {
	a := New(false)
	t1 := a.NewTN("x")
	t1.Touch(a.Tick())
	t1.Touch(a.Tick())
	t2 := a.NewTN("y")
	t2.Touch(a.Tick())
	t2.Touch(a.Tick())
	a.Pack(0)
	if t1.Loc.Kind != LocReg || t2.Loc.Kind != LocReg {
		t.Fatalf("both should get registers: %+v %+v", t1.Loc, t2.Loc)
	}
	if t1.Loc.Reg != t2.Loc.Reg {
		t.Errorf("disjoint TNs should share a register: %v vs %v", t1.Loc, t2.Loc)
	}
}

func TestOverlappingIntervalsGetDistinctRegisters(t *testing.T) {
	a := New(false)
	t1 := a.NewTN("x")
	t2 := a.NewTN("y")
	t1.Touch(a.Tick())
	t2.Touch(a.Tick())
	t1.Touch(a.Tick())
	t2.Touch(a.Tick())
	a.Pack(0)
	if t1.Loc.Kind != LocReg || t2.Loc.Kind != LocReg {
		t.Fatalf("both should get registers")
	}
	if t1.Loc.Reg == t2.Loc.Reg {
		t.Error("overlapping TNs must not share a register")
	}
}

func TestAcrossCallForcesFrame(t *testing.T) {
	// The paper's testfn: "TNBIND determined that e must survive the call
	// to frotz, while d need not".
	a := New(false)
	e := a.NewTN("e")
	e.Touch(a.Tick())
	a.Tick()
	a.NoteCall()
	e.Touch(a.Tick())
	d := a.NewTN("d")
	d.Touch(a.Tick())
	d.Touch(a.Tick())
	a.Pack(0)
	if e.Loc.Kind != LocFrame {
		t.Errorf("e lives across a call: must be a frame slot, got %+v", e.Loc)
	}
	if d.Loc.Kind != LocReg {
		t.Errorf("d does not survive a call: should get a register, got %+v", d.Loc)
	}
}

func TestConsumedAtCallTickStaysInRegister(t *testing.T) {
	a := New(false)
	x := a.NewTN("arg")
	x.Touch(a.Tick())
	tick := a.Tick()
	x.Touch(tick) // consumed as a call argument
	a.NoteCall()  // at the same tick
	a.Pack(0)
	if x.Loc.Kind != LocReg {
		t.Errorf("value consumed at the call tick may use a register, got %+v", x.Loc)
	}
}

func TestSQClobberExcludesRT(t *testing.T) {
	a := New(false)
	x := a.NewTN("x")
	x.PreferRT = true
	x.Touch(a.Tick())
	a.Tick()
	a.NoteSQ()
	x.Touch(a.Tick())
	a.Pack(0)
	if x.Loc.Kind != LocReg {
		t.Fatalf("should still get a general register: %+v", x.Loc)
	}
	if x.Loc.Reg == s1.RegRTA || x.Loc.Reg == s1.RegRTB {
		t.Error("TN across an SQ call must avoid RT registers")
	}
}

func TestPreferRT(t *testing.T) {
	a := New(false)
	x := a.NewTN("acc")
	x.PreferRT = true
	x.Touch(a.Tick())
	x.Touch(a.Tick())
	a.Pack(0)
	if x.Loc.Kind != LocReg || (x.Loc.Reg != s1.RegRTA && x.Loc.Reg != s1.RegRTB) {
		t.Errorf("PreferRT should land in RTA/RTB: %+v", x.Loc)
	}
}

func TestWantFrame(t *testing.T) {
	a := New(false)
	x := a.NewTN("pdl")
	x.WantFrame = true
	x.Touch(a.Tick())
	a.Pack(3)
	if x.Loc.Kind != LocFrame || x.Loc.Slot != 3 {
		t.Errorf("WantFrame: %+v", x.Loc)
	}
}

func TestNaivePacksEverythingToFrame(t *testing.T) {
	a := New(true)
	x := a.NewTN("x")
	x.Touch(a.Tick())
	y := a.NewTN("y")
	y.Touch(a.Tick())
	n := a.Pack(0)
	if x.Loc.Kind != LocFrame || y.Loc.Kind != LocFrame {
		t.Error("naive mode must use frame slots")
	}
	if n == 0 {
		t.Error("slot count should be reported")
	}
}

func TestFrameSlotReuse(t *testing.T) {
	a := New(true)
	t1 := a.NewTN("a")
	t1.Touch(a.Tick())
	t1.Touch(a.Tick())
	t2 := a.NewTN("b")
	t2.Touch(a.Tick())
	t2.Touch(a.Tick())
	n := a.Pack(0)
	if n != 1 {
		t.Errorf("disjoint frame TNs should share one slot, used %d", n)
	}
}

func TestRegisterPressureSpills(t *testing.T) {
	a := New(false)
	var tns []*TN
	start := a.Tick()
	for i := 0; i < len(s1.AllocatableRegs)+4; i++ {
		x := a.NewTN("v")
		x.Touch(start)
		tns = append(tns, x)
	}
	end := a.Tick()
	for _, x := range tns {
		x.Touch(end)
	}
	a.Pack(0)
	spilled := 0
	seen := map[uint8]bool{}
	for _, x := range tns {
		if x.Loc.Kind == LocFrame {
			spilled++
		} else {
			if seen[x.Loc.Reg] {
				t.Fatalf("register %d double-booked", x.Loc.Reg)
			}
			seen[x.Loc.Reg] = true
		}
	}
	if spilled != 4 {
		t.Errorf("spilled = %d, want 4", spilled)
	}
}

func TestHighUsageWins(t *testing.T) {
	a := New(false)
	// More TNs than registers, all overlapping; the hot one must get a
	// register.
	hot := a.NewTN("hot")
	start := a.Tick()
	hot.Touch(start)
	var rest []*TN
	for i := 0; i < len(s1.AllocatableRegs)+2; i++ {
		x := a.NewTN("cold")
		x.Touch(start)
		rest = append(rest, x)
	}
	for i := 0; i < 10; i++ {
		hot.Touch(a.Tick())
	}
	end := a.Tick()
	hot.Touch(end)
	for _, x := range rest {
		x.Touch(end)
	}
	a.Pack(0)
	if hot.Loc.Kind != LocReg {
		t.Errorf("high-usage TN should win a register: %+v", hot.Loc)
	}
}

// Property: no two register-allocated TNs with overlapping intervals
// share a register, and frame TNs never collide either.
func TestPackingSoundness(t *testing.T) {
	f := func(seed []byte) bool {
		a := New(false)
		var tns []*TN
		for i, b := range seed {
			if i >= 40 {
				break
			}
			x := a.NewTN("t")
			x.PreferRT = b&1 != 0
			x.WantFrame = b&2 != 0
			x.Touch(a.Tick())
			if b&4 != 0 {
				a.NoteCall()
				a.Tick()
			}
			if b&8 != 0 {
				a.NoteSQ()
				a.Tick()
			}
			x.Touch(a.Tick())
			tns = append(tns, x)
			if b&16 != 0 && len(tns) > 1 {
				tns[len(tns)-2].Touch(a.Tick()) // extend previous interval
			}
		}
		a.Pack(0)
		for i, x := range tns {
			for _, y := range tns[i+1:] {
				if !x.overlaps(y) {
					continue
				}
				if x.Loc.Kind == LocReg && y.Loc.Kind == LocReg && x.Loc.Reg == y.Loc.Reg {
					return false
				}
				if x.Loc.Kind == LocFrame && y.Loc.Kind == LocFrame && x.Loc.Slot == y.Loc.Slot {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
