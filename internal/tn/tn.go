// Package tn implements the TNBIND register-allocation technique of
// BLISS-11 and PQCC as used by the S-1 Lisp compiler (§6.1): a TN
// ("temporary name") is assigned to every computational quantity — user
// variables and intermediate results — and annotated with the costs and
// constraints of placing it in one or another kind of location; a global
// packing process then assigns each TN a specific run-time location
// (register or stack-frame slot).
//
// "Register allocation" here means the compile-time determination of
// storage locations for all computational quantities, not only those in
// machine registers.
package tn

import (
	"sort"

	"repro/internal/s1"
)

// LocKind says where a TN was packed.
type LocKind int

// Location kinds.
const (
	LocNone LocKind = iota
	LocReg
	LocFrame
)

// Loc is a packed location: a machine register or a frame slot index
// (relative to FP).
type Loc struct {
	Kind LocKind
	Reg  uint8
	Slot int
}

// TN is a temporary name.
type TN struct {
	ID   int
	Name string
	// Start/End are the live interval in allocation ticks (inclusive).
	Start, End int
	// Usage is the packing priority (weighted reference count; loop
	// bodies weigh more).
	Usage int
	// PreferRT requests an RT register (arithmetic accumulators).
	PreferRT bool
	// WantFrame forces a stack slot (pdl-number slots, address-taken
	// quantities, values whose lifetime the allocator cannot see).
	WantFrame bool
	// Fixed pins the TN to a specific register (0 = unpinned). Used by
	// the code generator for subscript accumulators that must live in a
	// particular RT register so indexed operands can name them.
	Fixed uint8
	// Loc is the packing result.
	Loc Loc
}

// Touch extends the live interval to include tick.
func (t *TN) Touch(tick int) {
	if t.Start < 0 || tick < t.Start {
		t.Start = tick
	}
	if tick > t.End {
		t.End = tick
	}
	t.Usage++
}

func (t *TN) overlaps(o *TN) bool {
	return t.Start <= o.End && o.Start <= t.End
}

// Allocator gathers TNs and packs them.
type Allocator struct {
	// Naive disables register packing entirely (the E4 baseline: every
	// quantity lives in the frame).
	Naive bool

	TNs  []*TN
	tick int
	// callTicks are ticks at which a full procedure call occurs:
	// "calls to other procedures by convention may destroy nearly all
	// registers", so any TN live across one must live in the frame.
	callTicks []int
	// sqTicks are ticks of system-routine calls, which preserve general
	// registers but clobber A, B, RTA and RTB.
	sqTicks []int
	// loopRegions are tick ranges re-executed by backward jumps (prog
	// loops, self-recursive jump blocks); any TN touched inside one is
	// live across the whole region.
	loopRegions [][2]int
}

// New returns an empty allocator.
func New(naive bool) *Allocator { return &Allocator{Naive: naive} }

// Tick advances and returns the allocation clock.
func (a *Allocator) Tick() int {
	a.tick++
	return a.tick
}

// Now returns the current tick.
func (a *Allocator) Now() int { return a.tick }

// NewTN creates a TN with an empty interval.
func (a *Allocator) NewTN(name string) *TN {
	t := &TN{ID: len(a.TNs), Name: name, Start: -1, End: -1}
	a.TNs = append(a.TNs, t)
	return t
}

// NoteCall records a full call at the current tick.
func (a *Allocator) NoteCall() { a.callTicks = append(a.callTicks, a.tick) }

// AddLoopRegion records a backward-jump region [start, end]: control may
// return from end to start, so values touched inside are live across the
// whole region.
func (a *Allocator) AddLoopRegion(start, end int) {
	a.loopRegions = append(a.loopRegions, [2]int{start, end})
}

// NoteSQ records a system-routine call at the current tick.
func (a *Allocator) NoteSQ() { a.sqTicks = append(a.sqTicks, a.tick) }

func anyIn(ticks []int, start, end int) bool {
	i := sort.SearchInts(ticks, start)
	return i < len(ticks) && ticks[i] <= end
}

// Pack assigns locations. Frame slots are allocated from baseSlot upward;
// the number of slots used is returned. The packing is the greedy
// priority-ordered interval coloring that TNBIND's global packing phase
// performs (without backtracking — "a packing method that backtracks can
// potentially produce better packings than one that does not").
func (a *Allocator) Pack(baseSlot int) int {
	sort.Ints(a.callTicks)
	sort.Ints(a.sqTicks)

	// Values alive on entry to a loop region may be read in any later
	// iteration: extend them across the whole region. TNs born inside a
	// region are written before they are read on every iteration, so
	// their emission-order intervals already describe their conflicts.
	for changed := true; changed; {
		changed = false
		for _, t := range a.TNs {
			if t.Start < 0 {
				continue
			}
			for _, r := range a.loopRegions {
				if t.Start < r[0] && t.End >= r[0] && t.End < r[1] {
					t.End = r[1]
					changed = true
				}
			}
		}
	}

	order := make([]*TN, len(a.TNs))
	copy(order, a.TNs)
	sort.SliceStable(order, func(i, j int) bool {
		return order[i].Usage > order[j].Usage
	})

	regUsers := map[uint8][]*TN{}
	var frameUsers [][]*TN // per slot (relative index)

	fits := func(users []*TN, t *TN) bool {
		for _, u := range users {
			if u.overlaps(t) {
				return false
			}
		}
		return true
	}

	assignFrame := func(t *TN) {
		for s := range frameUsers {
			if fits(frameUsers[s], t) {
				frameUsers[s] = append(frameUsers[s], t)
				t.Loc = Loc{Kind: LocFrame, Slot: baseSlot + s}
				return
			}
		}
		frameUsers = append(frameUsers, []*TN{t})
		t.Loc = Loc{Kind: LocFrame, Slot: baseSlot + len(frameUsers) - 1}
	}

	// Pinned TNs take their registers unconditionally; the emitter
	// guarantees no two pinned TNs of the same register overlap.
	for _, t := range a.TNs {
		if t.Fixed != 0 {
			if t.Start < 0 {
				t.Start, t.End = 0, 0
			}
			regUsers[t.Fixed] = append(regUsers[t.Fixed], t)
			t.Loc = Loc{Kind: LocReg, Reg: t.Fixed}
		}
	}

	for _, t := range order {
		if t.Fixed != 0 {
			continue
		}
		if t.Start < 0 {
			// Never touched: give it a frame slot anyway (safety).
			t.Start, t.End = 0, 0
		}
		// A tick strictly inside the interval clobbers: a value consumed
		// at the call's own tick is read before the call, and one
		// produced at it is written after.
		acrossCall := anyIn(a.callTicks, t.Start+1, t.End-1)
		if a.Naive || t.WantFrame || acrossCall {
			assignFrame(t)
			continue
		}
		acrossSQ := anyIn(a.sqTicks, t.Start+1, t.End-1)
		var candidates []uint8
		if t.PreferRT && !acrossSQ {
			candidates = append(candidates, s1.RegRTA, s1.RegRTB)
		}
		candidates = append(candidates, s1.AllocatableRegs...)
		placed := false
		for _, r := range candidates {
			if fits(regUsers[r], t) {
				regUsers[r] = append(regUsers[r], t)
				t.Loc = Loc{Kind: LocReg, Reg: r}
				placed = true
				break
			}
		}
		if !placed {
			assignFrame(t)
		}
	}
	return len(frameUsers)
}
