package sexp

import "testing"

// FuzzRead is the reader's no-panic contract: arbitrary input must
// produce forms or positioned errors, never a panic, and the
// error-recovering variant must terminate with every reported error
// carrying a sane position. Printing whatever parsed must also not
// panic (the printer walks exactly what the reader built).
func FuzzRead(f *testing.F) {
	seeds := []string{
		"(defun f (x) (* x x))",
		"(a . b) #(1 2 3) #\\x 'sym |Mixed Case| 1/2 1.5e3",
		"(a (b (c",
		")))(",
		"(defun broken (x\n(defun ok () 1)",
		"#| block #| nested |# |# (f) ; line\n",
		"\"unterminated",
		"(1 . 2 3)",
		"`(a ,b ,@c)",
		"#z #",
		"...(((((''''''``````,,,,,,",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if vs, err := ReadAll(src); err == nil {
			for _, v := range vs {
				_ = Print(v)
			}
		}
		forms, errs := ReadAllRecover(src)
		for _, fm := range forms {
			_ = Print(fm.Val)
			if fm.Line < 1 || fm.Col < 1 {
				t.Fatalf("form with bad position %d:%d", fm.Line, fm.Col)
			}
		}
		for _, e := range errs {
			if e.Line < 1 || e.Col < 1 {
				t.Fatalf("error with bad position %d:%d (%s)", e.Line, e.Col, e.Msg)
			}
		}
	})
}
