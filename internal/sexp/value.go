// Package sexp implements the S-expression data layer of the S-1 Lisp
// reproduction: interned symbols, the numeric tower (fixnums with bignum
// overflow, ratios, flonums), conses, strings and vectors, together with a
// reader and printer.
//
// The dialect follows the paper (Brooks, Gabriel & Steele, "An Optimizing
// Compiler for Lexically Scoped LISP", 1982): all values are conceptually
// pointers to typed objects; types live on objects, not variables.
package sexp

import (
	"fmt"
	"hash/fnv"
	"math/big"
	"strings"
	"sync"
)

// Value is any Lisp datum. The concrete types are *Symbol, Fixnum, *Bignum,
// *Ratio, Flonum, String, Character, *Cons, *Vector. The empty list / false
// value NIL is the distinguished symbol Nil.
type Value interface {
	// write appends the printed representation to b.
	Write(b *strings.Builder)
}

// Symbol is an interned Lisp symbol. Two symbols with the same name read in
// the same package are identical pointers, so eq-ness is Go pointer
// equality.
type Symbol struct {
	Name string
}

func (s *Symbol) Write(b *strings.Builder) { b.WriteString(s.Name) }

// String returns the symbol's name.
func (s *Symbol) String() string { return s.Name }

// The intern table is sharded by name hash: concurrent compilation
// workers intern constantly (every symbol the optimizer's compile-time
// evaluator touches goes through here), and a single mutex would
// serialize them. Lookups of existing symbols — the overwhelmingly common
// case — take only a shard's read lock.
const internShards = 32

type internShard struct {
	mu sync.RWMutex
	m  map[string]*Symbol
}

var interned = func() [internShards]*internShard {
	var t [internShards]*internShard
	for i := range t {
		t[i] = &internShard{m: map[string]*Symbol{}}
	}
	return t
}()

func internShardFor(name string) *internShard {
	h := fnv.New32a()
	h.Write([]byte(name))
	return interned[h.Sum32()%internShards]
}

// Intern returns the unique symbol with the given name, creating it on
// first use. Symbol names are case-sensitive; the reader downcases input,
// matching the paper's lower-case source style.
func Intern(name string) *Symbol {
	sh := internShardFor(name)
	sh.mu.RLock()
	s, ok := sh.m[name]
	sh.mu.RUnlock()
	if ok {
		return s
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if s, ok := sh.m[name]; ok {
		return s
	}
	s = &Symbol{Name: name}
	sh.m[name] = s
	return s
}

// Gensym returns a fresh uninterned symbol whose name begins with prefix.
// It is used by the optimizer when it introduces functions (the f and g of
// the paper's nested-if transformation).
func Gensym(prefix string) *Symbol {
	gensymMu.Lock()
	gensymCounter++
	n := gensymCounter
	gensymMu.Unlock()
	return &Symbol{Name: fmt.Sprintf("%s%d", prefix, n)}
}

var (
	gensymMu      sync.Mutex
	gensymCounter int
)

// Distinguished symbols. Nil doubles as the empty list and boolean false;
// T is boolean truth.
var (
	Nil = Intern("nil")
	T   = Intern("t")

	SymQuote    = Intern("quote")
	SymFunction = Intern("function")
	SymLambda   = Intern("lambda")
	SymOptional = Intern("&optional")
	SymRest     = Intern("&rest")
)

// IsNil reports whether v is the empty list / false.
func IsNil(v Value) bool { return v == Value(Nil) }

// Truthy reports Lisp truth: everything except nil is true.
func Truthy(v Value) bool { return !IsNil(v) }

// Cons is a dotted pair.
type Cons struct {
	Car, Cdr Value
}

func (c *Cons) Write(b *strings.Builder) {
	// Abbreviate (quote x) as 'x and (function f) as #'f, as the paper's
	// back-translator does for readability.
	if s, ok := c.Car.(*Symbol); ok {
		if rest, ok2 := c.Cdr.(*Cons); ok2 && IsNil(rest.Cdr) {
			switch s {
			case SymQuote:
				b.WriteByte('\'')
				rest.Car.Write(b)
				return
			case SymFunction:
				b.WriteString("#'")
				rest.Car.Write(b)
				return
			}
		}
	}
	b.WriteByte('(')
	var cur Value = c
	first := true
	for {
		cc, ok := cur.(*Cons)
		if !ok {
			b.WriteString(" . ")
			cur.Write(b)
			break
		}
		if !first {
			b.WriteByte(' ')
		}
		first = false
		cc.Car.Write(b)
		if IsNil(cc.Cdr) {
			break
		}
		cur = cc.Cdr
	}
	b.WriteByte(')')
}

// NewCons builds a fresh pair.
func NewCons(car, cdr Value) *Cons { return &Cons{Car: car, Cdr: cdr} }

// List builds a proper list of the arguments.
func List(items ...Value) Value {
	var out Value = Nil
	for i := len(items) - 1; i >= 0; i-- {
		out = NewCons(items[i], out)
	}
	return out
}

// ListToSlice flattens a proper list into a slice. It returns an error for
// dotted or circular-looking (overlong) lists.
func ListToSlice(v Value) ([]Value, error) {
	var out []Value
	const limit = 1 << 24
	for !IsNil(v) {
		c, ok := v.(*Cons)
		if !ok {
			return nil, fmt.Errorf("sexp: improper list (dotted tail %s)", Print(v))
		}
		out = append(out, c.Car)
		v = c.Cdr
		if len(out) > limit {
			return nil, fmt.Errorf("sexp: list too long (circular?)")
		}
	}
	return out, nil
}

// Length returns the number of elements of a proper list, or -1 if v is
// not a proper list.
func Length(v Value) int {
	n := 0
	for !IsNil(v) {
		c, ok := v.(*Cons)
		if !ok {
			return -1
		}
		n++
		v = c.Cdr
	}
	return n
}

// String is a Lisp string.
type String string

func (s String) Write(b *strings.Builder) {
	b.WriteByte('"')
	for _, r := range string(s) {
		switch r {
		case '"', '\\':
			b.WriteByte('\\')
			b.WriteRune(r)
		case '\n':
			b.WriteString("\\n")
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
}

// Character is a Lisp character, printed #\c.
type Character rune

func (c Character) Write(b *strings.Builder) {
	switch c {
	case ' ':
		b.WriteString("#\\space")
	case '\n':
		b.WriteString("#\\newline")
	case '\t':
		b.WriteString("#\\tab")
	default:
		b.WriteString("#\\")
		b.WriteRune(rune(c))
	}
}

// Vector is a simple general vector, printed #(...).
type Vector struct {
	Items []Value
}

func (v *Vector) Write(b *strings.Builder) {
	b.WriteString("#(")
	for i, it := range v.Items {
		if i > 0 {
			b.WriteByte(' ')
		}
		it.Write(b)
	}
	b.WriteByte(')')
}

// Fixnum is a machine integer. Arithmetic that overflows promotes to
// *Bignum (the dialect's "integers of indefinite size").
type Fixnum int64

func (f Fixnum) Write(b *strings.Builder) { fmt.Fprintf(b, "%d", int64(f)) }

// Bignum is an arbitrary-precision integer.
type Bignum struct {
	X *big.Int
}

func (bn *Bignum) Write(b *strings.Builder) { b.WriteString(bn.X.String()) }

// Ratio is an exact rational with non-unit denominator.
type Ratio struct {
	X *big.Rat
}

func (r *Ratio) Write(b *strings.Builder) { b.WriteString(r.X.RatString()) }

// Flonum is a floating-point number (the paper's SWFLO world; we use the
// host's float64 as the single supported precision).
type Flonum float64

func (f Flonum) Write(b *strings.Builder) {
	s := fmt.Sprintf("%g", float64(f))
	// Ensure flonums read back as flonums: 3 prints as 3.0.
	if !strings.ContainsAny(s, ".eE") || strings.HasPrefix(s, "Inf") || strings.HasPrefix(s, "-Inf") || s == "NaN" {
		if !strings.ContainsAny(s, ".") && !strings.ContainsAny(s, "eE") {
			s += ".0"
		}
	}
	b.WriteString(s)
}

// Print renders v in reader syntax.
func Print(v Value) string {
	var b strings.Builder
	v.Write(&b)
	return b.String()
}

// Eq is object identity: pointer equality for heap objects, value equality
// for immediates of the same concrete type. As in the paper, eq is not
// guaranteed meaningful on numbers (use Eql).
func Eq(a, b Value) bool {
	switch x := a.(type) {
	case *Symbol:
		return a == b
	case Fixnum:
		y, ok := b.(Fixnum)
		return ok && x == y
	case Character:
		y, ok := b.(Character)
		return ok && x == y
	default:
		return a == b
	}
}

// Eql is Eq plus same-type numeric value equality — the paper's "object
// identity predicate for all objects".
func Eql(a, b Value) bool {
	if Eq(a, b) {
		return true
	}
	switch x := a.(type) {
	case Fixnum:
		if y, ok := b.(*Bignum); ok {
			return y.X.IsInt64() && y.X.Int64() == int64(x)
		}
	case *Bignum:
		switch y := b.(type) {
		case Fixnum:
			return x.X.IsInt64() && x.X.Int64() == int64(y)
		case *Bignum:
			return x.X.Cmp(y.X) == 0
		}
	case *Ratio:
		y, ok := b.(*Ratio)
		return ok && x.X.Cmp(y.X) == 0
	case Flonum:
		y, ok := b.(Flonum)
		return ok && x == y
	case String:
		return false // strings are eql only if eq
	}
	return false
}

// Equal is structural equality over conses, strings and vectors, with Eql
// at the leaves.
func Equal(a, b Value) bool {
	if Eql(a, b) {
		return true
	}
	switch x := a.(type) {
	case *Cons:
		y, ok := b.(*Cons)
		return ok && Equal(x.Car, y.Car) && Equal(x.Cdr, y.Cdr)
	case String:
		y, ok := b.(String)
		return ok && x == y
	case *Vector:
		y, ok := b.(*Vector)
		if !ok || len(x.Items) != len(y.Items) {
			return false
		}
		for i := range x.Items {
			if !Equal(x.Items[i], y.Items[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Bool converts a Go bool to Lisp t / nil.
func Bool(b bool) Value {
	if b {
		return T
	}
	return Nil
}
