package sexp

import (
	"fmt"
	"math"
	"math/big"
)

// The numeric tower. The dialect provides "integers of indefinite size,
// rational numbers, floating-point numbers … and complex numbers"; we
// implement fixnums (with silent bignum overflow), bignums, ratios and a
// single flonum precision. Generic operations apply float contagion and
// normalize exact results (bignums that fit become fixnums, ratios with
// unit denominators become integers).

// IsNumber reports whether v is any numeric type.
func IsNumber(v Value) bool {
	switch v.(type) {
	case Fixnum, *Bignum, *Ratio, Flonum:
		return true
	}
	return false
}

// IsInteger reports whether v is a fixnum or bignum.
func IsInteger(v Value) bool {
	switch v.(type) {
	case Fixnum, *Bignum:
		return true
	}
	return false
}

// normBig demotes a bignum to a fixnum when it fits.
func normBig(x *big.Int) Value {
	if x.IsInt64() {
		return Fixnum(x.Int64())
	}
	return &Bignum{X: new(big.Int).Set(x)}
}

// normRat demotes a rational to an integer when the denominator is 1.
func normRat(x *big.Rat) Value {
	if x.IsInt() {
		return normBig(x.Num())
	}
	return &Ratio{X: new(big.Rat).Set(x)}
}

func toBig(v Value) (*big.Int, bool) {
	switch x := v.(type) {
	case Fixnum:
		return big.NewInt(int64(x)), true
	case *Bignum:
		return x.X, true
	}
	return nil, false
}

func toRat(v Value) (*big.Rat, bool) {
	switch x := v.(type) {
	case Fixnum:
		return new(big.Rat).SetInt64(int64(x)), true
	case *Bignum:
		return new(big.Rat).SetInt(x.X), true
	case *Ratio:
		return x.X, true
	}
	return nil, false
}

// ToFloat converts any number to float64.
func ToFloat(v Value) (float64, error) {
	switch x := v.(type) {
	case Fixnum:
		return float64(x), nil
	case *Bignum:
		f, _ := new(big.Float).SetInt(x.X).Float64()
		return f, nil
	case *Ratio:
		f, _ := x.X.Float64()
		return f, nil
	case Flonum:
		return float64(x), nil
	}
	return 0, fmt.Errorf("sexp: %s is not a number", Print(v))
}

// ToInt64 converts an integer value to int64, failing on overflow or
// non-integers.
func ToInt64(v Value) (int64, error) {
	switch x := v.(type) {
	case Fixnum:
		return int64(x), nil
	case *Bignum:
		if x.X.IsInt64() {
			return x.X.Int64(), nil
		}
		return 0, fmt.Errorf("sexp: %s does not fit in a machine word", Print(v))
	}
	return 0, fmt.Errorf("sexp: %s is not an integer", Print(v))
}

type numErr struct{ op string }

func (e numErr) Error() string { return "sexp: " + e.op + ": non-numeric argument" }

// binop dispatches a generic binary operation with contagion
// fixnum→bignum→ratio→flonum.
func binop(op string, a, b Value,
	fi func(x, y int64) (Value, bool),
	bi func(x, y *big.Int) Value,
	ra func(x, y *big.Rat) Value,
	fl func(x, y float64) Value,
) (Value, error) {
	if !IsNumber(a) || !IsNumber(b) {
		return nil, fmt.Errorf("sexp: %s: non-numeric argument %s",
			op, Print(pickNonNumber(a, b)))
	}
	if af, aok := a.(Flonum); aok {
		bf, err := ToFloat(b)
		if err != nil {
			return nil, err
		}
		return fl(float64(af), bf), nil
	}
	if bf, bok := b.(Flonum); bok {
		af, err := ToFloat(a)
		if err != nil {
			return nil, err
		}
		return fl(af, float64(bf)), nil
	}
	if ax, aok := a.(Fixnum); aok {
		if bx, bok := b.(Fixnum); bok && fi != nil {
			if r, ok := fi(int64(ax), int64(bx)); ok {
				return r, nil
			}
		}
	}
	if ar, aok := a.(*Ratio); aok {
		br, _ := toRat(b)
		return ra(ar.X, br), nil
	}
	if br, bok := b.(*Ratio); bok {
		ar, _ := toRat(a)
		return ra(ar, br.X), nil
	}
	ax, _ := toBig(a)
	bx, _ := toBig(b)
	if bi == nil {
		ar, _ := toRat(a)
		br, _ := toRat(b)
		return ra(ar, br), nil
	}
	return bi(ax, bx), nil
}

func pickNonNumber(a, b Value) Value {
	if !IsNumber(a) {
		return a
	}
	return b
}

// Add returns a+b with contagion and overflow promotion.
func Add(a, b Value) (Value, error) {
	return binop("+", a, b,
		func(x, y int64) (Value, bool) {
			s := x + y
			if (x > 0 && y > 0 && s < 0) || (x < 0 && y < 0 && s >= 0) {
				return nil, false
			}
			return Fixnum(s), true
		},
		func(x, y *big.Int) Value { return normBig(new(big.Int).Add(x, y)) },
		func(x, y *big.Rat) Value { return normRat(new(big.Rat).Add(x, y)) },
		func(x, y float64) Value { return Flonum(x + y) })
}

// Sub returns a-b.
func Sub(a, b Value) (Value, error) {
	return binop("-", a, b,
		func(x, y int64) (Value, bool) {
			d := x - y
			if (x >= 0 && y < 0 && d < 0) || (x < 0 && y > 0 && d >= 0) {
				return nil, false
			}
			return Fixnum(d), true
		},
		func(x, y *big.Int) Value { return normBig(new(big.Int).Sub(x, y)) },
		func(x, y *big.Rat) Value { return normRat(new(big.Rat).Sub(x, y)) },
		func(x, y float64) Value { return Flonum(x - y) })
}

// Mul returns a*b.
func Mul(a, b Value) (Value, error) {
	return binop("*", a, b,
		func(x, y int64) (Value, bool) {
			if x == 0 || y == 0 {
				return Fixnum(0), true
			}
			p := x * y
			if p/y != x || (x == -1 && y == math.MinInt64) || (y == -1 && x == math.MinInt64) {
				return nil, false
			}
			return Fixnum(p), true
		},
		func(x, y *big.Int) Value { return normBig(new(big.Int).Mul(x, y)) },
		func(x, y *big.Rat) Value { return normRat(new(big.Rat).Mul(x, y)) },
		func(x, y float64) Value { return Flonum(x * y) })
}

// Div returns a/b: exact (possibly a ratio) for exact operands, flonum
// otherwise. Division by exact zero is an error.
func Div(a, b Value) (Value, error) {
	_, aFloat := a.(Flonum)
	_, bFloat := b.(Flonum)
	if !aFloat && !bFloat {
		if z, err := zeroDivisor(b); err != nil {
			return nil, err
		} else if z {
			return nil, fmt.Errorf("sexp: /: division by zero")
		}
	}
	return binop("/", a, b,
		nil,
		nil,
		func(x, y *big.Rat) Value { return normRat(new(big.Rat).Quo(x, y)) },
		func(x, y float64) Value { return Flonum(x / y) })
}

func zeroDivisor(b Value) (bool, error) {
	switch x := b.(type) {
	case Fixnum:
		return x == 0, nil
	case *Bignum:
		return x.X.Sign() == 0, nil
	case *Ratio:
		return x.X.Sign() == 0, nil
	case Flonum:
		return false, nil // IEEE semantics: produce Inf/NaN
	}
	return false, fmt.Errorf("sexp: /: non-numeric argument %s", Print(b))
}

// Neg returns -a.
func Neg(a Value) (Value, error) { return Sub(Fixnum(0), a) }

// Compare returns -1, 0 or +1 ordering a and b numerically.
func Compare(a, b Value) (int, error) {
	if !IsNumber(a) || !IsNumber(b) {
		return 0, fmt.Errorf("sexp: compare: non-numeric argument %s",
			Print(pickNonNumber(a, b)))
	}
	if _, ok := a.(Flonum); ok {
		return cmpFloat(a, b)
	}
	if _, ok := b.(Flonum); ok {
		return cmpFloat(a, b)
	}
	ar, _ := toRat(a)
	br, _ := toRat(b)
	return ar.Cmp(br), nil
}

func cmpFloat(a, b Value) (int, error) {
	x, err := ToFloat(a)
	if err != nil {
		return 0, err
	}
	y, err := ToFloat(b)
	if err != nil {
		return 0, err
	}
	switch {
	case x < y:
		return -1, nil
	case x > y:
		return 1, nil
	}
	return 0, nil
}

// NumEqual reports a = b numerically (across types, unlike Eql).
func NumEqual(a, b Value) (bool, error) {
	c, err := Compare(a, b)
	return c == 0, err
}

// Zerop reports whether v is numerically zero.
func Zerop(v Value) (bool, error) { return predInt(v, func(c int) bool { return c == 0 }) }

// Plusp reports v > 0; Minusp reports v < 0.
func Plusp(v Value) (bool, error)  { return predInt(v, func(c int) bool { return c > 0 }) }
func Minusp(v Value) (bool, error) { return predInt(v, func(c int) bool { return c < 0 }) }

func predInt(v Value, f func(int) bool) (bool, error) {
	c, err := Compare(v, Fixnum(0))
	if err != nil {
		return false, err
	}
	return f(c), nil
}

// Oddp and Evenp test integer parity.
func Oddp(v Value) (bool, error) {
	x, ok := toBig(v)
	if !ok {
		return false, fmt.Errorf("sexp: oddp: %s is not an integer", Print(v))
	}
	return x.Bit(0) == 1, nil
}

// Evenp reports whether the integer v is even.
func Evenp(v Value) (bool, error) {
	odd, err := Oddp(v)
	return !odd, err
}

// DivMode selects one of the paper's rounding modes for integer division
// ("floor, ceiling, truncate, round, mod, and rem are all primitive
// instructions" on the S-1).
type DivMode int

// Division rounding modes.
const (
	DivFloor DivMode = iota
	DivCeiling
	DivTruncate
	DivRound
)

// IntDiv divides a by b under the given rounding mode, returning quotient
// and remainder such that a = q*b + r.
func IntDiv(mode DivMode, a, b Value) (Value, Value, error) {
	if af, ok := a.(Flonum); ok {
		bf, err := ToFloat(b)
		if err != nil {
			return nil, nil, err
		}
		q := roundFloat(mode, float64(af)/bf)
		return Flonum(q), Flonum(float64(af) - q*bf), nil
	}
	if bf, ok := b.(Flonum); ok {
		af, err := ToFloat(a)
		if err != nil {
			return nil, nil, err
		}
		q := roundFloat(mode, af/float64(bf))
		return Flonum(q), Flonum(af - q*float64(bf)), nil
	}
	ax, aok := toBig(a)
	bx, bok := toBig(b)
	if !aok || !bok {
		// Exact ratios: divide, round, recompute remainder.
		ar, ok1 := toRat(a)
		br, ok2 := toRat(b)
		if !ok1 || !ok2 {
			return nil, nil, fmt.Errorf("sexp: division: non-numeric argument")
		}
		if br.Sign() == 0 {
			return nil, nil, fmt.Errorf("sexp: division by zero")
		}
		q := new(big.Rat).Quo(ar, br)
		qi := ratRound(mode, q)
		r := new(big.Rat).Sub(ar, new(big.Rat).Mul(new(big.Rat).SetInt(qi), br))
		return normBig(qi), normRat(r), nil
	}
	if bx.Sign() == 0 {
		return nil, nil, fmt.Errorf("sexp: division by zero")
	}
	q, r := new(big.Int), new(big.Int)
	switch mode {
	case DivTruncate:
		q.QuoRem(ax, bx, r)
	case DivFloor:
		q.QuoRem(ax, bx, r)
		if r.Sign() != 0 && (r.Sign() < 0) != (bx.Sign() < 0) {
			q.Sub(q, big.NewInt(1))
			r.Add(r, bx)
		}
	case DivCeiling:
		q.QuoRem(ax, bx, r)
		if r.Sign() != 0 && (r.Sign() < 0) == (bx.Sign() < 0) {
			q.Add(q, big.NewInt(1))
			r.Sub(r, bx)
		}
	case DivRound:
		q.QuoRem(ax, bx, r)
		// Round half to even.
		twice := new(big.Int).Mul(r, big.NewInt(2))
		twice.Abs(twice)
		ab := new(big.Int).Abs(bx)
		c := twice.Cmp(ab)
		if c > 0 || (c == 0 && q.Bit(0) == 1) {
			adj := big.NewInt(1)
			if (ax.Sign() < 0) != (bx.Sign() < 0) {
				adj.Neg(adj)
			}
			q.Add(q, adj)
			r.Sub(ax, new(big.Int).Mul(q, bx))
		}
	}
	return normBig(q), normBig(r), nil
}

func roundFloat(mode DivMode, x float64) float64 {
	switch mode {
	case DivFloor:
		return math.Floor(x)
	case DivCeiling:
		return math.Ceil(x)
	case DivTruncate:
		return math.Trunc(x)
	default:
		return math.RoundToEven(x)
	}
}

func ratRound(mode DivMode, q *big.Rat) *big.Int {
	f, _ := q.Float64()
	return big.NewInt(int64(roundFloat(mode, f)))
}

// Mod returns the floor-mode remainder; Rem the truncate-mode remainder.
func Mod(a, b Value) (Value, error) {
	_, r, err := IntDiv(DivFloor, a, b)
	return r, err
}

// Rem returns the truncating remainder of a/b.
func Rem(a, b Value) (Value, error) {
	_, r, err := IntDiv(DivTruncate, a, b)
	return r, err
}

// Min and Max over two numbers.
func Min(a, b Value) (Value, error) {
	c, err := Compare(a, b)
	if err != nil {
		return nil, err
	}
	if c <= 0 {
		return a, nil
	}
	return b, nil
}

// Max returns the larger of a and b.
func Max(a, b Value) (Value, error) {
	c, err := Compare(a, b)
	if err != nil {
		return nil, err
	}
	if c >= 0 {
		return a, nil
	}
	return b, nil
}

// Abs returns |a|.
func Abs(a Value) (Value, error) {
	m, err := Minusp(a)
	if err != nil {
		return nil, err
	}
	if m {
		return Neg(a)
	}
	return a, nil
}

// Float coerces any number to a flonum.
func Float(a Value) (Value, error) {
	f, err := ToFloat(a)
	return Flonum(f), err
}
