package sexp

import (
	"math"
	"math/big"
	"strings"
	"testing"
	"testing/quick"
)

func TestInternIdentity(t *testing.T) {
	a := Intern("foo")
	b := Intern("foo")
	if a != b {
		t.Fatalf("Intern not idempotent: %p vs %p", a, b)
	}
	if Intern("foo") == Intern("bar") {
		t.Fatalf("distinct names interned to same symbol")
	}
}

func TestGensymUnique(t *testing.T) {
	a := Gensym("f")
	b := Gensym("f")
	if a == b {
		t.Fatalf("gensyms not unique")
	}
	if a == Intern(a.Name) {
		t.Fatalf("gensym is interned")
	}
}

func TestReadAtoms(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"foo", "foo"},
		{"FOO", "foo"}, // downcasing
		{"42", "42"},
		{"-17", "-17"},
		{"+5", "5"},
		{"3.0", "3.0"},
		{"0.159154943", "0.159154943"},
		{"1e3", "1000.0"},
		{"-2.5e-2", "-0.025"},
		{"1/2", "1/2"},
		{"4/2", "2"},
		{"-3/6", "-1/2"},
		{"123456789012345678901234567890", "123456789012345678901234567890"},
		{`"hi\nthere"`, `"hi\nthere"`},
		{"#\\a", "#\\a"},
		{"#\\space", "#\\space"},
		{"1+", "1+"}, // symbol, not number
		{"-", "-"},
		{"...", "..."},
	}
	for _, c := range cases {
		v, err := ReadOne(c.in)
		if err != nil {
			t.Errorf("ReadOne(%q): %v", c.in, err)
			continue
		}
		if got := Print(v); got != c.want {
			t.Errorf("ReadOne(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestReadLists(t *testing.T) {
	cases := []struct{ in, want string }{
		{"(a b c)", "(a b c)"},
		{"( a  b  c )", "(a b c)"},
		{"(a . b)", "(a . b)"},
		{"(a b . c)", "(a b . c)"},
		{"()", "nil"},
		{"'x", "'x"},
		{"#'car", "#'car"},
		{"(quote (1 2))", "'(1 2)"},
		{"((lambda (x) x) 3)", "((lambda (x) x) 3)"},
		{"#(1 2 3)", "#(1 2 3)"},
		{"(a ; comment\n b)", "(a b)"},
		{"(a #| block |# b)", "(a b)"},
		{"`(a ,b ,@c)", "(quasiquote (a (unquote b) (unquote-splicing c)))"},
	}
	for _, c := range cases {
		v, err := ReadOne(c.in)
		if err != nil {
			t.Errorf("ReadOne(%q): %v", c.in, err)
			continue
		}
		if got := Print(v); got != c.want {
			t.Errorf("ReadOne(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestReadErrors(t *testing.T) {
	bad := []string{"(a b", ")", "'", `"abc`, "(a . )", "(a . b c)", "#\\toolong", "#|x", "(. x)"}
	for _, in := range bad {
		if v, err := ReadOne(in); err == nil {
			t.Errorf("ReadOne(%q) succeeded with %s, want error", in, Print(v))
		}
	}
	// Trailing junk.
	if _, err := ReadOne("a b"); err == nil {
		t.Errorf("ReadOne(\"a b\") should fail on trailing form")
	}
}

func TestReadAll(t *testing.T) {
	vs, err := ReadAll("(defun f (x) x) (f 3) ; done\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("got %d forms, want 2", len(vs))
	}
}

func TestSyntaxErrorLine(t *testing.T) {
	_, err := ReadAll("(a)\n(b\n")
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("want *SyntaxError, got %T: %v", err, err)
	}
	if se.Line < 2 {
		t.Errorf("error line = %d, want >= 2", se.Line)
	}
	if !strings.Contains(se.Error(), "line") {
		t.Errorf("error text should mention line: %q", se.Error())
	}
}

func TestPrintReadRoundTrip(t *testing.T) {
	forms := []string{
		"(defun quadratic (a b c) (let ((d (- (* b b) (* 4.0 a c)))) d))",
		"(a (b (c (d))) . e)",
		"#(1 (2 3) \"s\")",
		"'(1 2/3 4.5)",
	}
	for _, f := range forms {
		v1 := mustRead(f)
		v2 := mustRead(Print(v1))
		if !Equal(v1, v2) {
			t.Errorf("round trip failed for %q: %s vs %s", f, Print(v1), Print(v2))
		}
	}
}

func TestEqEqlEqual(t *testing.T) {
	if !Eq(Intern("a"), Intern("a")) {
		t.Error("eq symbols")
	}
	if Eq(NewCons(Nil, Nil), NewCons(Nil, Nil)) {
		t.Error("distinct conses are not eq")
	}
	if !Eql(Fixnum(3), Fixnum(3)) {
		t.Error("eql fixnums")
	}
	if Eql(Fixnum(3), Flonum(3)) {
		t.Error("eql across types must be false")
	}
	if !Eql(Flonum(3.5), Flonum(3.5)) {
		t.Error("eql flonums")
	}
	big1 := &Bignum{X: big.NewInt(7)}
	if !Eql(big1, Fixnum(7)) || !Eql(Fixnum(7), big1) {
		t.Error("eql fixnum/bignum of same value")
	}
	if !Equal(mustRead("(1 (2) 3)"), mustRead("(1 (2) 3)")) {
		t.Error("equal lists")
	}
	if Equal(mustRead("(1 2)"), mustRead("(1 3)")) {
		t.Error("unequal lists")
	}
	if !Equal(String("ab"), String("ab")) {
		t.Error("equal strings")
	}
}

func TestArithmeticBasics(t *testing.T) {
	type tc struct {
		op   func(a, b Value) (Value, error)
		a, b string
		want string
	}
	cases := []tc{
		{Add, "1", "2", "3"},
		{Add, "1", "2.5", "3.5"},
		{Add, "1/2", "1/3", "5/6"},
		{Add, "1/2", "1/2", "1"},
		{Sub, "10", "4", "6"},
		{Mul, "6", "7", "42"},
		{Mul, "2/3", "3/2", "1"},
		{Div, "1", "3", "1/3"},
		{Div, "6", "3", "2"},
		{Div, "1.0", "4", "0.25"},
		{Mod, "7", "3", "1"},
		{Mod, "-7", "3", "2"},
		{Rem, "-7", "3", "-1"},
		{Max, "3", "4.0", "4.0"},
		{Min, "3", "4.0", "3"},
	}
	for _, c := range cases {
		got, err := c.op(mustRead(c.a), mustRead(c.b))
		if err != nil {
			t.Errorf("(%s %s): %v", c.a, c.b, err)
			continue
		}
		if Print(got) != c.want {
			t.Errorf("op(%s,%s) = %s want %s", c.a, c.b, Print(got), c.want)
		}
	}
}

func TestFixnumOverflowPromotes(t *testing.T) {
	v, err := Add(Fixnum(math.MaxInt64), Fixnum(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v.(*Bignum); !ok {
		t.Fatalf("overflowing add = %T %s, want bignum", v, Print(v))
	}
	v2, err := Mul(Fixnum(math.MaxInt64), Fixnum(math.MaxInt64))
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Int).Mul(big.NewInt(math.MaxInt64), big.NewInt(math.MaxInt64))
	if Print(v2) != want.String() {
		t.Fatalf("big multiply wrong: %s", Print(v2))
	}
	// And demotion back down.
	v3, err := Sub(v, Fixnum(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v3.(Fixnum); !ok {
		t.Fatalf("bignum-1 should demote to fixnum, got %T", v3)
	}
}

func TestDivisionModes(t *testing.T) {
	cases := []struct {
		mode   DivMode
		a, b   int64
		q, rem int64
	}{
		{DivFloor, 7, 2, 3, 1},
		{DivFloor, -7, 2, -4, 1},
		{DivCeiling, 7, 2, 4, -1},
		{DivTruncate, -7, 2, -3, -1},
		{DivRound, 7, 2, 4, -1}, // 3.5 rounds to even 4
		{DivRound, 5, 2, 2, 1},  // 2.5 rounds to even 2
		{DivRound, -5, 2, -2, -1},
	}
	for _, c := range cases {
		q, r, err := IntDiv(c.mode, Fixnum(c.a), Fixnum(c.b))
		if err != nil {
			t.Fatal(err)
		}
		if q != Value(Fixnum(c.q)) || r != Value(Fixnum(c.rem)) {
			t.Errorf("IntDiv(%v,%d,%d) = %s,%s want %d,%d",
				c.mode, c.a, c.b, Print(q), Print(r), c.q, c.rem)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	if _, err := Div(Fixnum(1), Fixnum(0)); err == nil {
		t.Error("exact division by zero should fail")
	}
	if v, err := Div(Flonum(1), Fixnum(0)); err != nil {
		t.Errorf("float division by zero should give Inf: %v", err)
	} else if f, _ := ToFloat(v); !math.IsInf(f, 1) {
		t.Errorf("1.0/0 = %v, want +Inf", v)
	}
	if _, _, err := IntDiv(DivFloor, Fixnum(1), Fixnum(0)); err == nil {
		t.Error("floor by zero should fail")
	}
}

func TestNonNumericArithmetic(t *testing.T) {
	if _, err := Add(Intern("x"), Fixnum(1)); err == nil {
		t.Error("adding symbol should fail")
	}
	if _, err := Compare(Fixnum(1), String("s")); err == nil {
		t.Error("comparing string should fail")
	}
	if _, err := Oddp(Flonum(1.5)); err == nil {
		t.Error("oddp of flonum should fail")
	}
}

func TestPredicates(t *testing.T) {
	check := func(name string, got bool, err error, want bool) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != want {
			t.Errorf("%s = %v want %v", name, got, want)
		}
	}
	z, err := Zerop(Fixnum(0))
	check("zerop 0", z, err, true)
	z, err = Zerop(Flonum(0))
	check("zerop 0.0", z, err, true)
	o, err := Oddp(Fixnum(3))
	check("oddp 3", o, err, true)
	e, err := Evenp(Fixnum(3))
	check("evenp 3", e, err, false)
	p, err := Plusp(mustRead("1/2"))
	check("plusp 1/2", p, err, true)
	m, err := Minusp(mustRead("-3"))
	check("minusp -3", m, err, true)
}

// Property: integer addition over fixnums agrees with big.Int arithmetic
// regardless of overflow.
func TestAddMatchesBigInt(t *testing.T) {
	f := func(a, b int64) bool {
		got, err := Add(Fixnum(a), Fixnum(b))
		if err != nil {
			return false
		}
		want := new(big.Int).Add(big.NewInt(a), big.NewInt(b))
		return Print(got) == want.String()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: for integers and floor mode, a = q*b + r and 0 <= r < |b|.
func TestFloorDivInvariant(t *testing.T) {
	f := func(a int64, b int32) bool {
		if b == 0 {
			return true
		}
		q, r, err := IntDiv(DivFloor, Fixnum(a), Fixnum(int64(b)))
		if err != nil {
			return false
		}
		qb, err := Mul(q, Fixnum(int64(b)))
		if err != nil {
			return false
		}
		sum, err := Add(qb, r)
		if err != nil {
			return false
		}
		eq, err := NumEqual(sum, Fixnum(a))
		if err != nil || !eq {
			return false
		}
		ri, err := ToInt64(r)
		if err != nil {
			return false
		}
		ab := int64(b)
		if ab < 0 {
			ab = -ab
		}
		if int64(b) > 0 {
			return ri >= 0 && ri < ab
		}
		return ri <= 0 && -ri < ab
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Print/Read round-trips fixnums and flonums.
func TestNumberRoundTrip(t *testing.T) {
	fi := func(a int64) bool {
		v := mustRead(Print(Fixnum(a)))
		return Eql(v, Fixnum(a))
	}
	if err := quick.Check(fi, nil); err != nil {
		t.Error(err)
	}
	fl := func(a float64) bool {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return true
		}
		v, err := ReadOne(Print(Flonum(a)))
		if err != nil {
			return false
		}
		got, err := ToFloat(v)
		if err != nil {
			return false
		}
		// %g keeps enough digits for approximate round trip; require
		// close agreement rather than bit equality.
		if a == 0 {
			return got == 0
		}
		return math.Abs(got-a) <= 1e-9*math.Abs(a)
	}
	if err := quick.Check(fl, nil); err != nil {
		t.Error(err)
	}
}

func TestListHelpers(t *testing.T) {
	l := List(Fixnum(1), Fixnum(2), Fixnum(3))
	if Length(l) != 3 {
		t.Errorf("Length = %d", Length(l))
	}
	s, err := ListToSlice(l)
	if err != nil || len(s) != 3 {
		t.Fatalf("ListToSlice: %v %v", s, err)
	}
	if Length(NewCons(Nil, Fixnum(1))) != -1 {
		t.Error("dotted list should have Length -1")
	}
	if _, err := ListToSlice(NewCons(Nil, Fixnum(1))); err == nil {
		t.Error("ListToSlice of dotted list should fail")
	}
	if Length(Nil) != 0 {
		t.Error("Length nil = 0")
	}
}

func TestTruthy(t *testing.T) {
	if Truthy(Nil) {
		t.Error("nil is false")
	}
	if !Truthy(Fixnum(0)) {
		t.Error("0 is true in Lisp")
	}
	if Bool(true) != Value(T) || Bool(false) != Value(Nil) {
		t.Error("Bool conversion")
	}
}

// mustRead parses one form, panicking on error — a test-table
// convenience; the production reader paths all return errors.
func mustRead(src string) Value {
	v, err := ReadOne(src)
	if err != nil {
		panic(err)
	}
	return v
}
