package sexp

import (
	"strings"
	"testing"
)

func TestSyntaxErrorCarriesLineAndColumn(t *testing.T) {
	cases := []struct {
		src        string
		line, col  int
		msgPattern string
	}{
		{")", 1, 1, "unexpected )"},
		{"(a b\n  ))", 2, 4, "unexpected )"},
		{"(a b", 1, 5, "unterminated list"},
		{"\n\n   #z", 3, 5, "unknown dispatch"},
		{`"abc`, 1, 5, "unterminated string"},
	}
	for _, c := range cases {
		_, err := ReadAll(c.src)
		if err == nil {
			t.Errorf("ReadAll(%q): expected error", c.src)
			continue
		}
		se, ok := err.(*SyntaxError)
		if !ok {
			t.Errorf("ReadAll(%q): error %v is not a SyntaxError", c.src, err)
			continue
		}
		if se.Line != c.line || se.Col != c.col {
			t.Errorf("ReadAll(%q): position %d:%d, want %d:%d (%s)",
				c.src, se.Line, se.Col, c.line, c.col, se.Msg)
		}
		if !strings.Contains(se.Msg, c.msgPattern) {
			t.Errorf("ReadAll(%q): msg %q, want %q", c.src, se.Msg, c.msgPattern)
		}
	}
}

func TestReadAllRecoverResync(t *testing.T) {
	src := `(defun good-1 (x) (* x x))
(defun broken-1 (x) (* x x)       ; missing close paren
(defun good-2 (y) (+ y 1))
(defun broken-2 (z) (oops . . z))
(defun good-3 (z) z)
`
	forms, errs := ReadAllRecover(src)
	// broken-1's missing paren makes the reader swallow good-2's line as
	// a nested form until it trips over broken-2's dotted garbage — one
	// contiguous error region, one diagnostic.
	if len(errs) != 1 {
		t.Fatalf("got %d errors (%v), want 1", len(errs), errs)
	}
	// The broken region must not swallow its healthy neighbours.
	var names []string
	for _, f := range forms {
		items, err := ListToSlice(f.Val)
		if err != nil || len(items) < 2 {
			t.Fatalf("unexpected form shape %v", f.Val)
		}
		names = append(names, items[1].(*Symbol).Name)
	}
	// Resync recovers at good-3: good-1 and good-3 survive, and the
	// error carries a position.
	want := map[string]bool{"good-1": true, "good-3": true}
	for n := range want {
		found := false
		for _, g := range names {
			if g == n {
				found = true
			}
		}
		if !found {
			t.Errorf("form %s lost during resync (got %v)", n, names)
		}
	}
	for _, e := range errs {
		if e.Line == 0 || e.Col == 0 {
			t.Errorf("error without position: %v", e)
		}
	}
}

func TestReadAllRecoverIndependentErrors(t *testing.T) {
	// Self-contained broken forms: each error is confined to its own
	// top-level form, so every good unit parses.
	src := "(defun a () 1)\n(defun bad () #z)\n(defun b () 2)\n(defun bad2 ( #q ) 3)\n(defun c () 3)\n"
	forms, errs := ReadAllRecover(src)
	if len(errs) != 2 {
		t.Fatalf("got %d errors (%v), want 2", len(errs), errs)
	}
	if len(forms) != 3 {
		t.Fatalf("got %d forms, want 3", len(forms))
	}
	wantPos := [][2]int{{1, 1}, {3, 1}, {5, 1}}
	for i, f := range forms {
		if f.Line != wantPos[i][0] || f.Col != wantPos[i][1] {
			t.Errorf("form %d at %d:%d, want %d:%d", i, f.Line, f.Col,
				wantPos[i][0], wantPos[i][1])
		}
	}
}

func TestReadAllRecoverCleanSourceMatchesReadAll(t *testing.T) {
	src := "(defun f (x) (* x x))\n'(a . b)\n#(1 2 3)\n42\n"
	forms, errs := ReadAllRecover(src)
	if len(errs) != 0 {
		t.Fatalf("clean source produced errors: %v", errs)
	}
	plain, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(forms) != len(plain) {
		t.Fatalf("form count %d vs %d", len(forms), len(plain))
	}
	for i := range plain {
		if Print(forms[i].Val) != Print(plain[i]) {
			t.Errorf("form %d: %s vs %s", i, Print(forms[i].Val), Print(plain[i]))
		}
	}
}

func TestDeepNestingIsAnErrorNotACrash(t *testing.T) {
	deep := strings.Repeat("(", 60_000)
	if _, err := ReadAll(deep); err == nil {
		t.Fatal("expected depth error")
	} else if !strings.Contains(err.Error(), "nested too deeply") {
		t.Fatalf("got %v", err)
	}
	quoted := strings.Repeat("'", 60_000) + "x"
	if _, err := ReadAll(quoted); err == nil {
		t.Fatal("expected depth error for quote chain")
	}
	// A legal, modestly nested form still reads.
	ok := strings.Repeat("(", 500) + "x" + strings.Repeat(")", 500)
	if _, err := ReadAll(ok); err != nil {
		t.Fatalf("legal nesting rejected: %v", err)
	}
}
