package sexp

import (
	"fmt"
	"math/big"
	"strings"
	"unicode"
)

// Reader parses S-expressions from text. Supported syntax: symbols
// (downcased; `|...|` preserves case), fixnums/bignums, ratios (`n/d`),
// flonums, strings, characters (`#\x`), lists and dotted pairs, `'`
// quote, `#'` function, “ ` “/`,`/`,@` quasiquote, `#(...)` vectors and
// `;` line comments plus `#|...|#` block comments.
type Reader struct {
	src []rune
	pos int
	// line and lineStart track the current source line (1-based) and the
	// rune index where it begins, so every error carries a column.
	line      int
	lineStart int
	// depth is the current form-nesting depth; maxNestingDepth bounds it
	// so pathological inputs fail with a syntax error instead of
	// unbounded recursion.
	depth int
}

// maxNestingDepth bounds form nesting ("(((...": lists, quotes,
// vectors). Real programs sit far below it; fuzzers do not.
const maxNestingDepth = 10_000

// SyntaxError describes a reader failure with its source line and
// column (both 1-based).
type SyntaxError struct {
	Line int
	Col  int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sexp: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

// NewReader returns a Reader over src.
func NewReader(src string) *Reader {
	return &Reader{src: []rune(src), line: 1}
}

// col is the 1-based column of the reader's current position.
func (r *Reader) col() int { return r.pos - r.lineStart + 1 }

// bumpLine records a newline whose '\n' sits at rune index pos.
func (r *Reader) bumpLine(pos int) {
	r.line++
	r.lineStart = pos + 1
}

// errHere builds a SyntaxError at the current position.
func (r *Reader) errHere(msg string) *SyntaxError {
	return &SyntaxError{Line: r.line, Col: r.col(), Msg: msg}
}

// readSafe is Read with a recover barrier: the reader must never take
// down its caller, so an internal panic (an invariant bug, not a user
// error) degrades into a positioned SyntaxError.
func (r *Reader) readSafe() (v Value, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			v, err = nil, r.errHere(fmt.Sprintf("reader panic: %v", rec))
		}
	}()
	return r.Read()
}

// ReadAll parses every form in src, stopping at the first error.
func ReadAll(src string) ([]Value, error) {
	r := NewReader(src)
	var out []Value
	for {
		v, err := r.readSafe()
		if err != nil {
			return nil, err
		}
		if v == nil {
			return out, nil
		}
		out = append(out, v)
	}
}

// Form is a top-level form annotated with the position of its first
// character (1-based line and column).
type Form struct {
	Val  Value
	Line int
	Col  int
}

// ReadAllRecover parses every top-level form in src, recovering from
// syntax errors: each error is recorded with its position, the reader
// resynchronizes to the next plausible top-level form (the next '('
// that is the first non-blank rune on its line), and parsing continues.
// The good forms and all errors are returned together, so a load can
// compile every healthy unit while reporting every sick one.
func ReadAllRecover(src string) ([]Form, []*SyntaxError) {
	r := NewReader(src)
	var forms []Form
	var errs []*SyntaxError
	for {
		r.skipSpace()
		if r.pos >= len(r.src) {
			return forms, errs
		}
		start, line, col := r.pos, r.line, r.col()
		v, err := r.readSafe()
		if err != nil {
			se, ok := err.(*SyntaxError)
			if !ok {
				se = &SyntaxError{Line: r.line, Col: r.col(), Msg: err.Error()}
			}
			errs = append(errs, se)
			if !r.resync(start) {
				return forms, errs
			}
			continue
		}
		if v == nil {
			return forms, errs
		}
		forms = append(forms, Form{Val: v, Line: line, Col: col})
	}
}

// resync advances past a syntax error to the next '(' that is the
// first non-blank rune on its line, strictly beyond from (the start of
// the broken form, guaranteeing progress). Reports false when the input
// is exhausted first.
func (r *Reader) resync(from int) bool {
	if r.pos <= from {
		r.pos = from + 1
	}
	atLineStart := false
	for ; r.pos < len(r.src); r.pos++ {
		c := r.src[r.pos]
		switch {
		case c == '\n':
			r.bumpLine(r.pos)
			atLineStart = true
		case atLineStart && c == '(':
			return true
		case !unicode.IsSpace(c):
			atLineStart = false
		}
	}
	return false
}

// ReadOne parses exactly one form from src, failing on trailing junk.
func ReadOne(src string) (Value, error) {
	r := NewReader(src)
	v, err := r.readSafe()
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, r.errHere("empty input")
	}
	if tail, err := r.readSafe(); err != nil {
		return nil, err
	} else if tail != nil {
		return nil, r.errHere("trailing form " + Print(tail))
	}
	return v, nil
}

// Read returns the next form, or (nil, nil) at end of input.
func (r *Reader) Read() (Value, error) {
	r.skipSpace()
	if r.pos >= len(r.src) {
		return nil, nil
	}
	c := r.src[r.pos]
	switch c {
	case '(':
		r.pos++
		return r.readList(')')
	case ')':
		return nil, r.errHere("unexpected )")
	case '\'':
		r.pos++
		return r.readWrapped(SymQuote)
	case '`':
		r.pos++
		return r.readWrapped(Intern("quasiquote"))
	case ',':
		r.pos++
		if r.pos < len(r.src) && r.src[r.pos] == '@' {
			r.pos++
			return r.readWrapped(Intern("unquote-splicing"))
		}
		return r.readWrapped(Intern("unquote"))
	case '"':
		r.pos++
		return r.readString()
	case '#':
		return r.readHash()
	case ';':
		r.skipLineComment()
		return r.Read()
	default:
		return r.readAtom()
	}
}

func (r *Reader) readWrapped(head *Symbol) (Value, error) {
	if r.depth++; r.depth > maxNestingDepth {
		r.depth--
		return nil, r.errHere("form nested too deeply")
	}
	v, err := r.Read()
	r.depth--
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, r.errHere("end of input after " + head.Name)
	}
	return List(head, v), nil
}

func (r *Reader) readHash() (Value, error) {
	r.pos++ // past '#'
	if r.pos >= len(r.src) {
		return nil, r.errHere("end of input after #")
	}
	switch r.src[r.pos] {
	case '\'':
		r.pos++
		return r.readWrapped(SymFunction)
	case '(':
		r.pos++
		lst, err := r.readList(')')
		if err != nil {
			return nil, err
		}
		items, err := ListToSlice(lst)
		if err != nil {
			return nil, err
		}
		return &Vector{Items: items}, nil
	case '\\':
		r.pos++
		return r.readCharacter()
	case '|':
		r.pos++
		if err := r.skipBlockComment(); err != nil {
			return nil, err
		}
		return r.Read()
	}
	return nil, r.errHere(fmt.Sprintf("unknown dispatch #%c", r.src[r.pos]))
}

func (r *Reader) readCharacter() (Value, error) {
	start := r.pos
	for r.pos < len(r.src) && !isDelimiter(r.src[r.pos]) {
		r.pos++
	}
	name := string(r.src[start:r.pos])
	switch strings.ToLower(name) {
	case "space":
		return Character(' '), nil
	case "newline":
		return Character('\n'), nil
	case "tab":
		return Character('\t'), nil
	}
	runes := []rune(name)
	if len(runes) != 1 {
		return nil, r.errHere("bad character name #\\" + name)
	}
	return Character(runes[0]), nil
}

func (r *Reader) readList(close rune) (Value, error) {
	if r.depth++; r.depth > maxNestingDepth {
		r.depth--
		return nil, r.errHere("form nested too deeply")
	}
	defer func() { r.depth-- }()
	var items []Value
	var tail Value = Nil
	for {
		r.skipSpace()
		if r.pos >= len(r.src) {
			return nil, r.errHere("unterminated list")
		}
		if r.src[r.pos] == close {
			r.pos++
			break
		}
		if r.src[r.pos] == '.' && r.pos+1 < len(r.src) && isDelimiter(r.src[r.pos+1]) {
			if len(items) == 0 {
				return nil, r.errHere("dot at head of list")
			}
			r.pos++
			v, err := r.Read()
			if err != nil {
				return nil, err
			}
			if v == nil {
				return nil, r.errHere("end of input after dot")
			}
			tail = v
			r.skipSpace()
			if r.pos >= len(r.src) || r.src[r.pos] != close {
				return nil, r.errHere("expected ) after dotted tail")
			}
			r.pos++
			break
		}
		v, err := r.Read()
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, r.errHere("unterminated list")
		}
		items = append(items, v)
	}
	out := tail
	for i := len(items) - 1; i >= 0; i-- {
		out = NewCons(items[i], out)
	}
	return out, nil
}

func (r *Reader) readString() (Value, error) {
	var b strings.Builder
	for {
		if r.pos >= len(r.src) {
			return nil, r.errHere("unterminated string")
		}
		c := r.src[r.pos]
		r.pos++
		switch c {
		case '"':
			return String(b.String()), nil
		case '\\':
			if r.pos >= len(r.src) {
				return nil, r.errHere("unterminated string escape")
			}
			e := r.src[r.pos]
			r.pos++
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteRune(e)
			}
		case '\n':
			r.bumpLine(r.pos - 1)
			b.WriteRune(c)
		default:
			b.WriteRune(c)
		}
	}
}

func (r *Reader) readAtom() (Value, error) {
	if r.src[r.pos] == '|' {
		r.pos++
		start := r.pos
		for r.pos < len(r.src) && r.src[r.pos] != '|' {
			if r.src[r.pos] == '\n' {
				r.bumpLine(r.pos)
			}
			r.pos++
		}
		if r.pos >= len(r.src) {
			return nil, r.errHere("unterminated |symbol|")
		}
		name := string(r.src[start:r.pos])
		r.pos++
		return Intern(name), nil
	}
	start := r.pos
	for r.pos < len(r.src) && !isDelimiter(r.src[r.pos]) {
		r.pos++
	}
	tok := string(r.src[start:r.pos])
	if v, ok := parseNumber(tok); ok {
		return v, nil
	}
	return Intern(strings.ToLower(tok)), nil
}

// parseNumber recognizes fixnums, bignums, ratios and flonums.
func parseNumber(tok string) (Value, bool) {
	if tok == "" || tok == "+" || tok == "-" || tok == "." || tok == "..." {
		return nil, false
	}
	body := tok
	if body[0] == '+' || body[0] == '-' {
		body = body[1:]
		if body == "" {
			return nil, false
		}
	}
	if !strings.ContainsAny(body[:1], "0123456789.") {
		return nil, false
	}
	if i := strings.IndexByte(tok, '/'); i > 0 {
		num, ok1 := new(big.Int).SetString(tok[:i], 10)
		den, ok2 := new(big.Int).SetString(tok[i+1:], 10)
		if !ok1 || !ok2 || den.Sign() == 0 {
			return nil, false
		}
		return normRat(new(big.Rat).SetFrac(num, den)), true
	}
	if x, ok := new(big.Int).SetString(tok, 10); ok {
		return normBig(x), true
	}
	if strings.ContainsAny(tok, ".eE") {
		var f float64
		if _, err := fmt.Sscanf(tok, "%g", &f); err == nil {
			// Reject things like "1.2.3" that Sscanf partially accepts.
			if isFloatToken(tok) {
				return Flonum(f), true
			}
		}
	}
	return nil, false
}

func isFloatToken(tok string) bool {
	seenDot, seenExp := false, false
	for i, c := range tok {
		switch {
		case c >= '0' && c <= '9':
		case c == '+' || c == '-':
			if i != 0 && !(seenExp && (tok[i-1] == 'e' || tok[i-1] == 'E')) {
				return false
			}
		case c == '.':
			if seenDot || seenExp {
				return false
			}
			seenDot = true
		case c == 'e' || c == 'E':
			if seenExp || i == 0 || i == len(tok)-1 {
				return false
			}
			seenExp = true
		default:
			return false
		}
	}
	return true
}

func (r *Reader) skipSpace() {
	for r.pos < len(r.src) {
		c := r.src[r.pos]
		switch {
		case c == '\n':
			r.bumpLine(r.pos)
			r.pos++
		case unicode.IsSpace(c):
			r.pos++
		case c == ';':
			r.skipLineComment()
		case c == '#' && r.pos+1 < len(r.src) && r.src[r.pos+1] == '|':
			r.pos += 2
			_ = r.skipBlockComment()
		default:
			return
		}
	}
}

func (r *Reader) skipLineComment() {
	for r.pos < len(r.src) && r.src[r.pos] != '\n' {
		r.pos++
	}
}

func (r *Reader) skipBlockComment() error {
	depth := 1
	for r.pos < len(r.src) {
		if r.src[r.pos] == '\n' {
			r.bumpLine(r.pos)
		}
		if r.pos+1 < len(r.src) {
			if r.src[r.pos] == '|' && r.src[r.pos+1] == '#' {
				depth--
				r.pos += 2
				if depth == 0 {
					return nil
				}
				continue
			}
			if r.src[r.pos] == '#' && r.src[r.pos+1] == '|' {
				depth++
				r.pos += 2
				continue
			}
		}
		r.pos++
	}
	return r.errHere("unterminated block comment")
}

func isDelimiter(c rune) bool {
	return unicode.IsSpace(c) || strings.ContainsRune("()\";'`,", c)
}
