package sexp

import (
	"fmt"
	"math/big"
	"strings"
	"unicode"
)

// Reader parses S-expressions from text. Supported syntax: symbols
// (downcased; `|...|` preserves case), fixnums/bignums, ratios (`n/d`),
// flonums, strings, characters (`#\x`), lists and dotted pairs, `'`
// quote, `#'` function, “ ` “/`,`/`,@` quasiquote, `#(...)` vectors and
// `;` line comments plus `#|...|#` block comments.
type Reader struct {
	src  []rune
	pos  int
	line int
}

// SyntaxError describes a reader failure with its source line.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sexp: line %d: %s", e.Line, e.Msg)
}

// NewReader returns a Reader over src.
func NewReader(src string) *Reader {
	return &Reader{src: []rune(src), line: 1}
}

// ReadAll parses every form in src.
func ReadAll(src string) ([]Value, error) {
	r := NewReader(src)
	var out []Value
	for {
		v, err := r.Read()
		if err != nil {
			return nil, err
		}
		if v == nil {
			return out, nil
		}
		out = append(out, v)
	}
}

// ReadOne parses exactly one form from src, failing on trailing junk.
func ReadOne(src string) (Value, error) {
	r := NewReader(src)
	v, err := r.Read()
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, &SyntaxError{Line: r.line, Msg: "empty input"}
	}
	if tail, err := r.Read(); err != nil {
		return nil, err
	} else if tail != nil {
		return nil, &SyntaxError{Line: r.line, Msg: "trailing form " + Print(tail)}
	}
	return v, nil
}

// MustRead parses one form and panics on error; intended for tests and
// table literals.
func MustRead(src string) Value {
	v, err := ReadOne(src)
	if err != nil {
		panic(err)
	}
	return v
}

// Read returns the next form, or (nil, nil) at end of input.
func (r *Reader) Read() (Value, error) {
	r.skipSpace()
	if r.pos >= len(r.src) {
		return nil, nil
	}
	c := r.src[r.pos]
	switch c {
	case '(':
		r.pos++
		return r.readList(')')
	case ')':
		return nil, &SyntaxError{Line: r.line, Msg: "unexpected )"}
	case '\'':
		r.pos++
		return r.readWrapped(SymQuote)
	case '`':
		r.pos++
		return r.readWrapped(Intern("quasiquote"))
	case ',':
		r.pos++
		if r.pos < len(r.src) && r.src[r.pos] == '@' {
			r.pos++
			return r.readWrapped(Intern("unquote-splicing"))
		}
		return r.readWrapped(Intern("unquote"))
	case '"':
		r.pos++
		return r.readString()
	case '#':
		return r.readHash()
	case ';':
		r.skipLineComment()
		return r.Read()
	default:
		return r.readAtom()
	}
}

func (r *Reader) readWrapped(head *Symbol) (Value, error) {
	v, err := r.Read()
	if err != nil {
		return nil, err
	}
	if v == nil {
		return nil, &SyntaxError{Line: r.line, Msg: "end of input after " + head.Name}
	}
	return List(head, v), nil
}

func (r *Reader) readHash() (Value, error) {
	r.pos++ // past '#'
	if r.pos >= len(r.src) {
		return nil, &SyntaxError{Line: r.line, Msg: "end of input after #"}
	}
	switch r.src[r.pos] {
	case '\'':
		r.pos++
		return r.readWrapped(SymFunction)
	case '(':
		r.pos++
		lst, err := r.readList(')')
		if err != nil {
			return nil, err
		}
		items, err := ListToSlice(lst)
		if err != nil {
			return nil, err
		}
		return &Vector{Items: items}, nil
	case '\\':
		r.pos++
		return r.readCharacter()
	case '|':
		r.pos++
		if err := r.skipBlockComment(); err != nil {
			return nil, err
		}
		return r.Read()
	}
	return nil, &SyntaxError{Line: r.line, Msg: fmt.Sprintf("unknown dispatch #%c", r.src[r.pos])}
}

func (r *Reader) readCharacter() (Value, error) {
	start := r.pos
	for r.pos < len(r.src) && !isDelimiter(r.src[r.pos]) {
		r.pos++
	}
	name := string(r.src[start:r.pos])
	switch strings.ToLower(name) {
	case "space":
		return Character(' '), nil
	case "newline":
		return Character('\n'), nil
	case "tab":
		return Character('\t'), nil
	}
	runes := []rune(name)
	if len(runes) != 1 {
		return nil, &SyntaxError{Line: r.line, Msg: "bad character name #\\" + name}
	}
	return Character(runes[0]), nil
}

func (r *Reader) readList(close rune) (Value, error) {
	var items []Value
	var tail Value = Nil
	for {
		r.skipSpace()
		if r.pos >= len(r.src) {
			return nil, &SyntaxError{Line: r.line, Msg: "unterminated list"}
		}
		if r.src[r.pos] == close {
			r.pos++
			break
		}
		if r.src[r.pos] == '.' && r.pos+1 < len(r.src) && isDelimiter(r.src[r.pos+1]) {
			if len(items) == 0 {
				return nil, &SyntaxError{Line: r.line, Msg: "dot at head of list"}
			}
			r.pos++
			v, err := r.Read()
			if err != nil {
				return nil, err
			}
			if v == nil {
				return nil, &SyntaxError{Line: r.line, Msg: "end of input after dot"}
			}
			tail = v
			r.skipSpace()
			if r.pos >= len(r.src) || r.src[r.pos] != close {
				return nil, &SyntaxError{Line: r.line, Msg: "expected ) after dotted tail"}
			}
			r.pos++
			break
		}
		v, err := r.Read()
		if err != nil {
			return nil, err
		}
		if v == nil {
			return nil, &SyntaxError{Line: r.line, Msg: "unterminated list"}
		}
		items = append(items, v)
	}
	out := tail
	for i := len(items) - 1; i >= 0; i-- {
		out = NewCons(items[i], out)
	}
	return out, nil
}

func (r *Reader) readString() (Value, error) {
	var b strings.Builder
	for {
		if r.pos >= len(r.src) {
			return nil, &SyntaxError{Line: r.line, Msg: "unterminated string"}
		}
		c := r.src[r.pos]
		r.pos++
		switch c {
		case '"':
			return String(b.String()), nil
		case '\\':
			if r.pos >= len(r.src) {
				return nil, &SyntaxError{Line: r.line, Msg: "unterminated string escape"}
			}
			e := r.src[r.pos]
			r.pos++
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteRune(e)
			}
		case '\n':
			r.line++
			b.WriteRune(c)
		default:
			b.WriteRune(c)
		}
	}
}

func (r *Reader) readAtom() (Value, error) {
	if r.src[r.pos] == '|' {
		r.pos++
		start := r.pos
		for r.pos < len(r.src) && r.src[r.pos] != '|' {
			r.pos++
		}
		if r.pos >= len(r.src) {
			return nil, &SyntaxError{Line: r.line, Msg: "unterminated |symbol|"}
		}
		name := string(r.src[start:r.pos])
		r.pos++
		return Intern(name), nil
	}
	start := r.pos
	for r.pos < len(r.src) && !isDelimiter(r.src[r.pos]) {
		r.pos++
	}
	tok := string(r.src[start:r.pos])
	if v, ok := parseNumber(tok); ok {
		return v, nil
	}
	return Intern(strings.ToLower(tok)), nil
}

// parseNumber recognizes fixnums, bignums, ratios and flonums.
func parseNumber(tok string) (Value, bool) {
	if tok == "" || tok == "+" || tok == "-" || tok == "." || tok == "..." {
		return nil, false
	}
	body := tok
	if body[0] == '+' || body[0] == '-' {
		body = body[1:]
		if body == "" {
			return nil, false
		}
	}
	if !strings.ContainsAny(body[:1], "0123456789.") {
		return nil, false
	}
	if i := strings.IndexByte(tok, '/'); i > 0 {
		num, ok1 := new(big.Int).SetString(tok[:i], 10)
		den, ok2 := new(big.Int).SetString(tok[i+1:], 10)
		if !ok1 || !ok2 || den.Sign() == 0 {
			return nil, false
		}
		return normRat(new(big.Rat).SetFrac(num, den)), true
	}
	if x, ok := new(big.Int).SetString(tok, 10); ok {
		return normBig(x), true
	}
	if strings.ContainsAny(tok, ".eE") {
		var f float64
		if _, err := fmt.Sscanf(tok, "%g", &f); err == nil {
			// Reject things like "1.2.3" that Sscanf partially accepts.
			if isFloatToken(tok) {
				return Flonum(f), true
			}
		}
	}
	return nil, false
}

func isFloatToken(tok string) bool {
	seenDot, seenExp := false, false
	for i, c := range tok {
		switch {
		case c >= '0' && c <= '9':
		case c == '+' || c == '-':
			if i != 0 && !(seenExp && (tok[i-1] == 'e' || tok[i-1] == 'E')) {
				return false
			}
		case c == '.':
			if seenDot || seenExp {
				return false
			}
			seenDot = true
		case c == 'e' || c == 'E':
			if seenExp || i == 0 || i == len(tok)-1 {
				return false
			}
			seenExp = true
		default:
			return false
		}
	}
	return true
}

func (r *Reader) skipSpace() {
	for r.pos < len(r.src) {
		c := r.src[r.pos]
		switch {
		case c == '\n':
			r.line++
			r.pos++
		case unicode.IsSpace(c):
			r.pos++
		case c == ';':
			r.skipLineComment()
		case c == '#' && r.pos+1 < len(r.src) && r.src[r.pos+1] == '|':
			r.pos += 2
			_ = r.skipBlockComment()
		default:
			return
		}
	}
}

func (r *Reader) skipLineComment() {
	for r.pos < len(r.src) && r.src[r.pos] != '\n' {
		r.pos++
	}
}

func (r *Reader) skipBlockComment() error {
	depth := 1
	for r.pos < len(r.src) {
		if r.src[r.pos] == '\n' {
			r.line++
		}
		if r.pos+1 < len(r.src) {
			if r.src[r.pos] == '|' && r.src[r.pos+1] == '#' {
				depth--
				r.pos += 2
				if depth == 0 {
					return nil
				}
				continue
			}
			if r.src[r.pos] == '#' && r.src[r.pos+1] == '|' {
				depth++
				r.pos += 2
				continue
			}
		}
		r.pos++
	}
	return &SyntaxError{Line: r.line, Msg: "unterminated block comment"}
}

func isDelimiter(c rune) bool {
	return unicode.IsSpace(c) || strings.ContainsRune("()\";'`,", c)
}
