package sexp

import (
	"fmt"
	"strings"
)

// Array is a general multi-dimensional array of Lisp values, stored
// row-major.
type Array struct {
	Dims  []int
	Items []Value
}

// Write renders the array unreadably (as most Lisps do for arrays).
func (a *Array) Write(b *strings.Builder) {
	fmt.Fprintf(b, "#<array %v>", a.Dims)
}

// FloatArray is a specialized array of raw machine flonums — the
// "number world" storage used by the numeric kernels of §6.
type FloatArray struct {
	Dims []int
	Data []float64
}

// Write renders the float array unreadably.
func (a *FloatArray) Write(b *strings.Builder) {
	fmt.Fprintf(b, "#<float-array %v>", a.Dims)
}

// NewArray allocates a general array filled with initial.
func NewArray(dims []int, initial Value) *Array {
	n := 1
	for _, d := range dims {
		n *= d
	}
	items := make([]Value, n)
	for i := range items {
		items[i] = initial
	}
	return &Array{Dims: append([]int(nil), dims...), Items: items}
}

// NewFloatArray allocates a float array of zeros.
func NewFloatArray(dims []int) *FloatArray {
	n := 1
	for _, d := range dims {
		n *= d
	}
	return &FloatArray{Dims: append([]int(nil), dims...), Data: make([]float64, n)}
}

// RowMajorIndex computes the flat index for subscripts, checking bounds.
func RowMajorIndex(dims []int, subs []int) (int, error) {
	if len(subs) != len(dims) {
		return 0, fmt.Errorf("sexp: array takes %d subscripts, got %d", len(dims), len(subs))
	}
	idx := 0
	for i, s := range subs {
		if s < 0 || s >= dims[i] {
			return 0, fmt.Errorf("sexp: subscript %d out of range [0,%d)", s, dims[i])
		}
		idx = idx*dims[i] + s
	}
	return idx, nil
}
