// The durable layer of the compile cache: a crash-safe on-disk store of
// compilation results that survives process restarts and concurrent use
// by multiple compiler processes.
//
// What is stored is not the machine image bytes of a compiled function —
// items embed machine-local symbol indices, function indices, and heap
// addresses — but a *capture* of the machine mutations its emission
// performed (s1.Capture): the symbols interned, the printed forms of the
// heap constants built, and the function bodies installed, each in
// original order. Replaying those mutations against a machine whose
// allocator context (s1.AllocContext) matches the one recorded at
// capture time reproduces the emission word for word, so a disk hit is
// byte-identical to a recompile. A context mismatch is not an error —
// the caller just compiles the unit normally.
//
// Durability protocol (DESIGN.md §11):
//
//   - every entry lives in its own file <key>.e: a magic line, a hex
//     sha256 of the payload, then the gob-encoded DiskEntry
//   - writes go to a unique .tmp file, fsynced, then atomically renamed
//     into place, then the directory is fsynced — a crash at any point
//     leaves either no entry or a complete one, never a half-visible one
//   - a flock(2) on <dir>/.lock serializes operations across processes;
//     in-process callers are additionally serialized by a mutex
//   - Recover (run at open) quarantines stray .tmp files and entries
//     whose checksum or encoding does not verify, moving them into
//     <dir>/quarantine/ for post-mortem rather than deleting evidence
//   - reads verify the checksum again and quarantine on mismatch, so a
//     torn write that somehow survives recovery still cannot become a
//     hit; repeated corrupt hits trip a circuit breaker (breaker.go)
//     that stops consulting the disk for a cooldown period
package compilecache

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"repro/internal/diag"
	"repro/internal/s1"
	"repro/internal/sexp"
)

// diskMagic is the first line of every entry file; bump the version on
// any format change so old entries quarantine instead of misdecoding.
const diskMagic = "slc-cache-entry-v1"

// quarantineDir holds entries that failed verification.
const quarantineDir = "quarantine"

// DiskEntry is one durable compilation result: the capture of the
// emission plus everything needed to decide whether it can be replayed.
type DiskEntry struct {
	// Key echoes the content address so a renamed/cross-linked file is
	// detected as corrupt.
	Key string
	// Name is the unit (defun) name, for diagnostics.
	Name string
	// MinArgs/MaxArgs mirror the function descriptor.
	MinArgs, MaxArgs int
	// GenBefore/GenDelta pin the compiler's gensym counter: replay is
	// valid only when the counter equals GenBefore (the captured items
	// embed generated label names), and afterwards the counter must
	// advance by GenDelta to keep subsequent units identical too.
	GenBefore, GenDelta int
	// Ctx is the allocator-context fingerprint the capture was made in;
	// replay into any other context must fall back to recompilation.
	Ctx string
	// Capture is the recorded emission.
	Capture s1.Capture
}

// Replayable reports whether the entry can be replayed into machine m
// with compiler gensym counter gen, and why not if it cannot.
func (e *DiskEntry) Replayable(m *s1.Machine, gen int) error {
	if ctx := m.AllocContext(); ctx != e.Ctx {
		return fmt.Errorf("compilecache: allocator context %s does not match entry's %s", ctx, e.Ctx)
	}
	if gen != e.GenBefore {
		return fmt.Errorf("compilecache: gensym counter %d does not match entry's %d", gen, e.GenBefore)
	}
	if len(e.Capture.Funcs) == 0 {
		return fmt.Errorf("compilecache: entry for %s installs no functions", e.Name)
	}
	return nil
}

// Install replays the captured emission into m, returning the function
// index of the unit's own body (the last function installed). The caller
// must have checked Replayable first; Install re-checks the context so a
// stale call cannot corrupt the machine.
func (e *DiskEntry) Install(m *s1.Machine) (int, error) {
	if ctx := m.AllocContext(); ctx != e.Ctx {
		return 0, fmt.Errorf("compilecache: allocator context changed before install")
	}
	for _, name := range e.Capture.Syms {
		m.InternSym(name)
	}
	for _, src := range e.Capture.Consts {
		v, err := sexp.ReadOne(src)
		if err != nil {
			return 0, fmt.Errorf("compilecache: replaying constant %q: %w", src, err)
		}
		m.FromValue(v)
	}
	idx := -1
	for _, f := range e.Capture.Funcs {
		i, err := m.AddFunction(f.Name, f.MinArgs, f.MaxArgs, s1.ToItems(f.Items))
		if err != nil {
			return 0, fmt.Errorf("compilecache: replaying body %s: %w", f.Name, err)
		}
		idx = i
	}
	return idx, nil
}

// DiskStats meters the durable layer.
type DiskStats struct {
	Hits, Misses  int64
	Stores        int64
	Corrupt       int64 // entries quarantined at lookup time
	Quarantined   int64 // entries/temps quarantined by Recover
	BreakerShunts int64 // lookups skipped because the breaker was open
}

// Disk is the crash-safe persistent cache layer. All operations take the
// directory flock, so any number of processes can share one directory.
type Disk struct {
	mu      sync.Mutex
	dir     string
	lock    *os.File
	fault   *diag.Plan
	breaker *Breaker
	stats   DiskStats
	// onEvent, when non-nil, receives ("cache-quarantine", filename) each
	// time an entry or temp file is moved to quarantine — the flight
	// recorder's window into on-disk corruption handling.
	onEvent func(kind, name string)
}

// SetEventHook installs the event callback (see onEvent). Safe to call
// on a live handle; the hook must itself be safe for concurrent use.
func (d *Disk) SetEventHook(fn func(kind, name string)) {
	d.mu.Lock()
	d.onEvent = fn
	d.mu.Unlock()
}

// OpenDisk opens (creating if needed) a durable cache directory, runs
// crash recovery, and returns the handle. The fault plan may be nil.
func OpenDisk(dir string, fault *diag.Plan) (*Disk, error) {
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o777); err != nil {
		return nil, fmt.Errorf("compilecache: creating cache dir: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return nil, fmt.Errorf("compilecache: opening lock file: %w", err)
	}
	d := &Disk{dir: dir, lock: lock, fault: fault, breaker: NewBreaker(DefaultBreakerThreshold, DefaultBreakerCooldown)}
	if _, err := d.Recover(); err != nil {
		lock.Close()
		return nil, err
	}
	return d, nil
}

// Close releases the lock file. The directory stays valid for reopening.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lock == nil {
		return nil
	}
	err := d.lock.Close()
	d.lock = nil
	return err
}

// Dir returns the cache directory path.
func (d *Disk) Dir() string { return d.dir }

// Stats returns a copy of the layer's meters.
func (d *Disk) Stats() DiskStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Breaker exposes the corrupt-entry circuit breaker (for meters and
// tests).
func (d *Disk) Breaker() *Breaker { return d.breaker }

// flock takes the cross-process lock; callers hold d.mu.
func (d *Disk) flock() error {
	if d.lock == nil {
		return fmt.Errorf("compilecache: disk layer is closed")
	}
	return syscall.Flock(int(d.lock.Fd()), syscall.LOCK_EX)
}

func (d *Disk) funlock() {
	if d.lock != nil {
		syscall.Flock(int(d.lock.Fd()), syscall.LOCK_UN)
	}
}

// Recover scans the directory for debris from crashed writers: stray
// temp files and entries that fail verification are moved into the
// quarantine subdirectory. It returns the number of files quarantined.
func (d *Disk) Recover() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.flock(); err != nil {
		return 0, err
	}
	defer d.funlock()
	names, err := os.ReadDir(d.dir)
	if err != nil {
		return 0, fmt.Errorf("compilecache: scanning cache dir: %w", err)
	}
	moved := 0
	for _, de := range names {
		name := de.Name()
		switch {
		case de.IsDir() || name == ".lock":
			continue
		case strings.Contains(name, ".tmp"):
			// A temp file can only exist if its writer died mid-write.
			d.quarantineLocked(name)
			moved++
		case strings.HasSuffix(name, ".e"):
			if _, err := d.readVerifyLocked(name); err != nil {
				d.quarantineLocked(name)
				moved++
			}
		default:
			// Unknown debris: quarantine rather than guess.
			d.quarantineLocked(name)
			moved++
		}
	}
	d.stats.Quarantined += int64(moved)
	return moved, nil
}

// quarantineLocked moves one file into the quarantine directory; callers
// hold the locks. Move failures fall back to removal — a bad entry must
// never stay where Lookup can find it.
func (d *Disk) quarantineLocked(name string) {
	src := filepath.Join(d.dir, name)
	dst := filepath.Join(d.dir, quarantineDir, name)
	if err := os.Rename(src, dst); err != nil {
		os.Remove(src)
	}
	if d.onEvent != nil {
		d.onEvent("cache-quarantine", name)
	}
}

// entryPath returns the final path for a key's entry file.
func (d *Disk) entryPath(key string) string {
	return filepath.Join(d.dir, key+".e")
}

// readVerifyLocked reads and fully verifies one entry file, returning
// the decoded entry.
func (d *Disk) readVerifyLocked(name string) (*DiskEntry, error) {
	data, err := os.ReadFile(filepath.Join(d.dir, name))
	if err != nil {
		return nil, err
	}
	rest, ok := strings.CutPrefix(string(data), diskMagic+"\n")
	if !ok {
		return nil, fmt.Errorf("compilecache: %s: bad magic", name)
	}
	sum, payload, ok := strings.Cut(rest, "\n")
	if !ok {
		return nil, fmt.Errorf("compilecache: %s: truncated header", name)
	}
	if got := sha256.Sum256([]byte(payload)); hex.EncodeToString(got[:]) != sum {
		return nil, fmt.Errorf("compilecache: %s: checksum mismatch", name)
	}
	var e DiskEntry
	if err := gob.NewDecoder(strings.NewReader(payload)).Decode(&e); err != nil {
		return nil, fmt.Errorf("compilecache: %s: decoding: %w", name, err)
	}
	if want := strings.TrimSuffix(name, ".e"); e.Key != want {
		return nil, fmt.Errorf("compilecache: %s: entry key %s does not match file name", name, e.Key)
	}
	return &e, nil
}

// Lookup returns the durable entry for key, or (nil, false) on a miss.
// A corrupt entry is quarantined, counted against the circuit breaker,
// and reported as a miss; when the breaker is open the disk is not
// consulted at all.
func (d *Disk) Lookup(key string) (*DiskEntry, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.breaker.Allow() {
		d.stats.BreakerShunts++
		d.stats.Misses++
		return nil, false
	}
	if err := d.flock(); err != nil {
		d.stats.Misses++
		return nil, false
	}
	defer d.funlock()
	name := key + ".e"
	if _, err := os.Stat(d.entryPath(key)); err != nil {
		d.stats.Misses++
		return nil, false
	}
	e, err := d.readVerifyLocked(name)
	if err != nil {
		d.quarantineLocked(name)
		d.stats.Corrupt++
		d.stats.Misses++
		d.breaker.RecordCorrupt()
		return nil, false
	}
	d.stats.Hits++
	d.breaker.RecordSuccess()
	return e, true
}

// Store durably writes the entry for key using the temp-file +
// atomic-rename protocol. A cache-write fault (diag.KindCacheWrite)
// instead writes a deliberately torn entry straight to the final path,
// simulating a crash mid-write with the atomicity protocol bypassed —
// recovery and lookup verification must both catch it.
func (d *Disk) Store(key string, e *DiskEntry) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(e); err != nil {
		return fmt.Errorf("compilecache: encoding entry for %s: %w", e.Name, err)
	}
	sum := sha256.Sum256(payload.Bytes())
	var full bytes.Buffer
	fmt.Fprintf(&full, "%s\n%s\n", diskMagic, hex.EncodeToString(sum[:]))
	full.Write(payload.Bytes())

	if err := d.flock(); err != nil {
		return err
	}
	defer d.funlock()
	if d.fault.Should(diag.KindCacheWrite, "disk", e.Name) {
		torn := full.Bytes()[:full.Len()/2]
		return os.WriteFile(d.entryPath(key), torn, 0o666)
	}
	if err := AtomicWriteFile(d.dir, key+".e", full.Bytes()); err != nil {
		return fmt.Errorf("compilecache: %w", err)
	}
	d.stats.Stores++
	return nil
}
