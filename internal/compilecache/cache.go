// Package compilecache is a content-addressed memo of compiled function
// bodies, in the spirit of the compilation-unit caching that modern Lisp
// native-code pipelines use to make repeated loads near-free: a function
// is keyed by the printed text of its source defun together with
// everything else that can influence the generated code — the codegen
// option set, the compile-time constant bindings, and the macro
// definition epoch. A re-load of an already-seen definition then skips
// the entire middle end (optimizer fixpoint, analyses, binding,
// representation, pdl, TN packing, lowering).
//
// The cache stores the assembled s1.Item list of the function body plus
// the function index it was installed at. Within one machine a hit simply
// rebinds the name to the existing index — the code is already resident;
// the item list makes the entry self-contained should a caller want to
// re-add the body elsewhere (items carry symbolic labels, so they
// assemble at any base address).
package compilecache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/codegen"
	"repro/internal/s1"
)

// Entry is one cached compilation result.
type Entry struct {
	// Index is the machine function index the body was installed at.
	Index int
	// MinArgs/MaxArgs are the argument-count range (MaxArgs -1 = &rest).
	MinArgs, MaxArgs int
	// Items is the assembled body, with symbolic labels.
	Items []s1.Item
}

// Validate sanity-checks a looked-up entry against the machine it
// claims to be resident in: the function index must exist, the
// argument-count range must match the resident descriptor, and the
// entry's instruction count must equal the resident body's extent. A
// corrupt or mismatched entry (a bug, a stale index after machine
// surgery, or an injected fault) is reported as an error so the caller
// can log a diagnostic and fall back to recompilation instead of
// rebinding a name to garbage.
func (e Entry) Validate(m *s1.Machine) error {
	if e.Index < 0 || e.Index >= len(m.Funcs) {
		return fmt.Errorf("compilecache: entry index %d out of range (machine has %d functions)",
			e.Index, len(m.Funcs))
	}
	f := m.Funcs[e.Index]
	if f.MinArgs != e.MinArgs || f.MaxArgs != e.MaxArgs {
		return fmt.Errorf("compilecache: entry arg range %d..%d does not match resident %s (%d..%d)",
			e.MinArgs, e.MaxArgs, f.Name, f.MinArgs, f.MaxArgs)
	}
	instrs := 0
	for _, it := range e.Items {
		if it.Instr != nil {
			instrs++
		}
	}
	if instrs == 0 {
		return fmt.Errorf("compilecache: entry for %s has an empty body", f.Name)
	}
	if got := f.End - f.Entry; got != instrs {
		return fmt.Errorf("compilecache: entry instruction count %d does not match resident %s extent %d",
			instrs, f.Name, got)
	}
	// A hit rebinds the name to resident code that Run dispatches through
	// the pre-decoded stream (decode.go), so the resident extent must be
	// decoded — if it is not, the rebind would point calls at raw
	// instructions the decoded dispatcher cannot reach.
	if !m.DecodedCovers(f.Entry, f.End) {
		return fmt.Errorf("compilecache: resident %s extent [%d,%d) is outside the decoded stream",
			f.Name, f.Entry, f.End)
	}
	return nil
}

// Cache is a concurrency-safe content-addressed store of compiled
// functions.
type Cache struct {
	mu           sync.Mutex
	m            map[string]Entry
	hits, misses int64
}

// New returns an empty cache.
func New() *Cache { return &Cache{m: map[string]Entry{}} }

// Key computes the content address of one function compilation: the
// printed source form plus every compilation input that is not part of
// the form itself. constants is a canonical fingerprint of the
// compile-time constant bindings; macroEpoch counts defmacro evaluations,
// so any macro (re)definition invalidates all earlier keys — a printed
// form does not reveal which macros its expansion consumed.
func Key(source string, opts codegen.Options, constants string, macroEpoch int) string {
	h := sha256.New()
	fmt.Fprintf(h, "src=%s\x00opts=%t,%t,%t,%t,%t,%t\x00consts=%s\x00macros=%d",
		source,
		opts.UseTN, opts.RepAnalysis, opts.PdlNumbers,
		opts.SpecialCaching, opts.Optimize, opts.CSE,
		constants, macroEpoch)
	return hex.EncodeToString(h.Sum(nil))
}

// Lookup returns the entry for key, counting a hit or a miss.
func (c *Cache) Lookup(key string) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

// Store records the compilation result for key.
func (c *Cache) Store(key string, e Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = e
}

// Hits returns the number of successful lookups so far.
func (c *Cache) Hits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// Misses returns the number of failed lookups so far.
func (c *Cache) Misses() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.misses
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
