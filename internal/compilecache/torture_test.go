package compilecache

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/s1"
)

// bulkEntry builds a deliberately large entry so the write window (temp
// write + fsync + rename) is wide enough for SIGKILL to land inside it.
func bulkEntry(key, name string) *DiskEntry {
	e := testEntry(key, name)
	items := make([]s1.CapturedItem, 0, 4096)
	for i := 0; i < 4096; i++ {
		items = append(items, s1.CapturedItem{IsInstr: true, Instr: s1.Instr{
			Op: s1.OpMOV, Comment: fmt.Sprintf("filler instruction %d for %s", i, name),
		}})
	}
	e.Capture.Funcs[0].Items = items
	return e
}

// TestHelperStoreLoop is the child body for TestKill9StoreTorture: it
// stores large entries as fast as it can until killed.
func TestHelperStoreLoop(t *testing.T) {
	dir := os.Getenv("SLC_STORE_TORTURE_DIR")
	if dir == "" {
		t.Skip("helper process for TestKill9StoreTorture")
	}
	d, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; ; i++ {
		key := fmt.Sprintf("bulk%04d", i%64)
		if err := d.Store(key, bulkEntry(key, "f")); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKill9StoreTorture hammers the store protocol directly: SIGKILL a
// tight writer loop repeatedly, then require that recovery leaves only
// verifiable entries — every lookup either misses or returns an entry
// that decoded and checksummed clean, and nothing corrupt is ever served.
func TestKill9StoreTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	dir := t.TempDir()
	for round := 0; round < 10; round++ {
		cmd := exec.Command(os.Args[0], "-test.run=TestHelperStoreLoop$", "-test.v=false")
		cmd.Env = append(os.Environ(), "SLC_STORE_TORTURE_DIR="+dir)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Let the child get into the store loop (process startup varies
		// wildly, e.g. under -race) before aiming the kill at it.
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if ents, _ := os.ReadDir(dir); len(ents) > 2 { // .lock + quarantine + entries
				break
			}
			time.Sleep(time.Millisecond)
		}
		time.Sleep(time.Duration(2+round*3) * time.Millisecond)
		cmd.Process.Kill()
		cmd.Wait()
	}

	d, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	found := 0
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("bulk%04d", i)
		if e, ok := d.Lookup(key); ok {
			found++
			if e.Key != key || len(e.Capture.Funcs) != 1 || len(e.Capture.Funcs[0].Items) != 4096 {
				t.Errorf("entry %s verified but is mangled", key)
			}
		}
	}
	if st := d.Stats(); st.Corrupt != 0 {
		t.Errorf("%d corrupt entries served past recovery", st.Corrupt)
	}
	if found == 0 {
		t.Error("no entries survived any round; the writer never completed a store")
	}
	// No temp debris may remain outside quarantine.
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range names {
		if strings.Contains(de.Name(), ".tmp") {
			t.Errorf("temp file %s survived recovery in the cache root", de.Name())
		}
	}
	q, _ := os.ReadDir(filepath.Join(dir, quarantineDir))
	t.Logf("store torture: %d live entries, %d quarantined", found, len(q))
}
