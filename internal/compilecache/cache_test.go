package compilecache_test

import (
	"strings"
	"testing"

	"repro/internal/compilecache"
	"repro/internal/core"
	"repro/internal/s1"
)

// entryFor builds a well-formed cache entry describing the compiled
// function name resident in sys.
func entryFor(t *testing.T, sys *core.System, name string) compilecache.Entry {
	t.Helper()
	idx, ok := sys.Defs[name]
	if !ok {
		t.Fatalf("no compiled function %s", name)
	}
	f := sys.Machine.Funcs[idx]
	items := make([]s1.Item, f.End-f.Entry)
	for i := range items {
		items[i] = s1.Item{Instr: &s1.Instr{}}
	}
	return compilecache.Entry{Index: idx, MinArgs: f.MinArgs, MaxArgs: f.MaxArgs, Items: items}
}

func TestValidateAcceptsResidentEntry(t *testing.T) {
	sys := core.NewSystem(core.Options{})
	if err := sys.LoadString("(defun f (x) (+ x 1))"); err != nil {
		t.Fatal(err)
	}
	e := entryFor(t, sys, "f")
	if err := e.Validate(sys.Machine); err != nil {
		t.Errorf("well-formed entry rejected: %v", err)
	}
}

// TestValidateRejectsUndecodedExtent hand-registers a descriptor whose
// extent lies past the decoded stream — as if machine surgery had
// appended raw code without AddFunction's decode step — and checks that
// Validate refuses to rebind a cache hit onto it.
func TestValidateRejectsUndecodedExtent(t *testing.T) {
	sys := core.NewSystem(core.Options{})
	if err := sys.LoadString("(defun f (x) (+ x 1))"); err != nil {
		t.Fatal(err)
	}
	m := sys.Machine
	entry := len(m.Code)
	m.Funcs = append(m.Funcs, s1.FuncDesc{
		Name: "ghost", Entry: entry, End: entry + 2, MinArgs: 1, MaxArgs: 1})
	e := compilecache.Entry{
		Index: len(m.Funcs) - 1, MinArgs: 1, MaxArgs: 1,
		Items: []s1.Item{{Instr: &s1.Instr{}}, {Instr: &s1.Instr{}}},
	}
	err := e.Validate(m)
	if err == nil {
		t.Fatal("entry with undecoded extent accepted")
	}
	if !strings.Contains(err.Error(), "decoded stream") {
		t.Errorf("err = %v, want substring %q", err, "decoded stream")
	}
}

func TestValidateRejectsCorruptEntries(t *testing.T) {
	sys := core.NewSystem(core.Options{})
	if err := sys.LoadString("(defun f (x) (+ x 1))\n(defun g (x y) (* x y))"); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mutate  func(e *compilecache.Entry)
		wantSub string
	}{
		{"index out of range", func(e *compilecache.Entry) { e.Index = len(sys.Machine.Funcs) + 3 }, "out of range"},
		{"negative index", func(e *compilecache.Entry) { e.Index = -1 }, "out of range"},
		{"arg-range mismatch", func(e *compilecache.Entry) { e.MinArgs += 1 }, "arg range"},
		{"empty body", func(e *compilecache.Entry) { e.Items = nil }, "empty body"},
		{"instruction count", func(e *compilecache.Entry) { e.Items = e.Items[:len(e.Items)-1] }, "instruction count"},
		{"wrong function", func(e *compilecache.Entry) { e.Index = sys.Defs["g"] }, "arg range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := entryFor(t, sys, "f")
			tc.mutate(&e)
			err := e.Validate(sys.Machine)
			if err == nil {
				t.Fatal("corrupt entry accepted")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Errorf("err = %v, want substring %q", err, tc.wantSub)
			}
		})
	}
}
