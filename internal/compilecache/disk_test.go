package compilecache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/diag"
	"repro/internal/s1"
)

func testEntry(key, name string) *DiskEntry {
	return &DiskEntry{
		Key:     key,
		Name:    name,
		MinArgs: 1, MaxArgs: 1,
		Ctx: "0000000000000000",
		Capture: s1.Capture{
			Syms:   []string{name},
			Consts: []string{"(1 2 3)"},
			Funcs: []s1.CapturedFunc{{
				Name: name, MinArgs: 1, MaxArgs: 1,
				Items: []s1.CapturedItem{{IsInstr: true, Instr: s1.Instr{Op: s1.OpRET}}},
			}},
		},
	}
}

func TestDiskStoreLookupRoundTrip(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	e := testEntry("k1", "f")
	if err := d.Store("k1", e); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Lookup("k1")
	if !ok {
		t.Fatal("stored entry missed")
	}
	if got.Name != "f" || len(got.Capture.Funcs) != 1 || got.Capture.Funcs[0].Items[0].Instr.Op != s1.OpRET {
		t.Errorf("round-trip mangled entry: %+v", got)
	}
	if _, ok := d.Lookup("absent"); ok {
		t.Error("absent key hit")
	}
	st := d.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Store("k1", testEntry("k1", "f")); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d2, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, ok := d2.Lookup("k1"); !ok {
		t.Error("entry lost across reopen")
	}
}

func TestRecoverQuarantinesDebris(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Store("good", testEntry("good", "f")); err != nil {
		t.Fatal(err)
	}
	d.Close()

	// Simulate a crashed writer: a stray temp file and a torn entry.
	if err := os.WriteFile(filepath.Join(dir, "dead.tmp123"), []byte("partial"), 0o666); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "torn.e"), []byte(diskMagic+"\nabcd\ngarbage"), 0o666); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, ok := d2.Lookup("good"); !ok {
		t.Error("recovery lost the good entry")
	}
	if _, ok := d2.Lookup("torn"); ok {
		t.Error("torn entry served as a hit")
	}
	q, err := os.ReadDir(filepath.Join(dir, quarantineDir))
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, len(q))
	for _, f := range q {
		names = append(names, f.Name())
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "dead.tmp123") || !strings.Contains(joined, "torn.e") {
		t.Errorf("quarantine holds %q, want the temp and the torn entry", joined)
	}
}

func TestLookupQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Store("k1", testEntry("k1", "f")); err != nil {
		t.Fatal(err)
	}
	// Corrupt in place after the verified store.
	path := filepath.Join(dir, "k1.e")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Lookup("k1"); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if d.Stats().Corrupt != 1 {
		t.Errorf("corrupt meter = %d, want 1", d.Stats().Corrupt)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("corrupt entry still in place after lookup")
	}
	// The key now misses cleanly (no file), so a writer can repopulate.
	if err := d.Store("k1", testEntry("k1", "f")); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Lookup("k1"); !ok {
		t.Error("repopulated entry missed")
	}
}

func TestCacheWriteFaultTearsEntry(t *testing.T) {
	plan, err := diag.ParsePlan("disk:*:cache-write")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	d, err := OpenDisk(dir, plan)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Store("k1", testEntry("k1", "f")); err != nil {
		t.Fatal(err)
	}
	// The torn write bypassed the atomic protocol: the file exists at the
	// final path but must never verify.
	if _, ok := d.Lookup("k1"); ok {
		t.Fatal("torn entry served as a hit")
	}
	d.Close()
	// And a restart quarantines it.
	d2, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, ok := d2.Lookup("k1"); ok {
		t.Error("torn entry survived recovery")
	}
}

func TestMismatchedKeyIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Store("k1", testEntry("k1", "f")); err != nil {
		t.Fatal(err)
	}
	// A cross-linked file: valid bytes under the wrong name.
	data, err := os.ReadFile(filepath.Join(dir, "k1.e"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "k2.e"), data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Lookup("k2"); ok {
		t.Error("cross-linked entry served as a hit")
	}
}

func TestBreakerTripAndRecover(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker(3, 2*time.Second)
	b.SetClock(func() time.Time { return clock })

	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker should allow")
		}
		b.RecordCorrupt()
	}
	if b.State() != BreakerClosed {
		t.Fatal("under threshold, breaker must stay closed")
	}
	b.RecordCorrupt() // third consecutive: trip
	if b.State() != BreakerOpen {
		t.Fatal("breaker should be open after threshold corrupts")
	}
	if b.Allow() {
		t.Fatal("open breaker must not allow")
	}

	clock = clock.Add(2 * time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatal("cooldown elapsed: breaker should half-open")
	}
	if !b.Allow() {
		t.Fatal("half-open breaker should admit one probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker must admit only one probe")
	}

	// Failed probe: re-open with doubled cooldown.
	b.RecordCorrupt()
	clock = clock.Add(2 * time.Second)
	if b.State() != BreakerOpen {
		t.Fatal("backoff should have doubled the cooldown")
	}
	clock = clock.Add(2 * time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatal("doubled cooldown elapsed: should half-open")
	}
	if !b.Allow() {
		t.Fatal("want a probe after backoff")
	}
	b.RecordSuccess()
	if b.State() != BreakerClosed {
		t.Fatal("successful probe should close the breaker")
	}
	// Backoff reset: a fresh trip + cooldown uses the base again.
	for i := 0; i < 3; i++ {
		b.RecordCorrupt()
	}
	clock = clock.Add(2 * time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatal("base cooldown should apply after reset")
	}
	if b.Trips() != 3 {
		t.Errorf("trips = %d, want 3", b.Trips())
	}
}

func TestDiskBreakerShuntsLookups(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	clock := time.Unix(0, 0)
	d.Breaker().SetClock(func() time.Time { return clock })
	if err := d.Store("good", testEntry("good", "f")); err != nil {
		t.Fatal(err)
	}
	// Feed it corrupt entries until it trips.
	for i := 0; i < DefaultBreakerThreshold; i++ {
		key := "bad" + string(rune('0'+i))
		path := filepath.Join(dir, key+".e")
		if err := os.WriteFile(path, []byte(diskMagic+"\nffff\njunk"), 0o666); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.Lookup(key); ok {
			t.Fatal("corrupt entry hit")
		}
	}
	if d.Breaker().State() != BreakerOpen {
		t.Fatal("breaker should have tripped")
	}
	// Even the good entry is shunted while open.
	if _, ok := d.Lookup("good"); ok {
		t.Fatal("open breaker should shunt all lookups")
	}
	if d.Stats().BreakerShunts == 0 {
		t.Error("shunt meter did not move")
	}
	// After the cooldown the probe hits the good entry and closes it.
	clock = clock.Add(DefaultBreakerCooldown)
	if _, ok := d.Lookup("good"); !ok {
		t.Fatal("half-open probe should reach the good entry")
	}
	if d.Breaker().State() != BreakerClosed {
		t.Error("verified probe should close the breaker")
	}
}
