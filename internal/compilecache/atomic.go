package compilecache

import (
	"fmt"
	"os"
	"path/filepath"
)

// AtomicWriteFile durably publishes data as dir/name using the
// crash-safe protocol every durable artifact in this repo shares
// (DESIGN.md §11): the bytes go to a unique temp file in the same
// directory, the file is fsynced and closed, atomically renamed into
// place, and the directory is fsynced so the rename itself is durable.
// A crash at any point leaves either no file or the complete new file —
// never a half-visible one. Readers are still expected to verify
// checksums: atomicity does not protect against media corruption or
// writers that bypass this protocol.
func AtomicWriteFile(dir, name string, data []byte) error {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return fmt.Errorf("creating temp file for %s: %w", name, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err == nil {
		err = tmp.Sync()
	}
	if err2 := tmp.Close(); err == nil {
		err = err2
	}
	if err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("writing temp file for %s: %w", name, err)
	}
	if err := os.Rename(tmpName, filepath.Join(dir, name)); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("publishing %s: %w", name, err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
