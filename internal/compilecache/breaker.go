package compilecache

import (
	"sync"
	"time"
)

// The corrupt-entry circuit breaker. A cache directory that has started
// serving corrupt entries (disk failure, a bad actor, an incompatible
// writer) makes every lookup cost a read + checksum + quarantine before
// the compiler falls back to a full recompile anyway. After a run of
// consecutive corrupt hits the breaker opens and Lookup stops touching
// the disk entirely; after a cooldown it half-opens, letting exactly one
// probe lookup through — a clean hit (or store) closes it again, another
// corrupt one re-opens it with the cooldown doubled (capped), so a
// persistently bad directory costs O(log) probes rather than a read per
// compile.
//
// States (DESIGN.md §11):
//
//	Closed --[threshold consecutive corrupts]--> Open
//	Open --[cooldown elapsed]--> HalfOpen
//	HalfOpen --[probe ok]--> Closed      (cooldown resets)
//	HalfOpen --[probe corrupt]--> Open   (cooldown doubles, capped)

// BreakerState is the circuit breaker's current disposition.
type BreakerState int

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Defaults for the disk layer's breaker.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 2 * time.Second
	maxBreakerCooldown      = 5 * time.Minute
)

// Breaker is a corrupt-hit circuit breaker with half-open probing and
// exponential cooldown backoff.
type Breaker struct {
	mu        sync.Mutex
	state     BreakerState
	threshold int
	base      time.Duration
	cooldown  time.Duration
	openedAt  time.Time
	corrupts  int   // consecutive corrupt hits while closed
	trips     int64 // lifetime open transitions
	now       func() time.Time
}

// NewBreaker returns a closed breaker tripping after threshold
// consecutive corrupt hits, with the given initial cooldown.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	return &Breaker{threshold: threshold, base: cooldown, cooldown: cooldown, now: time.Now}
}

// SetClock injects a time source (tests).
func (b *Breaker) SetClock(now func() time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
}

// State reports the current state, performing the open → half-open
// transition if the cooldown has elapsed.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	return b.state
}

// Trips reports the lifetime number of closed/half-open → open
// transitions.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

func (b *Breaker) maybeHalfOpen() {
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cooldown {
		b.state = BreakerHalfOpen
	}
}

// Allow reports whether a lookup may consult the disk. In the half-open
// state it admits exactly one probe; concurrent callers see false until
// the probe resolves.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		// Admit one probe: re-open until it reports back, so a burst of
		// lookups cannot stampede a directory that may still be bad.
		b.state = BreakerOpen
		b.openedAt = b.now()
		return true
	default:
		return false
	}
}

// RecordCorrupt notes a corrupt entry. Reaching the threshold while
// closed — or failing a half-open probe (which Allow left in the open
// state) — opens the breaker.
func (b *Breaker) RecordCorrupt() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		// Failed probe: stay open with the cooldown doubled, capped.
		b.cooldown *= 2
		if b.cooldown > maxBreakerCooldown {
			b.cooldown = maxBreakerCooldown
		}
		b.openedAt = b.now()
		b.trips++
		b.corrupts = 0
		return
	}
	b.corrupts++
	if b.corrupts >= b.threshold {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trips++
		b.corrupts = 0
	}
}

// RecordSuccess notes a verified hit. A successful probe closes the
// breaker and resets the backoff; while closed it just clears the
// consecutive-corrupt run.
func (b *Breaker) RecordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.corrupts = 0
	b.cooldown = b.base
}
