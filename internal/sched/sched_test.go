package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestSlotsBound: no more than Workers tasks execute concurrently, and
// everyone eventually runs.
func TestSlotsBound(t *testing.T) {
	s := New(Config{Workers: 2, MaxQueued: 100})
	var cur, peak, ran atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := s.Run(context.Background(), "t", func(tk *Task) error {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				cur.Add(-1)
				ran.Add(1)
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrency %d > 2 workers", p)
	}
	if ran.Load() != 20 {
		t.Errorf("ran %d of 20", ran.Load())
	}
	st := s.Stats()
	if st.Completed != 20 || st.Running != 0 || st.Queued != 0 {
		t.Errorf("stats after drain: %+v", st)
	}
}

// TestSaturationSheds: the MaxQueued backlog bound sheds with
// ErrSaturated instead of queuing unboundedly.
func TestSaturationSheds(t *testing.T) {
	s := New(Config{Workers: 1, MaxQueued: 2})
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Run(context.Background(), "t", func(tk *Task) error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started
	// Fill the queue.
	errs := make(chan error, 8)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- s.Run(context.Background(), "t", func(tk *Task) error { return nil })
		}()
	}
	// Wait until both are queued, then overflow.
	for s.QueuedNow() < 2 {
		time.Sleep(time.Millisecond)
	}
	if err := s.Run(context.Background(), "t", func(tk *Task) error { return nil }); !errors.Is(err, ErrSaturated) {
		t.Errorf("overflow submission: got %v, want ErrSaturated", err)
	}
	close(release)
	wg.Wait()
	if st := s.Stats(); st.Shed != 1 {
		t.Errorf("shed = %d, want 1", st.Shed)
	}
}

// TestCancelWhileQueued: a queued task whose context dies leaves the
// queue cleanly and does not absorb a slot.
func TestCancelWhileQueued(t *testing.T) {
	s := New(Config{Workers: 1, MaxQueued: 10})
	release := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Run(context.Background(), "t", func(tk *Task) error {
			close(started)
			<-release
			return nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- s.Run(ctx, "t", func(tk *Task) error { return nil })
	}()
	for s.QueuedNow() < 1 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("canceled task: got %v", err)
	}
	close(release)
	wg.Wait()
	// The slot must still be usable.
	if err := s.Run(context.Background(), "t", func(tk *Task) error { return nil }); err != nil {
		t.Errorf("post-cancel run: %v", err)
	}
	if st := s.Stats(); st.Queued != 0 || st.Running != 0 {
		t.Errorf("leaked queue/slot: %+v", st)
	}
}

// TestQuantumPreemption: a long task yields when its quantum expires
// with work waiting, so a short task gets through long before the hog
// finishes.
func TestQuantumPreemption(t *testing.T) {
	s := New(Config{Workers: 1, MaxQueued: 10, Quantum: 1000})
	shortDone := make(chan struct{})
	hogStarted := make(chan struct{})
	var order []string
	var mu sync.Mutex
	note := func(s string) { mu.Lock(); order = append(order, s); mu.Unlock() }

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := s.Run(context.Background(), "hog", func(tk *Task) error {
			close(hogStarted)
			// Burn quanta at safepoints until the short task has finished
			// (the starvation timeout below catches the case where it
			// never does).
			for {
				select {
				case <-shortDone:
					note("hog")
					return nil
				default:
				}
				if err := tk.Safepoint(1000, false); err != nil {
					return err
				}
			}
		})
		if err != nil {
			t.Error(err)
		}
	}()
	<-hogStarted
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := s.Run(context.Background(), "short", func(tk *Task) error {
			note("short")
			close(shortDone)
			return nil
		})
		if err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-shortDone:
	case <-time.After(5 * time.Second):
		t.Fatal("short task starved behind the hog")
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "short" {
		t.Errorf("completion order = %v, want short first", order)
	}
	if st := s.Stats(); st.Preempts == 0 {
		t.Error("hog was never preempted")
	}
}

// TestDRRFairness: two tenants with very different task shapes get
// comparable cycle shares — the many-big-tasks tenant cannot crowd out
// the steady small one.
func TestDRRFairness(t *testing.T) {
	s := New(Config{Workers: 1, MaxQueued: 200, Quantum: 1000})
	var hogCycles, fairCycles atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Hot tenant: floods the queue with long programs.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.Run(context.Background(), "hog", func(tk *Task) error {
					for j := 0; j < 50; j++ {
						select {
						case <-stop:
							return nil
						default:
						}
						if err := tk.Safepoint(1000, false); err != nil {
							return err
						}
						hogCycles.Add(1000)
					}
					return nil
				})
			}
		}()
	}
	// Fair tenant: a single submitter of same-sized programs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s.Run(context.Background(), "fair", func(tk *Task) error {
				for j := 0; j < 50; j++ {
					select {
					case <-stop:
						return nil
					default:
					}
					if err := tk.Safepoint(1000, false); err != nil {
						return err
					}
					fairCycles.Add(1000)
				}
				return nil
			})
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	h, f := hogCycles.Load(), fairCycles.Load()
	if f == 0 {
		t.Fatal("fair tenant starved completely")
	}
	// With DRR both tenants should get comparable service; allow a wide
	// margin for scheduling noise but catch starvation (the pre-DRR
	// behavior gives the flooder ~4x or worse).
	if ratio := float64(h) / float64(f); ratio > 3 {
		t.Errorf("hog/fair cycle ratio = %.1f (hog %d, fair %d): fair tenant starved", ratio, h, f)
	}
}

// TestGasExhaustion: a tenant that burns past its bucket gets the typed
// *GasError, and subsequent submissions fail fast at admission until
// the bucket refills.
func TestGasExhaustion(t *testing.T) {
	now := time.Unix(0, 0)
	var clockMu sync.Mutex
	clock := func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return now }
	advance := func(d time.Duration) { clockMu.Lock(); now = now.Add(d); clockMu.Unlock() }

	s := New(Config{Workers: 1, GasRate: 1000, GasBurst: 100_000, Clock: clock})
	err := s.Run(context.Background(), "t", func(tk *Task) error {
		for i := 0; i < 10; i++ {
			if err := tk.Safepoint(50_000, false); err != nil {
				return err
			}
		}
		return nil
	})
	var ge *GasError
	if !errors.As(err, &ge) {
		t.Fatalf("got %v, want *GasError", err)
	}
	if ge.Tenant != "t" || ge.RetryAfter <= 0 {
		t.Errorf("gas error = %+v", ge)
	}
	// Admission fails fast while dry.
	if err := s.Run(context.Background(), "t", func(tk *Task) error { return nil }); !errors.As(err, &ge) {
		t.Errorf("dry-bucket admission: got %v, want *GasError", err)
	}
	// Another tenant is unaffected.
	if err := s.Run(context.Background(), "other", func(tk *Task) error { return nil }); err != nil {
		t.Errorf("other tenant: %v", err)
	}
	// Refill restores service.
	advance(10 * time.Second)
	if err := s.Run(context.Background(), "t", func(tk *Task) error {
		return tk.Safepoint(5000, false)
	}); err != nil {
		t.Errorf("after refill: %v", err)
	}
	if st := s.Stats(); st.GasExhausted < 2 {
		t.Errorf("gas_exhausted = %d, want >= 2", st.GasExhausted)
	}
}

// TestStressYieldsEverySafepoint: stress mode parks at every safepoint
// and still completes correctly.
func TestStressYieldsEverySafepoint(t *testing.T) {
	s := New(Config{Workers: 2, Stress: true})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := s.Run(context.Background(), "t", func(tk *Task) error {
				for j := 0; j < 25; j++ {
					if err := tk.Safepoint(100, false); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Preempts < 8*25 {
		t.Errorf("stress preempts = %d, want >= 200", st.Preempts)
	}
	if st.Queued != 0 || st.Running != 0 {
		t.Errorf("leaked state: %+v", st)
	}
}

// TestExplicitPreempt: the preempted=true path (a Machine.Preempt
// observed at a safepoint) yields exactly like a quantum expiry.
func TestExplicitPreempt(t *testing.T) {
	s := New(Config{Workers: 1})
	err := s.Run(context.Background(), "t", func(tk *Task) error {
		return tk.Safepoint(10, true)
	})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Preempts != 1 || st.Resumes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestEventsAndMetrics: the event hook fires with the documented kinds
// and the metrics map carries the per-tenant series.
func TestEventsAndMetrics(t *testing.T) {
	var mu sync.Mutex
	kinds := map[string]int{}
	s := New(Config{Workers: 1, Stress: true, OnEvent: func(kind, tenant string, d time.Duration) {
		mu.Lock()
		kinds[kind]++
		mu.Unlock()
	}})
	s.Run(context.Background(), "acme", func(tk *Task) error {
		return tk.Safepoint(10, false)
	})
	mu.Lock()
	defer mu.Unlock()
	for _, k := range []string{EvPreempt, EvPark, EvResume} {
		if kinds[k] == 0 {
			t.Errorf("no %s event", k)
		}
	}
	m := s.Metrics()
	if m["slcd_sched_completed_total"] != 1 {
		t.Errorf("completed metric = %v", m["slcd_sched_completed_total"])
	}
	if _, ok := m[`slcd_sched_tenant_cycles_total{tenant="acme"}`]; !ok {
		t.Errorf("no per-tenant cycles metric: %v", m)
	}
}
