// Package sched is the daemon's cooperative M:N machine scheduler: it
// multiplexes an unbounded population of in-flight Lisp programs (each
// a goroutine driving one s1.Machine) over a fixed pool of worker
// slots, preempting at the safepoints the simulator already has — the
// interruptEvery poll in Machine.Run, GC-check sites, and lowered-block
// exits, all of which funnel into Machine.OnSafepoint.
//
// Three mechanisms compose (DESIGN.md §16):
//
//   - slots: at most Workers tasks execute simulator instructions at
//     once. Everyone else is parked — a goroutine blocked on a grant
//     channel, costing a few KB, which is what makes thousands of
//     resident programs per node cheap.
//   - fair queuing: waiting tasks queue per tenant, and slots are
//     granted by deficit round-robin over tenants. Each visit tops a
//     tenant's deficit up by one quantum; a grant spends a quantum, and
//     when the task yields the deficit is settled against the S-1
//     cycles it actually burned. A hot tenant with a thousand queued
//     spin loops therefore gets the same long-run cycle share as a
//     tenant submitting one short program at a time — it cannot starve
//     anyone, only itself.
//   - gas: each tenant owns a token bucket denominated in S-1 cycles —
//     the paper's timing-annotated opcodes give exact per-instruction
//     costs, so the meter charges precisely what the program executed,
//     not wall-clock noise. The bucket refills at GasRate cycles/sec up
//     to GasBurst; a task that drains it fails with a typed *GasError
//     (not a deadline), and new submissions from a dry tenant fail
//     fast at admission.
//
// The scheduler deals in plain goroutines and channels; it knows
// nothing of HTTP, machines, or observability. The daemon wires
// Machine.OnSafepoint to Task.Safepoint and translates events/stats.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Event kinds reported through Config.OnEvent. They match the obs
// flight-recorder constants by convention (obs.EvSched*).
const (
	// EvPark: a task entered its tenant queue to wait for a slot (at
	// admission, or again after a preemption).
	EvPark = "sched-park"
	// EvResume: a parked task was granted a slot; the event's duration
	// is the time it waited (the scheduling latency).
	EvResume = "sched-resume"
	// EvPreempt: a running task's quantum expired with other work
	// waiting (or stress mode forced it) and it yielded its slot.
	EvPreempt = "sched-preempt"
	// EvGasExhausted: a tenant's gas bucket ran dry and a task failed
	// with *GasError.
	EvGasExhausted = "gas-exhausted"
)

// ErrSaturated is returned by Run when the runnable backlog is at
// MaxQueued: the caller should shed (the daemon's 429).
var ErrSaturated = errors.New("sched: run queue full")

// GasError is the typed diagnostic for an exhausted tenant gas budget:
// the program did not crash and did not time out — it ran out of paid-
// for cycles. RetryAfter estimates when the bucket will hold Deficit
// cycles again at the configured refill rate.
type GasError struct {
	Tenant string
	// Deficit is how many cycles short the bucket was at failure.
	Deficit int64
	// RetryAfter estimates the refill time for the deficit.
	RetryAfter time.Duration
}

func (e *GasError) Error() string {
	return fmt.Sprintf("sched: tenant %q gas budget exhausted (%d cycles short; retry in %s)",
		e.Tenant, e.Deficit, e.RetryAfter.Round(time.Millisecond))
}

// Config sizes a Sched. Zero values take the documented defaults.
type Config struct {
	// Workers is the number of concurrent execution slots (default
	// GOMAXPROCS). This is the M in M:N — tasks beyond it are parked.
	Workers int
	// MaxQueued bounds admitted tasks beyond the worker slots, across
	// all tenants (default 1024): a new submission is shed with
	// ErrSaturated when running+queued tasks have reached
	// Workers+MaxQueued — the same admission bound as a semaphore of
	// Workers with a queue of MaxQueued behind it. Preempted tasks
	// re-enter the queue without this check (they were already
	// admitted) but still count toward it, so sustained
	// oversubscription pushes back on new admissions first.
	MaxQueued int
	// Quantum is the S-1 cycle timeslice a task may burn per grant
	// before it must yield to waiting work (default 2,000,000 — about a
	// millisecond of simulated execution). Also the DRR quantum.
	Quantum int64
	// GasRate is each tenant's gas refill in S-1 cycles per second
	// (0 = gas metering off). GasBurst is the bucket capacity (default
	// 10×GasRate); buckets start full.
	GasRate  int64
	GasBurst int64
	// Stress forces a yield at every safepoint — the differential
	// torture mode: every program parks and resumes constantly, so any
	// state the park/resume path fails to preserve shows up as a wrong
	// result.
	Stress bool
	// OnEvent, when non-nil, receives scheduler happenings (the Ev*
	// kinds above; d is the wait duration on EvResume). Called outside
	// the scheduler lock.
	OnEvent func(kind, tenant string, d time.Duration)
	// Clock is the time source (default time.Now; tests inject one to
	// make gas refill deterministic).
	Clock func() time.Time
}

// Stats is a snapshot of the scheduler's lifetime counters and gauges.
type Stats struct {
	Submitted    int64 `json:"submitted"`
	Completed    int64 `json:"completed"`
	Shed         int64 `json:"shed"`
	Preempts     int64 `json:"preempts"`
	Parks        int64 `json:"parks"`
	Resumes      int64 `json:"resumes"`
	GasExhausted int64 `json:"gas_exhausted"`
	Canceled     int64 `json:"canceled"`
	// Gauges.
	Queued   int           `json:"queued"`
	Running  int           `json:"running"`
	Tenants  int           `json:"tenants"`
	ByTenant []TenantStats `json:"by_tenant,omitempty"`
}

// TenantStats is one tenant's row in Stats.
type TenantStats struct {
	Name         string `json:"name"`
	Queued       int    `json:"queued"`
	Deficit      int64  `json:"deficit"`
	Gas          int64  `json:"gas"`
	Submitted    int64  `json:"submitted"`
	Preempts     int64  `json:"preempts"`
	GasExhausted int64  `json:"gas_exhausted"`
	CyclesUsed   int64  `json:"cycles_used"`
}

// task states (guarded by Sched.mu).
const (
	taskQueued = iota
	taskRunning
	taskCanceled
)

type tenant struct {
	name string
	q    []*Task
	// deficit is the DRR balance in cycles: topped up by one quantum per
	// round-robin visit, spent one quantum per grant, settled against
	// actual consumption at yield. Reset when the tenant goes inactive
	// (classic DRR — an idle tenant cannot hoard service).
	deficit int64
	active  bool
	// Gas bucket.
	gas        int64
	lastRefill time.Time
	// Counters for Stats.
	submitted    int64
	preempts     int64
	gasExhausted int64
	cyclesUsed   int64
}

// Task is one admitted execution's handle. Its Safepoint method has the
// exact shape of s1.Machine.OnSafepoint, which is how a machine's
// safepoints become scheduling and gas-metering points.
type Task struct {
	s   *Sched
	tn  *tenant
	ctx context.Context
	// grant is signaled (buffered, capacity 1) when the dispatcher hands
	// this task a slot.
	grant chan struct{}
	state int
	// sliceUsed counts cycles since the last grant (the quantum check);
	// uncharged counts cycles not yet flushed to the gas bucket. Both
	// are goroutine-local to the task.
	sliceUsed int64
	uncharged int64
	enqueued  time.Time
	gasErr    *GasError
}

// Sched is the scheduler. All mutable state is guarded by mu; queued
// mirrors the waiting-task count atomically so the safepoint fast path
// can ask "is anyone waiting?" without taking the lock.
type Sched struct {
	cfg Config

	mu      sync.Mutex
	free    int
	running int
	tenants map[string]*tenant
	// ring is the active-tenant list dispatch round-robins over.
	ring    []*tenant
	ringIdx int
	nqueued int
	stats   Stats

	queued atomic.Int64
}

// gasChunk is the local accumulation before a gas flush takes the lock:
// safepoints fire every ~256 instructions, far too often for a shared
// bucket, so tasks charge in ~64k-cycle strides (a tenant can overdraw
// by at most one chunk per task).
const gasChunk = 1 << 16

// New builds a scheduler.
func New(cfg Config) *Sched {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 1024
	}
	if cfg.Quantum <= 0 {
		cfg.Quantum = 2_000_000
	}
	if cfg.GasBurst <= 0 {
		cfg.GasBurst = 10 * cfg.GasRate
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Sched{
		cfg:     cfg,
		free:    cfg.Workers,
		tenants: map[string]*tenant{},
	}
}

// Workers returns the configured slot count.
func (s *Sched) Workers() int { return s.cfg.Workers }

// Stress reports whether stress mode is on.
func (s *Sched) Stress() bool { return s.cfg.Stress }

// QueuedNow returns the current waiting-task count without locking.
func (s *Sched) QueuedNow() int64 { return s.queued.Load() }

// Stats returns a snapshot including per-tenant rows.
func (s *Sched) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Queued = s.nqueued
	st.Running = s.running
	st.Tenants = len(s.tenants)
	for _, tn := range s.tenants {
		st.ByTenant = append(st.ByTenant, TenantStats{
			Name: tn.name, Queued: len(tn.q), Deficit: tn.deficit,
			Gas: tn.gas, Submitted: tn.submitted, Preempts: tn.preempts,
			GasExhausted: tn.gasExhausted, CyclesUsed: tn.cyclesUsed,
		})
	}
	return st
}

// Metrics exposes the counters and gauges in the obs snapshot shape,
// including per-tenant labeled series.
func (s *Sched) Metrics() map[string]float64 {
	st := s.Stats()
	m := map[string]float64{
		"slcd_sched_submitted_total":     float64(st.Submitted),
		"slcd_sched_completed_total":     float64(st.Completed),
		"slcd_sched_shed_total":          float64(st.Shed),
		"slcd_sched_preempts_total":      float64(st.Preempts),
		"slcd_sched_parks_total":         float64(st.Parks),
		"slcd_sched_resumes_total":       float64(st.Resumes),
		"slcd_sched_gas_exhausted_total": float64(st.GasExhausted),
		"slcd_sched_canceled_total":      float64(st.Canceled),
		"slcd_sched_queued":              float64(st.Queued),
		"slcd_sched_running":             float64(st.Running),
		"slcd_sched_tenants":             float64(st.Tenants),
		"slcd_sched_workers":             float64(s.cfg.Workers),
	}
	for _, tn := range st.ByTenant {
		l := fmt.Sprintf("{tenant=%q}", tn.Name)
		m["slcd_sched_tenant_queued"+l] = float64(tn.Queued)
		m["slcd_sched_tenant_gas"+l] = float64(tn.Gas)
		m["slcd_sched_tenant_preempts_total"+l] = float64(tn.Preempts)
		m["slcd_sched_tenant_gas_exhausted_total"+l] = float64(tn.GasExhausted)
		m["slcd_sched_tenant_cycles_total"+l] = float64(tn.CyclesUsed)
	}
	return m
}

func (s *Sched) emit(kind, tenant string, d time.Duration) {
	if fn := s.cfg.OnEvent; fn != nil {
		fn(kind, tenant, d)
	}
}

// tenantLocked interns a tenant record.
func (s *Sched) tenantLocked(name string) *tenant {
	tn := s.tenants[name]
	if tn == nil {
		tn = &tenant{name: name, gas: s.cfg.GasBurst, lastRefill: s.cfg.Clock()}
		s.tenants[name] = tn
	}
	return tn
}

// refillLocked tops the tenant's bucket up for elapsed time.
func (s *Sched) refillLocked(tn *tenant) {
	if s.cfg.GasRate <= 0 {
		return
	}
	now := s.cfg.Clock()
	if el := now.Sub(tn.lastRefill); el > 0 {
		add := int64(float64(el) / float64(time.Second) * float64(s.cfg.GasRate))
		if add > 0 {
			tn.gas = min(s.cfg.GasBurst, tn.gas+add)
			tn.lastRefill = now
		}
	}
}

// gasErrLocked builds the typed failure for a bucket that is deficit
// cycles short.
func (s *Sched) gasErrLocked(tn *tenant, deficit int64) *GasError {
	retry := time.Duration(0)
	if s.cfg.GasRate > 0 {
		retry = time.Duration(float64(deficit) / float64(s.cfg.GasRate) * float64(time.Second))
	}
	tn.gasExhausted++
	s.stats.GasExhausted++
	return &GasError{Tenant: tn.name, Deficit: deficit, RetryAfter: retry}
}

// Run executes fn under the scheduler: it admits (or sheds), waits for
// a slot granted by fair queuing, and releases the slot when fn
// returns. fn receives the Task whose Safepoint method must be wired
// into the machine it drives; fn runs on the caller's goroutine. The
// returned error is fn's, or ErrSaturated / *GasError / ctx.Err() when
// the task never got to run (or was killed at a safepoint).
func (s *Sched) Run(ctx context.Context, tenantName string, fn func(*Task) error) error {
	if tenantName == "" {
		tenantName = "default"
	}
	s.mu.Lock()
	tn := s.tenantLocked(tenantName)
	tn.submitted++
	s.stats.Submitted++
	// Admission: a dry gas bucket fails fast with the typed error —
	// cheaper for everyone than scheduling a program that will die at
	// its first safepoint.
	if s.cfg.GasRate > 0 {
		s.refillLocked(tn)
		if tn.gas <= 0 {
			ge := s.gasErrLocked(tn, 1-tn.gas)
			s.mu.Unlock()
			s.emit(EvGasExhausted, tenantName, 0)
			return ge
		}
	}
	if s.running+s.nqueued >= s.cfg.Workers+s.cfg.MaxQueued {
		s.stats.Shed++
		s.mu.Unlock()
		return ErrSaturated
	}
	t := &Task{s: s, tn: tn, ctx: ctx, grant: make(chan struct{}, 1)}
	if err := s.acquire(t); err != nil {
		return err
	}
	err := fn(t)
	if t.gasErr != nil {
		// The machine surfaced the gas failure through its own error
		// plumbing; prefer the typed error.
		err = t.gasErr
	}
	s.finish(t)
	return err
}

// acquire takes a slot, parking the task in its tenant queue if none is
// free. Called with s.mu held; returns with it released.
func (s *Sched) acquire(t *Task) error {
	if s.free > 0 && s.nqueued == 0 {
		s.free--
		s.running++
		t.state = taskRunning
		s.mu.Unlock()
		return nil
	}
	s.parkLocked(t)
	s.mu.Unlock()
	s.emit(EvPark, t.tn.name, 0)
	return t.await()
}

// parkLocked enqueues t at its tenant's tail and activates the tenant.
func (s *Sched) parkLocked(t *Task) {
	t.state = taskQueued
	t.enqueued = s.cfg.Clock()
	t.tn.q = append(t.tn.q, t)
	if !t.tn.active {
		t.tn.active = true
		s.ring = append(s.ring, t.tn)
	}
	s.nqueued++
	s.queued.Store(int64(s.nqueued))
	s.stats.Parks++
}

// dispatchLocked grants free slots to queued tasks by deficit round-
// robin over active tenants. Visiting a tenant tops its deficit up by
// one quantum (bounded, so an idle stretch cannot bank unbounded
// service); each grant spends one quantum. Tenants with no waiting
// tasks leave the ring and forfeit their deficit.
func (s *Sched) dispatchLocked() {
	for s.free > 0 && s.nqueued > 0 {
		if s.ringIdx >= len(s.ring) {
			s.ringIdx = 0
		}
		tn := s.ring[s.ringIdx]
		// Drop canceled tasks from the head lazily.
		for len(tn.q) > 0 && tn.q[0].state == taskCanceled {
			tn.q = tn.q[1:]
		}
		if len(tn.q) == 0 {
			tn.active = false
			tn.deficit = 0
			s.ring = append(s.ring[:s.ringIdx], s.ring[s.ringIdx+1:]...)
			continue
		}
		if tn.deficit < s.cfg.Quantum {
			tn.deficit += s.cfg.Quantum
		}
		for s.free > 0 && len(tn.q) > 0 && tn.deficit >= s.cfg.Quantum {
			t := tn.q[0]
			tn.q = tn.q[1:]
			if t.state == taskCanceled {
				continue
			}
			tn.deficit -= s.cfg.Quantum
			s.nqueued--
			s.queued.Store(int64(s.nqueued))
			s.free--
			s.running++
			t.state = taskRunning
			t.grant <- struct{}{}
		}
		s.ringIdx++
	}
}

// await blocks until the dispatcher grants the task a slot or its
// context dies while it waits.
func (t *Task) await() error {
	s := t.s
	select {
	case <-t.grant:
		wait := s.cfg.Clock().Sub(t.enqueued)
		s.mu.Lock()
		s.stats.Resumes++
		s.mu.Unlock()
		t.sliceUsed = 0
		s.emit(EvResume, t.tn.name, wait)
		return nil
	case <-t.ctx.Done():
		s.mu.Lock()
		if t.state == taskRunning {
			// The grant raced our cancellation: we own a slot we will
			// never use — put it back and let someone else run.
			s.releaseLocked()
		} else {
			t.state = taskCanceled
			s.nqueued--
			s.queued.Store(int64(s.nqueued))
		}
		s.stats.Canceled++
		s.mu.Unlock()
		return t.ctx.Err()
	}
}

// releaseLocked frees the caller's slot and re-dispatches.
func (s *Sched) releaseLocked() {
	s.running--
	s.free++
	s.dispatchLocked()
}

// finish settles the task's accounting and releases its slot.
func (s *Sched) finish(t *Task) {
	t.flushGas()
	s.mu.Lock()
	s.settleLocked(t)
	s.releaseLocked()
	s.stats.Completed++
	s.mu.Unlock()
}

// settleLocked reconciles the DRR deficit against the cycles the task
// actually burned this grant: unused quantum is refunded, overrun is
// charged, so long-run shares track real S-1 cycles.
func (s *Sched) settleLocked(t *Task) {
	t.tn.deficit += s.cfg.Quantum - t.sliceUsed
	if t.tn.deficit > 2*s.cfg.Quantum {
		t.tn.deficit = 2 * s.cfg.Quantum
	}
	t.sliceUsed = 0
}

// Safepoint is the machine-side hook (the exact s1.Machine.OnSafepoint
// shape): it accumulates the cycle delta, flushes gas in chunks, and
// yields the slot when the quantum has expired and someone is waiting —
// or unconditionally under stress or an explicit preempt.
func (t *Task) Safepoint(cycles int64, preempted bool) error {
	t.sliceUsed += cycles
	t.uncharged += cycles
	if t.uncharged >= gasChunk {
		if err := t.flushGas(); err != nil {
			return err
		}
	}
	s := t.s
	if preempted || s.cfg.Stress ||
		(t.sliceUsed >= s.cfg.Quantum && s.queued.Load() > 0) {
		return t.yield()
	}
	return nil
}

// flushGas charges the accumulated cycles to the tenant bucket. Returns
// the typed *GasError when the bucket runs dry (and records it on the
// task so the daemon can classify the failure even after the machine
// has wrapped the error).
func (t *Task) flushGas() error {
	spend := t.uncharged
	t.uncharged = 0
	s := t.s
	if spend <= 0 {
		return nil
	}
	s.mu.Lock()
	t.tn.cyclesUsed += spend
	if s.cfg.GasRate <= 0 {
		s.mu.Unlock()
		return nil
	}
	s.refillLocked(t.tn)
	t.tn.gas -= spend
	if t.tn.gas > 0 {
		s.mu.Unlock()
		return nil
	}
	deficit := 1 - t.tn.gas
	t.tn.gas = 0
	ge := s.gasErrLocked(t.tn, deficit)
	s.mu.Unlock()
	t.gasErr = ge
	s.emit(EvGasExhausted, t.tn.name, 0)
	return ge
}

// yield gives the slot up, requeues the task at its tenant's tail, and
// blocks until granted again. Gas is flushed first so the DRR
// settlement sees the true consumption.
func (t *Task) yield() error {
	if err := t.flushGas(); err != nil {
		return err
	}
	s := t.s
	s.mu.Lock()
	s.settleLocked(t)
	s.stats.Preempts++
	t.tn.preempts++
	s.parkLocked(t)
	s.releaseLocked()
	s.mu.Unlock()
	s.emit(EvPreempt, t.tn.name, 0)
	s.emit(EvPark, t.tn.name, 0)
	return t.await()
}
