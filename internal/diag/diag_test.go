package diag

import (
	"errors"
	"strings"
	"testing"
)

func TestDiagnosticFormat(t *testing.T) {
	d := &Diagnostic{Severity: Error, Unit: "square", Phase: "optimize",
		Line: 3, Col: 1, Worker: 2, Msg: "panic: boom"}
	got := d.Error()
	for _, want := range []string{"3:1:", "error", "square", "optimize", "boom", "worker 2"} {
		if !strings.Contains(got, want) {
			t.Errorf("diagnostic %q missing %q", got, want)
		}
	}
	w := &Diagnostic{Severity: Warning, Phase: "cache", Msg: "corrupt entry"}
	if !strings.Contains(w.Error(), "warning") {
		t.Errorf("warning rendered as %q", w.Error())
	}
}

func TestListCap(t *testing.T) {
	l := NewList(2)
	for i := 0; i < 5; i++ {
		l.Add(&Diagnostic{Severity: Error, Msg: "e"})
	}
	l.Add(&Diagnostic{Severity: Warning, Msg: "w"})
	if l.Errors() != 5 {
		t.Errorf("Errors() = %d, want 5", l.Errors())
	}
	if l.Dropped() != 3 {
		t.Errorf("Dropped() = %d, want 3", l.Dropped())
	}
	// 2 stored errors + the warning (warnings are never capped).
	if l.Len() != 3 {
		t.Errorf("Len() = %d, want 3", l.Len())
	}
	if !strings.Contains(l.Error(), "past -max-errors") {
		t.Errorf("summary %q should note the dropped errors", l.Error())
	}
}

func TestNilListIsSafe(t *testing.T) {
	var l *List
	l.Add(&Diagnostic{Severity: Error, Msg: "e"})
	if l.HasErrors() || l.Len() != 0 || l.All() != nil {
		t.Error("nil list should be inert")
	}
}

func TestFromPanic(t *testing.T) {
	d := FromPanic("kaboom", "rep", "f", 3, "(defun f (x) x)")
	if d.Severity != Error || d.Phase != "rep" || d.Worker != 3 {
		t.Errorf("bad diagnostic: %+v", d)
	}
	if !strings.Contains(d.Msg, "kaboom") || !strings.Contains(d.Msg, "(defun f (x) x)") {
		t.Errorf("msg %q", d.Msg)
	}
	inj := FromPanic(&InjectedFault{Phase: "optimize", Unit: "f", Kind: KindPanic}, "", "f", 1, "")
	if inj.Phase != "optimize" {
		t.Errorf("injected fault should supply the phase, got %q", inj.Phase)
	}
	var ij *InjectedFault
	if !errors.As(inj, &ij) {
		t.Error("underlying InjectedFault should unwrap")
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("optimize:defun=exptl:panic;cache:*:corrupt;rep:unit=g:error")
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Fire("optimize", "other"); err != nil {
		t.Errorf("non-matching unit fired: %v", err)
	}
	if err := p.Fire("rep", "g"); err == nil {
		t.Error("error fault should fire")
	}
	if !p.ShouldCorrupt("cache", "anything") {
		t.Error("wildcard corrupt fault should match")
	}
	if p.ShouldCorrupt("emit", "anything") {
		t.Error("corrupt fault is cache-phase only in this plan")
	}
	func() {
		defer func() {
			r := recover()
			ij, ok := r.(*InjectedFault)
			if !ok || ij.Unit != "exptl" {
				t.Errorf("want InjectedFault panic, got %v", r)
			}
		}()
		p.Fire("optimize", "exptl")
		t.Error("panic fault did not panic")
	}()

	for _, bad := range []string{"optimize", "a:b", "x:defun=f:explode", "x:who=f:panic", ":*:panic"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) should fail", bad)
		}
	}
	if p, err := ParsePlan("  "); p != nil || err != nil {
		t.Error("blank plan should be nil, nil")
	}
	var nilPlan *Plan
	if nilPlan.Fire("x", "y") != nil || nilPlan.ShouldCorrupt("x", "y") {
		t.Error("nil plan must be inert")
	}
}

func TestPlanDecisionKinds(t *testing.T) {
	p, err := ParsePlan("disk:*:cache-write;request:unit=slow:deadline")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Should(KindCacheWrite, "disk", "anything") {
		t.Error("wildcard cache-write fault should match")
	}
	if p.Should(KindCacheWrite, "cache", "anything") {
		t.Error("cache-write fault is disk-phase only in this plan")
	}
	if !p.Should(KindDeadline, "request", "slow") {
		t.Error("deadline fault should match its unit")
	}
	if p.Should(KindDeadline, "request", "fast") {
		t.Error("deadline fault must not match other units")
	}
	// Decision kinds never fire as panics or errors.
	if err := p.Fire("disk", "anything"); err != nil {
		t.Errorf("cache-write fault fired from Fire: %v", err)
	}
	if err := p.Fire("request", "slow"); err != nil {
		t.Errorf("deadline fault fired from Fire: %v", err)
	}
	var nilPlan *Plan
	if nilPlan.Should(KindCacheWrite, "x", "y") {
		t.Error("nil plan must be inert for Should")
	}
}

func TestPlanFromEnv(t *testing.T) {
	t.Setenv("SLC_FAULT", "optimize:defun=exptl:panic;cache:*:corrupt")
	p, err := PlanFromEnv()
	if err != nil || p == nil {
		t.Fatalf("PlanFromEnv: %v %v", p, err)
	}
	if !p.ShouldCorrupt("cache", "anything") {
		t.Error("env plan lost the corrupt entry")
	}
	t.Setenv("SLC_FAULT", "")
	if p, err := PlanFromEnv(); p != nil || err != nil {
		t.Error("empty env should be nil, nil")
	}
	t.Setenv("SLC_FAULT", "not-a-plan")
	if _, err := PlanFromEnv(); err == nil {
		t.Error("malformed env plan should fail")
	}
}
