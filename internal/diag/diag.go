// Package diag is the structured-diagnostics layer of the reproduction:
// positioned, per-unit compiler and runtime diagnostics that accumulate
// instead of aborting, so one malformed defun (or one buggy optimizer
// rule) degrades a single compilation unit rather than the whole load.
//
// The model is deliberately small: a Diagnostic carries a severity, a
// source position (line and column, when known), the compilation unit
// and pipeline phase it arose in, the worker goroutine that produced
// it, and the underlying error. A List accumulates diagnostics with a
// cap on stored errors (`-max-errors`); beyond the cap, failures are
// counted but not stored, and compilation continues so the surviving
// units still produce the same machine image as compiling the filtered
// source.
//
// The companion fault.go provides an injection plan (SLC_FAULT) that
// turns the recovery paths themselves into tested code.
package diag

import (
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
)

// Severity classifies a diagnostic.
type Severity int

const (
	// Warning marks a degraded-but-recovered condition (a corrupt cache
	// entry that fell back to recompilation, say); it does not fail a
	// load.
	Warning Severity = iota
	// Error marks a failed compilation unit or top-level form.
	Error
)

func (s Severity) String() string {
	if s == Warning {
		return "warning"
	}
	return "error"
}

// Diagnostic is one structured compiler or runtime diagnostic.
type Diagnostic struct {
	Severity Severity
	// Unit is the compilation unit: the defun name, a %toplevel-N
	// pseudo-unit, or "" when no unit applies (reader errors).
	Unit string
	// Phase is the pipeline stage: read, convert, cache, optimize, cse,
	// analysis, binding, rep, pdl, emit, run, ...
	Phase string
	// Line and Col locate the unit's top-level form in the source text
	// (1-based; 0 = unknown).
	Line, Col int
	// Worker is the pool goroutine that produced the diagnostic (0 is
	// the driver).
	Worker int
	// Msg is the human-readable description.
	Msg string
	// Err is the underlying error, when one exists.
	Err error
}

// Error renders the diagnostic in a grep-friendly single-line form:
//
//	3:1: error: unit square [optimize]: panic: boom (worker 2)
func (d *Diagnostic) Error() string {
	var b strings.Builder
	if d.Line > 0 {
		fmt.Fprintf(&b, "%d:%d: ", d.Line, d.Col)
	}
	b.WriteString(d.Severity.String())
	b.WriteString(": ")
	if d.Unit != "" {
		fmt.Fprintf(&b, "unit %s ", d.Unit)
	}
	if d.Phase != "" {
		fmt.Fprintf(&b, "[%s]: ", d.Phase)
	}
	b.WriteString(d.Msg)
	if d.Worker != 0 {
		fmt.Fprintf(&b, " (worker %d)", d.Worker)
	}
	return b.String()
}

// Unwrap exposes the underlying error to errors.Is/As chains.
func (d *Diagnostic) Unwrap() error { return d.Err }

// List accumulates diagnostics up to a cap on stored errors. The zero
// value is usable (unlimited). List implements error; callers that kept
// the old single-error signature return the list itself when any unit
// failed. All methods are safe on a nil receiver and for concurrent use.
type List struct {
	mu sync.Mutex
	// max bounds the number of *stored* Error-severity diagnostics
	// (0 = unlimited). Failures past the cap are counted in dropped:
	// compilation continues either way, so the surviving image does not
	// depend on the cap.
	max     int
	all     []*Diagnostic
	errors  int
	dropped int
}

// NewList returns a list storing at most max error diagnostics
// (0 = unlimited).
func NewList(max int) *List { return &List{max: max} }

// Add appends d, subject to the error cap. It reports whether the
// diagnostic was stored (warnings always are).
func (l *List) Add(d *Diagnostic) bool {
	if l == nil || d == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if d.Severity == Error {
		l.errors++
		if l.max > 0 && l.errors > l.max {
			l.dropped++
			return false
		}
	}
	l.all = append(l.all, d)
	return true
}

// All returns a snapshot of the stored diagnostics, in arrival order.
func (l *List) All() []*Diagnostic {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]*Diagnostic, len(l.all))
	copy(out, l.all)
	return out
}

// Len returns the number of stored diagnostics.
func (l *List) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.all)
}

// Errors returns the total count of Error-severity diagnostics,
// including any dropped past the cap.
func (l *List) Errors() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.errors
}

// Dropped returns how many error diagnostics exceeded the cap and were
// counted but not stored.
func (l *List) Dropped() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// HasErrors reports whether any unit failed.
func (l *List) HasErrors() bool { return l.Errors() > 0 }

// Error summarizes every stored diagnostic, one per line, implementing
// the error interface so a List can travel through existing
// error-returning APIs.
func (l *List) Error() string {
	if l == nil {
		return "no diagnostics"
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.all) == 0 {
		return "no diagnostics"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d diagnostic(s)", len(l.all))
	if l.dropped > 0 {
		fmt.Fprintf(&b, " (+%d past -max-errors)", l.dropped)
	}
	for _, d := range l.all {
		b.WriteString("\n  ")
		b.WriteString(d.Error())
	}
	return b.String()
}

// FromPanic converts a recovered panic value into an Error diagnostic
// carrying the phase name, the worker id, and a context string (the
// back-translated tree of the failing unit, typically). A panic that is
// itself an *InjectedFault or error keeps its message; anything else is
// formatted with %v. A trimmed stack excerpt is folded into Err so the
// provenance survives without drowning the report.
func FromPanic(r any, phase, unit string, worker int, context string) *Diagnostic {
	d := &Diagnostic{
		Severity: Error,
		Unit:     unit,
		Phase:    phase,
		Worker:   worker,
	}
	switch v := r.(type) {
	case *InjectedFault:
		d.Msg = "panic: " + v.Error()
		d.Err = v
		if d.Phase == "" {
			d.Phase = v.Phase
		}
	case error:
		d.Msg = "panic: " + v.Error()
		d.Err = v
	default:
		d.Msg = fmt.Sprintf("panic: %v", v)
	}
	if context != "" {
		d.Msg += "\n    in " + truncate(context, 200)
	}
	if d.Err == nil {
		d.Err = fmt.Errorf("%s\n%s", d.Msg, trimStack(debug.Stack(), 8))
	}
	return d
}

// truncate shortens s to at most n runes with an ellipsis.
func truncate(s string, n int) string {
	rs := []rune(s)
	if len(rs) <= n {
		return s
	}
	return string(rs[:n]) + "..."
}

// trimStack keeps the first n lines of a debug.Stack dump.
func trimStack(stack []byte, n int) string {
	lines := strings.SplitN(string(stack), "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
