package diag

import (
	"fmt"
	"os"
	"strings"
)

// Fault injection makes the recovery paths first-class tested code: a
// Plan, parsed from the SLC_FAULT environment variable or the -fault
// flag, fires panics and errors at pipeline phase boundaries so that
// per-unit degradation can be exercised deterministically, including
// under -jobs N.
//
// Grammar (entries separated by ';'):
//
//	plan     := entry (';' entry)*
//	entry    := phase ':' selector ':' kind
//	phase    := pipeline stage name ("optimize", "emit", "cache", ...) | '*'
//	selector := "defun=" name | "unit=" name | '*'
//	kind     := "panic" | "error" | "corrupt" | "cache-write" | "deadline"
//
// Examples:
//
//	SLC_FAULT=optimize:defun=exptl:panic      # panic while optimizing exptl
//	SLC_FAULT=cache:*:corrupt                 # corrupt every cache hit
//	SLC_FAULT=rep:defun=f:error;emit:defun=g:panic
//	SLC_FAULT=disk:*:cache-write              # tear every durable cache write
//	SLC_FAULT=request:*:deadline              # expire every slcd request deadline
//	SLC_FAULT=snapshot:*:snapshot-write       # tear every snapshot checkpoint write
//	SLC_FAULT=snapshot:unit=boot:snapshot-read # treat the boot snapshot as corrupt

// Fault kinds.
const (
	KindPanic   = "panic"
	KindError   = "error"
	KindCorrupt = "corrupt"
	// KindCacheWrite makes the durable cache write a torn entry file —
	// checksum-valid header, truncated payload — exercising the startup
	// recovery and quarantine path without a real crash.
	KindCacheWrite = "cache-write"
	// KindDeadline makes the daemon treat the matching request's context
	// as already expired, exercising the timeout-diagnostic path.
	KindDeadline = "deadline"
	// KindSnapshotWrite makes the snapshot store write a torn snapshot
	// file — valid header, truncated sections — with the atomicity
	// protocol bypassed, exercising open-time quarantine (DESIGN.md §14).
	KindSnapshotWrite = "snapshot-write"
	// KindSnapshotRead makes the snapshot store treat the matching read
	// as corrupt, exercising the quarantine-and-cold-compile fallback
	// without damaging the file on disk first.
	KindSnapshotRead = "snapshot-read"
)

// Fault is one injection rule.
type Fault struct {
	// Phase matches the pipeline stage name; "*" matches any phase.
	Phase string
	// Unit matches the compilation unit name; "*" matches any unit.
	Unit string
	// Kind is KindPanic, KindError or KindCorrupt.
	Kind string
}

func (f Fault) matches(phase, unit string) bool {
	return (f.Phase == "*" || f.Phase == phase) &&
		(f.Unit == "*" || f.Unit == unit)
}

// InjectedFault is the panic/error value a firing fault produces; the
// recovery machinery recognizes it to label diagnostics precisely.
type InjectedFault struct {
	Phase, Unit, Kind string
}

func (f *InjectedFault) Error() string {
	return fmt.Sprintf("injected %s fault at %s:%s", f.Kind, f.Phase, f.Unit)
}

// Plan is a parsed fault-injection plan. A nil *Plan never fires, so
// the hot path pays one nil check.
type Plan struct {
	faults []Fault
	// OnFire, when non-nil, is called with (kind, phase, unit) every time
	// a fault actually fires or a Should query matches — the flight
	// recorder uses it to log injected failures alongside their effects.
	// Set it once after ParsePlan, before the plan is shared.
	OnFire func(kind, phase, unit string)
}

func (p *Plan) fired(kind, phase, unit string) {
	if p.OnFire != nil {
		p.OnFire(kind, phase, unit)
	}
}

// ParsePlan parses the SLC_FAULT grammar. An empty string yields a nil
// plan.
func ParsePlan(s string) (*Plan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	p := &Plan{}
	for _, ent := range strings.Split(s, ";") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		parts := strings.SplitN(ent, ":", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("diag: fault entry %q: want phase:selector:kind", ent)
		}
		f := Fault{Phase: parts[0], Kind: parts[2]}
		switch sel := parts[1]; {
		case sel == "*":
			f.Unit = "*"
		case strings.HasPrefix(sel, "defun="):
			f.Unit = strings.TrimPrefix(sel, "defun=")
		case strings.HasPrefix(sel, "unit="):
			f.Unit = strings.TrimPrefix(sel, "unit=")
		default:
			return nil, fmt.Errorf("diag: fault selector %q: want defun=NAME, unit=NAME or *", sel)
		}
		switch f.Kind {
		case KindPanic, KindError, KindCorrupt, KindCacheWrite, KindDeadline,
			KindSnapshotWrite, KindSnapshotRead:
		default:
			return nil, fmt.Errorf("diag: fault kind %q: want panic, error, corrupt, cache-write, deadline, snapshot-write or snapshot-read", f.Kind)
		}
		if f.Phase == "" || f.Unit == "" {
			return nil, fmt.Errorf("diag: fault entry %q: empty phase or unit", ent)
		}
		p.faults = append(p.faults, f)
	}
	if len(p.faults) == 0 {
		return nil, nil
	}
	return p, nil
}

// PlanFromEnv parses SLC_FAULT from the environment.
func PlanFromEnv() (*Plan, error) {
	return ParsePlan(os.Getenv("SLC_FAULT"))
}

// Fire checks the plan at a phase boundary for one unit: a matching
// panic fault panics with an *InjectedFault, a matching error fault
// returns one, and no match (or a nil plan) returns nil. Corrupt faults
// never fire here — they are consulted via ShouldCorrupt at the cache
// layer.
func (p *Plan) Fire(phase, unit string) error {
	if p == nil {
		return nil
	}
	for _, f := range p.faults {
		if !f.matches(phase, unit) {
			continue
		}
		switch f.Kind {
		case KindPanic:
			p.fired(KindPanic, phase, unit)
			panic(&InjectedFault{Phase: phase, Unit: unit, Kind: KindPanic})
		case KindError:
			p.fired(KindError, phase, unit)
			return &InjectedFault{Phase: phase, Unit: unit, Kind: KindError}
		}
	}
	return nil
}

// ShouldCorrupt reports whether a corrupt fault matches (the cache
// layer then mangles the looked-up entry so validation must catch it).
func (p *Plan) ShouldCorrupt(phase, unit string) bool {
	return p.Should(KindCorrupt, phase, unit)
}

// Should reports whether a fault of the given kind matches. It is the
// generic form behind ShouldCorrupt, used for the kinds that are
// consulted at a decision point rather than fired as a panic/error:
// cache-write (durable cache layer) and deadline (daemon request entry).
func (p *Plan) Should(kind, phase, unit string) bool {
	if p == nil {
		return false
	}
	for _, f := range p.faults {
		if f.Kind == kind && f.matches(phase, unit) {
			p.fired(kind, phase, unit)
			return true
		}
	}
	return false
}
