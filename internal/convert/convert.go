// Package convert implements the compiler's preliminary phase (§4.1 of
// the paper): syntax checking, macro expansion, resolution of variable
// references, and conversion of source programs into the internal tree
// form over the small basic construct set of Table 2.
//
// "All other program constructs are expanded as macros or otherwise
// re-expressed in terms of the small basic set": let becomes a call to a
// manifest lambda-expression, cond becomes nested ifs, and/or become the
// lambda/if encodings shown in §5, prog becomes a let containing a
// progbody, and so on. Every variable binding creates a fresh tree.Var,
// so the whole program is uniformly alpha-renamed.
package convert

import (
	"fmt"

	"repro/internal/sexp"
	"repro/internal/tree"
)

// ConvertError reports a syntax error during conversion.
type ConvertError struct {
	Form sexp.Value
	Msg  string
}

func (e *ConvertError) Error() string {
	return fmt.Sprintf("convert: %s in %s", e.Msg, sexp.Print(e.Form))
}

func errf(form sexp.Value, format string, args ...any) error {
	return &ConvertError{Form: form, Msg: fmt.Sprintf(format, args...)}
}

// Def is a top-level function definition.
type Def struct {
	Name   *sexp.Symbol
	Lambda *tree.Lambda
	// Source is the original defun form, before macro expansion and
	// alpha-renaming; printing it gives a stable content-address for the
	// compile cache (the converted tree is not reproducible — its
	// generated variable names differ run to run).
	Source sexp.Value
}

// Program is the result of converting a sequence of top-level forms.
type Program struct {
	// Defs holds defun'd functions in definition order.
	Defs []*Def
	// TopForms holds the remaining top-level expressions (including
	// defvar initializations) in order.
	TopForms []tree.Node
	// Specials is the set of proclaimed special (dynamically scoped)
	// variable names.
	Specials map[*sexp.Symbol]bool
}

// DefNamed returns the definition for name, or nil.
func (p *Program) DefNamed(name *sexp.Symbol) *Def {
	for _, d := range p.Defs {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// Converter turns source forms into internal trees.
type Converter struct {
	// Specials is the proclaimed-special set; symbols spelled *with
	// earmuffs* are treated as special as well, following convention.
	Specials map[*sexp.Symbol]bool
	// globals maps each special/global symbol to its single shared Var
	// record (dynamic references all denote the current binding).
	globals map[*sexp.Symbol]*tree.Var
	// Constants maps symbols to compile-time constant values: references
	// become literals (used for the static arrays of the numeric
	// experiments).
	Constants map[*sexp.Symbol]sexp.Value
	// UserMacro, if non-nil, is consulted for unknown head symbols; it
	// returns the expansion and true if the form was a user macro call.
	// The core package wires this to defmacro via the interpreter.
	UserMacro func(head *sexp.Symbol, form sexp.Value) (sexp.Value, bool, error)
	// OnDefmacro, if non-nil, receives top-level (defmacro name args
	// body...) definitions; the host registers the expander (typically an
	// interpreter closure) behind UserMacro.
	OnDefmacro func(name *sexp.Symbol, lambdaList sexp.Value, body []sexp.Value) error
	// gen numbers this converter's generated symbols (see gensym).
	gen int
}

// New returns a fresh Converter.
func New() *Converter {
	return &Converter{
		Specials: map[*sexp.Symbol]bool{},
		globals:  map[*sexp.Symbol]*tree.Var{},
	}
}

// env is the compile-time lexical environment: a chain of variable
// bindings plus visible progbodies for go/return resolution.
type env struct {
	parent *env
	vars   map[*sexp.Symbol]*tree.Var
	// body is a progbody introduced at this level (for prog), if any.
	body *ProgBodyScope
}

// ProgBodyScope tracks an open progbody during conversion.
type ProgBodyScope struct {
	PB *tree.ProgBody
}

func (e *env) lookup(s *sexp.Symbol) *tree.Var {
	for c := e; c != nil; c = c.parent {
		if c.vars != nil {
			if v, ok := c.vars[s]; ok {
				return v
			}
		}
	}
	return nil
}

func (e *env) child() *env { return &env{parent: e, vars: map[*sexp.Symbol]*tree.Var{}} }

func (e *env) findTag(tag *sexp.Symbol) *tree.ProgBody {
	for c := e; c != nil; c = c.parent {
		if c.body != nil && c.body.PB.TagIndex(tag) >= 0 {
			return c.body.PB
		}
	}
	return nil
}

func (e *env) innermostBody() *tree.ProgBody {
	for c := e; c != nil; c = c.parent {
		if c.body != nil {
			return c.body.PB
		}
	}
	return nil
}

// IsSpecial reports whether sym is dynamically scoped.
func (c *Converter) IsSpecial(sym *sexp.Symbol) bool {
	if c.Specials[sym] {
		return true
	}
	n := sym.Name
	return len(n) >= 3 && n[0] == '*' && n[len(n)-1] == '*'
}

// gensym returns a fresh uninterned symbol numbered by a per-converter
// counter: the names surface in jump labels and listings, so drawing them
// from a process-global stream would make two Systems in one process
// compile the same source to textually different images.
func (c *Converter) gensym(prefix string) *sexp.Symbol {
	c.gen++
	return &sexp.Symbol{Name: fmt.Sprintf("%s%d", prefix, c.gen)}
}

// globalVar returns the shared Var record for a special/global symbol.
func (c *Converter) globalVar(sym *sexp.Symbol) *tree.Var {
	if v, ok := c.globals[sym]; ok {
		return v
	}
	v := tree.NewVar(sym)
	v.Special = true
	c.globals[sym] = v
	return v
}

// ConvertTopLevel converts a whole program, stopping at the first bad
// form. Callers that want to keep going past a bad unit use the
// per-form API (ScanProclaim over everything, then TopForm one form at
// a time, collecting errors) — tree construction is per-form, so a
// failed form contributes nothing to the Program and later forms
// convert exactly as if it had been deleted from the source.
func (c *Converter) ConvertTopLevel(forms []sexp.Value) (*Program, error) {
	p := NewProgram()
	// First pass: gather proclamations so that later defuns see them.
	for _, f := range forms {
		c.ScanProclaim(f)
	}
	for _, f := range forms {
		if err := c.TopForm(p, f); err != nil {
			return nil, err
		}
	}
	c.FinishProgram(p)
	return p, nil
}

// NewProgram returns an empty Program for incremental per-form
// conversion via TopForm.
func NewProgram() *Program {
	return &Program{Specials: map[*sexp.Symbol]bool{}}
}

// FinishProgram copies the converter's accumulated special-set into the
// program; call it after the last TopForm.
func (c *Converter) FinishProgram(p *Program) {
	for s := range c.Specials {
		p.Specials[s] = true
	}
}

// ScanProclaim records special-variable proclamations made by form
// (proclaim/declaim/defvar/...). It never fails: malformed
// proclamations are left for TopForm to diagnose.
func (c *Converter) ScanProclaim(form sexp.Value) {
	items, err := sexp.ListToSlice(form)
	if err != nil || len(items) == 0 {
		return
	}
	head, ok := items[0].(*sexp.Symbol)
	if !ok {
		return
	}
	switch head.Name {
	case "proclaim", "declaim":
		for _, a := range items[1:] {
			// (proclaim '(special x y)) or (declaim (special x y))
			if q, e := sexp.ListToSlice(a); e == nil && len(q) == 2 && q[0] == sexp.Value(sexp.SymQuote) {
				a = q[1]
			}
			decl, e := sexp.ListToSlice(a)
			if e != nil || len(decl) == 0 {
				continue
			}
			if d, ok := decl[0].(*sexp.Symbol); ok && d.Name == "special" {
				for _, s := range decl[1:] {
					if sym, ok := s.(*sexp.Symbol); ok {
						c.Specials[sym] = true
					}
				}
			}
		}
	case "defvar", "defparameter", "defconstant":
		if len(items) >= 2 {
			if sym, ok := items[1].(*sexp.Symbol); ok {
				c.Specials[sym] = true
			}
		}
	}
}

// TopForm converts one top-level form into p. An error leaves p exactly
// as it was: conversion state is per-form, so callers may report the
// error and continue with the next form.
func (c *Converter) TopForm(p *Program, form sexp.Value) error {
	// Each top-level form gets its own global/special Var records: dynamic
	// references denote the current binding by *name*, so nothing needs
	// the records shared across definitions — and sharing them would let
	// the optimizer's tree surgery on one function mutate the Refs/Sets
	// lists of another being compiled concurrently.
	c.globals = map[*sexp.Symbol]*tree.Var{}
	// The gensym stream likewise restarts per form (the symbols are
	// uninterned, so reuse across forms cannot collide). This keeps the
	// generated names in a unit's listing a function of that unit alone —
	// a unit rejected with an error must not shift the numbering of its
	// neighbours, or error recovery would change the image of the
	// surviving units.
	c.gen = 0
	items, err := sexp.ListToSlice(form)
	if err == nil && len(items) > 0 {
		if head, ok := items[0].(*sexp.Symbol); ok {
			switch head.Name {
			case "defun":
				if len(items) < 3 {
					return errf(form, "defun needs a name and a lambda-list")
				}
				name, ok := items[1].(*sexp.Symbol)
				if !ok {
					return errf(form, "defun name must be a symbol")
				}
				lam, err := c.convertLambdaParts(name.Name, items[2], items[3:], topEnv())
				if err != nil {
					return err
				}
				p.Defs = append(p.Defs, &Def{Name: name, Lambda: lam, Source: form})
				return nil
			case "defmacro":
				if c.OnDefmacro == nil {
					return errf(form, "defmacro is not supported in this context")
				}
				if len(items) < 3 {
					return errf(form, "defmacro needs a name and a lambda-list")
				}
				name, ok := items[1].(*sexp.Symbol)
				if !ok {
					return errf(form, "defmacro name must be a symbol")
				}
				return c.OnDefmacro(name, items[2], items[3:])
			case "proclaim", "declaim":
				return nil // handled in scanProclaim
			case "defvar", "defparameter", "defconstant":
				if len(items) >= 3 {
					sym, ok := items[1].(*sexp.Symbol)
					if !ok {
						return errf(form, "%s name must be a symbol", head.Name)
					}
					init, err := c.Convert(items[2], topEnv())
					if err != nil {
						return err
					}
					v := c.globalVar(sym)
					p.TopForms = append(p.TopForms, tree.NewSetq(v, init))
				}
				return nil
			}
		}
	}
	n, err := c.Convert(form, topEnv())
	if err != nil {
		return err
	}
	p.TopForms = append(p.TopForms, n)
	return nil
}

func topEnv() *env { return &env{vars: map[*sexp.Symbol]*tree.Var{}} }

// WrapToplevel wraps a converted top-level form in a nullary lambda so it
// can be compiled and invoked as a function.
func WrapToplevel(form tree.Node) *tree.Lambda {
	return &tree.Lambda{Name: "toplevel", Body: form}
}

// ConvertForm converts a single expression in an empty lexical
// environment.
func (c *Converter) ConvertForm(form sexp.Value) (tree.Node, error) {
	return c.Convert(form, topEnv())
}

// ConvertLambda converts a (lambda ...) or (defun ...) form to a Lambda
// node in an empty environment.
func (c *Converter) ConvertLambda(form sexp.Value) (*tree.Lambda, error) {
	n, err := c.ConvertForm(form)
	if err != nil {
		return nil, err
	}
	l, ok := n.(*tree.Lambda)
	if !ok {
		return nil, errf(form, "not a lambda-expression")
	}
	return l, nil
}

// Convert converts form in lexical environment e.
func (c *Converter) Convert(form sexp.Value, e *env) (tree.Node, error) {
	switch v := form.(type) {
	case sexp.Fixnum, *sexp.Bignum, *sexp.Ratio, sexp.Flonum, sexp.String,
		sexp.Character, *sexp.Vector:
		return tree.NewLiteral(v), nil
	case *sexp.Symbol:
		return c.convertSymbol(v, e)
	case *sexp.Cons:
		return c.convertList(form, e)
	}
	return nil, errf(form, "cannot convert %T", form)
}

func (c *Converter) convertSymbol(s *sexp.Symbol, e *env) (tree.Node, error) {
	if s == sexp.Nil || s == sexp.T {
		return tree.NewLiteral(s), nil
	}
	if c.Constants != nil {
		if v, ok := c.Constants[s]; ok {
			return tree.NewLiteral(v), nil
		}
	}
	if !c.IsSpecial(s) {
		if v := e.lookup(s); v != nil {
			return tree.NewRef(v), nil
		}
	}
	// Free references denote the symbol's dynamic value cell.
	return tree.NewRef(c.globalVar(s)), nil
}

func (c *Converter) convertList(form sexp.Value, e *env) (tree.Node, error) {
	items, err := sexp.ListToSlice(form)
	if err != nil {
		return nil, errf(form, "dotted form")
	}
	if len(items) == 0 {
		return tree.NilLiteral(), nil
	}
	head, ok := items[0].(*sexp.Symbol)
	if !ok {
		// ((lambda ...) args) — direct call of a manifest function.
		fn, err := c.Convert(items[0], e)
		if err != nil {
			return nil, err
		}
		if _, ok := fn.(*tree.Lambda); !ok {
			return nil, errf(form, "illegal function position")
		}
		return c.finishCall(fn, items[1:], e)
	}
	args := items[1:]
	switch head.Name {
	case "quote":
		if len(args) != 1 {
			return nil, errf(form, "quote takes one argument")
		}
		return tree.NewLiteral(args[0]), nil
	case "function":
		if len(args) != 1 {
			return nil, errf(form, "function takes one argument")
		}
		if sym, ok := args[0].(*sexp.Symbol); ok {
			if v := e.lookup(sym); v != nil && !c.IsSpecial(sym) {
				// #'x where x is lexical: just the variable's value.
				return tree.NewRef(v), nil
			}
			return &tree.FunRef{Name: sym}, nil
		}
		return c.Convert(args[0], e) // #'(lambda ...)
	case "lambda":
		if len(args) < 1 {
			return nil, errf(form, "lambda needs a parameter list")
		}
		return c.convertLambdaParts("", args[0], args[1:], e)
	case "if":
		if len(args) < 2 || len(args) > 3 {
			return nil, errf(form, "if takes 2 or 3 arguments")
		}
		test, err := c.Convert(args[0], e)
		if err != nil {
			return nil, err
		}
		then, err := c.Convert(args[1], e)
		if err != nil {
			return nil, err
		}
		var els tree.Node = tree.NilLiteral()
		if len(args) == 3 {
			if els, err = c.Convert(args[2], e); err != nil {
				return nil, err
			}
		}
		return &tree.If{Test: test, Then: then, Else: els}, nil
	case "progn":
		return c.convertProgn(args, e)
	case "setq":
		return c.convertSetq(form, args, e)
	case "let":
		return c.convertLet(form, args, e, false)
	case "let*":
		return c.convertLet(form, args, e, true)
	case "cond":
		return c.convertCond(args, e)
	case "and":
		return c.convertAnd(args, e)
	case "or":
		return c.convertOr(args, e)
	case "when":
		if len(args) < 1 {
			return nil, errf(form, "when needs a test")
		}
		return c.listToIf(args[0], args[1:], nil, e)
	case "unless":
		if len(args) < 1 {
			return nil, errf(form, "unless needs a test")
		}
		return c.listToIf(args[0], nil, args[1:], e)
	case "prog":
		return c.convertProg(form, args, e)
	case "go":
		if len(args) != 1 {
			return nil, errf(form, "go takes one tag")
		}
		tag, ok := args[0].(*sexp.Symbol)
		if !ok {
			return nil, errf(form, "go tag must be a symbol")
		}
		target := e.findTag(tag)
		if target == nil {
			return nil, errf(form, "go to undefined tag %s", tag.Name)
		}
		return &tree.Go{Tag: tag, Target: target}, nil
	case "return":
		target := e.innermostBody()
		if target == nil {
			return nil, errf(form, "return outside prog")
		}
		var val tree.Node = tree.NilLiteral()
		if len(args) == 1 {
			var err error
			if val, err = c.Convert(args[0], e); err != nil {
				return nil, err
			}
		} else if len(args) > 1 {
			return nil, errf(form, "return takes at most one value")
		}
		return &tree.Return{Value: val, Target: target}, nil
	case "do", "do*":
		return c.convertDo(form, args, e, head.Name == "do*")
	case "dotimes":
		return c.convertDotimes(form, args, e)
	case "dolist":
		return c.convertDolist(form, args, e)
	case "case", "caseq":
		return c.convertCaseq(form, args, e)
	case "catch":
		if len(args) < 1 {
			return nil, errf(form, "catch needs a tag")
		}
		tag, err := c.Convert(args[0], e)
		if err != nil {
			return nil, err
		}
		body, err := c.convertProgn(args[1:], e)
		if err != nil {
			return nil, err
		}
		return &tree.Catcher{Tag: tag, Body: body}, nil
	case "funcall":
		if len(args) < 1 {
			return nil, errf(form, "funcall needs a function")
		}
		fn, err := c.Convert(args[0], e)
		if err != nil {
			return nil, err
		}
		return c.finishCall(fn, args[1:], e)
	case "declare":
		// Bare declare in expression position: ignored (handled by
		// binding constructs).
		return tree.NilLiteral(), nil
	case "quasiquote":
		if len(args) != 1 {
			return nil, errf(form, "quasiquote takes one argument")
		}
		expanded, err := expandQuasi(args[0], 1)
		if err != nil {
			return nil, err
		}
		return c.Convert(expanded, e)
	case "unquote", "unquote-splicing":
		return nil, errf(form, "comma outside backquote")
	case "psetq":
		return c.convertPsetq(form, args, e)
	case "incf", "decf":
		if len(args) < 1 || len(args) > 2 {
			return nil, errf(form, "%s takes 1 or 2 arguments", head.Name)
		}
		delta := sexp.Value(sexp.Fixnum(1))
		if len(args) == 2 {
			delta = args[1]
		}
		op := "+"
		if head.Name == "decf" {
			op = "-"
		}
		return c.Convert(sexp.List(sexp.Intern("setq"), args[0],
			sexp.List(sexp.Intern(op), args[0], delta)), e)
	case "push":
		if len(args) != 2 {
			return nil, errf(form, "push takes 2 arguments")
		}
		return c.Convert(sexp.List(sexp.Intern("setq"), args[1],
			sexp.List(sexp.Intern("cons"), args[0], args[1])), e)
	case "pop":
		if len(args) != 1 {
			return nil, errf(form, "pop takes 1 argument")
		}
		// (let ((tmp (car place))) (setq place (cdr place)) tmp)
		tmp := c.gensym("pop")
		return c.Convert(sexp.List(sexp.Intern("let"),
			sexp.List(sexp.List(tmp, sexp.List(sexp.Intern("car"), args[0]))),
			sexp.List(sexp.Intern("setq"), args[0], sexp.List(sexp.Intern("cdr"), args[0])),
			tmp), e)
	}
	// User macros.
	if c.UserMacro != nil {
		if exp, ok, err := c.UserMacro(head, form); err != nil {
			return nil, err
		} else if ok {
			return c.Convert(exp, e)
		}
	}
	// Ordinary call. A lexically bound head symbol is called as a
	// variable (the internal language is Scheme-like here, matching the
	// paper's ((lambda (f) (f)) …) forms).
	if v := e.lookup(head); v != nil && !c.IsSpecial(head) {
		return c.finishCall(tree.NewRef(v), args, e)
	}
	return c.finishCall(&tree.FunRef{Name: head}, args, e)
}

func (c *Converter) finishCall(fn tree.Node, args []sexp.Value, e *env) (tree.Node, error) {
	call := &tree.Call{Fn: fn}
	for _, a := range args {
		n, err := c.Convert(a, e)
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, n)
	}
	return call, nil
}

func (c *Converter) convertProgn(forms []sexp.Value, e *env) (tree.Node, error) {
	if len(forms) == 0 {
		return tree.NilLiteral(), nil
	}
	if len(forms) == 1 {
		return c.Convert(forms[0], e)
	}
	out := &tree.Progn{}
	for _, f := range forms {
		n, err := c.Convert(f, e)
		if err != nil {
			return nil, err
		}
		out.Forms = append(out.Forms, n)
	}
	return out, nil
}

func (c *Converter) convertSetq(form sexp.Value, args []sexp.Value, e *env) (tree.Node, error) {
	if len(args) == 0 || len(args)%2 != 0 {
		return nil, errf(form, "setq needs variable/value pairs")
	}
	var sets []tree.Node
	for i := 0; i < len(args); i += 2 {
		sym, ok := args[i].(*sexp.Symbol)
		if !ok {
			return nil, errf(form, "setq of non-symbol %s", sexp.Print(args[i]))
		}
		val, err := c.Convert(args[i+1], e)
		if err != nil {
			return nil, err
		}
		var v *tree.Var
		if !c.IsSpecial(sym) {
			v = e.lookup(sym)
		}
		if v == nil {
			v = c.globalVar(sym)
		}
		sets = append(sets, tree.NewSetq(v, val))
	}
	if len(sets) == 1 {
		return sets[0], nil
	}
	return &tree.Progn{Forms: sets}, nil
}

// listToIf builds (if test (progn then...) (progn else...)).
func (c *Converter) listToIf(test sexp.Value, then, els []sexp.Value, e *env) (tree.Node, error) {
	tn, err := c.Convert(test, e)
	if err != nil {
		return nil, err
	}
	thn, err := c.convertProgn(then, e)
	if err != nil {
		return nil, err
	}
	eln, err := c.convertProgn(els, e)
	if err != nil {
		return nil, err
	}
	return &tree.If{Test: tn, Then: thn, Else: eln}, nil
}

func (c *Converter) convertCond(clauses []sexp.Value, e *env) (tree.Node, error) {
	if len(clauses) == 0 {
		return tree.NilLiteral(), nil
	}
	cl, err := sexp.ListToSlice(clauses[0])
	if err != nil || len(cl) == 0 {
		return nil, errf(clauses[0], "bad cond clause")
	}
	// (t e...) final clause.
	if sym, ok := cl[0].(*sexp.Symbol); ok && sym == sexp.T {
		return c.convertProgn(cl[1:], e)
	}
	if len(cl) == 1 {
		// (cond (p) rest...) == (or p (cond rest...))
		rest := append([]sexp.Value{sexp.Intern("cond")}, clauses[1:]...)
		return c.convertOr([]sexp.Value{cl[0], sexp.List(rest...)}, e)
	}
	test, err := c.Convert(cl[0], e)
	if err != nil {
		return nil, err
	}
	then, err := c.convertProgn(cl[1:], e)
	if err != nil {
		return nil, err
	}
	els, err := c.convertCond(clauses[1:], e)
	if err != nil {
		return nil, err
	}
	return &tree.If{Test: test, Then: then, Else: els}, nil
}

func (c *Converter) convertAnd(args []sexp.Value, e *env) (tree.Node, error) {
	if len(args) == 0 {
		return tree.NewLiteral(sexp.T), nil
	}
	if len(args) == 1 {
		return c.Convert(args[0], e)
	}
	test, err := c.Convert(args[0], e)
	if err != nil {
		return nil, err
	}
	rest, err := c.convertAnd(args[1:], e)
	if err != nil {
		return nil, err
	}
	return &tree.If{Test: test, Then: rest, Else: tree.NilLiteral()}, nil
}

// convertOr uses the paper's exact encoding: (or b c) becomes
// ((lambda (v f) (if v v (f))) b (lambda () c)) "to avoid evaluating b
// twice". The thunk is later integrated away by the optimizer.
func (c *Converter) convertOr(args []sexp.Value, e *env) (tree.Node, error) {
	if len(args) == 0 {
		return tree.NilLiteral(), nil
	}
	if len(args) == 1 {
		return c.Convert(args[0], e)
	}
	first, err := c.Convert(args[0], e)
	if err != nil {
		return nil, err
	}
	v := tree.NewVar(c.gensym("v"))
	f := tree.NewVar(c.gensym("f"))
	lam := &tree.Lambda{Required: []*tree.Var{v, f}}
	v.Binder, f.Binder = lam, lam
	lam.Body = &tree.If{
		Test: tree.NewRef(v),
		Then: tree.NewRef(v),
		Else: &tree.Call{Fn: tree.NewRef(f)},
	}
	restBody, err := c.convertOr(args[1:], e)
	if err != nil {
		return nil, err
	}
	thunk := &tree.Lambda{Body: restBody}
	return &tree.Call{Fn: lam, Args: []tree.Node{first, thunk}}, nil
}

func (c *Converter) convertPsetq(form sexp.Value, args []sexp.Value, e *env) (tree.Node, error) {
	if len(args)%2 != 0 {
		return nil, errf(form, "psetq needs pairs")
	}
	// (psetq a x b y) == (let ((t1 x) (t2 y)) (setq a t1) (setq b t2))
	var binds, sets []sexp.Value
	for i := 0; i < len(args); i += 2 {
		tmp := c.gensym("ps")
		binds = append(binds, sexp.List(tmp, args[i+1]))
		sets = append(sets, sexp.List(sexp.Intern("setq"), args[i], tmp))
	}
	body := append([]sexp.Value{sexp.Intern("let"), sexp.List(binds...)}, sets...)
	body = append(body, sexp.Nil)
	return c.Convert(sexp.List(body...), e)
}
