package convert

import (
	"strings"
	"testing"

	"repro/internal/sexp"
	"repro/internal/tree"
)

func conv1(t *testing.T, src string) tree.Node {
	t.Helper()
	c := New()
	n, err := c.ConvertForm(mustRead(src))
	if err != nil {
		t.Fatalf("convert %q: %v", src, err)
	}
	if err := tree.Validate(n); err != nil {
		t.Fatalf("validate %q: %v", src, err)
	}
	return n
}

func show(t *testing.T, src string) string {
	t.Helper()
	return tree.Show(conv1(t, src))
}

func TestQuadraticBackTranslation(t *testing.T) {
	// The paper's §4.1 example: let becomes a call to a manifest
	// lambda-expression and cond becomes nested ifs.
	src := `
(lambda (a b c)
  (let ((d (- (* b b) (* 4.0 a c))))
    (cond ((< d 0) '())
          ((= d 0) (list (/ (- b) (* 2.0 a))))
          (t (let ((2a (* 2.0 a)) (sd (sqrt d)))
               (list (/ (+ (- b) sd) 2a)
                     (/ (- (- b) sd) 2a)))))))`
	want := "(lambda (a b c) " +
		"((lambda (d) " +
		"(if (< d 0) nil " +
		"(if (= d 0) (list (/ (- b) (* 2.0 a))) " +
		"((lambda (2a sd) (list (/ (+ (- b) sd) 2a) (/ (- (- b) sd) 2a))) " +
		"(* 2.0 a) (sqrt d))))) " +
		"(- (* b b) (* 4.0 a c))))"
	if got := show(t, src); got != want {
		t.Errorf("quadratic:\n got %s\nwant %s", got, want)
	}
}

func TestBasicForms(t *testing.T) {
	cases := []struct{ src, want string }{
		{"42", "42"},
		{"'foo", "'foo"},
		{"\"s\"", `"s"`},
		{"nil", "nil"},
		{"t", "t"},
		{"(progn)", "nil"},
		{"(progn 1)", "1"},
		{"(progn 1 2)", "(progn 1 2)"},
		{"(if p 1 2)", "(if p 1 2)"},
		{"(if p 1)", "(if p 1 nil)"},
		{"(when p 1 2)", "(if p (progn 1 2) nil)"},
		{"(unless p 1)", "(if p nil 1)"},
		{"(and)", "t"},
		{"(and a)", "a"},
		{"(and a b)", "(if a b nil)"},
		{"(let ((x 1)) x)", "((lambda (x) x) 1)"},
		{"(let ((x 1) (y 2)) (+ x y))", "((lambda (x y) (+ x y)) 1 2)"},
		{"(let* ((x 1) (y x)) y)", "((lambda (x) ((lambda (y) y) x)) 1)"},
		{"(let (x) x)", "((lambda (x) x) nil)"},
		{"(setq x 1)", "(setq x 1)"},
		{"(setq x 1 y 2)", "(progn (setq x 1) (setq y 2))"},
		{"(foo 1 2)", "(foo 1 2)"},
		{"(funcall f 1)", "(f 1)"},
		{"((lambda (x) x) 3)", "((lambda (x) x) 3)"},
		{"#'car", "#'car"},
		{"(catch 'done 1 2)", "(catch 'done (progn 1 2))"},
		{"(cond)", "nil"},
		{"(cond (t 1))", "1"},
		{"(cond (a 1) (t 2))", "(if a 1 2)"},
		{"(incf x)", "(setq x (+ x 1))"},
		{"(decf x 2)", "(setq x (- x 2))"},
		{"(push a s)", "(setq s (cons a s))"},
	}
	for _, c := range cases {
		if got := show(t, c.src); got != c.want {
			t.Errorf("%s:\n got %s\nwant %s", c.src, got, c.want)
		}
	}
}

func TestOrUsesPaperEncoding(t *testing.T) {
	// §5: (or b c) translates to ((lambda (v f) (if v v (f))) b
	// (lambda () c)).
	got := show(t, "(or b c)")
	if !strings.Contains(got, "(lambda (") || !strings.Contains(got, "(lambda nil c)") {
		t.Errorf("or encoding = %s", got)
	}
	// Shape check modulo gensym names.
	n := conv1(t, "(or b c)").(*tree.Call)
	lam := n.Fn.(*tree.Lambda)
	if len(lam.Required) != 2 {
		t.Fatalf("or lambda should bind v and f")
	}
	iff, ok := lam.Body.(*tree.If)
	if !ok {
		t.Fatalf("or lambda body should be if")
	}
	if iff.Test.(*tree.VarRef).Var != lam.Required[0] {
		t.Error("or test should reference v")
	}
	call, ok := iff.Else.(*tree.Call)
	if !ok || call.Fn.(*tree.VarRef).Var != lam.Required[1] {
		t.Error("or else should call f")
	}
	if _, ok := n.Args[1].(*tree.Lambda); !ok {
		t.Error("second or argument should be a thunk")
	}
}

func TestScopingResolvesToSameVar(t *testing.T) {
	n := conv1(t, "(lambda (x) (if x x nil))").(*tree.Lambda)
	x := n.Required[0]
	if len(x.Refs) != 2 {
		t.Fatalf("x should have 2 refs, got %d", len(x.Refs))
	}
	iff := n.Body.(*tree.If)
	if iff.Test.(*tree.VarRef).Var != x || iff.Then.(*tree.VarRef).Var != x {
		t.Error("references resolve to the binding")
	}
}

func TestShadowingCreatesDistinctVars(t *testing.T) {
	n := conv1(t, "(lambda (x) (let ((x 2)) x))").(*tree.Lambda)
	outer := n.Required[0]
	call := n.Body.(*tree.Call)
	inner := call.Fn.(*tree.Lambda).Required[0]
	if outer == inner {
		t.Fatal("shadowed variables must be distinct")
	}
	if len(outer.Refs) != 0 {
		t.Error("outer x is unreferenced")
	}
	if len(inner.Refs) != 1 {
		t.Error("inner x has the reference")
	}
}

func TestFreeVariablesAreSpecial(t *testing.T) {
	n := conv1(t, "(+ x 1)").(*tree.Call)
	v := n.Args[0].(*tree.VarRef).Var
	if !v.Special {
		t.Error("free variable should be a special/global reference")
	}
	// Same symbol twice: same shared Var.
	c := New()
	n1, _ := c.ConvertForm(mustRead("x"))
	n2, _ := c.ConvertForm(mustRead("x"))
	if n1.(*tree.VarRef).Var != n2.(*tree.VarRef).Var {
		t.Error("global references must share one Var record")
	}
}

func TestEarmuffsAreSpecial(t *testing.T) {
	n := conv1(t, "(lambda (*print-depth*) *print-depth*)").(*tree.Lambda)
	if !n.Required[0].Special {
		t.Error("*earmuffed* parameter should bind dynamically")
	}
	// Body ref goes to the shared dynamic var, not the parameter.
	ref := n.Body.(*tree.VarRef).Var
	if ref == n.Required[0] {
		t.Error("dynamic reference should not resolve lexically")
	}
	if !ref.Special {
		t.Error("dynamic reference should be special")
	}
}

func TestDeclareSpecial(t *testing.T) {
	n := conv1(t, "(lambda (x) (declare (special x)) x)").(*tree.Lambda)
	if !n.Required[0].Special {
		t.Error("(declare (special x)) should make the parameter dynamic")
	}
}

func TestProclaimSpecial(t *testing.T) {
	c := New()
	p, err := c.ConvertTopLevel([]sexp.Value{
		mustRead("(proclaim '(special depth))"),
		mustRead("(defun f (depth) depth)"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !p.Specials[sexp.Intern("depth")] {
		t.Error("proclaimed special not recorded")
	}
	lam := p.Defs[0].Lambda
	if !lam.Required[0].Special {
		t.Error("proclaimed special parameter should bind dynamically")
	}
}

func TestOptionalDefaultsSeeEarlierParams(t *testing.T) {
	// The paper's testfn lambda list: (a &optional (b 3.0) (c a)).
	n := conv1(t, "(lambda (a &optional (b 3.0) (c a)) c)").(*tree.Lambda)
	if len(n.Optional) != 2 {
		t.Fatalf("2 optionals, got %d", len(n.Optional))
	}
	def := n.Optional[1].Default.(*tree.VarRef)
	if def.Var != n.Required[0] {
		t.Error("default for c should reference parameter a")
	}
	if got := tree.Show(n); got != "(lambda (a &optional (b 3.0) (c a)) c)" {
		t.Errorf("round trip: %s", got)
	}
}

func TestRestParameter(t *testing.T) {
	n := conv1(t, "(lambda (a &rest r) r)").(*tree.Lambda)
	if n.Rest == nil || n.Rest.Name.Name != "r" {
		t.Fatal("rest parameter missing")
	}
	if n.MaxArgs() != -1 || n.MinArgs() != 1 {
		t.Error("arity wrong")
	}
}

func TestLambdaListErrors(t *testing.T) {
	bad := []string{
		"(lambda (&rest) 1)",
		"(lambda (&rest a b) 1)",
		"(lambda (a &optional b &optional c) 1)",
		"(lambda ((a)) 1)",
		"(lambda (a &rest b &optional c) 1)",
	}
	c := New()
	for _, src := range bad {
		if _, err := c.ConvertForm(mustRead(src)); err == nil {
			t.Errorf("%s should fail", src)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	bad := []string{
		"(if)", "(if a)", "(if a b c d)",
		"(quote)", "(quote a b)",
		"(setq x)", "(setq 3 x)",
		"(go nowhere)",
		"(return 1)", // outside prog
		"(let)", "(lambda)",
		"(function)",
	}
	c := New()
	for _, src := range bad {
		if _, err := c.ConvertForm(mustRead(src)); err == nil {
			t.Errorf("%s should fail to convert", src)
		}
	}
}

func TestProgGoReturn(t *testing.T) {
	n := conv1(t, `(prog (i)
	   loop
	     (if (> i 9) (return i) nil)
	     (setq i (+ i 1))
	     (go loop))`)
	call := n.(*tree.Call)
	lam := call.Fn.(*tree.Lambda)
	pb, ok := lam.Body.(*tree.ProgBody)
	if !ok {
		t.Fatalf("prog body should be progbody, got %T", lam.Body)
	}
	if pb.TagIndex(sexp.Intern("loop")) != 0 {
		t.Error("tag index")
	}
	// go and return resolved to this progbody.
	found := 0
	tree.Walk(pb, func(m tree.Node) bool {
		switch x := m.(type) {
		case *tree.Go:
			if x.Target == pb {
				found++
			}
		case *tree.Return:
			if x.Target == pb {
				found++
			}
		}
		return true
	})
	if found != 2 {
		t.Errorf("resolved jumps = %d, want 2", found)
	}
}

func TestForwardGo(t *testing.T) {
	conv1(t, "(prog () (go end) (setq x 1) end)")
}

func TestDoLoop(t *testing.T) {
	n := conv1(t, `(do ((i 0 (+ i 1)) (acc 1 (* acc 2)))
	                   ((>= i 5) acc))`)
	// Shape: a call of a lambda whose body is a progbody.
	call := n.(*tree.Call)
	lam := call.Fn.(*tree.Lambda)
	if _, ok := lam.Body.(*tree.ProgBody); !ok {
		t.Fatalf("do should produce progbody, got %T", lam.Body)
	}
	if len(lam.Required) != 2 && len(lam.Required) != 0 {
		t.Errorf("do binds loop vars; got %d", len(lam.Required))
	}
}

func TestDotimesDolist(t *testing.T) {
	conv1(t, "(dotimes (i 10) (setq s (+ s i)))")
	conv1(t, "(dotimes (i 10 s) (setq s (+ s i)))")
	conv1(t, "(dolist (x l) (setq s (+ s x)))")
	conv1(t, "(dolist (x l s))")
}

func TestCaseq(t *testing.T) {
	n := conv1(t, `(caseq k ((1 2) 'small) (5 'five) (t 'big))`)
	cq, ok := n.(*tree.Caseq)
	if !ok {
		t.Fatalf("got %T", n)
	}
	if len(cq.Clauses) != 2 {
		t.Fatalf("clauses = %d", len(cq.Clauses))
	}
	if len(cq.Clauses[0].Keys) != 2 || len(cq.Clauses[1].Keys) != 1 {
		t.Error("keys parsed wrong")
	}
	if cq.Default == nil {
		t.Error("default missing")
	}
	if _, err := New().ConvertForm(mustRead("(caseq k (t 1) (2 3))")); err == nil {
		t.Error("default clause must be last")
	}
}

func TestQuasiquote(t *testing.T) {
	cases := []struct{ src, want string }{
		{"`a", "'a"},
		{"`(a b)", "(cons 'a (cons 'b nil))"},
		{"`(a ,b)", "(cons 'a (cons b nil))"},
		{"`(a ,@b)", "(cons 'a (append b nil))"},
	}
	for _, c := range cases {
		if got := show(t, c.src); got != c.want {
			t.Errorf("%s => %s, want %s", c.src, got, c.want)
		}
	}
	if _, err := New().ConvertForm(mustRead(",x")); err == nil {
		t.Error("comma outside backquote should fail")
	}
}

func TestTopLevelProgram(t *testing.T) {
	c := New()
	p, err := c.ConvertTopLevel([]sexp.Value{
		mustRead("(defvar *depth* 0)"),
		mustRead("(defun f (x) (g x))"),
		mustRead("(defun g (x) (* x x))"),
		mustRead("(f 3)"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Defs) != 2 {
		t.Fatalf("defs = %d", len(p.Defs))
	}
	if p.DefNamed(sexp.Intern("f")) == nil || p.DefNamed(sexp.Intern("g")) == nil {
		t.Error("DefNamed")
	}
	if p.DefNamed(sexp.Intern("h")) != nil {
		t.Error("DefNamed of missing function")
	}
	if len(p.TopForms) != 2 { // defvar init + call
		t.Fatalf("top forms = %d", len(p.TopForms))
	}
	if !p.Specials[sexp.Intern("*depth*")] {
		t.Error("defvar should proclaim special")
	}
	if p.Defs[0].Lambda.Name != "f" {
		t.Error("lambda name")
	}
}

func TestDefunErrors(t *testing.T) {
	c := New()
	if _, err := c.ConvertTopLevel([]sexp.Value{mustRead("(defun)")}); err == nil {
		t.Error("(defun) should fail")
	}
	if _, err := c.ConvertTopLevel([]sexp.Value{mustRead("(defun 3 (x) x)")}); err == nil {
		t.Error("(defun 3 ...) should fail")
	}
}

func TestUserMacroHook(t *testing.T) {
	c := New()
	c.UserMacro = func(head *sexp.Symbol, form sexp.Value) (sexp.Value, bool, error) {
		if head.Name == "double" {
			items, _ := sexp.ListToSlice(form)
			return sexp.List(sexp.Intern("*"), sexp.Fixnum(2), items[1]), true, nil
		}
		return nil, false, nil
	}
	n, err := c.ConvertForm(mustRead("(double 21)"))
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Show(n); got != "(* 2 21)" {
		t.Errorf("macro expansion = %s", got)
	}
}

func TestPsetqIsParallel(t *testing.T) {
	got := show(t, "(psetq a b b a)")
	// Both sources evaluated before either assignment.
	if !strings.Contains(got, "lambda") {
		t.Errorf("psetq should bind temporaries: %s", got)
	}
}

func TestLexicalHeadCallsVariable(t *testing.T) {
	// ((lambda (f) (f 1)) #'g): inside, (f 1) calls the variable.
	n := conv1(t, "(let ((f #'g)) (f 1))").(*tree.Call)
	lam := n.Fn.(*tree.Lambda)
	inner := lam.Body.(*tree.Call)
	if _, ok := inner.Fn.(*tree.VarRef); !ok {
		t.Errorf("lexically bound head should call the variable, got %T", inner.Fn)
	}
}

// mustRead parses one form, panicking on error — a test-table
// convenience; the production reader paths all return errors.
func mustRead(src string) sexp.Value {
	v, err := sexp.ReadOne(src)
	if err != nil {
		panic(err)
	}
	return v
}
