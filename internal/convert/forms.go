package convert

import (
	"repro/internal/sexp"
	"repro/internal/tree"
)

// convertLambdaParts parses a lambda list plus body forms into a Lambda
// node. The parameter syntax supports &optional parameters with default
// computations that "may perform any computation, and may refer to other
// parameters occurring earlier in the same formal parameter set", and a
// &rest parameter.
func (c *Converter) convertLambdaParts(name string, lambdaList sexp.Value, body []sexp.Value, outer *env) (*tree.Lambda, error) {
	params, err := sexp.ListToSlice(lambdaList)
	if err != nil {
		return nil, errf(lambdaList, "bad lambda list")
	}
	lam := &tree.Lambda{Name: name}
	e := outer.child()

	// Leading (declare (special ...)) forms affect which parameters bind
	// dynamically.
	declaredSpecial := map[*sexp.Symbol]bool{}
	body = c.stripDeclares(body, declaredSpecial)

	bindParam := func(sym *sexp.Symbol) *tree.Var {
		v := tree.NewVar(sym)
		v.Binder = lam
		if c.IsSpecial(sym) || declaredSpecial[sym] {
			v.Special = true
			// Dynamic parameters do not enter the lexical environment:
			// body references go through the shared dynamic Var.
		} else {
			e.vars[sym] = v
		}
		return v
	}

	mode := 0 // 0=required 1=optional 2=rest 3=after rest
	for _, p := range params {
		if sym, ok := p.(*sexp.Symbol); ok {
			switch sym.Name {
			case "&optional":
				if mode != 0 {
					return nil, errf(lambdaList, "&optional out of order")
				}
				mode = 1
				continue
			case "&rest":
				if mode >= 2 {
					return nil, errf(lambdaList, "&rest out of order")
				}
				mode = 2
				continue
			}
		}
		switch mode {
		case 0:
			sym, ok := p.(*sexp.Symbol)
			if !ok {
				return nil, errf(p, "required parameter must be a symbol")
			}
			lam.Required = append(lam.Required, bindParam(sym))
		case 1:
			var sym *sexp.Symbol
			var defForm sexp.Value = sexp.Nil
			switch pp := p.(type) {
			case *sexp.Symbol:
				sym = pp
			case *sexp.Cons:
				parts, err := sexp.ListToSlice(pp)
				if err != nil || len(parts) < 1 || len(parts) > 2 {
					return nil, errf(p, "bad optional parameter")
				}
				var ok bool
				if sym, ok = parts[0].(*sexp.Symbol); !ok {
					return nil, errf(p, "optional parameter name must be a symbol")
				}
				if len(parts) == 2 {
					defForm = parts[1]
				}
			default:
				return nil, errf(p, "bad optional parameter")
			}
			// Defaults see earlier parameters: convert before binding.
			def, err := c.Convert(defForm, e)
			if err != nil {
				return nil, err
			}
			lam.Optional = append(lam.Optional, tree.OptParam{Var: bindParam(sym), Default: def})
		case 2:
			sym, ok := p.(*sexp.Symbol)
			if !ok {
				return nil, errf(p, "&rest parameter must be a symbol")
			}
			lam.Rest = bindParam(sym)
			mode = 3
		default:
			return nil, errf(lambdaList, "parameters after &rest")
		}
	}
	if mode == 2 {
		return nil, errf(lambdaList, "&rest requires a parameter name")
	}
	b, err := c.convertProgn(body, e)
	if err != nil {
		return nil, err
	}
	lam.Body = b
	return lam, nil
}

// stripDeclares removes leading (declare ...) forms, recording special
// declarations.
func (c *Converter) stripDeclares(body []sexp.Value, specials map[*sexp.Symbol]bool) []sexp.Value {
	i := 0
	for ; i < len(body); i++ {
		items, err := sexp.ListToSlice(body[i])
		if err != nil || len(items) == 0 {
			break
		}
		head, ok := items[0].(*sexp.Symbol)
		if !ok || head.Name != "declare" {
			break
		}
		for _, d := range items[1:] {
			decl, err := sexp.ListToSlice(d)
			if err != nil || len(decl) == 0 {
				continue
			}
			if ds, ok := decl[0].(*sexp.Symbol); ok && ds.Name == "special" {
				for _, s := range decl[1:] {
					if sym, ok := s.(*sexp.Symbol); ok {
						specials[sym] = true
					}
				}
			}
			// Type and other declarations are "treated as advice"; the
			// current compiler ignores them here.
		}
	}
	return body[i:]
}

// convertLet converts let/let* to a call of a manifest lambda-expression
// (let* by nesting).
func (c *Converter) convertLet(form sexp.Value, args []sexp.Value, e *env, sequential bool) (tree.Node, error) {
	if len(args) < 1 {
		return nil, errf(form, "let needs a binding list")
	}
	binds, err := sexp.ListToSlice(args[0])
	if err != nil {
		return nil, errf(form, "bad let binding list")
	}
	body := args[1:]
	if sequential && len(binds) > 1 {
		// (let* (b1 b2...) body) == (let (b1) (let* (b2...) body))
		inner := append([]sexp.Value{sexp.Intern("let*"), sexp.List(binds[1:]...)}, body...)
		return c.convertLet(form, []sexp.Value{sexp.List(binds[0]), sexp.List(inner...)}, e, false)
	}
	var names []sexp.Value
	var initForms []sexp.Value
	for _, b := range binds {
		switch bb := b.(type) {
		case *sexp.Symbol:
			names = append(names, bb)
			initForms = append(initForms, sexp.Nil)
		case *sexp.Cons:
			parts, err := sexp.ListToSlice(bb)
			if err != nil || len(parts) < 1 || len(parts) > 2 {
				return nil, errf(b, "bad let binding")
			}
			names = append(names, parts[0])
			if len(parts) == 2 {
				initForms = append(initForms, parts[1])
			} else {
				initForms = append(initForms, sexp.Nil)
			}
		default:
			return nil, errf(b, "bad let binding")
		}
	}
	// Initializers are evaluated in the outer environment.
	call := &tree.Call{}
	for _, init := range initForms {
		n, err := c.Convert(init, e)
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, n)
	}
	lamList := sexp.List(names...)
	lam, err := c.convertLambdaParts("", lamList, body, e)
	if err != nil {
		return nil, err
	}
	call.Fn = lam
	return call, nil
}

// convertProg converts (prog (bindings) tag-or-statement...): "the usual
// LISP prog construct translates into a let … containing a progbody".
func (c *Converter) convertProg(form sexp.Value, args []sexp.Value, e *env) (tree.Node, error) {
	if len(args) < 1 {
		return nil, errf(form, "prog needs a binding list")
	}
	binds, err := sexp.ListToSlice(args[0])
	if err != nil {
		return nil, errf(form, "bad prog binding list")
	}
	stmts := args[1:]

	// Build the surrounding let by hand so the progbody's env nests
	// inside the lambda's parameter scope.
	var names []sexp.Value
	var initForms []sexp.Value
	for _, b := range binds {
		switch bb := b.(type) {
		case *sexp.Symbol:
			names = append(names, bb)
			initForms = append(initForms, sexp.Nil)
		case *sexp.Cons:
			parts, err := sexp.ListToSlice(bb)
			if err != nil || len(parts) < 1 || len(parts) > 2 {
				return nil, errf(b, "bad prog binding")
			}
			names = append(names, parts[0])
			if len(parts) == 2 {
				initForms = append(initForms, parts[1])
			} else {
				initForms = append(initForms, sexp.Nil)
			}
		default:
			return nil, errf(b, "bad prog binding")
		}
	}
	lam := &tree.Lambda{}
	inner := e.child()
	for _, nm := range names {
		sym, ok := nm.(*sexp.Symbol)
		if !ok {
			return nil, errf(nm, "prog variable must be a symbol")
		}
		v := tree.NewVar(sym)
		v.Binder = lam
		if c.IsSpecial(sym) {
			v.Special = true
		} else {
			inner.vars[sym] = v
		}
		lam.Required = append(lam.Required, v)
	}

	pb := &tree.ProgBody{}
	// Pre-scan tags so forward gos resolve.
	formIdx := 0
	for _, s := range stmts {
		if sym, ok := s.(*sexp.Symbol); ok {
			pb.Tags = append(pb.Tags, tree.ProgTag{Name: sym, Index: formIdx})
			continue
		}
		formIdx++
	}
	scope := inner.child()
	scope.body = &ProgBodyScope{PB: pb}
	for _, s := range stmts {
		if _, ok := s.(*sexp.Symbol); ok {
			continue
		}
		n, err := c.Convert(s, scope)
		if err != nil {
			return nil, err
		}
		pb.Forms = append(pb.Forms, n)
	}
	lam.Body = pb

	call := &tree.Call{Fn: lam}
	for _, init := range initForms {
		n, err := c.Convert(init, e)
		if err != nil {
			return nil, err
		}
		call.Args = append(call.Args, n)
	}
	return call, nil
}

// convertDo desugars do/do* into prog (or let* + prog for do*).
func (c *Converter) convertDo(form sexp.Value, args []sexp.Value, e *env, sequential bool) (tree.Node, error) {
	if len(args) < 2 {
		return nil, errf(form, "do needs bindings and an end clause")
	}
	binds, err := sexp.ListToSlice(args[0])
	if err != nil {
		return nil, errf(form, "bad do binding list")
	}
	endClause, err := sexp.ListToSlice(args[1])
	if err != nil || len(endClause) < 1 {
		return nil, errf(form, "bad do end clause")
	}
	body := args[2:]

	var letBinds, steps []sexp.Value
	for _, b := range binds {
		switch bb := b.(type) {
		case *sexp.Symbol:
			letBinds = append(letBinds, bb)
		case *sexp.Cons:
			parts, err := sexp.ListToSlice(bb)
			if err != nil || len(parts) < 1 || len(parts) > 3 {
				return nil, errf(b, "bad do binding")
			}
			if len(parts) >= 2 {
				letBinds = append(letBinds, sexp.List(parts[0], parts[1]))
			} else {
				letBinds = append(letBinds, parts[0])
			}
			if len(parts) == 3 {
				steps = append(steps, parts[0], parts[2])
			}
		default:
			return nil, errf(b, "bad do binding")
		}
	}
	loop := c.gensym("do-loop")
	resultForms := append([]sexp.Value{sexp.Intern("progn")}, endClause[1:]...)
	var stepForm sexp.Value
	if len(steps) > 0 {
		op := "psetq"
		if sequential {
			op = "setq"
		}
		stepForm = sexp.List(append([]sexp.Value{sexp.Intern(op)}, steps...)...)
	}
	progForms := []sexp.Value{loop,
		sexp.List(sexp.Intern("when"), endClause[0],
			sexp.List(sexp.Intern("return"), sexp.List(resultForms...)))}
	progForms = append(progForms, body...)
	if stepForm != nil {
		progForms = append(progForms, stepForm)
	}
	progForms = append(progForms, sexp.List(sexp.Intern("go"), loop))

	if sequential {
		prog := append([]sexp.Value{sexp.Intern("prog"), sexp.Nil}, progForms...)
		out := append([]sexp.Value{sexp.Intern("let*"), sexp.List(letBinds...)},
			sexp.List(prog...))
		return c.Convert(sexp.List(out...), e)
	}
	prog := append([]sexp.Value{sexp.Intern("prog"), sexp.List(letBinds...)}, progForms...)
	return c.Convert(sexp.List(prog...), e)
}

func (c *Converter) convertDotimes(form sexp.Value, args []sexp.Value, e *env) (tree.Node, error) {
	if len(args) < 1 {
		return nil, errf(form, "dotimes needs (var count)")
	}
	spec, err := sexp.ListToSlice(args[0])
	if err != nil || len(spec) < 2 || len(spec) > 3 {
		return nil, errf(form, "bad dotimes spec")
	}
	result := sexp.Value(sexp.Nil)
	if len(spec) == 3 {
		result = spec[2]
	}
	lim := c.gensym("lim")
	do := []sexp.Value{sexp.Intern("do"),
		sexp.List(
			sexp.List(lim, spec[1]),
			sexp.List(spec[0], sexp.Fixnum(0), sexp.List(sexp.Intern("+"), spec[0], sexp.Fixnum(1)))),
		sexp.List(sexp.List(sexp.Intern(">="), spec[0], lim), result)}
	do = append(do, args[1:]...)
	return c.Convert(sexp.List(do...), e)
}

func (c *Converter) convertDolist(form sexp.Value, args []sexp.Value, e *env) (tree.Node, error) {
	if len(args) < 1 {
		return nil, errf(form, "dolist needs (var list)")
	}
	spec, err := sexp.ListToSlice(args[0])
	if err != nil || len(spec) < 2 || len(spec) > 3 {
		return nil, errf(form, "bad dolist spec")
	}
	result := sexp.Value(sexp.Nil)
	if len(spec) == 3 {
		result = spec[2]
	}
	tail := c.gensym("tail")
	bodyLet := append([]sexp.Value{sexp.Intern("let"),
		sexp.List(sexp.List(spec[0], sexp.List(sexp.Intern("car"), tail)))}, args[1:]...)
	do := []sexp.Value{sexp.Intern("do"),
		sexp.List(sexp.List(tail, spec[1], sexp.List(sexp.Intern("cdr"), tail))),
		sexp.List(sexp.List(sexp.Intern("null"), tail), result),
		sexp.List(bodyLet...)}
	return c.Convert(sexp.List(do...), e)
}

func (c *Converter) convertCaseq(form sexp.Value, args []sexp.Value, e *env) (tree.Node, error) {
	if len(args) < 1 {
		return nil, errf(form, "caseq needs a key form")
	}
	key, err := c.Convert(args[0], e)
	if err != nil {
		return nil, err
	}
	out := &tree.Caseq{Key: key}
	for i, cl := range args[1:] {
		parts, err := sexp.ListToSlice(cl)
		if err != nil || len(parts) < 1 {
			return nil, errf(cl, "bad caseq clause")
		}
		body, err := c.convertProgn(parts[1:], e)
		if err != nil {
			return nil, err
		}
		if sym, ok := parts[0].(*sexp.Symbol); ok && (sym == sexp.T || sym.Name == "otherwise") {
			if i != len(args[1:])-1 {
				return nil, errf(cl, "default caseq clause must be last")
			}
			out.Default = body
			continue
		}
		var keys []sexp.Value
		if lst, ok := parts[0].(*sexp.Cons); ok {
			if keys, err = sexp.ListToSlice(lst); err != nil {
				return nil, errf(cl, "bad caseq key list")
			}
		} else if parts[0] == sexp.Value(sexp.Nil) {
			keys = nil
		} else {
			keys = []sexp.Value{parts[0]}
		}
		out.Clauses = append(out.Clauses, tree.CaseClause{Keys: keys, Body: body})
	}
	return out, nil
}

// expandQuasi expands a quasiquoted template at the given nesting depth
// into cons/append calls.
func expandQuasi(form sexp.Value, depth int) (sexp.Value, error) {
	cons, ok := form.(*sexp.Cons)
	if !ok {
		return sexp.List(sexp.SymQuote, form), nil
	}
	if head, ok := cons.Car.(*sexp.Symbol); ok {
		items, err := sexp.ListToSlice(form)
		if err == nil && len(items) == 2 {
			switch head.Name {
			case "unquote":
				if depth == 1 {
					return items[1], nil
				}
				inner, err := expandQuasi(items[1], depth-1)
				if err != nil {
					return nil, err
				}
				return sexp.List(sexp.Intern("list"),
					sexp.List(sexp.SymQuote, sexp.Intern("unquote")), inner), nil
			case "quasiquote":
				inner, err := expandQuasi(items[1], depth+1)
				if err != nil {
					return nil, err
				}
				return sexp.List(sexp.Intern("list"),
					sexp.List(sexp.SymQuote, sexp.Intern("quasiquote")), inner), nil
			}
		}
	}
	// (a . rest): handle possible splicing of a.
	if ac, ok := cons.Car.(*sexp.Cons); ok {
		if h, ok := ac.Car.(*sexp.Symbol); ok && h.Name == "unquote-splicing" && depth == 1 {
			items, err := sexp.ListToSlice(ac)
			if err != nil || len(items) != 2 {
				return nil, errf(ac, "bad ,@ form")
			}
			rest, err := expandQuasi(cons.Cdr, depth)
			if err != nil {
				return nil, err
			}
			return sexp.List(sexp.Intern("append"), items[1], rest), nil
		}
	}
	carExp, err := expandQuasi(cons.Car, depth)
	if err != nil {
		return nil, err
	}
	cdrExp, err := expandQuasi(cons.Cdr, depth)
	if err != nil {
		return nil, err
	}
	return sexp.List(sexp.Intern("cons"), carExp, cdrExp), nil
}
