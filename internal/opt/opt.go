// Package opt is the source-level optimizer of §5: a fixpoint engine over
// tree-to-tree transformations, every one of which preserves
// back-translatability into source. The three beta-conversion rules, the
// nested-if transformation (from which boolean short-circuiting "falls
// out"), compile-time expression evaluation, dead-code elimination,
// associative/commutative canonicalization and the machine-inspired
// sin$f→sinc$f rewrite are all here.
//
// Each applied transformation is logged in the paper's transcript style:
//
//	;**** Optimizing this form: (+$f a b c)
//	;**** to be this form: (+$f (+$f c b) a)
//	;**** courtesy of META-EVALUATE-ASSOC-COMMUT-CALL
package opt

import (
	"fmt"
	"io"

	"repro/internal/analysis"
	"repro/internal/interp"
	"repro/internal/tree"
)

// Options control the optimizer.
type Options struct {
	// Log, if non-nil, receives the transformation transcript.
	Log io.Writer
	// MaxPasses bounds the fixpoint iteration.
	MaxPasses int
	// SubstituteComplexity is the size threshold below which a pure
	// expression may be substituted for a variable with several
	// references ("this is primarily to aid the optimizer in deciding
	// whether to substitute copies of the initializing expression for
	// several occurrences of a variable").
	SubstituteComplexity int
	// Disabled rules by name (for ablation benchmarks).
	Disabled map[string]bool
}

// DefaultOptions returns the standard settings.
func DefaultOptions() Options {
	return Options{MaxPasses: 60, SubstituteComplexity: 6}
}

// Optimizer rewrites trees to a fixpoint.
type Optimizer struct {
	opts Options
	in   *interp.Interp
	// Applied counts transformations by rule name.
	Applied map[string]int
	changed bool
}

// New returns an optimizer; in supplies the apply engine for compile-time
// expression evaluation (nil for a fresh interpreter).
func New(opts Options, in *interp.Interp) *Optimizer {
	if in == nil {
		in = interp.New()
	}
	if opts.MaxPasses <= 0 {
		opts.MaxPasses = 60
	}
	if opts.SubstituteComplexity <= 0 {
		opts.SubstituteComplexity = 6
	}
	return &Optimizer{opts: opts, in: in, Applied: map[string]int{}}
}

// Optimize rewrites root until no transformation applies (or MaxPasses).
// It returns the new root (the root node itself may be rewritten).
func (o *Optimizer) Optimize(root tree.Node) tree.Node {
	for pass := 0; pass < o.opts.MaxPasses; pass++ {
		analysis.Analyze(root)
		o.changed = false
		root = o.rewrite(root)
		if !o.changed {
			break
		}
	}
	analysis.Analyze(root)
	return root
}

func (o *Optimizer) enabled(rule string) bool { return !o.opts.Disabled[rule] }

// logRule emits a transcript entry for a transformation that replaced the
// form printed as before with newN.
func (o *Optimizer) logRule(rule, before string, newN tree.Node) {
	o.Applied[rule]++
	o.changed = true
	if o.opts.Log == nil {
		return
	}
	fmt.Fprintf(o.opts.Log, ";**** Optimizing this form: %s\n", before)
	fmt.Fprintf(o.opts.Log, ";**** to be this form: %s\n", tree.Show(newN))
	fmt.Fprintf(o.opts.Log, ";**** courtesy of %s\n", rule)
}

// rewrite rewrites children bottom-up, then applies node-local rules until
// none fires.
func (o *Optimizer) rewrite(n tree.Node) tree.Node {
	// Rewrite children in place.
	switch x := n.(type) {
	case *tree.Setq:
		x.Value = o.rewrite(x.Value)
	case *tree.If:
		x.Test = o.rewrite(x.Test)
		x.Then = o.rewrite(x.Then)
		x.Else = o.rewrite(x.Else)
	case *tree.Progn:
		for i := range x.Forms {
			x.Forms[i] = o.rewrite(x.Forms[i])
		}
	case *tree.Call:
		x.Fn = o.rewrite(x.Fn)
		for i := range x.Args {
			x.Args[i] = o.rewrite(x.Args[i])
		}
	case *tree.Lambda:
		for i := range x.Optional {
			x.Optional[i].Default = o.rewrite(x.Optional[i].Default)
		}
		x.Body = o.rewrite(x.Body)
	case *tree.ProgBody:
		for i := range x.Forms {
			x.Forms[i] = o.rewrite(x.Forms[i])
		}
	case *tree.Return:
		x.Value = o.rewrite(x.Value)
	case *tree.Catcher:
		x.Tag = o.rewrite(x.Tag)
		x.Body = o.rewrite(x.Body)
	case *tree.Caseq:
		x.Key = o.rewrite(x.Key)
		for i := range x.Clauses {
			x.Clauses[i].Body = o.rewrite(x.Clauses[i].Body)
		}
		if x.Default != nil {
			x.Default = o.rewrite(x.Default)
		}
	}
	// Apply local rules to a fixpoint at this node.
	for i := 0; i < 50; i++ {
		nn, fired := o.applyRules(n)
		if !fired {
			break
		}
		n = nn
	}
	return n
}

// applyRules tries each rule once; returns the (possibly new) node and
// whether any rule fired.
func (o *Optimizer) applyRules(n tree.Node) (tree.Node, bool) {
	type rule struct {
		name string
		fn   func(tree.Node) (tree.Node, bool)
	}
	var rules []rule
	switch n.Kind() {
	case tree.KindCall:
		rules = []rule{
			{"META-CALL-LAMBDA", o.ruleCallLambda},
			{"META-SUBSTITUTE", o.ruleSubstitute},
			{"META-DROP-UNUSED-ARGUMENT", o.ruleDropUnused},
			{"META-EVALUATE-ASSOC-COMMUT-CALL", o.ruleAssocCommut},
			{"CONSIDER-REVERSING-ARGUMENTS", o.ruleReverseArgs},
			{"META-IDENTITY-OPERAND", o.ruleIdentity},
			{"META-EVALUATE-CONSTANT-CALL", o.ruleConstantFold},
			{"META-SIN-TO-SINC", o.ruleSinToSinc},
			{"META-HOIST-PROGN-ARGUMENT", o.ruleHoistProgn},
		}
	case tree.KindIf:
		rules = []rule{
			{"META-IF-PROGN", o.ruleIfProgn},
			{"META-IF-CONSTANT-PREDICATE", o.ruleIfConstant},
			{"META-IF-KNOWN-TEST", o.ruleIfKnownTest},
			{"META-IF-NOT", o.ruleIfNot},
			{"META-IF-IF", o.ruleIfIf},
		}
	case tree.KindProgn:
		rules = []rule{
			{"META-PROGN-FLATTEN", o.rulePrognFlatten},
		}
	case tree.KindCaseq:
		rules = []rule{
			{"META-CASEQ-CONSTANT-KEY", o.ruleCaseqConstant},
		}
	}
	before := ""
	if o.opts.Log != nil {
		before = tree.Show(n)
	}
	for _, r := range rules {
		if !o.enabled(r.name) {
			continue
		}
		if nn, fired := r.fn(n); fired {
			o.logRule(r.name, before, nn)
			return nn, true
		}
	}
	return n, false
}
