// Package opt is the source-level optimizer of §5: a fixpoint engine over
// tree-to-tree transformations, every one of which preserves
// back-translatability into source. The three beta-conversion rules, the
// nested-if transformation (from which boolean short-circuiting "falls
// out"), compile-time expression evaluation, dead-code elimination,
// associative/commutative canonicalization and the machine-inspired
// sin$f→sinc$f rewrite are all here.
//
// Each applied transformation is logged in the paper's transcript style:
//
//	;**** Optimizing this form: (+$f a b c)
//	;**** to be this form: (+$f (+$f c b) a)
//	;**** courtesy of META-EVALUATE-ASSOC-COMMUT-CALL
package opt

import (
	"fmt"
	"io"
	"time"

	"repro/internal/analysis"
	"repro/internal/interp"
	"repro/internal/tree"
)

// Options control the optimizer.
type Options struct {
	// Log, if non-nil, receives the transformation transcript.
	Log io.Writer
	// OnRule, if non-nil, receives every applied transformation as a
	// structured event: the rule name and the back-translated source
	// before and after. This is the §5 transcript in queryable form; the
	// obs layer aggregates it into rule-provenance reports.
	OnRule func(rule, before, after string)
	// MaxPasses bounds the fixpoint iteration.
	MaxPasses int
	// SubstituteComplexity is the size threshold below which a pure
	// expression may be substituted for a variable with several
	// references ("this is primarily to aid the optimizer in deciding
	// whether to substitute copies of the initializing expression for
	// several occurrences of a variable").
	SubstituteComplexity int
	// Disabled rules by name (for ablation benchmarks).
	Disabled map[string]bool
	// Watchdog, when >0, bounds the wall-clock time of one Optimize
	// call: past the deadline the fixpoint stops rewriting and TimedOut
	// reports true, so a non-terminating (or merely pathological) rule
	// interaction degrades into a per-unit diagnostic instead of a hung
	// compiler. 0 disables the watchdog. Note that a tripped watchdog
	// makes the output timing-dependent, so callers treat it as a unit
	// failure, never as "partially optimized but fine".
	Watchdog time.Duration
}

// DefaultOptions returns the standard settings.
func DefaultOptions() Options {
	return Options{MaxPasses: 60, SubstituteComplexity: 6}
}

// Optimizer rewrites trees to a fixpoint.
type Optimizer struct {
	opts Options
	in   *interp.Interp
	// Applied counts transformations by rule name.
	Applied map[string]int
	changed bool
	// gen numbers the variables this optimizer introduces (the f and g of
	// the nested-if transformation). A per-instance counter keeps the
	// generated names — which flow into jump-block labels and listing
	// comments — independent of how many other functions were optimized
	// before this one, or on which worker.
	gen int

	// Dirty-subtree state for the incremental fixpoint. After the full
	// first pass, a pass only revisits regions the previous pass changed:
	// deep marks roots of subtrees needing a full re-walk, visit marks
	// their ancestor paths (where only node-local rules are re-tried),
	// and fired collects this pass's rewritten nodes for the next round.
	visitAll bool
	deep     map[tree.Node]bool
	visit    map[tree.Node]bool
	fired    []tree.Node

	// Watchdog state: deadline is the wall-clock cutoff (zero = none),
	// timedOut latches once it passes, and wdCtr amortizes the
	// time.Now() cost to one call per 1024 rewrite visits.
	deadline time.Time
	timedOut bool
	wdCtr    int
}

// New returns an optimizer; in supplies the apply engine for compile-time
// expression evaluation (nil for a fresh interpreter).
func New(opts Options, in *interp.Interp) *Optimizer {
	if in == nil {
		in = interp.New()
	}
	if opts.MaxPasses <= 0 {
		opts.MaxPasses = 60
	}
	if opts.SubstituteComplexity <= 0 {
		opts.SubstituteComplexity = 6
	}
	return &Optimizer{opts: opts, in: in, Applied: map[string]int{}}
}

// Optimize rewrites root until no transformation applies (or MaxPasses).
// It returns the new root (the root node itself may be rewritten).
//
// Only the first pass walks the whole tree; each later pass revisits just
// the subtrees the previous pass changed, plus the binding lambdas of any
// variable whose global reference or assignment count changed (the
// substitution and dead-variable rules read those counts non-locally).
// Untouched subtrees can fire no rule they did not fire last pass, so the
// result is identical to rescanning everything.
func (o *Optimizer) Optimize(root tree.Node) tree.Node {
	o.timedOut = false
	o.deadline = time.Time{}
	if o.opts.Watchdog > 0 {
		o.deadline = time.Now().Add(o.opts.Watchdog)
	}
	census := map[*tree.Var][2]int{}
	for pass := 0; pass < o.opts.MaxPasses; pass++ {
		if o.expired() {
			break
		}
		if pass == 0 {
			analysis.Analyze(root)
			o.visitAll = true
			varCensus(root, census)
		} else {
			// Parent links are rebuilt in full (cheap, no set unions);
			// Info is refreshed only where the pass will look. Tail flags
			// are not maintained — no rule consults them — and the final
			// full Analyze below restores them.
			tree.ComputeParents(root)
			o.visitAll = false
			o.deep = make(map[tree.Node]bool, len(o.fired))
			o.visit = make(map[tree.Node]bool, 4*len(o.fired))
			for _, n := range o.fired {
				o.markDirty(n)
			}
			o.markCensusChanges(root, census)
			o.analyzeDirty(root)
		}
		o.changed = false
		o.fired = o.fired[:0]
		root = o.rewrite(root, o.visitAll)
		if !o.changed {
			break
		}
	}
	o.visitAll, o.deep, o.visit, o.fired = false, nil, nil, nil
	analysis.Analyze(root)
	return root
}

// TimedOut reports whether the last Optimize call hit the watchdog
// deadline before reaching a fixpoint.
func (o *Optimizer) TimedOut() bool { return o.timedOut }

// expired latches (and reports) watchdog expiry.
func (o *Optimizer) expired() bool {
	if o.timedOut {
		return true
	}
	if o.deadline.IsZero() {
		return false
	}
	if !time.Now().Before(o.deadline) {
		o.timedOut = true
	}
	return o.timedOut
}

// markDirty marks n for a full revisit and its ancestors for node-local
// rule re-application. Ancestor chains share suffixes, so the climb stops
// at the first already-marked node.
func (o *Optimizer) markDirty(n tree.Node) {
	o.deep[n] = true
	for m := n; m != nil; m = m.Info().Parent {
		if o.visit[m] {
			return
		}
		o.visit[m] = true
	}
}

// varCensus snapshots the reference/assignment counts of every variable
// bound in the tree into m.
func varCensus(root tree.Node, m map[*tree.Var][2]int) {
	tree.Walk(root, func(n tree.Node) bool {
		if l, ok := n.(*tree.Lambda); ok {
			for _, v := range l.Params() {
				m[v] = [2]int{len(v.Refs), len(v.Sets)}
			}
		}
		return true
	})
}

// markCensusChanges compares per-variable usage counts against the
// previous pass. Rules like META-SUBSTITUTE and META-DROP-UNUSED-ARGUMENT
// read a variable's global usage, so a count change anywhere re-opens the
// binding lambda's whole subtree even if that subtree itself is unchanged.
func (o *Optimizer) markCensusChanges(root tree.Node, census map[*tree.Var][2]int) {
	tree.Walk(root, func(n tree.Node) bool {
		l, ok := n.(*tree.Lambda)
		if !ok {
			return true
		}
		for _, v := range l.Params() {
			now := [2]int{len(v.Refs), len(v.Sets)}
			if old, seen := census[v]; seen && old == now {
				continue
			}
			census[v] = now
			o.markDirty(l)
		}
		return true
	})
}

// analyzeDirty refreshes Info for the regions the coming pass will
// examine: deep subtrees are fully re-analyzed; path nodes recompute
// their own Info from their children's cached results.
func (o *Optimizer) analyzeDirty(n tree.Node) {
	if o.deep[n] {
		analysis.Recompute(n)
		return
	}
	if !o.visit[n] {
		return
	}
	for _, c := range tree.Children(n) {
		o.analyzeDirty(c)
	}
	analysis.RecomputeShallow(n)
}

func (o *Optimizer) enabled(rule string) bool { return !o.opts.Disabled[rule] }

// logRule emits a transcript entry for a transformation that replaced the
// form printed as before with newN.
func (o *Optimizer) logRule(rule, before string, newN tree.Node) {
	o.Applied[rule]++
	o.changed = true
	if o.opts.Log == nil && o.opts.OnRule == nil {
		return
	}
	after := tree.Show(newN)
	if o.opts.Log != nil {
		fmt.Fprintf(o.opts.Log, ";**** Optimizing this form: %s\n", before)
		fmt.Fprintf(o.opts.Log, ";**** to be this form: %s\n", after)
		fmt.Fprintf(o.opts.Log, ";**** courtesy of %s\n", rule)
	}
	if o.opts.OnRule != nil {
		o.opts.OnRule(rule, before, after)
	}
}

// rewrite rewrites children bottom-up, then applies node-local rules until
// none fires. When force is false (an incremental pass), subtrees outside
// the dirty set are skipped: a deep-marked node forces a full walk below
// it, a visit-marked node descends selectively, and a clean node returns
// unchanged.
func (o *Optimizer) rewrite(n tree.Node, force bool) tree.Node {
	if !o.deadline.IsZero() {
		if o.wdCtr++; o.timedOut || (o.wdCtr&1023 == 0 && o.expired()) {
			return n
		}
	}
	if !force {
		if o.deep[n] {
			force = true
		} else if !o.visit[n] {
			return n
		}
	}
	// Rewrite children in place.
	switch x := n.(type) {
	case *tree.Setq:
		x.Value = o.rewrite(x.Value, force)
	case *tree.If:
		x.Test = o.rewrite(x.Test, force)
		x.Then = o.rewrite(x.Then, force)
		x.Else = o.rewrite(x.Else, force)
	case *tree.Progn:
		for i := range x.Forms {
			x.Forms[i] = o.rewrite(x.Forms[i], force)
		}
	case *tree.Call:
		x.Fn = o.rewrite(x.Fn, force)
		for i := range x.Args {
			x.Args[i] = o.rewrite(x.Args[i], force)
		}
	case *tree.Lambda:
		for i := range x.Optional {
			x.Optional[i].Default = o.rewrite(x.Optional[i].Default, force)
		}
		x.Body = o.rewrite(x.Body, force)
	case *tree.ProgBody:
		for i := range x.Forms {
			x.Forms[i] = o.rewrite(x.Forms[i], force)
		}
	case *tree.Return:
		x.Value = o.rewrite(x.Value, force)
	case *tree.Catcher:
		x.Tag = o.rewrite(x.Tag, force)
		x.Body = o.rewrite(x.Body, force)
	case *tree.Caseq:
		x.Key = o.rewrite(x.Key, force)
		for i := range x.Clauses {
			x.Clauses[i].Body = o.rewrite(x.Clauses[i].Body, force)
		}
		if x.Default != nil {
			x.Default = o.rewrite(x.Default, force)
		}
	}
	// Apply local rules to a fixpoint at this node.
	for i := 0; i < 50; i++ {
		nn, fired := o.applyRules(n)
		if !fired {
			break
		}
		n = nn
		o.fired = append(o.fired, n)
	}
	return n
}

// applyRules tries each rule once; returns the (possibly new) node and
// whether any rule fired.
func (o *Optimizer) applyRules(n tree.Node) (tree.Node, bool) {
	type rule struct {
		name string
		fn   func(tree.Node) (tree.Node, bool)
	}
	var rules []rule
	switch n.Kind() {
	case tree.KindCall:
		rules = []rule{
			{"META-CALL-LAMBDA", o.ruleCallLambda},
			{"META-SUBSTITUTE", o.ruleSubstitute},
			{"META-DROP-UNUSED-ARGUMENT", o.ruleDropUnused},
			{"META-EVALUATE-ASSOC-COMMUT-CALL", o.ruleAssocCommut},
			{"CONSIDER-REVERSING-ARGUMENTS", o.ruleReverseArgs},
			{"META-IDENTITY-OPERAND", o.ruleIdentity},
			{"META-EVALUATE-CONSTANT-CALL", o.ruleConstantFold},
			{"META-SIN-TO-SINC", o.ruleSinToSinc},
			{"META-HOIST-PROGN-ARGUMENT", o.ruleHoistProgn},
		}
	case tree.KindIf:
		rules = []rule{
			{"META-IF-PROGN", o.ruleIfProgn},
			{"META-IF-CONSTANT-PREDICATE", o.ruleIfConstant},
			{"META-IF-KNOWN-TEST", o.ruleIfKnownTest},
			{"META-IF-NOT", o.ruleIfNot},
			{"META-IF-IF", o.ruleIfIf},
		}
	case tree.KindProgn:
		rules = []rule{
			{"META-PROGN-FLATTEN", o.rulePrognFlatten},
		}
	case tree.KindCaseq:
		rules = []rule{
			{"META-CASEQ-CONSTANT-KEY", o.ruleCaseqConstant},
		}
	}
	before := ""
	if o.opts.Log != nil || o.opts.OnRule != nil {
		before = tree.Show(n)
	}
	for _, r := range rules {
		if !o.enabled(r.name) {
			continue
		}
		if nn, fired := r.fn(n); fired {
			o.logRule(r.name, before, nn)
			return nn, true
		}
	}
	return n, false
}
