package opt

import (
	"testing"

	"repro/internal/convert"
	"repro/internal/tree"
)

// corpus is a battery of shapes covering every rule's trigger.
var corpus = []string{
	"(lambda (a b c) (+$f a b c))",
	"(lambda (a b c) (if (and a (or b c)) 'one 'two))",
	"(lambda (a b c x) (if (and a (or b c)) (frotz x) (gronk x)))",
	"(lambda (x) (let ((y (+ x 1))) (* y y)))",
	"(lambda (x) (let ((f (lambda (q) (* q 2)))) (f (f x))))",
	"(lambda (p q r) (+$f (if p (sqrt$f q) (car r)) 3.0))",
	"(lambda (x) (sin$f (cos$f x)))",
	"(lambda (x) (progn 1 (progn 2 (frotz x)) 3 (gronk x)))",
	"(lambda (k) (caseq k ((1 2) 'a) (t 'b)))",
	"(lambda () (caseq 2 ((1 2) 'a) (t 'b)))",
	"(lambda (x) (if (not (null x)) (car x) nil))",
	"(lambda (a) (let ((u (cons a a))) 'ignored))",
	"(lambda (a b) (let ((s (+$f a b))) (frotz s s)))",
	"(lambda (n) (if (zerop n) 'done (self (- n 1))))",
	"(lambda (x) (+ (expt 2 5) (* x (max 1 2 3))))",
	"(lambda (p) (if (if p 'x nil) 1 2))",
	"(lambda (a b) (if (progn (frotz a) b) 1 2))",
}

// TestOptimizeIdempotent: a second optimization pass over an optimized
// tree applies no further transformations (the fixpoint is real).
func TestOptimizeIdempotent(t *testing.T) {
	for _, src := range corpus {
		c := convert.New()
		n, err := c.ConvertForm(mustRead(src))
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		o1 := New(DefaultOptions(), nil)
		out := o1.Optimize(n)
		first := tree.Show(out)
		o2 := New(DefaultOptions(), nil)
		out2 := o2.Optimize(out)
		if len(o2.Applied) != 0 {
			t.Errorf("%s: second pass applied %v", src, o2.Applied)
		}
		if got := tree.Show(out2); got != first {
			t.Errorf("%s: not idempotent:\n1: %s\n2: %s", src, first, got)
		}
	}
}

// TestOptimizedTreesValidate: every corpus entry leaves a structurally
// sound tree (back-pointers, go/return targets).
func TestOptimizedTreesValidate(t *testing.T) {
	for _, src := range corpus {
		c := convert.New()
		n, err := c.ConvertForm(mustRead(src))
		if err != nil {
			t.Fatal(err)
		}
		o := New(DefaultOptions(), nil)
		out := o.Optimize(n)
		if err := tree.Validate(out); err != nil {
			t.Errorf("%s: %v\n%s", src, err, tree.Show(out))
		}
	}
}

// TestBackTranslationReconverts: the optimizer's output, printed and
// re-read through the converter, converts without error — "the final
// transformed tree can be converted back into a source program".
func TestBackTranslationReconverts(t *testing.T) {
	for _, src := range corpus {
		c := convert.New()
		n, err := c.ConvertForm(mustRead(src))
		if err != nil {
			t.Fatal(err)
		}
		o := New(DefaultOptions(), nil)
		out := o.Optimize(n)
		printed := tree.Show(out)
		c2 := convert.New()
		if _, err := c2.ConvertForm(mustRead(printed)); err != nil {
			t.Errorf("%s: reconversion failed: %v\nprinted: %s", src, err, printed)
		}
	}
}

// TestCopyPreservesShape: tree.Copy back-translates identically (alpha
// renaming does not change the printed names).
func TestCopyPreservesShape(t *testing.T) {
	for _, src := range corpus {
		c := convert.New()
		n, err := c.ConvertForm(mustRead(src))
		if err != nil {
			t.Fatal(err)
		}
		cp := tree.Copy(n)
		if tree.Show(cp) != tree.Show(n) {
			t.Errorf("%s: copy shape differs:\n%s\n%s", src, tree.Show(n), tree.Show(cp))
		}
		if err := tree.Validate(cp); err != nil {
			t.Errorf("%s: copy invalid: %v", src, err)
		}
	}
}
