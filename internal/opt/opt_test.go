package opt

import (
	"strings"
	"testing"

	"repro/internal/convert"
	"repro/internal/interp"
	"repro/internal/sexp"
	"repro/internal/tree"
)

func optimizeSrc(t *testing.T, src string) (tree.Node, *Optimizer) {
	t.Helper()
	c := convert.New()
	n, err := c.ConvertForm(mustRead(src))
	if err != nil {
		t.Fatalf("convert: %v", err)
	}
	o := New(DefaultOptions(), nil)
	out := o.Optimize(n)
	if err := tree.Validate(out); err != nil {
		t.Fatalf("optimized tree invalid: %v\n%s", err, tree.Show(out))
	}
	return out, o
}

func optShow(t *testing.T, src string) string {
	t.Helper()
	n, _ := optimizeSrc(t, src)
	return tree.Show(n)
}

func TestConstantFolding(t *testing.T) {
	cases := [][2]string{
		{"(+ 1 2)", "3"},
		{"(* 3 4.0)", "12.0"},
		{"(car '(1 2))", "1"},
		{"(cdr '(1 2))", "'(2)"},
		{"(zerop 0)", "t"},
		{"(< 1 2)", "t"},
		{"(sqrt$f 4.0)", "2.0"},
		{"(+ (+ 1 2) (* 2 3))", "9"},
		{"(if (< 1 2) 'yes 'no)", "'yes"},
		{"(length '(a b c))", "3"},
	}
	for _, c := range cases {
		if got := optShow(t, c[0]); got != c[1] {
			t.Errorf("%s => %s, want %s", c[0], got, c[1])
		}
	}
}

func TestConstantFoldingLeavesErrorsForRuntime(t *testing.T) {
	got := optShow(t, "(/ 1 0)")
	if got != "(/ 1 0)" {
		t.Errorf("(/ 1 0) should not fold, got %s", got)
	}
	got = optShow(t, "(+$f 1 2)") // wrong types for $f op
	if got != "(+$f 1 2)" {
		t.Errorf("ill-typed call should not fold, got %s", got)
	}
}

func TestAssocCommutReduction(t *testing.T) {
	// The paper's transcript: (+$f a b c) => (+$f (+$f c b) a).
	got := optShow(t, "(lambda (a b c) (+$f a b c))")
	want := "(lambda (a b c) (+$f (+$f c b) a))"
	if got != want {
		t.Errorf("got %s want %s", got, want)
	}
	got = optShow(t, "(lambda (a b c) (*$f a b c))")
	want = "(lambda (a b c) (*$f (*$f c b) a))"
	if got != want {
		t.Errorf("got %s want %s", got, want)
	}
	// Four arguments nest once more.
	got = optShow(t, "(lambda (a b c d) (+ a b c d))")
	want = "(lambda (a b c d) (+ (+ (+ d c) b) a))"
	if got != want {
		t.Errorf("got %s want %s", got, want)
	}
	// Unary and nullary collapse.
	if got := optShow(t, "(lambda (x) (+ x))"); got != "(lambda (x) x)" {
		t.Errorf("(+ x) => %s", got)
	}
	if got := optShow(t, "(+)"); got != "0" {
		t.Errorf("(+) => %s", got)
	}
}

func TestReverseConstantFirst(t *testing.T) {
	// "By convention constant arguments are put first where possible."
	got := optShow(t, "(lambda (e) (*$f e 0.5))")
	want := "(lambda (e) (*$f 0.5 e))"
	if got != want {
		t.Errorf("got %s want %s", got, want)
	}
	// Non-commutative ops are not reordered.
	got = optShow(t, "(lambda (e) (-$f e 0.5))")
	if got != "(lambda (e) (-$f e 0.5))" {
		t.Errorf("-$f should not reverse: %s", got)
	}
}

func TestIdentityElimination(t *testing.T) {
	cases := [][2]string{
		{"(lambda (x) (+ x 0))", "(lambda (x) x)"},
		{"(lambda (x) (* 1 x))", "(lambda (x) x)"},
		{"(lambda (x) (*$f x 1.0))", "(lambda (x) x)"},
		{"(lambda (x) (+& 0 x))", "(lambda (x) x)"},
	}
	for _, c := range cases {
		if got := optShow(t, c[0]); got != c[1] {
			t.Errorf("%s => %s, want %s", c[0], got, c[1])
		}
	}
}

func TestSinToSinc(t *testing.T) {
	got := optShow(t, "(lambda (e) (sin$f e))")
	if !strings.Contains(got, "sinc$f") || !strings.Contains(got, "0.159154943") {
		t.Errorf("sin$f => %s", got)
	}
	// Constant ends up first via CONSIDER-REVERSING-ARGUMENTS.
	if !strings.Contains(got, "(*$f 0.159154943") {
		t.Errorf("constant should be first: %s", got)
	}
	_, o := optimizeSrc(t, "(lambda (e) (sin$f e))")
	if o.Applied["CONSIDER-REVERSING-ARGUMENTS"] == 0 {
		t.Error("reversal rule should have fired")
	}
}

func TestBetaRule1(t *testing.T) {
	if got := optShow(t, "((lambda () 42))"); got != "42" {
		t.Errorf("((lambda () 42)) => %s", got)
	}
}

func TestBetaRule2DropsUnused(t *testing.T) {
	// Unused binding with pure init disappears.
	got := optShow(t, "(lambda (x) (let ((unused (+ x 1))) 'done))")
	if got != "(lambda (x) 'done)" {
		t.Errorf("got %s", got)
	}
	// Effectful init is kept.
	got = optShow(t, "(lambda (x) (let ((unused (rplaca x 1))) 'done))")
	if !strings.Contains(got, "rplaca") {
		t.Errorf("effectful init must remain: %s", got)
	}
	// Allocating init may be eliminated.
	got = optShow(t, "(lambda (x) (let ((unused (cons x x))) 'done))")
	if got != "(lambda (x) 'done)" {
		t.Errorf("allocation should be eliminable: %s", got)
	}
}

func TestBetaRule3Substitution(t *testing.T) {
	// Constants propagate.
	got := optShow(t, "(let ((k 2)) (frotz (+ k 1) k))")
	if got != "(frotz 3 2)" {
		t.Errorf("constant propagation: %s", got)
	}
	// Variable renaming.
	got = optShow(t, "(lambda (x) (let ((y x)) (frotz y y)))")
	if got != "(lambda (x) (frotz x x))" {
		t.Errorf("renaming: %s", got)
	}
	// Assigned variables are not substituted.
	got = optShow(t, "(lambda (x) (let ((y x)) (setq y 3) (frotz y)))")
	if !strings.Contains(got, "setq") {
		t.Errorf("assigned var must stay bound: %s", got)
	}
	// Single-use pure expressions move to their use site.
	got = optShow(t, "(lambda (a b) (let ((s (+$f a b))) (frotz s)))")
	if got != "(lambda (a b) (frotz (+$f a b)))" {
		t.Errorf("single-use substitution: %s", got)
	}
	// Large pure expressions with several uses stay bound.
	got = optShow(t, "(lambda (a b) (let ((s (+$f (*$f a a) (*$f b b)))) (frotz s s s)))")
	if !strings.Contains(got, "lambda (s)") {
		t.Errorf("multi-use large expr should stay: %s", got)
	}
}

func TestSubstitutionRespectsMutableReads(t *testing.T) {
	// (car p) reads mutable state: moving it past (rplaca p 9) would
	// change the value.
	got := optShow(t, "(lambda (p) (let ((h (car p))) (rplaca p 9) (frotz h)))")
	if !strings.Contains(got, "lambda (h)") {
		t.Errorf("mutable read must not move: %s", got)
	}
	// Special-variable reads must not move either.
	got = optShow(t, "(lambda () (let ((h *dyn*)) (frotz) (g h)))")
	if !strings.Contains(got, "lambda (h)") {
		t.Errorf("special read must not move: %s", got)
	}
}

func TestProcedureIntegration(t *testing.T) {
	// A single-use functional binding is integrated and the call
	// beta-reduced away.
	// (+ y 1) integrates to (+ x 1), and the constant-first convention
	// then yields (+ 1 x).
	got := optShow(t, "(lambda (x) (let ((f (lambda (y) (+ y 1)))) (f x)))")
	if got != "(lambda (x) (+ 1 x))" {
		t.Errorf("integration: %s", got)
	}
}

func TestShortCircuitTransform(t *testing.T) {
	// §5, E2: boolean short-circuiting falls out. With trivial arms the
	// arms are duplicated and the result is the pure conditional network.
	got := optShow(t, "(lambda (a b c) (if (and a (or b c)) 'one 'two))")
	want := "(lambda (a b c) (if a (if b 'one (if c 'one 'two)) 'two))"
	if got != want {
		t.Errorf("short-circuit:\n got %s\nwant %s", got, want)
	}
}

func TestShortCircuitWithExpensiveArms(t *testing.T) {
	// Non-trivial arms are shared through introduced functions f and g,
	// never duplicated.
	n, _ := optimizeSrc(t, `(lambda (a b c x)
	   (if (and a (or b c)) (frotz x 1 2) (gronk x 3 4)))`)
	s := tree.Show(n)
	if strings.Count(s, "frotz") != 1 || strings.Count(s, "gronk") != 1 {
		t.Errorf("expensive arms must not be duplicated:\n%s", s)
	}
	// And no and/or remains: the test network is pure ifs on a, b, c.
	if strings.Contains(s, "(and") || strings.Contains(s, "(or") {
		t.Errorf("and/or should be gone: %s", s)
	}
}

func TestIfSimplifications(t *testing.T) {
	cases := [][2]string{
		{"(if t 'a 'b)", "'a"},
		{"(if nil 'a 'b)", "'b"},
		{"(if 3 'a 'b)", "'a"},
		{"(lambda (p) (if (not p) 'a 'b))", "(lambda (p) (if p 'b 'a))"},
		{"(lambda (p) (if (null p) 'a 'b))", "(lambda (p) (if p 'b 'a))"},
		{"(lambda (b) (if b (if b 'x 'y) 'z))", "(lambda (b) (if b 'x 'z))"},
		{"(lambda (b) (if b 'x (if b 'y 'z)))", "(lambda (b) (if b 'x 'z))"},
	}
	for _, c := range cases {
		if got := optShow(t, c[0]); got != c[1] {
			t.Errorf("%s => %s, want %s", c[0], got, c[1])
		}
	}
}

func TestIfProgn(t *testing.T) {
	got := optShow(t, "(lambda (x) (if (progn (frotz x) (gronk x)) 'a 'b))")
	want := "(lambda (x) (progn (frotz x) (if (gronk x) 'a 'b)))"
	if got != want {
		t.Errorf("got %s want %s", got, want)
	}
}

func TestPrognPruning(t *testing.T) {
	cases := [][2]string{
		{"(lambda (x) (progn 1 2 (frotz x)))", "(lambda (x) (frotz x))"},
		{"(lambda (x) (progn (frotz x) 2 3))", "(lambda (x) (progn (frotz x) 3))"},
		{"(lambda (x) (progn x))", "(lambda (x) x)"},
		{"(lambda (x) (progn (progn (frotz x) (gronk x))))",
			"(lambda (x) (progn (frotz x) (gronk x)))"},
	}
	for _, c := range cases {
		if got := optShow(t, c[0]); got != c[1] {
			t.Errorf("%s => %s, want %s", c[0], got, c[1])
		}
	}
}

func TestCaseqConstantKey(t *testing.T) {
	if got := optShow(t, "(caseq 2 ((1 2) 'small) (t 'big))"); got != "'small" {
		t.Errorf("caseq fold: %s", got)
	}
	if got := optShow(t, "(caseq 9 ((1 2) 'small) (t 'big))"); got != "'big" {
		t.Errorf("caseq default: %s", got)
	}
	if got := optShow(t, "(caseq 9 ((1 2) 'small))"); got != "nil" {
		t.Errorf("caseq no match: %s", got)
	}
}

func TestTestfnTranscript(t *testing.T) {
	// E7: the §7 example end to end.
	src := `(lambda (a &optional (b 3.0) (c a))
	  (let ((d (+$f a b c)) (e (*$f a b c)))
	    (let ((q (sin$f e)))
	      (frotz d e (max$f d e))
	      q)))`
	c := convert.New()
	n, err := c.ConvertForm(mustRead(src))
	if err != nil {
		t.Fatal(err)
	}
	var log strings.Builder
	opts := DefaultOptions()
	opts.Log = &log
	o := New(opts, nil)
	out := o.Optimize(n)
	if err := tree.Validate(out); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	got := tree.Show(out)
	want := "(lambda (a &optional (b 3.0) (c a)) " +
		"((lambda (d e) (progn (frotz d e (max$f d e)) " +
		"(sinc$f (*$f 0.15915494309189535 e)))) " +
		"(+$f (+$f c b) a) (*$f (*$f c b) a)))"
	if got != want {
		t.Errorf("testfn:\n got %s\nwant %s", got, want)
	}
	// The transcript shows the same rule firings as the paper's.
	transcript := log.String()
	for _, rule := range []string{
		"META-EVALUATE-ASSOC-COMMUT-CALL",
		"CONSIDER-REVERSING-ARGUMENTS",
		"META-SUBSTITUTE",
		"META-CALL-LAMBDA",
	} {
		if !strings.Contains(transcript, rule) {
			t.Errorf("transcript missing %s:\n%s", rule, transcript)
		}
	}
	if !strings.Contains(transcript, ";**** Optimizing this form:") {
		t.Error("transcript format missing")
	}
}

func TestOptimizerPreservesSemantics(t *testing.T) {
	// Differential test: interpret each program before and after
	// optimization; results must agree.
	programs := []string{
		`(defun f (a b c) (if (and a (or b c)) 'one 'two))
		 (list (f t t nil) (f t nil t) (f t nil nil) (f nil t t))`,
		`(defun exptl (x n a)
		   (cond ((zerop n) a)
		         ((oddp n) (exptl (* x x) (floor n 2) (* a x)))
		         (t (exptl (* x x) (floor n 2) a))))
		 (exptl 3 10 1)`,
		`(defun q (a b c)
		   (let ((d (- (* b b) (* 4.0 a c))))
		     (cond ((< d 0) '())
		           ((= d 0) (list (/ (- b) (* 2.0 a))))
		           (t (let ((s (sqrt d)))
		                (list (/ (+ (- b) s) (* 2.0 a))
		                      (/ (- (- b) s) (* 2.0 a))))))))
		 (list (q 1.0 -3.0 2.0) (q 1.0 2.0 1.0) (q 1.0 0.0 1.0))`,
		`(defun count (n acc) (if (zerop n) acc (count (- n 1) (+ acc 2))))
		 (count 10 0)`,
		`(let ((x 1) (y 2)) (+ (* x 10) y))`,
		`(defun t1 (p) (let ((h (car p))) (rplaca p 9) (+ h (car p))))
		 (t1 (cons 1 2))`,
		`(defvar *w* 5)
		 (defun r () *w*)
		 (let ((*w* 7)) (r))`,
		`(prog (i s) (setq i 0 s 0)
		  lp (if (>= i 5) (return s) nil)
		     (setq s (+ s i) i (+ i 1)) (go lp))`,
		`(defun fact (n) (if (zerop n) 1 (* n (fact (- n 1))))) (fact 10)`,
		`(caseq (+ 1 1) ((1) 'one) ((2) 'two) (t 'many))`,
		`(catch 'out (+ 1 (throw 'out 41)))`,
	}
	for _, src := range programs {
		forms, err := sexp.ReadAll(src)
		if err != nil {
			t.Fatal(err)
		}
		// Plain interpretation.
		c1 := convert.New()
		p1, err := c1.ConvertTopLevel(forms)
		if err != nil {
			t.Fatalf("convert: %v", err)
		}
		v1, err := interp.New().LoadProgram(p1)
		if err != nil {
			t.Fatalf("interp: %v (%s)", err, src)
		}
		// Optimized interpretation.
		c2 := convert.New()
		p2, err := c2.ConvertTopLevel(forms)
		if err != nil {
			t.Fatal(err)
		}
		o := New(DefaultOptions(), nil)
		for _, d := range p2.Defs {
			nd := o.Optimize(d.Lambda)
			lam, ok := nd.(*tree.Lambda)
			if !ok {
				t.Fatalf("optimizing a lambda returned %T", nd)
			}
			d.Lambda = lam
			if err := tree.Validate(lam); err != nil {
				t.Fatalf("optimized def invalid: %v", err)
			}
		}
		for i := range p2.TopForms {
			p2.TopForms[i] = o.Optimize(p2.TopForms[i])
		}
		v2, err := interp.New().LoadProgram(p2)
		if err != nil {
			t.Fatalf("optimized interp: %v (%s)", err, src)
		}
		if !sexp.Equal(v1, v2) {
			t.Errorf("semantics changed for %q:\n plain: %s\n  optd: %s",
				src, sexp.Print(v1), sexp.Print(v2))
		}
	}
}

func TestDisabledRules(t *testing.T) {
	opts := DefaultOptions()
	opts.Disabled = map[string]bool{"META-EVALUATE-CONSTANT-CALL": true}
	o := New(opts, nil)
	c := convert.New()
	n, _ := c.ConvertForm(mustRead("(+ 1 2)"))
	out := o.Optimize(n)
	if tree.Show(out) != "(+ 1 2)" {
		t.Errorf("disabled folding still fired: %s", tree.Show(out))
	}
}

func TestAppliedCounters(t *testing.T) {
	_, o := optimizeSrc(t, "(+ 1 2)")
	if o.Applied["META-EVALUATE-CONSTANT-CALL"] == 0 {
		t.Error("Applied counter not incremented")
	}
}

func TestOptimizeTerminates(t *testing.T) {
	// Pathological nesting should still terminate within MaxPasses.
	src := "(lambda (a b c d e) (if (and a (or b (and c (or d e)))) (f a) (g b)))"
	n, _ := optimizeSrc(t, src)
	if n == nil {
		t.Fatal("nil result")
	}
}

// mustRead parses one form, panicking on error — a test-table
// convenience; the production reader paths all return errors.
func mustRead(src string) sexp.Value {
	v, err := sexp.ReadOne(src)
	if err != nil {
		panic(err)
	}
	return v
}
