package opt

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/interp"
	"repro/internal/prim"
	"repro/internal/sexp"
	"repro/internal/tree"
)

// gensym returns a fresh uninterned symbol named from a per-optimizer
// counter, so the introduced names (which surface in jump-block labels and
// listing comments) depend only on this function's own rewrite history —
// not on global state shared with concurrently compiled functions.
func (o *Optimizer) gensym(prefix string) *sexp.Symbol {
	o.gen++
	return &sexp.Symbol{Name: fmt.Sprintf("%s%d", prefix, o.gen)}
}

// effectsOf returns fresh effect information for a subtree (mid-pass nodes
// may carry stale or zero Info).
func effectsOf(n tree.Node) tree.Effect {
	analysis.Recompute(n)
	return n.Info().Effects
}

// readsOnlyImmutable reports whether every variable the (freshly
// analyzed) expression reads is lexical and never assigned — the
// condition under which its evaluation may be moved in time. This is the
// paper's "it cannot affect the variable e because e is lexically scoped"
// argument.
func readsOnlyImmutable(n tree.Node) bool {
	for v := range n.Info().Reads {
		if v.Special || v.Assigned() {
			return false
		}
	}
	return true
}

// plainLambda reports a lambda with only required parameters.
func plainLambda(l *tree.Lambda) bool {
	return len(l.Optional) == 0 && l.Rest == nil
}

func isLiteral(n tree.Node) bool {
	_, ok := n.(*tree.Literal)
	return ok
}

// --- beta rule 1: ((lambda () body)) => body ---

func (o *Optimizer) ruleCallLambda(n tree.Node) (tree.Node, bool) {
	call := n.(*tree.Call)
	lam, ok := call.Fn.(*tree.Lambda)
	if !ok || !plainLambda(lam) {
		return n, false
	}
	if len(lam.Required) != 0 || len(call.Args) != 0 {
		return n, false
	}
	return lam.Body, true
}

// --- beta rule 2: drop an unused parameter whose argument has no side
// effects (heap allocation excepted: it "may be eliminated but must not
// be duplicated") ---

func (o *Optimizer) ruleDropUnused(n tree.Node) (tree.Node, bool) {
	call := n.(*tree.Call)
	lam, ok := call.Fn.(*tree.Lambda)
	if !ok || !plainLambda(lam) || len(call.Args) != len(lam.Required) {
		return n, false
	}
	for j, v := range lam.Required {
		if len(v.Refs) != 0 || len(v.Sets) != 0 || v.Special {
			continue
		}
		if !effectsOf(call.Args[j]).PureExceptAlloc() {
			continue
		}
		tree.Detach(call.Args[j])
		call.Args = append(call.Args[:j], call.Args[j+1:]...)
		lam.Required = append(lam.Required[:j], lam.Required[j+1:]...)
		return call, true
	}
	return n, false
}

// --- beta rule 3: substitute the argument expression for occurrences of
// the variable, under the side-effect conditions of §5 ---

func (o *Optimizer) ruleSubstitute(n tree.Node) (tree.Node, bool) {
	call := n.(*tree.Call)
	lam, ok := call.Fn.(*tree.Lambda)
	if !ok || !plainLambda(lam) || len(call.Args) != len(lam.Required) {
		return n, false
	}
	for j, v := range lam.Required {
		if v.Special || v.Assigned() || len(v.Refs) == 0 {
			continue
		}
		arg := call.Args[j]
		if !o.substitutable(arg, len(v.Refs)) {
			continue
		}
		lam.Body = replaceRefs(lam.Body, v, arg)
		// v now has no references; ruleDropUnused removes the pair on a
		// later iteration (the argument just shown substitutable is
		// droppable a fortiori).
		return call, true
	}
	return n, false
}

// substitutable decides whether arg may replace a variable with nrefs
// references.
func (o *Optimizer) substitutable(arg tree.Node, nrefs int) bool {
	switch a := arg.(type) {
	case *tree.Literal:
		return true // constant propagation
	case *tree.VarRef:
		// Renaming: safe when the source variable's value cannot change.
		return !a.Var.Special && !a.Var.Assigned()
	case *tree.Lambda:
		// Procedure integration, single use.
		return nrefs == 1
	}
	// General expressions: must be free of effects and read only
	// immutable variables (their evaluation moves in time); several
	// occurrences additionally require the expression to be small, per
	// the complexity analysis.
	eff := effectsOf(arg)
	if !eff.Pure() || !readsOnlyImmutable(arg) {
		return false
	}
	return nrefs == 1 || arg.Info().Complexity <= o.opts.SubstituteComplexity
}

// replaceRefs rewrites every reference to v inside body with a copy of
// template, maintaining back-pointer lists, and returns the (possibly
// new) body root.
func replaceRefs(body tree.Node, v *tree.Var, template tree.Node) tree.Node {
	var rec func(n tree.Node) tree.Node
	rec = func(n tree.Node) tree.Node {
		if r, ok := n.(*tree.VarRef); ok {
			if r.Var == v {
				v.DropRef(r)
				return tree.Copy(template)
			}
			return n
		}
		switch x := n.(type) {
		case *tree.Setq:
			x.Value = rec(x.Value)
		case *tree.If:
			x.Test, x.Then, x.Else = rec(x.Test), rec(x.Then), rec(x.Else)
		case *tree.Progn:
			for i := range x.Forms {
				x.Forms[i] = rec(x.Forms[i])
			}
		case *tree.Call:
			x.Fn = rec(x.Fn)
			for i := range x.Args {
				x.Args[i] = rec(x.Args[i])
			}
		case *tree.Lambda:
			for i := range x.Optional {
				x.Optional[i].Default = rec(x.Optional[i].Default)
			}
			x.Body = rec(x.Body)
		case *tree.ProgBody:
			for i := range x.Forms {
				x.Forms[i] = rec(x.Forms[i])
			}
		case *tree.Return:
			x.Value = rec(x.Value)
		case *tree.Catcher:
			x.Tag, x.Body = rec(x.Tag), rec(x.Body)
		case *tree.Caseq:
			x.Key = rec(x.Key)
			for i := range x.Clauses {
				x.Clauses[i].Body = rec(x.Clauses[i].Body)
			}
			if x.Default != nil {
				x.Default = rec(x.Default)
			}
		}
		return n
	}
	return rec(body)
}

// --- associative/commutative canonicalization ---

// ruleAssocCommut reduces n-ary associative calls to compositions of
// two-argument calls; commutative operands are folded in reversed order
// (matching the paper's transcript: (+$f a b c) => (+$f (+$f c b) a)).
// It also eliminates zero- and one-argument associative calls via the
// identity.
func (o *Optimizer) ruleAssocCommut(n tree.Node) (tree.Node, bool) {
	call := n.(*tree.Call)
	fr, ok := call.Fn.(*tree.FunRef)
	if !ok {
		return n, false
	}
	p := prim.Lookup(fr.Name)
	if p == nil || !p.Assoc {
		return n, false
	}
	switch len(call.Args) {
	case 0:
		if p.Identity != nil {
			return tree.NewLiteral(p.Identity), true
		}
		return n, false
	case 1:
		return call.Args[0], true
	case 2:
		return n, false
	}
	mk := func(a, b tree.Node) *tree.Call {
		return &tree.Call{Fn: &tree.FunRef{Name: fr.Name}, Args: []tree.Node{a, b}}
	}
	args := call.Args
	var acc *tree.Call
	if p.Commut {
		k := len(args) - 1
		acc = mk(args[k], args[k-1])
		for i := k - 2; i >= 0; i-- {
			acc = mk(acc, args[i])
		}
	} else {
		acc = mk(args[0], args[1])
		for i := 2; i < len(args); i++ {
			acc = mk(acc, args[i])
		}
	}
	return acc, true
}

// ruleReverseArgs puts constant arguments first for commutative binary
// calls ("By convention constant arguments are put first where
// possible").
func (o *Optimizer) ruleReverseArgs(n tree.Node) (tree.Node, bool) {
	call := n.(*tree.Call)
	fr, ok := call.Fn.(*tree.FunRef)
	if !ok || len(call.Args) != 2 {
		return n, false
	}
	p := prim.Lookup(fr.Name)
	if p == nil || !p.Commut {
		return n, false
	}
	if isLiteral(call.Args[1]) && !isLiteral(call.Args[0]) {
		call.Args[0], call.Args[1] = call.Args[1], call.Args[0]
		return call, true
	}
	return n, false
}

// ruleIdentity eliminates identity operands, table-driven: (+ x 0) => x.
func (o *Optimizer) ruleIdentity(n tree.Node) (tree.Node, bool) {
	call := n.(*tree.Call)
	fr, ok := call.Fn.(*tree.FunRef)
	if !ok || len(call.Args) != 2 {
		return n, false
	}
	p := prim.Lookup(fr.Name)
	if p == nil || p.Identity == nil {
		return n, false
	}
	if lit, ok := call.Args[0].(*tree.Literal); ok && sexp.Eql(lit.Value, p.Identity) {
		return call.Args[1], true
	}
	if lit, ok := call.Args[1].(*tree.Literal); ok && sexp.Eql(lit.Value, p.Identity) {
		return call.Args[0], true
	}
	return n, false
}

// --- compile-time expression evaluation ---

// ruleConstantFold invokes primitive functions known to be free of side
// effects on constant operands using the interpreter's apply engine.
func (o *Optimizer) ruleConstantFold(n tree.Node) (tree.Node, bool) {
	call := n.(*tree.Call)
	fr, ok := call.Fn.(*tree.FunRef)
	if !ok {
		return n, false
	}
	p := prim.Lookup(fr.Name)
	if p == nil || !p.Foldable {
		return n, false
	}
	if len(call.Args) < p.MinArgs || (p.MaxArgs >= 0 && len(call.Args) > p.MaxArgs) {
		return n, false
	}
	args := make([]sexp.Value, len(call.Args))
	for i, a := range call.Args {
		lit, ok := a.(*tree.Literal)
		if !ok {
			return n, false
		}
		args[i] = lit.Value
	}
	fn, ok := o.in.Funcs[fr.Name]
	if !ok {
		return n, false
	}
	if b, ok := fn.(*interp.Builtin); !ok || !b.Pure {
		return n, false
	}
	v, err := o.in.Apply(fn, args)
	if err != nil {
		// Leave ill-typed or erroneous constant calls for run time.
		return n, false
	}
	return tree.NewLiteral(v), true
}

// --- machine-inspired strength reduction ---

// oneOverTwoPi is the conversion factor from radians to cycles: the S-1
// SIN instruction "assumes its argument to be in cycles" (§7's
// 0.159154943 constant).
const oneOverTwoPi = 0.15915494309189535

// ruleSinToSinc rewrites sin$f (radians) into sinc$f (cycles) with a
// compile-time conversion factor, and likewise cos$f.
func (o *Optimizer) ruleSinToSinc(n tree.Node) (tree.Node, bool) {
	call := n.(*tree.Call)
	fr, ok := call.Fn.(*tree.FunRef)
	if !ok || len(call.Args) != 1 {
		return n, false
	}
	var target string
	switch fr.Name.Name {
	case "sin$f":
		target = "sinc$f"
	case "cos$f":
		target = "cosc$f"
	default:
		return n, false
	}
	// The constant is emitted second, as the paper's transcript shows;
	// CONSIDER-REVERSING-ARGUMENTS then moves it first.
	scaled := &tree.Call{
		Fn: &tree.FunRef{Name: sexp.Intern("*$f")},
		Args: []tree.Node{
			call.Args[0],
			tree.NewLiteral(sexp.Flonum(oneOverTwoPi)),
		},
	}
	return &tree.Call{Fn: &tree.FunRef{Name: sexp.Intern(target)},
		Args: []tree.Node{scaled}}, true
}

// --- semi-canonicalizing transformations ---

// ruleHoistProgn lifts a progn out of the first argument position:
// (f (progn a b) c) => (progn a (f b c)), driving the tree toward the
// semi-canonical form on which other transformations depend.
func (o *Optimizer) ruleHoistProgn(n tree.Node) (tree.Node, bool) {
	call := n.(*tree.Call)
	switch call.Fn.(type) {
	case *tree.FunRef, *tree.Lambda:
	default:
		return n, false // evaluating Fn could observe the hoisted effects
	}
	if len(call.Args) == 0 {
		return n, false
	}
	pg, ok := call.Args[0].(*tree.Progn)
	if !ok || len(pg.Forms) < 2 {
		return n, false
	}
	last := pg.Forms[len(pg.Forms)-1]
	prefix := pg.Forms[:len(pg.Forms)-1]
	call.Args[0] = last
	forms := append(append([]tree.Node{}, prefix...), call)
	return &tree.Progn{Forms: forms}, true
}

// ruleIfProgn rotates (if (progn a b ... p) x y) into
// (progn a b ... (if p x y)).
func (o *Optimizer) ruleIfProgn(n tree.Node) (tree.Node, bool) {
	iff := n.(*tree.If)
	pg, ok := iff.Test.(*tree.Progn)
	if !ok || len(pg.Forms) < 2 {
		return n, false
	}
	iff.Test = pg.Forms[len(pg.Forms)-1]
	forms := append(append([]tree.Node{}, pg.Forms[:len(pg.Forms)-1]...), iff)
	return &tree.Progn{Forms: forms}, true
}

// --- dead code elimination over if/caseq ---

// ruleIfConstant simplifies conditionals with constant predicates.
func (o *Optimizer) ruleIfConstant(n tree.Node) (tree.Node, bool) {
	iff := n.(*tree.If)
	switch t := iff.Test.(type) {
	case *tree.Literal:
		if sexp.Truthy(t.Value) {
			tree.Detach(iff.Else)
			return iff.Then, true
		}
		tree.Detach(iff.Then)
		return iff.Else, true
	case *tree.Lambda, *tree.FunRef:
		// Function values are always true.
		tree.Detach(iff.Test)
		tree.Detach(iff.Else)
		return iff.Then, true
	}
	return n, false
}

// ruleIfKnownTest exploits an enclosing test on the same (unassigned)
// variable: (if b (if b x y) z) => (if b x z) — "realizing that b is true
// in the inner if by virtue of the test in the outer one".
func (o *Optimizer) ruleIfKnownTest(n tree.Node) (tree.Node, bool) {
	outer := n.(*tree.If)
	ref, ok := outer.Test.(*tree.VarRef)
	if !ok || ref.Var.Assigned() || ref.Var.Special {
		return n, false
	}
	if inner, ok := outer.Then.(*tree.If); ok {
		if ir, ok := inner.Test.(*tree.VarRef); ok && ir.Var == ref.Var {
			ir.Var.DropRef(ir)
			tree.Detach(inner.Else)
			outer.Then = inner.Then
			return outer, true
		}
	}
	if inner, ok := outer.Else.(*tree.If); ok {
		if ir, ok := inner.Test.(*tree.VarRef); ok && ir.Var == ref.Var {
			ir.Var.DropRef(ir)
			tree.Detach(inner.Then)
			outer.Else = inner.Else
			return outer, true
		}
	}
	// A bare re-test in an arm: (if b b z) => no simplification for the
	// then-arm (it IS the value), but (if b x b) => (if b x nil).
	if ir, ok := outer.Else.(*tree.VarRef); ok && ir.Var == ref.Var {
		ir.Var.DropRef(ir)
		outer.Else = tree.NilLiteral()
		return outer, true
	}
	return n, false
}

// ruleIfNot flips (if (not p) x y) to (if p y x).
func (o *Optimizer) ruleIfNot(n tree.Node) (tree.Node, bool) {
	iff := n.(*tree.If)
	call, ok := iff.Test.(*tree.Call)
	if !ok || len(call.Args) != 1 {
		return n, false
	}
	fr, ok := call.Fn.(*tree.FunRef)
	if !ok || (fr.Name.Name != "not" && fr.Name.Name != "null") {
		return n, false
	}
	iff.Test = call.Args[0]
	iff.Then, iff.Else = iff.Else, iff.Then
	return iff, true
}

// ruleIfIf is the nested-if transformation of §5 — "the essence of the
// boolean short-circuiting idea; all the rest is 'merely' simplification":
//
//	(if (if x y z) v w) ==>
//	((lambda (f g) (if x (if y (f) (g)) (if z (f) (g))))
//	 (lambda () v) (lambda () w))
//
// The functions f and g are introduced to avoid space-wasting duplication
// of the code for v and w; when an arm is trivial it is duplicated
// directly instead.
func (o *Optimizer) ruleIfIf(n tree.Node) (tree.Node, bool) {
	outer := n.(*tree.If)
	inner, ok := outer.Test.(*tree.If)
	if !ok {
		return n, false
	}
	x, y, z := inner.Test, inner.Then, inner.Else
	v, w := outer.Then, outer.Else

	// Build with explicit thunks where arms are non-trivial.
	var fVar, gVar *tree.Var
	var fThunk, gThunk *tree.Lambda
	useV := func() tree.Node {
		if trivialArm(v) {
			return tree.Copy(v)
		}
		if fVar == nil {
			fVar = tree.NewVar(o.gensym("f"))
			fThunk = &tree.Lambda{Body: v}
		}
		return &tree.Call{Fn: tree.NewRef(fVar)}
	}
	useW := func() tree.Node {
		if trivialArm(w) {
			return tree.Copy(w)
		}
		if gVar == nil {
			gVar = tree.NewVar(o.gensym("g"))
			gThunk = &tree.Lambda{Body: w}
		}
		return &tree.Call{Fn: tree.NewRef(gVar)}
	}

	newBody := &tree.If{
		Test: x,
		Then: &tree.If{Test: y, Then: useV(), Else: useW()},
		Else: &tree.If{Test: z, Then: useV(), Else: useW()},
	}
	if trivialArm(v) {
		tree.Detach(v)
	}
	if trivialArm(w) {
		tree.Detach(w)
	}
	if fVar == nil && gVar == nil {
		return newBody, true
	}
	lam := &tree.Lambda{Body: newBody}
	call := &tree.Call{Fn: lam}
	if fVar != nil {
		fVar.Binder = lam
		lam.Required = append(lam.Required, fVar)
		call.Args = append(call.Args, fThunk)
	}
	if gVar != nil {
		gVar.Binder = lam
		lam.Required = append(lam.Required, gVar)
		call.Args = append(call.Args, gThunk)
	}
	return call, true
}

// trivialArm reports arms cheap enough to duplicate instead of thunking.
func trivialArm(n tree.Node) bool {
	switch x := n.(type) {
	case *tree.Literal, *tree.VarRef, *tree.FunRef:
		return true
	case *tree.Call:
		// A no-argument call through a variable ((f)) — itself usually a
		// previously introduced thunk call.
		if len(x.Args) == 0 {
			_, ok := x.Fn.(*tree.VarRef)
			return ok
		}
	}
	return false
}

// --- progn flattening and dead-form pruning ---

func (o *Optimizer) rulePrognFlatten(n tree.Node) (tree.Node, bool) {
	pg := n.(*tree.Progn)
	changed := false
	var out []tree.Node
	for i, f := range pg.Forms {
		if inner, ok := f.(*tree.Progn); ok {
			out = append(out, inner.Forms...)
			changed = true
			continue
		}
		// Non-final forms whose execution has no observable effect are
		// dead code.
		if i != len(pg.Forms)-1 && effectsOf(f).PureExceptAlloc() {
			tree.Detach(f)
			changed = true
			continue
		}
		out = append(out, f)
	}
	if len(out) == 0 {
		return tree.NilLiteral(), true
	}
	if len(out) == 1 {
		return out[0], true
	}
	if !changed {
		return n, false
	}
	pg.Forms = out
	return pg, true
}

// --- caseq with constant key ---

func (o *Optimizer) ruleCaseqConstant(n tree.Node) (tree.Node, bool) {
	cq := n.(*tree.Caseq)
	key, ok := cq.Key.(*tree.Literal)
	if !ok {
		return n, false
	}
	var chosen tree.Node
	for _, cl := range cq.Clauses {
		for _, k := range cl.Keys {
			if sexp.Eql(key.Value, k) {
				chosen = cl.Body
				break
			}
		}
		if chosen != nil {
			break
		}
	}
	if chosen == nil {
		chosen = cq.Default
	}
	if chosen == nil {
		chosen = tree.NilLiteral()
	}
	for _, cl := range cq.Clauses {
		if cl.Body != chosen {
			tree.Detach(cl.Body)
		}
	}
	if cq.Default != nil && cq.Default != chosen {
		tree.Detach(cq.Default)
	}
	return chosen, true
}
