package opt

import (
	"strings"
	"testing"

	"repro/internal/convert"
	"repro/internal/tree"
)

func cseRun(t *testing.T, src string) (tree.Node, int) {
	t.Helper()
	c := convert.New()
	n, err := c.ConvertForm(mustRead(src))
	if err != nil {
		t.Fatal(err)
	}
	o := New(DefaultOptions(), nil)
	n = o.Optimize(n)
	// EliminateCommonSubexpressions mutates below the root; roots that
	// are lambdas are never replaced.
	count := EliminateCommonSubexpressions(n)
	if err := tree.Validate(n); err != nil {
		t.Fatalf("CSE broke tree: %v\n%s", err, tree.Show(n))
	}
	return n, count
}

func TestCSEBasic(t *testing.T) {
	n, count := cseRun(t, "(lambda (a b) (frotz (* a b) (* a b)))")
	if count != 1 {
		t.Fatalf("introductions = %d, want 1\n%s", count, tree.Show(n))
	}
	s := tree.Show(n)
	if strings.Count(s, "(* a b)") != 1 {
		t.Errorf("duplicate not shared: %s", s)
	}
	if !strings.Contains(s, "lambda (cse") {
		t.Errorf("no let introduced: %s", s)
	}
}

func TestCSEAcrossIfArms(t *testing.T) {
	n, count := cseRun(t, "(lambda (p a b) (if p (frotz (* a b)) (gronk (* a b))))")
	if count != 1 {
		t.Fatalf("introductions = %d\n%s", count, tree.Show(n))
	}
	if strings.Count(tree.Show(n), "(* a b)") != 1 {
		t.Errorf("if arms not shared: %s", tree.Show(n))
	}
}

func TestCSESkipsImpure(t *testing.T) {
	// (car x) reads mutable state; (cons a b) allocates (eq-distinct).
	for _, src := range []string{
		"(lambda (x) (frotz (car x) (car x)))",
		"(lambda (a b) (frotz (cons a b) (cons a b)))",
		"(lambda (x) (frotz (gronk x) (gronk x)))",
	} {
		_, count := cseRun(t, src)
		if count != 0 {
			t.Errorf("%s: should not CSE (count=%d)", src, count)
		}
	}
}

func TestCSESkipsAssignedVars(t *testing.T) {
	_, count := cseRun(t,
		"(lambda (a b) (progn (frotz (* a b)) (setq a 9) (frotz (* a b))))")
	if count != 0 {
		t.Error("expression over an assigned variable must not be shared")
	}
}

func TestCSESkipsAcrossClosures(t *testing.T) {
	_, count := cseRun(t,
		"(lambda (a b) (frotz (* a b) (lambda () (* a b))))")
	if count != 0 {
		t.Error("occurrences in different activations must not be shared")
	}
}

func TestCSENestedChains(t *testing.T) {
	// Shared inner and outer expressions: ((a*b)+1) twice and (a*b) twice
	// inside those.
	n, count := cseRun(t, "(lambda (a b) (frotz (+ (* a b) 1) (+ (* a b) 1)))")
	if count < 1 {
		t.Fatalf("introductions = %d\n%s", count, tree.Show(n))
	}
	s := tree.Show(n)
	if strings.Count(s, "(* a b)") != 1 {
		t.Errorf("inner duplicate remains: %s", s)
	}
}

func TestCSEIdempotent(t *testing.T) {
	n, _ := cseRun(t, "(lambda (a b) (frotz (* a b) (* a b)))")
	if again := EliminateCommonSubexpressions(n); again != 0 {
		t.Errorf("second CSE pass introduced %d", again)
	}
}
