package opt

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/sexp"
	"repro/internal/tree"
)

// EliminateCommonSubexpressions is the phase the paper designed but had
// "not yet been implemented": common sub-expression elimination
// "expressed as tree transformations that can be back-translated into
// source-level let constructs". It is deliberately a separate phase
// (§4.3: separating it from the source-level optimizer "avoids the
// possibility of an endless cycle of introductions and eliminations").
//
// A candidate is a pure call (no effects at all, reading only never-
// assigned lexical variables) of complexity ≥ 4. Occurrences with the
// same alpha-renamed printed form are rewritten to a reference to a
// fresh variable bound at their lowest common ancestor:
//
//	(+ (* a b) (* a b))  ==>  ((lambda (cse1) (+ cse1 cse1)) (* a b))
//
// Hoisting to the LCA may evaluate the expression on paths that skipped
// it; this is semantics-preserving for the pure candidates chosen (modulo
// run-time type errors surfacing earlier, the usual Lisp-compiler
// license).
//
// The return value is the number of introductions performed. Run after
// Optimize; the result remains back-translatable source.
func EliminateCommonSubexpressions(root tree.Node) int {
	introduced := 0
	for iter := 0; iter < 100; iter++ {
		analysis.Analyze(root)
		newRoot, did := cseOnce(root, &introduced)
		root = newRoot
		if !did {
			break
		}
	}
	return introduced
}

// cseOnce finds one duplicated candidate group and rewrites it; gen counts
// introductions and numbers the fresh variables, so the names are local to
// this elimination run rather than drawn from the global gensym stream.
func cseOnce(root tree.Node, gen *int) (tree.Node, bool) {
	groups := map[string][]tree.Node{}
	order := []string{}
	tree.Walk(root, func(n tree.Node) bool {
		if !cseCandidate(n) {
			return true
		}
		key := sexp.Print(tree.BackTranslateUnique(n))
		if _, seen := groups[key]; !seen {
			order = append(order, key)
		}
		groups[key] = append(groups[key], n)
		return true // descend: inner duplicates are independent groups
	})
	for _, key := range order {
		occs := groups[key]
		if len(occs) < 2 {
			continue
		}
		if !sameFrame(occs) {
			continue
		}
		lca := lcaNodes(occs)
		if lca == nil || containsAny(occsContain(occs), lca) {
			continue
		}
		*gen++
		return rewriteCSE(root, lca, occs, *gen), true
	}
	return root, false
}

// cseCandidate: a pure call worth naming.
func cseCandidate(n tree.Node) bool {
	c, ok := n.(*tree.Call)
	if !ok {
		return false
	}
	if _, ok := c.Fn.(*tree.FunRef); !ok {
		return false
	}
	in := n.Info()
	if !in.Effects.Pure() || in.Complexity < 4 {
		return false
	}
	for v := range in.Reads {
		if v.Special || v.Assigned() {
			return false
		}
	}
	return true
}

// sameFrame checks that every lambda strictly between an occurrence and
// the group's LCA is a directly-called (open) lambda, so all occurrences
// execute in one activation and the binding variable is visible.
func sameFrame(occs []tree.Node) bool {
	lca := lcaNodes(occs)
	if lca == nil {
		return false
	}
	for _, o := range occs {
		for m := o.Info().Parent; m != nil && m != lca; m = m.Info().Parent {
			if l, ok := m.(*tree.Lambda); ok {
				call, ok := l.Info().Parent.(*tree.Call)
				if !ok || call.Fn != tree.Node(l) {
					return false // escaping lambda between occurrence and LCA
				}
			}
		}
	}
	return true
}

func pathToRoot(n tree.Node) []tree.Node {
	var p []tree.Node
	for m := n; m != nil; m = m.Info().Parent {
		p = append(p, m)
	}
	// reverse to root-first
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
	return p
}

func lcaNodes(nodes []tree.Node) tree.Node {
	cur := pathToRoot(nodes[0])
	for _, n := range nodes[1:] {
		p := pathToRoot(n)
		k := 0
		for k < len(cur) && k < len(p) && cur[k] == p[k] {
			k++
		}
		cur = cur[:k]
	}
	if len(cur) == 0 {
		return nil
	}
	return cur[len(cur)-1]
}

func occsContain(occs []tree.Node) map[tree.Node]bool {
	m := map[tree.Node]bool{}
	for _, o := range occs {
		m[o] = true
	}
	return m
}

func containsAny(set map[tree.Node]bool, n tree.Node) bool { return set[n] }

// rewriteCSE performs the introduction and returns the (possibly new)
// root.
func rewriteCSE(root, lca tree.Node, occs []tree.Node, gen int) tree.Node {
	v := tree.NewVar(&sexp.Symbol{Name: fmt.Sprintf("cse%d", gen)})
	// The first occurrence becomes the initializer; the rest are
	// discarded.
	init := occs[0]
	for _, o := range occs {
		ref := tree.NewRef(v)
		parent := o.Info().Parent
		tree.ReplaceChild(parent, o, ref)
		if o != init {
			tree.Detach(o)
		}
	}
	lam := &tree.Lambda{Required: []*tree.Var{v}}
	v.Binder = lam
	call := &tree.Call{Fn: lam, Args: []tree.Node{init}}
	if lca == root {
		lam.Body = lca
		return call
	}
	parent := lca.Info().Parent
	lam.Body = lca
	tree.ReplaceChild(parent, lca, call)
	return root
}
