package opt

import (
	"testing"
	"time"

	"repro/internal/convert"
	"repro/internal/tree"
)

// TestWatchdogTripsAndLatches: a vanishing budget expires before the
// first pass completes, TimedOut latches, and the (abandoned) result is
// still a structurally valid tree — the caller discards it and fails
// the unit, never emitting "partially optimized" code.
func TestWatchdogTripsAndLatches(t *testing.T) {
	c := convert.New()
	n, err := c.ConvertForm(mustRead(
		"(lambda (x) (do ((i 0 (+ i 1)) (acc 0 (+ acc (* i x)))) ((> i 100) acc)))"))
	if err != nil {
		t.Fatal(err)
	}
	oo := DefaultOptions()
	oo.Watchdog = time.Nanosecond
	o := New(oo, nil)
	out := o.Optimize(n)
	if !o.TimedOut() {
		t.Fatal("1ns watchdog did not trip")
	}
	if err := tree.Validate(out); err != nil {
		t.Errorf("abandoned tree is invalid: %v", err)
	}
}

// TestWatchdogOffByDefault: without a budget the fixpoint runs to
// completion and TimedOut stays false.
func TestWatchdogOffByDefault(t *testing.T) {
	_, o := optimizeSrc(t, "(lambda (x) (+ x (* 1 x)))")
	if o.TimedOut() {
		t.Error("TimedOut with no watchdog configured")
	}
}

// TestWatchdogGenerousBudgetCompletes: a budget far larger than the
// work lets the fixpoint finish normally.
func TestWatchdogGenerousBudgetCompletes(t *testing.T) {
	c := convert.New()
	n, err := c.ConvertForm(mustRead("(lambda (x) (+ x (* 1 x)))"))
	if err != nil {
		t.Fatal(err)
	}
	oo := DefaultOptions()
	oo.Watchdog = time.Minute
	o := New(oo, nil)
	o.Optimize(n)
	if o.TimedOut() {
		t.Error("generous watchdog tripped")
	}
}
