package daemon

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/compilecache"
	"repro/internal/diag"
	"repro/internal/obs"
	"repro/internal/snapshot"
)

// snapTestPrelude is the daemon "standard library" the warm-boot tests
// pin: a couple of compiled functions and a macro, enough that serving
// them proves the snapshot round trip (machine code, interpreter defs,
// macro expanders) end to end.
const snapTestPrelude = `
(defmacro twice (x) (list '+ x x))
(defun exptl (b n a) (if (= n 0) a (exptl b (- n 1) (* a b))))
(defun pre-twice (x) (twice x))`

func openSnapStore(t *testing.T, dir string, fault *diag.Plan) *snapshot.Store {
	t.Helper()
	st, err := snapshot.OpenStore(dir, fault)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// runPrelude asserts a prelude-defined function is callable with an
// empty request source — i.e. the prelude really is loaded into the
// request's system, warm or cold.
func runPrelude(t *testing.T, ts *httptest.Server) {
	t.Helper()
	code, resp, _ := post(t, ts, "/run", Request{Fn: "exptl", Args: []string{"2", "10", "1"}})
	if code != http.StatusOK || !resp.OK || resp.Value != "1024" {
		t.Fatalf("prelude call: status %d, resp %+v", code, resp)
	}
}

// TestWarmBootFromStore is the tentpole path: daemon one cold-compiles
// the prelude and checkpoints; daemon two (fresh process state, same
// directory) boots warm from the snapshot and serves prelude functions
// with zero compiles.
func TestWarmBootFromStore(t *testing.T) {
	dir := t.TempDir()

	s1 := New(Config{Workers: 1, Prelude: snapTestPrelude, Snapshots: openSnapStore(t, dir, nil)})
	if err := s1.Boot(); err != nil {
		t.Fatalf("first boot: %v", err)
	}
	if st := s1.Stats(); st.SnapshotCheckpoints != 1 {
		t.Errorf("first boot should have checkpointed once, stats %+v", st)
	}
	if _, err := os.Stat(filepath.Join(dir, "boot"+snapshot.FileSuffix)); err != nil {
		t.Fatalf("no boot snapshot on disk: %v", err)
	}

	s2 := New(Config{Workers: 1, Prelude: snapTestPrelude, Snapshots: openSnapStore(t, dir, nil)})
	if err := s2.Boot(); err != nil {
		t.Fatalf("second boot: %v", err)
	}
	if st := s2.Stats(); st.SnapshotCheckpoints != 0 {
		t.Errorf("second boot recompiled instead of restoring, stats %+v", st)
	}
	if s2.bootSnap.Load() == nil {
		t.Fatal("second boot has no live snapshot")
	}

	ts := httptest.NewServer(s2)
	defer ts.Close()
	runPrelude(t, ts)
	code, resp, _ := post(t, ts, "/run", Request{Source: "(defun f (x) (pre-twice x))", Fn: "f", Args: []string{"21"}})
	if code != http.StatusOK || resp.Value != "42" {
		t.Errorf("mixed warm+compile request: %d %+v", code, resp)
	}
	if st := s2.Stats(); st.SnapshotRestores != 2 || st.SnapshotRestoreFailures != 0 {
		t.Errorf("requests were not served from the snapshot: %+v", st)
	}
}

// TestBootStalePrelude: a snapshot written for a different prelude is
// valid but stale; boot must recompile the new prelude and replace it,
// not serve the old library.
func TestBootStalePrelude(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{Workers: 1, Prelude: "(defun old-fn (x) x)", Snapshots: openSnapStore(t, dir, nil)})
	if err := s1.Boot(); err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Workers: 1, Prelude: snapTestPrelude, Snapshots: openSnapStore(t, dir, nil)})
	if err := s2.Boot(); err != nil {
		t.Fatal(err)
	}
	if st := s2.Stats(); st.SnapshotCheckpoints != 1 {
		t.Errorf("stale snapshot was not replaced: %+v", st)
	}
	ts := httptest.NewServer(s2)
	defer ts.Close()
	runPrelude(t, ts)
	if code, resp, _ := post(t, ts, "/run", Request{Fn: "old-fn", Args: []string{"1"}}); code == http.StatusOK && resp.OK {
		t.Error("stale prelude function old-fn still served after re-checkpoint")
	}
}

// TestBootReadFaultFallsBack: an injected snapshot-read fault makes the
// stored snapshot unusable at boot; the daemon must quarantine it, cold
// compile, re-checkpoint, and serve — never crash.
func TestBootReadFaultFallsBack(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{Workers: 1, Prelude: snapTestPrelude, Snapshots: openSnapStore(t, dir, nil)})
	if err := s1.Boot(); err != nil {
		t.Fatal(err)
	}

	plan, err := diag.ParsePlan("snapshot:unit=boot:snapshot-read")
	if err != nil {
		t.Fatal(err)
	}
	flight := obs.NewFlight(obs.DefaultFlightSize)
	s2 := New(Config{Workers: 1, Prelude: snapTestPrelude,
		Snapshots: openSnapStore(t, dir, plan), Flight: flight})
	if err := s2.Boot(); err != nil {
		t.Fatalf("boot must degrade, not fail: %v", err)
	}
	if st := s2.Stats(); st.SnapshotCheckpoints != 1 {
		t.Errorf("fallback did not re-checkpoint: %+v", st)
	}
	var sawFallback, sawQuarantine bool
	for _, ev := range flight.Snapshot(obs.Filter{}) {
		switch ev.Kind {
		case obs.EvSnapshotFallback:
			sawFallback = true
		case obs.EvSnapshotQuarantine:
			sawQuarantine = true
		}
	}
	if !sawFallback || !sawQuarantine {
		t.Errorf("flight recorder missing events: fallback=%v quarantine=%v", sawFallback, sawQuarantine)
	}
	ts := httptest.NewServer(s2)
	defer ts.Close()
	runPrelude(t, ts)
}

// TestPerRequestRestoreFailureFallsBack: if the live snapshot stops
// verifying (tampered in memory here), each request falls back to a
// cold prelude compile and still succeeds.
func TestPerRequestRestoreFailureFallsBack(t *testing.T) {
	s := New(Config{Workers: 1, Prelude: snapTestPrelude})
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	snap := s.bootSnap.Load()
	if snap == nil {
		t.Fatal("boot left no snapshot")
	}
	snap.Meta.ImageHash = "tampered"
	ts := httptest.NewServer(s)
	defer ts.Close()
	runPrelude(t, ts)
	if st := s.Stats(); st.SnapshotRestoreFailures != 1 || st.SnapshotRestores != 0 {
		t.Errorf("expected one restore failure with cold fallback: %+v", st)
	}
}

// TestAdminCheckpoint: POST /admin/checkpoint rewrites the snapshot on
// demand (the HTTP spelling of SIGUSR1).
func TestAdminCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := New(Config{Workers: 1, Prelude: snapTestPrelude, Snapshots: openSnapStore(t, dir, nil)})
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	hr, err := http.Post(ts.URL+"/admin/checkpoint", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var out struct {
		OK          bool  `json:"ok"`
		Checkpoints int64 `json:"checkpoints"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if hr.StatusCode != http.StatusOK || !out.OK || out.Checkpoints != 2 {
		t.Errorf("checkpoint: status %d, body %+v", hr.StatusCode, out)
	}

	// Without a prelude there is nothing to checkpoint: a clean 500.
	bare := New(Config{Workers: 1})
	tsb := httptest.NewServer(bare)
	defer tsb.Close()
	if hr, err := http.Post(tsb.URL+"/admin/checkpoint", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		hr.Body.Close()
		if hr.StatusCode != http.StatusInternalServerError {
			t.Errorf("preludeless checkpoint: status %d", hr.StatusCode)
		}
	}
}

// readyzBody fetches /readyz off a debug mux and decodes it.
func readyzBody(t *testing.T, dbg *httptest.Server) (int, map[string]any) {
	t.Helper()
	hr, err := http.Get(dbg.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(hr.Body).Decode(&body); err != nil {
		t.Fatalf("readyz is not JSON: %v", err)
	}
	return hr.StatusCode, body
}

// TestReadyzDegradedCacheBreaker: an open disk-cache circuit breaker
// surfaces in the /readyz degraded list and the breaker-state gauge
// while readiness stays 200 — visible before it becomes an outage.
func TestReadyzDegradedCacheBreaker(t *testing.T) {
	disk, err := compilecache.OpenDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	s := New(Config{Workers: 1, Disk: disk})
	mux := http.NewServeMux()
	s.RegisterDebug(mux)
	dbg := httptest.NewServer(mux)
	defer dbg.Close()

	if code, body := readyzBody(t, dbg); code != http.StatusOK || body["ok"] != true || body["degraded"] != nil {
		t.Fatalf("healthy readyz: %d %v", code, body)
	}
	if v := s.Metrics()["slcd_cache_breaker_state"]; v != 0 {
		t.Errorf("breaker gauge while closed = %v", v)
	}

	for i := 0; i < compilecache.DefaultBreakerThreshold; i++ {
		disk.Breaker().RecordCorrupt()
	}
	code, body := readyzBody(t, dbg)
	if code != http.StatusOK || body["ok"] != true {
		t.Fatalf("degraded readyz must stay 200/ok: %d %v", code, body)
	}
	deg, _ := body["degraded"].([]any)
	if len(deg) != 1 || deg[0] != "cache-breaker-open" {
		t.Errorf("degraded = %v", body["degraded"])
	}
	if v := s.Metrics()["slcd_cache_breaker_state"]; v != float64(compilecache.BreakerOpen) {
		t.Errorf("breaker gauge while open = %v", v)
	}

	disk.Breaker().RecordSuccess()
	if _, body := readyzBody(t, dbg); body["degraded"] != nil {
		t.Errorf("degraded after breaker closed: %v", body["degraded"])
	}
}

// TestReadyzDegradedSnapshotCold: warm boot configured but no live
// snapshot → degraded "snapshot-cold"; gone after Boot.
func TestReadyzDegradedSnapshotCold(t *testing.T) {
	s := New(Config{Workers: 1, Prelude: snapTestPrelude,
		Snapshots: openSnapStore(t, t.TempDir(), nil)})
	mux := http.NewServeMux()
	s.RegisterDebug(mux)
	dbg := httptest.NewServer(mux)
	defer dbg.Close()

	if _, body := readyzBody(t, dbg); body["degraded"] == nil {
		t.Error("pre-Boot readyz should report snapshot-cold")
	}
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	if _, body := readyzBody(t, dbg); body["degraded"] != nil {
		t.Errorf("post-Boot degraded = %v", body["degraded"])
	}
}

// TestHelperDaemonCheckpointLoop is the child body for the end-to-end
// kill-9 torture: a daemon that boots from the shared snapshot
// directory and re-checkpoints as fast as it can until killed.
func TestHelperDaemonCheckpointLoop(t *testing.T) {
	dir := os.Getenv("SLCD_SNAP_TORTURE_DIR")
	if dir == "" {
		t.Skip("helper process for TestKill9DaemonCheckpointTorture")
	}
	st, err := snapshot.OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(Config{Workers: 1, Prelude: snapTestPrelude, Snapshots: st})
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	for {
		if err := s.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKill9DaemonCheckpointTorture is the end-to-end crash-safety
// proof: SIGKILL a checkpointing daemon repeatedly; after every crash a
// fresh daemon must boot (warm or cold, never an error), report ready,
// and serve prelude calls.
func TestKill9DaemonCheckpointTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	dir := t.TempDir()
	for round := 0; round < 5; round++ {
		cmd := exec.Command(os.Args[0], "-test.run=TestHelperDaemonCheckpointLoop$", "-test.v=false")
		cmd.Env = append(os.Environ(), "SLCD_SNAP_TORTURE_DIR="+dir)
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if ents, _ := os.ReadDir(dir); len(ents) > 2 { // .lock + quarantine + snapshot
				break
			}
			time.Sleep(time.Millisecond)
		}
		time.Sleep(time.Duration(2+round*4) * time.Millisecond)
		cmd.Process.Kill()
		cmd.Wait()

		st := openSnapStore(t, dir, nil)
		s := New(Config{Workers: 1, Prelude: snapTestPrelude, Snapshots: st})
		if err := s.Boot(); err != nil {
			t.Fatalf("round %d: boot after kill -9 failed: %v\nchild: %s", round, err, out.String())
		}
		mux := http.NewServeMux()
		s.RegisterDebug(mux)
		dbg := httptest.NewServer(mux)
		if code, body := readyzBody(t, dbg); code != http.StatusOK || body["ok"] != true {
			t.Errorf("round %d: readyz after kill -9: %d %v", round, code, body)
		}
		dbg.Close()
		ts := httptest.NewServer(s)
		runPrelude(t, ts)
		ts.Close()
		st.Close()
	}
}
