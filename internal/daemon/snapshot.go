package daemon

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/snapshot"
)

// Warm boot (DESIGN.md §14). The daemon's prelude — the Lisp standard
// library every request sees — is compiled once into a verified
// snapshot; each per-request system then restores that snapshot
// (deserialize + verify) instead of recompiling the prelude. With a
// snapshot store configured, the snapshot also persists across process
// restarts: Boot tries the pinned "boot" snapshot before paying a cold
// compile, and Checkpoint (SIGUSR1, POST /admin/checkpoint, and the
// automatic one after Boot's cold compile) rewrites it crash-safely.
//
// Every degradation path is non-fatal: a missing, stale, corrupt or
// unverifiable snapshot costs a cold compile (flight-recorded as
// snapshot-fallback, with corrupt files quarantined by the store),
// never a crash and never a wrong image — restores are verified against
// the recorded image hash and allocator context before use.

// snapBootName is the pinned snapshot the daemon boots workers from.
const snapBootName = "boot"

// sysOptions is the per-request system configuration. The checkpoint
// system is built with exactly these options so that restored machines
// verify against the snapshot's recorded allocator context.
func (s *Server) sysOptions() core.Options {
	return core.Options{
		Jobs:         1, // concurrency lives at the request level
		MaxSteps:     s.cfg.MaxSteps,
		MaxHeapWords: s.cfg.MaxHeapWords,
		OptWatchdog:  s.cfg.OptWatchdog,
		DiskCache:    s.cfg.Disk,
		Fault:        s.cfg.Fault,
		NoTier:       s.cfg.NoTier,
		HotThreshold: s.cfg.HotThreshold,
		// Generational knobs. These never affect compiled output (no
		// compile configuration sets a GC threshold), so restored machines
		// verify against snapshots regardless of the settings.
		GCNoGen:       s.cfg.GCNoGen,
		GCMinorBudget: s.cfg.GCMinorBudget,
		Flight:        s.flight,
	}
}

// bootSystem builds the system for one request: restored from the boot
// snapshot when one is live, cold-compiled (prelude included) when not
// or when the restore fails verification.
func (s *Server) bootSystem(opts core.Options, traceID string) *core.System {
	if snap := s.bootSnap.Load(); snap != nil {
		sys, err := core.RestoreSystem(opts, snap)
		if err == nil {
			s.mu.Lock()
			s.stats.SnapshotRestores++
			s.mu.Unlock()
			return sys
		}
		s.mu.Lock()
		s.stats.SnapshotRestoreFailures++
		s.mu.Unlock()
		s.flight.Record(obs.Event{Kind: obs.EvSnapshotFallback, Trace: traceID,
			Unit: snapBootName, Msg: err.Error()})
		s.log.LogAttrs(nil, slog.LevelWarn, "snapshot restore failed, cold compiling",
			slog.String("trace_id", traceID), slog.String("err", err.Error()))
	}
	sys := core.NewSystem(opts)
	if s.cfg.Prelude != "" {
		// Prelude problems were already diagnosed at Boot/Checkpoint time;
		// a request-time cold load degrades per-unit like any other load.
		sys.LoadStringDiag(s.cfg.Prelude)
	}
	return sys
}

// Boot arms warm boot. With a snapshot store it first tries the pinned
// "boot" snapshot: if present, built from the *same* prelude source,
// and verifiably restorable, requests go warm with zero compiles — an
// O(restore) process start. Otherwise (or with no store) it cold
// compiles the prelude once and checkpoints. Returns an error only if
// the prelude itself does not compile; snapshot trouble always degrades
// to the cold path.
func (s *Server) Boot() error {
	// Resident sessions revive (or are reported lost) regardless of how
	// the prelude boots.
	defer s.restoreSessions()
	if s.cfg.Prelude == "" {
		return nil
	}
	if st := s.cfg.Snapshots; st != nil {
		snap, err := st.Load(snapBootName)
		switch {
		case err == nil && snap.Meta.SourceHash != snapshot.HashSources([]string{s.cfg.Prelude}):
			// The prelude changed since this snapshot was written: it is
			// valid but stale. Fall through to recompile and re-checkpoint.
			s.log.LogAttrs(nil, slog.LevelInfo, "boot snapshot stale, recompiling prelude")
		case err == nil:
			if _, rerr := core.RestoreSystem(s.sysOptions(), snap); rerr == nil {
				s.bootSnap.Store(snap)
				s.flight.Record(obs.Event{Kind: obs.EvSnapshotRestore, Unit: snapBootName})
				s.log.LogAttrs(nil, slog.LevelInfo, "warm boot from snapshot",
					slog.String("image", snap.Meta.ImageHash))
				return nil
			} else {
				// Decoded cleanly but does not reproduce its recorded image.
				s.flight.Record(obs.Event{Kind: obs.EvSnapshotFallback,
					Unit: snapBootName, Msg: rerr.Error()})
				s.log.LogAttrs(nil, slog.LevelWarn, "boot snapshot failed verification",
					slog.String("err", rerr.Error()))
			}
		case errors.Is(err, snapshot.ErrNotFound):
			// First boot in this directory: cold compile and checkpoint.
		default:
			// Corrupt or unreadable; the store has quarantined it.
			s.flight.Record(obs.Event{Kind: obs.EvSnapshotFallback,
				Unit: snapBootName, Msg: err.Error()})
			s.log.LogAttrs(nil, slog.LevelWarn, "boot snapshot unusable",
				slog.String("err", err.Error()))
		}
	}
	return s.Checkpoint()
}

// Checkpoint compiles the prelude from scratch, snapshots the result,
// makes it the live boot snapshot, and (with a store configured)
// persists it under the pinned name with the store's crash-safe write
// protocol. cmd/slcd calls this on SIGUSR1; POST /admin/checkpoint is
// the HTTP spelling.
func (s *Server) Checkpoint() error {
	if s.cfg.Prelude == "" {
		return fmt.Errorf("daemon: no prelude configured, nothing to checkpoint")
	}
	sys := core.NewSystem(s.sysOptions())
	if err := sys.LoadString(s.cfg.Prelude); err != nil {
		return fmt.Errorf("daemon: prelude: %w", err)
	}
	snap, err := sys.Snapshot()
	if err != nil {
		return fmt.Errorf("daemon: snapshot prelude: %w", err)
	}
	s.bootSnap.Store(snap)
	if st := s.cfg.Snapshots; st != nil {
		if err := st.Save(snapBootName, snap); err != nil {
			return fmt.Errorf("daemon: checkpoint: %w", err)
		}
	}
	s.mu.Lock()
	s.stats.SnapshotCheckpoints++
	s.mu.Unlock()
	s.flight.Record(obs.Event{Kind: obs.EvSnapshotCheckpoint, Unit: snapBootName,
		Msg: "image=" + snap.Meta.ImageHash})
	s.log.LogAttrs(nil, slog.LevelInfo, "snapshot checkpoint written",
		slog.String("image", snap.Meta.ImageHash))
	return nil
}

// handleCheckpoint is POST /admin/checkpoint.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.Checkpoint(); err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(map[string]any{"ok": false, "error": err.Error()})
		return
	}
	json.NewEncoder(w).Encode(map[string]any{
		"ok":          true,
		"checkpoints": s.Stats().SnapshotCheckpoints,
	})
}
