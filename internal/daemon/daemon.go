// Package daemon is the long-running compile/eval service behind
// cmd/slcd: a local HTTP/JSON API that accepts Lisp source, compiles it
// with the full pipeline, optionally calls a compiled function, and
// returns printed values plus structured diagnostics.
//
// Every request runs in its own fresh core.System — simulator machines
// are not shareable — with its own step and heap budgets, under the
// PR 3 panic-isolation barriers: a panicking, faulted, or runaway unit
// degrades to a positioned diagnostic in the response and the daemon
// keeps serving. The durable compile cache (internal/compilecache) is
// the shared state that makes per-request systems cheap: a warm request
// replays its compilation from disk instead of re-running the middle
// end.
//
// Robustness machinery (DESIGN.md §11):
//
//   - admission control: at most Workers requests execute concurrently
//     and at most QueueDepth more wait; past that the daemon sheds with
//     429 + Retry-After instead of queuing unboundedly
//   - deadlines: each request gets a context deadline (ReqTimeout); when
//     it fires, the request's machine is interrupted cooperatively and
//     the response is a 504 with a structured diagnostic
//   - graceful shutdown: Drain stops admission (503, readiness goes
//     false) and waits for in-flight requests; cmd/slcd wires it to
//     SIGTERM
//   - observability: per-request spans land in a ring buffer exported as
//     JSON off the obs debug mux, next to /healthz and /readyz
package daemon

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compilecache"
	"repro/internal/diag"
	"repro/internal/obs"
	"repro/internal/s1"
	"repro/internal/sched"
	"repro/internal/sexp"
	"repro/internal/snapshot"
)

// Scheduler modes (Config.SchedMode / SLCD_SCHED_MODE).
const (
	// SchedOff is the legacy direct path: a worker semaphore plus a
	// bounded admission queue, no preemption, no gas. Responses are
	// byte-identical to the pre-scheduler daemon.
	SchedOff = "off"
	// SchedOn multiplexes requests over the M:N scheduler: machines
	// preempt at safepoints, tenants get DRR-fair slot shares and gas
	// budgets, and thousands of requests can be resident at once.
	SchedOn = "on"
	// SchedStress is SchedOn with a forced yield at every safepoint —
	// the differential torture mode for the park/resume path.
	SchedStress = "stress"
)

// Config sizes and arms a Server. Zero values take the documented
// defaults.
type Config struct {
	// Workers bounds concurrently executing requests (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker (default 16);
	// admission past Workers+QueueDepth sheds with 429.
	QueueDepth int
	// ReqTimeout is the per-request deadline (default 10s).
	ReqTimeout time.Duration
	// MaxSteps/MaxHeapWords are the per-request machine budgets
	// (0 = the machine defaults / unlimited).
	MaxSteps     int64
	MaxHeapWords int64
	// OptWatchdog bounds each unit's optimizer fixpoint.
	OptWatchdog time.Duration
	// NoTier disables tiered execution in the per-request machines;
	// HotThreshold overrides the promotion threshold (0 = machine
	// default, negative = promote everything at load). See
	// core.Options.
	NoTier       bool
	HotThreshold int64
	// GCNoGen disables generational collection in the per-request
	// machines (-gc-nogen); GCMinorBudget bounds minor-GC pauses
	// (-gc-minor-budget, 0 = no budget). See core.Options.
	GCNoGen       bool
	GCMinorBudget time.Duration
	// Disk is the shared durable compile cache (nil = none).
	Disk *compilecache.Disk
	// Prelude is Lisp source loaded into every request's system before
	// the request's own source (the daemon's standard library). With
	// Snapshots set, the prelude is compiled once and each request
	// restores the verified snapshot — warm boot — instead of
	// recompiling; without it, each request cold-loads the prelude.
	Prelude string
	// Snapshots is the durable snapshot store backing warm boot across
	// process restarts (nil = in-memory warm boot only). See Boot and
	// Checkpoint.
	Snapshots *snapshot.Store
	// SchedMode selects the execution path: SchedOn (the default), the
	// legacy SchedOff path, or SchedStress. Empty falls back to the
	// SLCD_SCHED_MODE environment variable, then to SchedOn — the env
	// spelling is what the CI differential legs use.
	SchedMode string
	// SchedWorkers bounds concurrently *executing* machines under the
	// scheduler (default: Workers). Requests beyond it park at
	// safepoints instead of queuing at admission, so many more than
	// SchedWorkers requests can be resident.
	SchedWorkers int
	// GasRate is each tenant's gas refill in simulated S-1 cycles per
	// second (0 = gas metering off); GasBurst is the bucket capacity
	// (default 10×GasRate). An exhausted tenant gets a typed 429, not a
	// deadline 504.
	GasRate  int64
	GasBurst int64
	// MaxSessions bounds resident sessions (default 10000);
	// SessionIdleTTL expires sessions idle longer than it (0 = never).
	MaxSessions    int
	SessionIdleTTL time.Duration
	// Fault is the injection plan; a matching deadline fault makes a
	// request behave as if its deadline had already expired.
	Fault *diag.Plan
	// Flight is the always-on event recorder shared with the rest of the
	// process (nil = the server builds its own; the recorder is never
	// off).
	Flight *obs.Flight
	// Logger receives structured per-request log records (nil = discard).
	Logger *slog.Logger
}

// DiagJSON is one diagnostic in the response body.
type DiagJSON struct {
	Severity string `json:"severity"`
	Unit     string `json:"unit,omitempty"`
	Phase    string `json:"phase,omitempty"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
	Msg      string `json:"msg"`
}

// Request is the body of POST /compile and POST /run.
type Request struct {
	// Source is the Lisp program text: defuns are compiled, other
	// top-level forms run on the simulator.
	Source string `json:"source"`
	// Fn, for /run, names the compiled function to call after loading.
	Fn string `json:"fn,omitempty"`
	// Args are the call arguments as printed S-expressions.
	Args []string `json:"args,omitempty"`
	// Tenant and Session are optional routing labels, carried through
	// logs, spans and flight events (the M:N scheduler's future keys).
	Tenant  string `json:"tenant,omitempty"`
	Session string `json:"session,omitempty"`
}

// Response is the body of every API reply (including sheds and
// timeouts, which additionally use the HTTP status code).
type Response struct {
	OK bool `json:"ok"`
	// Value is the printed value of the call (/run) or of the last
	// top-level form (/compile).
	Value string `json:"value,omitempty"`
	// Defs lists the functions compiled by this request.
	Defs []string `json:"defs,omitempty"`
	// Session echoes the session id a request created or ran against.
	Session     string     `json:"session,omitempty"`
	Diagnostics []DiagJSON `json:"diagnostics,omitempty"`
	TimedOut    bool       `json:"timed_out,omitempty"`
	// GasExhausted marks a 429 caused by the tenant's gas budget (the
	// program ran out of paid-for cycles) as opposed to load shedding.
	GasExhausted bool    `json:"gas_exhausted,omitempty"`
	DurationMs   float64 `json:"duration_ms"`
	// status, when non-zero, overrides the HTTP status the handler would
	// derive from OK/TimedOut (sessions' 404/409, gas's 429). Internal.
	status int
	// TraceID is the request's W3C trace id (accepted from the incoming
	// traceparent header or generated); the same id is echoed in the
	// response traceparent header and stamped on the daemon span, the
	// flight events and the Chrome trace.
	TraceID string `json:"trace_id,omitempty"`
	// Trace, present when the request asked for ?trace=1, is the
	// request's Chrome trace-event JSON: compile phase spans plus the
	// runtime events (GC pauses, tier promotions, cache traffic) that
	// carried this trace id.
	Trace json.RawMessage `json:"trace,omitempty"`
}

// Stats are the daemon's lifetime counters, exported as metrics.
type Stats struct {
	Accepted  int64 `json:"accepted"`
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"` // compile/run errors (structured, served)
	Shed      int64 `json:"shed"`
	TimedOut  int64 `json:"timed_out"`
	Panics    int64 `json:"panics"` // requests that hit the last-resort barrier
	Drained   int64 `json:"drained"`
	// Tier counters aggregate the per-request machines' tiered-execution
	// activity (promotions to hot code, trace re-fusions, call inline
	// cache fills) over the daemon's lifetime.
	TierPromotions int64 `json:"tier_promotions"`
	TierRefusions  int64 `json:"tier_refusions"`
	TierCacheFills int64 `json:"tier_cache_fills"`
	// Snapshot counters: per-request systems served from the boot
	// snapshot, restores that failed verification and fell back to a
	// cold compile, and checkpoints written.
	SnapshotRestores        int64 `json:"snapshot_restores"`
	SnapshotRestoreFailures int64 `json:"snapshot_restore_failures"`
	SnapshotCheckpoints     int64 `json:"snapshot_checkpoints"`
	// GC counters aggregate the per-request machines' collector activity
	// (full and minor collections, words promoted out of the nursery).
	GCFullCollections  int64 `json:"gc_full_collections"`
	GCMinorCollections int64 `json:"gc_minor_collections"`
	GCWordsPromoted    int64 `json:"gc_words_promoted"`
	// ArenaRecycles counts request machines built on a recycled storage
	// arena (heap/stack/record slices reused from an earlier request).
	ArenaRecycles int64 `json:"arena_recycles"`
	// GasExhausted counts requests rejected or halted by a dry tenant
	// gas bucket (typed 429s, distinct from Shed).
	GasExhausted int64 `json:"gas_exhausted"`
	// Session lifecycle counters. Restored counts sessions revived from
	// drain-time checkpoints at boot; Lost counts sessions the manifest
	// promised but no restorable checkpoint backed (a hard kill).
	SessionsCreated  int64 `json:"sessions_created"`
	SessionsExpired  int64 `json:"sessions_expired"`
	SessionsRestored int64 `json:"sessions_restored"`
	SessionsLost     int64 `json:"sessions_lost"`
}

// span is one request's record in the export ring. New fields are
// omitempty/additive so the JSON shape stays backward-compatible with
// the PR 5 consumers that read id/path/status/start/duration_ms.
type span struct {
	ID         int64   `json:"id"`
	Path       string  `json:"path"`
	Status     int     `json:"status"`
	OK         bool    `json:"ok"`
	TimedOut   bool    `json:"timed_out,omitempty"`
	Start      string  `json:"start"`
	DurationMs float64 `json:"duration_ms"`
	Note       string  `json:"note,omitempty"`
	// StartMonoNs is the request start on the server's monotonic clock
	// (nanoseconds since the server was built) — unlike Start it orders
	// and spaces spans exactly across wall-clock adjustments.
	StartMonoNs int64 `json:"start_mono_ns"`
	// TraceID links the span to the request's flight events and Chrome
	// trace.
	TraceID string `json:"trace_id,omitempty"`
	Tenant  string `json:"tenant,omitempty"`
	Session string `json:"session,omitempty"`
}

// spanRingSize bounds the request-span export.
const spanRingSize = 256

// Server is the daemon. It is an http.Handler serving the request API;
// RegisterDebug hangs the health/readiness/span endpoints off a debug
// mux.
type Server struct {
	cfg Config
	mux *http.ServeMux

	// admission counts executing + queued requests; workers is the
	// execution semaphore. Both serve only the legacy SchedOff path.
	admission chan struct{}
	workers   chan struct{}
	// queuedN is the decoded-but-not-yet-executing request count on the
	// legacy path. One atomic counter, because the old
	// len(admission)-len(workers) gauge read two channels at different
	// instants and could go negative under load.
	queuedN atomic.Int64

	// sched is the M:N machine scheduler (nil in SchedOff mode);
	// sessions is the resident-session store (always present).
	sched    *sched.Sched
	sessions *sessionStore

	draining atomic.Bool
	inflight sync.WaitGroup

	// flight is the always-on event recorder; log the structured logger.
	// epoch anchors StartMonoNs.
	flight *obs.Flight
	log    *slog.Logger
	epoch  time.Time

	// Latency histograms (Prometheus histogram series on /metrics).
	reqHist     *obs.Histogram
	phaseHist   *obs.Histogram
	gcHist      *obs.Histogram
	gcMinorHist *obs.Histogram
	cyclesHist  *obs.Histogram
	schedHist   *obs.Histogram

	// arenas recycles request machines' large slices (s1.Arena): a
	// finished request releases its heap/stack/record storage here and
	// the next request resets it to the high-water mark instead of
	// reallocating.
	arenas sync.Pool

	// bootSnap is the current verified prelude snapshot; per-request
	// systems restore from it instead of recompiling the prelude.
	bootSnap atomic.Pointer[snapshot.Snapshot]

	mu     sync.Mutex
	stats  Stats
	nextID int64
	ring   []span
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.ReqTimeout <= 0 {
		cfg.ReqTimeout = 10 * time.Second
	}
	if cfg.Flight == nil {
		cfg.Flight = obs.NewFlight(obs.DefaultFlightSize)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
	}
	if cfg.SchedMode == "" {
		cfg.SchedMode = os.Getenv("SLCD_SCHED_MODE")
	}
	switch cfg.SchedMode {
	case SchedOff, SchedStress:
	default:
		cfg.SchedMode = SchedOn
	}
	if cfg.SchedWorkers <= 0 {
		cfg.SchedWorkers = cfg.Workers
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 10000
	}
	s := &Server{
		cfg:       cfg,
		admission: make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		workers:   make(chan struct{}, cfg.Workers),
		flight:    cfg.Flight,
		log:       cfg.Logger,
		epoch:     time.Now(),
		reqHist: obs.NewHistogram("slcd_request_seconds",
			"Request wall time in seconds.", obs.DurationBuckets()),
		phaseHist: obs.NewHistogram("slcd_compile_phase_seconds",
			"Compile pipeline phase durations in seconds.", obs.DurationBuckets()),
		gcHist: obs.NewHistogram("slcd_gc_pause_seconds",
			"Simulator full-GC pause durations in seconds.", obs.ExpBuckets(1e-6, 2, 20)),
		gcMinorHist: obs.NewHistogram("slcd_gc_minor_pause_seconds",
			"Simulator minor-GC pause durations in seconds.", obs.ExpBuckets(1e-6, 2, 20)),
		cyclesHist: obs.NewHistogram("slcd_eval_cycles",
			"Simulated S-1 cycles per request.", obs.CycleBuckets()),
		schedHist: obs.NewHistogram("slcd_sched_wait_seconds",
			"Scheduling latency: time parked tasks waited for a slot.", obs.DurationBuckets()),
	}
	s.sessions = newSessionStore(cfg.MaxSessions, cfg.SessionIdleTTL)
	if cfg.SchedMode != SchedOff {
		s.sched = sched.New(sched.Config{
			Workers: cfg.SchedWorkers,
			// Same backlog bound as the legacy admission queue, so the
			// shed point is mode-independent.
			MaxQueued: cfg.QueueDepth,
			GasRate:   cfg.GasRate,
			GasBurst:  cfg.GasBurst,
			Stress:    cfg.SchedMode == SchedStress,
			OnEvent: func(kind, tenant string, d time.Duration) {
				if kind == sched.EvResume {
					s.schedHist.ObserveDuration(d)
				}
				s.flight.Record(obs.Event{Kind: kind, Tenant: tenant, DurNs: d.Nanoseconds()})
			},
		})
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /compile", func(w http.ResponseWriter, r *http.Request) { s.handle(w, r, false) })
	s.mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) { s.handle(w, r, true) })
	s.mux.HandleFunc("POST /admin/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("POST /session", s.handleSessionCreate)
	s.mux.HandleFunc("GET /session", s.handleSessionList)
	s.mux.HandleFunc("GET /session/{id}", s.handleSessionGet)
	s.mux.HandleFunc("DELETE /session/{id}", s.handleSessionDelete)
	if cfg.Snapshots != nil {
		// Quarantines and other store events land in the flight recorder.
		cfg.Snapshots.SetEventHook(func(kind, name string) {
			s.flight.Record(obs.Event{Kind: kind, Unit: name})
		})
	}
	return s
}

// Flight returns the server's event recorder (never nil after New).
func (s *Server) Flight() *obs.Flight { return s.flight }

// Register wires the server's metrics, histograms and flight recorder
// into an obs.Registry (the /metrics + /debug/events provider).
func (s *Server) Register(reg *obs.Registry) {
	reg.AddMetrics(s.Metrics).
		AddHistogram(s.reqHist).
		AddHistogram(s.phaseHist).
		AddHistogram(s.gcHist).
		AddHistogram(s.gcMinorHist).
		AddHistogram(s.cyclesHist).
		AddHistogram(s.schedHist).
		SetFlight(s.flight)
}

// ServeHTTP makes the Server mountable directly (tests use
// httptest.NewServer(s)).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Stats returns a copy of the lifetime counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Metrics exposes the counters in the obs metrics-snapshot shape.
func (s *Server) Metrics() map[string]float64 {
	st := s.Stats()
	m := map[string]float64{
		"slcd_requests_accepted":           float64(st.Accepted),
		"slcd_requests_ok":                 float64(st.Succeeded),
		"slcd_requests_failed":             float64(st.Failed),
		"slcd_requests_shed":               float64(st.Shed),
		"slcd_requests_timeout":            float64(st.TimedOut),
		"slcd_requests_panic":              float64(st.Panics),
		"slcd_inflight":                    float64(len(s.workers)),
		"slcd_queued":                      float64(s.queuedN.Load()),
		"slcd_tier_promotions_total":       float64(st.TierPromotions),
		"slcd_tier_refusions_total":        float64(st.TierRefusions),
		"slcd_tier_call_cache_fills_total": float64(st.TierCacheFills),
		// 0 = closed, 1 = open, 2 = half-open (compilecache.BreakerState
		// order); 0 when no disk cache is configured.
		"slcd_cache_breaker_state":             0,
		"slcd_snapshot_restores_total":         float64(st.SnapshotRestores),
		"slcd_snapshot_restore_failures_total": float64(st.SnapshotRestoreFailures),
		"slcd_snapshot_checkpoints_total":      float64(st.SnapshotCheckpoints),
		"slcd_gc_full_total":                   float64(st.GCFullCollections),
		"slcd_gc_minor_total":                  float64(st.GCMinorCollections),
		"slcd_gc_promoted_words_total":         float64(st.GCWordsPromoted),
		"slcd_arena_recycles_total":            float64(st.ArenaRecycles),
	}
	if s.cfg.Disk != nil {
		m["slcd_cache_breaker_state"] = float64(s.cfg.Disk.Breaker().State())
	}
	m["slcd_sessions_resident"] = float64(s.sessions.count())
	m["slcd_sessions_created_total"] = float64(st.SessionsCreated)
	m["slcd_sessions_expired_total"] = float64(st.SessionsExpired)
	m["slcd_sessions_restored_total"] = float64(st.SessionsRestored)
	m["slcd_sessions_lost_total"] = float64(st.SessionsLost)
	m["slcd_gas_exhausted_total"] = float64(st.GasExhausted)
	if s.sched != nil {
		for k, v := range s.sched.Metrics() {
			m[k] = v
		}
		// Under the scheduler the meaningful gauges are its own: running
		// machines and the cross-tenant run queue.
		m["slcd_inflight"] = m["slcd_sched_running"]
		m["slcd_queued"] = m["slcd_sched_queued"]
	}
	return m
}

// Degraded lists the subsystems currently operating in a reduced mode:
// the daemon still serves (readiness stays true) but an operator should
// look. Surfaced as the "degraded" array on /readyz.
func (s *Server) Degraded() []string {
	var out []string
	if d := s.cfg.Disk; d != nil && d.Breaker().State() != compilecache.BreakerClosed {
		out = append(out, "cache-breaker-open")
	}
	if s.cfg.Prelude != "" && s.cfg.Snapshots != nil && s.bootSnap.Load() == nil {
		// Warm boot is configured but no verified snapshot is live:
		// every request is paying a cold prelude compile.
		out = append(out, "snapshot-cold")
	}
	if n := s.sessions.lostCount(); n > 0 {
		// The session manifest promised sessions no checkpoint backed —
		// a hard kill lost them. The daemon serves (new sessions work);
		// the operator learns the old ones are gone.
		out = append(out, "session-store")
	}
	return out
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops admitting requests (429s become 503s, readiness goes
// false) and blocks until every in-flight request has completed or ctx
// expires. It returns nil on a clean drain.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		// Every request is out; all sessions are idle. Checkpoint them so
		// the next boot can revive them with state intact.
		s.checkpointSessions()
		s.mu.Lock()
		s.stats.Drained++
		s.mu.Unlock()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("daemon: drain deadline expired with requests in flight")
	}
}

// RegisterDebug hangs /healthz, /readyz and /requests off mux (the obs
// -debug-addr server).
func (s *Server) RegisterDebug(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if s.draining.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{"ok": false, "reason": "draining"})
			return
		}
		// Degraded subsystems (open cache breaker, cold snapshot) are
		// reported but keep readiness true: the daemon serves correct
		// results either way, just slower.
		out := map[string]any{"ok": true}
		if deg := s.Degraded(); len(deg) > 0 {
			out["degraded"] = deg
		}
		json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("/requests", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		out := struct {
			Stats  Stats  `json:"stats"`
			Recent []span `json:"recent"`
		}{Stats: s.stats, Recent: append([]span(nil), s.ring...)}
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
}

// record appends one finished request to the span ring.
func (s *Server) record(sp span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	sp.ID = s.nextID
	if len(s.ring) >= spanRingSize {
		s.ring = s.ring[1:]
	}
	s.ring = append(s.ring, sp)
}

// writeJSON sends resp with the given status.
func writeJSON(w http.ResponseWriter, status int, resp *Response) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}

// ParseTraceparent extracts the trace id from a W3C traceparent header
// value ("00-<32 hex>-<16 hex>-<2 hex>"). Returns "" when the header is
// absent or malformed (the caller then generates a fresh id).
func ParseTraceparent(h string) string {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) < 4 || len(parts[0]) != 2 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return ""
	}
	tid := strings.ToLower(parts[1])
	if !isHex(tid) || !isHex(strings.ToLower(parts[2])) || tid == strings.Repeat("0", 32) {
		return ""
	}
	return tid
}

func isHex(s string) bool {
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// randHex returns n random bytes hex-encoded (2n characters).
func randHex(n int) string {
	b := make([]byte, n)
	rand.Read(b)
	return hex.EncodeToString(b)
}

// handle is the request lifecycle: admission, trace-context setup,
// deadline, execution with the panic barrier, span recording, flight
// events, structured log line.
func (s *Server) handle(w http.ResponseWriter, r *http.Request, call bool) {
	start := time.Now()
	startMono := time.Since(s.epoch).Nanoseconds()
	// Trace context: accept the caller's traceparent or start a new
	// trace; either way the daemon is one new span within it, and the
	// response header carries trace id + our span id back.
	traceID := ParseTraceparent(r.Header.Get("traceparent"))
	if traceID == "" {
		traceID = randHex(16)
	}
	spanID := randHex(8)
	w.Header().Set("traceparent", "00-"+traceID+"-"+spanID+"-01")

	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, &Response{
			Diagnostics: []DiagJSON{{Severity: "error", Phase: "admission",
				Msg: "server is draining"}},
			DurationMs: msSince(start), TraceID: traceID,
		})
		return
	}
	if s.sched != nil {
		s.handleSched(w, r, call, start, startMono, traceID)
		return
	}
	// Admission: a slot in the bounded queue, or an immediate shed.
	select {
	case s.admission <- struct{}{}:
	default:
		s.shed(w, r, start, startMono, traceID)
		return
	}
	defer func() { <-s.admission }()
	s.queuedN.Add(1)
	dequeued := false
	dequeue := func() {
		if !dequeued {
			dequeued = true
			s.queuedN.Add(-1)
		}
	}
	defer dequeue()
	s.inflight.Add(1)
	defer s.inflight.Done()

	var req Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, &Response{
			Diagnostics: []DiagJSON{{Severity: "error", Phase: "request",
				Msg: "bad request body: " + err.Error()}},
			DurationMs: msSince(start), TraceID: traceID,
		})
		return
	}

	// Wait (bounded, since admission is bounded) for a worker slot.
	s.workers <- struct{}{}
	dequeue()
	defer func() { <-s.workers }()

	s.mu.Lock()
	s.stats.Accepted++
	s.mu.Unlock()
	s.flight.Record(obs.Event{Kind: obs.EvReqStart, Trace: traceID,
		Unit: r.URL.Path, Tenant: req.Tenant, Session: req.Session})

	timeout := s.cfg.ReqTimeout
	if s.cfg.Fault.Should(diag.KindDeadline, "request", req.Fn) {
		// Injected deadline: the request starts life already expired.
		timeout = -time.Nanosecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	resp := s.execute(ctx, &req, call, traceID, r.URL.Query().Get("trace") == "1", nil)
	s.finish(w, r, &req, resp, start, startMono, traceID)
}

// handleSched is the request lifecycle under the M:N scheduler:
// admission, queuing and slot grants all live in sched.Run, and the
// machine's safepoints (wired to Task.Safepoint inside execute) are
// where preemption and gas metering happen. The deadline covers queue
// wait too: a parked request whose context dies leaves the queue and is
// answered 504 without ever running.
func (s *Server) handleSched(w http.ResponseWriter, r *http.Request, call bool, start time.Time, startMono int64, traceID string) {
	s.inflight.Add(1)
	defer s.inflight.Done()

	var req Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, &Response{
			Diagnostics: []DiagJSON{{Severity: "error", Phase: "request",
				Msg: "bad request body: " + err.Error()}},
			DurationMs: msSince(start), TraceID: traceID,
		})
		return
	}

	timeout := s.cfg.ReqTimeout
	if s.cfg.Fault.Should(diag.KindDeadline, "request", req.Fn) {
		// Injected deadline: the request starts life already expired.
		timeout = -time.Nanosecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	var resp *Response
	runErr := s.sched.Run(ctx, req.Tenant, func(tk *sched.Task) error {
		s.mu.Lock()
		s.stats.Accepted++
		s.mu.Unlock()
		s.flight.Record(obs.Event{Kind: obs.EvReqStart, Trace: traceID,
			Unit: r.URL.Path, Tenant: req.Tenant, Session: req.Session})
		resp = s.execute(ctx, &req, call, traceID, r.URL.Query().Get("trace") == "1", tk)
		return nil
	})

	var ge *sched.GasError
	switch {
	case errors.Is(runErr, sched.ErrSaturated):
		s.shed(w, r, start, startMono, traceID)
		return
	case errors.As(runErr, &ge):
		// The tenant's gas bucket ran dry — at admission (fail-fast,
		// resp == nil) or mid-run at a safepoint. Either way the answer
		// is the typed 429, not a deadline 504: the program was not slow,
		// it was out of budget.
		w.Header().Set("Retry-After", retryAfterSecs(ge.RetryAfter))
		resp = &Response{
			GasExhausted: true,
			status:       http.StatusTooManyRequests,
			Diagnostics: []DiagJSON{{Severity: "error", Phase: "gas",
				Msg: ge.Error()}},
		}
	case resp == nil && errors.Is(runErr, context.DeadlineExceeded):
		resp = &Response{TimedOut: true,
			Diagnostics: []DiagJSON{{Severity: "error", Phase: "deadline",
				Msg: "request deadline exceeded while queued"}}}
	case resp == nil:
		// Client went away while the request was parked in the queue.
		resp = &Response{status: http.StatusServiceUnavailable,
			Diagnostics: []DiagJSON{{Severity: "error", Phase: "admission",
				Msg: "request canceled while queued"}}}
	}
	s.finish(w, r, &req, resp, start, startMono, traceID)
}

// retryAfterSecs renders a duration as a Retry-After header value,
// rounded up so the client never retries early.
func retryAfterSecs(d time.Duration) string {
	secs := int64(d/time.Second) + 1
	return fmt.Sprintf("%d", secs)
}

// shed answers a saturated-admission rejection (429 + Retry-After).
func (s *Server) shed(w http.ResponseWriter, r *http.Request, start time.Time, startMono int64, traceID string) {
	s.mu.Lock()
	s.stats.Shed++
	s.mu.Unlock()
	s.flight.Record(obs.Event{Kind: obs.EvLoadShed, Trace: traceID, Unit: r.URL.Path})
	s.log.LogAttrs(r.Context(), slog.LevelWarn, "request shed",
		slog.String("trace_id", traceID), slog.String("path", r.URL.Path))
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusTooManyRequests, &Response{
		Diagnostics: []DiagJSON{{Severity: "error", Phase: "admission",
			Msg: "server saturated, retry later"}},
		DurationMs: msSince(start), TraceID: traceID,
	})
	s.record(span{Path: r.URL.Path, Status: http.StatusTooManyRequests,
		Start: start.UTC().Format(time.RFC3339Nano), StartMonoNs: startMono,
		DurationMs: msSince(start), Note: "shed", TraceID: traceID})
}

// finish maps the response to an HTTP status, updates counters, and
// emits the span, flight events and log line — the shared tail of both
// execution paths.
func (s *Server) finish(w http.ResponseWriter, r *http.Request, req *Request, resp *Response, start time.Time, startMono int64, traceID string) {
	resp.DurationMs = msSince(start)
	resp.TraceID = traceID
	s.reqHist.ObserveDuration(time.Since(start))
	status := http.StatusOK
	switch {
	case resp.status != 0:
		status = resp.status
		s.mu.Lock()
		if resp.GasExhausted {
			s.stats.GasExhausted++
		} else {
			s.stats.Failed++
		}
		s.mu.Unlock()
	case resp.TimedOut:
		status = http.StatusGatewayTimeout
		s.mu.Lock()
		s.stats.TimedOut++
		s.mu.Unlock()
		s.flight.Record(obs.Event{Kind: obs.EvDeadline, Trace: traceID,
			Unit: req.Fn, Tenant: req.Tenant, Session: req.Session})
	case !resp.OK:
		status = http.StatusUnprocessableEntity
		s.mu.Lock()
		s.stats.Failed++
		s.mu.Unlock()
	default:
		s.mu.Lock()
		s.stats.Succeeded++
		s.mu.Unlock()
	}
	writeJSON(w, status, resp)
	dur := time.Since(start)
	s.flight.Record(obs.Event{Kind: obs.EvReqFinish, Trace: traceID,
		Unit: r.URL.Path, DurNs: dur.Nanoseconds(), Msg: fmt.Sprintf("status=%d", status),
		Tenant: req.Tenant, Session: req.Session})
	s.record(span{Path: r.URL.Path, Status: status, OK: resp.OK, TimedOut: resp.TimedOut,
		Start: start.UTC().Format(time.RFC3339Nano), StartMonoNs: startMono,
		DurationMs: msSince(start), Note: firstDiag(resp),
		TraceID: traceID, Tenant: req.Tenant, Session: req.Session})
	level := slog.LevelInfo
	if !resp.OK {
		level = slog.LevelWarn
	}
	s.log.LogAttrs(r.Context(), level, "request served",
		slog.String("trace_id", traceID),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.Bool("ok", resp.OK),
		slog.Bool("timed_out", resp.TimedOut),
		slog.Duration("duration", dur),
		slog.String("fn", req.Fn),
		slog.String("tenant", req.Tenant),
		slog.String("session", req.Session))
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }

func firstDiag(r *Response) string {
	if len(r.Diagnostics) == 0 {
		return ""
	}
	return r.Diagnostics[0].Msg
}

// runtimeTid is the trace thread id carrying runtime instants (GC
// pauses, tier transitions, cache traffic) in per-request exports, kept
// clear of the compile workers' small ids.
const runtimeTid = 99

// execute compiles (and optionally calls) in a fresh per-request system
// under the last-resort panic barrier. The compile pipeline has its own
// per-unit barriers; this one catches anything that escapes them, so a
// wholly unexpected panic still degrades to a structured response.
// Under the scheduler tk is the request's task handle and the machine's
// safepoints are wired to it; on the legacy path tk is nil. A request
// naming a resident session runs in that session's system instead of a
// fresh one.
func (s *Server) execute(ctx context.Context, req *Request, call bool, traceID string, wantTrace bool, tk *sched.Task) (resp *Response) {
	resp = &Response{}
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			s.stats.Panics++
			s.mu.Unlock()
			s.flight.Record(obs.Event{Kind: obs.EvPanic, Trace: traceID,
				Unit: req.Fn, Msg: fmt.Sprintf("%v", r),
				Tenant: req.Tenant, Session: req.Session})
			resp.OK = false
			resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
				Severity: "error", Phase: "request",
				Msg: fmt.Sprintf("internal panic: %v", r),
			})
		}
	}()
	if req.Session != "" {
		s.executeSession(ctx, req, call, traceID, tk, resp)
		return resp
	}

	// Every request gets its own phase-span recorder: the spans feed the
	// phase-latency histogram, and when the caller asked for ?trace=1
	// they become its Chrome trace.
	rec := obs.NewRecorder()
	opts := s.sysOptions()
	opts.Obs = rec
	opts.TraceID = traceID
	// Build the request machine on a recycled storage arena when the pool
	// has one: the heap/stack/record slices reset to the previous
	// request's high-water mark instead of reallocating.
	ar, _ := s.arenas.Get().(*s1.Arena)
	if ar == nil {
		ar = &s1.Arena{}
	}
	recycled := ar.Uses() > 0
	opts.Arena = ar
	sys := s.bootSystem(opts, traceID)
	// Fold the machine's collector activity into the lifetime counters
	// and hand its storage back to the arena pool on every exit path.
	// Registered first so it runs after the other defers are done
	// reading the machine.
	defer func() {
		gm := sys.Machine.GCMeters
		s.mu.Lock()
		s.stats.GCFullCollections += gm.Collections
		s.stats.GCMinorCollections += gm.MinorCollections
		s.stats.GCWordsPromoted += gm.WordsPromoted
		if recycled {
			s.stats.ArenaRecycles++
		}
		s.mu.Unlock()
		if sys.Machine.ReleaseArena() {
			s.arenas.Put(ar)
		}
	}()
	// Tee the machine's runtime events into the GC-pause histograms on
	// top of the flight recording core already wired up.
	if prev := sys.Machine.OnEvent; prev != nil {
		sys.Machine.OnEvent = func(kind, unit string, d time.Duration) {
			switch kind {
			case obs.EvGCPause:
				s.gcHist.ObserveDuration(d)
			case obs.EvGCMinorPause:
				s.gcMinorHist.ObserveDuration(d)
			}
			prev(kind, unit, d)
		}
	}
	// Under the scheduler every machine safepoint becomes a scheduling
	// and gas-metering point.
	if tk != nil {
		sys.Machine.OnSafepoint = tk.Safepoint
	}
	// The deadline interrupts the machine cooperatively: Run checks the
	// flag every few hundred dispatches and unwinds with a RuntimeError.
	stop := context.AfterFunc(ctx, func() { sys.Machine.Interrupt() })
	defer stop()
	// Feed the phase and cycle histograms (and the optional per-request
	// trace) on every exit path, including the panic barrier.
	defer func() {
		for _, sp := range rec.Spans() {
			s.phaseHist.ObserveDuration(sp.End - sp.Start)
		}
		if c := sys.Machine.Stats.Cycles; c > 0 {
			s.cyclesHist.Observe(float64(c))
		}
		if wantTrace {
			if tr := s.buildRequestTrace(rec, traceID); tr != nil {
				resp.Trace = tr
			}
		}
	}()
	// Fold this request machine's tier activity into the lifetime
	// counters on every exit path, including the panic barrier.
	defer func() {
		ts := sys.Machine.TierStats()
		if ts.Promotions == 0 && ts.CacheFills == 0 {
			return
		}
		s.mu.Lock()
		s.stats.TierPromotions += ts.Promotions
		s.stats.TierRefusions += ts.Refusions
		s.stats.TierCacheFills += ts.CacheFills
		s.mu.Unlock()
	}()

	v, list := sys.EvalStringDiag(req.Source)
	for _, d := range list.All() {
		resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
			Severity: d.Severity.String(), Unit: d.Unit, Phase: d.Phase,
			Line: d.Line, Col: d.Col, Msg: d.Msg,
		})
	}
	if ctx.Err() != nil {
		resp.TimedOut = true
		resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
			Severity: "error", Phase: "deadline",
			Msg: "request deadline exceeded",
		})
		return resp
	}
	if list.HasErrors() {
		return resp
	}
	for name := range sys.Defs {
		resp.Defs = append(resp.Defs, name)
	}
	if v != nil {
		resp.Value = sexp.Print(v)
	}

	if call && req.Fn != "" {
		args := make([]sexp.Value, len(req.Args))
		for i, a := range req.Args {
			av, err := sexp.ReadOne(a)
			if err != nil {
				resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
					Severity: "error", Phase: "request",
					Msg: fmt.Sprintf("argument %d: %v", i, err),
				})
				return resp
			}
			args[i] = av
		}
		cv, err := sys.Call(req.Fn, args...)
		if err != nil {
			if ctx.Err() != nil {
				resp.TimedOut = true
				resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
					Severity: "error", Unit: req.Fn, Phase: "deadline",
					Msg: "request deadline exceeded: " + err.Error(),
				})
			} else {
				resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
					Severity: "error", Unit: req.Fn, Phase: "run", Msg: err.Error(),
				})
			}
			return resp
		}
		resp.Value = sexp.Print(cv)
	}
	resp.OK = true
	return resp
}

// buildRequestTrace renders one request's Chrome trace: the compile
// phase spans recorded by rec plus every flight event stamped with the
// request's trace id, merged as instants on a dedicated "runtime"
// thread. Returns nil if the trace cannot be rendered.
func (s *Server) buildRequestTrace(rec *obs.Recorder, traceID string) json.RawMessage {
	epoch := rec.Epoch().UnixNano()
	evs := s.flight.Snapshot(obs.Filter{Trace: traceID})
	if len(evs) > 0 {
		rec.SetThreadName(runtimeTid, "runtime")
	}
	for _, ev := range evs {
		// Flight events carry wall-clock stamps; the recorder wants
		// offsets from its epoch. Events recorded before the system was
		// built (admission, req-start) clamp to the trace origin.
		ts := time.Duration(ev.WallNs - epoch)
		if ts < 0 {
			ts = 0
		}
		args := map[string]any{"sev": ev.Sev}
		if ev.Unit != "" {
			args["unit"] = ev.Unit
		}
		if ev.Msg != "" {
			args["msg"] = ev.Msg
		}
		if ev.DurNs > 0 {
			args["dur_ns"] = ev.DurNs
		}
		rec.AddInstant(obs.Instant{
			Name: ev.Kind, Cat: "flight", Ts: ts, Worker: runtimeTid, Args: args,
		})
	}
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		return nil
	}
	return json.RawMessage(buf.Bytes())
}
