// Package daemon is the long-running compile/eval service behind
// cmd/slcd: a local HTTP/JSON API that accepts Lisp source, compiles it
// with the full pipeline, optionally calls a compiled function, and
// returns printed values plus structured diagnostics.
//
// Every request runs in its own fresh core.System — simulator machines
// are not shareable — with its own step and heap budgets, under the
// PR 3 panic-isolation barriers: a panicking, faulted, or runaway unit
// degrades to a positioned diagnostic in the response and the daemon
// keeps serving. The durable compile cache (internal/compilecache) is
// the shared state that makes per-request systems cheap: a warm request
// replays its compilation from disk instead of re-running the middle
// end.
//
// Robustness machinery (DESIGN.md §11):
//
//   - admission control: at most Workers requests execute concurrently
//     and at most QueueDepth more wait; past that the daemon sheds with
//     429 + Retry-After instead of queuing unboundedly
//   - deadlines: each request gets a context deadline (ReqTimeout); when
//     it fires, the request's machine is interrupted cooperatively and
//     the response is a 504 with a structured diagnostic
//   - graceful shutdown: Drain stops admission (503, readiness goes
//     false) and waits for in-flight requests; cmd/slcd wires it to
//     SIGTERM
//   - observability: per-request spans land in a ring buffer exported as
//     JSON off the obs debug mux, next to /healthz and /readyz
package daemon

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/compilecache"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/sexp"
)

// Config sizes and arms a Server. Zero values take the documented
// defaults.
type Config struct {
	// Workers bounds concurrently executing requests (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds requests waiting for a worker (default 16);
	// admission past Workers+QueueDepth sheds with 429.
	QueueDepth int
	// ReqTimeout is the per-request deadline (default 10s).
	ReqTimeout time.Duration
	// MaxSteps/MaxHeapWords are the per-request machine budgets
	// (0 = the machine defaults / unlimited).
	MaxSteps     int64
	MaxHeapWords int64
	// OptWatchdog bounds each unit's optimizer fixpoint.
	OptWatchdog time.Duration
	// NoTier disables tiered execution in the per-request machines;
	// HotThreshold overrides the promotion threshold (0 = machine
	// default, negative = promote everything at load). See
	// core.Options.
	NoTier       bool
	HotThreshold int64
	// Disk is the shared durable compile cache (nil = none).
	Disk *compilecache.Disk
	// Fault is the injection plan; a matching deadline fault makes a
	// request behave as if its deadline had already expired.
	Fault *diag.Plan
}

// DiagJSON is one diagnostic in the response body.
type DiagJSON struct {
	Severity string `json:"severity"`
	Unit     string `json:"unit,omitempty"`
	Phase    string `json:"phase,omitempty"`
	Line     int    `json:"line,omitempty"`
	Col      int    `json:"col,omitempty"`
	Msg      string `json:"msg"`
}

// Request is the body of POST /compile and POST /run.
type Request struct {
	// Source is the Lisp program text: defuns are compiled, other
	// top-level forms run on the simulator.
	Source string `json:"source"`
	// Fn, for /run, names the compiled function to call after loading.
	Fn string `json:"fn,omitempty"`
	// Args are the call arguments as printed S-expressions.
	Args []string `json:"args,omitempty"`
}

// Response is the body of every API reply (including sheds and
// timeouts, which additionally use the HTTP status code).
type Response struct {
	OK bool `json:"ok"`
	// Value is the printed value of the call (/run) or of the last
	// top-level form (/compile).
	Value string `json:"value,omitempty"`
	// Defs lists the functions compiled by this request.
	Defs        []string   `json:"defs,omitempty"`
	Diagnostics []DiagJSON `json:"diagnostics,omitempty"`
	TimedOut    bool       `json:"timed_out,omitempty"`
	DurationMs  float64    `json:"duration_ms"`
}

// Stats are the daemon's lifetime counters, exported as metrics.
type Stats struct {
	Accepted  int64 `json:"accepted"`
	Succeeded int64 `json:"succeeded"`
	Failed    int64 `json:"failed"` // compile/run errors (structured, served)
	Shed      int64 `json:"shed"`
	TimedOut  int64 `json:"timed_out"`
	Panics    int64 `json:"panics"` // requests that hit the last-resort barrier
	Drained   int64 `json:"drained"`
	// Tier counters aggregate the per-request machines' tiered-execution
	// activity (promotions to hot code, trace re-fusions, call inline
	// cache fills) over the daemon's lifetime.
	TierPromotions int64 `json:"tier_promotions"`
	TierRefusions  int64 `json:"tier_refusions"`
	TierCacheFills int64 `json:"tier_cache_fills"`
}

// span is one request's record in the export ring.
type span struct {
	ID         int64   `json:"id"`
	Path       string  `json:"path"`
	Status     int     `json:"status"`
	OK         bool    `json:"ok"`
	TimedOut   bool    `json:"timed_out,omitempty"`
	Start      string  `json:"start"`
	DurationMs float64 `json:"duration_ms"`
	Note       string  `json:"note,omitempty"`
}

// spanRingSize bounds the request-span export.
const spanRingSize = 256

// Server is the daemon. It is an http.Handler serving the request API;
// RegisterDebug hangs the health/readiness/span endpoints off a debug
// mux.
type Server struct {
	cfg Config
	mux *http.ServeMux

	// admission counts executing + queued requests; workers is the
	// execution semaphore.
	admission chan struct{}
	workers   chan struct{}

	draining atomic.Bool
	inflight sync.WaitGroup

	mu     sync.Mutex
	stats  Stats
	nextID int64
	ring   []span
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.ReqTimeout <= 0 {
		cfg.ReqTimeout = 10 * time.Second
	}
	s := &Server{
		cfg:       cfg,
		admission: make(chan struct{}, cfg.Workers+cfg.QueueDepth),
		workers:   make(chan struct{}, cfg.Workers),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /compile", func(w http.ResponseWriter, r *http.Request) { s.handle(w, r, false) })
	s.mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) { s.handle(w, r, true) })
	return s
}

// ServeHTTP makes the Server mountable directly (tests use
// httptest.NewServer(s)).
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Stats returns a copy of the lifetime counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Metrics exposes the counters in the obs metrics-snapshot shape.
func (s *Server) Metrics() map[string]float64 {
	st := s.Stats()
	return map[string]float64{
		"slcd_requests_accepted": float64(st.Accepted),
		"slcd_requests_ok":       float64(st.Succeeded),
		"slcd_requests_failed":   float64(st.Failed),
		"slcd_requests_shed":     float64(st.Shed),
		"slcd_requests_timeout":  float64(st.TimedOut),
		"slcd_requests_panic":    float64(st.Panics),
		"slcd_inflight":          float64(len(s.workers)),
		"slcd_queued":            float64(len(s.admission) - len(s.workers)),
		"slcd_tier_promotions_total":       float64(st.TierPromotions),
		"slcd_tier_refusions_total":        float64(st.TierRefusions),
		"slcd_tier_call_cache_fills_total": float64(st.TierCacheFills),
	}
}

// Draining reports whether Drain has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Drain stops admitting requests (429s become 503s, readiness goes
// false) and blocks until every in-flight request has completed or ctx
// expires. It returns nil on a clean drain.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.mu.Lock()
		s.stats.Drained++
		s.mu.Unlock()
		return nil
	case <-ctx.Done():
		return fmt.Errorf("daemon: drain deadline expired with requests in flight")
	}
}

// RegisterDebug hangs /healthz, /readyz and /requests off mux (the obs
// -debug-addr server).
func (s *Server) RegisterDebug(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/requests", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		out := struct {
			Stats  Stats  `json:"stats"`
			Recent []span `json:"recent"`
		}{Stats: s.stats, Recent: append([]span(nil), s.ring...)}
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
}

// record appends one finished request to the span ring.
func (s *Server) record(sp span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	sp.ID = s.nextID
	if len(s.ring) >= spanRingSize {
		s.ring = s.ring[1:]
	}
	s.ring = append(s.ring, sp)
}

// writeJSON sends resp with the given status.
func writeJSON(w http.ResponseWriter, status int, resp *Response) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(resp)
}

// handle is the request lifecycle: admission, deadline, execution with
// the panic barrier, span recording.
func (s *Server) handle(w http.ResponseWriter, r *http.Request, call bool) {
	start := time.Now()
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, &Response{
			Diagnostics: []DiagJSON{{Severity: "error", Phase: "admission",
				Msg: "server is draining"}},
			DurationMs: msSince(start),
		})
		return
	}
	// Admission: a slot in the bounded queue, or an immediate shed.
	select {
	case s.admission <- struct{}{}:
	default:
		s.mu.Lock()
		s.stats.Shed++
		s.mu.Unlock()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, &Response{
			Diagnostics: []DiagJSON{{Severity: "error", Phase: "admission",
				Msg: "server saturated, retry later"}},
			DurationMs: msSince(start),
		})
		s.record(span{Path: r.URL.Path, Status: http.StatusTooManyRequests,
			Start: start.UTC().Format(time.RFC3339Nano), DurationMs: msSince(start), Note: "shed"})
		return
	}
	defer func() { <-s.admission }()
	s.inflight.Add(1)
	defer s.inflight.Done()

	var req Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, &Response{
			Diagnostics: []DiagJSON{{Severity: "error", Phase: "request",
				Msg: "bad request body: " + err.Error()}},
			DurationMs: msSince(start),
		})
		return
	}

	// Wait (bounded, since admission is bounded) for a worker slot.
	s.workers <- struct{}{}
	defer func() { <-s.workers }()

	s.mu.Lock()
	s.stats.Accepted++
	s.mu.Unlock()

	timeout := s.cfg.ReqTimeout
	if s.cfg.Fault.Should(diag.KindDeadline, "request", req.Fn) {
		// Injected deadline: the request starts life already expired.
		timeout = -time.Nanosecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	resp := s.execute(ctx, &req, call)
	resp.DurationMs = msSince(start)
	status := http.StatusOK
	switch {
	case resp.TimedOut:
		status = http.StatusGatewayTimeout
		s.mu.Lock()
		s.stats.TimedOut++
		s.mu.Unlock()
	case !resp.OK:
		status = http.StatusUnprocessableEntity
		s.mu.Lock()
		s.stats.Failed++
		s.mu.Unlock()
	default:
		s.mu.Lock()
		s.stats.Succeeded++
		s.mu.Unlock()
	}
	writeJSON(w, status, resp)
	s.record(span{Path: r.URL.Path, Status: status, OK: resp.OK, TimedOut: resp.TimedOut,
		Start: start.UTC().Format(time.RFC3339Nano), DurationMs: msSince(start),
		Note: firstDiag(resp)})
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }

func firstDiag(r *Response) string {
	if len(r.Diagnostics) == 0 {
		return ""
	}
	return r.Diagnostics[0].Msg
}

// execute compiles (and optionally calls) in a fresh per-request system
// under the last-resort panic barrier. The compile pipeline has its own
// per-unit barriers; this one catches anything that escapes them, so a
// wholly unexpected panic still degrades to a structured response.
func (s *Server) execute(ctx context.Context, req *Request, call bool) (resp *Response) {
	resp = &Response{}
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			s.stats.Panics++
			s.mu.Unlock()
			resp.OK = false
			resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
				Severity: "error", Phase: "request",
				Msg: fmt.Sprintf("internal panic: %v", r),
			})
		}
	}()

	sys := core.NewSystem(core.Options{
		Jobs:         1, // concurrency lives at the request level
		MaxSteps:     s.cfg.MaxSteps,
		MaxHeapWords: s.cfg.MaxHeapWords,
		OptWatchdog:  s.cfg.OptWatchdog,
		DiskCache:    s.cfg.Disk,
		Fault:        s.cfg.Fault,
		NoTier:       s.cfg.NoTier,
		HotThreshold: s.cfg.HotThreshold,
	})
	// The deadline interrupts the machine cooperatively: Run checks the
	// flag every few hundred dispatches and unwinds with a RuntimeError.
	stop := context.AfterFunc(ctx, func() { sys.Machine.Interrupt() })
	defer stop()
	// Fold this request machine's tier activity into the lifetime
	// counters on every exit path, including the panic barrier.
	defer func() {
		ts := sys.Machine.TierStats()
		if ts.Promotions == 0 && ts.CacheFills == 0 {
			return
		}
		s.mu.Lock()
		s.stats.TierPromotions += ts.Promotions
		s.stats.TierRefusions += ts.Refusions
		s.stats.TierCacheFills += ts.CacheFills
		s.mu.Unlock()
	}()

	v, list := sys.EvalStringDiag(req.Source)
	for _, d := range list.All() {
		resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
			Severity: d.Severity.String(), Unit: d.Unit, Phase: d.Phase,
			Line: d.Line, Col: d.Col, Msg: d.Msg,
		})
	}
	if ctx.Err() != nil {
		resp.TimedOut = true
		resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
			Severity: "error", Phase: "deadline",
			Msg: "request deadline exceeded",
		})
		return resp
	}
	if list.HasErrors() {
		return resp
	}
	for name := range sys.Defs {
		resp.Defs = append(resp.Defs, name)
	}
	if v != nil {
		resp.Value = sexp.Print(v)
	}

	if call && req.Fn != "" {
		args := make([]sexp.Value, len(req.Args))
		for i, a := range req.Args {
			av, err := sexp.ReadOne(a)
			if err != nil {
				resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
					Severity: "error", Phase: "request",
					Msg: fmt.Sprintf("argument %d: %v", i, err),
				})
				return resp
			}
			args[i] = av
		}
		cv, err := sys.Call(req.Fn, args...)
		if err != nil {
			if ctx.Err() != nil {
				resp.TimedOut = true
				resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
					Severity: "error", Unit: req.Fn, Phase: "deadline",
					Msg: "request deadline exceeded: " + err.Error(),
				})
			} else {
				resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
					Severity: "error", Unit: req.Fn, Phase: "run", Msg: err.Error(),
				})
			}
			return resp
		}
		resp.Value = sexp.Print(cv)
	}
	resp.OK = true
	return resp
}
