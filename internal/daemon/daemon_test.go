package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/compilecache"
	"repro/internal/diag"
	"repro/internal/obs"
)

// spinSrc never terminates on its own; only the cooperative interrupt
// (deadline) can unwind it.
const spinSrc = `
(defun spin (n)
  (prog (i)
    (setq i 0)
   loop
    (setq i (+ i 1))
    (go loop)))`

func post(t *testing.T, ts *httptest.Server, path string, req Request) (int, Response, http.Header) {
	t.Helper()
	body, _ := json.Marshal(req)
	hr, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatalf("%s: undecodable body: %v", path, err)
	}
	return hr.StatusCode, resp, hr.Header
}

// TestCompileAndRun is the happy path: compile a corpus, call into it,
// get printed values and the list of compiled defs back.
func TestCompileAndRun(t *testing.T) {
	s := New(Config{Workers: 2, ReqTimeout: 10 * time.Second})
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, resp, _ := post(t, ts, "/run", Request{
		Source: `(defun exptl (b n a) (if (= n 0) a (exptl b (- n 1) (* a b))))`,
		Fn:     "exptl", Args: []string{"2", "10", "1"},
	})
	if code != http.StatusOK || !resp.OK {
		t.Fatalf("run: status %d, resp %+v", code, resp)
	}
	if resp.Value != "1024" {
		t.Errorf("exptl value = %q", resp.Value)
	}
	if len(resp.Defs) != 1 || resp.Defs[0] != "exptl" {
		t.Errorf("defs = %v", resp.Defs)
	}

	// /compile reports the last top-level form's value.
	code, resp, _ = post(t, ts, "/compile", Request{
		Source: "(defun sq (x) (* x x))\n(sq 7)",
	})
	if code != http.StatusOK || !resp.OK || resp.Value != "49" {
		t.Errorf("compile: status %d, resp %+v", code, resp)
	}
}

// TestCompileErrorIsStructured: a broken unit yields 422 with positioned
// diagnostics, not a dead daemon.
func TestCompileErrorIsStructured(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, resp, _ := post(t, ts, "/compile", Request{Source: `(defun bad (x) (car . x))`})
	if code != http.StatusUnprocessableEntity || resp.OK {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	if len(resp.Diagnostics) == 0 {
		t.Fatal("no diagnostics for a compile error")
	}
	d := resp.Diagnostics[0]
	if d.Severity != "error" || d.Unit != "bad" {
		t.Errorf("diagnostic = %+v", d)
	}

	// The daemon still serves after the failure.
	code, resp, _ = post(t, ts, "/run", Request{Source: "(defun ok (x) x)", Fn: "ok", Args: []string{"5"}})
	if code != http.StatusOK || resp.Value != "5" {
		t.Errorf("daemon unhealthy after compile error: %d %+v", code, resp)
	}
}

// TestDeadlineReturns504: a spinning request is interrupted at its
// deadline and surfaces as a 504 with a deadline diagnostic; the worker
// slot is reclaimed and the daemon keeps serving.
func TestDeadlineReturns504(t *testing.T) {
	s := New(Config{Workers: 1, ReqTimeout: 150 * time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, resp, _ := post(t, ts, "/run", Request{Source: spinSrc, Fn: "spin", Args: []string{"1"}})
	if code != http.StatusGatewayTimeout || !resp.TimedOut {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	found := false
	for _, d := range resp.Diagnostics {
		if d.Phase == "deadline" {
			found = true
		}
	}
	if !found {
		t.Errorf("no deadline diagnostic: %+v", resp.Diagnostics)
	}

	code, resp, _ = post(t, ts, "/run", Request{Source: "(defun ok (x) x)", Fn: "ok", Args: []string{"3"}})
	if code != http.StatusOK || resp.Value != "3" {
		t.Errorf("daemon unhealthy after timeout: %d %+v", code, resp)
	}
	if st := s.Stats(); st.TimedOut != 1 {
		t.Errorf("timeout counter = %d", st.TimedOut)
	}
}

// TestInjectedDeadlineFault: the deadline fault kind makes a matching
// request behave as already expired, without waiting out a real timeout.
func TestInjectedDeadlineFault(t *testing.T) {
	plan, err := diag.ParsePlan("request:unit=spin:deadline")
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, ReqTimeout: time.Hour, Fault: plan})
	ts := httptest.NewServer(s)
	defer ts.Close()

	start := time.Now()
	code, resp, _ := post(t, ts, "/run", Request{Source: spinSrc, Fn: "spin", Args: []string{"1"}})
	if code != http.StatusGatewayTimeout || !resp.TimedOut {
		t.Fatalf("status %d, resp %+v", code, resp)
	}
	if time.Since(start) > 30*time.Second {
		t.Error("injected deadline waited for a real timeout")
	}

	// A non-matching unit is untouched by the plan.
	code, resp, _ = post(t, ts, "/run", Request{Source: "(defun ok (x) x)", Fn: "ok", Args: []string{"1"}})
	if code != http.StatusOK {
		t.Errorf("non-matching unit faulted: %d %+v", code, resp)
	}
}

// TestLoadSheddingUnderSaturation: with one worker and a queue of one,
// a burst of slow requests sheds the overflow with 429 + Retry-After
// while admitted requests still complete (here: by deadline).
func TestLoadSheddingUnderSaturation(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, ReqTimeout: 400 * time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const burst = 6
	type result struct {
		code  int
		retry string
	}
	results := make(chan result, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _, hdr := post(t, ts, "/run", Request{Source: spinSrc, Fn: "spin", Args: []string{"1"}})
			results <- result{code, hdr.Get("Retry-After")}
		}()
	}
	wg.Wait()
	close(results)

	shed, timedOut := 0, 0
	for r := range results {
		switch r.code {
		case http.StatusTooManyRequests:
			shed++
			if r.retry == "" {
				t.Error("shed response missing Retry-After")
			}
		case http.StatusGatewayTimeout:
			timedOut++
		default:
			t.Errorf("unexpected status %d in burst", r.code)
		}
	}
	// Capacity is Workers+QueueDepth = 2: at least burst-2 must shed.
	if shed < burst-2 {
		t.Errorf("only %d of %d requests shed", shed, burst)
	}
	if timedOut == 0 {
		t.Error("no admitted request ran to its deadline")
	}
	if st := s.Stats(); st.Shed != int64(shed) {
		t.Errorf("shed counter %d != observed %d", st.Shed, shed)
	}
}

// TestDrainRejectsAndCompletes: Drain flips readiness, rejects new work
// with 503, and returns once in-flight requests are done.
func TestDrainRejectsAndCompletes(t *testing.T) {
	s := New(Config{Workers: 1, ReqTimeout: 300 * time.Millisecond})
	ts := httptest.NewServer(s)
	defer ts.Close()

	mux := http.NewServeMux()
	s.RegisterDebug(mux)
	dbg := httptest.NewServer(mux)
	defer dbg.Close()

	// Park one slow request in flight.
	done := make(chan int, 1)
	go func() {
		code, _, _ := post(t, ts, "/run", Request{Source: spinSrc, Fn: "spin", Args: []string{"1"}})
		done <- code
	}()
	// Wait until it is actually executing.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(s.workers) == 0 {
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Draining state is observable immediately.
	for time.Now().Before(deadline) && !s.Draining() {
		time.Sleep(time.Millisecond)
	}

	if code, _, _ := post(t, ts, "/compile", Request{Source: "(defun x (a) a)"}); code != http.StatusServiceUnavailable {
		t.Errorf("request during drain got %d, want 503", code)
	}
	if r, err := http.Get(dbg.URL + "/readyz"); err != nil || r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain: %v %v", r.StatusCode, err)
	} else {
		r.Body.Close()
	}
	if r, err := http.Get(dbg.URL + "/healthz"); err != nil || r.StatusCode != http.StatusOK {
		t.Errorf("healthz during drain: %v %v", r.StatusCode, err)
	} else {
		r.Body.Close()
	}

	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	// The in-flight request completed (by deadline) rather than being cut.
	select {
	case code := <-done:
		if code != http.StatusGatewayTimeout {
			t.Errorf("in-flight request finished with %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
}

// TestRequestSpansExported: finished requests appear in the /requests
// ring with status and timing.
func TestRequestSpansExported(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	reg := obs.NewRegistry()
	s.Register(reg)
	mux := obs.NewDebugMux(reg, s.RegisterDebug)
	dbg := httptest.NewServer(mux)
	defer dbg.Close()

	post(t, ts, "/compile", Request{Source: "(defun a (x) x)"})
	post(t, ts, "/compile", Request{Source: "(defun broken (x) (car . x))"})

	r, err := http.Get(dbg.URL + "/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var out struct {
		Stats  Stats `json:"stats"`
		Recent []struct {
			Path   string `json:"path"`
			Status int    `json:"status"`
		} `json:"recent"`
	}
	if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Recent) != 2 {
		t.Fatalf("span ring has %d entries", len(out.Recent))
	}
	if out.Recent[0].Status != http.StatusOK || out.Recent[1].Status != http.StatusUnprocessableEntity {
		t.Errorf("span statuses = %+v", out.Recent)
	}
	if out.Stats.Succeeded != 1 || out.Stats.Failed != 1 {
		t.Errorf("stats = %+v", out.Stats)
	}

	// Metrics snapshot carries the same counters.
	m := s.Metrics()
	if m["slcd_requests_ok"] != 1 || m["slcd_requests_failed"] != 1 {
		t.Errorf("metrics = %v", m)
	}
}

// TestSharedDiskCacheAcrossRequests: two requests compiling the same
// unit share the durable cache — the second replays instead of
// recompiling, and both produce working code.
func TestSharedDiskCacheAcrossRequests(t *testing.T) {
	d, err := compilecache.OpenDisk(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	s := New(Config{Workers: 1, Disk: d})
	ts := httptest.NewServer(s)
	defer ts.Close()

	src := `(defun cached-fn (n) (* n (+ n 1)))`
	for i := 0; i < 2; i++ {
		code, resp, _ := post(t, ts, "/run", Request{Source: src, Fn: "cached-fn", Args: []string{"6"}})
		if code != http.StatusOK || resp.Value != "42" {
			t.Fatalf("request %d: %d %+v", i, code, resp)
		}
	}
	st := d.Stats()
	if st.Stores == 0 {
		t.Error("first request stored nothing durable")
	}
	if st.Hits == 0 {
		t.Error("second request did not replay from the shared cache")
	}
}

// TestBadBodyRejected: malformed JSON is a 400, not a panic or a hang.
func TestBadBodyRejected(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	r, err := http.Post(ts.URL+"/compile", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Errorf("status = %d", r.StatusCode)
	}
}

// TestArenaReuseAcrossRequests: sequential requests on one worker must
// recycle machine storage through the arena pool — the second request's
// machine is built on the first one's released slices — and the per-run
// results stay correct on recycled storage.
func TestArenaReuseAcrossRequests(t *testing.T) {
	s := New(Config{Workers: 1, ReqTimeout: 10 * time.Second})
	ts := httptest.NewServer(s)
	defer ts.Close()

	src := `(defun grow (n) (if (= n 0) nil (cons n (grow (- n 1)))))
(defun len2 (l) (if (null l) 0 (+ 1 (len2 (cdr l)))))
(defun work (n) (len2 (grow n)))`
	for i := 0; i < 3; i++ {
		code, resp, _ := post(t, ts, "/run", Request{
			Source: src, Fn: "work", Args: []string{"100"},
		})
		if code != http.StatusOK || resp.Value != "100" {
			t.Fatalf("request %d on recycled arena: %d %+v", i, code, resp)
		}
	}
	if got := s.Stats().ArenaRecycles; got < 1 {
		t.Errorf("arena recycles = %d after 3 sequential requests, want >= 1", got)
	}
}
