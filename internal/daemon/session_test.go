package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/snapshot"
)

// sessionSetupSrc gives a session observable state: a special counter
// and a bumper, so cross-request persistence is visible in values.
const sessionSetupSrc = `
(defvar *n* 0)
(defun bump () (setq *n* (+ *n* 1)) *n*)`

// getJSON decodes a GET endpoint's JSON body.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	hr, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if err := json.NewDecoder(hr.Body).Decode(out); err != nil {
		t.Fatalf("GET %s: undecodable body: %v", url, err)
	}
	return hr.StatusCode
}

// TestSessionLifecycle: create with setup source, resume with state
// intact across requests, list/get, delete, then 404.
func TestSessionLifecycle(t *testing.T) {
	s := New(Config{Workers: 2, ReqTimeout: 10 * time.Second})
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, resp, _ := post(t, ts, "/session", Request{Source: sessionSetupSrc, Tenant: "acme"})
	if code != http.StatusOK || !resp.OK || resp.Session == "" {
		t.Fatalf("create: status %d, resp %+v", code, resp)
	}
	id := resp.Session
	foundBump := false
	for _, d := range resp.Defs {
		if d == "bump" {
			foundBump = true
		}
	}
	if !foundBump {
		t.Errorf("setup defs not reported: %v", resp.Defs)
	}

	// The counter advances across requests: the heap is resident.
	for i := 1; i <= 3; i++ {
		code, r, _ := post(t, ts, "/run", Request{Session: id, Source: "(bump)"})
		if code != http.StatusOK || !r.OK || r.Value != strconv.Itoa(i) {
			t.Fatalf("resume %d: status %d, resp %+v", i, code, r)
		}
		if r.Session != id {
			t.Errorf("resume %d: session echo = %q", i, r.Session)
		}
	}

	// Definitions added mid-session persist too.
	if code, r, _ := post(t, ts, "/run", Request{Session: id,
		Source: "(defun dbl (x) (* 2 x))"}); code != http.StatusOK || !r.OK {
		t.Fatalf("mid-session defun: %d %+v", code, r)
	}
	if code, r, _ := post(t, ts, "/run", Request{Session: id,
		Fn: "dbl", Args: []string{"21"}}); code != http.StatusOK || r.Value != "42" {
		t.Fatalf("mid-session def lost: %d %+v", code, r)
	}

	var list struct {
		Count    int           `json:"count"`
		Sessions []sessionInfo `json:"sessions"`
	}
	if code := getJSON(t, ts.URL+"/session", &list); code != http.StatusOK || list.Count != 1 {
		t.Fatalf("list: %d %+v", code, list)
	}
	if list.Sessions[0].ID != id || list.Sessions[0].Tenant != "acme" || list.Sessions[0].Requests != 5 {
		t.Errorf("list row: %+v", list.Sessions[0])
	}
	var info sessionInfo
	if code := getJSON(t, ts.URL+"/session/"+id, &info); code != http.StatusOK || info.ID != id {
		t.Fatalf("get: %d %+v", code, info)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+id, nil)
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", hr.StatusCode)
	}
	if code, _, _ := post(t, ts, "/run", Request{Session: id, Source: "(bump)"}); code != http.StatusNotFound {
		t.Errorf("deleted session served a request: %d", code)
	}
	if code, _, _ := post(t, ts, "/run", Request{Session: "nope", Source: "(bump)"}); code != http.StatusNotFound {
		t.Errorf("unknown session id: %d", code)
	}
	if st := s.Stats(); st.SessionsCreated != 1 {
		t.Errorf("SessionsCreated = %d", st.SessionsCreated)
	}
}

// TestSessionBusyAndStaleInterrupt: a session is single-threaded — a
// concurrent second request gets 409, a deadline 504 does not poison
// the session (the stale-kill regression: the machine parks with the
// kill signal latched, and the next request must clear it, not 504
// instantly).
func TestSessionBusyAndStaleInterrupt(t *testing.T) {
	s := New(Config{Workers: 2, ReqTimeout: 500 * time.Millisecond, SchedMode: SchedOn})
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, resp, _ := post(t, ts, "/session", Request{Source: spinSrc})
	if code != http.StatusOK {
		t.Fatalf("create: %d %+v", code, resp)
	}
	id := resp.Session

	done := make(chan Response, 1)
	go func() {
		_, r, _ := post(t, ts, "/run", Request{Session: id, Fn: "spin", Args: []string{"1"}})
		done <- r
	}()
	// Wait until the spin owns the session, then collide with it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var info sessionInfo
		getJSON(t, ts.URL+"/session/"+id, &info)
		if info.Busy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("session never became busy")
		}
		time.Sleep(time.Millisecond)
	}
	if code, r, _ := post(t, ts, "/run", Request{Session: id, Source: "(defun ok (x) x)"}); code != http.StatusConflict {
		t.Errorf("concurrent session request: %d %+v, want 409", code, r)
	}
	// A busy session cannot be deleted either.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/session/"+id, nil)
	if hr, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		hr.Body.Close()
		if hr.StatusCode != http.StatusConflict {
			t.Errorf("delete busy session: %d, want 409", hr.StatusCode)
		}
	}

	r := <-done
	if !r.TimedOut {
		t.Fatalf("spin should have hit its deadline: %+v", r)
	}

	// The stale-interrupt regression: the very next request on the same
	// session must run to completion, not 504 at its first safepoint.
	code, r, _ = post(t, ts, "/run", Request{Session: id,
		Source: "(defun ok (x) x)", Fn: "ok", Args: []string{"7"}})
	if code != http.StatusOK || !r.OK || r.Value != "7" {
		t.Fatalf("session poisoned by a stale interrupt: %d %+v", code, r)
	}
}

// TestSessionLimitAndTTL: the residency bound returns 429; idle
// sessions past the TTL are reaped and their ids 404.
func TestSessionLimitAndTTL(t *testing.T) {
	s := New(Config{Workers: 1, MaxSessions: 2})
	ts := httptest.NewServer(s)
	defer ts.Close()
	for i := 0; i < 2; i++ {
		if code, r, _ := post(t, ts, "/session", Request{}); code != http.StatusOK {
			t.Fatalf("create %d: %d %+v", i, code, r)
		}
	}
	if code, r, _ := post(t, ts, "/session", Request{}); code != http.StatusTooManyRequests {
		t.Fatalf("over-limit create: %d %+v, want 429", code, r)
	}

	s2 := New(Config{Workers: 1, SessionIdleTTL: 50 * time.Millisecond})
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	_, resp, _ := post(t, ts2, "/session", Request{Source: sessionSetupSrc})
	id := resp.Session
	time.Sleep(120 * time.Millisecond)
	if code, _, _ := post(t, ts2, "/run", Request{Session: id, Source: "(bump)"}); code != http.StatusNotFound {
		t.Errorf("expired session still served: %d", code)
	}
	if st := s2.Stats(); st.SessionsExpired != 1 {
		t.Errorf("SessionsExpired = %d", st.SessionsExpired)
	}
}

// TestSessionDrainCheckpointRestore: a clean drain checkpoints every
// resident session; the next boot restores them with heap state intact
// and nothing lost.
func TestSessionDrainCheckpointRestore(t *testing.T) {
	dir := t.TempDir()

	st1, err := snapshot.OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	sA := New(Config{Workers: 1, Snapshots: st1})
	if err := sA.Boot(); err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(sA)
	_, resp, _ := post(t, tsA, "/session", Request{Source: sessionSetupSrc, Tenant: "acme"})
	id := resp.Session
	if id == "" {
		t.Fatalf("create: %+v", resp)
	}
	// Advance the counter so the checkpoint carries mutated heap state.
	for i := 0; i < 2; i++ {
		post(t, tsA, "/run", Request{Session: id, Source: "(bump)"})
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	if err := sA.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	cancel()
	tsA.Close()
	st1.Close()

	sB := New(Config{Workers: 1, Snapshots: openSnapStore(t, dir, nil)})
	if err := sB.Boot(); err != nil {
		t.Fatal(err)
	}
	if st := sB.Stats(); st.SessionsRestored != 1 || st.SessionsLost != 0 {
		t.Fatalf("restore stats: %+v", st)
	}
	tsB := httptest.NewServer(sB)
	defer tsB.Close()
	code, r, _ := post(t, tsB, "/run", Request{Session: id, Source: "(bump)"})
	if code != http.StatusOK || r.Value != "3" {
		t.Fatalf("restored session lost its heap: %d %+v (want *n* = 3)", code, r)
	}
	var info sessionInfo
	getJSON(t, tsB.URL+"/session/"+id, &info)
	if !info.Restored || info.Tenant != "acme" {
		t.Errorf("restored session row: %+v", info)
	}

	mux := http.NewServeMux()
	sB.RegisterDebug(mux)
	dbg := httptest.NewServer(mux)
	defer dbg.Close()
	if _, body := readyzBody(t, dbg); body["degraded"] != nil {
		t.Errorf("clean restore reports degraded: %v", body["degraded"])
	}
}

// TestSessionHardKillLostDegraded is the kill-9 signature in-process:
// the manifest promises a session (written at create) but no checkpoint
// backs it (only Drain writes those), so the next boot reports it lost
// and /readyz degrades to "session-store" while the daemon serves.
func TestSessionHardKillLostDegraded(t *testing.T) {
	dir := t.TempDir()

	st1, err := snapshot.OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	sA := New(Config{Workers: 1, Snapshots: st1})
	if err := sA.Boot(); err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(sA)
	_, resp, _ := post(t, tsA, "/session", Request{Source: sessionSetupSrc})
	id := resp.Session
	// No Drain: the process "dies" here.
	tsA.Close()
	st1.Close()

	flight := obs.NewFlight(obs.DefaultFlightSize)
	sB := New(Config{Workers: 1, Snapshots: openSnapStore(t, dir, nil), Flight: flight})
	if err := sB.Boot(); err != nil {
		t.Fatalf("boot after a hard kill must serve, not fail: %v", err)
	}
	if st := sB.Stats(); st.SessionsLost != 1 || st.SessionsRestored != 0 {
		t.Errorf("lost-session stats: %+v", st)
	}
	if evs := flight.Snapshot(obs.Filter{Kind: obs.EvSessionLost}); len(evs) != 1 || evs[0].Sev != obs.SevWarn {
		t.Errorf("session-lost flight events: %+v", evs)
	}

	mux := http.NewServeMux()
	sB.RegisterDebug(mux)
	dbg := httptest.NewServer(mux)
	defer dbg.Close()
	code, body := readyzBody(t, dbg)
	if code != http.StatusOK || body["ok"] != true {
		t.Fatalf("readyz after lost sessions must stay 200/ok: %d %v", code, body)
	}
	deg, _ := body["degraded"].([]any)
	foundDeg := false
	for _, d := range deg {
		if d == "session-store" {
			foundDeg = true
		}
	}
	if !foundDeg {
		t.Errorf("degraded = %v, want session-store listed", body["degraded"])
	}

	tsB := httptest.NewServer(sB)
	defer tsB.Close()
	if code, _, _ := post(t, tsB, "/run", Request{Session: id, Source: "(bump)"}); code != http.StatusNotFound {
		t.Errorf("lost session served: %d", code)
	}
	// Degraded but serving: ordinary requests and new sessions work.
	if code, r, _ := post(t, tsB, "/run", Request{
		Source: "(defun ok (x) x)", Fn: "ok", Args: []string{"1"}}); code != http.StatusOK {
		t.Errorf("daemon not serving while degraded: %d %+v", code, r)
	}
	if code, _, _ := post(t, tsB, "/session", Request{}); code != http.StatusOK {
		t.Errorf("session creation broken while degraded: %d", code)
	}
	if v := sB.Metrics()["slcd_sessions_lost_total"]; v != 1 {
		t.Errorf("slcd_sessions_lost_total = %v", v)
	}
}

// TestHelperDaemonSessionPark is the child body for the SIGKILL session
// torture: it boots from the shared directory, creates the requested
// number of sessions (each manifest write is durable), then parks
// forever until the parent kills it.
func TestHelperDaemonSessionPark(t *testing.T) {
	dir := os.Getenv("SLCD_SESSION_TORTURE_DIR")
	if dir == "" {
		t.Skip("helper process for TestKill9SessionTorture")
	}
	st, err := snapshot.OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := New(Config{Workers: 2, Snapshots: st})
	if err := s.Boot(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	n, _ := strconv.Atoi(os.Getenv("SLCD_SESSION_TORTURE_N"))
	for i := 0; i < n; i++ {
		code, resp, _ := post(t, ts, "/session", Request{Source: sessionSetupSrc})
		if code != http.StatusOK {
			t.Fatalf("create %d: %d %+v", i, code, resp)
		}
	}
	select {} // hold the sessions resident until SIGKILL
}

// TestKill9SessionTorture: SIGKILL a daemon holding parked sessions;
// the next boot must come up serving with every promised session
// reported lost and /readyz degraded — never an error, never a hang.
func TestKill9SessionTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	dir := t.TempDir()
	const n = 5

	cmd := exec.Command(os.Args[0], "-test.run=TestHelperDaemonSessionPark$", "-test.v=false")
	cmd.Env = append(os.Environ(),
		"SLCD_SESSION_TORTURE_DIR="+dir,
		"SLCD_SESSION_TORTURE_N="+strconv.Itoa(n))
	var out bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait until the manifest promises all n sessions, then kill -9.
	manifest := filepath.Join(dir, "sessions", "manifest.json")
	deadline := time.Now().Add(30 * time.Second)
	for {
		var man sessionManifest
		if data, err := os.ReadFile(manifest); err == nil &&
			json.Unmarshal(data, &man) == nil && len(man.Sessions) >= n {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			cmd.Wait()
			t.Fatalf("child never parked %d sessions\nchild: %s", n, out.String())
		}
		time.Sleep(time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()

	s := New(Config{Workers: 1, Snapshots: openSnapStore(t, dir, nil)})
	if err := s.Boot(); err != nil {
		t.Fatalf("boot after kill -9 failed: %v\nchild: %s", err, out.String())
	}
	if st := s.Stats(); st.SessionsLost != n {
		t.Errorf("SessionsLost = %d, want %d", st.SessionsLost, n)
	}
	mux := http.NewServeMux()
	s.RegisterDebug(mux)
	dbg := httptest.NewServer(mux)
	defer dbg.Close()
	code, body := readyzBody(t, dbg)
	if code != http.StatusOK || body["ok"] != true {
		t.Fatalf("readyz after kill -9: %d %v", code, body)
	}
	deg, _ := body["degraded"].([]any)
	found := false
	for _, d := range deg {
		if d == "session-store" {
			found = true
		}
	}
	if !found {
		t.Errorf("degraded = %v, want session-store", body["degraded"])
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	if code, r, _ := post(t, ts, "/run", Request{
		Source: "(defun ok (x) x)", Fn: "ok", Args: []string{"2"}}); code != http.StatusOK {
		t.Errorf("daemon not serving after torture: %d %+v", code, r)
	}
}

// TestManyResidentSessions: a node holds a large resident-session
// population cheaply (parked machine stacks, no arenas) and any of them
// resumes correctly. The full 10k-sessions-per-node figure is the
// BenchmarkScheduler/resident-sessions measurement; this asserts the
// mechanism at a scale CI can afford.
func TestManyResidentSessions(t *testing.T) {
	if testing.Short() {
		t.Skip("creates a thousand sessions")
	}
	const n = 1000
	s := New(Config{Workers: 4, MaxSessions: 10000, ReqTimeout: 30 * time.Second})
	ts := httptest.NewServer(s)
	defer ts.Close()

	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				code, resp, _ := post(t, ts, "/session", Request{Source: sessionSetupSrc})
				if code != http.StatusOK || resp.Session == "" {
					errs <- fmt.Errorf("create %d: status %d", i, code)
					return
				}
				ids[i] = resp.Session
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := s.sessions.count(); got != n {
		t.Fatalf("resident sessions = %d, want %d", got, n)
	}
	// Spot-check resumability across the population.
	for i := 0; i < n; i += n / 20 {
		code, r, _ := post(t, ts, "/run", Request{Session: ids[i], Source: "(bump)"})
		if code != http.StatusOK || r.Value != "1" {
			t.Fatalf("session %d did not resume: %d %+v", i, code, r)
		}
	}
	if st := s.Stats(); st.SessionsCreated != n {
		t.Errorf("SessionsCreated = %d", st.SessionsCreated)
	}
}
