package daemon

// Resident sessions (DESIGN.md §16). A session is a core.System that
// outlives requests: POST /session creates it (optionally evaluating
// setup source), /run with {"session": id} resumes it with definitions
// and heap intact, DELETE /session/{id} retires it. Idle sessions are
// cheap — their 16 MB machine stack is parked into a shared pool and
// the goroutine-free System is just its heap — which is what lets one
// node hold thousands of them.
//
// Durability: the session *manifest* (ids + tenants) is rewritten on
// every lifecycle change into <snapdir>/sessions/manifest.json, and a
// clean Drain checkpoints each session as a "session-<id>" snapshot in
// the store. Boot replays the manifest: sessions whose checkpoint
// restores come back resident; sessions the manifest promises but no
// checkpoint backs (the process was killed, not drained) are reported
// lost — /readyz shows "session-store" degraded but the daemon serves.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/compilecache"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/sexp"
)

var (
	errSessionNotFound = errors.New("session not found")
	errSessionBusy     = errors.New("session is busy with another request")
	errSessionLimit    = errors.New("session limit reached")
)

// session is one resident system. busy serializes requests: a session
// machine is single-threaded, so a second concurrent request is a 409,
// not a queue.
type session struct {
	id       string
	tenant   string
	sys      *core.System
	created  time.Time
	lastUsed time.Time
	requests int64
	restored bool
	busy     bool
}

// sessionStore is the id-keyed resident-session table.
type sessionStore struct {
	mu   sync.Mutex
	max  int
	ttl  time.Duration
	byID map[string]*session
	// lost lists manifest entries that had no restorable checkpoint at
	// boot; non-empty makes /readyz report the store degraded.
	lost []string
}

func newSessionStore(max int, ttl time.Duration) *sessionStore {
	return &sessionStore{max: max, ttl: ttl, byID: map[string]*session{}}
}

func (st *sessionStore) count() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.byID)
}

func (st *sessionStore) lostCount() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.lost)
}

func (st *sessionStore) addLost(id string) {
	st.mu.Lock()
	st.lost = append(st.lost, id)
	st.mu.Unlock()
}

// add registers a new session, enforcing the residency bound.
func (st *sessionStore) add(ses *session) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.byID) >= st.max {
		return errSessionLimit
	}
	st.byID[ses.id] = ses
	return nil
}

// claim marks the session busy for one request.
func (st *sessionStore) claim(id string) (*session, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ses := st.byID[id]
	if ses == nil {
		return nil, errSessionNotFound
	}
	if ses.busy {
		return nil, errSessionBusy
	}
	ses.busy = true
	ses.requests++
	return ses, nil
}

// release returns a claimed session to the idle population.
func (st *sessionStore) release(ses *session) {
	st.mu.Lock()
	ses.busy = false
	ses.lastUsed = time.Now()
	st.mu.Unlock()
}

// remove deletes a session; a busy session cannot be removed.
func (st *sessionStore) remove(id string) (*session, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ses := st.byID[id]
	if ses == nil {
		return nil, errSessionNotFound
	}
	if ses.busy {
		return nil, errSessionBusy
	}
	delete(st.byID, id)
	return ses, nil
}

// reap removes idle sessions past the TTL and returns them.
func (st *sessionStore) reap(now time.Time) []*session {
	if st.ttl <= 0 {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []*session
	for id, ses := range st.byID {
		if !ses.busy && now.Sub(ses.lastUsed) > st.ttl {
			delete(st.byID, id)
			out = append(out, ses)
		}
	}
	return out
}

// all returns the current sessions (pointers; fields other than id must
// be read under the store lock or while the session is claimed).
func (st *sessionStore) all() []*session {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*session, 0, len(st.byID))
	for _, ses := range st.byID {
		out = append(out, ses)
	}
	return out
}

// sessionInfo is the GET /session JSON row.
type sessionInfo struct {
	ID       string    `json:"id"`
	Tenant   string    `json:"tenant,omitempty"`
	Created  time.Time `json:"created"`
	LastUsed time.Time `json:"last_used"`
	Requests int64     `json:"requests"`
	Busy     bool      `json:"busy,omitempty"`
	Restored bool      `json:"restored,omitempty"`
}

func (st *sessionStore) infos() []sessionInfo {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]sessionInfo, 0, len(st.byID))
	for _, ses := range st.byID {
		out = append(out, sessionInfo{
			ID: ses.id, Tenant: ses.tenant, Created: ses.created,
			LastUsed: ses.lastUsed, Requests: ses.requests,
			Busy: ses.busy, Restored: ses.restored,
		})
	}
	return out
}

func sessionErrStatus(err error) int {
	switch {
	case errors.Is(err, errSessionNotFound):
		return http.StatusNotFound
	case errors.Is(err, errSessionBusy):
		return http.StatusConflict
	case errors.Is(err, errSessionLimit):
		return http.StatusTooManyRequests
	}
	return http.StatusInternalServerError
}

// executeSession runs one request inside a resident session's system:
// claim, clear any stale interrupt from a previous request's deadline,
// wire the scheduler safepoint hook, evaluate, and park the machine
// stack on the way out. Mutates resp in place (the caller's panic
// barrier stays armed around it).
func (s *Server) executeSession(ctx context.Context, req *Request, call bool, traceID string, tk *sched.Task, resp *Response) {
	s.expireSessions()
	ses, err := s.sessions.claim(req.Session)
	if err != nil {
		resp.status = sessionErrStatus(err)
		resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
			Severity: "error", Phase: "session", Msg: err.Error()})
		return
	}
	resp.Session = ses.id
	sys := ses.sys
	// A session that hit its deadline last request parks with the kill
	// signal still latched; running again without clearing it would 504
	// at the first safepoint (the arena path asserts the same invariant
	// at adoption).
	sys.Machine.ClearInterrupt()
	// Budgets (steps, safepoint cycle accounting) are per request, not
	// per session lifetime.
	sys.Machine.ResetStats()
	gm0 := sys.Machine.GCMeters
	if tk != nil {
		sys.Machine.OnSafepoint = tk.Safepoint
	}
	defer func() {
		sys.Machine.OnSafepoint = nil
		gm := sys.Machine.GCMeters
		s.mu.Lock()
		s.stats.GCFullCollections += gm.Collections - gm0.Collections
		s.stats.GCMinorCollections += gm.MinorCollections - gm0.MinorCollections
		s.stats.GCWordsPromoted += gm.WordsPromoted - gm0.WordsPromoted
		s.mu.Unlock()
		if c := sys.Machine.Stats.Cycles; c > 0 {
			s.cyclesHist.Observe(float64(c))
		}
		sys.Machine.ParkStack()
		s.sessions.release(ses)
	}()
	stop := context.AfterFunc(ctx, func() { sys.Machine.Interrupt() })
	defer stop()

	v, list := sys.EvalStringDiag(req.Source)
	for _, d := range list.All() {
		resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
			Severity: d.Severity.String(), Unit: d.Unit, Phase: d.Phase,
			Line: d.Line, Col: d.Col, Msg: d.Msg,
		})
	}
	if ctx.Err() != nil {
		resp.TimedOut = true
		resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
			Severity: "error", Phase: "deadline",
			Msg: "request deadline exceeded",
		})
		return
	}
	if list.HasErrors() {
		return
	}
	for name := range sys.Defs {
		resp.Defs = append(resp.Defs, name)
	}
	if v != nil {
		resp.Value = sexp.Print(v)
	}
	if call && req.Fn != "" {
		args := make([]sexp.Value, len(req.Args))
		for i, a := range req.Args {
			av, err := sexp.ReadOne(a)
			if err != nil {
				resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
					Severity: "error", Phase: "request",
					Msg: fmt.Sprintf("argument %d: %v", i, err),
				})
				return
			}
			args[i] = av
		}
		cv, err := sys.Call(req.Fn, args...)
		if err != nil {
			if ctx.Err() != nil {
				resp.TimedOut = true
				resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
					Severity: "error", Unit: req.Fn, Phase: "deadline",
					Msg: "request deadline exceeded: " + err.Error(),
				})
			} else {
				resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
					Severity: "error", Unit: req.Fn, Phase: "run", Msg: err.Error(),
				})
			}
			return
		}
		resp.Value = sexp.Print(cv)
	}
	resp.OK = true
}

// handleSessionCreate is POST /session: build a warm-booted system,
// evaluate the optional setup source (under the scheduler when it is
// on, so creation is preempted and gas-metered like any run), park it,
// and register it.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	traceID := ParseTraceparent(r.Header.Get("traceparent"))
	if traceID == "" {
		traceID = randHex(16)
	}
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, &Response{
			Diagnostics: []DiagJSON{{Severity: "error", Phase: "admission",
				Msg: "server is draining"}},
			DurationMs: msSince(start), TraceID: traceID,
		})
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Done()
	s.expireSessions()
	var req Request
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, &Response{
			Diagnostics: []DiagJSON{{Severity: "error", Phase: "request",
				Msg: "bad request body: " + err.Error()}},
			DurationMs: msSince(start), TraceID: traceID,
		})
		return
	}
	opts := s.sysOptions()
	opts.Obs = obs.NewRecorder()
	opts.TraceID = traceID
	sys := s.bootSystem(opts, traceID)
	resp := &Response{}
	if req.Source != "" {
		evalSetup := func(tk *sched.Task) error {
			if tk != nil {
				sys.Machine.OnSafepoint = tk.Safepoint
				defer func() { sys.Machine.OnSafepoint = nil }()
			}
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.ReqTimeout)
			defer cancel()
			stop := context.AfterFunc(ctx, func() { sys.Machine.Interrupt() })
			defer stop()
			_, list := sys.EvalStringDiag(req.Source)
			for _, d := range list.All() {
				resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
					Severity: d.Severity.String(), Unit: d.Unit, Phase: d.Phase,
					Line: d.Line, Col: d.Col, Msg: d.Msg,
				})
			}
			if ctx.Err() != nil {
				resp.TimedOut = true
			}
			return nil
		}
		var runErr error
		if s.sched != nil {
			runErr = s.sched.Run(r.Context(), req.Tenant, evalSetup)
		} else {
			runErr = evalSetup(nil)
		}
		var ge *sched.GasError
		switch {
		case errors.As(runErr, &ge):
			w.Header().Set("Retry-After", retryAfterSecs(ge.RetryAfter))
			writeJSON(w, http.StatusTooManyRequests, &Response{
				GasExhausted: true,
				Diagnostics: []DiagJSON{{Severity: "error", Phase: "gas",
					Msg: ge.Error()}},
				DurationMs: msSince(start), TraceID: traceID,
			})
			return
		case errors.Is(runErr, sched.ErrSaturated):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, &Response{
				Diagnostics: []DiagJSON{{Severity: "error", Phase: "admission",
					Msg: "server saturated, retry later"}},
				DurationMs: msSince(start), TraceID: traceID,
			})
			return
		}
		if resp.TimedOut {
			resp.DurationMs = msSince(start)
			resp.TraceID = traceID
			resp.Diagnostics = append(resp.Diagnostics, DiagJSON{
				Severity: "error", Phase: "deadline",
				Msg: "session setup deadline exceeded"})
			writeJSON(w, http.StatusGatewayTimeout, resp)
			return
		}
		if hasErrors(resp.Diagnostics) {
			resp.DurationMs = msSince(start)
			resp.TraceID = traceID
			writeJSON(w, http.StatusUnprocessableEntity, resp)
			return
		}
	}
	ses := &session{
		id: randHex(8), tenant: req.Tenant, sys: sys,
		created: time.Now(), lastUsed: time.Now(),
	}
	sys.Machine.ClearInterrupt()
	sys.Machine.ParkStack()
	if err := s.sessions.add(ses); err != nil {
		writeJSON(w, sessionErrStatus(err), &Response{
			Diagnostics: []DiagJSON{{Severity: "error", Phase: "session",
				Msg: err.Error()}},
			DurationMs: msSince(start), TraceID: traceID,
		})
		return
	}
	s.mu.Lock()
	s.stats.SessionsCreated++
	s.mu.Unlock()
	s.flight.Record(obs.Event{Kind: obs.EvSessionCreate, Trace: traceID,
		Tenant: req.Tenant, Session: ses.id})
	s.writeSessionManifest()
	for name := range sys.Defs {
		resp.Defs = append(resp.Defs, name)
	}
	resp.OK = true
	resp.Session = ses.id
	resp.DurationMs = msSince(start)
	resp.TraceID = traceID
	writeJSON(w, http.StatusOK, resp)
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "session created",
		slog.String("session", ses.id), slog.String("tenant", req.Tenant))
}

func hasErrors(ds []DiagJSON) bool {
	for _, d := range ds {
		if d.Severity == "error" {
			return true
		}
	}
	return false
}

// handleSessionList is GET /session.
func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	s.expireSessions()
	infos := s.sessions.infos()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"count":    len(infos),
		"sessions": infos,
	})
}

// handleSessionGet is GET /session/{id}.
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	s.expireSessions()
	id := r.PathValue("id")
	for _, info := range s.sessions.infos() {
		if info.ID == id {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(info)
			return
		}
	}
	writeJSON(w, http.StatusNotFound, &Response{
		Diagnostics: []DiagJSON{{Severity: "error", Phase: "session",
			Msg: errSessionNotFound.Error()}},
	})
}

// handleSessionDelete is DELETE /session/{id}.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, err := s.sessions.remove(id); err != nil {
		writeJSON(w, sessionErrStatus(err), &Response{
			Diagnostics: []DiagJSON{{Severity: "error", Phase: "session",
				Msg: err.Error()}},
		})
		return
	}
	s.flight.Record(obs.Event{Kind: obs.EvSessionDelete, Session: id})
	s.writeSessionManifest()
	writeJSON(w, http.StatusOK, &Response{OK: true, Session: id})
}

// expireSessions reaps idle sessions past the TTL and keeps the
// manifest in step.
func (s *Server) expireSessions() {
	reaped := s.sessions.reap(time.Now())
	if len(reaped) == 0 {
		return
	}
	s.mu.Lock()
	s.stats.SessionsExpired += int64(len(reaped))
	s.mu.Unlock()
	for _, ses := range reaped {
		s.flight.Record(obs.Event{Kind: obs.EvSessionExpire,
			Tenant: ses.tenant, Session: ses.id})
	}
	s.writeSessionManifest()
}

// --- durability: manifest, drain checkpoint, boot restore ---

// sessionSnapPrefix namespaces session checkpoints in the snapshot
// store ("session-<id>.snap" next to the pinned boot snapshot).
const sessionSnapPrefix = "session-"

// sessionManifest is the on-disk registry of resident sessions. It
// lives in a subdirectory of the snapshot store (the store's Recover
// quarantines unknown files in its root, but skips directories).
type sessionManifest struct {
	Version  int             `json:"version"`
	Sessions []manifestEntry `json:"sessions"`
}

type manifestEntry struct {
	ID      string    `json:"id"`
	Tenant  string    `json:"tenant,omitempty"`
	Created time.Time `json:"created"`
}

func (s *Server) sessionManifestDir() string {
	if s.cfg.Snapshots == nil {
		return ""
	}
	return filepath.Join(s.cfg.Snapshots.Dir(), "sessions")
}

// writeSessionManifest rewrites the manifest from the live session set
// (atomic temp-file + rename, same protocol as the stores). Best
// effort: a write failure costs restore-after-restart, never serving.
func (s *Server) writeSessionManifest() {
	dir := s.sessionManifestDir()
	if dir == "" {
		return
	}
	man := sessionManifest{Version: 1}
	for _, ses := range s.sessions.all() {
		man.Sessions = append(man.Sessions, manifestEntry{
			ID: ses.id, Tenant: ses.tenant, Created: ses.created,
		})
	}
	data, err := json.Marshal(&man)
	if err != nil {
		return
	}
	if err := os.MkdirAll(dir, 0o777); err != nil {
		s.log.LogAttrs(nil, slog.LevelWarn, "session manifest write failed",
			slog.String("err", err.Error()))
		return
	}
	if err := compilecache.AtomicWriteFile(dir, "manifest.json", data); err != nil {
		s.log.LogAttrs(nil, slog.LevelWarn, "session manifest write failed",
			slog.String("err", err.Error()))
	}
}

// checkpointSessions snapshots every resident session into the store
// (Drain calls it after the last request finishes, so every session is
// idle). Sessions that fail to snapshot are logged and skipped; they
// will be reported lost at the next boot.
func (s *Server) checkpointSessions() {
	if s.cfg.Snapshots == nil {
		return
	}
	s.expireSessions()
	n := 0
	for _, ses := range s.sessions.all() {
		snap, err := ses.sys.Snapshot()
		if err == nil {
			err = s.cfg.Snapshots.Save(sessionSnapPrefix+ses.id, snap)
		}
		if err != nil {
			s.log.LogAttrs(nil, slog.LevelWarn, "session checkpoint failed",
				slog.String("session", ses.id), slog.String("err", err.Error()))
			continue
		}
		s.flight.Record(obs.Event{Kind: obs.EvSessionCheckpoint,
			Tenant: ses.tenant, Session: ses.id})
		n++
	}
	s.writeSessionManifest()
	if n > 0 {
		s.log.LogAttrs(nil, slog.LevelInfo, "sessions checkpointed",
			slog.Int("count", n))
	}
}

// restoreSessions replays the manifest at boot: each listed session is
// revived from its "session-<id>" checkpoint if one restores, and
// reported lost if not — the latter is the hard-kill signature (the
// manifest was written at creation, the checkpoint only at drain). Lost
// sessions degrade /readyz without failing startup.
func (s *Server) restoreSessions() {
	dir := s.sessionManifestDir()
	if dir == "" {
		return
	}
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return // first boot, or no sessions were ever created
	}
	var man sessionManifest
	if err := json.Unmarshal(data, &man); err != nil {
		s.log.LogAttrs(nil, slog.LevelWarn, "session manifest unreadable",
			slog.String("err", err.Error()))
		return
	}
	for _, ent := range man.Sessions {
		snap, err := s.cfg.Snapshots.Load(sessionSnapPrefix + ent.ID)
		var sys *core.System
		if err == nil {
			sys, err = core.RestoreSystem(s.sysOptions(), snap)
		}
		if err != nil {
			s.sessions.addLost(ent.ID)
			s.mu.Lock()
			s.stats.SessionsLost++
			s.mu.Unlock()
			s.flight.Record(obs.Event{Kind: obs.EvSessionLost,
				Tenant: ent.Tenant, Session: ent.ID, Msg: err.Error()})
			s.log.LogAttrs(nil, slog.LevelWarn, "session lost",
				slog.String("session", ent.ID), slog.String("err", err.Error()))
			continue
		}
		sys.Machine.ParkStack()
		ses := &session{
			id: ent.ID, tenant: ent.Tenant, sys: sys,
			created: ent.Created, lastUsed: time.Now(), restored: true,
		}
		if err := s.sessions.add(ses); err != nil {
			s.sessions.addLost(ent.ID)
			continue
		}
		s.mu.Lock()
		s.stats.SessionsRestored++
		s.mu.Unlock()
		s.flight.Record(obs.Event{Kind: obs.EvSessionRestore,
			Tenant: ent.Tenant, Session: ent.ID})
	}
	// The manifest now reflects only the survivors.
	s.writeSessionManifest()
}
