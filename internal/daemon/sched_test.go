package daemon

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"
)

// normalizeResp strips the per-request fields (timings, trace ids) so
// responses from different scheduler modes can be compared for semantic
// identity.
func normalizeResp(r Response) Response {
	r.DurationMs = 0
	r.TraceID = ""
	r.Trace = nil
	return r
}

// TestSchedModeDifferential is the mode-identity guarantee: the same
// request sequence produces semantically identical responses under the
// legacy path (off), the scheduler (on), and forced-yield-at-every-
// safepoint (stress). Only timings and trace ids may differ.
func TestSchedModeDifferential(t *testing.T) {
	reqs := []struct {
		path string
		req  Request
	}{
		{"/run", Request{
			Source: `(defun exptl (b n a) (if (= n 0) a (exptl b (- n 1) (* a b))))`,
			Fn:     "exptl", Args: []string{"2", "10", "1"}, Tenant: "acme"}},
		{"/compile", Request{Source: "(defun sq (x) (* x x))\n(sq 7)"}},
		{"/compile", Request{Source: `(defun bad (x) (car . x))`}}, // 422
		{"/run", Request{
			Source: `(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))`,
			Fn:     "fib", Args: []string{"15"}}},
		{"/run", Request{Source: "(defun id (x) x)", Fn: "id", Args: []string{"((a . b) 1 2)"}}},
	}

	type outcome struct {
		code int
		resp Response
	}
	results := map[string][]outcome{}
	for _, mode := range []string{SchedOff, SchedOn, SchedStress} {
		s := New(Config{Workers: 2, ReqTimeout: 30 * time.Second, SchedMode: mode})
		ts := httptest.NewServer(s)
		for _, r := range reqs {
			code, resp, _ := post(t, ts, r.path, r.req)
			results[mode] = append(results[mode], outcome{code, normalizeResp(resp)})
		}
		ts.Close()
	}
	for _, mode := range []string{SchedOn, SchedStress} {
		for i := range reqs {
			if results[SchedOff][i].code != results[mode][i].code {
				t.Errorf("request %d: status off=%d %s=%d", i,
					results[SchedOff][i].code, mode, results[mode][i].code)
			}
			if !reflect.DeepEqual(results[SchedOff][i].resp, results[mode][i].resp) {
				t.Errorf("request %d: response diverges under %s:\noff: %+v\n%s:  %+v",
					i, mode, results[SchedOff][i].resp, mode, results[mode][i].resp)
			}
		}
	}
}

// TestStarvationFreedom is the adversarial fairness suite: a hot tenant
// keeps the single worker slot saturated with spin loops that only die
// at their deadline, while a second tenant submits short programs. Every
// short program must complete (no 504, no starvation) and their tail
// latency must stay far below the hog's slot-holding time — the DRR
// preemption guarantee.
func TestStarvationFreedom(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 64,
		ReqTimeout: 3 * time.Second, SchedMode: SchedOn})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Three hog requests at a time, resubmitted forever: the slot is
	// never voluntarily free.
	stop := make(chan struct{})
	var hogs sync.WaitGroup
	for i := 0; i < 3; i++ {
		hogs.Add(1)
		go func() {
			defer hogs.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				post(t, ts, "/run", Request{
					Source: spinSrc, Fn: "spin", Args: []string{"1"}, Tenant: "hog"})
			}
		}()
	}
	defer hogs.Wait()
	defer close(stop)

	// Wait until the hog actually owns the machine.
	deadline := time.Now().Add(4 * time.Second)
	for {
		st := s.sched.Stats()
		if st.Running+st.Queued >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hog never saturated the scheduler")
		}
		time.Sleep(time.Millisecond)
	}

	// Short, but long enough (tens of thousands of instructions) to
	// cross safepoints and be charged real cycles.
	const shorts = 15
	const countSrc = `(defun count (n) (if (= n 0) 99 (count (- n 1))))`
	lat := make([]time.Duration, 0, shorts)
	for i := 0; i < shorts; i++ {
		begin := time.Now()
		code, resp, _ := post(t, ts, "/run", Request{
			Source: countSrc, Fn: "count", Args: []string{"20000"},
			Tenant: "mouse"})
		lat = append(lat, time.Since(begin))
		if code != http.StatusOK || !resp.OK || resp.Value != "99" {
			t.Fatalf("short request %d starved or broke: %d %+v", i, code, resp)
		}
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	// p99 (here: the max of 15 samples) must beat the request deadline
	// with margin — without preemption every short request would sit
	// behind a full 3 s spin-until-deadline and time out.
	if worst := lat[len(lat)-1]; worst >= s.cfg.ReqTimeout {
		t.Errorf("short-tenant worst latency %v reached the deadline %v", worst, s.cfg.ReqTimeout)
	}
	st := s.sched.Stats()
	if st.Preempts == 0 {
		t.Error("no preemptions recorded; the hog was never timesliced")
	}
	var mouse, hog *int64
	for i := range st.ByTenant {
		switch st.ByTenant[i].Name {
		case "mouse":
			mouse = &st.ByTenant[i].CyclesUsed
		case "hog":
			hog = &st.ByTenant[i].CyclesUsed
		}
	}
	if mouse == nil || hog == nil || *mouse == 0 || *hog == 0 {
		t.Errorf("per-tenant cycle accounting incomplete: %+v", st.ByTenant)
	}
}

// TestGasExhausted429: a spinning program drains its tenant's gas
// bucket mid-run and gets the typed 429 (gas_exhausted, Retry-After) —
// not a deadline 504; the dry tenant then fails fast at admission while
// other tenants are untouched.
func TestGasExhausted429(t *testing.T) {
	s := New(Config{Workers: 1, ReqTimeout: 30 * time.Second, SchedMode: SchedOn,
		GasRate: 1000, GasBurst: 200_000})
	ts := httptest.NewServer(s)
	defer ts.Close()

	begin := time.Now()
	code, resp, hdr := post(t, ts, "/run", Request{
		Source: spinSrc, Fn: "spin", Args: []string{"1"}, Tenant: "dry"})
	if code != http.StatusTooManyRequests || !resp.GasExhausted {
		t.Fatalf("spin on a tiny gas budget: status %d, resp %+v", code, resp)
	}
	if resp.TimedOut {
		t.Error("gas exhaustion misclassified as a deadline")
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("gas 429 missing Retry-After")
	}
	if time.Since(begin) > 10*time.Second {
		t.Error("gas exhaustion waited for the request deadline")
	}
	found := false
	for _, d := range resp.Diagnostics {
		if d.Phase == "gas" {
			found = true
		}
	}
	if !found {
		t.Errorf("no gas-phase diagnostic: %+v", resp.Diagnostics)
	}

	// The dry tenant is refused at admission now (fail-fast, still typed).
	code, resp, hdr = post(t, ts, "/run", Request{
		Source: "(defun ok (x) x)", Fn: "ok", Args: []string{"1"}, Tenant: "dry"})
	if code != http.StatusTooManyRequests || !resp.GasExhausted || hdr.Get("Retry-After") == "" {
		t.Errorf("dry-tenant admission: status %d, resp %+v", code, resp)
	}

	// A different tenant's budget is its own.
	if code, resp, _ := post(t, ts, "/run", Request{
		Source: "(defun ok (x) x)", Fn: "ok", Args: []string{"5"}, Tenant: "wet"}); code != http.StatusOK || resp.Value != "5" {
		t.Errorf("unrelated tenant affected by a dry bucket: %d %+v", code, resp)
	}

	if st := s.Stats(); st.GasExhausted != 2 {
		t.Errorf("GasExhausted stat = %d, want 2", st.GasExhausted)
	}
	m := s.Metrics()
	if m["slcd_gas_exhausted_total"] != 2 {
		t.Errorf("slcd_gas_exhausted_total = %v", m["slcd_gas_exhausted_total"])
	}
	if m[`slcd_sched_tenant_gas_exhausted_total{tenant="dry"}`] != 2 {
		t.Errorf("per-tenant gas metric missing: %v", m)
	}
}

// TestQueuedGaugeSettlesToZero is the slcd_queued regression: the gauge
// is one atomic counter now, and after any burst — including sheds and
// early returns — it must settle back to exactly zero in both modes.
func TestQueuedGaugeSettlesToZero(t *testing.T) {
	for _, mode := range []string{SchedOff, SchedOn} {
		s := New(Config{Workers: 2, QueueDepth: 2,
			ReqTimeout: 5 * time.Second, SchedMode: mode})
		ts := httptest.NewServer(s)

		var wg sync.WaitGroup
		for i := 0; i < 12; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				post(t, ts, "/run", Request{
					Source: "(defun sq (x) (* x x))", Fn: "sq", Args: []string{"4"}})
			}()
		}
		wg.Wait()
		if got := s.Metrics()["slcd_queued"]; got != 0 {
			t.Errorf("mode %s: slcd_queued = %v after the burst drained, want 0", mode, got)
		}
		if mode == SchedOff {
			if n := s.queuedN.Load(); n != 0 {
				t.Errorf("mode off: queuedN = %d, want 0", n)
			}
		}
		ts.Close()
	}
}

// TestSchedMetricsExposed: scheduler counters and per-tenant labeled
// series surface through the daemon metrics snapshot, and the inflight/
// queued gauges are aliased to the scheduler's view.
func TestSchedMetricsExposed(t *testing.T) {
	s := New(Config{Workers: 1, SchedMode: SchedOn})
	ts := httptest.NewServer(s)
	defer ts.Close()

	post(t, ts, "/run", Request{
		Source: "(defun sq (x) (* x x))", Fn: "sq", Args: []string{"3"}, Tenant: "acme"})

	m := s.Metrics()
	if m["slcd_sched_submitted_total"] < 1 || m["slcd_sched_completed_total"] < 1 {
		t.Errorf("sched counters missing: %v", m)
	}
	if m["slcd_sched_workers"] != 1 {
		t.Errorf("slcd_sched_workers = %v", m["slcd_sched_workers"])
	}
	if _, ok := m[`slcd_sched_tenant_cycles_total{tenant="acme"}`]; !ok {
		t.Errorf("per-tenant labeled series missing from metrics: %v", m)
	}
	if m["slcd_inflight"] != m["slcd_sched_running"] || m["slcd_queued"] != m["slcd_sched_queued"] {
		t.Error("inflight/queued gauges not aliased to the scheduler's")
	}
}
