package daemon

// BenchmarkScheduler is the sessions-per-node and scheduler-overhead
// suite behind BENCH_sched.json (scripts/bench-runtime.sh):
//
//   - resident-sessions: creates b.N resident sessions on one server and
//     reports the marginal heap bytes each parked session pins plus the
//     creation rate — the "10,000 resident sessions on one node" figure
//     is this benchmark at -benchtime=10000x.
//   - requests/{off,on,stress}: end-to-end /run requests through each
//     scheduler mode; on/off is the scheduler's admission overhead,
//     stress/off bounds the worst-case park-resume cost (a yield at
//     every safepoint).
//
// Like the runtime kernels, only within-invocation ratios are
// meaningful on shared hardware.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"
)

// rawPost is post() without the *testing.T plumbing, for benchmarks.
func rawPost(ts *httptest.Server, path string, req Request) (int, Response) {
	body, _ := json.Marshal(req)
	hr, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, Response{}
	}
	defer hr.Body.Close()
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		return 0, Response{}
	}
	return hr.StatusCode, resp
}

func benchServer(b *testing.B, cfg Config) (*Server, *httptest.Server) {
	b.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s)
	b.Cleanup(ts.Close)
	return s, ts
}

func benchPost(b *testing.B, ts *httptest.Server, path string, req Request) Response {
	b.Helper()
	// post() takes *testing.T; duplicate the little that is needed.
	code, resp := rawPost(ts, path, req)
	if code == 0 {
		b.Fatal("request failed")
	}
	return resp
}

func BenchmarkScheduler(b *testing.B) {
	b.Run("resident-sessions", func(b *testing.B) {
		s, ts := benchServer(b, Config{Workers: 4, MaxSessions: 1 << 20,
			ReqTimeout: 30 * time.Second, SchedMode: SchedOn})
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp := benchPost(b, ts, "/session", Request{Source: sessionSetupSrc})
			if resp.Session == "" {
				b.Fatalf("create %d failed: %+v", i, resp)
			}
		}
		b.StopTimer()
		if got := s.sessions.count(); got != b.N {
			b.Fatalf("resident = %d, want %d", got, b.N)
		}
		runtime.GC()
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		if after.HeapAlloc > before.HeapAlloc {
			b.ReportMetric(float64(after.HeapAlloc-before.HeapAlloc)/float64(b.N), "bytes/session")
		}
		b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "sessions/sec")
	})

	req := Request{
		Source: `(defun count (n) (if (= n 0) 99 (count (- n 1))))`,
		Fn:     "count", Args: []string{"20000"},
	}
	for _, mode := range []string{SchedOff, SchedOn, SchedStress} {
		b.Run("requests/"+mode, func(b *testing.B) {
			_, ts := benchServer(b, Config{Workers: 4, QueueDepth: 1 << 16,
				ReqTimeout: 30 * time.Second, SchedMode: mode})
			start := time.Now()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					resp := benchPost(b, ts, "/run", req)
					if !resp.OK {
						b.Fatalf("request failed: %+v", resp)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(b.N)/time.Since(start).Seconds(), "req/sec")
		})
	}
}
