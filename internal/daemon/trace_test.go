package daemon

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// loopSrc conses garbage in a loop: under a small heap budget the
// collector runs repeatedly, and the loop is hot enough to promote.
const loopSrc = `
(defun churn (n)
  (prog (i)
    (setq i 0)
   loop
    (cons i i)
    (setq i (+ i 1))
    (if (< i n) (go loop))
    (return i)))`

// TestTraceparentGenerated: a request without a traceparent header gets
// a fresh trace id, echoed in both the response body and the response
// traceparent header.
func TestTraceparentGenerated(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, resp, hdr := post(t, ts, "/compile", Request{Source: "(defun a (x) x)"})
	if len(resp.TraceID) != 32 {
		t.Fatalf("trace_id = %q, want 32 hex chars", resp.TraceID)
	}
	tp := hdr.Get("traceparent")
	if !strings.HasPrefix(tp, "00-"+resp.TraceID+"-") || !strings.HasSuffix(tp, "-01") {
		t.Errorf("traceparent header %q does not carry trace id %q", tp, resp.TraceID)
	}
}

// TestTraceparentAccepted: an incoming W3C traceparent is adopted, so
// the caller's trace id links through the daemon.
func TestTraceparentAccepted(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	const incoming = "4bf92f3577b34da6a3ce929d0e0e4736"
	body, _ := json.Marshal(Request{Source: "(defun a (x) x)"})
	req, _ := http.NewRequest("POST", ts.URL+"/compile", bytes.NewReader(body))
	req.Header.Set("traceparent", "00-"+incoming+"-00f067aa0ba902b7-01")
	hr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var resp Response
	if err := json.NewDecoder(hr.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if resp.TraceID != incoming {
		t.Errorf("trace_id = %q, want adopted %q", resp.TraceID, incoming)
	}

	// Malformed traceparent values are ignored, not adopted.
	for _, bad := range []string{"junk", "00-zzzz-espan-01", "00-" + strings.Repeat("0", 32) + "-00f067aa0ba902b7-01"} {
		if got := ParseTraceparent(bad); got != "" {
			t.Errorf("ParseTraceparent(%q) = %q, want rejection", bad, got)
		}
	}
}

// TestOneTraceLinksEverything is the acceptance-criteria test: a single
// /run?trace=1 request's trace id must appear on (1) its daemon span in
// the ring, (2) its flight events including tier promotions and GC
// pauses, and (3) a valid per-request Chrome trace containing those
// runtime instants.
func TestOneTraceLinksEverything(t *testing.T) {
	// Forced-hot tiering makes promotions deterministic, and the small
	// heap budget makes churn's discarded conses trigger collections.
	s := New(Config{Workers: 1, HotThreshold: -1, MaxHeapWords: 4096})
	ts := httptest.NewServer(s)
	defer ts.Close()

	code, resp, _ := post(t, ts, "/run?trace=1", Request{
		Source: loopSrc, Fn: "churn", Args: []string{"10000"},
		Tenant: "acme",
	})
	if code != http.StatusOK || !resp.OK {
		t.Fatalf("run: status %d, resp %+v", code, resp)
	}
	tid := resp.TraceID
	if tid == "" {
		t.Fatal("no trace id")
	}

	// (1) the daemon span carries the trace id and the tenant labels.
	s.mu.Lock()
	var sp *span
	for i := range s.ring {
		if s.ring[i].TraceID == tid {
			sp = &s.ring[i]
		}
	}
	s.mu.Unlock()
	if sp == nil {
		t.Fatal("no span in ring with the request's trace id")
	}
	if sp.Tenant != "acme" || sp.StartMonoNs < 0 {
		t.Errorf("span labels: %+v", sp)
	}

	// (2) flight events: lifecycle + tier promotion + GC pause, all on
	// this trace id.
	evs := s.flight.Snapshot(obs.Filter{Trace: tid})
	kinds := map[string]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
	}
	for _, want := range []string{obs.EvReqStart, obs.EvReqFinish, obs.EvTierPromote, obs.EvGCPause} {
		if kinds[want] == 0 {
			t.Errorf("no %s event for trace %s (kinds: %v)", want, tid, kinds)
		}
	}

	// (3) the embedded Chrome trace validates and contains the runtime
	// instants next to compile phase spans.
	if len(resp.Trace) == 0 {
		t.Fatal("no embedded trace despite ?trace=1")
	}
	sum, err := obs.ValidateTrace(resp.Trace)
	if err != nil {
		t.Fatalf("embedded trace invalid: %v", err)
	}
	if sum.Spans == 0 || sum.Instants == 0 {
		t.Errorf("trace has %d spans, %d instants; want both > 0", sum.Spans, sum.Instants)
	}
	if !bytes.Contains(resp.Trace, []byte(`"tier-promote"`)) || !bytes.Contains(resp.Trace, []byte(`"gc-pause"`)) {
		t.Error("trace lacks runtime instants (tier-promote / gc-pause)")
	}
}

// TestMetricsHistograms: /metrics (via the registry) exposes real
// Prometheus histogram series for request latency and eval cycles.
func TestMetricsHistograms(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	reg := obs.NewRegistry()
	s.Register(reg)
	dbg := httptest.NewServer(obs.NewDebugMux(reg, s.RegisterDebug))
	defer dbg.Close()

	post(t, ts, "/run", Request{
		Source: `(defun sq (x) (* x x))`, Fn: "sq", Args: []string{"9"},
	})

	r, err := http.Get(dbg.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(r.Body)
	out := buf.String()
	for _, want := range []string{
		"# TYPE slcd_request_seconds histogram",
		`slcd_request_seconds_bucket{le="+Inf"} 1`,
		"slcd_request_seconds_count 1",
		"# TYPE slcd_eval_cycles histogram",
		"slcd_eval_cycles_count 1",
		"# TYPE slcd_compile_phase_seconds histogram",
		"# TYPE slcd_tier_promotions_total counter",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in /metrics:\n%s", want, out)
		}
	}
}

// TestDebugEventsEndpoint: the daemon's flight recorder serves filtered
// events over /debug/events.
func TestDebugEventsEndpoint(t *testing.T) {
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()

	reg := obs.NewRegistry()
	s.Register(reg)
	dbg := httptest.NewServer(obs.NewDebugMux(reg, s.RegisterDebug))
	defer dbg.Close()

	_, resp, _ := post(t, ts, "/compile", Request{Source: "(defun a (x) x)"})

	r, err := http.Get(dbg.URL + "/debug/events?kind=req-finish&trace=" + resp.TraceID)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var dump struct {
		Events []obs.Event `json:"events"`
	}
	if err := json.NewDecoder(r.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if len(dump.Events) != 1 || dump.Events[0].Kind != obs.EvReqFinish || dump.Events[0].Trace != resp.TraceID {
		t.Errorf("filtered events = %+v", dump.Events)
	}
	if dump.Events[0].DurNs <= 0 {
		t.Errorf("req-finish has no duration: %+v", dump.Events[0])
	}
}

// TestShedRecordsFlightEvent: load shedding leaves a warn-severity
// flight event carrying the shed request's trace id.
func TestShedRecordsFlightEvent(t *testing.T) {
	// One worker, a queue of one: saturate with slow requests, then
	// overflow. The spinners hold their slots until the 5s deadline, far
	// longer than the shed probe needs.
	s := New(Config{Workers: 1, QueueDepth: 1, ReqTimeout: 5 * time.Second})
	ts := httptest.NewServer(s)
	defer ts.Close()

	// Fill the worker and the queue with spinning requests, and wait
	// until both admission slots are actually held.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(t, ts, "/run", Request{Source: spinSrc, Fn: "spin", Args: []string{"1"}})
		}()
	}
	defer wg.Wait()
	resident := func() int {
		if s.sched != nil {
			st := s.sched.Stats()
			return st.Running + st.Queued
		}
		return len(s.admission)
	}
	deadline := time.Now().Add(4 * time.Second)
	for resident() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("spinners never filled the admission queue")
		}
		time.Sleep(time.Millisecond)
	}

	code, resp, _ := post(t, ts, "/compile", Request{Source: "(defun a (x) x)"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("expected 429 with a full queue, got %d", code)
	}
	evs := s.flight.Snapshot(obs.Filter{Kind: obs.EvLoadShed, Trace: resp.TraceID})
	if len(evs) != 1 || evs[0].Sev != obs.SevWarn {
		t.Errorf("shed events = %+v", evs)
	}
}
