// Package snapshot is the versioned on-disk format for a compiled
// machine image, and its crash-safe store (DESIGN.md §14).
//
// A snapshot persists everything a warm boot needs to skip the compile
// pipeline entirely: the machine image (symbol table, function streams
// with resolved jump targets, heap with allocator state, boxed
// constants, registers and live stack — see s1.Image), the compiler
// pinning that makes post-restore compiles byte-identical (gensym
// counter, macro epoch, allocator-context fingerprint), and the source
// texts the image was built from, so the interpreter side and the macro
// expanders can be rehydrated without touching the machine.
//
// Wire format (version bumps with any change, so old files quarantine
// or fall back instead of misdecoding):
//
//	slc-snapshot-v1\n
//	sec <name> <len> <sha256(payload)>\n
//	<len payload bytes>\n          × one per section, fixed order
//	end <count> <sha256(all section sums)>\n
//
// Every section is length-prefixed and individually SHA-256 summed; the
// trailer binds the section list, so truncation anywhere — mid-header,
// mid-payload, missing trailer — is detected before a single byte
// reaches a machine. Decoded closures are never serialized: restore
// re-derives them from the code vector (s1.LoadImage).
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/s1"
)

// Magic is the first line of every snapshot file. Any format change —
// section list, section encoding, meta fields — bumps the trailing
// version number; Decode reports older/newer versions as ErrVersion so
// callers fall back to a cold compile instead of guessing.
const Magic = "slc-snapshot-v1"

// ErrVersion marks a structurally sound snapshot written by an
// incompatible format version — unusable, but not evidence of
// corruption.
var ErrVersion = errors.New("snapshot: incompatible format version")

// Meta is the snapshot's self-description: the verification hashes and
// the compiler pinning.
type Meta struct {
	// ImageHash is the exporting machine's ImageFingerprint; restore
	// recomputes it over the restored machine and refuses on mismatch —
	// a snapshot can be internally consistent yet still not reproduce
	// the image (an s1 behavior change, say), and that must degrade to a
	// cold compile, never serve.
	ImageHash string
	// AllocCtx is the exporting machine's AllocContext; equality after
	// restore is what entitles the restored system to replay durable
	// compile-cache entries recorded by cold systems.
	AllocCtx string
	// GenCount pins the compiler's gensym counter; MacroEpoch pins the
	// cache-key epoch. Both make post-restore compiles key and emit
	// exactly as the exporting system's would have.
	GenCount   int
	MacroEpoch int
	// ToplevelCount and BatchCount pin the unit-naming counters, so a
	// load performed after restore names its %toplevel-N functions (which
	// land in the image) identically to one performed after a cold boot.
	ToplevelCount int
	BatchCount    int
	// SourceHash fingerprints Sources; a boot snapshot is only restored
	// when the prelude it was built from is byte-identical.
	SourceHash string
}

// Snapshot is one serializable compiled system.
type Snapshot struct {
	Meta    Meta
	Sources []string
	Image   *s1.Image
}

// HashSources canonically fingerprints a source sequence (length-prefixed
// so concatenation boundaries cannot collide).
func HashSources(srcs []string) string {
	h := sha256.New()
	for _, s := range srcs {
		fmt.Fprintf(h, "%d\n%s", len(s), s)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Section payload carriers. These exist so each wire section is one gob
// stream with a stable shape; reordering or renaming fields is a format
// change (bump Magic).
type secFuncs struct {
	Funcs    []s1.FuncDesc
	Bindings []s1.ImageBinding
}

type secCode struct {
	Code    []s1.Instr
	Targets []int64
}

type secHeap struct {
	Heap, Regs, Stack []s1.Word
	Blocks            []s1.ImageBlock
	FreeSmall         [][]uint64
	FreeBig           []s1.ImageFreeList
	LiveWords         int64
	LiveSinceGC       int64
	GCThreshold       int64
}

// sectionNames is the fixed section order; Decode requires exactly this
// sequence.
var sectionNames = []string{"meta", "src", "syms", "funcs", "code", "boxes", "heap"}

// sections maps the snapshot onto its wire sections, in order.
func (s *Snapshot) sections() []any {
	img := s.Image
	return []any{
		&s.Meta,
		&s.Sources,
		&img.Syms,
		&secFuncs{Funcs: img.Funcs, Bindings: img.Bindings},
		&secCode{Code: img.Code, Targets: img.Targets},
		&img.Boxes,
		&secHeap{
			Heap: img.Heap, Regs: img.Regs, Stack: img.Stack,
			Blocks: img.Blocks, FreeSmall: img.FreeSmall, FreeBig: img.FreeBig,
			LiveWords: img.LiveWords, LiveSinceGC: img.LiveSinceGC,
			GCThreshold: img.GCThreshold,
		},
	}
}

// Encode writes the snapshot in wire format.
func Encode(w io.Writer, s *Snapshot) error {
	if s.Image == nil {
		return fmt.Errorf("snapshot: encoding a snapshot without an image")
	}
	if _, err := fmt.Fprintf(w, "%s\n", Magic); err != nil {
		return err
	}
	all := sha256.New()
	parts := s.sections()
	for i, name := range sectionNames {
		var payload bytes.Buffer
		if err := gob.NewEncoder(&payload).Encode(parts[i]); err != nil {
			return fmt.Errorf("snapshot: encoding section %s: %w", name, err)
		}
		sum := sha256.Sum256(payload.Bytes())
		hexSum := hex.EncodeToString(sum[:])
		io.WriteString(all, hexSum)
		if _, err := fmt.Fprintf(w, "sec %s %d %s\n", name, payload.Len(), hexSum); err != nil {
			return err
		}
		if _, err := w.Write(payload.Bytes()); err != nil {
			return err
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "end %d %s\n", len(sectionNames), hex.EncodeToString(all.Sum(nil)))
	return err
}

// Bytes encodes the snapshot into memory.
func (s *Snapshot) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, s); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// cutLine splits one \n-terminated line off data; a missing terminator
// is truncation.
func cutLine(data []byte) (line string, rest []byte, err error) {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return "", nil, fmt.Errorf("snapshot: truncated at line boundary")
	}
	return string(data[:i]), data[i+1:], nil
}

// DecodeBytes parses and fully verifies a wire-format snapshot: magic,
// every section header, every section checksum, and the trailer. Any
// violation is an error; nothing partially decoded is ever returned.
func DecodeBytes(data []byte) (*Snapshot, error) {
	line, rest, err := cutLine(data)
	if err != nil {
		return nil, err
	}
	if line != Magic {
		if strings.HasPrefix(line, "slc-snapshot-v") {
			return nil, fmt.Errorf("%w: file is %q, this build reads %q", ErrVersion, line, Magic)
		}
		return nil, fmt.Errorf("snapshot: bad magic %q", line)
	}
	snap := &Snapshot{Image: &s1.Image{}}
	parts := snap.sections()
	all := sha256.New()
	for i, name := range sectionNames {
		line, rest, err = cutLine(rest)
		if err != nil {
			return nil, err
		}
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] != "sec" {
			return nil, fmt.Errorf("snapshot: malformed section header %q", line)
		}
		if fields[1] != name {
			return nil, fmt.Errorf("snapshot: section %d is %q, want %q", i, fields[1], name)
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 0 || n > len(rest) {
			return nil, fmt.Errorf("snapshot: section %s length %q out of range", name, fields[2])
		}
		payload := rest[:n]
		sum := sha256.Sum256(payload)
		if hex.EncodeToString(sum[:]) != fields[3] {
			return nil, fmt.Errorf("snapshot: section %s checksum mismatch", name)
		}
		io.WriteString(all, fields[3])
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(parts[i]); err != nil {
			return nil, fmt.Errorf("snapshot: decoding section %s: %w", name, err)
		}
		rest = rest[n:]
		if len(rest) == 0 || rest[0] != '\n' {
			return nil, fmt.Errorf("snapshot: section %s missing terminator", name)
		}
		rest = rest[1:]
	}
	line, rest, err = cutLine(rest)
	if err != nil {
		return nil, fmt.Errorf("snapshot: missing trailer (truncated file)")
	}
	fields := strings.Fields(line)
	if len(fields) != 3 || fields[0] != "end" {
		return nil, fmt.Errorf("snapshot: malformed trailer %q", line)
	}
	if fields[1] != strconv.Itoa(len(sectionNames)) {
		return nil, fmt.Errorf("snapshot: trailer counts %s sections, want %d", fields[1], len(sectionNames))
	}
	if fields[2] != hex.EncodeToString(all.Sum(nil)) {
		return nil, fmt.Errorf("snapshot: trailer checksum mismatch")
	}
	if len(bytes.TrimSpace(rest)) != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing bytes after trailer", len(rest))
	}
	// Reassemble the image from the section carriers.
	fu := parts[3].(*secFuncs)
	co := parts[4].(*secCode)
	he := parts[6].(*secHeap)
	img := snap.Image
	img.Funcs, img.Bindings = fu.Funcs, fu.Bindings
	img.Code, img.Targets = co.Code, co.Targets
	img.Heap, img.Regs, img.Stack = he.Heap, he.Regs, he.Stack
	img.Blocks, img.FreeSmall, img.FreeBig = he.Blocks, he.FreeSmall, he.FreeBig
	img.LiveWords, img.LiveSinceGC, img.GCThreshold = he.LiveWords, he.LiveSinceGC, he.GCThreshold
	return snap, nil
}
