package snapshot_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/snapshot"
)

// spawnWriters builds the child commands for the multi-process tests.
func spawnWriters(t *testing.T, dir string, n int) []*exec.Cmd {
	t.Helper()
	cmds := make([]*exec.Cmd, 0, n)
	for w := 0; w < n; w++ {
		cmd := exec.Command(os.Args[0], "-test.run=TestHelperStoreWriter$", "-test.v=false")
		cmd.Env = append(os.Environ(),
			"SLC_SNAP_WRITER_DIR="+dir,
			fmt.Sprintf("SLC_SNAP_WRITER_ID=w%d", w))
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		cmds = append(cmds, cmd)
	}
	return cmds
}

// TestHelperCheckpointLoop is the child body for TestKill9SnapshotTorture:
// it re-checkpoints a bulky snapshot under one name as fast as it can
// until killed — every kill lands before, inside, or after a write.
func TestHelperCheckpointLoop(t *testing.T) {
	dir := os.Getenv("SLC_SNAP_TORTURE_DIR")
	if dir == "" {
		t.Skip("helper process for TestKill9SnapshotTorture")
	}
	st, err := snapshot.OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// A wide heap makes the write window (encode + temp write + fsync +
	// rename) wide enough for SIGKILL to land inside it.
	snap := testSnapshot(t, 20000)
	for {
		if err := st.Save("boot", snap); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKill9SnapshotTorture hammers the checkpoint protocol: SIGKILL a
// tight checkpoint loop repeatedly, then require that the directory is
// either restorable or cleanly quarantined — a boot after any crash
// either loads a fully verified snapshot or gets a clean not-found,
// never corrupt bytes.
func TestKill9SnapshotTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	dir := t.TempDir()
	served := 0
	for round := 0; round < 10; round++ {
		cmd := exec.Command(os.Args[0], "-test.run=TestHelperCheckpointLoop$", "-test.v=false")
		cmd.Env = append(os.Environ(), "SLC_SNAP_TORTURE_DIR="+dir)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Let the child reach the checkpoint loop (startup varies wildly,
		// e.g. under -race) before aiming the kill at it.
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if ents, _ := os.ReadDir(dir); len(ents) > 2 { // .lock + quarantine + files
				break
			}
			time.Sleep(time.Millisecond)
		}
		time.Sleep(time.Duration(2+round*3) * time.Millisecond)
		cmd.Process.Kill()
		cmd.Wait()

		// Simulated next boot: open (running recovery) and try the warm
		// path. Every outcome but "verified snapshot" or "clean miss" is
		// a failure.
		st, err := snapshot.OpenStore(dir, nil)
		if err != nil {
			t.Fatalf("round %d: store unopenable after kill: %v", round, err)
		}
		snap, lerr := st.Load("boot")
		switch {
		case lerr == nil:
			if snap.Meta.ImageHash == "" || len(snap.Image.Code) == 0 {
				t.Errorf("round %d: verified snapshot is hollow", round)
			}
			served++
		case errors.Is(lerr, snapshot.ErrNotFound):
			// The kill landed before any complete checkpoint: cold boot.
		default:
			t.Errorf("round %d: load failed with %v (should have been quarantined by recovery)", round, lerr)
		}
		if st.Stats().Corrupt != 0 {
			t.Errorf("round %d: corruption reached the load path past recovery", round)
		}
		st.Close()
	}
	if served == 0 {
		t.Error("no round ever served a snapshot; the writer never completed a checkpoint")
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range names {
		if strings.Contains(de.Name(), ".tmp") {
			t.Errorf("temp file %s survived recovery in the store root", de.Name())
		}
	}
	q, _ := os.ReadDir(filepath.Join(dir, "quarantine"))
	t.Logf("snapshot torture: %d/%d rounds warm-bootable, %d files quarantined", served, 10, len(q))
}
