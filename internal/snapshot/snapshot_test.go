// Wire-format and store-level tests: deterministic encoding, detection
// of every corruption class (bit flips, truncation at arbitrary byte
// boundaries, version skew), crash-recovery quarantine, and the
// snapshot-read/snapshot-write fault-injection paths.
package snapshot_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/s1"
	"repro/internal/snapshot"
)

// testSnapshot builds a snapshot of a small but non-trivial machine:
// symbols, a function, live and freed heap blocks, boxes.
func testSnapshot(t testing.TB, pad int) *snapshot.Snapshot {
	t.Helper()
	m := s1.New()
	m.InternSym("v")
	m.SetGlobal("v", s1.FixnumWord(5))
	items := []s1.Item{
		{Instr: &s1.Instr{Op: s1.OpMOV,
			A: s1.Operand{Mode: s1.MReg, Base: s1.RegA},
			B: s1.Operand{Mode: s1.MImm, Imm: s1.FixnumWord(42)}}},
		{Instr: &s1.Instr{Op: s1.OpRET}},
	}
	if _, err := m.AddFunction("answer", 0, 0, items); err != nil {
		t.Fatal(err)
	}
	lst := s1.NilWord
	for i := 0; i < 4+pad; i++ {
		lst = m.Cons(s1.FixnumWord(int64(i)), lst)
	}
	m.SetGlobal("lst", lst)
	m.Cons(s1.FixnumWord(-1), s1.NilWord) // garbage, freed below
	m.GC()
	img, err := m.ExportImage()
	if err != nil {
		t.Fatal(err)
	}
	return &snapshot.Snapshot{
		Meta: snapshot.Meta{
			ImageHash:  m.ImageFingerprint(),
			AllocCtx:   m.AllocContext(),
			GenCount:   7,
			MacroEpoch: 2,
			SourceHash: snapshot.HashSources([]string{"(defun answer () 42)"}),
		},
		Sources: []string{"(defun answer () 42)"},
		Image:   img,
	}
}

func TestWireRoundTripDeterministic(t *testing.T) {
	snap := testSnapshot(t, 0)
	a, err := snap.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	b, err := snap.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("encoding the same snapshot twice produced different bytes")
	}
	got, err := snapshot.DecodeBytes(a)
	if err != nil {
		t.Fatalf("DecodeBytes: %v", err)
	}
	if got.Meta != snap.Meta {
		t.Errorf("meta round trip: got %+v, want %+v", got.Meta, snap.Meta)
	}
	if len(got.Sources) != 1 || got.Sources[0] != snap.Sources[0] {
		t.Errorf("sources round trip: %q", got.Sources)
	}
	// Re-encoding the decoded snapshot must reproduce the bytes: the
	// format has no nondeterministic content (no timestamps, no map
	// iteration order).
	c, err := got.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Error("decode→encode did not reproduce the original bytes")
	}
}

func TestWireDetectsBitFlips(t *testing.T) {
	data, err := testSnapshot(t, 0).Bytes()
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit at a spread of offsets across the whole file (headers,
	// payloads, trailer). Every flip must be rejected.
	for off := 0; off < len(data); off += 31 {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x20
		if bytes.Equal(mut, data) {
			continue
		}
		if _, err := snapshot.DecodeBytes(mut); err == nil {
			t.Errorf("bit flip at offset %d went undetected", off)
		}
	}
}

func TestWireDetectsTruncation(t *testing.T) {
	data, err := testSnapshot(t, 0).Bytes()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(data); n += 13 {
		if _, err := snapshot.DecodeBytes(data[:n]); err == nil {
			t.Errorf("truncation to %d of %d bytes went undetected", n, len(data))
		}
	}
	if _, err := snapshot.DecodeBytes(data[:len(data)-1]); err == nil {
		t.Error("missing final newline went undetected")
	}
	if _, err := snapshot.DecodeBytes(append(append([]byte(nil), data...), "junk"...)); err == nil {
		t.Error("trailing junk went undetected")
	}
}

func TestWireVersionSkew(t *testing.T) {
	data, err := testSnapshot(t, 0).Bytes()
	if err != nil {
		t.Fatal(err)
	}
	futur := bytes.Replace(data, []byte(snapshot.Magic+"\n"), []byte("slc-snapshot-v99\n"), 1)
	_, err = snapshot.DecodeBytes(futur)
	if !errors.Is(err, snapshot.ErrVersion) {
		t.Errorf("future version: got %v, want ErrVersion", err)
	}
	alien := bytes.Replace(data, []byte(snapshot.Magic+"\n"), []byte("not-a-snapshot\n"), 1)
	if _, err := snapshot.DecodeBytes(alien); err == nil || errors.Is(err, snapshot.ErrVersion) {
		t.Errorf("alien magic: got %v, want a plain corruption error", err)
	}
}

func TestStoreSaveLoad(t *testing.T) {
	dir := t.TempDir()
	st, err := snapshot.OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	snap := testSnapshot(t, 0)
	if err := st.Save("boot", snap); err != nil {
		t.Fatal(err)
	}
	got, err := st.Load("boot")
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != snap.Meta {
		t.Errorf("loaded meta %+v, want %+v", got.Meta, snap.Meta)
	}
	if _, err := st.Load("absent"); !errors.Is(err, snapshot.ErrNotFound) {
		t.Errorf("missing snapshot: got %v, want ErrNotFound", err)
	}
	if s := st.Stats(); s.Saves != 1 || s.Loads != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestStoreQuarantinesCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := snapshot.OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Save("boot", testSnapshot(t, 0)); err != nil {
		t.Fatal(err)
	}
	var events []string
	st.SetEventHook(func(kind, name string) { events = append(events, kind+":"+name) })
	path := filepath.Join(dir, "boot"+snapshot.FileSuffix)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load("boot"); err == nil {
		t.Fatal("corrupt snapshot loaded")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt snapshot not moved out of the store root")
	}
	if _, err := os.Stat(filepath.Join(dir, "quarantine", "boot"+snapshot.FileSuffix)); err != nil {
		t.Errorf("corrupt snapshot not in quarantine: %v", err)
	}
	if len(events) != 1 || events[0] != "snapshot-quarantine:boot"+snapshot.FileSuffix {
		t.Errorf("events = %v", events)
	}
	// Second load: a clean miss, not an error loop.
	if _, err := st.Load("boot"); !errors.Is(err, snapshot.ErrNotFound) {
		t.Errorf("post-quarantine load: got %v, want ErrNotFound", err)
	}
}

func TestStoreRecoverQuarantinesDebris(t *testing.T) {
	dir := t.TempDir()
	st, err := snapshot.OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save("good", testSnapshot(t, 0)); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Plant debris: a stray temp file, a torn snapshot, an unknown file,
	// and a version-skewed snapshot.
	good, _ := os.ReadFile(filepath.Join(dir, "good"+snapshot.FileSuffix))
	os.WriteFile(filepath.Join(dir, "torn"+snapshot.FileSuffix), good[:len(good)/3], 0o666)
	os.WriteFile(filepath.Join(dir, "x"+snapshot.FileSuffix+".tmp123"), []byte("partial"), 0o666)
	os.WriteFile(filepath.Join(dir, "README"), []byte("?"), 0o666)
	old := bytes.Replace(good, []byte(snapshot.Magic+"\n"), []byte("slc-snapshot-v0\n"), 1)
	os.WriteFile(filepath.Join(dir, "old"+snapshot.FileSuffix), old, 0o666)

	st2, err := snapshot.OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Stats().Quarantined; got != 4 {
		t.Errorf("recovery quarantined %d files, want 4", got)
	}
	if _, err := st2.Load("good"); err != nil {
		t.Errorf("good snapshot lost to recovery: %v", err)
	}
	for _, name := range []string{"torn", "old"} {
		if _, err := st2.Load(name); !errors.Is(err, snapshot.ErrNotFound) {
			t.Errorf("Load(%s) = %v, want ErrNotFound", name, err)
		}
	}
}

func TestStoreFaultInjection(t *testing.T) {
	t.Run("snapshot-write", func(t *testing.T) {
		plan, err := diag.ParsePlan("snapshot:*:snapshot-write")
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		st, err := snapshot.OpenStore(dir, plan)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Save("boot", testSnapshot(t, 0)); err != nil {
			t.Fatal(err)
		}
		// The fault wrote a torn file straight to the final path: loading
		// it must quarantine, not serve.
		if _, err := st.Load("boot"); err == nil || errors.Is(err, snapshot.ErrNotFound) {
			t.Errorf("torn snapshot load: got %v, want a corruption error", err)
		}
		st.Close()
		// A fresh open must also catch it via recovery if it were still
		// there (it is not — Load already quarantined it).
		st2, err := snapshot.OpenStore(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer st2.Close()
		if _, err := st2.Load("boot"); !errors.Is(err, snapshot.ErrNotFound) {
			t.Errorf("post-quarantine open: got %v, want ErrNotFound", err)
		}
	})
	t.Run("snapshot-read", func(t *testing.T) {
		plan, err := diag.ParsePlan("snapshot:unit=boot:snapshot-read")
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		clean, err := snapshot.OpenStore(dir, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := clean.Save("boot", testSnapshot(t, 0)); err != nil {
			t.Fatal(err)
		}
		if err := clean.Save("other", testSnapshot(t, 0)); err != nil {
			t.Fatal(err)
		}
		clean.Close()
		st, err := snapshot.OpenStore(dir, plan)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if _, err := st.Load("boot"); err == nil {
			t.Error("snapshot-read fault did not fail the load")
		}
		if st.Stats().Corrupt != 1 {
			t.Errorf("corrupt count = %d, want 1", st.Stats().Corrupt)
		}
		// The selector matched only "boot"; other snapshots still load.
		if _, err := st.Load("other"); err != nil {
			t.Errorf("unmatched snapshot failed: %v", err)
		}
	})
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "image.snap")
	snap := testSnapshot(t, 0)
	if err := snapshot.WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := snapshot.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta != snap.Meta {
		t.Errorf("file round trip meta mismatch")
	}
	// Corrupt in place: the reader must quarantine (rename) the file.
	data, _ := os.ReadFile(path)
	data[len(data)-3] ^= 0x1
	os.WriteFile(path, data, 0o666)
	if _, err := snapshot.ReadFile(path); err == nil {
		t.Fatal("corrupt file read succeeded")
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Error("corrupt file still present at its path")
	}
	if _, err := os.Stat(path + ".quarantined"); err != nil {
		t.Errorf("corrupt file not renamed aside: %v", err)
	}
}

// TestTwoProcessStore has two real processes share one snapshot
// directory: children write distinct names concurrently (flock
// serializes the writes), the parent then verifies every snapshot loads
// clean.
func TestTwoProcessStore(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns child processes")
	}
	dir := t.TempDir()
	children := spawnWriters(t, dir, 2)
	for _, c := range children {
		if err := c.Wait(); err != nil {
			t.Fatalf("writer child failed: %v\n%s", err, c.Stdout)
		}
	}
	st, err := snapshot.OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	loaded := 0
	for w := 0; w < 2; w++ {
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("w%d-%d", w, i)
			snap, err := st.Load(name)
			if err != nil {
				t.Errorf("Load(%s): %v", name, err)
				continue
			}
			if snap.Meta.ImageHash == "" || len(snap.Image.Code) == 0 {
				t.Errorf("snapshot %s is hollow", name)
			}
			loaded++
		}
	}
	if loaded != 16 {
		t.Errorf("loaded %d snapshots, want 16", loaded)
	}
	if st.Stats().Corrupt != 0 {
		t.Error("corrupt snapshots appeared in a crash-free run")
	}
	names, _ := os.ReadDir(dir)
	for _, de := range names {
		if strings.Contains(de.Name(), ".tmp") {
			t.Errorf("temp debris %s left behind", de.Name())
		}
	}
}

// TestHelperStoreWriter is the child body for TestTwoProcessStore: it
// saves 8 snapshots under its writer id and exits.
func TestHelperStoreWriter(t *testing.T) {
	dir := os.Getenv("SLC_SNAP_WRITER_DIR")
	if dir == "" {
		t.Skip("helper process for TestTwoProcessStore")
	}
	st, err := snapshot.OpenStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	snap := testSnapshot(t, 64)
	for i := 0; i < 8; i++ {
		if err := st.Save(fmt.Sprintf("%s-%d", os.Getenv("SLC_SNAP_WRITER_ID"), i), snap); err != nil {
			t.Fatal(err)
		}
	}
}
