package snapshot

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"

	"repro/internal/compilecache"
	"repro/internal/diag"
)

// Store is a crash-safe snapshot directory shared between processes,
// with the same durability discipline as the compile cache (DESIGN.md
// §11): atomic temp-file + fsync + rename writes, an flock serializing
// cross-process operations, open-time recovery that quarantines torn
// files, and read-time verification that quarantines anything the
// checksums reject — a corrupt snapshot is never restored, it is moved
// aside and the caller cold-compiles.
type Store struct {
	mu      sync.Mutex
	dir     string
	lock    *os.File
	fault   *diag.Plan
	onEvent func(kind, name string)
	stats   StoreStats
}

// StoreStats meters the snapshot store.
type StoreStats struct {
	Saves       int64
	Loads       int64
	Misses      int64
	Corrupt     int64 // files quarantined at load time
	Quarantined int64 // files quarantined by Recover
}

// FileSuffix is the extension of snapshot files in a store directory.
const FileSuffix = ".snap"

// quarantineDir holds files that failed verification.
const quarantineDir = "quarantine"

// faultPhase is the diag.Plan phase the snapshot store consults; the
// selector matches the snapshot name ("boot" for the daemon's pinned
// boot snapshot).
const faultPhase = "snapshot"

// OpenStore opens (creating if needed) a snapshot directory, runs crash
// recovery, and returns the handle. The fault plan may be nil.
func OpenStore(dir string, fault *diag.Plan) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, quarantineDir), 0o777); err != nil {
		return nil, fmt.Errorf("snapshot: creating store dir: %w", err)
	}
	lock, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o666)
	if err != nil {
		return nil, fmt.Errorf("snapshot: opening lock file: %w", err)
	}
	s := &Store{dir: dir, lock: lock, fault: fault}
	if _, err := s.Recover(); err != nil {
		lock.Close()
		return nil, err
	}
	return s, nil
}

// SetEventHook installs the quarantine/restore event callback (kinds
// match the obs flight-recorder constants by convention:
// "snapshot-quarantine"). Safe to set on a live handle; the hook must be
// safe for concurrent use.
func (s *Store) SetEventHook(fn func(kind, name string)) {
	s.mu.Lock()
	s.onEvent = fn
	s.mu.Unlock()
}

// Dir returns the store directory path.
func (s *Store) Dir() string { return s.dir }

// Stats returns a copy of the store's meters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close releases the lock file. The directory stays valid for reopening.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lock == nil {
		return nil
	}
	err := s.lock.Close()
	s.lock = nil
	return err
}

func (s *Store) flock() error {
	if s.lock == nil {
		return fmt.Errorf("snapshot: store is closed")
	}
	return syscall.Flock(int(s.lock.Fd()), syscall.LOCK_EX)
}

func (s *Store) funlock() {
	if s.lock != nil {
		syscall.Flock(int(s.lock.Fd()), syscall.LOCK_UN)
	}
}

// quarantineLocked moves one file into the quarantine directory; callers
// hold the locks. Move failures fall back to removal — a bad snapshot
// must never stay where Load can find it.
func (s *Store) quarantineLocked(name string) {
	src := filepath.Join(s.dir, name)
	dst := filepath.Join(s.dir, quarantineDir, name)
	if err := os.Rename(src, dst); err != nil {
		os.Remove(src)
	}
	if s.onEvent != nil {
		s.onEvent("snapshot-quarantine", name)
	}
}

// Recover scans the directory for debris from crashed writers: stray
// temp files, unknown files, and snapshots that fail verification are
// moved into quarantine. Version-incompatible snapshots are quarantined
// too — they can never load, and leaving them would shadow the name
// forever. Returns the number of files quarantined.
func (s *Store) Recover() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flock(); err != nil {
		return 0, err
	}
	defer s.funlock()
	names, err := os.ReadDir(s.dir)
	if err != nil {
		return 0, fmt.Errorf("snapshot: scanning store dir: %w", err)
	}
	moved := 0
	for _, de := range names {
		name := de.Name()
		switch {
		case de.IsDir() || name == ".lock":
			continue
		case strings.Contains(name, ".tmp"):
			// A temp file can only exist if its writer died mid-write.
			s.quarantineLocked(name)
			moved++
		case strings.HasSuffix(name, FileSuffix):
			if _, err := s.readVerifyLocked(name); err != nil {
				s.quarantineLocked(name)
				moved++
			}
		default:
			// Unknown debris: quarantine rather than guess.
			s.quarantineLocked(name)
			moved++
		}
	}
	s.stats.Quarantined += int64(moved)
	return moved, nil
}

func (s *Store) readVerifyLocked(name string) (*Snapshot, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, name))
	if err != nil {
		return nil, err
	}
	return DecodeBytes(data)
}

// Save durably writes the snapshot under name (the file becomes
// <name>.snap). A snapshot-write fault instead writes a deliberately
// torn file straight to the final path — simulating a crash mid-write
// with the atomicity protocol bypassed — which Recover and Load must
// both catch.
func (s *Store) Save(name string, snap *Snapshot) error {
	data, err := snap.Bytes()
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flock(); err != nil {
		return err
	}
	defer s.funlock()
	if s.fault.Should(diag.KindSnapshotWrite, faultPhase, name) {
		torn := data[:len(data)/2]
		return os.WriteFile(filepath.Join(s.dir, name+FileSuffix), torn, 0o666)
	}
	if err := compilecache.AtomicWriteFile(s.dir, name+FileSuffix, data); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	s.stats.Saves++
	return nil
}

// ErrNotFound reports a Load of a name with no snapshot on disk — the
// normal first-boot case, distinct from corruption.
var ErrNotFound = errors.New("snapshot: not found")

// Load reads, verifies and decodes the snapshot under name. A corrupt
// or version-incompatible file is quarantined and reported as an error;
// a snapshot-read fault makes the matching load behave as if the file
// were corrupt (quarantining it), driving the cold-compile fallback
// path without needing real on-disk damage.
func (s *Store) Load(name string) (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.flock(); err != nil {
		return nil, err
	}
	defer s.funlock()
	fname := name + FileSuffix
	if _, err := os.Stat(filepath.Join(s.dir, fname)); errors.Is(err, fs.ErrNotExist) {
		s.stats.Misses++
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	if s.fault.Should(diag.KindSnapshotRead, faultPhase, name) {
		s.quarantineLocked(fname)
		s.stats.Corrupt++
		return nil, fmt.Errorf("snapshot: %s: injected snapshot-read fault", fname)
	}
	snap, err := s.readVerifyLocked(fname)
	if err != nil {
		s.quarantineLocked(fname)
		s.stats.Corrupt++
		return nil, fmt.Errorf("snapshot: %s quarantined: %w", fname, err)
	}
	s.stats.Loads++
	return snap, nil
}

// WriteFile durably writes a snapshot to a standalone path (the slc
// -snapshot-out flag), using the same atomic protocol as the store.
func WriteFile(path string, snap *Snapshot) error {
	data, err := snap.Bytes()
	if err != nil {
		return err
	}
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	if err := compilecache.AtomicWriteFile(dir, base, data); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// ReadFile reads and verifies a standalone snapshot file (the slc
// -snapshot-in flag). A corrupt file is quarantined in place — renamed
// to <path>.quarantined — so the next run cold-compiles instead of
// retrying the same bad bytes.
func ReadFile(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap, err := DecodeBytes(data)
	if err != nil {
		if qerr := os.Rename(path, path+".quarantined"); qerr != nil {
			os.Remove(path)
		}
		return nil, fmt.Errorf("snapshot: %s quarantined: %w", path, err)
	}
	return snap, nil
}
