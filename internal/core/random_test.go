package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/sexp"
)

// genExpr builds a random expression over integer variables, exercising
// arithmetic, conditionals, lets, list structure and type-specific
// operators. Depth-bounded and division-free so every generated program
// is total.
func genExpr(r *rand.Rand, vars []string, depth int) string {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return fmt.Sprintf("%d", r.Intn(21)-10)
		case 1:
			if len(vars) > 0 {
				return vars[r.Intn(len(vars))]
			}
			return "3"
		default:
			return fmt.Sprintf("%d", r.Intn(5))
		}
	}
	a := func() string { return genExpr(r, vars, depth-1) }
	switch r.Intn(12) {
	case 0:
		return fmt.Sprintf("(+ %s %s)", a(), a())
	case 1:
		return fmt.Sprintf("(- %s %s)", a(), a())
	case 2:
		return fmt.Sprintf("(* %s %s)", a(), a())
	case 3:
		return fmt.Sprintf("(if (< %s %s) %s %s)", a(), a(), a(), a())
	case 4:
		return fmt.Sprintf("(if (and (> %s 0) (< %s 5)) %s %s)", a(), a(), a(), a())
	case 5:
		v := fmt.Sprintf("v%d", r.Intn(1000))
		inner := genExpr(r, append(append([]string{}, vars...), v), depth-1)
		return fmt.Sprintf("(let ((%s %s)) %s)", v, a(), inner)
	case 6:
		return fmt.Sprintf("(car (cons %s %s))", a(), a())
	case 7:
		return fmt.Sprintf("(cdr (cons %s %s))", a(), a())
	case 8:
		return fmt.Sprintf("(+& %s %s)", a(), a())
	case 9:
		return fmt.Sprintf("(max %s %s)", a(), a())
	case 10:
		return fmt.Sprintf("(progn %s %s)", a(), a())
	default:
		v := fmt.Sprintf("w%d", r.Intn(1000))
		body := genExpr(r, append(append([]string{}, vars...), v), depth-1)
		return fmt.Sprintf("(let ((%s 0)) (setq %s %s) %s)", v, v, a(), body)
	}
}

// TestRandomizedDifferential generates programs and requires the compiled
// machine code and the reference interpreter to agree, across phase
// configurations.
func TestRandomizedDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	configs := map[string]codegen.Options{
		"full":     codegen.DefaultOptions(),
		"bare":     {Optimize: false},
		"opt-only": {Optimize: true},
		"tn-only":  {UseTN: true},
	}
	r := rand.New(rand.NewSource(20260706))
	for i := 0; i < 120; i++ {
		expr := genExpr(r, []string{"a", "b"}, 4)
		src := fmt.Sprintf("(defun f (a b) %s)", expr)
		args := []sexp.Value{
			sexp.Fixnum(int64(r.Intn(11) - 5)),
			sexp.Fixnum(int64(r.Intn(11) - 5)),
		}
		var wantStr string
		first := true
		for name, opts := range configs {
			o := opts
			sys := NewSystem(Options{Codegen: &o})
			if err := sys.LoadString(src); err != nil {
				t.Fatalf("[%s] load %s: %v", name, src, err)
			}
			cv, cerr := sys.Call("f", args...)
			iv, ierr := sys.Interpret("f", args...)
			if (cerr == nil) != (ierr == nil) {
				t.Fatalf("[%s] %s args=%v: compiled err=%v interp err=%v",
					name, src, args, cerr, ierr)
			}
			if cerr != nil {
				continue
			}
			if !sexp.Equal(cv, iv) {
				lst, _ := sys.Listing("f")
				t.Fatalf("[%s] %s args=%v: compiled=%s interpreted=%s\n%s",
					name, src, args, sexp.Print(cv), sexp.Print(iv), lst)
			}
			if first {
				wantStr = sexp.Print(cv)
				first = false
			} else if got := sexp.Print(cv); got != wantStr {
				t.Fatalf("configs disagree on %s: %s vs %s", src, got, wantStr)
			}
		}
	}
}

// TestRandomizedFloatDifferential does the same over float expressions
// (type-specific operators, representation analysis paths).
func TestRandomizedFloatDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var genF func(r *rand.Rand, vars []string, depth int) string
	genF = func(r *rand.Rand, vars []string, depth int) string {
		if depth <= 0 || r.Intn(4) == 0 {
			if r.Intn(2) == 0 && len(vars) > 0 {
				return vars[r.Intn(len(vars))]
			}
			return fmt.Sprintf("%d.%d", r.Intn(8), r.Intn(10))
		}
		a := func() string { return genF(r, vars, depth-1) }
		switch r.Intn(7) {
		case 0:
			return fmt.Sprintf("(+$f %s %s)", a(), a())
		case 1:
			return fmt.Sprintf("(-$f %s %s)", a(), a())
		case 2:
			return fmt.Sprintf("(*$f %s %s)", a(), a())
		case 3:
			return fmt.Sprintf("(max$f %s %s)", a(), a())
		case 4:
			return fmt.Sprintf("(if (<$f %s %s) %s %s)", a(), a(), a(), a())
		case 5:
			v := fmt.Sprintf("v%d", r.Intn(1000))
			inner := genF(r, append(append([]string{}, vars...), v), depth-1)
			return fmt.Sprintf("(let ((%s %s)) %s)", v, a(), inner)
		default:
			return fmt.Sprintf("(abs$f %s)", a())
		}
	}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		expr := genF(r, []string{"x", "y"}, 4)
		src := fmt.Sprintf("(defun f (x y) %s)", expr)
		args := []sexp.Value{
			sexp.Flonum(float64(r.Intn(100)) / 8),
			sexp.Flonum(float64(r.Intn(100)) / 8),
		}
		for _, repOn := range []bool{true, false} {
			o := codegen.DefaultOptions()
			o.RepAnalysis = repOn
			sys := NewSystem(Options{Codegen: &o})
			if err := sys.LoadString(src); err != nil {
				t.Fatalf("load %s: %v", src, err)
			}
			cv, cerr := sys.Call("f", args...)
			iv, ierr := sys.Interpret("f", args...)
			if (cerr == nil) != (ierr == nil) {
				t.Fatalf("rep=%v %s args=%v: compiled err=%v interp err=%v",
					repOn, src, args, cerr, ierr)
			}
			if cerr != nil {
				continue
			}
			if sexp.Print(cv) != sexp.Print(iv) {
				lst, _ := sys.Listing("f")
				t.Fatalf("rep=%v %s args=%v: compiled=%s interpreted=%s\n%s",
					repOn, src, args, sexp.Print(cv), sexp.Print(iv), lst)
			}
		}
	}
}

// TestRandomizedTailLoops generates iterative tail-recursive functions
// and checks both value agreement and constant stack use.
func TestRandomizedTailLoops(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	r := rand.New(rand.NewSource(7))
	ops := []string{"(+ acc 1)", "(+ acc i)", "(* acc 1)", "(- acc -2)", "(max acc i)"}
	for i := 0; i < 20; i++ {
		op := ops[r.Intn(len(ops))]
		src := fmt.Sprintf(`
(defun loopf (i acc)
  (if (zerop i) acc (loopf (- i 1) %s)))`, op)
		sys := NewSystem(Options{})
		if err := sys.LoadString(src); err != nil {
			t.Fatal(err)
		}
		n := int64(500 + r.Intn(2000))
		sys.ResetStats()
		cv, err := sys.Call("loopf", sexp.Fixnum(n), sexp.Fixnum(0))
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		iv, err := sys.Interpret("loopf", sexp.Fixnum(n), sexp.Fixnum(0))
		if err != nil {
			t.Fatal(err)
		}
		if !sexp.Equal(cv, iv) {
			t.Fatalf("%s (n=%d): %s vs %s", src, n, sexp.Print(cv), sexp.Print(iv))
		}
		if sys.Stats().MaxStack > 64 {
			t.Errorf("%s: stack grew to %d", strings.TrimSpace(src), sys.Stats().MaxStack)
		}
	}
}
