// Restore-vs-rebuild differential suite: a system restored from a
// snapshot must be observationally identical to one that cold-compiled
// the same sources — same -image-hash, same allocator context, same
// heap statistics, same eval results and meters, and identical
// evolution under *further* loads (gensym, macro epoch and unit-naming
// counters all pinned). CI runs this file under S1_TIER_MODE=notier and
// =forcehot as well (see .github/workflows), and the suite has its own
// -gc-stress leg.
package core

import (
	"os"
	"testing"

	"repro/internal/sexp"
	"repro/internal/snapshot"
)

// snapPrelude exercises every snapshot-relevant feature: proclaimed
// specials, defvars with heap-allocated values, macros, mutual
// recursion, cons churn (so the GC runs and free lists populate), and
// boxed constants (strings, bignum-producing arithmetic).
const snapPrelude = `
(proclaim '(special *scale*))
(defvar *scale* 3)
(defmacro twice (x) (list '+ x x))
(defun exptl (b n a) (if (= n 0) a (exptl b (- n 1) (* a b))))
(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(defun build (n) (if (zerop n) nil (cons n (build (- n 1)))))
(defun len (l) (if (null l) 0 (+ 1 (len (cdr l)))))
(defun churn (n) (len (build n)))
(defun scaled (x) (* x *scale*))
(defun twiced (x) (twice (scaled x)))
(defun greet () "hello snapshot")
(defvar *tbl* (build 16))
(churn 24)
`

// snapOpts is the per-mode system configuration, honoring the
// S1_TIER_MODE CI legs the way the s1 differential suites do.
func snapOpts(t testing.TB, gcStress bool) Options {
	opts := Options{GCStress: gcStress}
	switch mode := os.Getenv("S1_TIER_MODE"); mode {
	case "":
	case "notier":
		opts.NoTier = true
	case "forcehot":
		opts.HotThreshold = -1
	default:
		t.Fatalf("unknown S1_TIER_MODE %q", mode)
	}
	return opts
}

// coldBoot compiles the prelude from scratch.
func coldBoot(t testing.TB, opts Options) *System {
	sys := NewSystem(opts)
	if err := sys.LoadString(snapPrelude); err != nil {
		t.Fatalf("cold load: %v", err)
	}
	return sys
}

// warmBoot snapshots cold, pushes the snapshot through the full wire
// format (encode + verify + decode), and restores it under opts.
func warmBoot(t testing.TB, cold *System, opts Options) *System {
	snap, err := cold.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	data, err := snap.Bytes()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := snapshot.DecodeBytes(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	warm, err := RestoreSystem(opts, decoded)
	if err != nil {
		t.Fatalf("RestoreSystem: %v", err)
	}
	return warm
}

func testRestoreEquivalence(t *testing.T, gcStress bool) {
	opts := snapOpts(t, gcStress)
	cold := coldBoot(t, opts)
	warm := warmBoot(t, cold, opts)

	if c, w := cold.Machine.ImageFingerprint(), warm.Machine.ImageFingerprint(); c != w {
		t.Fatalf("image hash diverged:\ncold %s\nwarm %s", c, w)
	}
	if c, w := cold.Machine.AllocContext(), warm.Machine.AllocContext(); c != w {
		t.Fatalf("allocator context diverged: cold %s warm %s", c, w)
	}
	if c, w := cold.Machine.LiveHeapWords(), warm.Machine.LiveHeapWords(); c != w {
		t.Errorf("live heap words diverged: cold %d warm %d", c, w)
	}
	if err := warm.Machine.CheckHeapInvariants(); err != nil {
		t.Errorf("warm heap invariants: %v", err)
	}

	// Eval differential: same results and identical meters for the paper
	// kernels, starting from a clean slate on both.
	kernels := []struct {
		fn   string
		args []sexp.Value
		want string
	}{
		{"exptl", []sexp.Value{sexp.Fixnum(2), sexp.Fixnum(10), sexp.Fixnum(1)}, "1024"},
		{"fib", []sexp.Value{sexp.Fixnum(10)}, "55"},
		{"churn", []sexp.Value{sexp.Fixnum(32)}, "32"},
		{"twiced", []sexp.Value{sexp.Fixnum(5)}, "30"},
		{"greet", nil, `"hello snapshot"`},
	}
	cold.ResetStats()
	warm.ResetStats()
	for _, k := range kernels {
		cv, cerr := cold.Call(k.fn, k.args...)
		wv, werr := warm.Call(k.fn, k.args...)
		if cerr != nil || werr != nil {
			t.Fatalf("%s: cold err %v, warm err %v", k.fn, cerr, werr)
		}
		if cs, ws := sexp.Print(cv), sexp.Print(wv); cs != ws || cs != k.want {
			t.Errorf("%s: cold %s, warm %s, want %s", k.fn, cs, ws, k.want)
		}
	}
	if c, w := *cold.Stats(), *warm.Stats(); c != w {
		t.Errorf("kernel meters diverged:\ncold %+v\nwarm %+v", c, w)
	}
	if c, w := cold.Machine.ImageFingerprint(), warm.Machine.ImageFingerprint(); c != w {
		t.Errorf("image hash diverged after kernels (heap evolution differs)")
	}

	// Interpreter side survived rehydration.
	if v, err := warm.Interpret("fib", sexp.Fixnum(8)); err != nil || sexp.Print(v) != "21" {
		t.Errorf("warm interpreter: %v %v", v, err)
	}

	// Post-boot loads must evolve both images identically: this needs the
	// rehydrated macro expanders, the pinned gensym counter, and the
	// pinned unit-naming counters (%toplevel-N names land in the image).
	post := `(defun after-boot (y) (twice (+ y *scale*)))
(after-boot 4)`
	if err := cold.LoadString(post); err != nil {
		t.Fatalf("cold post-load: %v", err)
	}
	if err := warm.LoadString(post); err != nil {
		t.Fatalf("warm post-load: %v", err)
	}
	if c, w := cold.Machine.ImageFingerprint(), warm.Machine.ImageFingerprint(); c != w {
		t.Errorf("image hash diverged after post-boot load:\ncold %s\nwarm %s", c, w)
	}
	cv, _ := cold.Call("after-boot", sexp.Fixnum(4))
	wv, err := warm.Call("after-boot", sexp.Fixnum(4))
	if err != nil || sexp.Print(cv) != sexp.Print(wv) || sexp.Print(wv) != "14" {
		t.Errorf("after-boot: cold %v, warm %v (err %v), want 14", cv, wv, err)
	}
}

func TestSnapshotRestoreDifferential(t *testing.T) {
	testRestoreEquivalence(t, false)
}

func TestSnapshotRestoreDifferentialGCStress(t *testing.T) {
	if testing.Short() {
		t.Skip("gc-stress collects before every allocation")
	}
	testRestoreEquivalence(t, true)
}

// A restored system must be able to snapshot again, and the second
// snapshot must describe the same image.
func TestSnapshotOfRestoredSystem(t *testing.T) {
	opts := snapOpts(t, false)
	cold := coldBoot(t, opts)
	warm := warmBoot(t, cold, opts)
	snap1, err := cold.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap2, err := warm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap1.Meta != snap2.Meta {
		t.Errorf("re-snapshot meta diverged:\n%+v\n%+v", snap1.Meta, snap2.Meta)
	}
	b1, _ := snap1.Bytes()
	b2, _ := snap2.Bytes()
	if string(b1) != string(b2) {
		t.Error("re-snapshot bytes diverged from the original snapshot")
	}
}

// Verified restore: a snapshot whose recorded hashes do not match the
// machine it reproduces must fail to restore (the caller then
// cold-compiles) — never produce a system silently claiming the wrong
// image.
func TestRestoreVerificationRefusesMismatch(t *testing.T) {
	opts := snapOpts(t, false)
	cold := coldBoot(t, opts)
	tamper := []struct {
		name string
		mut  func(s *snapshot.Snapshot)
	}{
		{"image-hash", func(s *snapshot.Snapshot) { s.Meta.ImageHash = "0000" }},
		{"alloc-ctx", func(s *snapshot.Snapshot) { s.Meta.AllocCtx = "ffff" }},
		{"heap-words", func(s *snapshot.Snapshot) {
			s.Image.Heap[0], s.Image.Heap[1] = s.Image.Heap[1], s.Image.Heap[0]
		}},
		{"sym-cell", func(s *snapshot.Snapshot) { s.Image.Syms[0].Name += "x" }},
	}
	for _, tc := range tamper {
		t.Run(tc.name, func(t *testing.T) {
			snap, err := cold.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			tc.mut(snap)
			if _, err := RestoreSystem(opts, snap); err == nil {
				t.Errorf("restore accepted a %s mismatch", tc.name)
			}
		})
	}
}

// Systems with compile-time constants are excluded from snapshots for
// the same reason they are excluded from the durable compile cache.
func TestSnapshotConstantsExcluded(t *testing.T) {
	sys := NewSystem(Options{Constants: map[string]sexp.Value{"k": sexp.Fixnum(1)}})
	if _, err := sys.Snapshot(); err == nil {
		t.Error("Snapshot succeeded with compile-time constants")
	}
	plain := coldBoot(t, Options{})
	snap, err := plain.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreSystem(Options{Constants: map[string]sexp.Value{"k": sexp.Fixnum(1)}}, snap); err == nil {
		t.Error("RestoreSystem accepted compile-time constants")
	}
}

// BenchmarkSnapshotBoot measures the tentpole claim: warm-start eval is
// O(restore) — decode, verify, load, rehydrate — not O(recompile).
func BenchmarkSnapshotBoot(b *testing.B) {
	opts := Options{}
	cold := coldBoot(b, opts)
	snap, err := cold.Snapshot()
	if err != nil {
		b.Fatal(err)
	}
	data, err := snap.Bytes()
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("snapshot size: %d bytes", len(data))
	check := func(b *testing.B, sys *System) {
		v, err := sys.Call("exptl", sexp.Fixnum(2), sexp.Fixnum(8), sexp.Fixnum(1))
		if err != nil || sexp.Print(v) != "256" {
			b.Fatalf("eval after boot: %v %v", v, err)
		}
	}
	b.Run("cold-compile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sys := NewSystem(opts)
			if err := sys.LoadString(snapPrelude); err != nil {
				b.Fatal(err)
			}
			check(b, sys)
		}
	})
	b.Run("warm-restore", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			decoded, err := snapshot.DecodeBytes(data)
			if err != nil {
				b.Fatal(err)
			}
			sys, err := RestoreSystem(opts, decoded)
			if err != nil {
				b.Fatal(err)
			}
			check(b, sys)
		}
	})
}
