package core

import (
	"fmt"

	"repro/internal/convert"
	"repro/internal/interp"
	"repro/internal/sexp"
	"repro/internal/snapshot"
)

// System snapshot and verified restore (DESIGN.md §14). A snapshot
// captures the machine image plus the compiler pinning (gensym counter,
// macro epoch, allocator context) and the loaded source texts; a restore
// rebuilds a System whose observable state — image fingerprint,
// allocator context, compile-cache keys, interpreter definitions, macro
// expanders — is indistinguishable from one that cold-compiled the same
// sources, at the cost of a deserialize instead of a compile.

// Snapshot captures the system's current state. The system must be at a
// quiescent point: no load in progress, machine not mid-execution.
// Systems built with compile-time Constants cannot snapshot — constants
// are interned per-process host objects, the same reason they are
// excluded from the durable compile cache.
func (s *System) Snapshot() (*snapshot.Snapshot, error) {
	if s.constsFP != "" {
		return nil, fmt.Errorf("core: systems with compile-time constants cannot snapshot")
	}
	img, err := s.Machine.ExportImage()
	if err != nil {
		return nil, err
	}
	return &snapshot.Snapshot{
		Meta: snapshot.Meta{
			ImageHash:     s.Machine.ImageFingerprint(),
			AllocCtx:      s.Machine.AllocContext(),
			GenCount:      s.Compiler.GenCount(),
			MacroEpoch:    s.macroEpoch,
			ToplevelCount: s.toplevelCount,
			BatchCount:    s.batchCount,
			SourceHash:    snapshot.HashSources(s.sources),
		},
		Sources: append([]string(nil), s.sources...),
		Image:   img,
	}, nil
}

// RestoreSystem builds a System from a snapshot instead of compiling.
// The options configure the new system exactly as NewSystem would (the
// execution toggles — NoFuse, NoTier, HotThreshold, GCStress, limits —
// apply to the restored machine; Options.Constants is rejected); the
// snapshot supplies the machine image and the compiler pinning.
//
// The restore is *verified*: after the image loads, the machine's
// recomputed ImageFingerprint and AllocContext must equal the ones
// recorded at snapshot time, or the restore fails — the caller's
// contract is to fall back to a cold compile on any error, so a
// mismatched or damaged snapshot degrades to a slow boot, never to a
// wrong image being served.
func RestoreSystem(opts Options, snap *snapshot.Snapshot) (*System, error) {
	if snap == nil || snap.Image == nil {
		return nil, fmt.Errorf("core: restore requires a snapshot with an image")
	}
	if len(opts.Constants) > 0 {
		return nil, fmt.Errorf("core: systems with compile-time constants cannot restore from snapshots")
	}
	sys := NewSystem(opts)
	if err := sys.Machine.LoadImage(snap.Image); err != nil {
		return nil, err
	}
	if got := sys.Machine.ImageFingerprint(); got != snap.Meta.ImageHash {
		return nil, fmt.Errorf("core: restored image hash %s does not match snapshot's %s", got, snap.Meta.ImageHash)
	}
	if got := sys.Machine.AllocContext(); got != snap.Meta.AllocCtx {
		return nil, fmt.Errorf("core: restored allocator context %s does not match snapshot's %s", got, snap.Meta.AllocCtx)
	}
	sys.Compiler.SetGenCount(snap.Meta.GenCount)
	sys.toplevelCount = snap.Meta.ToplevelCount
	sys.batchCount = snap.Meta.BatchCount
	sys.sources = append([]string(nil), snap.Sources...)
	sys.rehydrate(snap.Sources)
	// Rehydration replayed every defmacro, bumping the epoch once per
	// macro; pin it to the recorded value so compile-cache keys computed
	// by this system match ones computed by the exporting system.
	sys.macroEpoch = snap.Meta.MacroEpoch
	return sys, nil
}

// rehydrate rebuilds the machine-free side of the system — interpreter
// function definitions, macro expanders, proclamations, and the Defs
// name table — by re-running the reader and converter over the stored
// sources. Nothing here touches the machine: top-level forms are
// converted (so defmacro and proclaim take effect) but never compiled
// or executed, and function bodies bind to the already-restored machine
// code by name. Forms that fail to read or convert are skipped, exactly
// as the original diagnostic-accumulating load skipped them.
func (s *System) rehydrate(sources []string) {
	for _, src := range sources {
		forms, _ := sexp.ReadAllRecover(src)
		for _, f := range forms {
			s.Conv.ScanProclaim(f.Val)
		}
		prog := convert.NewProgram()
		for _, f := range forms {
			func() {
				defer func() { recover() }() // a bad form costs itself, as in EvalStringDiag
				s.Conv.TopForm(prog, f.Val)
			}()
		}
		s.Conv.FinishProgram(prog)
		for _, d := range prog.Defs {
			idx := s.Machine.FuncNamed(d.Name.Name)
			if idx < 0 {
				// The original load failed this unit (it never reached the
				// machine); leave it undefined here too.
				continue
			}
			s.Interp.DefineFunction(d.Name, &interp.Closure{Lambda: d.Lambda})
			s.Defs[d.Name.Name] = idx
		}
	}
}
