package core

import (
	"runtime"
	"sort"
	"sync"
	"testing"

	"repro/internal/sexp"
)

// corpusSrc exercises every feature with a distinct code shape: specials
// (defvar'd and proclaimed parameters), closures (escaping and
// counter-mutating), prog loops, do loops, caseq, catch/throw, optional
// and rest arguments, float arrays and the numeric tower. Every listing
// produced from it must be identical whether the middle end ran
// sequentially or on the worker pool.
const corpusSrc = `
(defvar *depth* 0)
(proclaim '(special dyn))
(defun sq (x) (* x x))
(defun fsum (a b c) (+$f a (+$f b c)))
(defun sign (x) (cond ((< x 0) 'neg) ((> x 0) 'pos) (t 'zero)))
(defun boolop (a b c) (if (and a (or b c)) 'one 'two))
(defun len (l) (if (null l) 0 (+ 1 (len (cdr l)))))
(defun exptl (x n a)
  (cond ((zerop n) a)
        ((oddp n) (exptl (* x x) (floor n 2) (* a x)))
        (t (exptl (* x x) (floor n 2) a))))
(defun quadratic (a b c)
  (let ((d (- (* b b) (* 4.0 a c))))
    (cond ((< d 0) '())
          ((= d 0) (list (/ (- b) (* 2.0 a))))
          (t (let ((2a (* 2.0 a)) (sd (sqrt d)))
               (list (/ (+ (- b) sd) 2a)
                     (/ (- (- b) sd) 2a)))))))
(defun tf (a &optional (b 3.0) (c a)) (list a b c))
(defun restf (a &rest r) (cons a r))
(defun make-adder (n) (lambda (x) (+ x n)))
(defun adder-test (k x) (funcall (make-adder k) x))
(defun make-counter ()
  (let ((n 0))
    (lambda () (setq n (+ n 1)) n)))
(defun probe () *depth*)
(defun with-depth (d) (let ((*depth* d)) (probe)))
(defun dynread () dyn)
(defun dynbind (dyn) (dynread))
(defun sumto (n)
  (prog (i s)
    (setq i 0 s 0)
   loop
    (if (> i n) (return s) nil)
    (setq s (+ s i) i (+ i 1))
    (go loop)))
(defun powsum (n)
  (do ((i 0 (+ i 1)) (acc 0 (+ acc (* i i))))
      ((> i n) acc)))
(defun kind (k) (caseq k ((1 2 3) 'small) (10 'ten) ((a b) 'letter) (t 'big)))
(defun thrower (x) (throw 'escape (* x 2)))
(defun catcher (x) (catch 'escape (thrower x) 'not-reached))
(defun fill-sq (a n)
  (dotimes (i n a)
    (aset$f a (float (* i i)) i)))
(defun tak (x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))
(defun kernel (x)
  (let ((a (+$f x 1.0)) (b (*$f x x)))
    (sqrt$f (+$f (*$f a a) (*$f b b)))))
`

// defNames returns the compiled definition names of sys in ascending
// function-index order (= install order).
func defNames(sys *System) []string {
	names := make([]string, 0, len(sys.Defs))
	for n := range sys.Defs {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return sys.Defs[names[i]] < sys.Defs[names[j]]
	})
	return names
}

// TestParallelListingsMatchSequential is the determinism contract of the
// parallel pipeline: with emission serialized in source order, the whole
// machine image must evolve exactly as under Jobs=1, so every listing is
// byte-identical and every function lands at the same index.
func TestParallelListingsMatchSequential(t *testing.T) {
	seq := NewSystem(Options{Jobs: 1})
	if err := seq.LoadString(corpusSrc); err != nil {
		t.Fatalf("sequential load: %v", err)
	}
	par := NewSystem(Options{Jobs: 8})
	if err := par.LoadString(corpusSrc); err != nil {
		t.Fatalf("parallel load: %v", err)
	}
	if len(seq.Defs) != len(par.Defs) {
		t.Fatalf("def count differs: %d vs %d", len(seq.Defs), len(par.Defs))
	}
	for name, idx := range seq.Defs {
		pidx, ok := par.Defs[name]
		if !ok {
			t.Fatalf("parallel load missing %s", name)
		}
		if idx != pidx {
			t.Errorf("%s: function index %d (sequential) vs %d (parallel)", name, idx, pidx)
		}
		sl, err := seq.Listing(name)
		if err != nil {
			t.Fatalf("sequential listing %s: %v", name, err)
		}
		pl, err := par.Listing(name)
		if err != nil {
			t.Fatalf("parallel listing %s: %v", name, err)
		}
		if sl != pl {
			t.Errorf("%s: listings differ\n--- sequential ---\n%s\n--- parallel ---\n%s", name, sl, pl)
		}
	}
	// The whole code image, not just per-function windows.
	if len(seq.Machine.Code) != len(par.Machine.Code) {
		t.Fatalf("code image length differs: %d vs %d",
			len(seq.Machine.Code), len(par.Machine.Code))
	}
	for i := range seq.Machine.Code {
		if seq.Machine.Code[i] != par.Machine.Code[i] {
			t.Fatalf("code image differs at instruction %d", i)
		}
	}
	// And the compiled code still runs.
	checkCall(t, par, "tak", "7", sexp.Fixnum(14), sexp.Fixnum(7), sexp.Fixnum(0))
	checkCall(t, par, "catcher", "14", sexp.Fixnum(7))
	checkCall(t, par, "with-depth", "42", sexp.Fixnum(42))
	checkCall(t, par, "adder-test", "42", sexp.Fixnum(40), sexp.Fixnum(2))
}

// TestParallelInstallsInSourceOrder asserts the deterministic install
// order: regardless of which worker finishes first, definitions enter the
// machine in source order.
func TestParallelInstallsInSourceOrder(t *testing.T) {
	sys := NewSystem(Options{Jobs: runtime.GOMAXPROCS(0)})
	if err := sys.LoadString(`
(defun order-a (x) (* x 2))
(defun order-b (x) (+ (order-a x) 1))
(defun order-c (x) (sumloop x 0))
(defun sumloop (n acc) (if (zerop n) acc (sumloop (- n 1) (+ acc n))))
(defun order-e (x) (list (order-a x) (order-b x)))`); err != nil {
		t.Fatal(err)
	}
	want := []string{"order-a", "order-b", "order-c", "sumloop", "order-e"}
	got := defNames(sys)
	if len(got) != len(want) {
		t.Fatalf("defs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("install order %v, want %v", got, want)
		}
	}
}

// TestConcurrentCompilation is the -race regression for shared package
// state (the sharded symbol intern table, tree var IDs, the compile-time
// apply interpreter): many systems compile the full corpus at once.
func TestConcurrentCompilation(t *testing.T) {
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sys := NewSystem(Options{})
			if err := sys.LoadString(corpusSrc); err != nil {
				errs[g] = err
				return
			}
			if _, err := sys.Call("tak", sexp.Fixnum(8), sexp.Fixnum(4), sexp.Fixnum(0)); err != nil {
				errs[g] = err
			}
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Errorf("goroutine %d: %v", g, err)
		}
	}
}

// TestCompileCacheHits checks the content-addressed cache: re-loading the
// same program hits for every definition, skips recompilation (no new
// code is emitted for the bodies), and the functions keep working.
func TestCompileCacheHits(t *testing.T) {
	sys := NewSystem(Options{Cache: true, Jobs: 1})
	if err := sys.LoadString(corpusSrc); err != nil {
		t.Fatal(err)
	}
	st := sys.Stats()
	if st.CompileCacheHits != 0 {
		t.Errorf("cold load: %d hits, want 0", st.CompileCacheHits)
	}
	nDefs := st.CompileCacheMisses
	if nDefs == 0 {
		t.Fatal("cold load recorded no misses")
	}
	funcs := len(sys.Machine.Funcs)

	if err := sys.LoadString(corpusSrc); err != nil {
		t.Fatalf("reload: %v", err)
	}
	if st.CompileCacheHits != nDefs {
		t.Errorf("reload: %d hits, want %d", st.CompileCacheHits, nDefs)
	}
	if st.CompileCacheMisses != nDefs {
		t.Errorf("reload: %d misses, want %d (no new ones)", st.CompileCacheMisses, nDefs)
	}
	rate := float64(st.CompileCacheHits) / float64(st.CompileCacheHits+st.CompileCacheMisses)
	if rate < 0.45 { // 100% of the reload = 50% of both loads combined
		t.Errorf("hit rate = %.2f", rate)
	}
	// Only top-level forms (the defvar wrapper) recompile on reload —
	// every defun body is reused, so a third load grows the function
	// table by exactly as much as the second did.
	growth2 := len(sys.Machine.Funcs) - funcs
	funcs = len(sys.Machine.Funcs)
	if err := sys.LoadString(corpusSrc); err != nil {
		t.Fatalf("third load: %v", err)
	}
	growth3 := len(sys.Machine.Funcs) - funcs
	if growth3 != growth2 {
		t.Errorf("steady-state reload growth: %d then %d functions", growth2, growth3)
	}
	if growth2 > 2 {
		t.Errorf("reload installed %d functions; only top-level wrappers should recompile", growth2)
	}
	checkCall(t, sys, "sq", "49", sexp.Fixnum(7))
	checkCall(t, sys, "catcher", "14", sexp.Fixnum(7))
	checkCall(t, sys, "sumto", "5050", sexp.Fixnum(100))
}

// TestCompileCacheMacroEpoch: redefining a macro must invalidate cached
// compilations, since the printed source does not expose expansions.
func TestCompileCacheMacroEpoch(t *testing.T) {
	sys := NewSystem(Options{Cache: true})
	if err := sys.LoadString("(defmacro k () 1)\n(defun f () (k))"); err != nil {
		t.Fatal(err)
	}
	checkCall(t, sys, "f", "1")
	if err := sys.LoadString("(defmacro k () 2)\n(defun f () (k))"); err != nil {
		t.Fatal(err)
	}
	checkCall(t, sys, "f", "2")
	if sys.Stats().CompileCacheHits != 0 {
		t.Errorf("macro redefinition must miss: %d hits", sys.Stats().CompileCacheHits)
	}
	// Same macros, same source: now it hits and keeps the new expansion.
	if err := sys.LoadString("(defun f () (k))"); err != nil {
		t.Fatal(err)
	}
	checkCall(t, sys, "f", "2")
	if sys.Stats().CompileCacheHits != 1 {
		t.Errorf("re-load after epoch settles should hit: %d", sys.Stats().CompileCacheHits)
	}
}

// TestCacheRedefinition: a changed body is a different content address
// and must recompile; flipping back to a previously seen body may reuse
// its still-resident code.
func TestCacheRedefinition(t *testing.T) {
	sys := NewSystem(Options{Cache: true})
	if err := sys.LoadString("(defun f (x) (+ x 1))"); err != nil {
		t.Fatal(err)
	}
	checkCall(t, sys, "f", "11", sexp.Fixnum(10))
	if err := sys.LoadString("(defun f (x) (+ x 2))"); err != nil {
		t.Fatal(err)
	}
	checkCall(t, sys, "f", "12", sexp.Fixnum(10))
	if err := sys.LoadString("(defun f (x) (+ x 1))"); err != nil {
		t.Fatal(err)
	}
	checkCall(t, sys, "f", "11", sexp.Fixnum(10))
	if sys.Stats().CompileCacheHits != 1 {
		t.Errorf("hits = %d, want 1 (the flip back)", sys.Stats().CompileCacheHits)
	}
}

// TestParallelListingsMatchExamples re-runs the determinism contract over
// every Lisp program shipped in examples/ (the sources are embedded in
// the example binaries; mirrored here verbatim).
func TestParallelListingsMatchExamples(t *testing.T) {
	numericConsts := func() map[string]sexp.Value {
		mk := func() *sexp.FloatArray {
			fa := sexp.NewFloatArray([]int{16, 16})
			for i := range fa.Data {
				fa.Data[i] = float64(i%7) * 0.25
			}
			return fa
		}
		return map[string]sexp.Value{
			"aarr": mk(), "barr": mk(), "carr": mk(),
			"zarr":   sexp.NewFloatArray([]int{16, 16}),
			"econst": sexp.Flonum(1.5),
		}
	}
	cases := []struct {
		name   string
		src    string
		consts map[string]sexp.Value
	}{
		{"quickstart", `
(defun exptl (x n a)
  (cond ((zerop n) a)
        ((oddp n) (exptl (* x x) (floor n 2) (* a x)))
        (t (exptl (* x x) (floor n 2) a))))`, nil},
		{"quadratic", `
(defun quadratic (a b c)
  (let ((d (- (* b b) (* 4.0 a c))))
    (cond ((< d 0) '())
          ((= d 0) (list (/ (- b) (* 2.0 a))))
          (t (let ((2a (* 2.0 a)) (sd (sqrt d)))
               (list (/ (+ (- b) sd) 2a)
                     (/ (- (- b) sd) 2a)))))))`, nil},
		{"transcript", `
(defun frotz (a b c) nil)
(defun testfn (a &optional (b 3.0) (c a))
  (let ((d (+$f a b c)) (e (*$f a b c)))
    (let ((q (sin$f e)))
      (frotz d e (max$f d e))
      q)))`, nil},
		{"numeric", `
(defun kernel ()
  (let ((n 16))
    (let ((i 0))
      (prog ()
       iloop
        (if (>=& i n) (return nil) nil)
        (let ((j 0))
          (prog ()
           jloop
            (if (>=& j n) (return nil) nil)
            (let ((k 0))
              (prog ()
               kloop
                (if (>=& k n) (return nil) nil)
                (aset$f zarr
                        (+$f (+$f (*$f (aref$f aarr i j) (aref$f barr j k))
                                  (aref$f carr i k))
                             econst)
                        i k)
                (setq k (+& k 1))
                (go kloop)))
            (setq j (+& j 1))
            (go jloop)))
        (setq i (+& i 1))
        (go iloop)))))
(defun observe (a b) nil)
(defun poly (x)
  (let ((d (+$f x 1.0)) (e (*$f x x)))
    (observe d e)
    (max$f d e)))`, numericConsts()},
		{"benchmarks", `
(defun tak (x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))
(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(defun listn (n) (if (zerop n) nil (cons n (listn (- n 1)))))
(defun len (l) (if (null l) 0 (+ 1 (len (cdr l)))))
(defun listbench (n) (len (append (listn n) (listn n))))
(defun iter (n acc) (if (zerop n) acc (iter (- n 1) (+ acc n))))
(defun deriv (e)
  (cond ((atom e) (if (eq e 'x) 1 0))
        ((eq (car e) '+)
         (list '+ (deriv (cadr e)) (deriv (caddr e))))
        ((eq (car e) '*)
         (list '+ (list '* (cadr e) (deriv (caddr e)))
                  (list '* (caddr e) (deriv (cadr e)))))
        (t 'unknown)))
(defun derivbench (n)
  (let ((e '(+ (* 3 (* x x)) (* 5 x))) (out nil) (i 0))
    (prog ()
     loop
      (if (>= i n) (return out) nil)
      (setq out (deriv e))
      (setq i (+ i 1))
      (go loop))))`, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			seq := NewSystem(Options{Jobs: 1, Constants: tc.consts})
			if err := seq.LoadString(tc.src); err != nil {
				t.Fatalf("sequential load: %v", err)
			}
			par := NewSystem(Options{Jobs: 8, Constants: tc.consts})
			if err := par.LoadString(tc.src); err != nil {
				t.Fatalf("parallel load: %v", err)
			}
			for name, idx := range seq.Defs {
				if par.Defs[name] != idx {
					t.Errorf("%s: index %d vs %d", name, idx, par.Defs[name])
				}
				sl, err := seq.Listing(name)
				if err != nil {
					t.Fatal(err)
				}
				pl, err := par.Listing(name)
				if err != nil {
					t.Fatal(err)
				}
				if sl != pl {
					t.Errorf("%s: listings differ", name)
				}
			}
		})
	}
}
