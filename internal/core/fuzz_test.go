package core

import (
	"testing"
	"time"

	"repro/internal/convert"
	"repro/internal/opt"
	"repro/internal/sexp"
	"repro/internal/tree"
)

// FuzzCompilePipeline drives arbitrary text through the front and middle
// end: read (with resynchronization), per-form conversion, the optimizer
// fixpoint under a watchdog, back-translation of the optimized tree, and
// a re-read of the printed result. None of it may panic — errors are the
// contract, crashes are bugs. Execution is deliberately excluded: the
// pipeline is the attack surface reachable from source text.
func FuzzCompilePipeline(f *testing.F) {
	seeds := []string{
		"(defun f (x) (+ x 1))",
		"(defun g (x) (car . x)) (defun h (y) (* y y))",
		"(defvar *v* 3) (proclaim '(special dyn))",
		"(defun w (x) (do ((i 0 (+ i 1))) ((> i x) i)))",
		"(defun q (a &optional (b 3.0) &rest r) (list a b r))",
		"(defun p (x) (prog (i) loop (if (> i x) (return i) nil) (go loop)))",
		"(defun c (x) (cond ((< x 0) 'neg) (t (or x 1))))",
		"((lambda (x) x) 5)",
		"(defun b (x) `(a ,x ,@x))",
		"(defun broken (x (",
		"(quote",
		")))(((",
		"(defun s (x) \"str\" #\\a 1/2 3.5e2 |odd sym|)",
		"(setq . 5)",
		"(defmacro m (x) x)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 1<<16 {
			return
		}
		forms, _ := sexp.ReadAllRecover(src)
		conv := convert.New()
		prog := convert.NewProgram()
		for _, fm := range forms {
			conv.ScanProclaim(fm.Val)
		}
		for _, fm := range forms {
			// Errors are fine; only panics fail the fuzz target.
			_ = conv.TopForm(prog, fm.Val)
		}
		conv.FinishProgram(prog)
		oo := opt.DefaultOptions()
		oo.Watchdog = 200 * time.Millisecond
		lams := make([]*tree.Lambda, 0, len(prog.Defs)+len(prog.TopForms))
		for _, d := range prog.Defs {
			lams = append(lams, d.Lambda)
		}
		for _, tf := range prog.TopForms {
			lams = append(lams, convert.WrapToplevel(tf))
		}
		for _, lam := range lams {
			n := opt.New(oo, nil).Optimize(lam)
			// Back-translate and re-read: the printed tree must never
			// crash the reader.
			back := tree.Show(n)
			_, _ = sexp.ReadAll(back)
		}
	})
}
