package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/diag"
	"repro/internal/sexp"
)

// faultySrc interleaves three broken units among good ones that exercise
// the gensym-bearing macro expansions (do loops, or-thunks): the image
// the survivors produce must not depend on the wrecks between them.
// bad-panic is only broken under a fault plan targeting it; without one
// it compiles fine (the filtered compile never mentions it, so the plan
// is inert there).
const faultySrc = `
(defun good-a (x) (+ x 1))
(defun bad-dotted (x) (car . x))
(defun good-b (x) (* x (good-a x)))
(defun bad-panic (x) (+ x 2))
(defun good-c (x)
  (do ((i 0 (+ i 1)) (acc 0 (+ acc (or (and (oddp i) 1) i))))
      ((> i x) acc)))
(defun good-d (l)
  (let ((n 0))
    (dolist (e l n) (setq n (+ n 1)))))
(defun bad-unreadable (x) (oops
`

// filteredSrc is faultySrc with the three broken defuns deleted — the
// reference image every recovering load must reproduce byte for byte.
const filteredSrc = `
(defun good-a (x) (+ x 1))
(defun good-b (x) (* x (good-a x)))
(defun good-c (x)
  (do ((i 0 (+ i 1)) (acc 0 (+ acc (or (and (oddp i) 1) i))))
      ((> i x) acc)))
(defun good-d (l)
  (let ((n 0))
    (dolist (e l n) (setq n (+ n 1)))))
`

// requireSameImage asserts two systems built byte-identical machine
// images: same definitions at the same indices, identical listings, and
// an identical full code image.
func requireSameImage(t *testing.T, want, got *System) {
	t.Helper()
	if len(want.Defs) != len(got.Defs) {
		t.Fatalf("def count %d, want %d", len(got.Defs), len(want.Defs))
	}
	for name, idx := range want.Defs {
		gidx, ok := got.Defs[name]
		if !ok {
			t.Fatalf("missing definition %s", name)
		}
		if gidx != idx {
			t.Errorf("%s: function index %d, want %d", name, gidx, idx)
		}
		wl, err := want.Listing(name)
		if err != nil {
			t.Fatal(err)
		}
		gl, err := got.Listing(name)
		if err != nil {
			t.Fatal(err)
		}
		if wl != gl {
			t.Errorf("%s: listings differ\n--- want ---\n%s\n--- got ---\n%s", name, wl, gl)
		}
	}
	if len(want.Machine.Code) != len(got.Machine.Code) {
		t.Fatalf("code image length %d, want %d", len(got.Machine.Code), len(want.Machine.Code))
	}
	for i := range want.Machine.Code {
		if want.Machine.Code[i] != got.Machine.Code[i] {
			t.Fatalf("code image differs at instruction %d", i)
		}
	}
}

// TestBadUnitsYieldDiagnosticsAndFilteredImage is the acceptance
// contract of error recovery: k broken defuns among good ones produce
// exactly k error diagnostics (each positioned), and the machine image
// is byte-identical to compiling the source with the broken forms
// deleted — at Jobs 1 and Jobs 8 alike.
func TestBadUnitsYieldDiagnosticsAndFilteredImage(t *testing.T) {
	plan, err := diag.ParsePlan("optimize:defun=bad-panic:panic")
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{1, 8} {
		ref := NewSystem(Options{Jobs: jobs, Fault: plan})
		if err := ref.LoadString(filteredSrc); err != nil {
			t.Fatalf("jobs=%d: filtered load: %v", jobs, err)
		}
		sys := NewSystem(Options{Jobs: jobs, Fault: plan})
		list := sys.LoadStringDiag(faultySrc)
		if got := list.Errors(); got != 3 {
			t.Fatalf("jobs=%d: %d error diagnostics, want 3:\n%v", jobs, got, list)
		}
		units := map[string]bool{}
		for _, d := range list.All() {
			if d.Line <= 0 || d.Col <= 0 {
				t.Errorf("jobs=%d: diagnostic lacks a position: %v", jobs, d)
			}
			units[d.Unit] = true
		}
		if !units["bad-dotted"] || !units["bad-panic"] {
			t.Errorf("jobs=%d: diagnostics name units %v", jobs, units)
		}
		requireSameImage(t, ref, sys)
		// The survivors run.
		v, err := sys.Call("good-c", sexp.Fixnum(6))
		if err != nil {
			t.Fatalf("jobs=%d: good-c: %v", jobs, err)
		}
		if sexp.Print(v) != "15" {
			t.Errorf("jobs=%d: good-c = %s", jobs, sexp.Print(v))
		}
	}
}

// TestInjectedPanicCarriesPhaseAndWorker: under a parallel load, a unit
// panicking in the optimizer must surface as a diagnostic naming the
// phase, the unit, a pool worker, and the unit's tree — and must not
// take any other unit down.
func TestInjectedPanicCarriesPhaseAndWorker(t *testing.T) {
	plan, err := diag.ParsePlan("optimize:defun=sq:panic")
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(Options{Jobs: 8, Fault: plan})
	list := sys.LoadStringDiag(corpusSrc)
	if list.Errors() != 1 {
		t.Fatalf("errors = %d, want 1:\n%v", list.Errors(), list)
	}
	var d *diag.Diagnostic
	for _, e := range list.All() {
		if e.Severity == diag.Error {
			d = e
		}
	}
	if d.Unit != "sq" || d.Phase != "optimize" {
		t.Errorf("diagnostic unit/phase = %s/%s", d.Unit, d.Phase)
	}
	if d.Worker < 1 {
		t.Errorf("worker = %d, want a pool id >= 1", d.Worker)
	}
	if !strings.Contains(d.Msg, "injected panic") || !strings.Contains(d.Msg, "in (lambda") {
		t.Errorf("message lacks panic text or tree context: %q", d.Msg)
	}
	// Everything else compiled and runs.
	if _, ok := sys.Defs["sq"]; ok {
		t.Error("failed unit was installed")
	}
	checkCall(t, sys, "tak", "7", sexp.Fixnum(14), sexp.Fixnum(7), sexp.Fixnum(0))
}

// TestInjectedErrorFault: the error kind fails the unit without a panic.
func TestInjectedErrorFault(t *testing.T) {
	plan, err := diag.ParsePlan("binding:defun=f:error")
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(Options{Fault: plan})
	list := sys.LoadStringDiag("(defun f (x) x)\n(defun g (x) (* x x))")
	if list.Errors() != 1 {
		t.Fatalf("errors = %d, want 1:\n%v", list.Errors(), list)
	}
	d := list.All()[0]
	if d.Unit != "f" || d.Phase != "binding" {
		t.Errorf("unit/phase = %s/%s", d.Unit, d.Phase)
	}
	checkCall(t, sys, "g", "49", sexp.Fixnum(7))
}

// TestCacheCorruptionRecompiles: a corrupt cache entry (injected) is
// detected by validation, reported as a warning, and the unit is
// recompiled — the load still succeeds.
func TestCacheCorruptionRecompiles(t *testing.T) {
	plan, err := diag.ParsePlan("cache:defun=f:corrupt")
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(Options{Cache: true, Fault: plan})
	const src = "(defun f (x) (+ x 10))"
	if err := sys.LoadString(src); err != nil {
		t.Fatalf("cold load: %v", err)
	}
	list := sys.LoadStringDiag(src)
	if list.HasErrors() {
		t.Fatalf("reload failed: %v", list)
	}
	warns := list.All()
	if len(warns) != 1 || warns[0].Severity != diag.Warning || warns[0].Phase != "cache" {
		t.Fatalf("diagnostics = %v, want one cache warning", warns)
	}
	if !strings.Contains(warns[0].Msg, "corrupt cache entry") {
		t.Errorf("warning message: %q", warns[0].Msg)
	}
	if sys.Stats().CompileCacheHits != 0 {
		t.Errorf("corrupt entry must not count as a hit: %d", sys.Stats().CompileCacheHits)
	}
	checkCall(t, sys, "f", "17", sexp.Fixnum(7))
	// Corruption fallback degrades to exactly a cache-off recompile: the
	// reloaded image matches a system that never had the cache.
	ref := NewSystem(Options{})
	if err := ref.LoadString(src); err != nil {
		t.Fatal(err)
	}
	if err := ref.LoadString(src); err != nil {
		t.Fatal(err)
	}
	rl, err := ref.Listing("f")
	if err != nil {
		t.Fatal(err)
	}
	gl, err := sys.Listing("f")
	if err != nil {
		t.Fatal(err)
	}
	if rl != gl {
		t.Errorf("recompiled listing differs from cache-off reload\n--- cache-off ---\n%s\n--- recompiled ---\n%s", rl, gl)
	}
}

// TestMaxErrorsCapCountsButStopsStoring: failures past the cap are
// counted (and fail the load) without being stored.
func TestMaxErrorsCapCountsButStopsStoring(t *testing.T) {
	sys := NewSystem(Options{MaxErrors: 2})
	list := sys.LoadStringDiag(`
(defun b1 (x) (car . x))
(defun b2 (x) (car . x))
(defun b3 (x) (car . x))
(defun b4 (x) (car . x))
(defun ok (x) x)`)
	if list.Errors() != 4 {
		t.Fatalf("errors = %d, want 4", list.Errors())
	}
	if list.Len() != 2 {
		t.Errorf("stored = %d, want 2", list.Len())
	}
	if list.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", list.Dropped())
	}
	if _, ok := sys.Defs["ok"]; !ok {
		t.Error("units past the cap must still compile")
	}
	if !strings.Contains(list.Error(), "past -max-errors") {
		t.Errorf("summary lacks drop note: %q", list.Error())
	}
}

// TestRuntimeErrorInToplevelIsDiagnosed: a top-level form that fails at
// run time yields a positioned "run" diagnostic, later forms still
// execute, and the system remains usable — the REPL contract.
func TestRuntimeErrorInToplevelIsDiagnosed(t *testing.T) {
	sys := NewSystem(Options{})
	v, list := sys.EvalStringDiag(`
(defun id (x) x)
(car (id 5))
(+ 20 22)`)
	if list.Errors() != 1 {
		t.Fatalf("errors = %d, want 1:\n%v", list.Errors(), list)
	}
	d := list.All()[0]
	if d.Phase != "run" || d.Line != 3 {
		t.Errorf("phase/line = %s/%d, want run/3", d.Phase, d.Line)
	}
	if sexp.Print(v) != "42" {
		t.Errorf("later form's value = %s, want 42", sexp.Print(v))
	}
	if w, err := sys.EvalString("(+ 1 2)"); err != nil || sexp.Print(w) != "3" {
		t.Errorf("system unusable after runtime error: %v %v", w, err)
	}
}

// TestStepLimitGuard: -max-steps turns a runaway program into a
// RuntimeError instead of a hang.
func TestStepLimitGuard(t *testing.T) {
	sys := NewSystem(Options{MaxSteps: 20_000})
	if err := sys.LoadString("(defun spin (x) (spin x))"); err != nil {
		t.Fatal(err)
	}
	_, err := sys.Call("spin", sexp.Fixnum(1))
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v, want step limit", err)
	}
}

// TestHeapLimitGuard: under -max-heap, unbounded retained allocation
// fails with a heap-exhausted RuntimeError after a forced GC — while a
// workload whose garbage collects back under the limit keeps running.
func TestHeapLimitGuard(t *testing.T) {
	sys := NewSystem(Options{MaxHeapWords: 4_000})
	if err := sys.LoadString(`
(defun retain (n acc) (if (zerop n) acc (retain (- n 1) (cons n acc))))
(defun churn (n) (if (zerop n) 'done (progn (cons 1 2) (churn (- n 1)))))`); err != nil {
		t.Fatal(err)
	}
	// Garbage-heavy but low-residency: must survive far more allocation
	// than the limit, by collecting.
	if _, err := sys.Call("churn", sexp.Fixnum(5_000)); err != nil {
		t.Fatalf("churn under limit: %v", err)
	}
	_, err := sys.Call("retain", sexp.Fixnum(5_000), sexp.Nil)
	if err == nil || !strings.Contains(err.Error(), "heap exhausted") {
		t.Fatalf("err = %v, want heap exhausted", err)
	}
	// The machine recovered: it still runs.
	if _, err := sys.Call("churn", sexp.Fixnum(10)); err != nil {
		t.Fatalf("machine unusable after heap fault: %v", err)
	}
}

// TestOptimizerWatchdog: an absurdly small budget trips on every unit,
// failing it with a watchdog diagnostic instead of hanging the load.
func TestOptimizerWatchdog(t *testing.T) {
	sys := NewSystem(Options{OptWatchdog: time.Nanosecond})
	list := sys.LoadStringDiag("(defun w (x) (+ x 1))")
	if list.Errors() != 1 {
		t.Fatalf("errors = %d, want 1:\n%v", list.Errors(), list)
	}
	if !strings.Contains(list.All()[0].Msg, "watchdog") {
		t.Errorf("message = %q, want watchdog", list.All()[0].Msg)
	}
}
