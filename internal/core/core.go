// Package core is the public face of the S-1 Lisp reproduction: a System
// bundles the reader, the preliminary converter, the source-level
// optimizer, the machine-dependent annotation phases, the code generator,
// the S-1 simulator, and the reference interpreter. Load Lisp source,
// call compiled functions, inspect listings and transcripts, and meter
// everything.
//
//	sys := core.NewSystem(core.Options{})
//	sys.LoadString(`(defun f (x) (* x x))`)
//	v, _ := sys.Call("f", sexp.Fixnum(9))   // compiled, on the simulator
//	w, _ := sys.Interpret("f", sexp.Fixnum(9)) // tree interpreter
package core

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/codegen"
	"repro/internal/compilecache"
	"repro/internal/convert"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/s1"
	"repro/internal/sexp"
)

// Options configure a System. The zero value enables every compiler
// phase.
type Options struct {
	// Codegen holds the per-phase toggles; zero means all phases on.
	Codegen *codegen.Options
	// OptimizerLog receives the §5-style transformation transcript.
	OptimizerLog io.Writer
	// Out receives print output from both the machine and the
	// interpreter.
	Out io.Writer
	// Constants are symbols resolved at compile time to literal values
	// (the static arrays of the §6.1 experiments).
	Constants map[string]sexp.Value
	// Jobs bounds the concurrent middle-end workers used while loading:
	// each defun's optimizer fixpoint, analyses and annotation phases run
	// as an independent unit on a worker pool, with machine installation
	// serialized in source order (so the built image is byte-identical to
	// a sequential load). 0 means GOMAXPROCS; 1 compiles sequentially.
	// The optimizer transcript stays in source order at any Jobs value:
	// each unit buffers its transcript during Prepare and the serialized
	// emit step flushes the buffers in source order.
	Jobs int
	// Obs, if non-nil, records per-phase compile spans and optimizer
	// rule-provenance events for the whole load (see internal/obs). Nil
	// costs one pointer check per phase.
	Obs *obs.Recorder
	// Cache enables the content-addressed compile cache: re-loading an
	// already-seen defun (same printed source, same options, same
	// constants, no macro redefinition in between) skips the middle end
	// and code generation entirely. Hit/miss counts appear in Stats().
	Cache bool
}

// System is a complete Lisp implementation instance.
type System struct {
	Machine  *s1.Machine
	Interp   *interp.Interp
	Conv     *convert.Converter
	Compiler *codegen.Compiler
	// Defs holds the converted program definitions for inspection.
	Defs map[string]int // name -> function index

	// Obs is the observability recorder this system reports to (nil when
	// tracing is off).
	Obs *obs.Recorder

	macros        map[*sexp.Symbol]*interp.Closure
	toplevelCount int
	batchCount    int

	jobs int
	// cache memoizes compiled bodies; constsFP and macroEpoch are the
	// non-source cache-key inputs (see compilecache.Key).
	cache      *compilecache.Cache
	constsFP   string
	macroEpoch int
}

// NewSystem builds a system.
func NewSystem(opts Options) *System {
	m := s1.New()
	in := interp.New()
	if opts.Out != nil {
		m.Out = opts.Out
		in.Out = opts.Out
	}
	// The machine's fallback primitives are the interpreter's builtins.
	m.SetPrimHook(func(name string, args []sexp.Value) (sexp.Value, error) {
		return in.CallNamed(sexp.Intern(name), args...)
	})
	co := codegen.DefaultOptions()
	if opts.Codegen != nil {
		co = *opts.Codegen
	}
	if opts.OptimizerLog != nil {
		co.OptimizerLog = opts.OptimizerLog
	}
	conv := convert.New()
	var constsFP string
	if len(opts.Constants) > 0 {
		consts := map[*sexp.Symbol]sexp.Value{}
		for k, v := range opts.Constants {
			consts[sexp.Intern(k)] = v
		}
		conv.Constants = consts
		// Canonical fingerprint for the cache key: constants are fixed at
		// system construction, so this is computed once.
		names := make([]string, 0, len(opts.Constants))
		for k := range opts.Constants {
			names = append(names, k)
		}
		sort.Strings(names)
		var b strings.Builder
		for _, k := range names {
			fmt.Fprintf(&b, "%s=%s\n", k, sexp.Print(opts.Constants[k]))
		}
		constsFP = b.String()
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	sys := &System{
		Machine:  m,
		Interp:   in,
		Conv:     conv,
		Compiler: codegen.New(m, co),
		Defs:     map[string]int{},
		Obs:      opts.Obs,
		macros:   map[*sexp.Symbol]*interp.Closure{},
		jobs:     jobs,
		constsFP: constsFP,
	}
	if opts.Cache {
		sys.cache = compilecache.New()
	}
	// defmacro: expanders are interpreter closures applied to the
	// unevaluated argument forms.
	conv.OnDefmacro = func(name *sexp.Symbol, lambdaList sexp.Value, body []sexp.Value) error {
		items := append([]sexp.Value{sexp.SymLambda, lambdaList}, body...)
		lam, err := conv.ConvertLambda(sexp.List(items...))
		if err != nil {
			return err
		}
		sys.macros[name] = &interp.Closure{Lambda: lam}
		// A (re)defined macro can change any later expansion, and a
		// printed form does not reveal which macros it consumed: epoch the
		// cache keys so every earlier entry stops matching.
		sys.macroEpoch++
		return nil
	}
	conv.UserMacro = func(head *sexp.Symbol, form sexp.Value) (sexp.Value, bool, error) {
		cl, ok := sys.macros[head]
		if !ok {
			return nil, false, nil
		}
		args, err := sexp.ListToSlice(form)
		if err != nil {
			return nil, false, err
		}
		exp, err := in.Apply(cl, args[1:])
		if err != nil {
			return nil, false, fmt.Errorf("core: expanding macro %s: %w", head.Name, err)
		}
		return exp, true, nil
	}
	return sys
}

// LoadString reads, converts, compiles and executes a program: defuns
// are compiled to machine code (and also installed in the interpreter),
// other top-level forms run on the simulator.
func (s *System) LoadString(src string) error {
	_, err := s.EvalString(src)
	return err
}

// EvalString is LoadString returning the value of the last top-level
// form (nil when the program is definitions only) — the REPL entry.
func (s *System) EvalString(src string) (sexp.Value, error) {
	// Reading and macro-conversion are batch-granularity stages (they see
	// the whole text, not one defun), so their spans attach to a pseudo
	// unit named for the batch.
	s.batchCount++
	batch := s.Obs.Task(fmt.Sprintf("%%batch-%d", s.batchCount), 0)
	sp := batch.Start("read")
	forms, err := sexp.ReadAll(src)
	sp.End()
	if err != nil {
		return nil, err
	}
	sp = batch.Start("convert")
	prog, err := s.Conv.ConvertTopLevel(forms)
	sp.End()
	if err != nil {
		return nil, err
	}
	if err := s.compileDefs(prog.Defs); err != nil {
		return nil, err
	}
	var last sexp.Value = sexp.Nil
	for i, form := range prog.TopForms {
		s.toplevelCount++
		name := fmt.Sprintf("%%toplevel-%d", s.toplevelCount)
		lam := convert.WrapToplevel(form)
		t := s.Obs.Task(name, 0)
		p, err := s.Compiler.PrepareTask(name, lam, t)
		if err != nil {
			return nil, fmt.Errorf("compiling top-level form %d: %w", i, err)
		}
		sp := t.Start("emit")
		idx, err := s.Compiler.Emit(name, p)
		sp.End()
		if err != nil {
			return nil, fmt.Errorf("compiling top-level form %d: %w", i, err)
		}
		s.Obs.AddRules(p.Rules())
		w, err := s.Machine.CallIndex(idx)
		if err != nil {
			return nil, fmt.Errorf("running top-level form %d: %w", i, err)
		}
		if last, err = s.Machine.ToValue(w); err != nil {
			return nil, err
		}
	}
	return last, nil
}

// unit is one defun flowing through the pipeline as an independent piece
// of work: cache probe, concurrent middle end, serial install.
type unit struct {
	d        *convert.Def
	key      string
	hitIdx   int
	hit      bool
	prepared *codegen.Prepared
	err      error
}

// compileDefs compiles a batch of definitions. The machine-independent
// middle end (optimizer fixpoint through pdl annotation) of each miss
// runs concurrently on a bounded worker pool; emission into the shared
// machine then proceeds serially in source order, so the machine image —
// code layout, symbol and function indices, heap contents — evolves
// exactly as under a sequential compile, and listings are byte-identical
// regardless of Jobs.
func (s *System) compileDefs(defs []*convert.Def) error {
	units := make([]*unit, len(defs))
	for i, d := range defs {
		u := &unit{d: d}
		units[i] = u
		if s.cache != nil && d.Source != nil {
			t := s.Obs.Task(d.Name.Name, 0)
			sp := t.Start("cache-probe")
			u.key = compilecache.Key(sexp.Print(d.Source), s.Compiler.Opts,
				s.constsFP, s.macroEpoch)
			if e, ok := s.cache.Lookup(u.key); ok {
				u.hit, u.hitIdx = true, e.Index
			}
			sp.End()
		}
	}

	// The middle end runs on a fixed pool of numbered workers (ids 1..N;
	// id 0 is the driver goroutine) so every span carries the identity of
	// the goroutine that produced it and per-worker span sets never
	// overlap in time — exactly what the trace view needs.
	pending := make([]*unit, 0, len(units))
	for _, u := range units {
		if !u.hit {
			pending = append(pending, u)
		}
	}
	workers := s.jobs
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers <= 1 {
		for _, u := range pending {
			t := s.Obs.Task(u.d.Name.Name, 0)
			u.prepared, u.err = s.Compiler.PrepareTask(u.d.Name.Name, u.d.Lambda, t)
		}
	} else {
		work := make(chan *unit)
		var wg sync.WaitGroup
		for w := 1; w <= workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for u := range work {
					t := s.Obs.Task(u.d.Name.Name, id)
					u.prepared, u.err = s.Compiler.PrepareTask(u.d.Name.Name, u.d.Lambda, t)
				}
			}(w)
		}
		for _, u := range pending {
			work <- u
		}
		close(work)
		wg.Wait()
	}

	for _, u := range units {
		d := u.d
		// The interpreter gets the converted tree (its role is the
		// semantic baseline).
		s.Interp.DefineFunction(d.Name, &interp.Closure{Lambda: d.Lambda})
		if u.hit {
			// The body is already resident in this machine: rebind the
			// name to the cached function index and skip the entire
			// middle and back end.
			s.Machine.Stats.CompileCacheHits++
			s.Machine.RebindFunction(d.Name.Name, u.hitIdx)
			s.Machine.SetSymbolFunction(d.Name.Name, s1.Ptr(s1.TagFunc, uint64(u.hitIdx)))
			s.Defs[d.Name.Name] = u.hitIdx
			continue
		}
		if u.err != nil {
			return fmt.Errorf("compiling %s: %w", d.Name.Name, u.err)
		}
		var idx int
		var err error
		t := s.Obs.Task(d.Name.Name, 0)
		sp := t.Start("emit")
		if s.cache != nil && u.key != "" {
			s.Machine.Stats.CompileCacheMisses++
			var items []s1.Item
			idx, items, err = s.Compiler.EmitRecorded(d.Name.Name, u.prepared)
			if err == nil {
				f := s.Machine.Funcs[idx]
				s.cache.Store(u.key, compilecache.Entry{
					Index: idx, MinArgs: f.MinArgs, MaxArgs: f.MaxArgs, Items: items,
				})
			}
		} else {
			idx, err = s.Compiler.Emit(d.Name.Name, u.prepared)
		}
		sp.End()
		if err != nil {
			return fmt.Errorf("compiling %s: %w", d.Name.Name, err)
		}
		// Rule events were buffered per-unit during the (possibly
		// concurrent) Prepare; appending them here, in the serialized
		// source-order install loop, keeps the recorder's rule stream
		// deterministic.
		s.Obs.AddRules(u.prepared.Rules())
		s.Defs[d.Name.Name] = idx
	}
	return nil
}

// Call invokes a compiled function on the simulator with host values.
func (s *System) Call(name string, args ...sexp.Value) (sexp.Value, error) {
	words := make([]s1.Word, len(args))
	for i, a := range args {
		words[i] = s.Machine.FromValue(a)
	}
	w, err := s.Machine.CallFunction(name, words...)
	if err != nil {
		return nil, err
	}
	return s.Machine.ToValue(w)
}

// Interpret invokes the same function in the reference interpreter.
// Global value cells established by top-level forms (which execute on the
// simulator) are mirrored into the interpreter first, so defvar'd
// specials are visible; thereafter the two engines' dynamic states evolve
// independently.
func (s *System) Interpret(name string, args ...sexp.Value) (sexp.Value, error) {
	for i := range s.Machine.Syms {
		cell := &s.Machine.Syms[i]
		if !cell.HasValue {
			continue
		}
		sym := sexp.Intern(cell.Name)
		if _, ok := s.Interp.Globals[sym]; ok {
			continue
		}
		v, err := s.Machine.ToValue(cell.Value)
		if err != nil {
			continue // machine-only values stay machine-only
		}
		s.Interp.Globals[sym] = v
	}
	return s.Interp.CallNamed(sexp.Intern(name), args...)
}

// Listing returns the assembly listing of a compiled function.
func (s *System) Listing(name string) (string, error) {
	idx, ok := s.Defs[name]
	if !ok {
		return "", fmt.Errorf("core: no compiled function %q", name)
	}
	f := s.Machine.Funcs[idx]
	var b strings.Builder
	fmt.Fprintf(&b, ";;; %s (entry %d)\n", f.Name, f.Entry)
	b.WriteString(s1.Listing(s.Machine.Code, f.Entry, f.End))
	return b.String(), nil
}

// StaticMOVs counts MOV instructions in a compiled function (the §6.1
// code-quality metric).
func (s *System) StaticMOVs(name string) (int, error) {
	idx, ok := s.Defs[name]
	if !ok {
		return 0, fmt.Errorf("core: no compiled function %q", name)
	}
	f := s.Machine.Funcs[idx]
	return s1.CountMOVs(s.Machine.Code, f.Entry, f.End), nil
}

// InstructionCount returns the number of instructions in a compiled
// function.
func (s *System) InstructionCount(name string) (int, error) {
	idx, ok := s.Defs[name]
	if !ok {
		return 0, fmt.Errorf("core: no compiled function %q", name)
	}
	f := s.Machine.Funcs[idx]
	return f.End - f.Entry, nil
}

// ReadConstArray reads back the machine's copy of a compile-time constant
// float array (writes by compiled code land in the machine heap, not in
// the host object).
func (s *System) ReadConstArray(fa *sexp.FloatArray) (*sexp.FloatArray, error) {
	w, ok := s.Compiler.ConstArrayWord(fa)
	if !ok {
		return nil, fmt.Errorf("core: array was never used by compiled code")
	}
	v, err := s.Machine.ToValue(w)
	if err != nil {
		return nil, err
	}
	out, ok := v.(*sexp.FloatArray)
	if !ok {
		return nil, fmt.Errorf("core: constant is not a float array")
	}
	return out, nil
}

// Stats exposes the simulator's meters.
func (s *System) Stats() *s1.Stats { return &s.Machine.Stats }

// ResetStats clears the simulator meters.
func (s *System) ResetStats() { s.Machine.ResetStats() }
