// Package core is the public face of the S-1 Lisp reproduction: a System
// bundles the reader, the preliminary converter, the source-level
// optimizer, the machine-dependent annotation phases, the code generator,
// the S-1 simulator, and the reference interpreter. Load Lisp source,
// call compiled functions, inspect listings and transcripts, and meter
// everything.
//
//	sys := core.NewSystem(core.Options{})
//	sys.LoadString(`(defun f (x) (* x x))`)
//	v, _ := sys.Call("f", sexp.Fixnum(9))   // compiled, on the simulator
//	w, _ := sys.Interpret("f", sexp.Fixnum(9)) // tree interpreter
package core

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/codegen"
	"repro/internal/convert"
	"repro/internal/interp"
	"repro/internal/s1"
	"repro/internal/sexp"
)

// Options configure a System. The zero value enables every compiler
// phase.
type Options struct {
	// Codegen holds the per-phase toggles; zero means all phases on.
	Codegen *codegen.Options
	// OptimizerLog receives the §5-style transformation transcript.
	OptimizerLog io.Writer
	// Out receives print output from both the machine and the
	// interpreter.
	Out io.Writer
	// Constants are symbols resolved at compile time to literal values
	// (the static arrays of the §6.1 experiments).
	Constants map[string]sexp.Value
}

// System is a complete Lisp implementation instance.
type System struct {
	Machine  *s1.Machine
	Interp   *interp.Interp
	Conv     *convert.Converter
	Compiler *codegen.Compiler
	// Defs holds the converted program definitions for inspection.
	Defs map[string]int // name -> function index

	macros        map[*sexp.Symbol]*interp.Closure
	toplevelCount int
}

// NewSystem builds a system.
func NewSystem(opts Options) *System {
	m := s1.New()
	in := interp.New()
	if opts.Out != nil {
		m.Out = opts.Out
		in.Out = opts.Out
	}
	// The machine's fallback primitives are the interpreter's builtins.
	m.SetPrimHook(func(name string, args []sexp.Value) (sexp.Value, error) {
		return in.CallNamed(sexp.Intern(name), args...)
	})
	co := codegen.DefaultOptions()
	if opts.Codegen != nil {
		co = *opts.Codegen
	}
	if opts.OptimizerLog != nil {
		co.OptimizerLog = opts.OptimizerLog
	}
	conv := convert.New()
	if len(opts.Constants) > 0 {
		consts := map[*sexp.Symbol]sexp.Value{}
		for k, v := range opts.Constants {
			consts[sexp.Intern(k)] = v
		}
		conv.Constants = consts
	}
	sys := &System{
		Machine:  m,
		Interp:   in,
		Conv:     conv,
		Compiler: codegen.New(m, co),
		Defs:     map[string]int{},
		macros:   map[*sexp.Symbol]*interp.Closure{},
	}
	// defmacro: expanders are interpreter closures applied to the
	// unevaluated argument forms.
	conv.OnDefmacro = func(name *sexp.Symbol, lambdaList sexp.Value, body []sexp.Value) error {
		items := append([]sexp.Value{sexp.SymLambda, lambdaList}, body...)
		lam, err := conv.ConvertLambda(sexp.List(items...))
		if err != nil {
			return err
		}
		sys.macros[name] = &interp.Closure{Lambda: lam}
		return nil
	}
	conv.UserMacro = func(head *sexp.Symbol, form sexp.Value) (sexp.Value, bool, error) {
		cl, ok := sys.macros[head]
		if !ok {
			return nil, false, nil
		}
		args, err := sexp.ListToSlice(form)
		if err != nil {
			return nil, false, err
		}
		exp, err := in.Apply(cl, args[1:])
		if err != nil {
			return nil, false, fmt.Errorf("core: expanding macro %s: %w", head.Name, err)
		}
		return exp, true, nil
	}
	return sys
}

// LoadString reads, converts, compiles and executes a program: defuns
// are compiled to machine code (and also installed in the interpreter),
// other top-level forms run on the simulator.
func (s *System) LoadString(src string) error {
	_, err := s.EvalString(src)
	return err
}

// EvalString is LoadString returning the value of the last top-level
// form (nil when the program is definitions only) — the REPL entry.
func (s *System) EvalString(src string) (sexp.Value, error) {
	forms, err := sexp.ReadAll(src)
	if err != nil {
		return nil, err
	}
	prog, err := s.Conv.ConvertTopLevel(forms)
	if err != nil {
		return nil, err
	}
	for _, d := range prog.Defs {
		// The interpreter gets the unoptimized tree (its role is the
		// semantic baseline).
		s.Interp.DefineFunction(d.Name, &interp.Closure{Lambda: d.Lambda})
		idx, err := s.Compiler.CompileFunction(d.Name.Name, d.Lambda)
		if err != nil {
			return nil, fmt.Errorf("compiling %s: %w", d.Name.Name, err)
		}
		s.Defs[d.Name.Name] = idx
	}
	var last sexp.Value = sexp.Nil
	for i, form := range prog.TopForms {
		s.toplevelCount++
		name := fmt.Sprintf("%%toplevel-%d", s.toplevelCount)
		lam := convert.WrapToplevel(form)
		idx, err := s.Compiler.CompileFunction(name, lam)
		if err != nil {
			return nil, fmt.Errorf("compiling top-level form %d: %w", i, err)
		}
		w, err := s.Machine.CallIndex(idx)
		if err != nil {
			return nil, fmt.Errorf("running top-level form %d: %w", i, err)
		}
		if last, err = s.Machine.ToValue(w); err != nil {
			return nil, err
		}
	}
	return last, nil
}

// Call invokes a compiled function on the simulator with host values.
func (s *System) Call(name string, args ...sexp.Value) (sexp.Value, error) {
	words := make([]s1.Word, len(args))
	for i, a := range args {
		words[i] = s.Machine.FromValue(a)
	}
	w, err := s.Machine.CallFunction(name, words...)
	if err != nil {
		return nil, err
	}
	return s.Machine.ToValue(w)
}

// Interpret invokes the same function in the reference interpreter.
// Global value cells established by top-level forms (which execute on the
// simulator) are mirrored into the interpreter first, so defvar'd
// specials are visible; thereafter the two engines' dynamic states evolve
// independently.
func (s *System) Interpret(name string, args ...sexp.Value) (sexp.Value, error) {
	for i := range s.Machine.Syms {
		cell := &s.Machine.Syms[i]
		if !cell.HasValue {
			continue
		}
		sym := sexp.Intern(cell.Name)
		if _, ok := s.Interp.Globals[sym]; ok {
			continue
		}
		v, err := s.Machine.ToValue(cell.Value)
		if err != nil {
			continue // machine-only values stay machine-only
		}
		s.Interp.Globals[sym] = v
	}
	return s.Interp.CallNamed(sexp.Intern(name), args...)
}

// Listing returns the assembly listing of a compiled function.
func (s *System) Listing(name string) (string, error) {
	idx, ok := s.Defs[name]
	if !ok {
		return "", fmt.Errorf("core: no compiled function %q", name)
	}
	f := s.Machine.Funcs[idx]
	var b strings.Builder
	fmt.Fprintf(&b, ";;; %s (entry %d)\n", f.Name, f.Entry)
	b.WriteString(s1.Listing(s.Machine.Code, f.Entry, f.End))
	return b.String(), nil
}

// StaticMOVs counts MOV instructions in a compiled function (the §6.1
// code-quality metric).
func (s *System) StaticMOVs(name string) (int, error) {
	idx, ok := s.Defs[name]
	if !ok {
		return 0, fmt.Errorf("core: no compiled function %q", name)
	}
	f := s.Machine.Funcs[idx]
	return s1.CountMOVs(s.Machine.Code, f.Entry, f.End), nil
}

// InstructionCount returns the number of instructions in a compiled
// function.
func (s *System) InstructionCount(name string) (int, error) {
	idx, ok := s.Defs[name]
	if !ok {
		return 0, fmt.Errorf("core: no compiled function %q", name)
	}
	f := s.Machine.Funcs[idx]
	return f.End - f.Entry, nil
}

// ReadConstArray reads back the machine's copy of a compile-time constant
// float array (writes by compiled code land in the machine heap, not in
// the host object).
func (s *System) ReadConstArray(fa *sexp.FloatArray) (*sexp.FloatArray, error) {
	w, ok := s.Compiler.ConstArrayWord(fa)
	if !ok {
		return nil, fmt.Errorf("core: array was never used by compiled code")
	}
	v, err := s.Machine.ToValue(w)
	if err != nil {
		return nil, err
	}
	out, ok := v.(*sexp.FloatArray)
	if !ok {
		return nil, fmt.Errorf("core: constant is not a float array")
	}
	return out, nil
}

// Stats exposes the simulator's meters.
func (s *System) Stats() *s1.Stats { return &s.Machine.Stats }

// ResetStats clears the simulator meters.
func (s *System) ResetStats() { s.Machine.ResetStats() }
