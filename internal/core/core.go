// Package core is the public face of the S-1 Lisp reproduction: a System
// bundles the reader, the preliminary converter, the source-level
// optimizer, the machine-dependent annotation phases, the code generator,
// the S-1 simulator, and the reference interpreter. Load Lisp source,
// call compiled functions, inspect listings and transcripts, and meter
// everything.
//
//	sys := core.NewSystem(core.Options{})
//	sys.LoadString(`(defun f (x) (* x x))`)
//	v, _ := sys.Call("f", sexp.Fixnum(9))   // compiled, on the simulator
//	w, _ := sys.Interpret("f", sexp.Fixnum(9)) // tree interpreter
package core

import (
	"errors"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/codegen"
	"repro/internal/compilecache"
	"repro/internal/convert"
	"repro/internal/diag"
	"repro/internal/interp"
	"repro/internal/obs"
	"repro/internal/s1"
	"repro/internal/sexp"
	"repro/internal/tree"
)

// Options configure a System. The zero value enables every compiler
// phase.
type Options struct {
	// Codegen holds the per-phase toggles; zero means all phases on.
	Codegen *codegen.Options
	// OptimizerLog receives the §5-style transformation transcript.
	OptimizerLog io.Writer
	// Out receives print output from both the machine and the
	// interpreter.
	Out io.Writer
	// Constants are symbols resolved at compile time to literal values
	// (the static arrays of the §6.1 experiments).
	Constants map[string]sexp.Value
	// Jobs bounds the concurrent middle-end workers used while loading:
	// each defun's optimizer fixpoint, analyses and annotation phases run
	// as an independent unit on a worker pool, with machine installation
	// serialized in source order (so the built image is byte-identical to
	// a sequential load). 0 means GOMAXPROCS; 1 compiles sequentially.
	// The optimizer transcript stays in source order at any Jobs value:
	// each unit buffers its transcript during Prepare and the serialized
	// emit step flushes the buffers in source order.
	Jobs int
	// Obs, if non-nil, records per-phase compile spans and optimizer
	// rule-provenance events for the whole load (see internal/obs). Nil
	// costs one pointer check per phase.
	Obs *obs.Recorder
	// Cache enables the content-addressed compile cache: re-loading an
	// already-seen defun (same printed source, same options, same
	// constants, no macro redefinition in between) skips the middle end
	// and code generation entirely. Hit/miss counts appear in Stats().
	Cache bool
	// DiskCache, if non-nil, adds the durable on-disk layer under the
	// in-memory cache (implies Cache): misses probe the crash-safe store
	// and, when the entry's recorded allocator context matches this
	// machine, replay its captured emission instead of compiling —
	// producing the byte-identical image a recompile would have. The
	// handle is shared: many Systems (and many processes) may use one.
	// Ignored when Constants is non-empty, because compile-time constant
	// arrays are interned per-process and would break cross-process
	// replay.
	DiskCache *compilecache.Disk
	// GCStress forces a simulator collection before every heap
	// allocation (the -gc-stress flag), surfacing construction-order GC
	// bugs deterministically. Orders of magnitude slower; testing only.
	GCStress bool
	// GCStressMinor forces a *minor* collection before every allocation
	// (the -gc-stress-minor flag): the generational counterpart of
	// GCStress, turning any missing write barrier into a deterministic
	// poisoned read. Testing only.
	GCStressMinor bool
	// GCNoGen makes every automatic collection a full mark-sweep (the
	// -gc-nogen flag), disabling minor collections. The differential
	// suites compare this mode against the generational default;
	// observable behavior (results, stats, profiles) is identical.
	GCNoGen bool
	// GCMinorBudget bounds minor-collection pauses (the -gc-minor-budget
	// flag): a minor that overruns it escalates the next automatic
	// collection to a full one. 0 disables. Wall-clock dependent, so it
	// trades the collector's cross-run determinism for bounded pauses.
	GCMinorBudget time.Duration
	// Arena, if non-nil, recycles a previous machine's heap, GC-record,
	// stack and card storage into this system's machine (the slcd
	// per-request pool; see s1.NewFromArena). The machine takes ownership
	// until s1.Machine.ReleaseArena hands the storage back.
	Arena *s1.Arena
	// MaxErrors bounds the error diagnostics *stored* per load (the
	// -max-errors flag): 0 means the default of 20, negative means
	// unlimited. Failures past the cap are still counted (and still fail
	// the load), so the surviving image never depends on the cap.
	MaxErrors int
	// Fault is the fault-injection plan consulted at phase boundaries
	// (the -fault flag / SLC_FAULT env; see diag.ParsePlan). Nil means
	// no injection.
	Fault *diag.Plan
	// MaxSteps overrides the simulator's total instruction budget
	// (the -max-steps flag; 0 keeps the machine default).
	MaxSteps int64
	// MaxHeapWords bounds live simulator heap words (the -max-heap
	// flag): an allocation that cannot fit even after a forced GC fails
	// with a RuntimeError instead of growing the heap without bound.
	// 0 means unlimited.
	MaxHeapWords int64
	// OptWatchdog bounds the wall-clock time of each unit's optimizer
	// fixpoint (the -opt-watchdog flag); an expired unit fails with a
	// diagnostic. 0 means no watchdog.
	OptWatchdog time.Duration
	// NoFuse disables the simulator's peephole superinstruction fuser
	// (the -nofuse flag): execution still runs on the pre-decoded
	// instruction stream, but every instruction dispatches individually.
	// Observable behavior is identical either way (see DESIGN.md §10);
	// the switch exists for differential testing and benchmarking.
	NoFuse bool
	// NoTier disables the simulator's tiered execution engine (the
	// -notier flag): functions never promote to trace-refused,
	// block-lowered code and only the static fuser applies. Observable
	// behavior is identical either way (see DESIGN.md §12); the switch
	// exists for differential testing and benchmarking.
	NoTier bool
	// HotThreshold overrides the tier promotion threshold (the
	// -hot-threshold flag): a function is re-optimized once its
	// invocation count reaches the threshold. 0 keeps the machine
	// default (s1.DefaultHotThreshold); negative promotes every function
	// at install time ("forced hot"). Ignored when NoTier is set.
	HotThreshold int64
	// Flight, if non-nil, receives runtime and cache events (GC pauses,
	// tier promotions, disk-cache hit/miss) for the always-on flight
	// recorder. Shared across Systems; events carry TraceID.
	Flight *obs.Flight
	// TraceID is the W3C trace id stamped on this system's flight events
	// (the daemon sets it per request).
	TraceID string
}

// DefaultMaxErrors is the stored-diagnostic cap when Options.MaxErrors
// is zero.
const DefaultMaxErrors = 20

// System is a complete Lisp implementation instance.
type System struct {
	Machine  *s1.Machine
	Interp   *interp.Interp
	Conv     *convert.Converter
	Compiler *codegen.Compiler
	// Defs holds the converted program definitions for inspection.
	Defs map[string]int // name -> function index

	// Obs is the observability recorder this system reports to (nil when
	// tracing is off).
	Obs *obs.Recorder

	macros        map[*sexp.Symbol]*interp.Closure
	toplevelCount int
	batchCount    int
	// sources accumulates every loaded source text, in load order — the
	// replay script a snapshot stores so a restore can rehydrate the
	// interpreter and macro expanders without touching the machine
	// (snapshot.go).
	sources []string

	jobs int
	// cache memoizes compiled bodies; constsFP and macroEpoch are the
	// non-source cache-key inputs (see compilecache.Key). disk is the
	// durable layer consulted on memory misses (nil = none).
	cache      *compilecache.Cache
	disk       *compilecache.Disk
	constsFP   string
	macroEpoch int

	// fault is the injection plan (nil = none); maxErrors is the
	// resolved stored-diagnostic cap (0 = unlimited).
	fault     *diag.Plan
	maxErrors int

	// flight is the event recorder (nil = none); traceID stamps its
	// events with the owning request's trace.
	flight  *obs.Flight
	traceID string
}

// TraceID returns the trace id this system stamps on flight events.
func (s *System) TraceID() string { return s.traceID }

// NewSystem builds a system.
func NewSystem(opts Options) *System {
	m := s1.NewFromArena(opts.Arena)
	in := interp.New()
	if opts.Out != nil {
		m.Out = opts.Out
		in.Out = opts.Out
	}
	// The machine's fallback primitives are the interpreter's builtins.
	m.SetPrimHook(func(name string, args []sexp.Value) (sexp.Value, error) {
		return in.CallNamed(sexp.Intern(name), args...)
	})
	co := codegen.DefaultOptions()
	if opts.Codegen != nil {
		co = *opts.Codegen
	}
	if opts.OptimizerLog != nil {
		co.OptimizerLog = opts.OptimizerLog
	}
	co.Fault = opts.Fault
	co.OptWatchdog = opts.OptWatchdog
	if opts.MaxSteps > 0 {
		m.StepLimit = opts.MaxSteps
	}
	if opts.MaxHeapWords > 0 {
		m.HeapLimit = opts.MaxHeapWords
	}
	if opts.NoFuse {
		m.SetNoFuse(true)
	}
	if opts.NoTier {
		m.SetNoTier()
	} else if opts.HotThreshold != 0 {
		m.SetHotThreshold(opts.HotThreshold)
	}
	if opts.GCStress {
		m.SetGCStress(true)
	}
	if opts.GCStressMinor {
		m.SetGCStressMinor(true)
	}
	if opts.GCNoGen {
		m.SetGCNoGen(true)
	}
	if opts.GCMinorBudget > 0 {
		m.SetGCMinorBudget(opts.GCMinorBudget)
	}
	maxErrors := opts.MaxErrors
	switch {
	case maxErrors == 0:
		maxErrors = DefaultMaxErrors
	case maxErrors < 0:
		maxErrors = 0 // unlimited
	}
	conv := convert.New()
	var constsFP string
	if len(opts.Constants) > 0 {
		consts := map[*sexp.Symbol]sexp.Value{}
		for k, v := range opts.Constants {
			consts[sexp.Intern(k)] = v
		}
		conv.Constants = consts
		// Canonical fingerprint for the cache key: constants are fixed at
		// system construction, so this is computed once.
		names := make([]string, 0, len(opts.Constants))
		for k := range opts.Constants {
			names = append(names, k)
		}
		sort.Strings(names)
		var b strings.Builder
		for _, k := range names {
			fmt.Fprintf(&b, "%s=%s\n", k, sexp.Print(opts.Constants[k]))
		}
		constsFP = b.String()
	}
	jobs := opts.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	sys := &System{
		Machine:   m,
		Interp:    in,
		Conv:      conv,
		Compiler:  codegen.New(m, co),
		Defs:      map[string]int{},
		Obs:       opts.Obs,
		macros:    map[*sexp.Symbol]*interp.Closure{},
		jobs:      jobs,
		constsFP:  constsFP,
		fault:     opts.Fault,
		maxErrors: maxErrors,
		flight:    opts.Flight,
		traceID:   opts.TraceID,
	}
	if fl := opts.Flight; fl != nil {
		tid := opts.TraceID
		m.OnEvent = func(kind, unit string, d time.Duration) {
			fl.Record(obs.Event{Kind: kind, Trace: tid, Unit: unit, DurNs: int64(d)})
		}
	}
	if opts.Cache || opts.DiskCache != nil {
		sys.cache = compilecache.New()
	}
	if opts.DiskCache != nil && len(opts.Constants) == 0 {
		sys.disk = opts.DiskCache
	}
	// defmacro: expanders are interpreter closures applied to the
	// unevaluated argument forms.
	conv.OnDefmacro = func(name *sexp.Symbol, lambdaList sexp.Value, body []sexp.Value) error {
		items := append([]sexp.Value{sexp.SymLambda, lambdaList}, body...)
		lam, err := conv.ConvertLambda(sexp.List(items...))
		if err != nil {
			return err
		}
		sys.macros[name] = &interp.Closure{Lambda: lam}
		// A (re)defined macro can change any later expansion, and a
		// printed form does not reveal which macros it consumed: epoch the
		// cache keys so every earlier entry stops matching.
		sys.macroEpoch++
		return nil
	}
	conv.UserMacro = func(head *sexp.Symbol, form sexp.Value) (sexp.Value, bool, error) {
		cl, ok := sys.macros[head]
		if !ok {
			return nil, false, nil
		}
		args, err := sexp.ListToSlice(form)
		if err != nil {
			return nil, false, err
		}
		exp, err := in.Apply(cl, args[1:])
		if err != nil {
			return nil, false, fmt.Errorf("core: expanding macro %s: %w", head.Name, err)
		}
		return exp, true, nil
	}
	return sys
}

// LoadString reads, converts, compiles and executes a program: defuns
// are compiled to machine code (and also installed in the interpreter),
// other top-level forms run on the simulator. When any unit fails, the
// returned error is the *diag.List of everything that went wrong — the
// surviving units are still compiled and installed.
func (s *System) LoadString(src string) error {
	_, err := s.EvalString(src)
	return err
}

// EvalString is LoadString returning the value of the last successful
// top-level form (nil when the program is definitions only) — the REPL
// entry.
func (s *System) EvalString(src string) (sexp.Value, error) {
	v, list := s.EvalStringDiag(src)
	if list.HasErrors() {
		return v, list
	}
	return v, nil
}

// LoadStringDiag is LoadString with the full diagnostic list: every
// failed unit (syntax error, convert error, panicking or faulted
// middle-end, runtime error in a top-level form) contributes one
// diagnostic, and every good unit is compiled regardless. The list is
// never nil; a clean load returns an empty one.
func (s *System) LoadStringDiag(src string) *diag.List {
	_, list := s.EvalStringDiag(src)
	return list
}

// unitName extracts the defining name from a (defun name ...) style
// top-level form, for diagnostic labeling; "" when the form defines
// nothing nameable.
func unitName(form sexp.Value) string {
	items, err := sexp.ListToSlice(form)
	if err != nil || len(items) < 2 {
		return ""
	}
	head, ok := items[0].(*sexp.Symbol)
	if !ok {
		return ""
	}
	switch head.Name {
	case "defun", "defmacro", "defvar", "defparameter", "defconstant":
		if n, ok := items[1].(*sexp.Symbol); ok {
			return n.Name
		}
	}
	return ""
}

// asDiag adapts an arbitrary unit error to a Diagnostic, filling in the
// unit name and source position when the error does not already carry
// them.
func asDiag(err error, unit string, line, col int) *diag.Diagnostic {
	if d, ok := err.(*diag.Diagnostic); ok {
		if d.Unit == "" {
			d.Unit = unit
		}
		if d.Line == 0 {
			d.Line, d.Col = line, col
		}
		return d
	}
	d := &diag.Diagnostic{
		Severity: diag.Error, Unit: unit, Line: line, Col: col,
		Msg: err.Error(), Err: err,
	}
	var inj *diag.InjectedFault
	if errors.As(err, &inj) {
		d.Phase = inj.Phase
	}
	return d
}

// EvalStringDiag is the diagnostic-accumulating load pipeline. The
// source is read with resynchronization (each syntax error costs one
// top-level form and reading resumes at the next), converted and
// compiled one unit at a time, and executed; a failed unit is skipped
// before anything of it reaches the machine, so the resulting image is
// byte-identical to compiling the source with the failed forms deleted.
// The value of the last successful top-level form is returned alongside
// the (never nil) diagnostic list.
func (s *System) EvalStringDiag(src string) (sexp.Value, *diag.List) {
	list := diag.NewList(s.maxErrors)
	s.sources = append(s.sources, src)
	// Reading and macro-conversion are batch-granularity stages (they see
	// the whole text, not one defun), so their spans attach to a pseudo
	// unit named for the batch.
	s.batchCount++
	batch := s.Obs.Task(fmt.Sprintf("%%batch-%d", s.batchCount), 0)
	sp := batch.Start("read")
	forms, rerrs := sexp.ReadAllRecover(src)
	sp.End()
	for _, re := range rerrs {
		list.Add(&diag.Diagnostic{
			Severity: diag.Error, Phase: "read",
			Line: re.Line, Col: re.Col, Msg: re.Msg, Err: re,
		})
	}

	sp = batch.Start("convert")
	prog := convert.NewProgram()
	// First pass: gather proclamations so that later defuns see them.
	for _, f := range forms {
		s.Conv.ScanProclaim(f.Val)
	}
	// Second pass: convert per-form so one bad form costs one unit. The
	// positions of whatever each form appended travel alongside Defs and
	// TopForms for diagnostic labeling.
	var defLines, defCols, topLines, topCols []int
	for _, f := range forms {
		err := func() (err error) {
			name := unitName(f.Val)
			defer func() {
				if r := recover(); r != nil {
					err = diag.FromPanic(r, "convert", name, 0, "")
				}
			}()
			if err := s.fault.Fire("convert", name); err != nil {
				return err
			}
			return s.Conv.TopForm(prog, f.Val)
		}()
		if err != nil {
			list.Add(asDiag(err, unitName(f.Val), f.Line, f.Col))
			continue
		}
		for len(defLines) < len(prog.Defs) {
			defLines, defCols = append(defLines, f.Line), append(defCols, f.Col)
		}
		for len(topLines) < len(prog.TopForms) {
			topLines, topCols = append(topLines, f.Line), append(topCols, f.Col)
		}
	}
	s.Conv.FinishProgram(prog)
	sp.End()

	s.compileDefs(prog.Defs, defLines, defCols, list)

	var last sexp.Value = sexp.Nil
	for i, form := range prog.TopForms {
		s.toplevelCount++
		name := fmt.Sprintf("%%toplevel-%d", s.toplevelCount)
		line, col := topLines[i], topCols[i]
		lam := convert.WrapToplevel(form)
		t := s.Obs.Task(name, 0)
		p, err := s.safePrepare(name, lam, t, 0)
		if err != nil {
			list.Add(asDiag(err, name, line, col))
			continue
		}
		sp := t.Start("emit")
		idx, err := s.Compiler.Emit(name, p)
		sp.End()
		if err != nil {
			list.Add(asDiag(err, name, line, col))
			continue
		}
		s.Obs.AddRules(p.Rules())
		w, err := s.Machine.CallIndex(idx)
		if err != nil {
			d := asDiag(err, name, line, col)
			d.Phase = "run"
			list.Add(d)
			continue
		}
		if v, err := s.Machine.ToValue(w); err != nil {
			d := asDiag(err, name, line, col)
			d.Phase = "run"
			list.Add(d)
		} else {
			last = v
		}
	}
	return last, list
}

// safePrepare runs the concurrent-safe middle end of one unit under a
// recover barrier: a panicking unit (an optimizer bug, an injected
// fault) becomes an error diagnostic carrying the pipeline phase that
// was in flight, the worker id, and the unit's tree — and takes down
// only itself.
func (s *System) safePrepare(name string, lam *tree.Lambda, t *obs.Task, worker int) (p *codegen.Prepared, err error) {
	defer func() {
		if r := recover(); r != nil {
			d := diag.FromPanic(r, t.CurrentPhase(), name, worker, tree.Show(lam))
			if d.Phase == "" {
				d.Phase = "compile"
			}
			err = d
		}
	}()
	return s.Compiler.PrepareTask(name, lam, t)
}

// unit is one defun flowing through the pipeline as an independent piece
// of work: cache probe, concurrent middle end, serial install.
type unit struct {
	d        *convert.Def
	key      string
	hitIdx   int
	hit      bool
	disk     *compilecache.DiskEntry
	prepared *codegen.Prepared
	err      error
}

// compileDefs compiles a batch of definitions. The machine-independent
// middle end (optimizer fixpoint through pdl annotation) of each miss
// runs concurrently on a bounded worker pool; emission into the shared
// machine then proceeds serially in source order, so the machine image —
// code layout, symbol and function indices, heap contents — evolves
// exactly as under a sequential compile, and listings are byte-identical
// regardless of Jobs. A unit that fails (or panics) anywhere before its
// emit step contributes a diagnostic to list and nothing to the machine;
// lines/cols are the source positions of the defs, parallel to defs.
func (s *System) compileDefs(defs []*convert.Def, lines, cols []int, list *diag.List) {
	pos := func(i int) (int, int) {
		if i < len(lines) {
			return lines[i], cols[i]
		}
		return 0, 0
	}
	units := make([]*unit, len(defs))
	for i, d := range defs {
		u := &unit{d: d}
		units[i] = u
		if s.cache != nil && d.Source != nil {
			t := s.Obs.Task(d.Name.Name, 0)
			sp := t.Start("cache-probe")
			u.key = compilecache.Key(sexp.Print(d.Source), s.Compiler.Opts,
				s.constsFP, s.macroEpoch)
			if e, ok := s.cache.Lookup(u.key); ok {
				if s.fault.ShouldCorrupt("cache", d.Name.Name) {
					// Simulated corruption: point the entry past the
					// function table so validation must catch it.
					e.Index = len(s.Machine.Funcs) + 1
				}
				if verr := e.Validate(s.Machine); verr != nil {
					line, col := pos(i)
					list.Add(&diag.Diagnostic{
						Severity: diag.Warning, Unit: d.Name.Name,
						Phase: "cache", Line: line, Col: col,
						Msg: "corrupt cache entry, recompiling: " + verr.Error(),
						Err: verr,
					})
				} else {
					u.hit, u.hitIdx = true, e.Index
				}
			}
			if !u.hit && s.disk != nil {
				// Memory miss: probe the durable layer. Whether the entry
				// actually replays is decided at install time — earlier
				// units' installs move the allocator context — so the probe
				// only fetches and verifies the bytes.
				dsp := t.Start("disk-probe")
				if de, ok := s.disk.Lookup(u.key); ok {
					u.disk = de
				}
				dsp.End()
			}
			sp.End()
		}
	}

	// The middle end runs on a fixed pool of numbered workers (ids 1..N;
	// id 0 is the driver goroutine) so every span carries the identity of
	// the goroutine that produced it and per-worker span sets never
	// overlap in time — exactly what the trace view needs.
	pending := make([]*unit, 0, len(units))
	for _, u := range units {
		// Disk-hit candidates skip the concurrent middle end too: when the
		// replay turns out not to apply, the install loop compiles them
		// inline (the rare path — a corpus whose prefix diverged).
		if !u.hit && u.disk == nil {
			pending = append(pending, u)
		}
	}
	workers := s.jobs
	if workers > len(pending) {
		workers = len(pending)
	}
	if workers <= 1 {
		for _, u := range pending {
			t := s.Obs.Task(u.d.Name.Name, 0)
			u.prepared, u.err = s.safePrepare(u.d.Name.Name, u.d.Lambda, t, 0)
		}
	} else {
		work := make(chan *unit)
		var wg sync.WaitGroup
		for w := 1; w <= workers; w++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				for u := range work {
					t := s.Obs.Task(u.d.Name.Name, id)
					u.prepared, u.err = s.safePrepare(u.d.Name.Name, u.d.Lambda, t, id)
				}
			}(w)
		}
		for _, u := range pending {
			work <- u
		}
		close(work)
		wg.Wait()
	}

	for i, u := range units {
		d := u.d
		if u.err != nil {
			// The unit failed before touching the machine: report it and
			// skip installation entirely (including the interpreter), as
			// if the form had been deleted from the source.
			line, col := pos(i)
			list.Add(asDiag(u.err, d.Name.Name, line, col))
			continue
		}
		// The interpreter gets the converted tree (its role is the
		// semantic baseline).
		s.Interp.DefineFunction(d.Name, &interp.Closure{Lambda: d.Lambda})
		if u.hit {
			// The body is already resident in this machine: rebind the
			// name to the cached function index and skip the entire
			// middle and back end.
			s.flight.Record(obs.Event{Kind: "cache-hit", Trace: s.traceID, Unit: d.Name.Name, Msg: "memory"})
			s.Machine.Stats.CompileCacheHits++
			s.Machine.RebindFunction(d.Name.Name, u.hitIdx)
			s.Machine.SetSymbolFunction(d.Name.Name, s1.Ptr(s1.TagFunc, uint64(u.hitIdx)))
			s.Defs[d.Name.Name] = u.hitIdx
			continue
		}
		if u.disk != nil {
			// A durable entry exists for this source. If its recorded
			// allocator context and gensym counter match the machine right
			// now, replaying it reproduces the emission word for word.
			// Otherwise compile inline — a mismatch is normal (different
			// corpus prefix), not an error.
			t := s.Obs.Task(d.Name.Name, 0)
			if rerr := u.disk.Replayable(s.Machine, s.Compiler.GenCount()); rerr == nil {
				sp := t.Start("disk-replay")
				genBefore := s.Compiler.GenCount()
				idx, ierr := u.disk.Install(s.Machine)
				sp.End()
				if ierr == nil {
					s.flight.Record(obs.Event{Kind: "cache-hit", Trace: s.traceID, Unit: d.Name.Name, Msg: "disk"})
					s.Compiler.SetGenCount(genBefore + u.disk.GenDelta)
					s.Machine.Stats.CompileCacheHits++
					s.Machine.RebindFunction(d.Name.Name, idx)
					s.Machine.SetSymbolFunction(d.Name.Name, s1.Ptr(s1.TagFunc, uint64(idx)))
					s.Defs[d.Name.Name] = idx
					f := s.Machine.Funcs[idx]
					last := u.disk.Capture.Funcs[len(u.disk.Capture.Funcs)-1]
					s.cache.Store(u.key, compilecache.Entry{
						Index: idx, MinArgs: f.MinArgs, MaxArgs: f.MaxArgs,
						Items: s1.ToItems(last.Items),
					})
					continue
				}
				// A mid-replay failure may have left partial mutations;
				// recompiling is still correct, but flag it loudly.
				s.flight.Record(obs.Event{
					Kind: "cache-miss", Sev: obs.SevWarn, Trace: s.traceID,
					Unit: d.Name.Name, Msg: "replay failed: " + ierr.Error(),
				})
				line, col := pos(i)
				list.Add(&diag.Diagnostic{
					Severity: diag.Warning, Unit: d.Name.Name,
					Phase: "disk-replay", Line: line, Col: col,
					Msg: "durable cache replay failed, recompiling: " + ierr.Error(),
					Err: ierr,
				})
			}
			// Inline fallback: this unit skipped the worker-pool Prepare.
			u.prepared, u.err = s.safePrepare(d.Name.Name, d.Lambda, t, 0)
			if u.err != nil {
				line, col := pos(i)
				list.Add(asDiag(u.err, d.Name.Name, line, col))
				continue
			}
		}
		if err := func() (err error) {
			defer func() {
				if r := recover(); r != nil {
					err = diag.FromPanic(r, "emit", d.Name.Name, 0, "")
				}
			}()
			return s.fault.Fire("emit", d.Name.Name)
		}(); err != nil {
			line, col := pos(i)
			list.Add(asDiag(err, d.Name.Name, line, col))
			continue
		}
		var idx int
		var err error
		t := s.Obs.Task(d.Name.Name, 0)
		sp := t.Start("emit")
		if s.cache != nil && u.key != "" {
			s.flight.Record(obs.Event{Kind: "cache-miss", Trace: s.traceID, Unit: d.Name.Name})
			s.Machine.Stats.CompileCacheMisses++
			var items []s1.Item
			var ctxBefore string
			genBefore := s.Compiler.GenCount()
			gcBefore := s.Machine.GCMeters.Collections
			if s.disk != nil {
				// Record the emission's machine mutations for the durable
				// layer, against the context they started from.
				ctxBefore = s.Machine.AllocContext()
				s.Machine.BeginCapture()
			}
			idx, items, err = s.Compiler.EmitRecorded(d.Name.Name, u.prepared)
			capt := s.Machine.EndCapture()
			if err == nil {
				f := s.Machine.Funcs[idx]
				s.cache.Store(u.key, compilecache.Entry{
					Index: idx, MinArgs: f.MinArgs, MaxArgs: f.MaxArgs, Items: items,
				})
				// A collection mid-emission would make the recorded
				// allocation sequence context-dependent (the mark set at
				// the collection point includes code not yet present during
				// a replay), so such captures are discarded rather than
				// stored.
				if capt != nil && s.Machine.GCMeters.Collections == gcBefore {
					de := &compilecache.DiskEntry{
						Key: u.key, Name: d.Name.Name,
						MinArgs: f.MinArgs, MaxArgs: f.MaxArgs,
						GenBefore: genBefore, GenDelta: s.Compiler.GenCount() - genBefore,
						Ctx: ctxBefore, Capture: *capt,
					}
					if serr := s.disk.Store(u.key, de); serr != nil {
						line, col := pos(i)
						list.Add(&diag.Diagnostic{
							Severity: diag.Warning, Unit: d.Name.Name,
							Phase: "disk-store", Line: line, Col: col,
							Msg: "durable cache store failed: " + serr.Error(),
							Err: serr,
						})
					}
				}
			}
		} else {
			idx, err = s.Compiler.Emit(d.Name.Name, u.prepared)
		}
		sp.End()
		if err != nil {
			line, col := pos(i)
			list.Add(asDiag(fmt.Errorf("compiling %s: %w", d.Name.Name, err), d.Name.Name, line, col))
			continue
		}
		// Rule events were buffered per-unit during the (possibly
		// concurrent) Prepare; appending them here, in the serialized
		// source-order install loop, keeps the recorder's rule stream
		// deterministic.
		s.Obs.AddRules(u.prepared.Rules())
		s.Defs[d.Name.Name] = idx
	}
}

// Call invokes a compiled function on the simulator with host values.
func (s *System) Call(name string, args ...sexp.Value) (sexp.Value, error) {
	words := make([]s1.Word, len(args))
	for i, a := range args {
		words[i] = s.Machine.FromValue(a)
	}
	w, err := s.Machine.CallFunction(name, words...)
	if err != nil {
		return nil, err
	}
	return s.Machine.ToValue(w)
}

// Interpret invokes the same function in the reference interpreter.
// Global value cells established by top-level forms (which execute on the
// simulator) are mirrored into the interpreter first, so defvar'd
// specials are visible; thereafter the two engines' dynamic states evolve
// independently.
func (s *System) Interpret(name string, args ...sexp.Value) (sexp.Value, error) {
	for i := range s.Machine.Syms {
		cell := &s.Machine.Syms[i]
		if !cell.HasValue {
			continue
		}
		sym := sexp.Intern(cell.Name)
		if _, ok := s.Interp.Globals[sym]; ok {
			continue
		}
		v, err := s.Machine.ToValue(cell.Value)
		if err != nil {
			continue // machine-only values stay machine-only
		}
		s.Interp.Globals[sym] = v
	}
	return s.Interp.CallNamed(sexp.Intern(name), args...)
}

// Listing returns the assembly listing of a compiled function.
func (s *System) Listing(name string) (string, error) {
	idx, ok := s.Defs[name]
	if !ok {
		return "", fmt.Errorf("core: no compiled function %q", name)
	}
	f := s.Machine.Funcs[idx]
	var b strings.Builder
	fmt.Fprintf(&b, ";;; %s (entry %d)\n", f.Name, f.Entry)
	b.WriteString(s1.Listing(s.Machine.Code, f.Entry, f.End))
	return b.String(), nil
}

// StaticMOVs counts MOV instructions in a compiled function (the §6.1
// code-quality metric).
func (s *System) StaticMOVs(name string) (int, error) {
	idx, ok := s.Defs[name]
	if !ok {
		return 0, fmt.Errorf("core: no compiled function %q", name)
	}
	f := s.Machine.Funcs[idx]
	return s1.CountMOVs(s.Machine.Code, f.Entry, f.End), nil
}

// InstructionCount returns the number of instructions in a compiled
// function.
func (s *System) InstructionCount(name string) (int, error) {
	idx, ok := s.Defs[name]
	if !ok {
		return 0, fmt.Errorf("core: no compiled function %q", name)
	}
	f := s.Machine.Funcs[idx]
	return f.End - f.Entry, nil
}

// ReadConstArray reads back the machine's copy of a compile-time constant
// float array (writes by compiled code land in the machine heap, not in
// the host object).
func (s *System) ReadConstArray(fa *sexp.FloatArray) (*sexp.FloatArray, error) {
	w, ok := s.Compiler.ConstArrayWord(fa)
	if !ok {
		return nil, fmt.Errorf("core: array was never used by compiled code")
	}
	v, err := s.Machine.ToValue(w)
	if err != nil {
		return nil, err
	}
	out, ok := v.(*sexp.FloatArray)
	if !ok {
		return nil, fmt.Errorf("core: constant is not a float array")
	}
	return out, nil
}

// Stats exposes the simulator's meters.
func (s *System) Stats() *s1.Stats { return &s.Machine.Stats }

// ResetStats clears the simulator meters.
func (s *System) ResetStats() { s.Machine.ResetStats() }
