package core

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/obs"
)

// obsCorpus generates n defuns with optimizable bodies plus one
// top-level call, so every pipeline phase and the rule-provenance path
// all fire.
func obsCorpus(n int) string {
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `(defun obs-f%d (x y)
  (let ((t1 (+ x y)))
    (if nil 0 (+ (* t1 t1) (* 2 3) %d))))
`, i, i)
	}
	b.WriteString("(obs-f0 1 2)\n")
	return b.String()
}

// spanSet flattens a recorder's spans to sorted "unit/phase" strings,
// dropping the worker id and timing — the shape that must be identical
// between sequential and parallel compiles.
func spanSet(r *obs.Recorder) []string {
	var out []string
	for _, s := range r.Spans() {
		out = append(out, s.Unit+"/"+s.Phase)
	}
	sort.Strings(out)
	return out
}

// The acceptance criterion: compiling the same program under -jobs 4
// must record exactly the same per-defun span multiset as -jobs 1 —
// only worker ids and timings may differ.
func TestSpanSetParallelEqualsSequential(t *testing.T) {
	src := obsCorpus(12)
	recs := map[int]*obs.Recorder{}
	for _, jobs := range []int{1, 4} {
		r := obs.NewRecorder()
		sys := NewSystem(Options{Jobs: jobs, Obs: r})
		if err := sys.LoadString(src); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		recs[jobs] = r
	}
	seq, par := spanSet(recs[1]), spanSet(recs[4])
	if len(seq) == 0 {
		t.Fatalf("sequential run recorded no spans")
	}
	if strings.Join(seq, "\n") != strings.Join(par, "\n") {
		t.Fatalf("span sets differ:\njobs=1 (%d spans):\n%s\njobs=4 (%d spans):\n%s",
			len(seq), strings.Join(seq, "\n"), len(par), strings.Join(par, "\n"))
	}
	// Both runs fired the same rules in the same (source) order.
	ruleLog := func(r *obs.Recorder) string {
		var b strings.Builder
		for _, ev := range r.Rules() {
			fmt.Fprintf(&b, "%s %s %s=>%s\n", ev.Unit, ev.Rule, ev.Before, ev.After)
		}
		return b.String()
	}
	if ruleLog(recs[1]) != ruleLog(recs[4]) {
		t.Fatalf("rule event logs differ between jobs=1 and jobs=4")
	}
}

// The full trace of a parallel compile must pass the golden checker.
func TestParallelTraceWellFormed(t *testing.T) {
	r := obs.NewRecorder()
	sys := NewSystem(Options{Jobs: 4, Obs: r})
	if err := sys.LoadString(obsCorpus(16)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ValidateTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("parallel trace not well-formed: %v", err)
	}
	if sum.Spans == 0 {
		t.Fatalf("trace has no spans")
	}
}

// The meters-delta test: re-loading an already-seen defun with the
// cache on must record a cache probe but skip the middle end entirely —
// no optimize/analysis/emit spans for the hit.
func TestCacheHitSkipsMiddleEndSpans(t *testing.T) {
	r := obs.NewRecorder()
	sys := NewSystem(Options{Cache: true, Obs: r})
	src := "(defun obs-hit (x) (+ x 1))\n"
	if err := sys.LoadString(src); err != nil {
		t.Fatal(err)
	}
	if n := r.CountSpans("obs-hit", "optimize"); n != 1 {
		t.Fatalf("first load: %d optimize spans, want 1", n)
	}
	before := map[string]int{
		"cache-probe": r.CountSpans("obs-hit", "cache-probe"),
		"optimize":    r.CountSpans("obs-hit", "optimize"),
		"analysis":    r.CountSpans("obs-hit", "analysis"),
		"emit":        r.CountSpans("obs-hit", "emit"),
	}
	if err := sys.LoadString(src); err != nil {
		t.Fatal(err)
	}
	if got := r.CountSpans("obs-hit", "cache-probe"); got != before["cache-probe"]+1 {
		t.Fatalf("second load did not record a cache probe")
	}
	for _, phase := range []string{"optimize", "analysis", "emit"} {
		if got := r.CountSpans("obs-hit", phase); got != before[phase] {
			t.Fatalf("cache hit still ran %s (spans %d -> %d)", phase, before[phase], got)
		}
	}
	if sys.Stats().CompileCacheHits != 1 {
		t.Fatalf("expected exactly one cache hit, got %d", sys.Stats().CompileCacheHits)
	}
}

// The transcript satellite: with the per-unit buffering, an optimizer
// transcript produced under -jobs 4 must be byte-identical to the
// sequential one.
func TestTranscriptParallelByteIdentical(t *testing.T) {
	src := obsCorpus(12)
	out := map[int]string{}
	for _, jobs := range []int{1, 4} {
		var log bytes.Buffer
		sys := NewSystem(Options{Jobs: jobs, OptimizerLog: &log})
		if err := sys.LoadString(src); err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		out[jobs] = log.String()
	}
	if out[1] == "" {
		t.Fatalf("sequential transcript is empty")
	}
	if out[1] != out[4] {
		t.Fatalf("transcripts differ:\n--- jobs=1 ---\n%s\n--- jobs=4 ---\n%s",
			out[1], out[4])
	}
}

// Race coverage: many batches compiled in sequence on a jobs=4 system
// with a live recorder; the -race CI run makes this meaningful.
func TestConcurrentSpanRecordingRace(t *testing.T) {
	r := obs.NewRecorder()
	sys := NewSystem(Options{Jobs: 4, Obs: r})
	for batch := 0; batch < 4; batch++ {
		var b strings.Builder
		for i := 0; i < 8; i++ {
			fmt.Fprintf(&b, "(defun race-%d-%d (x) (* (+ x %d) (+ x %d)))\n",
				batch, i, batch, i)
		}
		if err := sys.LoadString(b.String()); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.CountSpans("", "optimize"); got < 32 {
		t.Fatalf("expected >=32 optimize spans, got %d", got)
	}
}

// Loading with a nil recorder must work and record nothing — the
// disabled fast path used by every pre-existing caller.
func TestNilObsPath(t *testing.T) {
	sys := NewSystem(Options{Jobs: 4})
	if err := sys.LoadString(obsCorpus(4)); err != nil {
		t.Fatal(err)
	}
	if sys.Obs != nil {
		t.Fatalf("system invented a recorder")
	}
}
