package core

import (
	"strings"
	"testing"

	"repro/internal/codegen"
	"repro/internal/sexp"
)

// loadSys builds a system and loads src, failing the test on error.
func loadSys(t *testing.T, src string) *System {
	t.Helper()
	sys := NewSystem(Options{})
	if err := sys.LoadString(src); err != nil {
		t.Fatalf("load: %v", err)
	}
	return sys
}

// checkCall compares the compiled result against an expected printout.
func checkCall(t *testing.T, sys *System, fn string, want string, args ...sexp.Value) {
	t.Helper()
	v, err := sys.Call(fn, args...)
	if err != nil {
		t.Fatalf("call %s: %v", fn, err)
	}
	if got := sexp.Print(v); got != want {
		t.Errorf("(%s ...) = %s, want %s", fn, got, want)
	}
}

func TestCompiledArithmetic(t *testing.T) {
	sys := loadSys(t, `
(defun sq (x) (* x x))
(defun fsum (a b c) (+$f a (+$f b c)))
(defun isum (a b c) (+& a (+& b c)))
(defun mixed (a b) (+ (* a 2) (/ b 2.0)))`)
	checkCall(t, sys, "sq", "49", sexp.Fixnum(7))
	checkCall(t, sys, "sq", "6.25", sexp.Flonum(2.5))
	checkCall(t, sys, "fsum", "6.0", sexp.Flonum(1), sexp.Flonum(2), sexp.Flonum(3))
	checkCall(t, sys, "isum", "6", sexp.Fixnum(1), sexp.Fixnum(2), sexp.Fixnum(3))
	checkCall(t, sys, "mixed", "7.5", sexp.Fixnum(3), sexp.Fixnum(3))
}

func TestCompiledConditionals(t *testing.T) {
	sys := loadSys(t, `
(defun sign (x) (cond ((< x 0) 'neg) ((> x 0) 'pos) (t 'zero)))
(defun boolop (a b c) (if (and a (or b c)) 'one 'two))`)
	checkCall(t, sys, "sign", "neg", sexp.Fixnum(-3))
	checkCall(t, sys, "sign", "pos", sexp.Fixnum(3))
	checkCall(t, sys, "sign", "zero", sexp.Fixnum(0))
	for _, c := range []struct {
		a, b, c sexp.Value
		want    string
	}{
		{sexp.T, sexp.T, sexp.Nil, "one"},
		{sexp.T, sexp.Nil, sexp.T, "one"},
		{sexp.T, sexp.Nil, sexp.Nil, "two"},
		{sexp.Nil, sexp.T, sexp.T, "two"},
	} {
		checkCall(t, sys, "boolop", c.want, c.a, c.b, c.c)
	}
}

func TestCompiledLists(t *testing.T) {
	sys := loadSys(t, `
(defun swap (p) (cons (cdr p) (car p)))
(defun len (l) (if (null l) 0 (+ 1 (len (cdr l)))))
(defun build (n) (if (zerop n) nil (cons n (build (- n 1)))))
(defun smash (p) (rplaca p 99) p)`)
	checkCall(t, sys, "swap", "(2 . 1)", mustRead("(1 . 2)"))
	checkCall(t, sys, "len", "3", mustRead("(a b c)"))
	checkCall(t, sys, "build", "(3 2 1)", sexp.Fixnum(3))
	checkCall(t, sys, "smash", "(99 2)", mustRead("(1 2)"))
}

func TestExptlConstantStack(t *testing.T) {
	// E3: the §2 example runs in constant stack no matter how large n is.
	sys := loadSys(t, `
(defun exptl (x n a)
  (cond ((zerop n) a)
        ((oddp n) (exptl (* x x) (floor n 2) (* a x)))
        (t (exptl (* x x) (floor n 2) a))))`)
	checkCall(t, sys, "exptl", "1024", sexp.Fixnum(2), sexp.Fixnum(10), sexp.Fixnum(1))
	sys.ResetStats()
	checkCall(t, sys, "exptl", "1152921504606846976",
		sexp.Fixnum(2), sexp.Fixnum(60), sexp.Fixnum(1))
	small := sys.Stats().MaxStack
	sys.ResetStats()
	// Bignum world: n = 400 → still constant stack.
	v, err := sys.Call("exptl", sexp.Fixnum(2), sexp.Fixnum(400), sexp.Fixnum(1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sexp.Print(v), "258224987808690858965591917200") {
		t.Errorf("2^400 = %s", sexp.Print(v))
	}
	if sys.Stats().MaxStack > small+8 {
		t.Errorf("tail recursion must not grow the stack: %d vs %d",
			sys.Stats().MaxStack, small)
	}
}

func TestDeepTailLoop(t *testing.T) {
	sys := loadSys(t, `
(defun countdown (n acc) (if (zerop n) acc (countdown (- n 1) (+ acc 1))))`)
	sys.ResetStats()
	checkCall(t, sys, "countdown", "50000", sexp.Fixnum(50000), sexp.Fixnum(0))
	if sys.Stats().MaxStack > 64 {
		t.Errorf("tail loop stack depth = %d", sys.Stats().MaxStack)
	}
	if sys.Stats().TailCalls < 50000 {
		t.Errorf("tail calls = %d", sys.Stats().TailCalls)
	}
}

func TestNonTailRecursionWorks(t *testing.T) {
	sys := loadSys(t, `
(defun fib (n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(defun fact (n) (if (zerop n) 1 (* n (fact (- n 1)))))`)
	checkCall(t, sys, "fib", "610", sexp.Fixnum(15))
	checkCall(t, sys, "fact", "2432902008176640000", sexp.Fixnum(20))
	// Bignum promotion through the generic SQ arithmetic.
	v, err := sys.Call("fact", sexp.Fixnum(25))
	if err != nil {
		t.Fatal(err)
	}
	if sexp.Print(v) != "15511210043330985984000000" {
		t.Errorf("fact 25 = %s", sexp.Print(v))
	}
}

func TestMutualRecursion(t *testing.T) {
	sys := loadSys(t, `
(defun my-even (n) (if (zerop n) t (my-odd (- n 1))))
(defun my-odd (n) (if (zerop n) nil (my-even (- n 1))))`)
	checkCall(t, sys, "my-even", "t", sexp.Fixnum(10))
	checkCall(t, sys, "my-odd", "t", sexp.Fixnum(7))
}

func TestQuadratic(t *testing.T) {
	sys := loadSys(t, `
(defun quadratic (a b c)
  (let ((d (- (* b b) (* 4.0 a c))))
    (cond ((< d 0) '())
          ((= d 0) (list (/ (- b) (* 2.0 a))))
          (t (let ((2a (* 2.0 a)) (sd (sqrt d)))
               (list (/ (+ (- b) sd) 2a)
                     (/ (- (- b) sd) 2a)))))))`)
	checkCall(t, sys, "quadratic", "(2.0 1.0)",
		sexp.Flonum(1), sexp.Flonum(-3), sexp.Flonum(2))
	checkCall(t, sys, "quadratic", "(-1.0)",
		sexp.Flonum(1), sexp.Flonum(2), sexp.Flonum(1))
	checkCall(t, sys, "quadratic", "nil",
		sexp.Flonum(1), sexp.Flonum(0), sexp.Flonum(1))
}

func TestOptionalArguments(t *testing.T) {
	// The §7 dispatch behavior.
	sys := loadSys(t, `
(defun tf (a &optional (b 3.0) (c a)) (list a b c))`)
	checkCall(t, sys, "tf", "(1.0 3.0 1.0)", sexp.Flonum(1))
	checkCall(t, sys, "tf", "(1.0 2.0 1.0)", sexp.Flonum(1), sexp.Flonum(2))
	checkCall(t, sys, "tf", "(1.0 2.0 5.0)",
		sexp.Flonum(1), sexp.Flonum(2), sexp.Flonum(5))
	if _, err := sys.Call("tf"); err == nil {
		t.Error("zero arguments should be an error")
	}
	if _, err := sys.Call("tf", sexp.Fixnum(1), sexp.Fixnum(2), sexp.Fixnum(3), sexp.Fixnum(4)); err == nil {
		t.Error("four arguments should be an error")
	}
}

func TestRestArguments(t *testing.T) {
	sys := loadSys(t, `(defun f (a &rest r) (cons a r))`)
	checkCall(t, sys, "f", "(1 2 3)", sexp.Fixnum(1), sexp.Fixnum(2), sexp.Fixnum(3))
	checkCall(t, sys, "f", "(1)", sexp.Fixnum(1))
	if _, err := sys.Call("f"); err == nil {
		t.Error("missing required argument should error")
	}
}

func TestClosures(t *testing.T) {
	sys := loadSys(t, `
(defun make-adder (n) (lambda (x) (+ x n)))
(defun call-it (f x) (funcall f x))
(defun adder-test (k x) (call-it (make-adder k) x))
(defun make-counter ()
  (let ((n 0))
    (lambda () (setq n (+ n 1)) n)))
(defun count3 ()
  (let ((c (make-counter)))
    (funcall c) (funcall c) (funcall c)))`)
	checkCall(t, sys, "adder-test", "42", sexp.Fixnum(40), sexp.Fixnum(2))
	checkCall(t, sys, "count3", "3")
	if sys.Stats().EnvAllocs == 0 {
		t.Error("closures should allocate environments")
	}
}

func TestNestedClosureChain(t *testing.T) {
	sys := loadSys(t, `
(defun make-add3 (a)
  (lambda (b)
    (lambda (c) (+ a (+ b c)))))
(defun use-add3 (a b c)
  (funcall (funcall (make-add3 a) b) c))`)
	checkCall(t, sys, "use-add3", "6", sexp.Fixnum(1), sexp.Fixnum(2), sexp.Fixnum(3))
}

func TestSpecialVariables(t *testing.T) {
	sys := loadSys(t, `
(defvar *depth* 0)
(defun probe () *depth*)
(defun with-depth (d) (let ((*depth* d)) (probe)))
(defun bump () (setq *depth* (+ *depth* 1)) *depth*)
(defun bump-bound () (let ((*depth* 100)) (bump)))`)
	checkCall(t, sys, "probe", "0")
	checkCall(t, sys, "with-depth", "42", sexp.Fixnum(42))
	checkCall(t, sys, "probe", "0") // binding unwound
	checkCall(t, sys, "bump-bound", "101")
	checkCall(t, sys, "probe", "0") // setq hit the let binding only
	if sys.Machine.BindingDepth() != 0 {
		t.Error("binding stack should be empty")
	}
}

func TestSpecialParameter(t *testing.T) {
	sys := loadSys(t, `
(proclaim '(special dyn))
(defun reader () dyn)
(defun outer (dyn) (reader))`)
	checkCall(t, sys, "outer", "7", sexp.Fixnum(7))
}

func TestCatchThrowCompiled(t *testing.T) {
	sys := loadSys(t, `
(defun inner (x) (throw 'escape (* x 2)))
(defun outer (x) (catch 'escape (inner x) 'not-reached))
(defun no-throw () (catch 'escape 1 2))`)
	checkCall(t, sys, "outer", "14", sexp.Fixnum(7))
	checkCall(t, sys, "no-throw", "2")
	if _, err := sys.Call("inner", sexp.Fixnum(1)); err == nil {
		t.Error("uncaught throw should error")
	}
}

func TestProgLoopCompiled(t *testing.T) {
	sys := loadSys(t, `
(defun sumto (n)
  (prog (i s)
    (setq i 0 s 0)
   loop
    (if (> i n) (return s) nil)
    (setq s (+ s i) i (+ i 1))
    (go loop)))`)
	checkCall(t, sys, "sumto", "5050", sexp.Fixnum(100))
}

func TestDoLoopCompiled(t *testing.T) {
	sys := loadSys(t, `
(defun powsum (n)
  (do ((i 0 (+ i 1)) (acc 0 (+ acc (* i i))))
      ((> i n) acc)))`)
	checkCall(t, sys, "powsum", "385", sexp.Fixnum(10))
}

func TestCaseqCompiled(t *testing.T) {
	sys := loadSys(t, `
(defun kind (k) (caseq k ((1 2 3) 'small) (10 'ten) ((a b) 'letter) (t 'big)))`)
	checkCall(t, sys, "kind", "small", sexp.Fixnum(2))
	checkCall(t, sys, "kind", "ten", sexp.Fixnum(10))
	checkCall(t, sys, "kind", "letter", sexp.Intern("b"))
	checkCall(t, sys, "kind", "big", sexp.Fixnum(99))
}

func TestFloatArrays(t *testing.T) {
	sys := loadSys(t, `
(defun fill-sq (a n)
  (dotimes (i n a)
    (aset$f a (float (* i i)) i)))
(defun get1 (a i) (aref$f a i))`)
	arr := sexp.NewFloatArray([]int{5})
	v, err := sys.Call("fill-sq", arr, sexp.Fixnum(5))
	if err != nil {
		t.Fatal(err)
	}
	fa := v.(*sexp.FloatArray)
	if fa.Data[3] != 9.0 {
		t.Errorf("a[3] = %v", fa.Data[3])
	}
}

func TestTopLevelForms(t *testing.T) {
	var out strings.Builder
	sys := NewSystem(Options{Out: &out})
	err := sys.LoadString(`
(defvar *g* 5)
(defun get-g () *g*)
(setq *g* (+ *g* 1))
(print (get-g))`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "6") {
		t.Errorf("output = %q", out.String())
	}
	checkCall(t, sys, "get-g", "6")
}

func TestFallbackPrims(t *testing.T) {
	sys := loadSys(t, `
(defun rev (l) (reverse l))
(defun app (a b) (append a b))
(defun mem (x l) (member x l))`)
	checkCall(t, sys, "rev", "(3 2 1)", mustRead("(1 2 3)"))
	checkCall(t, sys, "app", "(1 2 3 4)", mustRead("(1 2)"), mustRead("(3 4)"))
	checkCall(t, sys, "mem", "(2 3)", sexp.Fixnum(2), mustRead("(1 2 3)"))
}

func TestPdlNumbersAvoidHeap(t *testing.T) {
	// E6: floats that must take pointer form but only flow to safe
	// operations (a user call, a let binding) stay on the stack. d and e
	// are POINTER-represented (their uses disagree: observe wants
	// pointers, max$f wants raw).
	src := `
(defun observe (a b) nil)
(defun poly (x)
  (let ((d (+$f x 1.0)) (e (*$f x x)))
    (observe d e)
    (max$f d e)))`
	sys := loadSys(t, src)
	sys.ResetStats()
	checkCall(t, sys, "poly", "4.0", sexp.Flonum(2))
	// One boxing for the argument conversion, one for the returned value.
	withPdl := sys.Stats().FlonumAllocs
	if withPdl > 2 {
		t.Errorf("pdl numbers on: %d flonum allocations (want <= 2: arg + result)", withPdl)
	}
	if c := sys.Stats().Certifies; c == 0 {
		t.Error("returned pointer should have been certified")
	}

	noPdlOpts := codegen.DefaultOptions()
	noPdlOpts.PdlNumbers = false
	sys2 := NewSystem(Options{Codegen: &noPdlOpts})
	if err := sys2.LoadString(src); err != nil {
		t.Fatal(err)
	}
	sys2.ResetStats()
	checkCall(t, sys2, "poly", "4.0", sexp.Flonum(2))
	withoutPdl := sys2.Stats().FlonumAllocs
	if withoutPdl <= withPdl {
		t.Errorf("ablation broken: with=%d without=%d", withPdl, withoutPdl)
	}
}

func TestRepAnalysisAvoidsBoxing(t *testing.T) {
	// E5: a float chain boxes once (the return) with rep analysis on.
	src := `(defun chain (x) (+$f (*$f x x) (+$f x 1.0)))`
	sys := loadSys(t, src)
	sys.ResetStats()
	checkCall(t, sys, "chain", "7.0", sexp.Flonum(2))
	on := sys.Stats().FlonumAllocs - 1 // minus the argument conversion

	off := codegen.DefaultOptions()
	off.RepAnalysis = false
	off.PdlNumbers = false
	sys2 := NewSystem(Options{Codegen: &off})
	if err := sys2.LoadString(src); err != nil {
		t.Fatal(err)
	}
	sys2.ResetStats()
	checkCall(t, sys2, "chain", "7.0", sexp.Flonum(2))
	offAllocs := sys2.Stats().FlonumAllocs
	if on > 1 {
		t.Errorf("rep analysis on: %d flonum allocs (want 1: the result)", on)
	}
	if offAllocs <= on {
		t.Errorf("rep ablation broken: on=%d off=%d", on, offAllocs)
	}
}

func TestAllPhaseCombinations(t *testing.T) {
	// E10: every phase toggle still yields a correct compiler.
	src := `
(defun work (n)
  (let ((acc 0.0))
    (dotimes (i n acc)
      (setq acc (+$f acc (sqrt$f (float (* i i))))))))`
	want := "45.0"
	for mask := 0; mask < 32; mask++ {
		opts := codegen.Options{
			UseTN:          mask&1 != 0,
			RepAnalysis:    mask&2 != 0,
			PdlNumbers:     mask&4 != 0,
			SpecialCaching: mask&8 != 0,
			Optimize:       mask&16 != 0,
		}
		sys := NewSystem(Options{Codegen: &opts})
		if err := sys.LoadString(src); err != nil {
			t.Fatalf("mask %05b: load: %v", mask, err)
		}
		v, err := sys.Call("work", sexp.Fixnum(10))
		if err != nil {
			t.Fatalf("mask %05b: %v", mask, err)
		}
		if sexp.Print(v) != want {
			t.Errorf("mask %05b: got %s want %s", mask, sexp.Print(v), want)
		}
	}
}

func TestListingAvailable(t *testing.T) {
	sys := loadSys(t, `(defun f (x) (+$f x 1.0))`)
	lst, err := sys.Listing("f")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(lst, "FADD") {
		t.Errorf("listing should contain FADD:\n%s", lst)
	}
	if _, err := sys.Listing("nope"); err == nil {
		t.Error("missing function should error")
	}
	if n, err := sys.InstructionCount("f"); err != nil || n == 0 {
		t.Errorf("instruction count: %d %v", n, err)
	}
}

// TestDifferentialCompiledVsInterpreted runs a battery of programs on
// both execution engines and requires identical results.
func TestDifferentialCompiledVsInterpreted(t *testing.T) {
	type tc struct {
		src  string
		fn   string
		args [][]sexp.Value
	}
	cases := []tc{
		{`(defun f (x y) (cons (+ x y) (list x y)))`, "f",
			[][]sexp.Value{{sexp.Fixnum(1), sexp.Fixnum(2)},
				{sexp.Flonum(1.5), sexp.Fixnum(-2)}}},
		{`(defun f (n) (if (zerop n) '() (cons n (f (- n 1)))))`, "f",
			[][]sexp.Value{{sexp.Fixnum(7)}}},
		{`(defun f (a b c) (if (and a (or b c)) (list a) (list b c)))`, "f",
			[][]sexp.Value{{sexp.T, sexp.Nil, sexp.T}, {sexp.Nil, sexp.T, sexp.T},
				{sexp.T, sexp.Nil, sexp.Nil}}},
		{`(defun f (x) (let ((a (* x 2)) (b (+ x 1))) (- a b)))`, "f",
			[][]sexp.Value{{sexp.Fixnum(10)}, {sexp.Fixnum(-3)}}},
		{`(defun f (l) (do ((p l (cdr p)) (n 0 (+ n 1))) ((null p) n)))`, "f",
			[][]sexp.Value{{mustRead("(a b c d)")}, {sexp.Nil}}},
		{`(defun f (x &optional (y (* x 10))) (+ x y))`, "f",
			[][]sexp.Value{{sexp.Fixnum(5)}, {sexp.Fixnum(5), sexp.Fixnum(1)}}},
		{`(defun f (x) (caseq x (1 'one) ((2 3) 'few) (t 'many)))`, "f",
			[][]sexp.Value{{sexp.Fixnum(1)}, {sexp.Fixnum(3)}, {sexp.Fixnum(9)}}},
		{`(defun f (x) (catch 'k (if x (throw 'k 'thrown) 'normal)))`, "f",
			[][]sexp.Value{{sexp.T}, {sexp.Nil}}},
		{`(defun f (x) (expt x 7))`, "f",
			[][]sexp.Value{{sexp.Fixnum(3)}, {mustRead("1/2")}}},
		{`(defun f (s) (let ((q (sin$f s))) (+$f q q)))`, "f",
			[][]sexp.Value{{sexp.Flonum(0.5)}, {sexp.Flonum(-2.25)}}},
		{`(defun g (h) (funcall h 10))
		  (defun f (n) (g (lambda (x) (+ x n))))`, "f",
			[][]sexp.Value{{sexp.Fixnum(32)}}},
		{`(defun f (x) (apply #'+ (list x 2 3)))`, "f",
			[][]sexp.Value{{sexp.Fixnum(1)}}},
	}
	for _, c := range cases {
		sys := NewSystem(Options{})
		if err := sys.LoadString(c.src); err != nil {
			t.Errorf("load %q: %v", c.src, err)
			continue
		}
		for _, args := range c.args {
			cv, cerr := sys.Call(c.fn, args...)
			iv, ierr := sys.Interpret(c.fn, args...)
			if (cerr == nil) != (ierr == nil) {
				t.Errorf("%q %v: compiled err=%v interp err=%v", c.src, args, cerr, ierr)
				continue
			}
			if cerr != nil {
				continue
			}
			if !sexp.Equal(cv, iv) {
				t.Errorf("%q %v: compiled=%s interpreted=%s",
					c.src, args, sexp.Print(cv), sexp.Print(iv))
			}
		}
	}
}

func TestDefmacro(t *testing.T) {
	sys := loadSys(t, "(defmacro square (x) `(* ,x ,x))\n"+
		"(defmacro my-when (p &rest body) `(if ,p (progn ,@body) nil))\n"+
		"(defun f (a) (square (+ a 1)))\n"+
		"(defun g (a) (my-when (> a 0) (square a)))")
	checkCall(t, sys, "f", "16", sexp.Fixnum(3))
	checkCall(t, sys, "g", "25", sexp.Fixnum(5))
	checkCall(t, sys, "g", "nil", sexp.Fixnum(-5))
	// Macro uses inside later macros and top-level forms work too.
	sys2 := loadSys(t, "(defmacro twice (e) `(progn ,e ,e))\n"+
		"(defvar *n* 0)\n"+
		"(defun bump () (twice (setq *n* (+ *n* 1))) *n*)")
	checkCall(t, sys2, "bump", "2")
}

func TestDefmacroErrors(t *testing.T) {
	sys := NewSystem(Options{})
	if err := sys.LoadString("(defmacro)"); err == nil {
		t.Error("(defmacro) should fail")
	}
	if err := sys.LoadString("(defmacro 3 (x) x)"); err == nil {
		t.Error("bad name should fail")
	}
	// Expansion errors surface at compile time.
	if err := sys.LoadString("(defmacro bad (x) (car 5))(defun f () (bad 1))"); err == nil {
		t.Error("expander error should surface")
	}
}

func TestGCDuringCompiledExecution(t *testing.T) {
	// Compiled code conses garbage in a loop under an aggressive auto-GC
	// threshold; results must be unaffected and the heap bounded.
	sys := loadSys(t, `
(defun churn (n)
  (let ((keep nil) (i 0))
    (prog ()
     loop
      (if (>= i n) (return keep) nil)
      (cons i i)                       ; immediate garbage
      (if (zerop (mod i 10))
          (setq keep (cons i keep))
          nil)
      (setq i (+ i 1))
      (go loop))))`)
	sys.Machine.SetGCThreshold(256)
	v, err := sys.Call("churn", sexp.Fixnum(500))
	if err != nil {
		t.Fatal(err)
	}
	if sexp.Length(v) != 50 {
		t.Errorf("kept list length = %d, want 50", sexp.Length(v))
	}
	if sexp.Print(v) != "(490 480 470 460 450 440 430 420 410 400 390 380 370 360 350 340 330 320 310 300 290 280 270 260 250 240 230 220 210 200 190 180 170 160 150 140 130 120 110 100 90 80 70 60 50 40 30 20 10 0)" {
		t.Errorf("kept = %s", sexp.Print(v))
	}
	gm := sys.Machine.GCMeters
	if gm.Collections+gm.MinorCollections == 0 {
		t.Error("auto GC should have run")
	}
	if sys.Machine.LiveHeapWords() > 4096 {
		t.Errorf("live heap = %d words", sys.Machine.LiveHeapWords())
	}
}

func TestGCSurvivesClosuresAndSpecials(t *testing.T) {
	sys := loadSys(t, `
(defvar *acc* nil)
(defun note (x) (setq *acc* (cons x *acc*)))
(defun mk (n) (lambda () n))
(defun churn2 (n)
  (let ((f (mk n)) (i 0))
    (prog ()
     loop
      (if (>= i n) (return (funcall f)) nil)
      (cons i i)
      (note i)
      (setq i (+ i 1))
      (go loop))))`)
	sys.Machine.SetGCThreshold(128)
	v, err := sys.Call("churn2", sexp.Fixnum(100))
	if err != nil {
		t.Fatal(err)
	}
	if sexp.Print(v) != "100" {
		t.Errorf("closure value = %s", sexp.Print(v))
	}
	acc, err := sys.Call("probe-acc")
	if err == nil {
		_ = acc
	}
	// Read *acc* through the machine's symbol cell.
	w := sys.Machine.Syms[sys.Machine.InternSym("*acc*")].Value
	av, err := sys.Machine.ToValue(w)
	if err != nil {
		t.Fatal(err)
	}
	if sexp.Length(av) != 100 {
		t.Errorf("*acc* length = %d", sexp.Length(av))
	}
}

func TestCSEOptionReducesWork(t *testing.T) {
	src := `
(defun g (x) (* x x))
(defun f (a b)
  (+ (* (+ a b) (+ a b)) (* (+ a b) (+ a b))))`
	plain := loadSys(t, src)
	plain.ResetStats()
	v1, err := plain.Call("f", sexp.Fixnum(3), sexp.Fixnum(4))
	if err != nil {
		t.Fatal(err)
	}
	plainCycles := plain.Stats().Cycles

	opts := codegen.DefaultOptions()
	opts.CSE = true
	cse := NewSystem(Options{Codegen: &opts})
	if err := cse.LoadString(src); err != nil {
		t.Fatal(err)
	}
	cse.ResetStats()
	v2, err := cse.Call("f", sexp.Fixnum(3), sexp.Fixnum(4))
	if err != nil {
		t.Fatal(err)
	}
	if !sexp.Equal(v1, v2) {
		t.Fatalf("CSE changed the result: %s vs %s", sexp.Print(v1), sexp.Print(v2))
	}
	if sexp.Print(v1) != "98" {
		t.Errorf("f(3,4) = %s", sexp.Print(v1))
	}
	if cse.Stats().Cycles >= plainCycles {
		t.Errorf("CSE should reduce cycles: %d vs %d",
			cse.Stats().Cycles, plainCycles)
	}
}

// TestKitchenSink combines closures, specials, catch/throw, prog loops,
// optionals, rest args, macros, arrays and the numeric world in one
// program, compiled and compared against the interpreter.
func TestKitchenSink(t *testing.T) {
	src := `
(defvar *trace* nil)
(defmacro note (x) ` + "`" + `(setq *trace* (cons ,x *trace*)))

(defun make-acc (init)
  (lambda (dx) (setq init (+ init dx)) init))

(defun walk (l f)
  (prog (out)
   loop
    (if (null l) (return (reverse out)) nil)
    (setq out (cons (funcall f (car l)) out))
    (setq l (cdr l))
    (go loop)))

(defun risky (x limit)
  (catch 'overflow
    (let ((acc (make-acc 0)))
      (walk x (lambda (v)
                (note v)
                (let ((s (funcall acc v)))
                  (if (> s limit) (throw 'overflow 'too-big) s)))))))

(defun poly2 (x &optional (a 1.0) (b 0.0))
  (+$f (*$f a (*$f x x)) (+$f (*$f b x) 1.0)))

(defun driver (&rest xs)
  (list (risky xs 9)
        (risky xs 1000)
        *trace*
        (poly2 2.0)
        (poly2 2.0 3.0 0.5)))`
	sys := loadSys(t, src)
	args := []sexp.Value{sexp.Fixnum(1), sexp.Fixnum(2), sexp.Fixnum(3), sexp.Fixnum(4)}
	cv, err := sys.Call("driver", args...)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh system for the interpreter run (shared *trace* state).
	sys2 := loadSys(t, src)
	iv, err := sys2.Interpret("driver", args...)
	if err != nil {
		t.Fatal(err)
	}
	if !sexp.Equal(cv, iv) {
		t.Fatalf("compiled %s\ninterp   %s", sexp.Print(cv), sexp.Print(iv))
	}
	want := "(too-big (1 3 6 10) (4 3 2 1 4 3 2 1) 5.0 14.0)"
	if sexp.Print(cv) != want {
		t.Errorf("driver = %s\n   want   %s", sexp.Print(cv), want)
	}
	if sys.Machine.BindingDepth() != 0 {
		t.Error("binding stack must unwind across throw")
	}
}

// mustRead parses one form, panicking on error — a test-table
// convenience; the production reader paths all return errors.
func mustRead(src string) sexp.Value {
	v, err := sexp.ReadOne(src)
	if err != nil {
		panic(err)
	}
	return v
}
