package core

import (
	"fmt"
	"os"
	"os/exec"
	"testing"
	"time"

	"repro/internal/compilecache"
)

// tortureSrc generates the i'th torture defun; writer and verifier must
// agree on it so surviving entries are probed by the same keys.
func tortureSrc(i int) string {
	return fmt.Sprintf("(defun torture-%d (x) (list x %d (* x %d)))", i, i, i+1)
}

const tortureUnits = 120

// TestHelperTortureWriter is not a test: it is the child process body
// for TestKill9CacheTorture, writing durable cache entries in a tight
// loop until the parent kills it with SIGKILL.
func TestHelperTortureWriter(t *testing.T) {
	dir := os.Getenv("SLC_TORTURE_DIR")
	if dir == "" {
		t.Skip("helper process for TestKill9CacheTorture")
	}
	d, err := compilecache.OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; ; i++ {
		// A fresh system per unit: every machine starts pristine, so every
		// entry is captured in (and replayable from) the pristine context.
		sys := NewSystem(Options{DiskCache: d})
		if err := sys.LoadString(tortureSrc(i % tortureUnits)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKill9CacheTorture is the durability acceptance test: a writer
// process is SIGKILLed mid-flight repeatedly; afterwards recovery must
// quarantine any debris, no lookup may ever see a corrupt entry, and
// every surviving entry must replay to the byte-identical image a clean
// compile produces.
func TestKill9CacheTorture(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	dir := t.TempDir()
	for round := 0; round < 8; round++ {
		cmd := exec.Command(os.Args[0], "-test.run=TestHelperTortureWriter$", "-test.v=false")
		cmd.Env = append(os.Environ(), "SLC_TORTURE_DIR="+dir)
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// Stagger the kill point across rounds so it lands in different
		// phases of the store protocol.
		time.Sleep(time.Duration(3+round*5) * time.Millisecond)
		cmd.Process.Kill()
		cmd.Wait()
	}

	// Restart: recovery runs inside OpenDisk.
	d, err := compilecache.OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for i := 0; i < tortureUnits; i++ {
		src := tortureSrc(i)
		warm := NewSystem(Options{DiskCache: d})
		if err := warm.LoadString(src); err != nil {
			t.Fatalf("unit %d after recovery: %v", i, err)
		}
		plain := NewSystem(Options{})
		if err := plain.LoadString(src); err != nil {
			t.Fatal(err)
		}
		if warm.Machine.ImageFingerprint() != plain.Machine.ImageFingerprint() {
			t.Fatalf("unit %d: image after recovery differs from a clean compile", i)
		}
	}
	st := d.Stats()
	if st.Corrupt != 0 {
		t.Errorf("lookups saw %d corrupt entries after recovery; torn writes must never verify", st.Corrupt)
	}
	t.Logf("torture: %d hits, %d recompiles, %d quarantined at recovery", st.Hits, st.Misses, st.Quarantined)
}
