package core

import (
	"testing"

	"repro/internal/compilecache"
	"repro/internal/sexp"
)

// loadWithDisk builds a fresh system over the durable cache directory
// and loads src into it, returning the system and the disk handle (which
// the caller closes).
func loadWithDisk(t *testing.T, dir, src string) (*System, *compilecache.Disk) {
	t.Helper()
	d, err := compilecache.OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys := NewSystem(Options{DiskCache: d})
	if err := sys.LoadString(src); err != nil {
		d.Close()
		t.Fatalf("load: %v", err)
	}
	return sys, d
}

// TestDiskCacheByteIdenticalWarmLoad is the durable layer's core
// property: a process that loads a corpus entirely from disk-cache
// replays builds the exact machine image a cold compile builds — code,
// function table, symbol cells, heap and boxes all byte-identical.
func TestDiskCacheByteIdenticalWarmLoad(t *testing.T) {
	dir := t.TempDir()

	cold, d1 := loadWithDisk(t, dir, corpusSrc)
	coldFP := cold.Machine.ImageFingerprint()
	st1 := d1.Stats()
	if st1.Stores == 0 {
		t.Fatal("cold load stored nothing durable")
	}
	if st1.Hits != 0 {
		t.Fatalf("cold load hit the empty cache %d times", st1.Hits)
	}
	d1.Close()

	warm, d2 := loadWithDisk(t, dir, corpusSrc)
	defer d2.Close()
	warmFP := warm.Machine.ImageFingerprint()
	st2 := d2.Stats()
	if st2.Hits == 0 {
		t.Fatal("warm load never hit the durable cache")
	}
	if warm.Machine.Stats.CompileCacheHits == 0 {
		t.Fatal("warm load replayed nothing")
	}
	if warm.Machine.Stats.CompileCacheMisses != 0 {
		t.Errorf("warm load recompiled %d units; every unit should replay",
			warm.Machine.Stats.CompileCacheMisses)
	}
	if coldFP != warmFP {
		t.Fatalf("warm image differs from cold image:\n cold %s\n warm %s", coldFP, warmFP)
	}

	// And the replayed image actually runs.
	v, err := warm.Call("exptl", sexp.Fixnum(2), sexp.Fixnum(10), sexp.Fixnum(1))
	if err != nil {
		t.Fatal(err)
	}
	if sexp.Print(v) != "1024" {
		t.Errorf("exptl on replayed image = %s", sexp.Print(v))
	}
	if v, err := warm.Call("adder-test", sexp.Fixnum(5), sexp.Fixnum(37)); err != nil || sexp.Print(v) != "42" {
		t.Errorf("closure on replayed image = %v, %v", v, err)
	}
}

// TestDiskCacheContextMismatchFallsBack loads a corpus whose prefix
// differs from the one that populated the cache: the shared later defuns
// find durable entries, but the entries were captured in a different
// allocator context and must fall back to inline recompilation — no
// error, correct code.
func TestDiskCacheContextMismatchFallsBack(t *testing.T) {
	dir := t.TempDir()
	sys1, d1 := loadWithDisk(t, dir,
		"(defun pad (x) (list x x x))\n(defun shared (n) (* n n))")
	_ = sys1
	d1.Close()

	// Same 'shared' source, different (absent) prefix: the disk probe
	// hits, replay does not apply, the inline compile must succeed.
	sys2, d2 := loadWithDisk(t, dir, "(defun shared (n) (* n n))")
	defer d2.Close()
	if d2.Stats().Hits == 0 {
		t.Fatal("expected a disk probe hit for the shared defun")
	}
	v, err := sys2.Call("shared", sexp.Fixnum(9))
	if err != nil {
		t.Fatal(err)
	}
	if sexp.Print(v) != "81" {
		t.Errorf("shared = %s", sexp.Print(v))
	}
	// The fallback must not have polluted the image with replay debris:
	// a fresh compile of the same one-defun corpus is identical.
	plain := NewSystem(Options{})
	if err := plain.LoadString("(defun shared (n) (* n n))"); err != nil {
		t.Fatal(err)
	}
	if plain.Machine.ImageFingerprint() != sys2.Machine.ImageFingerprint() {
		t.Error("fallback-compiled image differs from a plain compile")
	}
}

// TestDiskCacheDisabledWithConstants: compile-time constants intern
// per-process state the capture cannot carry, so the durable layer must
// stay out of the loop entirely.
func TestDiskCacheDisabledWithConstants(t *testing.T) {
	dir := t.TempDir()
	d, err := compilecache.OpenDisk(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	arr := sexp.NewFloatArray([]int{4})
	sys := NewSystem(Options{
		DiskCache: d,
		Constants: map[string]sexp.Value{"karr": arr},
	})
	if err := sys.LoadString("(defun geta (i) (aref$f karr i))"); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Stores != 0 || st.Hits != 0 {
		t.Errorf("durable layer touched under Constants: %+v", st)
	}
}
