package core

import (
	"fmt"
	"io"
)

// This file is the single shared meter printer: the CLI's -stats flag and
// the REPL's :stats command both call WriteMeters, so the two surfaces
// can never drift apart and the output order is fixed here once.

// WriteMeters prints the machine meters in a fixed, deterministic order.
// When interpreted is true the reference interpreter's counters are
// appended.
func (s *System) WriteMeters(w io.Writer, interpreted bool) {
	st := s.Stats()
	fmt.Fprintln(w, ";; --- machine meters ---")
	fmt.Fprintf(w, ";; cycles:            %d\n", st.Cycles)
	fmt.Fprintf(w, ";; instructions:      %d\n", st.Instrs)
	fmt.Fprintf(w, ";; calls / tail:      %d / %d\n", st.Calls, st.TailCalls)
	fmt.Fprintf(w, ";; heap words:        %d (%d conses, %d flonums, %d envs)\n",
		st.HeapWords, st.ConsAllocs, st.FlonumAllocs, st.EnvAllocs)
	fmt.Fprintf(w, ";; max stack depth:   %d\n", st.MaxStack)
	fmt.Fprintf(w, ";; certifications:    %d (%d copies)\n", st.Certifies, st.CertifyCopies)
	fmt.Fprintf(w, ";; special lookups:   %d (%d probe steps)\n",
		st.SpecialLookups, st.SpecialSearchSteps)
	if st.CompileCacheHits+st.CompileCacheMisses > 0 {
		fmt.Fprintf(w, ";; compile cache:     %d hits / %d misses\n",
			st.CompileCacheHits, st.CompileCacheMisses)
	}
	if gc := s.Machine.GCMeters; gc.Collections > 0 {
		fmt.Fprintf(w, ";; gc:                %d collections, %d words reclaimed\n",
			gc.Collections, gc.WordsReclaimed)
	}
	if ts := s.Machine.TierStats(); ts.Promotions > 0 {
		fmt.Fprintf(w, ";; tier:              %d hot functions (%d re-fusions, %d blocks / %d instrs lowered, %d cache fills)\n",
			ts.HotFunctions, ts.Refusions, ts.LoweredBlocks, ts.LoweredInstrs, ts.CacheFills)
	}
	if interpreted {
		is := s.Interp.Stats
		fmt.Fprintf(w, ";; interpreter:       %d calls, %d builtins, %d conses\n",
			is.Calls, is.BuiltinCalls, is.Conses)
	}
}

// ResetMeters clears the simulator meters and, when profiling is
// enabled, the accumulated profile (the shadow call stack survives so a
// reset mid-run keeps attributing correctly).
func (s *System) ResetMeters() {
	s.Machine.ResetStats()
	if p := s.Machine.Profile(); p != nil {
		p.Reset()
	}
}

// EnableProfile turns on the machine's exact runtime profiler
// (per-opcode histograms, function-level cycle attribution, GC pauses).
// Idempotent.
func (s *System) EnableProfile() { s.Machine.EnableProfile() }

// WriteProfile prints the runtime profile report (opcode histogram,
// per-function cycles, GC pauses, stack high-water marks).
func (s *System) WriteProfile(w io.Writer) { s.Machine.WriteProfile(w) }

// WriteCollapsed writes the profile in collapsed-stack ("folded") form,
// one "fn;fn;fn cycles" line per distinct stack, ready for flamegraph
// tools.
func (s *System) WriteCollapsed(w io.Writer) { s.Machine.WriteCollapsed(w) }

// MetricsSnapshot returns the machine meters plus the compile-cache hit
// rate as a flat name→value map, in the shape WriteProm expects for the
// -debug-addr /metrics endpoint.
func (s *System) MetricsSnapshot() map[string]float64 {
	st := s.Stats()
	m := map[string]float64{
		"slc_machine_cycles_total":          float64(st.Cycles),
		"slc_machine_instructions_total":    float64(st.Instrs),
		"slc_machine_calls_total":           float64(st.Calls),
		"slc_machine_tail_calls_total":      float64(st.TailCalls),
		"slc_machine_heap_words_total":      float64(st.HeapWords),
		"slc_machine_max_stack_depth":       float64(st.MaxStack),
		"slc_machine_special_lookups_total": float64(st.SpecialLookups),
		"slc_gc_collections_total":          float64(s.Machine.GCMeters.Collections),
		"slc_gc_words_reclaimed_total":      float64(s.Machine.GCMeters.WordsReclaimed),
		"slc_compile_cache_hits_total":      float64(st.CompileCacheHits),
		"slc_compile_cache_misses_total":    float64(st.CompileCacheMisses),
	}
	if probes := st.CompileCacheHits + st.CompileCacheMisses; probes > 0 {
		m["slc_compile_cache_hit_rate"] = float64(st.CompileCacheHits) / float64(probes)
	}
	if ts := s.Machine.TierStats(); ts.Enabled {
		m["slc_tier_hot_functions"] = float64(ts.HotFunctions)
		m["slc_tier_promotions_total"] = float64(ts.Promotions)
		m["slc_tier_refusions_total"] = float64(ts.Refusions)
		m["slc_tier_lowered_blocks"] = float64(ts.LoweredBlocks)
		m["slc_tier_lowered_instructions"] = float64(ts.LoweredInstrs)
		m["slc_tier_call_cache_fills_total"] = float64(ts.CacheFills)
	}
	return m
}
