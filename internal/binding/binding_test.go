package binding

import (
	"testing"

	"repro/internal/convert"
	"repro/internal/opt"
	"repro/internal/sexp"
	"repro/internal/tree"
)

func prep(t *testing.T, src string, optimize bool) *tree.Lambda {
	t.Helper()
	c := convert.New()
	n, err := c.ConvertForm(mustRead(src))
	if err != nil {
		t.Fatal(err)
	}
	if optimize {
		o := opt.New(opt.DefaultOptions(), nil)
		n = o.Optimize(n)
	}
	lam, ok := n.(*tree.Lambda)
	if !ok {
		t.Fatalf("not a lambda: %T", n)
	}
	AnnotateFunction(lam)
	return lam
}

func findLambdas(root tree.Node) []*tree.Lambda {
	var out []*tree.Lambda
	tree.Walk(root, func(n tree.Node) bool {
		if l, ok := n.(*tree.Lambda); ok {
			out = append(out, l)
		}
		return true
	})
	return out
}

func TestLetIsOpen(t *testing.T) {
	lam := prep(t, "(lambda (x) (let ((y (+ x 1))) (* y y)))", false)
	ls := findLambdas(lam)
	if len(ls) != 2 {
		t.Fatalf("lambdas = %d", len(ls))
	}
	if ls[0].Strategy != tree.StrategyFastCall {
		t.Errorf("top lambda: %v", ls[0].Strategy)
	}
	if ls[1].Strategy != tree.StrategyOpen {
		t.Errorf("let lambda should be OPEN: %v", ls[1].Strategy)
	}
	if ls[1].Required[0].Closed {
		t.Error("let variable of open lambda should not be closed")
	}
}

func TestShortCircuitThunksAreJump(t *testing.T) {
	// E2's shape with expensive arms: thunks bound to f/g whose calls are
	// all tail → JUMP strategy, no closures.
	lam := prep(t, `(lambda (a b c x)
	   (if (and a (or b c)) (frotz x 1 2) (gronk x 3 4)))`, true)
	jumps, closures := 0, 0
	for _, l := range findLambdas(lam)[1:] {
		switch l.Strategy {
		case tree.StrategyJump:
			jumps++
		case tree.StrategyFullClosure:
			closures++
		}
	}
	if jumps == 0 {
		t.Error("short-circuit thunks should compile as jumps")
	}
	if closures != 0 {
		t.Errorf("no closures should remain, got %d", closures)
	}
}

func TestEscapingLambdaIsFullClosure(t *testing.T) {
	lam := prep(t, "(lambda (n) (lambda (x) (+ x n)))", false)
	inner := findLambdas(lam)[1]
	if inner.Strategy != tree.StrategyFullClosure {
		t.Errorf("returned lambda must be FULL-CLOSURE: %v", inner.Strategy)
	}
	// n is referenced by the closure: heap-allocated.
	if !lam.Required[0].Closed {
		t.Error("n must be closed over")
	}
	if len(lam.HeapVars) != 1 {
		t.Errorf("heap vars = %v", lam.HeapVars)
	}
}

func TestNonTailKnownCallsAreFastCall(t *testing.T) {
	// f called in non-tail position but all call sites known.
	lam := prep(t, `(lambda (x)
	  ((lambda (f) (+ (f x) (f (+ x 1)))) (lambda (y) (* y y))))`, false)
	var fast *tree.Lambda
	for _, l := range findLambdas(lam) {
		if l.Strategy == tree.StrategyFastCall && l != lam {
			fast = l
		}
	}
	if fast == nil {
		t.Error("known non-tail lambda should be FASTCALL")
	}
}

func TestAssignedFunctionVarIsClosure(t *testing.T) {
	lam := prep(t, `(lambda (x)
	  ((lambda (f) (setq f (lambda (y) y)) (f x)) (lambda (y) (* y y))))`, false)
	ls := findLambdas(lam)
	// The lambda bound to the assigned f must be a full closure.
	found := false
	for _, l := range ls {
		if l.Strategy == tree.StrategyFullClosure {
			found = true
		}
	}
	if !found {
		t.Error("lambda bound to an assigned variable must be FULL-CLOSURE")
	}
}

func TestVarsUsedByOpenLambdaStayOnStack(t *testing.T) {
	lam := prep(t, "(lambda (x) (let ((y 1)) (let ((z 2)) (+ x (+ y z)))))", false)
	for _, v := range []*tree.Var{lam.Required[0]} {
		if v.Closed {
			t.Errorf("%v should be stack-allocated", v)
		}
	}
	for _, l := range findLambdas(lam)[1:] {
		for _, v := range l.Params() {
			if v.Closed {
				t.Errorf("let var %v should be stack-allocated", v)
			}
		}
	}
}

func TestClosedVarThroughOpenLambda(t *testing.T) {
	// y is bound by an open let but captured by an escaping closure.
	lam := prep(t, "(lambda (x) (let ((y (* x 2))) (lambda (z) (+ y z))))", false)
	var yVar *tree.Var
	for _, l := range findLambdas(lam) {
		for _, v := range l.Params() {
			if v.Name.Name == "y" {
				yVar = v
			}
		}
	}
	if yVar == nil {
		t.Fatal("no y")
	}
	if !yVar.Closed {
		t.Error("y captured by escaping closure must be heap-allocated")
	}
}

// mustRead parses one form, panicking on error — a test-table
// convenience; the production reader paths all return errors.
func mustRead(src string) sexp.Value {
	v, err := sexp.ReadOne(src)
	if err != nil {
		panic(err)
	}
	return v
}
