// Package binding implements the binding-annotation phase of §4.4: for
// each lambda-expression, decide how it is to be compiled, and determine
// which variables may be stack-allocated and which must be heap-allocated
// because closures refer to them.
//
// The strategies, in decreasing order of knowledge about call sites:
//
//   - OPEN: a manifest ((lambda …) args) call — a let. The body is
//     compiled in line in the caller's frame; no function object exists.
//   - JUMP: the lambda is bound to a variable all of whose references are
//     tail-position calls. Body compiles as a labeled block in the same
//     frame; every call is a parameter-passing goto. (These are the f and
//     g functions the optimizer introduces for boolean short-circuiting.)
//   - FASTCALL: all call sites are known but not all tail-recursive; the
//     lambda compiles as a separate function invoked with the fast
//     linkage that "can avoid error checks such as on the number of
//     arguments passed".
//   - FULL-CLOSURE: the lambda escapes; a closure object holding the
//     lexical environment must be constructed at run time.
package binding

import (
	"repro/internal/analysis"
	"repro/internal/tree"
)

// Annotate decides strategies for every lambda below root (normally a
// top-level defun lambda, which itself is left as a plain function) and
// marks closed-over variables. Requires a previously Analyze'd tree
// (parent links and tail flags).
func Annotate(root tree.Node) {
	if l, ok := root.(*tree.Lambda); ok {
		// The top-level function itself uses the standard linkage.
		l.Strategy = tree.StrategyFastCall
	}
	annotate(root)
	// Anything still unclassified escapes: "in the most general case, a
	// closure object must be explicitly constructed at run time".
	tree.Walk(root, func(n tree.Node) bool {
		if l, ok := n.(*tree.Lambda); ok && l.Strategy == tree.StrategyUnknown {
			l.Strategy = tree.StrategyFullClosure
		}
		return true
	})
	markClosedVars(root)
}

func annotate(n tree.Node) {
	for _, c := range tree.Children(n) {
		annotate(c)
	}
	call, ok := n.(*tree.Call)
	if !ok {
		return
	}
	// Case 1: direct call of a manifest lambda — open-coded (a let).
	// Lambdas with optional/rest parameters keep the standard entry
	// sequence and are compiled as separate fast-linkage functions.
	if lam, ok := call.Fn.(*tree.Lambda); ok {
		if len(lam.Optional) > 0 || lam.Rest != nil {
			lam.Strategy = tree.StrategyFastCall
			return
		}
		lam.Strategy = tree.StrategyOpen
		// Lambdas bound to its variables may be jump/fastcall targets.
		for i, v := range lam.Required {
			if i >= len(call.Args) {
				break
			}
			argLam, ok := call.Args[i].(*tree.Lambda)
			if !ok || argLam.Strategy != tree.StrategyUnknown {
				continue
			}
			argLam.Strategy = classifyBoundLambda(lam, v)
			if argLam.Strategy == tree.StrategyJump || argLam.Strategy == tree.StrategyFastCall {
				argLam.SelfVar = v
			}
		}
	}
}

// classifyBoundLambda decides the strategy for a lambda bound to variable
// v of an open lambda.
func classifyBoundLambda(owner *tree.Lambda, v *tree.Var) tree.BindStrategy {
	if v.Assigned() || v.Special {
		return tree.StrategyFullClosure
	}
	// Every reference must be the function position of a call.
	allCalls := true
	allTail := true
	for _, r := range v.Refs {
		parent := r.NodeInfo.Parent
		c, ok := parent.(*tree.Call)
		if !ok || c.Fn != tree.Node(r) {
			allCalls = false
			break
		}
		if !c.NodeInfo.Tail {
			allTail = false
		}
	}
	if !allCalls {
		return tree.StrategyFullClosure
	}
	if allTail {
		return tree.StrategyJump
	}
	return tree.StrategyFastCall
}

// markClosedVars sets Var.Closed for variables referenced from a lambda
// that compiles to a different activation (FASTCALL or FULL-CLOSURE):
// those variables "must (because they are referred to by closures) be
// heap-allocated". OPEN and JUMP lambdas share their binder's frame, so
// variables they touch stay on the stack.
func markClosedVars(root tree.Node) {
	tree.Walk(root, func(n tree.Node) bool {
		var v *tree.Var
		switch x := n.(type) {
		case *tree.VarRef:
			v = x.Var
		case *tree.Setq:
			v = x.Var
		default:
			return true
		}
		if v.Binder == nil || v.Special {
			return true
		}
		// Walk up from the reference; if we cross an activation boundary
		// before reaching the binder's frame, the variable is closed
		// over.
		frame := frameOf(v.Binder)
		for m := n.Info().Parent; m != nil; m = m.Info().Parent {
			l, ok := m.(*tree.Lambda)
			if !ok {
				continue
			}
			if frameOf(l) == frame {
				break // reached the binder's own activation
			}
			if l.Strategy == tree.StrategyFullClosure ||
				l.Strategy == tree.StrategyFastCall ||
				l.Strategy == tree.StrategyUnknown {
				v.Closed = true
				break
			}
			// OPEN/JUMP lambdas share the enclosing frame; keep walking.
		}
		return true
	})
	// Record heap vars on their binders.
	tree.Walk(root, func(n tree.Node) bool {
		if l, ok := n.(*tree.Lambda); ok {
			l.HeapVars = nil
			for _, v := range l.Params() {
				if v.Closed {
					l.HeapVars = append(l.HeapVars, v)
				}
			}
		}
		return true
	})
}

// frameOf finds the activation a lambda's body runs in: OPEN and JUMP
// lambdas execute in their nearest enclosing non-open frame.
func frameOf(l *tree.Lambda) *tree.Lambda {
	cur := l
	for {
		if cur.Strategy != tree.StrategyOpen && cur.Strategy != tree.StrategyJump {
			return cur
		}
		next := tree.EnclosingLambda(cur.Info().Parent)
		if next == nil {
			return cur
		}
		cur = next
	}
}

// AnnotateFunction is the convenience entry: analyze + annotate one
// top-level function.
func AnnotateFunction(l *tree.Lambda) {
	analysis.Analyze(l)
	Annotate(l)
}
