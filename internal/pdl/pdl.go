// Package pdl implements the pdl-number annotation of §6.3: a lifetime
// analysis deciding, for raw numbers that must be converted to pointer
// form, whether stack allocation provides a sufficient lifetime or the
// general heap allocation is required.
//
// Two properties are computed in a single "outorder" walk (top-down for
// PDLOKP, bottom-up for PDLNUMP):
//
//   - PDLOKP: whether the node's parent is willing to accept a pdl
//     (unsafe) pointer. Not a flag but a pointer to the node that
//     originally authorized it, which bounds the required lifetime.
//   - PDLNUMP: whether the node itself might be inclined to produce a
//     pdl number.
//
// A node with both properties, WANTREP = POINTER, and a numeric ISREP
// gets its conversion stack-allocated (a MOVP into a scratch frame slot)
// instead of heap-allocated (an *:SQ-SINGLE-FLONUM-CONS call).
package pdl

import (
	"repro/internal/prim"
	"repro/internal/tree"
)

// Annotate runs the pdl-number analysis. enabled=false (the E6 ablation)
// clears every authorization, forcing heap allocation at all conversion
// points.
func Annotate(root tree.Node, enabled bool) {
	if !enabled {
		tree.Walk(root, func(n tree.Node) bool {
			n.Info().PdlOkP = nil
			n.Info().PdlNumP = false
			return true
		})
		return
	}
	down(root, nil)
	up(root)
}

// down propagates PDLOKP. auth is the authorizing node permitted by the
// parent context, or nil.
func down(n tree.Node, auth tree.Node) {
	n.Info().PdlOkP = auth
	switch x := n.(type) {
	case *tree.Setq:
		// Storing into a stack-allocated lexical variable keeps the
		// pointer in the frame: authorized (by the setq) unless the
		// variable is closed over or special, in which case the store
		// escapes the frame.
		if !x.Var.Special && !x.Var.Closed {
			down(x.Value, x)
		} else {
			down(x.Value, nil)
		}

	case *tree.If:
		// "The processing of an if node simply passes the PDLOKP
		// authorization of its parent down to the two arms of the
		// conditional. On the other hand, it always of itself authorizes
		// the predicate computation to produce a pdl number, because the
		// conditional test performed by if is a safe operation."
		down(x.Test, x)
		down(x.Then, auth)
		down(x.Else, auth)

	case *tree.Progn:
		for i, f := range x.Forms {
			if i == len(x.Forms)-1 {
				down(f, auth)
			} else {
				down(f, f) // value discarded; any pointer is fine
			}
		}

	case *tree.Call:
		switch fn := x.Fn.(type) {
		case *tree.FunRef:
			p := prim.Lookup(fn.Name)
			// "To perform an operation on a pointer either the pointer
			// or the operation must be safe." Safe operations (and calls
			// to user procedures, since "passing a pointer to a
			// procedure is safe") authorize pdl arguments with lifetime
			// bounded by the call.
			safe := p == nil || p.Safe
			for _, a := range x.Args {
				if safe {
					down(a, x)
				} else {
					down(a, nil)
				}
			}
		case *tree.Lambda:
			// A let: binding a pointer into a frame variable is safe as
			// long as the variable stays in the frame.
			for i, a := range x.Args {
				authArg := tree.Node(x)
				if i < len(fn.Required) {
					v := fn.Required[i]
					if v.Special || v.Closed {
						authArg = nil
					}
				}
				down(a, authArg)
			}
			down(x.Fn, auth)
		default:
			down(x.Fn, x)
			for _, a := range x.Args {
				down(a, x)
			}
		}

	case *tree.Lambda:
		for _, o := range x.Optional {
			down(o.Default, nil)
		}
		switch x.Strategy {
		case tree.StrategyOpen, tree.StrategyJump:
			// Body value flows to the call's context.
			down(x.Body, auth)
		default:
			// "Returning a value from a procedure is not a safe
			// operation, so a pdl number may not be used."
			down(x.Body, nil)
		}

	case *tree.ProgBody:
		for _, f := range x.Forms {
			down(f, f)
		}

	case *tree.Return:
		down(x.Value, auth) // flows to the progbody's value

	case *tree.Go:

	case *tree.Catcher:
		down(x.Tag, x)
		down(x.Body, nil) // thrown/returned values escape the frame

	case *tree.Caseq:
		down(x.Key, x)
		for _, cl := range x.Clauses {
			down(cl.Body, auth)
		}
		if x.Default != nil {
			down(x.Default, auth)
		}
	}
}

// up computes PDLNUMP: nodes that might produce a pdl number — raw
// numeric results needing pointer form.
func up(n tree.Node) {
	for _, c := range tree.Children(n) {
		up(c)
	}
	in := n.Info()
	switch x := n.(type) {
	case *tree.Call:
		if fr, ok := x.Fn.(*tree.FunRef); ok {
			if p := prim.Lookup(fr.Name); p != nil && p.ResRep.Numeric() {
				in.PdlNumP = true
			}
		}
		if lam, ok := x.Fn.(*tree.Lambda); ok &&
			(lam.Strategy == tree.StrategyOpen || lam.Strategy == tree.StrategyJump) {
			in.PdlNumP = lam.Body.Info().PdlNumP
		}
	case *tree.If:
		in.PdlNumP = x.Then.Info().PdlNumP || x.Else.Info().PdlNumP
	case *tree.Progn:
		if len(x.Forms) > 0 {
			in.PdlNumP = x.Forms[len(x.Forms)-1].Info().PdlNumP
		}
	case *tree.Literal:
		in.PdlNumP = isNumericRaw(in.IsRep)
	default:
		in.PdlNumP = false
	}
}

func isNumericRaw(r tree.Rep) bool { return r.Numeric() }

// WantsPdlSlot reports whether the node's raw→pointer conversion should
// be stack-allocated: the four conditions of §6.3.
func WantsPdlSlot(n tree.Node) bool {
	in := n.Info()
	return in.PdlOkP != nil && in.PdlNumP &&
		in.WantRep == tree.RepPOINTER && in.IsRep.Numeric()
}
