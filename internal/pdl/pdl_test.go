package pdl

import (
	"testing"

	"repro/internal/binding"
	"repro/internal/convert"
	"repro/internal/rep"
	"repro/internal/sexp"
	"repro/internal/tree"
)

func prep(t *testing.T, src string) *tree.Lambda {
	t.Helper()
	c := convert.New()
	n, err := c.ConvertForm(mustRead(src))
	if err != nil {
		t.Fatal(err)
	}
	lam := n.(*tree.Lambda)
	binding.AnnotateFunction(lam)
	rep.Annotate(lam, true)
	Annotate(lam, true)
	return lam
}

func TestSafeOpAuthorizesPdl(t *testing.T) {
	// In (+$f x y), x is permitted to produce a pdl number.
	lam := prep(t, "(lambda (x y) (+$f x y))")
	call := lam.Body.(*tree.Call)
	if call.Args[0].Info().PdlOkP == nil {
		t.Error("argument of a safe operation should be pdl-authorized")
	}
}

func TestUnsafeOpForbidsPdl(t *testing.T) {
	// In (rplaca x y), y may not produce a pdl number.
	lam := prep(t, "(lambda (x y) (rplaca x y))")
	call := lam.Body.(*tree.Call)
	if call.Args[1].Info().PdlOkP != nil {
		t.Error("rplaca argument must not be pdl-authorized")
	}
}

func TestAuthorizingNodeIsLifetimeBound(t *testing.T) {
	// The paper's example: in (atan2 (if p x y) 3.0), x's PDLOKP points
	// at the atan call node, not the if node.
	lam := prep(t, "(lambda (p x y) (frotz (if p x y) 3.0))")
	call := lam.Body.(*tree.Call)
	iff := call.Args[0].(*tree.If)
	if iff.Then.Info().PdlOkP != tree.Node(call) {
		t.Errorf("if arm's authorizer should be the call node, got %T",
			iff.Then.Info().PdlOkP)
	}
	// The predicate is authorized by the if itself.
	if iff.Test.Info().PdlOkP != tree.Node(iff) {
		t.Errorf("test's authorizer should be the if node")
	}
}

func TestFloatCallIsPdlnump(t *testing.T) {
	lam := prep(t, "(lambda (x y) (frotz (+$f x y)))")
	call := lam.Body.(*tree.Call)
	arg := call.Args[0]
	if !arg.Info().PdlNumP {
		t.Error("(+$f x y) might produce a pdl number")
	}
	if !WantsPdlSlot(arg) {
		t.Errorf("float passed to user call should get a pdl slot (okp=%v nump=%v want=%v is=%v)",
			arg.Info().PdlOkP != nil, arg.Info().PdlNumP,
			arg.Info().WantRep, arg.Info().IsRep)
	}
}

func TestCarIsNotPdlnump(t *testing.T) {
	lam := prep(t, "(lambda (x) (frotz (car x)))")
	call := lam.Body.(*tree.Call)
	if call.Args[0].Info().PdlNumP {
		t.Error("(car x) never produces a pdl number")
	}
}

func TestReturnValueNotPdl(t *testing.T) {
	// "Returning a value from a procedure is not a 'safe' operation, so a
	// pdl number may not be used" — the body of a standard function has
	// no authorization.
	lam := prep(t, "(lambda (x y) (+$f x y))")
	if lam.Body.Info().PdlOkP != nil {
		t.Error("function result must not be a pdl number")
	}
	if WantsPdlSlot(lam.Body) {
		t.Error("return conversion must heap-allocate")
	}
}

func TestLetBindingAuthorizesPdl(t *testing.T) {
	// The testfn pattern: d and e are letbound floats later passed to
	// frotz — stack allocation suffices.
	lam := prep(t, `(lambda (a b)
	  ((lambda (d e) (frotz d e (max$f d e))) (+$f a b) (*$f a b)))`)
	let := lam.Body.(*tree.Call)
	for i, a := range let.Args {
		if !WantsPdlSlot(a) {
			t.Errorf("let arg %d should be a pdl slot (okp=%v nump=%v want=%v is=%v)",
				i, a.Info().PdlOkP != nil, a.Info().PdlNumP,
				a.Info().WantRep, a.Info().IsRep)
		}
	}
}

func TestClosedVarInitNotPdl(t *testing.T) {
	// A float bound to a variable captured by an escaping closure must be
	// heap-allocated.
	lam := prep(t, `(lambda (a b)
	  ((lambda (d) (lambda (z) (frotz d z))) (+$f a b)))`)
	let := lam.Body.(*tree.Call)
	if WantsPdlSlot(let.Args[0]) {
		t.Error("captured variable's value must not be stack-allocated")
	}
}

func TestDisabledClearsAuthorizations(t *testing.T) {
	c := convert.New()
	n, _ := c.ConvertForm(mustRead("(lambda (x y) (frotz (+$f x y)))"))
	lam := n.(*tree.Lambda)
	binding.AnnotateFunction(lam)
	rep.Annotate(lam, true)
	Annotate(lam, false)
	call := lam.Body.(*tree.Call)
	if WantsPdlSlot(call.Args[0]) {
		t.Error("disabled pdl analysis should force heap allocation")
	}
}

func TestSetqToLocalAuthorized(t *testing.T) {
	lam := prep(t, "(lambda (x) (let ((acc 0.0)) (setq acc (+$f x x)) (frotz acc)))")
	var sq *tree.Setq
	tree.Walk(lam, func(n tree.Node) bool {
		if s, ok := n.(*tree.Setq); ok && s.Var.Name.Name == "acc" {
			sq = s
		}
		return true
	})
	if sq == nil {
		t.Fatal("no setq")
	}
	if sq.Value.Info().PdlOkP == nil {
		t.Error("setq to a frame variable should authorize pdl")
	}
}

// mustRead parses one form, panicking on error — a test-table
// convenience; the production reader paths all return errors.
func mustRead(src string) sexp.Value {
	v, err := sexp.ReadOne(src)
	if err != nil {
		panic(err)
	}
	return v
}
