package s1

import (
	"fmt"
	"time"
)

// A mark-sweep garbage collector for the simulator heap. The paper's
// runtime "and especially the garbage collector, has been written with
// multiprocessing in mind"; ours is a stop-the-world single-threaded
// collector — the compilation techniques under study interact with it
// only through allocation pressure, which the pdl-number machinery
// exists to reduce.
//
// The collector is non-moving: freed blocks go on per-size free lists
// and Alloc reuses them. Roots are the registers, the live stack extent,
// the deep-binding stack, catch frames, symbol value/function cells, and
// every immediate operand in compiled code (quoted constants).

// allocRec tracks one heap block.
type allocRec struct {
	size   int
	marked bool
	free   bool
}

// heapExhausted is the internal panic value raised when an allocation
// cannot fit under HeapLimit even after a forced collection; the run
// loop's recover barrier converts it into a RuntimeError.
type heapExhausted struct {
	need, live, limit int64
}

func (e *heapExhausted) Error() string {
	return fmt.Sprintf("heap exhausted: %d live words + %d requested exceeds limit %d after GC",
		e.live, e.need, e.limit)
}

// GCStats meters collector activity.
type GCStats struct {
	Collections    int64
	WordsReclaimed int64
	BlocksFreed    int64
	WordsReused    int64
}

func (m *Machine) gcEnsure() {
	if m.allocRecs == nil {
		m.allocRecs = map[uint64]*allocRec{}
		m.freeLists = map[int][]uint64{}
	}
}

// GCThresholdWords, when >0, triggers a collection automatically whenever
// live heap growth since the last collection exceeds the threshold.
func (m *Machine) SetGCThreshold(words int64) { m.gcThreshold = words }

// GC runs a full mark-sweep collection and returns the number of words
// reclaimed.
func (m *Machine) GC() int64 {
	m.gcEnsure()
	m.GCMeters.Collections++
	var gcStart time.Time
	if m.prof != nil {
		gcStart = time.Now()
	}

	// --- mark ---
	var mark func(w Word)
	mark = func(w Word) {
		var scan bool
		switch w.Tag {
		case TagCons, TagFlonum, TagClosure, TagEnv, TagVector, TagArray, TagFArray:
			scan = true
		default:
			return
		}
		addr := w.Bits
		rec, ok := m.allocRecs[addr]
		if !ok || rec.marked || rec.free {
			return
		}
		rec.marked = true
		if !scan {
			return
		}
		// Scan pointer-bearing payloads; raw payloads (flonum data,
		// float-array data) contain no pointers but marking the whole
		// block is harmless since raw words carry TagRaw.
		for i := 0; i < rec.size; i++ {
			mark(m.heap[addr-HeapBase+uint64(i)])
		}
	}

	for _, r := range m.regs {
		mark(r)
	}
	sp := m.regs[RegSP].Bits
	if IsStackAddr(sp) {
		for a := uint64(StackBase); a < sp; a++ {
			mark(m.stack[a-StackBase])
		}
	}
	for _, b := range m.bindStack {
		mark(b.val)
	}
	for _, f := range m.catchStack {
		mark(f.tag)
	}
	for i := range m.Syms {
		mark(m.Syms[i].Value)
		mark(m.Syms[i].Function)
	}
	for i := range m.Code {
		ins := &m.Code[i]
		for _, op := range []Operand{ins.A, ins.B, ins.C} {
			if op.Mode == MImm {
				mark(op.Imm)
			}
		}
	}

	// --- sweep ---
	var reclaimed, blocks int64
	for addr, rec := range m.allocRecs {
		if rec.free {
			continue
		}
		if rec.marked {
			rec.marked = false
			continue
		}
		rec.free = true
		m.freeLists[rec.size] = append(m.freeLists[rec.size], addr)
		reclaimed += int64(rec.size)
		blocks++
		// Poison the block to catch dangling pointers in tests.
		for i := 0; i < rec.size; i++ {
			m.heap[addr-HeapBase+uint64(i)] = Word{Tag: TagGC, Bits: 0xdead}
		}
	}
	m.GCMeters.WordsReclaimed += reclaimed
	m.GCMeters.BlocksFreed += blocks
	m.liveSinceGC = 0
	m.liveWords -= reclaimed
	if p := m.prof; p != nil {
		p.gcPause(time.Since(gcStart))
	}
	return reclaimed
}

// gcAlloc is Alloc with free-list reuse and the auto-collect trigger.
func (m *Machine) gcAlloc(n int) uint64 {
	m.gcEnsure()
	if m.gcThreshold > 0 && m.liveSinceGC >= m.gcThreshold {
		m.GC()
	}
	// The heap guard: collect when the limit would be crossed, and if
	// the survivors still don't leave room, fail the allocation — as a
	// panic, because the call chain down to Cons has no error path; the
	// run loop converts it to a RuntimeError.
	if m.HeapLimit > 0 && m.liveWords+int64(n) > m.HeapLimit {
		m.GC()
		if m.liveWords+int64(n) > m.HeapLimit {
			panic(&heapExhausted{need: int64(n), live: m.liveWords, limit: m.HeapLimit})
		}
	}
	m.liveWords += int64(n)
	if lst := m.freeLists[n]; len(lst) > 0 {
		addr := lst[len(lst)-1]
		m.freeLists[n] = lst[:len(lst)-1]
		rec := m.allocRecs[addr]
		rec.free = false
		rec.marked = false
		for i := 0; i < n; i++ {
			m.heap[addr-HeapBase+uint64(i)] = Word{}
		}
		m.GCMeters.WordsReused += int64(n)
		m.Stats.HeapAllocs++
		m.liveSinceGC += int64(n)
		return addr
	}
	base := HeapBase + uint64(len(m.heap))
	m.heap = append(m.heap, make([]Word, n)...)
	m.Stats.HeapWords += int64(n)
	m.Stats.HeapAllocs++
	m.allocRecs[base] = &allocRec{size: n}
	m.liveSinceGC += int64(n)
	return base
}

// LiveHeapWords reports the words in non-free blocks.
func (m *Machine) LiveHeapWords() int64 {
	m.gcEnsure()
	var live int64
	for _, rec := range m.allocRecs {
		if !rec.free {
			live += int64(rec.size)
		}
	}
	return live
}
