package s1

import (
	"fmt"
	"time"
)

// A mark-sweep garbage collector for the simulator heap. The paper's
// runtime "and especially the garbage collector, has been written with
// multiprocessing in mind"; ours is a stop-the-world single-threaded
// collector — the compilation techniques under study interact with it
// only through allocation pressure, which the pdl-number machinery
// exists to reduce.
//
// The collector is non-moving: freed blocks go on per-size free lists
// and Alloc reuses them. Roots are the registers, the live stack extent,
// the deep-binding stack, catch frames, symbol value/function cells, and
// every immediate operand in compiled code (quoted constants).
//
// Block records live in gcRecs, a slice parallel to the heap: the entry
// at a block's start offset holds {size, marked, free}; interior offsets
// stay zero. Because the heap is non-moving and offsets are dense, this
// turns the mark-phase pointer test and the per-allocation record insert
// into slice indexing — the address-keyed map this replaced dominated
// allocation-heavy kernel profiles. Free lists for small sizes are
// array-bucketed (freeSmall); rare larger sizes fall back to a map.

// gcRec tracks one heap block; the zero value marks a non-block offset.
type gcRec struct {
	size   int32
	marked bool
	free   bool
}

// gcSmallMax bounds the array-bucketed free lists; Cons cells, flonums,
// closures and small vectors all fall well under it.
const gcSmallMax = 64

// heapExhausted is the internal panic value raised when an allocation
// cannot fit under HeapLimit even after a forced collection; the run
// loop's recover barrier converts it into a RuntimeError.
type heapExhausted struct {
	need, live, limit int64
}

func (e *heapExhausted) Error() string {
	return fmt.Sprintf("heap exhausted: %d live words + %d requested exceeds limit %d after GC",
		e.live, e.need, e.limit)
}

// GCStats meters collector activity.
type GCStats struct {
	Collections    int64
	WordsReclaimed int64
	BlocksFreed    int64
	WordsReused    int64
}

// GCThresholdWords, when >0, triggers a collection automatically whenever
// live heap growth since the last collection exceeds the threshold.
func (m *Machine) SetGCThreshold(words int64) { m.gcThreshold = words }

// GC runs a full mark-sweep collection and returns the number of words
// reclaimed.
func (m *Machine) GC() int64 {
	m.GCMeters.Collections++
	var gcStart time.Time
	if m.prof != nil || m.OnEvent != nil {
		gcStart = time.Now()
	}

	// --- mark ---
	var mark func(w Word)
	mark = func(w Word) {
		switch w.Tag {
		case TagCons, TagFlonum, TagClosure, TagEnv, TagVector, TagArray, TagFArray:
		default:
			return
		}
		if w.Bits < HeapBase {
			return
		}
		off := w.Bits - HeapBase
		if off >= uint64(len(m.gcRecs)) {
			return
		}
		rec := &m.gcRecs[off]
		if rec.size == 0 || rec.marked || rec.free {
			return
		}
		rec.marked = true
		// Scan pointer-bearing payloads; raw payloads (flonum data,
		// float-array data) contain no pointers but marking the whole
		// block is harmless since raw words carry TagRaw.
		for i := int32(0); i < rec.size; i++ {
			mark(m.heap[off+uint64(i)])
		}
	}

	for _, r := range m.regs {
		mark(r)
	}
	sp := m.regs[RegSP].Bits
	if IsStackAddr(sp) {
		for a := uint64(StackBase); a < sp; a++ {
			mark(m.stack[a-StackBase])
		}
	}
	for _, b := range m.bindStack {
		mark(b.val)
	}
	// Mid-construction structure held only in host locals (FromValue,
	// the SQ list builders) is registered on the temp-root stack; without
	// it, a collection between the allocations of a multi-word build
	// would reclaim the partially built object (surfaced by -gc-stress).
	for _, w := range m.tempRoots {
		mark(w)
	}
	for _, f := range m.catchStack {
		mark(f.tag)
	}
	for i := range m.Syms {
		mark(m.Syms[i].Value)
		mark(m.Syms[i].Function)
	}
	for i := range m.Code {
		ins := &m.Code[i]
		for _, op := range []Operand{ins.A, ins.B, ins.C} {
			if op.Mode == MImm {
				mark(op.Imm)
			}
		}
	}

	// --- sweep ---
	var reclaimed, blocks int64
	for _, off := range m.gcBlocks {
		rec := &m.gcRecs[off]
		if rec.free {
			continue
		}
		if rec.marked {
			rec.marked = false
			continue
		}
		rec.free = true
		m.gcFree(int(rec.size), off)
		reclaimed += int64(rec.size)
		blocks++
		// Poison the block to catch dangling pointers in tests.
		for i := int32(0); i < rec.size; i++ {
			m.heap[off+uint64(i)] = Word{Tag: TagGC, Bits: 0xdead}
		}
	}
	m.GCMeters.WordsReclaimed += reclaimed
	m.GCMeters.BlocksFreed += blocks
	m.liveSinceGC = 0
	m.liveWords -= reclaimed
	if m.prof != nil || m.OnEvent != nil {
		pause := time.Since(gcStart)
		if p := m.prof; p != nil {
			p.gcPause(pause)
		}
		if m.OnEvent != nil {
			m.OnEvent("gc-pause", "", pause)
		}
	}
	return reclaimed
}

// gcFree pushes a freed block's offset onto the free list for its size.
func (m *Machine) gcFree(n int, off uint64) {
	if n <= gcSmallMax {
		m.freeSmall[n] = append(m.freeSmall[n], off)
		return
	}
	if m.freeBig == nil {
		m.freeBig = map[int][]uint64{}
	}
	m.freeBig[n] = append(m.freeBig[n], off)
}

// gcReuse pops a free block of exactly n words, returning its offset.
func (m *Machine) gcReuse(n int) (uint64, bool) {
	if n <= gcSmallMax {
		if lst := m.freeSmall[n]; len(lst) > 0 {
			off := lst[len(lst)-1]
			m.freeSmall[n] = lst[:len(lst)-1]
			return off, true
		}
		return 0, false
	}
	if lst := m.freeBig[n]; len(lst) > 0 {
		off := lst[len(lst)-1]
		m.freeBig[n] = lst[:len(lst)-1]
		return off, true
	}
	return 0, false
}

// protect pushes a word onto the temp-root stack, shielding structure
// reachable only from host locals across allocations; the caller must
// balance it with release. Returns the depth to restore.
func (m *Machine) protect(w Word) int {
	m.tempRoots = append(m.tempRoots, w)
	return len(m.tempRoots) - 1
}

// release pops temp roots down to depth (a value previously returned by
// protect).
func (m *Machine) release(depth int) {
	m.tempRoots = m.tempRoots[:depth]
}

// gcAlloc is Alloc with free-list reuse and the auto-collect trigger.
func (m *Machine) gcAlloc(n int) uint64 {
	if m.gcStress {
		// Stress mode: collect before every allocation, making every
		// allocation point a GC safepoint. Any structure not reachable
		// from the roots dies immediately — construction-order bugs
		// surface deterministically instead of under rare heap pressure.
		m.GC()
	} else if m.gcThreshold > 0 && m.liveSinceGC >= m.gcThreshold {
		m.GC()
	}
	// The heap guard: collect when the limit would be crossed, and if
	// the survivors still don't leave room, fail the allocation — as a
	// panic, because the call chain down to Cons has no error path; the
	// run loop converts it to a RuntimeError.
	if m.HeapLimit > 0 && m.liveWords+int64(n) > m.HeapLimit {
		m.GC()
		if m.liveWords+int64(n) > m.HeapLimit {
			panic(&heapExhausted{need: int64(n), live: m.liveWords, limit: m.HeapLimit})
		}
	}
	m.liveWords += int64(n)
	m.liveSinceGC += int64(n)
	m.Stats.HeapAllocs++
	if off, ok := m.gcReuse(n); ok {
		rec := &m.gcRecs[off]
		rec.free = false
		rec.marked = false
		for i := 0; i < n; i++ {
			m.heap[off+uint64(i)] = Word{}
		}
		m.GCMeters.WordsReused += int64(n)
		return HeapBase + off
	}
	off := uint64(len(m.heap))
	// Grow heap and the parallel record slice. Extending within capacity
	// is the common case. On spill, double the capacity rather than
	// letting append pick its large-slice growth factor: a program that
	// outruns the collector grows the heap monotonically, and the copy
	// per appended word is the allocator's dominant cost at 1.25x.
	// Heap words past len have never been written, so they are zero.
	need := len(m.heap) + n
	if need <= cap(m.heap) {
		m.heap = m.heap[:need]
	} else {
		grown := make([]Word, need, growCap(need))
		copy(grown, m.heap)
		m.heap = grown
	}
	if need <= cap(m.gcRecs) {
		m.gcRecs = m.gcRecs[:need]
	} else {
		grown := make([]gcRec, need, growCap(need))
		copy(grown, m.gcRecs)
		m.gcRecs = grown
	}
	m.Stats.HeapWords += int64(n)
	m.gcRecs[off] = gcRec{size: int32(n)}
	m.gcBlocks = append(m.gcBlocks, off)
	return HeapBase + off
}

// growCap picks the capacity for a spilled heap-parallel slice.
func growCap(need int) int {
	if need < 4096 {
		return 4096
	}
	return need * 2
}

// LiveHeapWords reports the words in non-free blocks.
func (m *Machine) LiveHeapWords() int64 {
	var live int64
	for _, off := range m.gcBlocks {
		if rec := &m.gcRecs[off]; !rec.free {
			live += int64(rec.size)
		}
	}
	return live
}
