package s1

import (
	"fmt"
	"time"
)

// A generational, non-moving mark-sweep garbage collector for the
// simulator heap. The paper's runtime "and especially the garbage
// collector, has been written with multiprocessing in mind"; ours is a
// stop-the-world single-threaded collector — the compilation techniques
// under study interact with it only through allocation pressure, which
// the pdl-number machinery exists to reduce.
//
// The collector is non-moving: freed blocks go on per-size free lists
// and Alloc reuses them. Roots are the registers, the live stack extent,
// the deep-binding stack, catch frames, symbol value/function cells, and
// every immediate operand in compiled code (quoted constants).
//
// Block records live in gcRecs, a slice parallel to the heap: the entry
// at a block's start offset holds {size, marked, free, old}; interior
// offsets stay zero. Because the heap is non-moving and offsets are
// dense, this turns the mark-phase pointer test and the per-allocation
// record insert into slice indexing — the address-keyed map this
// replaced dominated allocation-heavy kernel profiles. Free lists for
// small sizes are array-bucketed (freeSmall); rare larger sizes fall
// back to a map whose emptied size classes are pruned on reuse.
//
// Generations (DESIGN.md §15). Blocks are born young: every allocation
// since the last collection — fresh growth or free-list reuse — joins
// youngBlocks. A *minor* collection marks only young blocks, starting
// from the machine roots plus the remembered set, and sweeps only
// youngBlocks; survivors are promoted in place by their sticky mark
// (old=true) and the list empties. A *full* collection marks and sweeps
// everything, tenuring all survivors. The pause of a minor is thus
// proportional to the nursery and the dirty-card extent, not to the
// total live heap.
//
// The remembered set is a card table parallel to the heap at cardWords
// granularity: the write barrier in Machine.store / storeFast (the only
// paths by which compiled code mutates existing heap blocks) dirties the
// stored-to card, and a minor collection treats every word of every
// dirty card as a root. This over-approximates — a dirty card retains
// any young block it happens to mention — but it is cheap (one byte
// store per heap store), needs no block lookup from interior addresses,
// and clearing all cards after every collection is exact: all young
// survivors are promoted, so a post-collection old→young edge can only
// be created by a post-collection store.
//
// Writes into a block allocated after the last possible collection point
// need no barrier (the block is young, and young blocks are traversed):
// Cons, ConsFlonum, decCLOSE and decENV fill their blocks immediately.
// A builder that fills a block *across* further allocations (FromValue's
// vectors) must use heapWrite, because an intervening minor collection
// may have tenured the partially built block.

// gcRec tracks one heap block; the zero value marks a non-block offset.
type gcRec struct {
	size   int32
	marked bool
	free   bool
	// old marks a tenured block: minor collections neither trace through
	// it nor sweep it. Blocks are born young; a minor survivor is
	// promoted by its sticky mark, and a full collection tenures every
	// survivor. Meaningless while free is set (reuse resets it).
	old bool
}

// gcSmallMax bounds the array-bucketed free lists; Cons cells, flonums,
// closures and small vectors all fall well under it.
const gcSmallMax = 64

// Card-table granularity: one byte of cards covers 1<<cardShift heap
// words. Coarse enough that the table stays a fraction of a percent of
// the heap, fine enough that a minor collection's card scan visits only
// a neighborhood of each recorded store.
const (
	cardShift = 7
	cardWords = 1 << cardShift
)

// cardsFor returns the card-table length covering n heap words.
func cardsFor(n int) int { return (n + cardWords - 1) >> cardShift }

// gcPromoteFullFactor bounds promotion pressure: once the words tenured
// since the last full collection exceed this multiple of the threshold,
// the old generation holds enough possibly-dead structure that minors
// stop paying and the next automatic collection goes full.
const gcPromoteFullFactor = 8

// heapExhausted is the internal panic value raised when an allocation
// cannot fit under HeapLimit even after a forced collection; the run
// loop's recover barrier converts it into a RuntimeError.
type heapExhausted struct {
	need, live, limit int64
}

func (e *heapExhausted) Error() string {
	return fmt.Sprintf("heap exhausted: %d live words + %d requested exceeds limit %d after GC",
		e.live, e.need, e.limit)
}

// GCStats meters collector activity. Collections counts full
// collections only; minors are metered separately.
type GCStats struct {
	Collections      int64
	MinorCollections int64
	WordsReclaimed   int64
	BlocksFreed      int64
	WordsReused      int64
	// Promotion traffic: young blocks tenured by minor collections
	// (full collections tenure everything but are not promotion in this
	// sense — they reset the pressure instead).
	WordsPromoted  int64
	BlocksPromoted int64
}

// GCThresholdWords, when >0, triggers a collection automatically whenever
// live heap growth since the last collection exceeds the threshold.
func (m *Machine) SetGCThreshold(words int64) { m.gcThreshold = words }

// SetGCNoGen disables generational collection: every automatic
// collection is a full mark-sweep (the -gc-nogen flag). The write
// barrier still runs — store paths are identical in both modes — but
// the cards are never consulted. The differential suites compare this
// mode against the generational default.
func (m *Machine) SetGCNoGen(v bool) { m.gcNoGen = v }

// SetGCMinorBudget bounds minor-collection pauses (the -gc-minor-budget
// flag): a minor that overruns the budget escalates the next automatic
// collection to a full one, which resets the nursery and the promotion
// pressure that made the minor expensive. 0 disables the budget. The
// check is wall-clock, so enabling it trades the collector's cross-run
// determinism (which the differential suites rely on) for bounded
// pauses; the compile configurations that need byte-identical replays
// leave it unset.
func (m *Machine) SetGCMinorBudget(d time.Duration) { m.minorBudget = d }

// SetGCStressMinor forces a minor collection before every allocation —
// the generational counterpart of SetGCStress. Every object that
// survives a single allocation is promoted immediately, so any heap
// store missing the write barrier turns into a deterministic poisoned
// read instead of a rare heap-pressure corruption.
func (m *Machine) SetGCStressMinor(v bool) { m.gcStressMinor = v }

// GC runs a full mark-sweep collection and returns the number of words
// reclaimed. Every survivor is tenured, the nursery list empties, and
// the card table clears: the next minor starts from an empty remembered
// set, which is exact because no young blocks remain to remember.
func (m *Machine) GC() int64 {
	m.GCMeters.Collections++
	var gcStart time.Time
	if m.prof != nil || m.OnEvent != nil {
		gcStart = time.Now()
	}

	m.markRoots(false)

	var reclaimed, blocks int64
	for _, off := range m.gcBlocks {
		rec := &m.gcRecs[off]
		if rec.free {
			continue
		}
		if rec.marked {
			rec.marked = false
			rec.old = true
			continue
		}
		rec.free = true
		m.gcFree(int(rec.size), off)
		reclaimed += int64(rec.size)
		blocks++
		// Poison the block to catch dangling pointers in tests.
		for i := int32(0); i < rec.size; i++ {
			m.heap[off+uint64(i)] = Word{Tag: TagGC, Bits: 0xdead}
		}
	}
	m.youngBlocks = m.youngBlocks[:0]
	clear(m.cards)
	m.promotedSinceFull = 0
	m.GCMeters.WordsReclaimed += reclaimed
	m.GCMeters.BlocksFreed += blocks
	m.liveSinceGC = 0
	m.liveWords -= reclaimed
	if m.prof != nil || m.OnEvent != nil {
		pause := time.Since(gcStart)
		if p := m.prof; p != nil {
			p.gcPause(pause)
		}
		if m.OnEvent != nil {
			m.OnEvent("gc-pause", "", pause)
		}
	}
	return reclaimed
}

// MinorGC runs a minor collection — mark young blocks from the roots
// and the remembered set, sweep only the nursery, promote survivors in
// place — and returns the words reclaimed. Old blocks are neither
// traced through nor swept: any old→young edge must be in a dirty card,
// which is exactly what the write barrier guarantees.
func (m *Machine) MinorGC() int64 {
	m.GCMeters.MinorCollections++
	timed := m.prof != nil || m.OnEvent != nil || m.minorBudget > 0
	var gcStart time.Time
	if timed {
		gcStart = time.Now()
	}

	m.markRoots(true)

	var reclaimed, blocks int64
	for _, off := range m.youngBlocks {
		rec := &m.gcRecs[off]
		if rec.free {
			continue
		}
		if rec.marked {
			rec.marked = false
			rec.old = true
			m.GCMeters.WordsPromoted += int64(rec.size)
			m.GCMeters.BlocksPromoted++
			m.promotedSinceFull += int64(rec.size)
			continue
		}
		rec.free = true
		m.gcFree(int(rec.size), off)
		reclaimed += int64(rec.size)
		blocks++
		for i := int32(0); i < rec.size; i++ {
			m.heap[off+uint64(i)] = Word{Tag: TagGC, Bits: 0xdead}
		}
	}
	m.youngBlocks = m.youngBlocks[:0]
	clear(m.cards)
	m.GCMeters.WordsReclaimed += reclaimed
	m.GCMeters.BlocksFreed += blocks
	m.liveSinceGC = 0
	m.liveWords -= reclaimed
	if timed {
		pause := time.Since(gcStart)
		if m.minorBudget > 0 && pause > m.minorBudget {
			m.minorOverBudget = true
		}
		if p := m.prof; p != nil {
			p.gcPause(pause)
		}
		if m.OnEvent != nil {
			m.OnEvent("gc-minor-pause", "", pause)
		}
	}
	return reclaimed
}

// collectAuto is the threshold-triggered collection: a minor by
// default, escalating to a full collection when generations are off,
// when the last minor overran its pause budget, or when promotion
// pressure says the old generation needs reclaiming. The escalation
// inputs (liveSinceGC, promotedSinceFull, the static toggles) are all
// functions of the allocation and store history, so — budget aside —
// two machines with identical histories collect identically.
func (m *Machine) collectAuto() {
	if m.gcNoGen || m.minorOverBudget ||
		m.promotedSinceFull >= gcPromoteFullFactor*m.gcThreshold {
		m.minorOverBudget = false
		m.GC()
	} else {
		m.MinorGC()
	}
	// GC-check sites are safepoints too: an allocation-heavy program
	// charges its gas (and can be parked) here, between the coarser
	// Run-loop polls.
	m.gcSafepoint()
}

// markRoots pushes every root onto the mark worklist — plus, for a
// minor collection, every word of every dirty card (the remembered set)
// — and drains it. The worklist replaced a per-word recursive closure:
// a long cons chain used to cost one Go stack frame per cell, a speed
// and stack-depth hazard the deep-list regression test pins down.
func (m *Machine) markRoots(minor bool) {
	for _, r := range m.regs {
		m.markPush(r, minor)
	}
	sp := m.regs[RegSP].Bits
	if IsStackAddr(sp) {
		for a := uint64(StackBase); a < sp; a++ {
			m.markPush(m.stack[a-StackBase], minor)
		}
	}
	for _, b := range m.bindStack {
		m.markPush(b.val, minor)
	}
	// Mid-construction structure held only in host locals (FromValue,
	// the SQ list builders) is registered on the temp-root stack; without
	// it, a collection between the allocations of a multi-word build
	// would reclaim the partially built object (surfaced by -gc-stress).
	for _, w := range m.tempRoots {
		m.markPush(w, minor)
	}
	for _, f := range m.catchStack {
		m.markPush(f.tag, minor)
	}
	for i := range m.Syms {
		m.markPush(m.Syms[i].Value, minor)
		m.markPush(m.Syms[i].Function, minor)
	}
	for i := range m.Code {
		ins := &m.Code[i]
		if ins.A.Mode == MImm {
			m.markPush(ins.A.Imm, minor)
		}
		if ins.B.Mode == MImm {
			m.markPush(ins.B.Imm, minor)
		}
		if ins.C.Mode == MImm {
			m.markPush(ins.C.Imm, minor)
		}
	}
	if minor {
		hl := uint64(len(m.heap))
		for c, dirty := range m.cards {
			if dirty == 0 {
				continue
			}
			base := uint64(c) << cardShift
			end := base + cardWords
			if end > hl {
				end = hl
			}
			for i := base; i < end; i++ {
				m.markPush(m.heap[i], minor)
			}
		}
	}
	m.markDrain(minor)
}

// markPush marks w's block and queues it for tracing if w points into
// an unmarked live heap block — an unmarked live *young* block, during
// a minor collection.
func (m *Machine) markPush(w Word, minor bool) {
	switch w.Tag {
	case TagCons, TagFlonum, TagClosure, TagEnv, TagVector, TagArray, TagFArray:
	default:
		return
	}
	if w.Bits < HeapBase {
		return
	}
	off := w.Bits - HeapBase
	if off >= uint64(len(m.gcRecs)) {
		return
	}
	rec := &m.gcRecs[off]
	if rec.size == 0 || rec.marked || rec.free || (minor && rec.old) {
		return
	}
	rec.marked = true
	m.markStack = append(m.markStack, off)
}

// markDrain traces queued blocks until the worklist is empty. Raw
// payloads (flonum data, float-array data) contain no pointers but
// scanning the whole block is harmless since raw words carry TagRaw.
func (m *Machine) markDrain(minor bool) {
	for n := len(m.markStack); n > 0; n = len(m.markStack) {
		off := m.markStack[n-1]
		m.markStack = m.markStack[:n-1]
		size := uint64(m.gcRecs[off].size)
		for i := uint64(0); i < size; i++ {
			m.markPush(m.heap[off+i], minor)
		}
	}
}

// heapWrite is the write-barriered form of a direct heap write (off is
// heap-relative), for builders that fill a block across further
// allocations: an intervening minor collection may have tenured the
// partially built block, so the store must land in the remembered set
// exactly as an RPLACA through Machine.store would.
func (m *Machine) heapWrite(off uint64, w Word) {
	m.heap[off] = w
	m.cards[off>>cardShift] = 1
}

// gcFree pushes a freed block's offset onto the free list for its size.
func (m *Machine) gcFree(n int, off uint64) {
	if n <= gcSmallMax {
		m.freeSmall[n] = append(m.freeSmall[n], off)
		return
	}
	if m.freeBig == nil {
		m.freeBig = map[int][]uint64{}
	}
	m.freeBig[n] = append(m.freeBig[n], off)
}

// gcReuse pops a free block of exactly n words, returning its offset.
// A big size class emptied by the pop is deleted, so freeBig never
// accumulates dead entries (they would otherwise linger in every
// AllocContext hash and image export for the life of the machine).
func (m *Machine) gcReuse(n int) (uint64, bool) {
	if n <= gcSmallMax {
		if lst := m.freeSmall[n]; len(lst) > 0 {
			off := lst[len(lst)-1]
			m.freeSmall[n] = lst[:len(lst)-1]
			return off, true
		}
		return 0, false
	}
	if lst := m.freeBig[n]; len(lst) > 0 {
		off := lst[len(lst)-1]
		if len(lst) == 1 {
			delete(m.freeBig, n)
		} else {
			m.freeBig[n] = lst[:len(lst)-1]
		}
		return off, true
	}
	return 0, false
}

// protect pushes a word onto the temp-root stack, shielding structure
// reachable only from host locals across allocations; the caller must
// balance it with release. Returns the depth to restore.
func (m *Machine) protect(w Word) int {
	m.tempRoots = append(m.tempRoots, w)
	return len(m.tempRoots) - 1
}

// release pops temp roots down to depth (a value previously returned by
// protect).
func (m *Machine) release(depth int) {
	m.tempRoots = m.tempRoots[:depth]
}

// gcAlloc is Alloc with free-list reuse and the auto-collect trigger.
// Every block it returns — reused or fresh — is young.
func (m *Machine) gcAlloc(n int) uint64 {
	if m.gcStress {
		// Stress mode: collect before every allocation, making every
		// allocation point a GC safepoint. Any structure not reachable
		// from the roots dies immediately — construction-order bugs
		// surface deterministically instead of under rare heap pressure.
		m.GC()
	} else if m.gcStressMinor {
		m.MinorGC()
	} else if m.gcThreshold > 0 && m.liveSinceGC >= m.gcThreshold {
		m.collectAuto()
	}
	// The heap guard: collect when the limit would be crossed, and if
	// the survivors still don't leave room, fail the allocation — as a
	// panic, because the call chain down to Cons has no error path; the
	// run loop converts it to a RuntimeError. Always a full collection:
	// a minor cannot reclaim the old generation the limit is drowning in.
	if m.HeapLimit > 0 && m.liveWords+int64(n) > m.HeapLimit {
		m.GC()
		if m.liveWords+int64(n) > m.HeapLimit {
			panic(&heapExhausted{need: int64(n), live: m.liveWords, limit: m.HeapLimit})
		}
	}
	m.liveWords += int64(n)
	m.liveSinceGC += int64(n)
	m.Stats.HeapAllocs++
	if off, ok := m.gcReuse(n); ok {
		rec := &m.gcRecs[off]
		rec.free = false
		rec.marked = false
		rec.old = false
		m.youngBlocks = append(m.youngBlocks, off)
		for i := 0; i < n; i++ {
			m.heap[off+uint64(i)] = Word{}
		}
		m.GCMeters.WordsReused += int64(n)
		return HeapBase + off
	}
	off := uint64(len(m.heap))
	// Grow heap and the parallel record and card slices. Extending
	// within capacity is the common case. On spill, double the capacity
	// rather than letting append pick its large-slice growth factor: a
	// program that outruns the collector grows the heap monotonically,
	// and the copy per appended word is the allocator's dominant cost at
	// 1.25x. Heap words past len have never been written, so they are
	// zero (the arena reset re-establishes this for recycled storage).
	need := len(m.heap) + n
	if need <= cap(m.heap) {
		m.heap = m.heap[:need]
	} else {
		grown := make([]Word, need, growCap(need))
		copy(grown, m.heap)
		m.heap = grown
	}
	if need <= cap(m.gcRecs) {
		m.gcRecs = m.gcRecs[:need]
	} else {
		grown := make([]gcRec, need, growCap(need))
		copy(grown, m.gcRecs)
		m.gcRecs = grown
	}
	if cl := cardsFor(need); cl > len(m.cards) {
		if cl <= cap(m.cards) {
			m.cards = m.cards[:cl]
		} else {
			grown := make([]byte, cl, cardsFor(growCap(need)))
			copy(grown, m.cards)
			m.cards = grown
		}
	}
	m.Stats.HeapWords += int64(n)
	m.gcRecs[off] = gcRec{size: int32(n)}
	m.gcBlocks = append(m.gcBlocks, off)
	m.youngBlocks = append(m.youngBlocks, off)
	return HeapBase + off
}

// growCap picks the capacity for a spilled heap-parallel slice.
func growCap(need int) int {
	if need < 4096 {
		return 4096
	}
	return need * 2
}

// LiveHeapWords reports the words in non-free blocks. It returns the
// incrementally maintained meter; CheckHeapInvariants re-derives the
// same quantity by an O(blocks) scan and asserts they agree, which is
// what lets every hot caller use the counter.
func (m *Machine) LiveHeapWords() int64 { return m.liveWords }
