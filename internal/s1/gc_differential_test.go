// Generational-GC differentials at the Lisp level: the bench kernels
// must produce identical results, machine meters, and profiles whether
// collections are generational (the default), forced full (-gc-nogen),
// or forced minor before every allocation (-gc-stress-minor). CI runs
// the whole differential file set under S1_GC_MODE=nogen and
// S1_GC_MODE=stress legs (DESIGN.md §15), the same way S1_TIER_MODE
// re-runs it across tier configurations.
package s1_test

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sexp"
)

// applyGCModeEnv maps the S1_GC_MODE CI environment knob onto system
// options: "nogen" makes every collection full, "stress" forces a minor
// collection before every allocation. Empty means the generational
// default.
func applyGCModeEnv(t *testing.T, opts *core.Options) {
	t.Helper()
	switch mode := os.Getenv("S1_GC_MODE"); mode {
	case "":
	case "nogen":
		opts.GCNoGen = true
	case "stress":
		opts.GCStressMinor = true
	default:
		t.Fatalf("unknown S1_GC_MODE %q", mode)
	}
}

// stripGCLines drops the ";; gc:" profile lines — the only ones carrying
// wall-clock pause durations and collection counts, which legitimately
// differ across GC configurations.
func stripGCLines(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, ";; gc:") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// gcDiffSystem builds a kernel system with explicit GC options,
// deliberately ignoring S1_GC_MODE: this file *is* the gen-vs-nogen
// comparison, so both sides must be pinned regardless of the CI leg.
func gcDiffSystem(t *testing.T, k runtimeKernel, opt func(*core.Options), profile bool) *core.System {
	t.Helper()
	opts := core.Options{Constants: k.consts}
	opt(&opts)
	sys := core.NewSystem(opts)
	if profile {
		sys.EnableProfile()
	}
	if k.gcAt > 0 {
		sys.Machine.SetGCThreshold(k.gcAt)
	}
	if err := sys.LoadString(k.src); err != nil {
		t.Fatal(err)
	}
	sys.ResetStats()
	return sys
}

// TestLispDifferentialGenVsNoGen is the tentpole's correctness proof:
// each kernel runs once under generational collection and once with
// -gc-nogen, and the two runs must agree on printed result, machine
// meters (HeapWords excluded — fresh-heap growth differs by design when
// old garbage is reclaimed lazily), and GC-stripped profile output.
// Kernels that collect at all must actually have run minor collections
// on the generational side, or the test proves nothing.
func TestLispDifferentialGenVsNoGen(t *testing.T) {
	for _, k := range runtimeKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			gen := gcDiffSystem(t, k, func(o *core.Options) {}, true)
			nogen := gcDiffSystem(t, k, func(o *core.Options) { o.GCNoGen = true }, true)
			gv, gerr := gen.Call(k.fn, k.args...)
			nv, nerr := nogen.Call(k.fn, k.args...)
			if gerr != nil || nerr != nil {
				t.Fatalf("gen err=%v nogen err=%v", gerr, nerr)
			}
			if sexp.Print(gv) != sexp.Print(nv) {
				t.Errorf("result divergence: gen=%s nogen=%s",
					sexp.Print(gv), sexp.Print(nv))
			}
			gs, ns := *gen.Stats(), *nogen.Stats()
			gs.HeapWords, ns.HeapWords = 0, 0
			if gs != ns {
				t.Errorf("stats divergence (HeapWords excluded):\n  gen:   %+v\n  nogen: %+v",
					gs, ns)
			}
			var bufs [2]strings.Builder
			gen.Machine.WriteProfile(&bufs[0])
			nogen.Machine.WriteProfile(&bufs[1])
			if gp, np := stripGCLines(bufs[0].String()), stripGCLines(bufs[1].String()); gp != np {
				t.Errorf("profile diverges across -gc-nogen:\n--- gen ---\n%s\n--- nogen ---\n%s",
					gp, np)
			}
			for name, sys := range map[string]*core.System{"gen": gen, "nogen": nogen} {
				if err := sys.Machine.CheckHeapInvariants(); err != nil {
					t.Errorf("%s heap invariants: %v", name, err)
				}
			}
			// Only gc-cons allocates enough in a single call to cross its
			// threshold (the other kernels collect only across the bench
			// loop's many iterations), so it alone anchors the requirement
			// that the generational side really ran minor collections.
			if k.name == "gc-cons" && gen.Machine.GCMeters.MinorCollections == 0 {
				t.Errorf("generational side ran no minor collections (meters %+v)",
					gen.Machine.GCMeters)
			}
			if nogen.Machine.GCMeters.MinorCollections != 0 {
				t.Errorf("nogen side ran minor collections: %+v", nogen.Machine.GCMeters)
			}
		})
	}
}

// TestLispDifferentialMinorStress forces a minor collection before every
// allocation: the harshest schedule for the write barrier and the
// young-list bookkeeping, since every block is promoted almost
// immediately and every subsequent heap store crosses the old/young
// boundary. Results must match the unstressed run and the allocator's
// records must stay consistent.
func TestLispDifferentialMinorStress(t *testing.T) {
	for _, k := range runtimeKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			plain := gcDiffSystem(t, k, func(o *core.Options) {}, false)
			stressed := gcDiffSystem(t, k, func(o *core.Options) { o.GCStressMinor = true }, false)
			pv, perr := plain.Call(k.fn, k.args...)
			sv, serr := stressed.Call(k.fn, k.args...)
			if perr != nil || serr != nil {
				t.Fatalf("plain err=%v stressed err=%v", perr, serr)
			}
			if sexp.Print(pv) != sexp.Print(sv) {
				t.Errorf("result divergence under minor stress: plain=%s stressed=%s",
					sexp.Print(pv), sexp.Print(sv))
			}
			// Kernels that never touch the heap (all-register arithmetic)
			// legitimately trigger no collections even under stress; the
			// cons-heavy kernel must.
			if k.name == "gc-cons" && stressed.Machine.GCMeters.MinorCollections == 0 {
				t.Error("stress-minor run recorded no minor collections")
			}
			if err := stressed.Machine.CheckHeapInvariants(); err != nil {
				t.Errorf("heap invariants after minor-stressed run: %v", err)
			}
		})
	}
}
