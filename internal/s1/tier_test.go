package s1

import "testing"

// TestTierPromotionThreshold checks that a function crossing its
// invocation threshold is promoted exactly once and lowered into blocks.
func TestTierPromotionThreshold(t *testing.T) {
	m := New()
	m.SetHotThreshold(3)
	buildAdd2(t, m)
	for i := 0; i < 5; i++ {
		got, err := m.CallFunction("add2", FixnumWord(30), FixnumWord(12))
		if err != nil {
			t.Fatal(err)
		}
		if got.Int() != 42 {
			t.Fatalf("call %d: add2 = %s", i, got)
		}
	}
	ts := m.TierStats()
	if !ts.Enabled || ts.Threshold != 3 {
		t.Fatalf("tier stats: %+v", ts)
	}
	if ts.Promotions != 1 || ts.HotFunctions != 1 {
		t.Errorf("want exactly one promotion, got %+v", ts)
	}
	if ts.LoweredBlocks == 0 || ts.LoweredInstrs == 0 {
		t.Errorf("promotion lowered nothing: %+v", ts)
	}
	fns := m.TierFunctions()
	if len(fns) != 1 || fns[0].Name != "add2" || fns[0].Calls != 5 || !fns[0].Hot {
		t.Errorf("per-function stats: %+v", fns)
	}
}

// TestTierForcedHot checks that threshold <= 0 promotes at AddFunction,
// before the first call.
func TestTierForcedHot(t *testing.T) {
	m := New()
	m.SetHotThreshold(0)
	buildAdd2(t, m)
	if ts := m.TierStats(); ts.Promotions != 1 {
		t.Fatalf("forced-hot did not promote at install: %+v", ts)
	}
	got, err := m.CallFunction("add2", FixnumWord(30), FixnumWord(12))
	if err != nil || got.Int() != 42 {
		t.Fatalf("add2 = %s, %v", got, err)
	}
}

// TestTierSetNoTier checks that disabling the tier rolls the machine
// back to plain static fusion.
func TestTierSetNoTier(t *testing.T) {
	m := New()
	m.SetHotThreshold(0)
	buildAdd2(t, m)
	if m.TierStats().Promotions != 1 {
		t.Fatal("precondition: promotion at install")
	}
	m.SetNoTier()
	if ts := m.TierStats(); ts.Enabled || ts.Promotions != 0 {
		t.Errorf("tier stats after SetNoTier: %+v", ts)
	}
	if m.FusedGroupCount() == 0 {
		t.Error("static fusion not restored after SetNoTier")
	}
	got, err := m.CallFunction("add2", FixnumWord(30), FixnumWord(12))
	if err != nil || got.Int() != 42 {
		t.Fatalf("add2 = %s, %v", got, err)
	}
}

// TestTierLandingRefusion checks that a control transfer observed
// landing inside a lowered block re-fuses the function with that PC as
// a block boundary.
func TestTierLandingRefusion(t *testing.T) {
	m := New()
	m.SetHotThreshold(0)
	idx := addFn(t, m, "line", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(10), B: ImmInt(1)}),
		InstrItem(Instr{Op: OpMOV, A: R(11), B: ImmInt(2)}),
		InstrItem(Instr{Op: OpMOV, A: R(12), B: ImmInt(3)}),
		InstrItem(Instr{Op: OpMOV, A: R(13), B: ImmInt(4)}),
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(FixnumWord(7))}),
		InstrItem(Instr{Op: OpRET}),
	})
	entry := m.Funcs[idx].Entry
	mid := entry + 2
	if m.tierHeads[mid] {
		t.Fatalf("pc %d should be a lowered-block interior", mid)
	}
	m.tier.noteLanding(m, mid)
	if !m.tierHeads[mid] {
		t.Fatalf("landing at %d did not become a block boundary", mid)
	}
	if ts := m.TierStats(); ts.Refusions != 1 {
		t.Errorf("want one re-fusion, got %+v", ts)
	}
	// The split function must still run correctly.
	got, err := m.CallFunction("line")
	if err != nil || got.Int() != 7 {
		t.Fatalf("line = %s, %v", got, err)
	}
	// Duplicate landings are deduplicated.
	m.tier.noteLanding(m, mid)
	if ts := m.TierStats(); ts.Refusions != 1 {
		t.Errorf("duplicate landing re-fused again: %+v", ts)
	}
}

// buildPolyCaller installs f1 (returns 1), f2 (returns 2), and a caller
// g whose CALL site goes through the symbol "poly".
func buildPolyCaller(t *testing.T, m *Machine) (f1, f2 int) {
	f1 = addFn(t, m, "f1", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(FixnumWord(1))}),
		InstrItem(Instr{Op: OpRET}),
	})
	f2 = addFn(t, m, "f2", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(FixnumWord(2))}),
		InstrItem(Instr{Op: OpRET}),
	})
	sym := m.InternSym("poly")
	addFn(t, m, "g", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(10), B: ImmInt(0)}),
		InstrItem(Instr{Op: OpCALL, A: Imm(Ptr(TagSymbol, uint64(sym))), TagArg: 0}),
		InstrItem(Instr{Op: OpPOP, A: R(RegA)}),
		InstrItem(Instr{Op: OpRET}),
	})
	return f1, f2
}

// TestTierCallCacheRebind checks that the CALL inline cache is keyed on
// the symbol's current function cell: rebinding the symbol invalidates
// the cache and the next call refills it with the new callee.
func TestTierCallCacheRebind(t *testing.T) {
	m := New()
	m.SetHotThreshold(0)
	f1, f2 := buildPolyCaller(t, m)
	m.SetSymbolFunction("poly", Ptr(TagFunc, uint64(f1)))

	got, err := m.CallFunction("g")
	if err != nil || got.Int() != 1 {
		t.Fatalf("g with poly=f1: %s, %v", got, err)
	}
	fillsAfterFirst := m.TierStats().CacheFills
	if fillsAfterFirst == 0 {
		t.Fatal("first call through the IC site did not fill the cache")
	}

	// A second call with an unchanged binding must hit, not refill.
	if _, err := m.CallFunction("g"); err != nil {
		t.Fatal(err)
	}
	if fills := m.TierStats().CacheFills; fills != fillsAfterFirst {
		t.Errorf("cache refilled on a stable binding: %d -> %d", fillsAfterFirst, fills)
	}

	// Rebinding must invalidate: the next call sees f2 and refills.
	m.SetSymbolFunction("poly", Ptr(TagFunc, uint64(f2)))
	got, err = m.CallFunction("g")
	if err != nil || got.Int() != 2 {
		t.Fatalf("g with poly=f2: %s, %v (stale inline cache?)", got, err)
	}
	if fills := m.TierStats().CacheFills; fills != fillsAfterFirst+1 {
		t.Errorf("rebind did not refill the cache: %d -> %d", fillsAfterFirst, fills)
	}
}

// TestTierStatsDisabled checks the nil-tier accessors.
func TestTierStatsDisabled(t *testing.T) {
	m := New()
	m.SetNoTier()
	if ts := m.TierStats(); ts.Enabled {
		t.Errorf("disabled tier reports enabled: %+v", ts)
	}
	if fns := m.TierFunctions(); len(fns) != 0 {
		t.Errorf("disabled tier reports functions: %+v", fns)
	}
}
