package s1

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/sexp"
)

// Compile capture and replay: the durable compile cache persists not the
// bytes of a compiled function but the *machine mutations* its emission
// performed — the symbols it interned, the constants it built on the
// heap, and the function bodies it installed (its own, plus any closure
// bodies and primitive stubs). Replaying those mutations against a
// machine in the same allocator context reproduces the emission exactly,
// word for word, which is what makes a disk hit byte-identical to a
// recompile (DESIGN.md §11).
//
// The context guard is AllocContext: a fingerprint of everything that
// determines the addresses and indices an emission hands out — symbol
// table contents, function/code/box counts, heap extent, free-list
// state, and the GC knobs that can fire a collection mid-emission. An
// entry recorded under one context is only replayed into an identical
// one; anything else falls back to recompilation.

// CapturedItem is one assembly item in value (gob-friendly) form: either
// a label or an instruction, never both.
type CapturedItem struct {
	Label   string
	IsInstr bool
	Instr   Instr
}

// CapturedFunc is one AddFunction call made during a capture.
type CapturedFunc struct {
	Name             string
	MinArgs, MaxArgs int
	Items            []CapturedItem
}

// Capture records the machine mutations of one function's emission.
type Capture struct {
	// Syms are the names newly interned, in intern order.
	Syms []string
	// Consts are the printed forms of every top-level FromValue call, in
	// call order; replaying them re-creates the same heap structure at
	// the same addresses (given an equal AllocContext).
	Consts []string
	// Funcs are the function bodies installed, in install order; the last
	// one is the unit's own body.
	Funcs []CapturedFunc
}

// ToItems converts captured items back to assembler items.
func ToItems(cs []CapturedItem) []Item {
	items := make([]Item, len(cs))
	for i, c := range cs {
		if c.IsInstr {
			ins := c.Instr
			items[i] = Item{Instr: &ins}
		} else {
			items[i] = Item{Label: c.Label}
		}
	}
	return items
}

// FromItems converts assembler items to the captured value form.
func FromItems(items []Item) []CapturedItem {
	cs := make([]CapturedItem, len(items))
	for i, it := range items {
		if it.Instr != nil {
			cs[i] = CapturedItem{IsInstr: true, Instr: *it.Instr}
		} else {
			cs[i] = CapturedItem{Label: it.Label}
		}
	}
	return cs
}

// BeginCapture starts recording machine mutations. Captures do not nest.
func (m *Machine) BeginCapture() error {
	if m.cap != nil {
		return fmt.Errorf("s1: capture already in progress")
	}
	m.cap = &Capture{}
	return nil
}

// EndCapture stops recording and returns the capture (nil if none was in
// progress).
func (m *Machine) EndCapture() *Capture {
	c := m.cap
	m.cap = nil
	m.capDepth = 0
	return c
}

// AllocContext fingerprints the machine state that determines the
// addresses and indices the next emission will hand out: the symbol
// table (names, incrementally hashed), the function/code/box extents,
// the heap extent and allocator free lists, and the GC configuration
// that can trigger collections mid-emission. Two machines with equal
// contexts hand out identical addresses for identical request sequences.
// Generational state (young list, cards, old bits, promotion pressure)
// is deliberately NOT part of the context: no compile configuration sets
// a GC threshold, and -gc-stress pins full collections, so the
// minor-vs-full choice can never fire during an emission and the gen
// bits cannot influence the addresses handed out. Including them would
// break the snapshot layer, which restores every block as old and must
// still produce the exporting machine's context.
func (m *Machine) AllocContext() string {
	h := fnv.New64a()
	fmt.Fprintf(h, "syms=%d:%x|funcs=%d|code=%d|boxes=%d|heap=%d|live=%d|since=%d|thr=%d|lim=%d|stress=%t|",
		len(m.Syms), m.symHash, len(m.Funcs), len(m.Code), len(m.Boxes),
		len(m.heap), m.liveWords, m.liveSinceGC, m.gcThreshold, m.HeapLimit,
		m.gcStress)
	// Free lists: a replayed allocation must pop the same block a fresh
	// compile would. Sizes in sorted order for determinism.
	for n := 0; n <= gcSmallMax; n++ {
		if lst := m.freeSmall[n]; len(lst) > 0 {
			fmt.Fprintf(h, "f%d=%v|", n, lst)
		}
	}
	if len(m.freeBig) > 0 {
		sizes := make([]int, 0, len(m.freeBig))
		for n := range m.freeBig {
			sizes = append(sizes, n)
		}
		sort.Ints(sizes)
		for _, n := range sizes {
			fmt.Fprintf(h, "F%d=%v|", n, m.freeBig[n])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// foldSymHash extends the incremental symbol-name hash with one newly
// interned name (order-sensitive by construction).
func (m *Machine) foldSymHash(name string) {
	h := m.symHash
	if h == 0 {
		h = 0xcbf29ce484222325 // FNV-1a offset basis
	}
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 0x100000001b3
	}
	h = (h ^ 0x1f) * 0x100000001b3 // name separator
	m.symHash = h
}

// ImageFingerprint hashes the externally visible machine image — code
// (as listed, including comments), function descriptors, the symbol
// table with its value and function cells, the heap contents, and the
// boxed objects. Two machines with equal fingerprints would produce
// byte-identical listings and behave identically; the multi-process
// cache tests compare it across independently built images.
func (m *Machine) ImageFingerprint() string {
	h := sha256.New()
	for i := range m.Code {
		fmt.Fprintf(h, "%d %s\n", i, m.Code[i].String())
	}
	for _, f := range m.Funcs {
		fmt.Fprintf(h, "fn %s %d %d %d %d\n", f.Name, f.Entry, f.End, f.MinArgs, f.MaxArgs)
	}
	for i := range m.Syms {
		c := &m.Syms[i]
		fmt.Fprintf(h, "sym %s %t %v %v\n", c.Name, c.HasValue, c.Value, c.Function)
	}
	for i := range m.heap {
		fmt.Fprintf(h, "h %v\n", m.heap[i])
	}
	for _, b := range m.Boxes {
		fmt.Fprintf(h, "box %s\n", sexp.Print(b))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// CheckHeapInvariants validates the allocator's block records against
// the heap: every registered block has a positive size inside the heap
// extent, blocks never overlap, interior record slots stay zero, free
// blocks are exactly the ones on the free lists, and liveWords equals
// the sum of non-free block sizes. The -gc-stress differential suite
// runs it after every kernel.
func (m *Machine) CheckHeapInvariants() error {
	if len(m.gcRecs) != len(m.heap) {
		return fmt.Errorf("s1 gc: record slice length %d != heap length %d", len(m.gcRecs), len(m.heap))
	}
	seen := make(map[uint64]bool, len(m.gcBlocks))
	offs := make([]uint64, 0, len(m.gcBlocks))
	var live int64
	for _, off := range m.gcBlocks {
		if seen[off] {
			return fmt.Errorf("s1 gc: block %d registered twice", off)
		}
		seen[off] = true
		if off >= uint64(len(m.gcRecs)) {
			return fmt.Errorf("s1 gc: block %d outside record slice (%d)", off, len(m.gcRecs))
		}
		rec := &m.gcRecs[off]
		if rec.size <= 0 {
			return fmt.Errorf("s1 gc: block %d has non-positive size %d", off, rec.size)
		}
		if off+uint64(rec.size) > uint64(len(m.heap)) {
			return fmt.Errorf("s1 gc: block %d size %d overruns heap (%d)", off, rec.size, len(m.heap))
		}
		if !rec.free {
			live += int64(rec.size)
		}
		offs = append(offs, off)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	for i := 1; i < len(offs); i++ {
		prev := offs[i-1]
		if prev+uint64(m.gcRecs[prev].size) > offs[i] {
			return fmt.Errorf("s1 gc: blocks %d (size %d) and %d overlap",
				prev, m.gcRecs[prev].size, offs[i])
		}
	}
	// Interior record slots must be zero, or a stale record would make
	// the mark phase treat a block interior as a block start.
	for _, off := range offs {
		for i := uint64(1); i < uint64(m.gcRecs[off].size); i++ {
			if r := m.gcRecs[off+i]; r.size != 0 {
				return fmt.Errorf("s1 gc: interior slot %d of block %d holds a record (size %d)",
					off+i, off, r.size)
			}
		}
	}
	if live != m.liveWords {
		return fmt.Errorf("s1 gc: liveWords meter %d != summed non-free block words %d", m.liveWords, live)
	}
	// Every free-list member must be a registered free block of that size.
	checkList := func(size int, lst []uint64) error {
		for _, off := range lst {
			if !seen[off] {
				return fmt.Errorf("s1 gc: free list %d holds unregistered block %d", size, off)
			}
			rec := &m.gcRecs[off]
			if !rec.free {
				return fmt.Errorf("s1 gc: free list %d holds live block %d", size, off)
			}
			if int(rec.size) != size {
				return fmt.Errorf("s1 gc: free list %d holds block %d of size %d", size, off, rec.size)
			}
		}
		return nil
	}
	for n := 0; n <= gcSmallMax; n++ {
		if err := checkList(n, m.freeSmall[n]); err != nil {
			return err
		}
	}
	for n, lst := range m.freeBig {
		if err := checkList(n, lst); err != nil {
			return err
		}
		if len(lst) == 0 {
			return fmt.Errorf("s1 gc: freeBig holds empty size class %d (pruning failed)", n)
		}
	}
	// Generational invariants: the card table covers the heap extent, and
	// the nursery list is exactly the live young blocks — every entry a
	// registered, non-free, non-old block, listed once; every live block
	// off the list tenured. (Collections clear the list wholesale, so a
	// freed-then-unlisted young block cannot exist between collections.)
	if cardsFor(len(m.heap)) > len(m.cards) {
		return fmt.Errorf("s1 gc: card table (%d) does not cover heap (%d words)", len(m.cards), len(m.heap))
	}
	young := make(map[uint64]bool, len(m.youngBlocks))
	for _, off := range m.youngBlocks {
		if young[off] {
			return fmt.Errorf("s1 gc: young block %d listed twice", off)
		}
		young[off] = true
		if !seen[off] {
			return fmt.Errorf("s1 gc: young list holds unregistered block %d", off)
		}
		rec := &m.gcRecs[off]
		if rec.free {
			return fmt.Errorf("s1 gc: young list holds free block %d", off)
		}
		if rec.old {
			return fmt.Errorf("s1 gc: young list holds tenured block %d", off)
		}
	}
	for _, off := range m.gcBlocks {
		rec := &m.gcRecs[off]
		if !rec.free && !rec.old && !young[off] {
			return fmt.Errorf("s1 gc: live young block %d missing from young list", off)
		}
	}
	return nil
}
