package s1

import (
	"fmt"

	"repro/internal/sexp"
)

// FromValue converts a host S-expression into a machine word, allocating
// heap structure as needed. Used for literals at load time and for the
// results of fallback primitives.
//
// Multi-allocation builds (conses, vectors, arrays) register their
// partial structure on the temp-root stack: a collection can fire
// between any two allocations (always, under -gc-stress), and words held
// only in Go locals are invisible to the mark phase. Element values are
// also computed into locals before being stored — the recursive call can
// grow the heap, and Go evaluates the indexed destination before the
// right-hand side.
func (m *Machine) FromValue(v sexp.Value) Word {
	if m.cap != nil && m.capDepth == 0 {
		m.cap.Consts = append(m.cap.Consts, sexp.Print(v))
	}
	m.capDepth++
	defer func() { m.capDepth-- }()
	switch x := v.(type) {
	case *sexp.Symbol:
		if x == sexp.Nil {
			return NilWord
		}
		if x == sexp.T {
			return TWord
		}
		return Ptr(TagSymbol, uint64(m.InternSym(x.Name)))
	case sexp.Fixnum:
		return FixnumWord(int64(x))
	case sexp.Flonum:
		return m.ConsFlonum(float64(x))
	case *sexp.Cons:
		car := m.FromValue(x.Car)
		depth := m.protect(car)
		cdr := m.FromValue(x.Cdr)
		m.protect(cdr)
		w := m.Cons(car, cdr)
		m.release(depth)
		return w
	case *sexp.Vector:
		a := m.Alloc(1 + len(x.Items))
		w := Ptr(TagVector, a)
		depth := m.protect(w)
		m.heap[a-HeapBase] = RawInt(int64(len(x.Items)))
		for i, it := range x.Items {
			// The recursive FromValue can trigger a minor collection that
			// promotes the temp-rooted vector to the old generation mid
			// build; a young element stored afterwards is then an old→young
			// edge, which must go through the write barrier (heapWrite) or
			// the next minor would reclaim it.
			ew := m.FromValue(it)
			m.heapWrite(a-HeapBase+1+uint64(i), ew)
		}
		m.release(depth)
		return w
	case *sexp.Array:
		a := m.Alloc(1 + len(x.Dims) + len(x.Items))
		w := Ptr(TagArray, a)
		depth := m.protect(w)
		m.heap[a-HeapBase] = RawInt(int64(len(x.Dims)))
		for i, d := range x.Dims {
			m.heap[a-HeapBase+1+uint64(i)] = RawInt(int64(d))
		}
		base := a - HeapBase + 1 + uint64(len(x.Dims))
		for i, it := range x.Items {
			// Same promotion hazard as the vector case above.
			ew := m.FromValue(it)
			m.heapWrite(base+uint64(i), ew)
		}
		m.release(depth)
		return w
	case *sexp.FloatArray:
		a := m.Alloc(1 + len(x.Dims) + len(x.Data))
		m.heap[a-HeapBase] = RawInt(int64(len(x.Dims)))
		for i, d := range x.Dims {
			m.heap[a-HeapBase+1+uint64(i)] = RawInt(int64(d))
		}
		base := a - HeapBase + 1 + uint64(len(x.Dims))
		for i, f := range x.Data {
			m.heap[base+uint64(i)] = RawFloat(f)
		}
		return Ptr(TagFArray, a)
	case *sexp.Bignum, *sexp.Ratio, sexp.String, sexp.Character:
		return m.Box(v)
	}
	return m.Box(v)
}

// ToValue converts a machine word back into a host S-expression.
// Functions and closures convert to unreadable boxed placeholders.
// Arrays convert to fresh host arrays (the fallback primitives that use
// this conversion never mutate their arguments).
func (m *Machine) ToValue(w Word) (sexp.Value, error) {
	switch w.Tag {
	case TagNil:
		return sexp.Nil, nil
	case TagT:
		return sexp.T, nil
	case TagFixnum:
		return sexp.Fixnum(w.Int()), nil
	case TagFlonum:
		v, err := m.load(w.Bits)
		if err != nil {
			return nil, err
		}
		return sexp.Flonum(v.Float()), nil
	case TagSymbol:
		return sexp.Intern(m.Syms[w.Bits].Name), nil
	case TagBoxed:
		return m.Boxes[w.Bits], nil
	case TagCons:
		return m.consToValue(w, 0)
	case TagVector:
		n, err := m.load(w.Bits)
		if err != nil {
			return nil, err
		}
		out := &sexp.Vector{Items: make([]sexp.Value, n.Int())}
		for i := int64(0); i < n.Int(); i++ {
			it, err := m.load(w.Bits + 1 + uint64(i))
			if err != nil {
				return nil, err
			}
			if out.Items[i], err = m.ToValue(it); err != nil {
				return nil, err
			}
		}
		return out, nil
	case TagArray:
		dims, base, err := m.arrayHeader(w)
		if err != nil {
			return nil, err
		}
		n := 1
		for _, d := range dims {
			n *= d
		}
		out := sexp.NewArray(dims, sexp.Nil)
		for i := 0; i < n; i++ {
			it, err := m.load(base + uint64(i))
			if err != nil {
				return nil, err
			}
			if out.Items[i], err = m.ToValue(it); err != nil {
				return nil, err
			}
		}
		return out, nil
	case TagFArray:
		dims, base, err := m.arrayHeader(w)
		if err != nil {
			return nil, err
		}
		out := sexp.NewFloatArray(dims)
		for i := range out.Data {
			it, err := m.load(base + uint64(i))
			if err != nil {
				return nil, err
			}
			out.Data[i] = it.Float()
		}
		return out, nil
	case TagFunc:
		return sexp.String(fmt.Sprintf("#<function %s>", m.Funcs[w.Bits].Name)), nil
	case TagClosure:
		return sexp.String("#<closure>"), nil
	}
	return nil, &RuntimeError{PC: m.pc, Msg: "cannot convert word " + w.String()}
}

func (m *Machine) consToValue(w Word, depth int) (sexp.Value, error) {
	if depth > 1_000_000 {
		return nil, &RuntimeError{PC: m.pc, Msg: "list too deep (circular?)"}
	}
	if w.Tag == TagNil {
		return sexp.Nil, nil
	}
	if w.Tag != TagCons {
		return m.ToValue(w)
	}
	car, err := m.load(w.Bits)
	if err != nil {
		return nil, err
	}
	cdr, err := m.load(w.Bits + 1)
	if err != nil {
		return nil, err
	}
	cv, err := m.ToValue(car)
	if err != nil {
		return nil, err
	}
	dv, err := m.consToValue(cdr, depth+1)
	if err != nil {
		return nil, err
	}
	return sexp.NewCons(cv, dv), nil
}

// arrayHeader reads [rank, dims...] and returns dims plus the data base
// address.
func (m *Machine) arrayHeader(w Word) ([]int, uint64, error) {
	rank, err := m.load(w.Bits)
	if err != nil {
		return nil, 0, err
	}
	dims := make([]int, rank.Int())
	for i := range dims {
		d, err := m.load(w.Bits + 1 + uint64(i))
		if err != nil {
			return nil, 0, err
		}
		dims[i] = int(d.Int())
	}
	return dims, w.Bits + 1 + uint64(len(dims)), nil
}

// PrintWord renders a word as its Lisp value where possible.
func (m *Machine) PrintWord(w Word) string {
	v, err := m.ToValue(w)
	if err != nil {
		return w.String()
	}
	return sexp.Print(v)
}
