package s1

import (
	"fmt"
	"math"

	"repro/internal/sexp"
)

// Hardware math. FSIN/FCOS take their arguments in cycles, as the S-1's
// instructions do (§7: "the S-1 SIN instruction assumes its argument to
// be in cycles").
func sinCycles(x float64) float64 { return math.Sin(2 * math.Pi * x) }
func cosCycles(x float64) float64 { return math.Cos(2 * math.Pi * x) }
func sqrt(x float64) float64      { return math.Sqrt(x) }
func atan(x float64) float64      { return math.Atan(x) }
func exp(x float64) float64       { return math.Exp(x) }
func logf(x float64) float64      { return math.Log(x) }
func fabs(x float64) float64      { return math.Abs(x) }
func fmax(x, y float64) float64   { return math.Max(x, y) }
func fmin(x, y float64) float64   { return math.Min(x, y) }

// SQ system routines (the *:SQ-... world of Table 4). Conventions:
// binary routines take arguments in A and B and return in A; THROW takes
// tag in A and value in B; the variadic routines take counts from the
// instruction's B operand.
const (
	SQWrongArgs = iota
	SQWrongType
	SQAdd
	SQSub
	SQMul
	SQDiv
	SQNumEq
	SQLt
	SQGt
	SQLe
	SQGe
	SQEql
	SQEqual
	SQCons
	SQCar
	SQCdr
	SQRplaca
	SQRplacd
	SQList
	SQFlonumCons
	SQFixnumCons
	SQCertify
	SQSpecFind
	SQSpecRead
	SQSpecWrite
	SQSpecReadSym
	SQSpecWriteSym
	SQThrow
	SQRestify
	SQApplyList
	SQPrim
	SQPrimFrame
	SQPrint
	SQError
	SQCount // number of routines
)

var sqNames = [SQCount]string{
	"*:SQ-WRONG-NUMBER-OF-ARGUMENTS", "*:SQ-WRONG-TYPE", "*:SQ-ADD",
	"*:SQ-SUB", "*:SQ-MUL", "*:SQ-DIV", "*:SQ-NUM-EQUAL", "*:SQ-LESS",
	"*:SQ-GREATER", "*:SQ-LESS-EQ", "*:SQ-GREATER-EQ", "*:SQ-EQL",
	"*:SQ-EQUAL", "*:SQ-CONS", "*:SQ-CAR", "*:SQ-CDR", "*:SQ-RPLACA",
	"*:SQ-RPLACD", "*:SQ-LIST", "*:SQ-SINGLE-FLONUM-CONS",
	"*:SQ-FIXNUM-CONS", "*:SQ-CERTIFY", "*:SQ-SPECIAL-FIND",
	"*:SQ-SPECIAL-READ", "*:SQ-SPECIAL-WRITE", "*:SQ-SPECIAL-READ-DEEP",
	"*:SQ-SPECIAL-WRITE-DEEP", "*:SQ-THROW", "*:SQ-RESTIFY",
	"*:SQ-APPLY-LIST", "*:SQ-PRIMITIVE", "*:SQ-PRIMITIVE-FRAME",
	"*:SQ-PRINT", "*:SQ-ERROR",
}

// SQName renders an SQ routine index.
func SQName(i int) string {
	if i >= 0 && i < SQCount {
		return sqNames[i]
	}
	return fmt.Sprintf("*:SQ-%d", i)
}

// sqCost approximates each routine's cycle cost beyond the CALLSQ
// dispatch.
var sqCost = [SQCount]int64{
	2, 2, 25, 25, 28, 40, 20, 20, 20, 20, 20, 10, 40, 12, 4, 4, 4, 4, 10,
	8, 6, 6, 8, 2, 2, 10, 10, 20, 20, 15, 60, 60, 80, 10,
}

// PrimHook lets the host supply implementations for primitives without a
// native SQ routine (the non-mutating library tail: append, member,
// print formatting, ...). Wired to the interpreter's builtins by the
// core package.
type PrimHook func(name string, args []sexp.Value) (sexp.Value, error)

// SetPrimHook installs the fallback primitive implementation.
func (m *Machine) SetPrimHook(h PrimHook) { m.primHook = h }

// callSQ executes a system routine; jumped reports that control
// transferred (pc already set).
func (m *Machine) callSQ(idx int, ins *Instr) (bool, error) {
	m.Stats.Cycles += sqCost[idx]
	if p := m.prof; p != nil {
		// The CALLSQ dispatch was already counted in step; the routine's
		// own cost lands on the same opcode bucket and function.
		p.noteExtra(OpCALLSQ, sqCost[idx])
	}
	A := m.regs[RegA]
	B := m.regs[RegB]
	setA := func(w Word) { m.regs[RegA] = w }

	lispErr := func(format string, args ...any) error {
		return &RuntimeError{PC: m.pc, Msg: fmt.Sprintf(format, args...)}
	}

	switch idx {
	case SQWrongArgs:
		return false, lispErr("wrong number of arguments")
	case SQWrongType:
		return false, lispErr("wrong type of argument: %s", A)

	case SQAdd, SQSub, SQMul, SQDiv, SQNumEq, SQLt, SQGt, SQLe, SQGe:
		if out, ok := m.fastNum(idx, A, B); ok {
			setA(out)
			break
		}
		x, err := m.numValue(A)
		if err != nil {
			return false, err
		}
		y, err := m.numValue(B)
		if err != nil {
			return false, err
		}
		out, err := m.genericNum(idx, x, y)
		if err != nil {
			return false, &RuntimeError{PC: m.pc, Msg: err.Error()}
		}
		setA(out)

	case SQEql:
		x, err := m.ToValue(A)
		if err != nil {
			return false, err
		}
		y, err := m.ToValue(B)
		if err != nil {
			return false, err
		}
		setA(boolWord(sexp.Eql(x, y)))

	case SQEqual:
		x, err := m.ToValue(A)
		if err != nil {
			return false, err
		}
		y, err := m.ToValue(B)
		if err != nil {
			return false, err
		}
		setA(boolWord(sexp.Equal(x, y)))

	case SQCons:
		setA(m.Cons(A, B))

	case SQCar, SQCdr:
		if A.Tag == TagNil {
			setA(NilWord)
			break
		}
		if A.Tag != TagCons {
			return false, lispErr("car/cdr of non-list %s", A)
		}
		off := uint64(0)
		if idx == SQCdr {
			off = 1
		}
		w, err := m.load(A.Bits + off)
		if err != nil {
			return false, err
		}
		setA(w)

	case SQRplaca, SQRplacd:
		if A.Tag != TagCons {
			return false, lispErr("rplaca/rplacd of non-cons %s", A)
		}
		off := uint64(0)
		if idx == SQRplacd {
			off = 1
		}
		if err := m.store(A.Bits+off, B); err != nil {
			return false, err
		}

	case SQList:
		n, err := m.value(ins.B)
		if err != nil {
			return false, err
		}
		// Popped words sit above SP and the growing chain lives only in a
		// host local; both are invisible to the collector, so shield them
		// in temp-root slots across each Cons allocation.
		out := NilWord
		depth := m.protect(NilWord)
		wSlot := m.protect(NilWord)
		for i := int64(0); i < n.Int(); i++ {
			w, err := m.pop()
			if err != nil {
				m.release(depth)
				return false, err
			}
			m.tempRoots[depth] = out
			m.tempRoots[wSlot] = w
			out = m.Cons(w, out)
		}
		m.release(depth)
		setA(out)

	case SQFlonumCons:
		setA(m.ConsFlonum(A.Float()))

	case SQFixnumCons:
		setA(FixnumWord(A.Int()))

	case SQCertify:
		// §6.3: before an unsafe operation, a potentially unsafe pointer
		// must be certified — shown safe, or copied into the heap.
		m.Stats.Certifies++
		if A.Tag == TagFlonum && IsStackAddr(A.Bits) {
			v, err := m.load(A.Bits)
			if err != nil {
				return false, err
			}
			m.Stats.CertifyCopies++
			setA(m.ConsFlonum(v.Float()))
		}

	case SQSpecFind:
		symOp, err := m.value(ins.B)
		if err != nil {
			return false, err
		}
		setA(RawInt(m.specFind(int(symOp.Int()))))

	case SQSpecRead:
		w, err := m.specRead(A.Int())
		if err != nil {
			return false, err
		}
		setA(w)

	case SQSpecWrite:
		if err := m.specWrite(A.Int(), B); err != nil {
			return false, err
		}
		setA(B)

	case SQSpecReadSym:
		symOp, err := m.value(ins.B)
		if err != nil {
			return false, err
		}
		w, err := m.specRead(m.specFind(int(symOp.Int())))
		if err != nil {
			return false, err
		}
		setA(w)

	case SQSpecWriteSym:
		symOp, err := m.value(ins.B)
		if err != nil {
			return false, err
		}
		if err := m.specWrite(m.specFind(int(symOp.Int())), A); err != nil {
			return false, err
		}

	case SQThrow:
		return m.throw(A, B)

	case SQRestify:
		k, err := m.value(ins.B)
		if err != nil {
			return false, err
		}
		if err := m.restify(int(k.Int())); err != nil {
			return false, err
		}

	case SQApplyList:
		// A = function, B = argument list. Push the spread arguments and
		// enter the function; return lands after this instruction.
		n := 0
		for w := B; w.Tag != TagNil; {
			if w.Tag != TagCons {
				return false, lispErr("apply: improper argument list")
			}
			car, err := m.load(w.Bits)
			if err != nil {
				return false, err
			}
			if err := m.push(car); err != nil {
				return false, err
			}
			n++
			if w, err = m.load(w.Bits + 1); err != nil {
				return false, err
			}
		}
		if err := m.enterFrame(n, m.pc+1, A, false); err != nil {
			return false, err
		}
		return true, nil

	case SQPrim:
		nameOp, err := m.value(ins.B)
		if err != nil {
			return false, err
		}
		argcOp, err := m.value(ins.C)
		if err != nil {
			return false, err
		}
		if m.primHook == nil {
			return false, lispErr("no primitive hook installed")
		}
		name := m.Syms[nameOp.Int()].Name
		argc := int(argcOp.Int())
		args := make([]sexp.Value, argc)
		for i := argc - 1; i >= 0; i-- {
			w, err := m.pop()
			if err != nil {
				return false, err
			}
			if args[i], err = m.ToValue(w); err != nil {
				return false, err
			}
		}
		out, err := m.primHook(name, args)
		if err != nil {
			return false, &RuntimeError{PC: m.pc, Msg: err.Error()}
		}
		setA(m.FromValue(out))

	case SQPrimFrame:
		// The body of a primitive stub function: gather this frame's
		// arguments and invoke the fallback primitive.
		nameOp, err := m.value(ins.B)
		if err != nil {
			return false, err
		}
		if m.primHook == nil {
			return false, lispErr("no primitive hook installed")
		}
		fp := m.regs[RegFP].Bits
		nw, err := m.load(fp - 4)
		if err != nil {
			return false, err
		}
		n := int(nw.Int())
		args := make([]sexp.Value, n)
		for i := 0; i < n; i++ {
			w, err := m.load(fp - 4 - uint64(n) + uint64(i))
			if err != nil {
				return false, err
			}
			if args[i], err = m.ToValue(w); err != nil {
				return false, err
			}
		}
		name := m.Syms[nameOp.Int()].Name
		out, err := m.primHook(name, args)
		if err != nil {
			return false, &RuntimeError{PC: m.pc, Msg: err.Error()}
		}
		m.regs[RegA] = m.FromValue(out)

	case SQPrint:
		v, err := m.ToValue(A)
		if err != nil {
			return false, err
		}
		fmt.Fprintf(m.Out, "\n%s ", sexp.Print(v))

	case SQError:
		v, _ := m.ToValue(A)
		return false, lispErr("error: %s", sexp.Print(v))

	default:
		return false, lispErr("bad SQ routine %d", idx)
	}
	return false, nil
}

func boolWord(b bool) Word {
	if b {
		return TWord
	}
	return NilWord
}

// fastNum handles the dominant numeric SQ cases — both operands fixnums,
// or both flonums — without boxing through host sexp values (the same
// boxing elimination the decoded dispatch layer performs for open-coded
// arithmetic; see DESIGN.md §10). Results are bit-identical to the
// generic path: fixnum overflow, inexact fixnum division, and any other
// case whose result would not be a fixnum/flonum reports ok=false and
// falls back to numValue/genericNum. Flonum comparisons replicate
// sexp.Compare's three-way float semantics (NaN compares "equal") rather
// than raw ==.
func (m *Machine) fastNum(idx int, a, b Word) (Word, bool) {
	if a.Tag == TagFixnum && b.Tag == TagFixnum {
		x, y := a.Int(), b.Int()
		switch idx {
		case SQAdd:
			s := x + y
			if (x > 0 && y > 0 && s < 0) || (x < 0 && y < 0 && s >= 0) {
				return Word{}, false // promotes to bignum
			}
			return FixnumWord(s), true
		case SQSub:
			d := x - y
			if (x >= 0 && y < 0 && d < 0) || (x < 0 && y > 0 && d >= 0) {
				return Word{}, false
			}
			return FixnumWord(d), true
		case SQMul:
			if x == 0 || y == 0 {
				return FixnumWord(0), true
			}
			p := x * y
			if p/y != x || (x == -1 && y == math.MinInt64) || (y == -1 && x == math.MinInt64) {
				return Word{}, false
			}
			return FixnumWord(p), true
		case SQDiv:
			if y == 0 || x%y != 0 {
				return Word{}, false // error or exact ratio
			}
			return FixnumWord(x / y), true
		case SQNumEq:
			return boolWord(x == y), true
		case SQLt:
			return boolWord(x < y), true
		case SQGt:
			return boolWord(x > y), true
		case SQLe:
			return boolWord(x <= y), true
		case SQGe:
			return boolWord(x >= y), true
		}
		return Word{}, false
	}
	// Float path: both flonums, or flonum/fixnum mixed — sexp's binop
	// contaminates to float when either operand is a Flonum, and
	// sexp.Compare uses three-way float comparison, so converting the
	// fixnum side mirrors the generic result exactly.
	var x, y float64
	switch {
	case a.Tag == TagFlonum:
		xw, err := m.load(a.Bits)
		if err != nil {
			return Word{}, false
		}
		x = xw.Float()
	case a.Tag == TagFixnum:
		x = float64(a.Int())
	default:
		return Word{}, false
	}
	switch {
	case b.Tag == TagFlonum:
		yw, err := m.load(b.Bits)
		if err != nil {
			return Word{}, false
		}
		y = yw.Float()
	case b.Tag == TagFixnum:
		y = float64(b.Int())
	default:
		return Word{}, false
	}
	{
		switch idx {
		case SQAdd:
			return m.ConsFlonum(x + y), true
		case SQSub:
			return m.ConsFlonum(x - y), true
		case SQMul:
			return m.ConsFlonum(x * y), true
		case SQDiv:
			// IEEE semantics, like sexp.Div on flonums: /0 gives Inf/NaN.
			return m.ConsFlonum(x / y), true
		case SQNumEq:
			return boolWord(!(x < y) && !(x > y)), true
		case SQLt:
			return boolWord(x < y), true
		case SQGt:
			return boolWord(x > y), true
		case SQLe:
			return boolWord(!(x > y)), true
		case SQGe:
			return boolWord(!(x < y)), true
		}
	}
	return Word{}, false
}

// numValue converts a pointer-world word to a host number for the
// generic arithmetic routines.
func (m *Machine) numValue(w Word) (sexp.Value, error) {
	switch w.Tag {
	case TagFixnum:
		return sexp.Fixnum(w.Int()), nil
	case TagFlonum:
		v, err := m.load(w.Bits)
		if err != nil {
			return nil, err
		}
		return sexp.Flonum(v.Float()), nil
	case TagBoxed:
		b := m.Boxes[w.Bits]
		if sexp.IsNumber(b) {
			return b, nil
		}
	}
	return nil, &RuntimeError{PC: m.pc, Msg: "not a number: " + w.String()}
}

func (m *Machine) genericNum(idx int, x, y sexp.Value) (Word, error) {
	switch idx {
	case SQAdd:
		v, err := sexp.Add(x, y)
		if err != nil {
			return Word{}, err
		}
		return m.FromValue(v), nil
	case SQSub:
		v, err := sexp.Sub(x, y)
		if err != nil {
			return Word{}, err
		}
		return m.FromValue(v), nil
	case SQMul:
		v, err := sexp.Mul(x, y)
		if err != nil {
			return Word{}, err
		}
		return m.FromValue(v), nil
	case SQDiv:
		v, err := sexp.Div(x, y)
		if err != nil {
			return Word{}, err
		}
		return m.FromValue(v), nil
	}
	c, err := sexp.Compare(x, y)
	if err != nil {
		return Word{}, err
	}
	switch idx {
	case SQNumEq:
		return boolWord(c == 0), nil
	case SQLt:
		return boolWord(c < 0), nil
	case SQGt:
		return boolWord(c > 0), nil
	case SQLe:
		return boolWord(c <= 0), nil
	case SQGe:
		return boolWord(c >= 0), nil
	}
	return Word{}, fmt.Errorf("bad numeric SQ %d", idx)
}

// specFind performs the deep-binding search: a linear scan of the
// binding stack, newest first (§4.4). The returned handle is a binding
// stack index, or -(sym+1) for the global value cell.
func (m *Machine) specFind(sym int) int64 {
	m.Stats.SpecialLookups++
	for i := len(m.bindStack) - 1; i >= 0; i-- {
		m.Stats.SpecialSearchSteps++
		m.Stats.Cycles += 2 // two cycles per probe
		if m.bindStack[i].sym == sym {
			return int64(i)
		}
	}
	return -int64(sym) - 1
}

func (m *Machine) specRead(handle int64) (Word, error) {
	if handle >= 0 {
		if int(handle) >= len(m.bindStack) {
			return Word{}, &RuntimeError{PC: m.pc, Msg: "stale special handle"}
		}
		return m.bindStack[handle].val, nil
	}
	sym := int(-handle - 1)
	if !m.Syms[sym].HasValue {
		return Word{}, &RuntimeError{PC: m.pc, Msg: "unbound variable " + m.Syms[sym].Name}
	}
	return m.Syms[sym].Value, nil
}

func (m *Machine) specWrite(handle int64, v Word) error {
	if handle >= 0 {
		if int(handle) >= len(m.bindStack) {
			return &RuntimeError{PC: m.pc, Msg: "stale special handle"}
		}
		m.bindStack[handle].val = v
		return nil
	}
	sym := int(-handle - 1)
	m.Syms[sym].Value = v
	m.Syms[sym].HasValue = true
	return nil
}

// throw unwinds to the innermost catch frame with an eql tag.
func (m *Machine) throw(tag, val Word) (bool, error) {
	for i := len(m.catchStack) - 1; i >= 0; i-- {
		f := m.catchStack[i]
		if m.eqlWords(f.tag, tag) {
			m.catchStack = m.catchStack[:i]
			m.regs[RegSP] = f.sp
			m.regs[RegFP] = f.fp
			m.regs[RegEP] = f.ep
			m.bindStack = m.bindStack[:f.bindDepth]
			m.regs[RegA] = val
			m.pc = f.handler
			if p := m.prof; p != nil {
				p.truncate(m, f.fnDepth)
			}
			if th := m.tierHeads; th != nil && m.pc >= 0 && m.pc < len(th) && !th[m.pc] {
				m.tier.noteLanding(m, m.pc)
			}
			if t := m.tier; t != nil {
				t.truncate(m, f.tierDepth)
			}
			return true, nil
		}
	}
	tv, _ := m.ToValue(tag)
	return false, &RuntimeError{PC: m.pc, Msg: "uncaught throw to " + sexp.Print(tv)}
}

func (m *Machine) eqlWords(a, b Word) bool {
	if a == b {
		return true
	}
	if a.Tag == TagFlonum && b.Tag == TagFlonum {
		x, err1 := m.load(a.Bits)
		y, err2 := m.load(b.Bits)
		return err1 == nil && err2 == nil && x.Float() == y.Float()
	}
	if a.Tag == TagBoxed && b.Tag == TagBoxed {
		return sexp.Eql(m.Boxes[a.Bits], m.Boxes[b.Bits])
	}
	return false
}

// restify rebuilds the just-entered frame of a &rest function: arguments
// beyond the first k are collected into a list, giving the normalized
// layout [arg0..argk-1, restlist] with nargs = k+1. Called at the top of
// the prologue, when SP == FP.
func (m *Machine) restify(k int) error {
	fp := m.regs[RegFP].Bits
	nw, err := m.load(fp - 4)
	if err != nil {
		return err
	}
	n := int(nw.Int())
	if n < k {
		return &RuntimeError{PC: m.pc, Msg: "wrong number of arguments"}
	}
	base := fp - 4 - uint64(n)
	// Collect args k..n-1 into a list (backwards for order). The args
	// themselves live below SP and are marked; the growing chain exists
	// only in this local, so keep it in a temp-root slot across the
	// allocations.
	rest := NilWord
	depth := m.protect(NilWord)
	for i := n - 1; i >= k; i-- {
		w, err := m.load(base + uint64(i))
		if err != nil {
			m.release(depth)
			return err
		}
		m.tempRoots[depth] = rest
		rest = m.Cons(w, rest)
	}
	m.release(depth)
	saved := make([]Word, 4)
	for i := 0; i < 4; i++ {
		w, err := m.load(fp - 4 + uint64(i))
		if err != nil {
			return err
		}
		saved[i] = w
	}
	// Rebuild: [arg0..argk-1, rest, nargs=k+1, ret, fp, ep].
	if err := m.store(base+uint64(k), rest); err != nil {
		return err
	}
	saved[0] = RawInt(int64(k + 1))
	for i := 0; i < 4; i++ {
		if err := m.store(base+uint64(k)+1+uint64(i), saved[i]); err != nil {
			return err
		}
	}
	newFP := base + uint64(k) + 5
	m.regs[RegFP] = RawInt(int64(newFP))
	m.regs[RegSP] = m.regs[RegFP]
	m.regs[RegR3] = RawInt(int64(k + 1))
	return nil
}

// BindingDepth reports the current depth of the deep-binding stack.
func (m *Machine) BindingDepth() int { return len(m.bindStack) }
