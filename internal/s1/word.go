// Package s1 is the target substrate of the reproduction: a simulator for
// an S-1-like architecture, its assembler, and its Lisp runtime.
//
// The real S-1 Mark IIA has 36-bit words, 31-bit+5-tag virtual addresses,
// 32 general registers of which RTA (R4) and RTB (R6) serve as the
// "2½-address" bottleneck registers, rich indexed addressing, hardware
// SIN/SQRT/etc., and sixteen rounding modes. The simulator keeps every
// feature the compiler's decisions depend on — the tag architecture, the
// RT-register operand rule (enforced by the assembler), indexed
// addressing, hardware transcendentals, per-opcode cycle costs, and a
// stack/heap split that makes "does this pointer point into the stack?"
// a cheap test (the pdl-number certification of §6.3) — while widening
// the word to 64 bits (see DESIGN.md §2).
package s1

import (
	"fmt"
	"math"
)

// Tag is a 5-bit data-type tag. Nine of the 32 possible tags are reserved
// to the architecture for MULTICS-like ring protection (§3); the rest are
// user data-type tags, and the Lisp system uses them as below.
type Tag uint8

// Tag assignments.
const (
	TagRaw     Tag = 0  // raw machine word (untyped bits; int or float)
	TagNil     Tag = 1  // the empty list / false
	TagT       Tag = 2  // truth
	TagFixnum  Tag = 3  // immediate integer in the pointer world
	TagCons    Tag = 4  // address of a 2-word cell [car, cdr]
	TagFlonum  Tag = 5  // address of a 1-word raw float object
	TagSymbol  Tag = 6  // symbol-table index
	TagFunc    Tag = 7  // function-descriptor index
	TagClosure Tag = 8  // address of [fnIndex, envPtr]
	TagEnv     Tag = 9  // address of [parent, slot0, ...]
	TagVector  Tag = 10 // address of [len, item0, ...]
	TagArray   Tag = 11 // address of [rank, dims..., items...] (pointers)
	TagFArray  Tag = 12 // address of [rank, dims..., raw floats...]
	TagBoxed   Tag = 13 // index into the boxed-object table (bignum, ...)
	TagGC      Tag = 14 // the DTP-GC scratch marker of Table 4
	// Tags 23..31 are reserved for the ring-protection mechanism.
	TagRingBase Tag = 23
)

var tagNames = map[Tag]string{
	TagRaw: "RAW", TagNil: "NIL", TagT: "T", TagFixnum: "FIXNUM",
	TagCons: "CONS", TagFlonum: "FLONUM", TagSymbol: "SYMBOL",
	TagFunc: "FUNCTION", TagClosure: "CLOSURE", TagEnv: "ENV",
	TagVector: "VECTOR", TagArray: "ARRAY", TagFArray: "FLOAT-ARRAY",
	TagBoxed: "BOXED", TagGC: "GC",
}

func (t Tag) String() string {
	if s, ok := tagNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TAG%d", uint8(t))
}

// Word is one machine word: a 5-bit tag plus payload bits. A raw word's
// bits are interpreted by the instruction that touches them (two's-
// complement integer or IEEE float); tagged words carry addresses or
// immediates.
type Word struct {
	Tag  Tag
	Bits uint64
}

// Distinguished constant words.
var (
	NilWord = Word{Tag: TagNil}
	TWord   = Word{Tag: TagT}
	ZeroRaw = Word{Tag: TagRaw}
)

// RawInt builds a raw word holding a two's-complement integer.
func RawInt(v int64) Word { return Word{Tag: TagRaw, Bits: uint64(v)} }

// RawFloat builds a raw word holding float bits.
func RawFloat(f float64) Word { return Word{Tag: TagRaw, Bits: math.Float64bits(f)} }

// FixnumWord builds an immediate pointer-world integer.
func FixnumWord(v int64) Word { return Word{Tag: TagFixnum, Bits: uint64(v)} }

// Ptr builds a tagged pointer to addr.
func Ptr(tag Tag, addr uint64) Word { return Word{Tag: tag, Bits: addr} }

// Int reads the word's bits as a signed integer.
func (w Word) Int() int64 { return int64(w.Bits) }

// Float reads the word's bits as a float.
func (w Word) Float() float64 { return math.Float64frombits(w.Bits) }

// Addr reads the word's bits as an address.
func (w Word) Addr() uint64 { return w.Bits }

// Truthy implements Lisp truth on pointer-world words.
func (w Word) Truthy() bool { return w.Tag != TagNil }

// String renders the word for disassembly and diagnostics.
func (w Word) String() string {
	switch w.Tag {
	case TagRaw:
		return fmt.Sprintf("#x%x", w.Bits)
	case TagNil:
		return "NIL"
	case TagT:
		return "T"
	case TagFixnum:
		return fmt.Sprintf("%d", w.Int())
	default:
		return fmt.Sprintf("%s@%d", w.Tag, w.Bits)
	}
}

// Register assignments. The S-1's RTA and RTB are general registers 4 and
// 6; SP, FP and TP follow the paper's frame conventions; A is the value
// register through which results return; EP is the current lexical
// environment for closure bodies.
const (
	RegRTA = 4
	RegRTB = 6
	RegA   = 8  // value register
	RegB   = 9  // second system-routine argument
	RegR2  = 2  // prologue scratch (argument-count dispatch)
	RegR3  = 3  // argument count on entry
	RegEP  = 28 // environment pointer
	RegSP  = 29 // stack pointer (grows upward)
	RegFP  = 30 // frame pointer
	RegTP  = 31 // temporaries (scratch/pdl-number) pointer

	NumRegs = 32
)

// RegName renders a register for listings.
func RegName(r uint8) string {
	switch r {
	case RegRTA:
		return "RTA"
	case RegRTB:
		return "RTB"
	case RegA:
		return "A"
	case RegB:
		return "B"
	case RegEP:
		return "EP"
	case RegSP:
		return "SP"
	case RegFP:
		return "FP"
	case RegTP:
		return "TP"
	}
	return fmt.Sprintf("R%d", r)
}

// AllocatableRegs lists the general registers available to TNBIND packing
// (caller-saved scratch world; SP/FP/TP/EP and the prologue registers are
// excluded, RTA/RTB are handled specially).
var AllocatableRegs = []uint8{10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27}

// Memory geometry: the stack and heap live in disjoint address ranges so
// that pointer certification (§6.3: "determining at run time that the
// pointer is safe (does not point into the stack)") is a range test.
const (
	StackBase  = 0x0010_0000
	StackLimit = 0x0020_0000
	HeapBase   = 0x0040_0000
)

// IsStackAddr reports whether addr lies in the stack region.
func IsStackAddr(addr uint64) bool { return addr >= StackBase && addr < StackLimit }
