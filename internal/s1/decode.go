package s1

// Pre-decoded execution (DESIGN.md §10). The assembler's []Instr stays
// the architectural program — listings, the profiler, diagnostics and the
// GC's immediate scan all read it — but the machine never interprets it
// directly. Each instruction is decoded once, when its function is
// installed, into a closure with the operand kinds resolved (register
// number, immediate word, or effective-address recipe held as captured
// fields) and its cycle cost baked in, so the per-step work of the old
// mega-switch — opcode dispatch, a cycleCost map lookup, and a Mode
// switch per operand access — disappears from the hot loop.
//
// The decoded stream decBase is parallel to Code, indexed by original PC:
// back-mapping from a decoded entry to its architectural PC is the
// identity. decFused overlays superinstruction groups on top (fuse.go).
//
// Invariant: a decoded closure is entered with m.pc equal to its own
// index, and on fall-through it leaves m.pc at index+1. Run maintains
// this by dispatching on m.pc; fused groups maintain it because every
// constituent but the last falls through. Errors, GC safepoints and
// SQ routines therefore see exactly the m.pc the old interpreter showed
// them.

// dexec executes one decoded instruction or superinstruction group.
type dexec func(m *Machine) error

// dinstr is one decoded-stream entry: the executor plus the number of
// original instructions it retires (1 for base entries, 2..maxFuse for
// fused heads). Run uses n to keep -max-steps accounting exact.
type dinstr struct {
	run dexec
	n   int32
}

// tick retires one architectural instruction on the meters; the decoded
// closures call it exactly once per original instruction, which keeps
// Stats and profiles identical between fused and unfused dispatch.
func (m *Machine) tick(op Op, cost int64) {
	m.Stats.Instrs++
	m.Stats.Cycles += cost
	if p := m.prof; p != nil {
		p.note(op, cost)
	}
}

// ensureDecoded brings the decoded stream up to date with Code. Cheap
// when nothing changed (one length compare).
func (m *Machine) ensureDecoded() {
	if len(m.decBase) < len(m.Code) {
		m.decodeRange(len(m.decBase), len(m.Code))
	}
}

// decodeRange decodes Code[lo:hi) and extends the fused overlay.
func (m *Machine) decodeRange(lo, hi int) {
	for pc := lo; pc < hi; pc++ {
		m.decBase = append(m.decBase, decodeOne(pc, &m.Code[pc]))
	}
	if m.noFuse {
		// Unfused dispatch runs straight off the base stream.
		m.decFused = m.decBase
		return
	}
	m.decFused = append(m.decFused, m.decBase[lo:hi]...)
	m.fuseRange(lo, hi)
}

// decodeOne builds the executor for one instruction. The builders must
// capture operand fields by value, never the *Instr itself: Code's
// backing array moves when later functions are appended.
func decodeOne(pc int, ins *Instr) dinstr {
	if int(ins.Op) < NumOps {
		if b := decodeTab[ins.Op]; b != nil {
			return dinstr{run: b(pc, ins), n: 1}
		}
	}
	op := ins.Op
	return dinstr{n: 1, run: func(m *Machine) error {
		m.tick(op, 0)
		return &RuntimeError{PC: m.pc, Msg: "bad opcode " + op.String()}
	}}
}

// decodeTab maps opcodes to closure builders (the "function table indexed
// by decoded op"); nil entries fall back to the bad-opcode executor.
var decodeTab [NumOps]func(pc int, ins *Instr) dexec

func init() {
	one := func(ops []Op, b func(pc int, ins *Instr) dexec) {
		for _, op := range ops {
			decodeTab[op] = b
		}
	}
	decodeTab[OpNOP] = decNOP
	decodeTab[OpHALT] = decHALT
	decodeTab[OpMOV] = decMOV
	decodeTab[OpMOVP] = decMOVP
	decodeTab[OpTAG] = decTAG
	one([]Op{OpADD, OpSUB, OpMULT, OpDIV, OpASH}, decIntArith)
	one([]Op{OpFADD, OpFSUB, OpFMULT, OpFDIV, OpFMAX, OpFMIN}, decFloatArith)
	one([]Op{OpFSIN, OpFCOS, OpFSQRT, OpFATAN, OpFEXP, OpFLOG, OpFABS,
		OpFNEG, OpFLT, OpFIX}, decUnary)
	decodeTab[OpJMP] = decJMP
	one([]Op{OpJEQ, OpJNE, OpJLT, OpJLE, OpJGT, OpJGE}, decIntJump)
	one([]Op{OpFJEQ, OpFJNE, OpFJLT, OpFJLE, OpFJGT, OpFJGE}, decFloatJump)
	one([]Op{OpJNIL, OpJNNIL}, decNilJump)
	one([]Op{OpJTAG, OpJNTAG}, decTagJump)
	one([]Op{OpJEQW, OpJNEW}, decWordJump)
	decodeTab[OpPUSH] = decPUSH
	decodeTab[OpPOP] = decPOP
	decodeTab[OpALLOC] = decALLOC
	one([]Op{OpCALL, OpCALLF}, decCall)
	one([]Op{OpTCALL, OpTCALLF}, decTailCall)
	decodeTab[OpRET] = decRET
	decodeTab[OpCLOSE] = decCLOSE
	decodeTab[OpENV] = decENV
	decodeTab[OpSPECBIND] = decSPECBIND
	decodeTab[OpSPECUNBIND] = decSPECUNBIND
	decodeTab[OpCATCH] = decCATCH
	decodeTab[OpENDCATCH] = decENDCATCH
	decodeTab[OpCALLSQ] = decCALLSQ
}

// loadFn reads an operand whose addressing mode was resolved at decode
// time; storeFn writes one. Errors report m.pc, which the entry invariant
// keeps equal to the owning instruction's index.
type (
	loadFn  func(m *Machine) (Word, error)
	storeFn func(m *Machine, w Word) error
	addrFn  func(m *Machine) (uint64, error)
)

func mkLoad(o Operand) loadFn {
	switch o.Mode {
	case MReg:
		r := o.Base
		return func(m *Machine) (Word, error) { return m.regs[r], nil }
	case MImm:
		w := o.Imm
		return func(m *Machine) (Word, error) { return w, nil }
	case MMem:
		r, off := o.Base, o.Off
		return func(m *Machine) (Word, error) {
			return m.load(uint64(int64(m.regs[r].Bits) + off))
		}
	case MAbs:
		addr := uint64(o.Off)
		return func(m *Machine) (Word, error) { return m.load(addr) }
	case MIdx:
		base, index, shift, off := o.Base, o.Index, o.Shift, o.Off
		return func(m *Machine) (Word, error) {
			a := off
			if base != NoReg {
				a += int64(m.regs[base].Bits)
			}
			if index != NoReg {
				a += int64(m.regs[index].Bits) << shift
			}
			return m.load(uint64(a))
		}
	}
	return func(m *Machine) (Word, error) {
		return Word{}, &RuntimeError{PC: m.pc, Msg: "unreadable operand"}
	}
}

func mkStore(o Operand) storeFn {
	switch o.Mode {
	case MReg:
		r := o.Base
		return func(m *Machine, w Word) error { m.regs[r] = w; return nil }
	case MMem:
		r, off := o.Base, o.Off
		return func(m *Machine, w Word) error {
			return m.store(uint64(int64(m.regs[r].Bits)+off), w)
		}
	case MAbs:
		addr := uint64(o.Off)
		return func(m *Machine, w Word) error { return m.store(addr, w) }
	case MIdx:
		base, index, shift, off := o.Base, o.Index, o.Shift, o.Off
		return func(m *Machine, w Word) error {
			a := off
			if base != NoReg {
				a += int64(m.regs[base].Bits)
			}
			if index != NoReg {
				a += int64(m.regs[index].Bits) << shift
			}
			return m.store(uint64(a), w)
		}
	}
	return func(m *Machine, w Word) error {
		return &RuntimeError{PC: m.pc, Msg: "unwritable operand"}
	}
}

func mkAddr(o Operand) addrFn {
	switch o.Mode {
	case MMem:
		r, off := o.Base, o.Off
		return func(m *Machine) (uint64, error) {
			return uint64(int64(m.regs[r].Bits) + off), nil
		}
	case MAbs:
		addr := uint64(o.Off)
		return func(m *Machine) (uint64, error) { return addr, nil }
	case MIdx:
		base, index, shift, off := o.Base, o.Index, o.Shift, o.Off
		return func(m *Machine) (uint64, error) {
			a := off
			if base != NoReg {
				a += int64(m.regs[base].Bits)
			}
			if index != NoReg {
				a += int64(m.regs[index].Bits) << shift
			}
			return uint64(a), nil
		}
	}
	return func(m *Machine) (uint64, error) {
		return 0, &RuntimeError{PC: m.pc, Msg: "operand has no effective address"}
	}
}

func decNOP(pc int, ins *Instr) dexec {
	cost, next := cycleCost[OpNOP], pc+1
	return func(m *Machine) error {
		m.tick(OpNOP, cost)
		m.pc = next
		return nil
	}
}

func decHALT(pc int, ins *Instr) dexec {
	cost := cycleCost[OpHALT]
	return func(m *Machine) error {
		m.tick(OpHALT, cost)
		m.halted = true
		return nil
	}
}

func decMOV(pc int, ins *Instr) dexec {
	cost, next := cycleCost[OpMOV], pc+1
	if ins.A.Mode == MReg {
		dst := ins.A.Base
		switch ins.B.Mode {
		case MReg:
			src := ins.B.Base
			if src == dst {
				// MOV-to-self: no data movement, but the meters still
				// retire it as an architectural MOV.
				return func(m *Machine) error {
					m.tick(OpMOV, cost)
					m.Stats.Movs++
					m.pc = next
					return nil
				}
			}
			return func(m *Machine) error {
				m.tick(OpMOV, cost)
				m.regs[dst] = m.regs[src]
				m.Stats.Movs++
				m.pc = next
				return nil
			}
		case MImm:
			w := ins.B.Imm
			return func(m *Machine) error {
				m.tick(OpMOV, cost)
				m.regs[dst] = w
				m.Stats.Movs++
				m.pc = next
				return nil
			}
		case MMem:
			base, off := ins.B.Base, ins.B.Off
			return func(m *Machine) error {
				m.tick(OpMOV, cost)
				v, err := m.load(uint64(int64(m.regs[base].Bits) + off))
				if err != nil {
					return err
				}
				m.regs[dst] = v
				m.Stats.Movs++
				m.pc = next
				return nil
			}
		}
		ld := mkLoad(ins.B)
		return func(m *Machine) error {
			m.tick(OpMOV, cost)
			v, err := ld(m)
			if err != nil {
				return err
			}
			m.regs[dst] = v
			m.Stats.Movs++
			m.pc = next
			return nil
		}
	}
	ld, st := mkLoad(ins.B), mkStore(ins.A)
	return func(m *Machine) error {
		m.tick(OpMOV, cost)
		v, err := ld(m)
		if err != nil {
			return err
		}
		if err := st(m, v); err != nil {
			return err
		}
		m.Stats.Movs++
		m.pc = next
		return nil
	}
}

func decMOVP(pc int, ins *Instr) dexec {
	cost, next := cycleCost[OpMOVP], pc+1
	ad, st := mkAddr(ins.B), mkStore(ins.A)
	tag := Tag(ins.TagArg)
	return func(m *Machine) error {
		m.tick(OpMOVP, cost)
		a, err := ad(m)
		if err != nil {
			return err
		}
		if err := st(m, Ptr(tag, a)); err != nil {
			return err
		}
		m.pc = next
		return nil
	}
}

func decTAG(pc int, ins *Instr) dexec {
	cost, next := cycleCost[OpTAG], pc+1
	ld, st := mkLoad(ins.B), mkStore(ins.A)
	return func(m *Machine) error {
		m.tick(OpTAG, cost)
		v, err := ld(m)
		if err != nil {
			return err
		}
		if err := st(m, RawInt(int64(v.Tag))); err != nil {
			return err
		}
		m.pc = next
		return nil
	}
}

func decIntArith(pc int, ins *Instr) dexec {
	op := ins.Op
	cost, next := cycleCost[op], pc+1
	// dst := dst op B, or dst := B op C (2½-address forms).
	var lx, ly loadFn
	if ins.C.Mode == MNone {
		lx, ly = mkLoad(ins.A), mkLoad(ins.B)
	} else {
		lx, ly = mkLoad(ins.B), mkLoad(ins.C)
	}
	st := mkStore(ins.A)
	// Loop-counter shape: reg := reg ± immediate.
	if ins.C.Mode == MNone && ins.A.Mode == MReg && ins.B.Mode == MImm &&
		(op == OpADD || op == OpSUB) {
		r, k := ins.A.Base, ins.B.Imm.Int()
		if op == OpSUB {
			k = -k
		}
		return func(m *Machine) error {
			m.tick(op, cost)
			m.regs[r] = RawInt(m.regs[r].Int() + k)
			m.pc = next
			return nil
		}
	}
	switch op {
	case OpDIV:
		return func(m *Machine) error {
			m.tick(op, cost)
			x, err := lx(m)
			if err != nil {
				return err
			}
			y, err := ly(m)
			if err != nil {
				return err
			}
			if y.Int() == 0 {
				return &RuntimeError{PC: m.pc, Msg: "integer division by zero"}
			}
			if err := st(m, RawInt(x.Int()/y.Int())); err != nil {
				return err
			}
			m.pc = next
			return nil
		}
	case OpASH:
		return func(m *Machine) error {
			m.tick(op, cost)
			x, err := lx(m)
			if err != nil {
				return err
			}
			y, err := ly(m)
			if err != nil {
				return err
			}
			var r int64
			if s := y.Int(); s >= 0 {
				r = x.Int() << uint(s&63)
			} else {
				r = x.Int() >> uint((-s)&63)
			}
			if err := st(m, RawInt(r)); err != nil {
				return err
			}
			m.pc = next
			return nil
		}
	}
	var f func(x, y int64) int64
	switch op {
	case OpADD:
		f = func(x, y int64) int64 { return x + y }
	case OpSUB:
		f = func(x, y int64) int64 { return x - y }
	case OpMULT:
		f = func(x, y int64) int64 { return x * y }
	}
	return func(m *Machine) error {
		m.tick(op, cost)
		x, err := lx(m)
		if err != nil {
			return err
		}
		y, err := ly(m)
		if err != nil {
			return err
		}
		if err := st(m, RawInt(f(x.Int(), y.Int()))); err != nil {
			return err
		}
		m.pc = next
		return nil
	}
}

func decFloatArith(pc int, ins *Instr) dexec {
	op := ins.Op
	cost, next := cycleCost[op], pc+1
	var lx, ly loadFn
	if ins.C.Mode == MNone {
		lx, ly = mkLoad(ins.A), mkLoad(ins.B)
	} else {
		lx, ly = mkLoad(ins.B), mkLoad(ins.C)
	}
	st := mkStore(ins.A)
	var f func(x, y float64) float64
	switch op {
	case OpFADD:
		f = func(x, y float64) float64 { return x + y }
	case OpFSUB:
		f = func(x, y float64) float64 { return x - y }
	case OpFMULT:
		f = func(x, y float64) float64 { return x * y }
	case OpFDIV:
		f = func(x, y float64) float64 { return x / y }
	case OpFMAX:
		f = fmax
	case OpFMIN:
		f = fmin
	}
	return func(m *Machine) error {
		m.tick(op, cost)
		x, err := lx(m)
		if err != nil {
			return err
		}
		y, err := ly(m)
		if err != nil {
			return err
		}
		if err := st(m, RawFloat(f(x.Float(), y.Float()))); err != nil {
			return err
		}
		m.pc = next
		return nil
	}
}

func decUnary(pc int, ins *Instr) dexec {
	op := ins.Op
	cost, next := cycleCost[op], pc+1
	ld, st := mkLoad(ins.B), mkStore(ins.A)
	var f func(v Word) Word
	switch op {
	case OpFSIN:
		f = func(v Word) Word { return RawFloat(sinCycles(v.Float())) }
	case OpFCOS:
		f = func(v Word) Word { return RawFloat(cosCycles(v.Float())) }
	case OpFSQRT:
		f = func(v Word) Word { return RawFloat(sqrt(v.Float())) }
	case OpFATAN:
		f = func(v Word) Word { return RawFloat(atan(v.Float())) }
	case OpFEXP:
		f = func(v Word) Word { return RawFloat(exp(v.Float())) }
	case OpFLOG:
		f = func(v Word) Word { return RawFloat(logf(v.Float())) }
	case OpFABS:
		f = func(v Word) Word { return RawFloat(fabs(v.Float())) }
	case OpFNEG:
		f = func(v Word) Word { return RawFloat(-v.Float()) }
	case OpFLT:
		f = func(v Word) Word { return RawFloat(float64(v.Int())) }
	case OpFIX:
		f = func(v Word) Word { return RawInt(int64(v.Float())) }
	}
	return func(m *Machine) error {
		m.tick(op, cost)
		v, err := ld(m)
		if err != nil {
			return err
		}
		if err := st(m, f(v)); err != nil {
			return err
		}
		m.pc = next
		return nil
	}
}

func decJMP(pc int, ins *Instr) dexec {
	cost, target := cycleCost[OpJMP], ins.target
	return func(m *Machine) error {
		m.tick(OpJMP, cost)
		m.pc = target
		return nil
	}
}

func intCondFn(op Op) func(x, y int64) bool {
	switch op {
	case OpJEQ:
		return func(x, y int64) bool { return x == y }
	case OpJNE:
		return func(x, y int64) bool { return x != y }
	case OpJLT:
		return func(x, y int64) bool { return x < y }
	case OpJLE:
		return func(x, y int64) bool { return x <= y }
	case OpJGT:
		return func(x, y int64) bool { return x > y }
	}
	return func(x, y int64) bool { return x >= y }
}

func floatCondFn(op Op) func(x, y float64) bool {
	switch op {
	case OpFJEQ:
		return func(x, y float64) bool { return x == y }
	case OpFJNE:
		return func(x, y float64) bool { return x != y }
	case OpFJLT:
		return func(x, y float64) bool { return x < y }
	case OpFJLE:
		return func(x, y float64) bool { return x <= y }
	case OpFJGT:
		return func(x, y float64) bool { return x > y }
	}
	return func(x, y float64) bool { return x >= y }
}

func decIntJump(pc int, ins *Instr) dexec {
	op := ins.Op
	cost, next, target := cycleCost[op], pc+1, ins.target
	f := intCondFn(op)
	// Compare-register-to-immediate dominates loop exits and arity checks.
	if ins.A.Mode == MReg && ins.B.Mode == MImm {
		r, k := ins.A.Base, ins.B.Imm.Int()
		return func(m *Machine) error {
			m.tick(op, cost)
			if f(m.regs[r].Int(), k) {
				m.pc = target
			} else {
				m.pc = next
			}
			return nil
		}
	}
	lx, ly := mkLoad(ins.A), mkLoad(ins.B)
	return func(m *Machine) error {
		m.tick(op, cost)
		x, err := lx(m)
		if err != nil {
			return err
		}
		y, err := ly(m)
		if err != nil {
			return err
		}
		if f(x.Int(), y.Int()) {
			m.pc = target
		} else {
			m.pc = next
		}
		return nil
	}
}

func decFloatJump(pc int, ins *Instr) dexec {
	op := ins.Op
	cost, next, target := cycleCost[op], pc+1, ins.target
	f := floatCondFn(op)
	lx, ly := mkLoad(ins.A), mkLoad(ins.B)
	return func(m *Machine) error {
		m.tick(op, cost)
		x, err := lx(m)
		if err != nil {
			return err
		}
		y, err := ly(m)
		if err != nil {
			return err
		}
		if f(x.Float(), y.Float()) {
			m.pc = target
		} else {
			m.pc = next
		}
		return nil
	}
}

func decNilJump(pc int, ins *Instr) dexec {
	op := ins.Op
	cost, next, target := cycleCost[op], pc+1, ins.target
	want := op == OpJNIL
	if ins.A.Mode == MReg {
		r := ins.A.Base
		return func(m *Machine) error {
			m.tick(op, cost)
			if (m.regs[r].Tag == TagNil) == want {
				m.pc = target
			} else {
				m.pc = next
			}
			return nil
		}
	}
	ld := mkLoad(ins.A)
	return func(m *Machine) error {
		m.tick(op, cost)
		v, err := ld(m)
		if err != nil {
			return err
		}
		if (v.Tag == TagNil) == want {
			m.pc = target
		} else {
			m.pc = next
		}
		return nil
	}
}

func decTagJump(pc int, ins *Instr) dexec {
	op := ins.Op
	cost, next, target := cycleCost[op], pc+1, ins.target
	want := op == OpJTAG
	tag := Tag(ins.TagArg)
	ld := mkLoad(ins.A)
	return func(m *Machine) error {
		m.tick(op, cost)
		v, err := ld(m)
		if err != nil {
			return err
		}
		if (v.Tag == tag) == want {
			m.pc = target
		} else {
			m.pc = next
		}
		return nil
	}
}

func decWordJump(pc int, ins *Instr) dexec {
	op := ins.Op
	cost, next, target := cycleCost[op], pc+1, ins.target
	want := op == OpJEQW
	lx, ly := mkLoad(ins.A), mkLoad(ins.B)
	return func(m *Machine) error {
		m.tick(op, cost)
		x, err := lx(m)
		if err != nil {
			return err
		}
		y, err := ly(m)
		if err != nil {
			return err
		}
		if (x == y) == want {
			m.pc = target
		} else {
			m.pc = next
		}
		return nil
	}
}

func decPUSH(pc int, ins *Instr) dexec {
	cost, next := cycleCost[OpPUSH], pc+1
	switch ins.A.Mode {
	case MReg:
		r := ins.A.Base
		return func(m *Machine) error {
			m.tick(OpPUSH, cost)
			if err := m.push(m.regs[r]); err != nil {
				return err
			}
			m.pc = next
			return nil
		}
	case MImm:
		w := ins.A.Imm
		return func(m *Machine) error {
			m.tick(OpPUSH, cost)
			if err := m.push(w); err != nil {
				return err
			}
			m.pc = next
			return nil
		}
	}
	ld := mkLoad(ins.A)
	return func(m *Machine) error {
		m.tick(OpPUSH, cost)
		v, err := ld(m)
		if err != nil {
			return err
		}
		if err := m.push(v); err != nil {
			return err
		}
		m.pc = next
		return nil
	}
}

func decPOP(pc int, ins *Instr) dexec {
	cost, next := cycleCost[OpPOP], pc+1
	if ins.A.Mode == MNone {
		return func(m *Machine) error {
			m.tick(OpPOP, cost)
			if _, err := m.pop(); err != nil {
				return err
			}
			m.pc = next
			return nil
		}
	}
	st := mkStore(ins.A)
	return func(m *Machine) error {
		m.tick(OpPOP, cost)
		v, err := m.pop()
		if err != nil {
			return err
		}
		if err := st(m, v); err != nil {
			return err
		}
		m.pc = next
		return nil
	}
}

func decALLOC(pc int, ins *Instr) dexec {
	cost, next := cycleCost[OpALLOC], pc+1
	ld, st := mkLoad(ins.B), mkStore(ins.A)
	return func(m *Machine) error {
		m.tick(OpALLOC, cost)
		n, err := ld(m)
		if err != nil {
			return err
		}
		base := m.Alloc(int(n.Int()))
		if err := st(m, RawInt(int64(base))); err != nil {
			return err
		}
		m.pc = next
		return nil
	}
}

func decCall(pc int, ins *Instr) dexec {
	op := ins.Op
	cost, next := cycleCost[op], pc+1
	nargs, fast := int(ins.TagArg), op == OpCALLF
	ld := mkLoad(ins.A)
	return func(m *Machine) error {
		m.tick(op, cost)
		fn, err := ld(m)
		if err != nil {
			return err
		}
		return m.enterFrame(nargs, next, fn, fast)
	}
}

func decTailCall(pc int, ins *Instr) dexec {
	op := ins.Op
	cost := cycleCost[op]
	k := int(ins.TagArg)
	ld := mkLoad(ins.A)
	return func(m *Machine) error {
		m.tick(op, cost)
		fn, err := ld(m)
		if err != nil {
			return err
		}
		m.Stats.TailCalls++
		return m.tailCall(k, fn)
	}
}

func decRET(pc int, ins *Instr) dexec {
	cost := cycleCost[OpRET]
	return func(m *Machine) error {
		m.tick(OpRET, cost)
		return m.ret()
	}
}

func decCLOSE(pc int, ins *Instr) dexec {
	cost, next := cycleCost[OpCLOSE], pc+1
	fnIdx := ins.TagArg
	ld, st := mkLoad(ins.B), mkStore(ins.A)
	return func(m *Machine) error {
		m.tick(OpCLOSE, cost)
		env, err := ld(m)
		if err != nil {
			return err
		}
		// Direct initialization of a block just allocated, with no
		// intervening allocation: the block is young, so the stores need
		// no write barrier (cf. heapWrite in gc.go).
		a := m.Alloc(2)
		m.heap[a-HeapBase] = RawInt(fnIdx)
		m.heap[a-HeapBase+1] = env
		if err := st(m, Ptr(TagClosure, a)); err != nil {
			return err
		}
		m.pc = next
		return nil
	}
}

func decENV(pc int, ins *Instr) dexec {
	cost, next := cycleCost[OpENV], pc+1
	n := int(ins.TagArg)
	ld, st := mkLoad(ins.B), mkStore(ins.A)
	return func(m *Machine) error {
		m.tick(OpENV, cost)
		parent, err := ld(m)
		if err != nil {
			return err
		}
		// Barrier-free fresh-block initialization, as in decCLOSE.
		a := m.Alloc(1 + n)
		m.heap[a-HeapBase] = parent
		for i := 0; i < n; i++ {
			m.heap[a-HeapBase+1+uint64(i)] = NilWord
		}
		m.Stats.EnvAllocs++
		if err := st(m, Ptr(TagEnv, a)); err != nil {
			return err
		}
		m.pc = next
		return nil
	}
}

func decSPECBIND(pc int, ins *Instr) dexec {
	cost, next := cycleCost[OpSPECBIND], pc+1
	sym := int(ins.TagArg)
	ld := mkLoad(ins.A)
	return func(m *Machine) error {
		m.tick(OpSPECBIND, cost)
		v, err := ld(m)
		if err != nil {
			return err
		}
		m.bindStack = append(m.bindStack, bindEntry{sym: sym, val: v})
		if p := m.prof; p != nil && len(m.bindStack) > p.BindHighWater {
			p.BindHighWater = len(m.bindStack)
		}
		m.pc = next
		return nil
	}
}

func decSPECUNBIND(pc int, ins *Instr) dexec {
	cost, next := cycleCost[OpSPECUNBIND], pc+1
	n := int(ins.TagArg)
	return func(m *Machine) error {
		m.tick(OpSPECUNBIND, cost)
		if n > len(m.bindStack) {
			return &RuntimeError{PC: m.pc, Msg: "binding stack underflow"}
		}
		m.bindStack = m.bindStack[:len(m.bindStack)-n]
		m.pc = next
		return nil
	}
}

func decCATCH(pc int, ins *Instr) dexec {
	cost, next := cycleCost[OpCATCH], pc+1
	target := ins.target
	ld := mkLoad(ins.A)
	return func(m *Machine) error {
		m.tick(OpCATCH, cost)
		tag, err := ld(m)
		if err != nil {
			return err
		}
		m.catchStack = append(m.catchStack, catchFrame{
			tag: tag, sp: m.regs[RegSP], fp: m.regs[RegFP], ep: m.regs[RegEP],
			handler: target, bindDepth: len(m.bindStack),
			fnDepth: m.prof.depth(), tierDepth: m.tier.tdepth(),
		})
		if p := m.prof; p != nil && len(m.catchStack) > p.CatchHighWater {
			p.CatchHighWater = len(m.catchStack)
		}
		m.pc = next
		return nil
	}
}

func decENDCATCH(pc int, ins *Instr) dexec {
	cost, next := cycleCost[OpENDCATCH], pc+1
	return func(m *Machine) error {
		m.tick(OpENDCATCH, cost)
		if len(m.catchStack) == 0 {
			return &RuntimeError{PC: m.pc, Msg: "catch stack underflow"}
		}
		m.catchStack = m.catchStack[:len(m.catchStack)-1]
		m.pc = next
		return nil
	}
}

func decCALLSQ(pc int, ins *Instr) dexec {
	cost, next := cycleCost[OpCALLSQ], pc+1
	idx := int(ins.TagArg)
	// callSQ reads operands off the instruction; capture a copy, not the
	// *Instr — Code's backing array is reallocated by later appends.
	insCopy := *ins
	return func(m *Machine) error {
		m.tick(OpCALLSQ, cost)
		m.Stats.SQCalls++
		jumped, err := m.callSQ(idx, &insCopy)
		if err != nil {
			return err
		}
		if !jumped {
			m.pc = next
		}
		return nil
	}
}
