package s1

import "fmt"

// AsmError reports an assembly failure.
type AsmError struct {
	Fn  string
	Idx int
	Msg string
}

func (e *AsmError) Error() string {
	return fmt.Sprintf("s1 asm: %s[%d]: %s", e.Fn, e.Idx, e.Msg)
}

// twoAndHalfAddr lists the arithmetic opcodes subject to the S-1's
// 2½-address encoding: a three-operand form must route through RTA or
// RTB ("the three operands to ADD may be in three distinct places,
// provided that one of them is one of the two registers named RTA and
// RTB").
var twoAndHalfAddr = map[Op]bool{
	OpADD: true, OpSUB: true, OpMULT: true, OpDIV: true, OpASH: true,
	OpFADD: true, OpFSUB: true, OpFMULT: true, OpFDIV: true,
	OpFMAX: true, OpFMIN: true,
}

// jumpOps lists opcodes whose last operand is a code label.
var jumpOps = map[Op]bool{
	OpJMP: true, OpJEQ: true, OpJNE: true, OpJLT: true, OpJLE: true,
	OpJGT: true, OpJGE: true, OpFJEQ: true, OpFJNE: true, OpFJLT: true,
	OpFJLE: true, OpFJGT: true, OpFJGE: true, OpJNIL: true, OpJNNIL: true,
	OpJTAG: true, OpJNTAG: true, OpJEQW: true, OpJNEW: true, OpCATCH: true,
}

// fusableInterior reports opcodes that always fall through to pc+1 on
// success — legal anywhere in a superinstruction group (fuse.go). CATCH
// falls through too but is excluded conservatively: it snapshots machine
// state for non-local unwinding and is far too cold to matter.
func fusableInterior(op Op) bool {
	switch op {
	case OpNOP, OpMOV, OpMOVP, OpTAG,
		OpADD, OpSUB, OpMULT, OpDIV, OpASH,
		OpFADD, OpFSUB, OpFMULT, OpFDIV, OpFMAX, OpFMIN,
		OpFSIN, OpFCOS, OpFSQRT, OpFATAN, OpFEXP, OpFLOG, OpFABS, OpFNEG,
		OpFLT, OpFIX,
		OpPUSH, OpPOP, OpALLOC, OpCLOSE, OpENV,
		OpSPECBIND, OpSPECUNBIND, OpENDCATCH:
		return true
	}
	return false
}

// fusableLast reports opcodes that may transfer control and are therefore
// legal only as the final member of a superinstruction group.
func fusableLast(op Op) bool {
	if jumpOps[op] && op != OpCATCH {
		return true
	}
	switch op {
	case OpCALL, OpCALLF, OpTCALL, OpTCALLF, OpCALLSQ, OpRET:
		return true
	}
	return false
}

// assemble appends the function body to code, resolving local labels and
// validating operand encodings. Returns the entry offset.
func assemble(fnName string, items []Item, code []Instr) ([]Instr, int, error) {
	entry := len(code)
	labels := map[string]int{}
	pc := len(code)
	for _, it := range items {
		if it.Label != "" {
			if _, dup := labels[it.Label]; dup {
				return nil, 0, &AsmError{Fn: fnName, Msg: "duplicate label " + it.Label}
			}
			labels[it.Label] = pc
			continue
		}
		pc++
	}
	idx := 0
	for _, it := range items {
		if it.Instr == nil {
			continue
		}
		ins := *it.Instr
		if twoAndHalfAddr[ins.Op] && ins.C.Mode != MNone {
			if !ins.A.IsRT() && !ins.B.IsRT() {
				return nil, 0, &AsmError{Fn: fnName, Idx: idx,
					Msg: fmt.Sprintf("%s: three-operand arithmetic must use RTA or RTB (got %s)", ins.Op, ins.String())}
			}
		}
		if jumpOps[ins.Op] {
			lab := lastOperand(&ins)
			if lab.Mode != MLabel {
				return nil, 0, &AsmError{Fn: fnName, Idx: idx,
					Msg: fmt.Sprintf("%s needs a label operand", ins.Op)}
			}
			t, ok := labels[lab.Label]
			if !ok {
				return nil, 0, &AsmError{Fn: fnName, Idx: idx,
					Msg: "undefined label " + lab.Label}
			}
			ins.target = t
		}
		code = append(code, ins)
		idx++
	}
	return code, entry, nil
}

// lastOperand returns the label-carrying operand of a jump.
func lastOperand(i *Instr) Operand {
	if i.C.Mode != MNone {
		return i.C
	}
	if i.B.Mode != MNone {
		return i.B
	}
	return i.A
}

// CountMOVs statically counts MOV instructions in a code range —
// the E4 metric ("nearly all of the time it is possible to generate code
// for arithmetic and subscripting expressions that requires no MOV
// instructions").
func CountMOVs(code []Instr, from, to int) int {
	n := 0
	for i := from; i < to && i < len(code); i++ {
		if code[i].Op == OpMOV {
			n++
		}
	}
	return n
}

// Listing renders a code range as parenthesized assembly, the paper's
// Table 4 format.
func Listing(code []Instr, from, to int) string {
	out := ""
	for i := from; i < to && i < len(code); i++ {
		out += fmt.Sprintf("%5d  %s\n", i, code[i].String())
	}
	return out
}
