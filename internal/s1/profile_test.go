package s1

import (
	"strings"
	"testing"
)

// buildCounted assembles f() = 40 + 2 with a known instruction mix.
func buildCounted(t *testing.T, m *Machine) {
	addFn(t, m, "counted", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: ImmInt(40)}),
		InstrItem(Instr{Op: OpADD, A: R(RegRTA), B: ImmInt(2)}),
		InstrItem(Instr{Op: OpMOVP, TagArg: int64(TagFixnum), A: R(RegA), B: Idx(RegRTA, 0, NoReg, 0)}),
		InstrItem(Instr{Op: OpRET}),
	})
}

func TestProfileOpcodeHistogram(t *testing.T) {
	m := New()
	buildCounted(t, m)
	p := m.EnableProfile()
	if m.EnableProfile() != p {
		t.Fatalf("EnableProfile is not idempotent")
	}
	got, err := m.CallFunction("counted")
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 42 {
		t.Fatalf("counted = %s", got)
	}
	// The body executes MOV, ADD, MOVP, RET exactly once each.
	for _, op := range []Op{OpMOV, OpADD, OpMOVP, OpRET} {
		if p.OpCount[op] != 1 {
			t.Errorf("OpCount[%s] = %d, want 1", op, p.OpCount[op])
		}
		if p.OpCycles[op] != cycleCost[op] {
			t.Errorf("OpCycles[%s] = %d, want %d", op, p.OpCycles[op], cycleCost[op])
		}
	}
	// Every executed instruction is counted somewhere: the histogram
	// totals must match the machine's own meters exactly.
	var instrs, cycles int64
	for op := 0; op < NumOps; op++ {
		instrs += p.OpCount[op]
		cycles += p.OpCycles[op]
	}
	if instrs != m.Stats.Instrs {
		t.Errorf("histogram instrs %d != Stats.Instrs %d", instrs, m.Stats.Instrs)
	}
	if cycles != m.Stats.Cycles {
		t.Errorf("histogram cycles %d != Stats.Cycles %d", cycles, m.Stats.Cycles)
	}
}

func TestProfileFunctionAttribution(t *testing.T) {
	// deep(n): n == 0 ? 0 : deep(n-1) via real CALL — the shadow stack
	// must attribute every instruction to deep and fold the recursion
	// into nested collapsed stacks.
	m := New()
	sym := m.InternSym("deep")
	fnIdx := addFn(t, m, "deep", 1, 1, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: Mem(RegFP, -5)}),
		InstrItem(Instr{Op: OpJEQ, A: R(RegRTA), B: ImmInt(0), C: Lbl("base")}),
		InstrItem(Instr{Op: OpSUB, A: R(RegRTA), B: ImmInt(1)}),
		InstrItem(Instr{Op: OpMOVP, TagArg: int64(TagFixnum), A: R(RegA), B: Idx(RegRTA, 0, NoReg, 0)}),
		InstrItem(Instr{Op: OpPUSH, A: R(RegA)}),
		InstrItem(Instr{Op: OpCALL, A: Imm(Ptr(TagSymbol, uint64(sym))), TagArg: 1}),
		InstrItem(Instr{Op: OpPOP, A: R(RegA)}),
		InstrItem(Instr{Op: OpRET}),
		LabelItem("base"),
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(FixnumWord(0))}),
		InstrItem(Instr{Op: OpRET}),
	})
	m.SetSymbolFunction("deep", Ptr(TagFunc, uint64(fnIdx)))
	p := m.EnableProfile()
	if _, err := m.CallFunction("deep", FixnumWord(5)); err != nil {
		t.Fatal(err)
	}
	if p.FnCalls[fnIdx] != 6 {
		t.Errorf("FnCalls = %d, want 6 (outer + 5 recursive)", p.FnCalls[fnIdx])
	}
	if p.FnInstrs[fnIdx] != m.Stats.Instrs {
		t.Errorf("every instruction runs inside deep: FnInstrs %d != Instrs %d",
			p.FnInstrs[fnIdx], m.Stats.Instrs)
	}
	if p.FnCycles[fnIdx] != m.Stats.Cycles {
		t.Errorf("FnCycles %d != Cycles %d", p.FnCycles[fnIdx], m.Stats.Cycles)
	}
	// Collapsed stacks reflect the recursion depth, and their cycle
	// total equals the machine total. WriteCollapsed flushes pending
	// cycles, so call it before reading the map.
	var b strings.Builder
	m.WriteCollapsed(&b)
	folded := p.Collapsed()
	if folded["deep;deep;deep;deep;deep;deep"] == 0 {
		t.Errorf("missing depth-6 collapsed stack; have %v", folded)
	}
	var total int64
	for _, c := range folded {
		total += c
	}
	if total != m.Stats.Cycles {
		t.Errorf("collapsed cycles %d != Stats.Cycles %d", total, m.Stats.Cycles)
	}
	if !strings.Contains(b.String(), "deep;deep") {
		t.Errorf("folded output missing nested stack:\n%s", b.String())
	}

	out := new(strings.Builder)
	m.WriteProfile(out)
	if !strings.Contains(out.String(), "deep") || !strings.Contains(out.String(), "CALL") {
		t.Errorf("profile report incomplete:\n%s", out.String())
	}
}

func TestProfileTailCallSwapsFrame(t *testing.T) {
	// loop(n): n == 0 ? 99 : loop(n-1) via TCALL — the shadow stack must
	// stay one deep.
	m := New()
	sym := m.InternSym("ploop")
	fnIdx := addFn(t, m, "ploop", 1, 1, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: Mem(RegFP, -5)}),
		InstrItem(Instr{Op: OpJEQ, A: R(RegRTA), B: ImmInt(0), C: Lbl("done")}),
		InstrItem(Instr{Op: OpSUB, A: R(RegRTA), B: ImmInt(1)}),
		InstrItem(Instr{Op: OpMOVP, TagArg: int64(TagFixnum), A: R(RegA), B: Idx(RegRTA, 0, NoReg, 0)}),
		InstrItem(Instr{Op: OpPUSH, A: R(RegA)}),
		InstrItem(Instr{Op: OpTCALL, A: Imm(Ptr(TagSymbol, uint64(sym))), TagArg: 1}),
		LabelItem("done"),
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(FixnumWord(99))}),
		InstrItem(Instr{Op: OpRET}),
	})
	m.SetSymbolFunction("ploop", Ptr(TagFunc, uint64(fnIdx)))
	p := m.EnableProfile()
	if _, err := m.CallFunction("ploop", FixnumWord(10)); err != nil {
		t.Fatal(err)
	}
	if p.FnCalls[fnIdx] != 11 {
		t.Errorf("FnCalls = %d, want 11", p.FnCalls[fnIdx])
	}
	var b strings.Builder
	m.WriteCollapsed(&b)
	for stack := range p.Collapsed() {
		if strings.Contains(stack, ";") {
			t.Errorf("tail recursion deepened the shadow stack: %q", stack)
		}
	}
}

func TestProfileReset(t *testing.T) {
	m := New()
	buildCounted(t, m)
	p := m.EnableProfile()
	if _, err := m.CallFunction("counted"); err != nil {
		t.Fatal(err)
	}
	p.Reset()
	var instrs int64
	for op := 0; op < NumOps; op++ {
		instrs += p.OpCount[op]
	}
	if instrs != 0 || len(p.Collapsed()) != 0 || p.GCPauseCount != 0 {
		t.Errorf("Reset left data behind")
	}
	// Profiling still works after a reset.
	if _, err := m.CallFunction("counted"); err != nil {
		t.Fatal(err)
	}
	if p.OpCount[OpADD] != 1 {
		t.Errorf("profiling dead after Reset")
	}
}

func TestProfileGCPauses(t *testing.T) {
	m := New()
	m.EnableProfile()
	m.Cons(FixnumWord(1), NilWord)
	m.GC()
	p := m.Profile()
	if p.GCPauseCount != 1 {
		t.Errorf("GCPauseCount = %d, want 1", p.GCPauseCount)
	}
	if p.GCPauseTotal <= 0 {
		t.Errorf("GCPauseTotal = %v, want > 0", p.GCPauseTotal)
	}
}

func TestProfileDisabledByDefault(t *testing.T) {
	m := New()
	buildCounted(t, m)
	if _, err := m.CallFunction("counted"); err != nil {
		t.Fatal(err)
	}
	if m.Profile() != nil {
		t.Fatalf("profile enabled without EnableProfile")
	}
	var b strings.Builder
	m.WriteProfile(&b)
	if !strings.Contains(b.String(), "not enabled") {
		t.Errorf("disabled WriteProfile output: %q", b.String())
	}
}
