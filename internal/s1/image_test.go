package s1

import (
	"bytes"
	"encoding/gob"
	"testing"

	"repro/internal/sexp"
)

// buildImageTestMachine assembles a small machine with a function, interned
// symbols, heap structure (some of it garbage, so free lists are
// populated), boxed objects and leftover register state.
func buildImageTestMachine(t *testing.T) *Machine {
	t.Helper()
	m := New()
	m.InternSym("x")
	m.InternSym("double")
	m.SetGlobal("x", FixnumWord(21))
	items := []Item{
		{Instr: &Instr{Op: OpMOV, A: Operand{Mode: MReg, Base: RegA}, B: Operand{Mode: MMem, Base: RegFP, Off: -5}}},
		{Instr: &Instr{Op: OpADD, A: Operand{Mode: MReg, Base: RegA}, B: Operand{Mode: MReg, Base: RegA}}},
		{Instr: &Instr{Op: OpJMP, A: Operand{Mode: MLabel, Label: "done"}}},
		{Instr: &Instr{Op: OpHALT}},
		{Label: "done"},
		{Instr: &Instr{Op: OpRET}},
	}
	idx, err := m.AddFunction("double", 1, 1, items)
	if err != nil {
		t.Fatalf("AddFunction: %v", err)
	}
	m.SetSymbolFunction("double", Ptr(TagFunc, uint64(idx)))
	// Live heap structure reachable from a symbol cell, plus a garbage
	// cons that a collection frees so the free lists are non-empty.
	live := m.Cons(FixnumWord(1), m.Cons(FixnumWord(2), NilWord))
	m.SetGlobal("lst", live)
	m.Cons(FixnumWord(99), NilWord) // garbage
	m.Box(sexp.String("hello\nworld"))
	m.Box(sexp.Character('q'))
	m.GC()
	if _, err := m.CallFunction("double", FixnumWord(7)); err != nil {
		t.Fatalf("call: %v", err)
	}
	return m
}

// gobRoundTrip pushes the image through gob, the same encoder the
// snapshot wire format uses, so dropped unexported state would surface
// here first.
func gobRoundTrip(t *testing.T, img *Image) *Image {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(img); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var out Image
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob decode: %v", err)
	}
	return &out
}

func TestImageRoundTripFingerprint(t *testing.T) {
	m := buildImageTestMachine(t)
	wantFP := m.ImageFingerprint()
	wantCtx := m.AllocContext()

	img, err := m.ExportImage()
	if err != nil {
		t.Fatalf("ExportImage: %v", err)
	}
	img = gobRoundTrip(t, img)

	r := New()
	if err := r.LoadImage(img); err != nil {
		t.Fatalf("LoadImage: %v", err)
	}
	if got := r.ImageFingerprint(); got != wantFP {
		t.Errorf("restored ImageFingerprint = %s, want %s", got, wantFP)
	}
	if got := r.AllocContext(); got != wantCtx {
		t.Errorf("restored AllocContext = %s, want %s", got, wantCtx)
	}
	if err := r.CheckHeapInvariants(); err != nil {
		t.Errorf("restored heap invariants: %v", err)
	}
	// The restored machine must execute: jump targets survived the trip
	// (gob drops Instr.target; the image carries them out of band).
	w, err := r.CallFunction("double", FixnumWord(7))
	if err != nil {
		t.Fatalf("restored call: %v", err)
	}
	if w.Int() != 14 {
		t.Errorf("restored (double 7) = %v, want 14", w)
	}
}

func TestImageRoundTripAllocParity(t *testing.T) {
	// After restore, allocation and collection must evolve the two
	// machines identically: same addresses handed out, same live words.
	m := buildImageTestMachine(t)
	img, err := m.ExportImage()
	if err != nil {
		t.Fatalf("ExportImage: %v", err)
	}
	r := New()
	if err := r.LoadImage(gobRoundTrip(t, img)); err != nil {
		t.Fatalf("LoadImage: %v", err)
	}
	for i := 0; i < 8; i++ {
		a, b := m.Cons(FixnumWord(int64(i)), NilWord), r.Cons(FixnumWord(int64(i)), NilWord)
		if a != b {
			t.Fatalf("alloc %d diverged: original %v, restored %v", i, a, b)
		}
	}
	m.GC()
	r.GC()
	if lm, lr := m.LiveHeapWords(), r.LiveHeapWords(); lm != lr {
		t.Errorf("post-GC live words diverged: original %d, restored %d", lm, lr)
	}
	if cm, cr := m.AllocContext(), r.AllocContext(); cm != cr {
		t.Errorf("post-GC AllocContext diverged: %s vs %s", cm, cr)
	}
}

func TestImageRoundTripNoFuse(t *testing.T) {
	m := buildImageTestMachine(t)
	img, err := m.ExportImage()
	if err != nil {
		t.Fatalf("ExportImage: %v", err)
	}
	r := New()
	r.SetNoFuse(true)
	if err := r.LoadImage(img); err != nil {
		t.Fatalf("LoadImage: %v", err)
	}
	w, err := r.CallFunction("double", FixnumWord(5))
	if err != nil {
		t.Fatalf("restored nofuse call: %v", err)
	}
	if w.Int() != 10 {
		t.Errorf("restored nofuse (double 5) = %v, want 10", w)
	}
}

func TestImageRoundTripForcedHot(t *testing.T) {
	m := buildImageTestMachine(t)
	img, err := m.ExportImage()
	if err != nil {
		t.Fatalf("ExportImage: %v", err)
	}
	r := New()
	r.SetHotThreshold(-1)
	if err := r.LoadImage(img); err != nil {
		t.Fatalf("LoadImage: %v", err)
	}
	if hot := r.TierStats().HotFunctions; hot != int64(len(r.Funcs)) {
		t.Errorf("forced-hot restore promoted %d of %d functions", hot, len(r.Funcs))
	}
	w, err := r.CallFunction("double", FixnumWord(6))
	if err != nil {
		t.Fatalf("restored forcehot call: %v", err)
	}
	if w.Int() != 12 {
		t.Errorf("restored forcehot (double 6) = %v, want 12", w)
	}
}

func TestExportImageRefusesMidActivity(t *testing.T) {
	m := New()
	if err := m.BeginCapture(); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ExportImage(); err == nil {
		t.Error("ExportImage succeeded during capture")
	}
	m.EndCapture()
	m.tempRoots = append(m.tempRoots, NilWord)
	if _, err := m.ExportImage(); err == nil {
		t.Error("ExportImage succeeded with live temp roots")
	}
}

func TestLoadImageRejectsCorrupt(t *testing.T) {
	m := buildImageTestMachine(t)
	base, err := m.ExportImage()
	if err != nil {
		t.Fatalf("ExportImage: %v", err)
	}
	cases := []struct {
		name string
		mut  func(img *Image)
	}{
		{"truncated-targets", func(img *Image) { img.Targets = img.Targets[:1] }},
		{"bad-target", func(img *Image) { img.Targets[2] = 1 << 40 }},
		{"bad-binding", func(img *Image) { img.Bindings[0].Idx = 99 }},
		{"bad-func-span", func(img *Image) { img.Funcs[0].End = len(img.Code) + 7 }},
		{"block-overrun", func(img *Image) { img.Blocks[0].Size = int32(len(img.Heap)) + 1 }},
		{"bad-box", func(img *Image) { img.Boxes[0] = "(unterminated" }},
		{"bad-regs", func(img *Image) { img.Regs = img.Regs[:3] }},
		{"live-words-skew", func(img *Image) { img.LiveWords += 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			img := gobRoundTrip(t, base)
			tc.mut(img)
			if err := New().LoadImage(img); err == nil {
				t.Errorf("LoadImage accepted %s image", tc.name)
			}
		})
	}
	// The non-fresh guard: loading twice must fail.
	r := New()
	if err := r.LoadImage(gobRoundTrip(t, base)); err != nil {
		t.Fatalf("first load: %v", err)
	}
	if err := r.LoadImage(gobRoundTrip(t, base)); err == nil {
		t.Error("LoadImage accepted a non-fresh machine")
	}
}
