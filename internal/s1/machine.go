package s1

import (
	"fmt"
	"io"

	"repro/internal/sexp"
)

// FuncDesc describes one compiled function.
type FuncDesc struct {
	Name             string
	Entry, End       int
	MinArgs, MaxArgs int // MaxArgs -1 for &rest
}

// SymCell is a symbol's runtime record: a value cell (the global/dynamic
// binding of last resort) and a function cell.
type SymCell struct {
	Name     string
	Value    Word
	HasValue bool
	Function Word
}

type bindEntry struct {
	sym int
	val Word
}

type catchFrame struct {
	tag       Word
	sp, fp    Word
	ep        Word
	handler   int
	bindDepth int
	// fnDepth is the profiler's shadow-stack depth at CATCH time, so a
	// THROW unwind can truncate attribution to the handler's frame.
	fnDepth int
}

// Stats are the simulator's meters; every experiment in EXPERIMENTS.md is
// expressed in these.
type Stats struct {
	Cycles int64
	Instrs int64
	// Movs counts dynamically executed MOV instructions (the static count
	// comes from CountMOVs over the listing).
	Movs int64
	// Heap traffic.
	HeapWords    int64
	HeapAllocs   int64
	ConsAllocs   int64
	FlonumAllocs int64 // the E5/E6 metric: boxed floats created
	EnvAllocs    int64
	// MaxStack is the deepest stack extent reached (E3's metric).
	MaxStack int64
	// Pointer certification (§6.3).
	Certifies     int64
	CertifyCopies int64
	// Deep binding (§4.4 / E9).
	SpecialLookups     int64
	SpecialSearchSteps int64
	// Linkage.
	Calls     int64
	TailCalls int64
	SQCalls   int64
	// Compile cache (core's content-addressed memo of compiled bodies).
	CompileCacheHits   int64
	CompileCacheMisses int64
}

// RuntimeError is a Lisp-level runtime error raised by compiled code.
type RuntimeError struct {
	PC  int
	Msg string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("s1: runtime error at %d: %s", e.PC, e.Msg)
}

// Machine is an S-1 simulator instance with its Lisp runtime state.
type Machine struct {
	Code  []Instr
	Funcs []FuncDesc
	Syms  []SymCell
	// Boxes holds immutable objects outside the word format (bignums,
	// ratios, strings, characters, host symbols for literals).
	Boxes []sexp.Value

	// Out receives print output.
	Out io.Writer
	// StepLimit bounds execution (instructions): a runaway program gets
	// a RuntimeError instead of wedging the process (-max-steps).
	StepLimit int64
	// HeapLimit, when >0, bounds live heap words (-max-heap): an
	// allocation that would exceed it first forces a collection, and if
	// the heap is still over the limit the program gets a RuntimeError
	// ("heap exhausted") instead of growing without bound.
	HeapLimit int64
	// Stats accumulates the meters.
	Stats Stats
	// GCMeters accumulates garbage-collector activity.
	GCMeters GCStats

	funcIdx  map[string]int
	symIdx   map[string]int
	primHook PrimHook

	stack []Word
	heap  []Word
	// GC state (gc.go).
	allocRecs   map[uint64]*allocRec
	freeLists   map[int][]uint64
	gcThreshold int64
	liveSinceGC int64
	liveWords   int64
	regs        [NumRegs]Word
	bindStack   []bindEntry
	catchStack  []catchFrame
	pc          int
	halted      bool
	// prof, when non-nil, collects the runtime profile (profile.go).
	// The disabled fast path costs one nil check per instruction.
	prof *Profile
}

// New creates an empty machine. Code index 0 is a HALT used as the
// top-level return address.
func New() *Machine {
	m := &Machine{
		Code:      []Instr{{Op: OpHALT, Comment: "top-level return"}},
		Out:       io.Discard,
		StepLimit: 2_000_000_000,
		funcIdx:   map[string]int{},
		symIdx:    map[string]int{},
		stack:     make([]Word, StackLimit-StackBase),
	}
	return m
}

// AddFunction assembles a function body into the machine and registers
// its descriptor; returns the function index.
func (m *Machine) AddFunction(name string, minArgs, maxArgs int, items []Item) (int, error) {
	code, entry, err := assemble(name, items, m.Code)
	if err != nil {
		return 0, err
	}
	m.Code = code
	idx := len(m.Funcs)
	m.Funcs = append(m.Funcs, FuncDesc{
		Name: name, Entry: entry, End: len(code),
		MinArgs: minArgs, MaxArgs: maxArgs,
	})
	m.funcIdx[name] = idx
	return idx, nil
}

// FuncNamed returns the descriptor index for name, or -1.
func (m *Machine) FuncNamed(name string) int {
	if i, ok := m.funcIdx[name]; ok {
		return i
	}
	return -1
}

// InternSym returns the runtime symbol index for name.
func (m *Machine) InternSym(name string) int {
	if i, ok := m.symIdx[name]; ok {
		return i
	}
	i := len(m.Syms)
	m.Syms = append(m.Syms, SymCell{Name: name, Function: NilWord})
	m.symIdx[name] = i
	return i
}

// SetSymbolFunction installs a function word in a symbol's function cell.
func (m *Machine) SetSymbolFunction(name string, fn Word) {
	m.Syms[m.InternSym(name)].Function = fn
}

// RebindFunction points name at an already-installed function index
// without assembling anything: the compile cache uses it when a re-loaded
// definition's body is already resident in this machine.
func (m *Machine) RebindFunction(name string, idx int) {
	m.funcIdx[name] = idx
}

// SetGlobal sets a symbol's global value cell.
func (m *Machine) SetGlobal(name string, v Word) {
	i := m.InternSym(name)
	m.Syms[i].Value = v
	m.Syms[i].HasValue = true
}

// Box interns an immutable host object and returns its boxed word.
func (m *Machine) Box(v sexp.Value) Word {
	m.Boxes = append(m.Boxes, v)
	return Ptr(TagBoxed, uint64(len(m.Boxes)-1))
}

// Alloc allocates n heap words and returns the base address, reusing
// collected blocks when the garbage collector has produced any.
func (m *Machine) Alloc(n int) uint64 { return m.gcAlloc(n) }

// Cons allocates a cons cell.
func (m *Machine) Cons(car, cdr Word) Word {
	a := m.Alloc(2)
	m.heap[a-HeapBase] = car
	m.heap[a-HeapBase+1] = cdr
	m.Stats.ConsAllocs++
	return Ptr(TagCons, a)
}

// ConsFlonum heap-allocates a float object (the costly conversion of
// §6.2: "conversion from a raw number back to pointer format … may entail
// allocation of new storage and consequent garbage-collection overhead").
func (m *Machine) ConsFlonum(f float64) Word {
	a := m.Alloc(1)
	m.heap[a-HeapBase] = RawFloat(f)
	m.Stats.FlonumAllocs++
	return Ptr(TagFlonum, a)
}

func (m *Machine) load(addr uint64) (Word, error) {
	switch {
	case IsStackAddr(addr):
		return m.stack[addr-StackBase], nil
	case addr >= HeapBase && addr < HeapBase+uint64(len(m.heap)):
		return m.heap[addr-HeapBase], nil
	}
	return Word{}, &RuntimeError{PC: m.pc, Msg: fmt.Sprintf("load from bad address %#x", addr)}
}

func (m *Machine) store(addr uint64, w Word) error {
	switch {
	case IsStackAddr(addr):
		m.stack[addr-StackBase] = w
		return nil
	case addr >= HeapBase && addr < HeapBase+uint64(len(m.heap)):
		m.heap[addr-HeapBase] = w
		return nil
	}
	return &RuntimeError{PC: m.pc, Msg: fmt.Sprintf("store to bad address %#x", addr)}
}

func (m *Machine) effaddr(o Operand) (uint64, error) {
	switch o.Mode {
	case MMem:
		return uint64(int64(m.regs[o.Base].Bits) + o.Off), nil
	case MAbs:
		return uint64(o.Off), nil
	case MIdx:
		a := o.Off
		if o.Base != NoReg {
			a += int64(m.regs[o.Base].Bits)
		}
		if o.Index != NoReg {
			a += int64(m.regs[o.Index].Bits) << o.Shift
		}
		return uint64(a), nil
	}
	return 0, &RuntimeError{PC: m.pc, Msg: "operand has no effective address"}
}

func (m *Machine) value(o Operand) (Word, error) {
	switch o.Mode {
	case MReg:
		return m.regs[o.Base], nil
	case MImm:
		return o.Imm, nil
	case MMem, MAbs, MIdx:
		a, err := m.effaddr(o)
		if err != nil {
			return Word{}, err
		}
		return m.load(a)
	}
	return Word{}, &RuntimeError{PC: m.pc, Msg: "unreadable operand"}
}

func (m *Machine) setValue(o Operand, w Word) error {
	switch o.Mode {
	case MReg:
		m.regs[o.Base] = w
		return nil
	case MMem, MAbs, MIdx:
		a, err := m.effaddr(o)
		if err != nil {
			return err
		}
		return m.store(a, w)
	}
	return &RuntimeError{PC: m.pc, Msg: "unwritable operand"}
}

func (m *Machine) push(w Word) error {
	sp := m.regs[RegSP].Bits
	if !IsStackAddr(sp) {
		return &RuntimeError{PC: m.pc, Msg: "stack overflow"}
	}
	m.stack[sp-StackBase] = w
	m.regs[RegSP] = RawInt(int64(sp + 1))
	if d := int64(sp + 1 - StackBase); d > m.Stats.MaxStack {
		m.Stats.MaxStack = d
	}
	return nil
}

func (m *Machine) pop() (Word, error) {
	sp := m.regs[RegSP].Bits - 1
	if !IsStackAddr(sp) {
		return Word{}, &RuntimeError{PC: m.pc, Msg: "stack underflow"}
	}
	m.regs[RegSP] = RawInt(int64(sp))
	return m.stack[sp-StackBase], nil
}

// resolveFn resolves a callable word to a descriptor index and
// environment.
func (m *Machine) resolveFn(w Word) (int, Word, error) {
	switch w.Tag {
	case TagSymbol:
		f := m.Syms[w.Bits].Function
		if f.Tag == TagNil {
			return 0, NilWord, &RuntimeError{PC: m.pc,
				Msg: "undefined function " + m.Syms[w.Bits].Name}
		}
		return m.resolveFn(f)
	case TagFunc:
		return int(w.Bits), NilWord, nil
	case TagClosure:
		fnw, err := m.load(w.Bits)
		if err != nil {
			return 0, NilWord, err
		}
		env, err := m.load(w.Bits + 1)
		if err != nil {
			return 0, NilWord, err
		}
		return int(fnw.Bits), env, nil
	}
	return 0, NilWord, &RuntimeError{PC: m.pc, Msg: "not a function: " + w.String()}
}

// CallFunction invokes a function by name with the given argument words
// and runs to completion, returning the result word.
func (m *Machine) CallFunction(name string, args ...Word) (Word, error) {
	idx := m.FuncNamed(name)
	if idx < 0 {
		return Word{}, fmt.Errorf("s1: no function %q", name)
	}
	return m.CallIndex(idx, args...)
}

// CallIndex invokes function index idx with args. The same panic
// barrier as Run guards the frame setup (argument pushes may allocate
// under a heap limit).
func (m *Machine) CallIndex(idx int, args ...Word) (w Word, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.halted = true
			if he, ok := r.(*heapExhausted); ok {
				err = &RuntimeError{PC: m.pc, Msg: he.Error()}
			} else {
				err = &RuntimeError{PC: m.pc, Msg: fmt.Sprintf("machine fault: %v", r)}
			}
		}
	}()
	if p := m.prof; p != nil {
		p.restart(m)
	}
	m.regs[RegSP] = RawInt(StackBase)
	m.regs[RegFP] = RawInt(StackBase)
	m.regs[RegEP] = NilWord
	m.halted = false
	for _, a := range args {
		if err := m.push(a); err != nil {
			return Word{}, err
		}
	}
	if err := m.enterFrame(len(args), 0, Ptr(TagFunc, uint64(idx)), false); err != nil {
		return Word{}, err
	}
	if err := m.Run(); err != nil {
		return Word{}, err
	}
	return m.pop()
}

// enterFrame performs the CALL microcode: frame = [args..., nargs,
// retPC, oldFP, oldEP]; FP points past the saved words.
func (m *Machine) enterFrame(nargs, retPC int, fn Word, fast bool) error {
	idx, env, err := m.resolveFn(fn)
	if err != nil {
		return err
	}
	if err := m.push(RawInt(int64(nargs))); err != nil {
		return err
	}
	if err := m.push(RawInt(int64(retPC))); err != nil {
		return err
	}
	if err := m.push(m.regs[RegFP]); err != nil {
		return err
	}
	if err := m.push(m.regs[RegEP]); err != nil {
		return err
	}
	m.regs[RegFP] = m.regs[RegSP]
	m.regs[RegEP] = env
	m.regs[RegR3] = RawInt(int64(nargs))
	m.pc = m.Funcs[idx].Entry
	m.Stats.Calls++
	if p := m.prof; p != nil {
		p.call(m, idx)
	}
	return nil
}

// Run executes until HALT or error. Panics raised below the
// instruction loop — heap exhaustion after a failed collection, or an
// internal simulator fault — are converted into RuntimeErrors so a sick
// program degrades into an error value the REPL and driver can report.
func (m *Machine) Run() (err error) {
	defer func() {
		if r := recover(); r == nil {
			return
		} else if he, ok := r.(*heapExhausted); ok {
			m.halted = true
			err = &RuntimeError{PC: m.pc, Msg: he.Error()}
		} else {
			m.halted = true
			err = &RuntimeError{PC: m.pc, Msg: fmt.Sprintf("machine fault: %v", r)}
		}
	}()
	for !m.halted {
		if m.Stats.Instrs >= m.StepLimit {
			return &RuntimeError{PC: m.pc, Msg: "step limit exceeded"}
		}
		if m.pc < 0 || m.pc >= len(m.Code) {
			return &RuntimeError{PC: m.pc, Msg: "PC out of range"}
		}
		if err := m.step(); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) step() error {
	ins := &m.Code[m.pc]
	cost := cycleCost[ins.Op]
	m.Stats.Instrs++
	m.Stats.Cycles += cost
	if p := m.prof; p != nil {
		p.note(ins.Op, cost)
	}
	next := m.pc + 1

	switch ins.Op {
	case OpNOP:

	case OpHALT:
		m.halted = true
		return nil

	case OpMOV:
		v, err := m.value(ins.B)
		if err != nil {
			return err
		}
		if err := m.setValue(ins.A, v); err != nil {
			return err
		}
		m.Stats.Movs++

	case OpMOVP:
		a, err := m.effaddr(ins.B)
		if err != nil {
			return err
		}
		if err := m.setValue(ins.A, Ptr(Tag(ins.TagArg), a)); err != nil {
			return err
		}

	case OpTAG:
		v, err := m.value(ins.B)
		if err != nil {
			return err
		}
		if err := m.setValue(ins.A, RawInt(int64(v.Tag))); err != nil {
			return err
		}

	case OpADD, OpSUB, OpMULT, OpDIV, OpASH:
		x, y, err := m.binOperands(ins)
		if err != nil {
			return err
		}
		var r int64
		switch ins.Op {
		case OpADD:
			r = x.Int() + y.Int()
		case OpSUB:
			r = x.Int() - y.Int()
		case OpMULT:
			r = x.Int() * y.Int()
		case OpDIV:
			if y.Int() == 0 {
				return &RuntimeError{PC: m.pc, Msg: "integer division by zero"}
			}
			r = x.Int() / y.Int()
		case OpASH:
			s := y.Int()
			if s >= 0 {
				r = x.Int() << uint(s&63)
			} else {
				r = x.Int() >> uint((-s)&63)
			}
		}
		if err := m.setValue(ins.A, RawInt(r)); err != nil {
			return err
		}

	case OpFADD, OpFSUB, OpFMULT, OpFDIV, OpFMAX, OpFMIN:
		x, y, err := m.binOperands(ins)
		if err != nil {
			return err
		}
		var r float64
		switch ins.Op {
		case OpFADD:
			r = x.Float() + y.Float()
		case OpFSUB:
			r = x.Float() - y.Float()
		case OpFMULT:
			r = x.Float() * y.Float()
		case OpFDIV:
			r = x.Float() / y.Float()
		case OpFMAX:
			r = fmax(x.Float(), y.Float())
		case OpFMIN:
			r = fmin(x.Float(), y.Float())
		}
		if err := m.setValue(ins.A, RawFloat(r)); err != nil {
			return err
		}

	case OpFSIN, OpFCOS, OpFSQRT, OpFATAN, OpFEXP, OpFLOG, OpFABS, OpFNEG,
		OpFLT, OpFIX:
		v, err := m.value(ins.B)
		if err != nil {
			return err
		}
		out, err := m.unaryOp(ins.Op, v)
		if err != nil {
			return err
		}
		if err := m.setValue(ins.A, out); err != nil {
			return err
		}

	case OpJMP:
		next = ins.target

	case OpJEQ, OpJNE, OpJLT, OpJLE, OpJGT, OpJGE:
		x, err := m.value(ins.A)
		if err != nil {
			return err
		}
		y, err := m.value(ins.B)
		if err != nil {
			return err
		}
		if intCond(ins.Op, x.Int(), y.Int()) {
			next = ins.target
		}

	case OpFJEQ, OpFJNE, OpFJLT, OpFJLE, OpFJGT, OpFJGE:
		x, err := m.value(ins.A)
		if err != nil {
			return err
		}
		y, err := m.value(ins.B)
		if err != nil {
			return err
		}
		if floatCond(ins.Op, x.Float(), y.Float()) {
			next = ins.target
		}

	case OpJNIL, OpJNNIL:
		v, err := m.value(ins.A)
		if err != nil {
			return err
		}
		if (v.Tag == TagNil) == (ins.Op == OpJNIL) {
			next = ins.target
		}

	case OpJTAG, OpJNTAG:
		v, err := m.value(ins.A)
		if err != nil {
			return err
		}
		if (v.Tag == Tag(ins.TagArg)) == (ins.Op == OpJTAG) {
			next = ins.target
		}

	case OpJEQW, OpJNEW:
		x, err := m.value(ins.A)
		if err != nil {
			return err
		}
		y, err := m.value(ins.B)
		if err != nil {
			return err
		}
		if (x == y) == (ins.Op == OpJEQW) {
			next = ins.target
		}

	case OpPUSH:
		v, err := m.value(ins.A)
		if err != nil {
			return err
		}
		if err := m.push(v); err != nil {
			return err
		}

	case OpPOP:
		v, err := m.pop()
		if err != nil {
			return err
		}
		if ins.A.Mode != MNone {
			if err := m.setValue(ins.A, v); err != nil {
				return err
			}
		}

	case OpALLOC:
		n, err := m.value(ins.B)
		if err != nil {
			return err
		}
		base := m.Alloc(int(n.Int()))
		if err := m.setValue(ins.A, RawInt(int64(base))); err != nil {
			return err
		}

	case OpCALL, OpCALLF:
		fn, err := m.value(ins.A)
		if err != nil {
			return err
		}
		return m.enterFrame(int(ins.TagArg), next, fn, ins.Op == OpCALLF)

	case OpTCALL, OpTCALLF:
		fn, err := m.value(ins.A)
		if err != nil {
			return err
		}
		m.Stats.TailCalls++
		return m.tailCall(int(ins.TagArg), fn)

	case OpRET:
		return m.ret()

	case OpCLOSE:
		env, err := m.value(ins.B)
		if err != nil {
			return err
		}
		a := m.Alloc(2)
		m.heap[a-HeapBase] = RawInt(ins.TagArg)
		m.heap[a-HeapBase+1] = env
		if err := m.setValue(ins.A, Ptr(TagClosure, a)); err != nil {
			return err
		}

	case OpENV:
		parent, err := m.value(ins.B)
		if err != nil {
			return err
		}
		n := int(ins.TagArg)
		a := m.Alloc(1 + n)
		m.heap[a-HeapBase] = parent
		for i := 0; i < n; i++ {
			m.heap[a-HeapBase+1+uint64(i)] = NilWord
		}
		m.Stats.EnvAllocs++
		if err := m.setValue(ins.A, Ptr(TagEnv, a)); err != nil {
			return err
		}

	case OpSPECBIND:
		v, err := m.value(ins.A)
		if err != nil {
			return err
		}
		m.bindStack = append(m.bindStack, bindEntry{sym: int(ins.TagArg), val: v})
		if p := m.prof; p != nil && len(m.bindStack) > p.BindHighWater {
			p.BindHighWater = len(m.bindStack)
		}

	case OpSPECUNBIND:
		n := int(ins.TagArg)
		if n > len(m.bindStack) {
			return &RuntimeError{PC: m.pc, Msg: "binding stack underflow"}
		}
		m.bindStack = m.bindStack[:len(m.bindStack)-n]

	case OpCATCH:
		tag, err := m.value(ins.A)
		if err != nil {
			return err
		}
		m.catchStack = append(m.catchStack, catchFrame{
			tag: tag, sp: m.regs[RegSP], fp: m.regs[RegFP], ep: m.regs[RegEP],
			handler: ins.target, bindDepth: len(m.bindStack),
			fnDepth: m.prof.depth(),
		})
		if p := m.prof; p != nil && len(m.catchStack) > p.CatchHighWater {
			p.CatchHighWater = len(m.catchStack)
		}

	case OpENDCATCH:
		if len(m.catchStack) == 0 {
			return &RuntimeError{PC: m.pc, Msg: "catch stack underflow"}
		}
		m.catchStack = m.catchStack[:len(m.catchStack)-1]

	case OpCALLSQ:
		m.Stats.SQCalls++
		jumped, err := m.callSQ(int(ins.TagArg), ins)
		if err != nil {
			return err
		}
		if jumped {
			return nil
		}

	default:
		return &RuntimeError{PC: m.pc, Msg: "bad opcode " + ins.Op.String()}
	}
	m.pc = next
	return nil
}

// binOperands fetches the source operands of a 2- or 3-operand
// arithmetic instruction (dst := dst op B, or dst := B op C).
func (m *Machine) binOperands(ins *Instr) (Word, Word, error) {
	if ins.C.Mode == MNone {
		x, err := m.value(ins.A)
		if err != nil {
			return Word{}, Word{}, err
		}
		y, err := m.value(ins.B)
		return x, y, err
	}
	x, err := m.value(ins.B)
	if err != nil {
		return Word{}, Word{}, err
	}
	y, err := m.value(ins.C)
	return x, y, err
}

func (m *Machine) unaryOp(op Op, v Word) (Word, error) {
	switch op {
	case OpFSIN:
		return RawFloat(sinCycles(v.Float())), nil
	case OpFCOS:
		return RawFloat(cosCycles(v.Float())), nil
	case OpFSQRT:
		return RawFloat(sqrt(v.Float())), nil
	case OpFATAN:
		return RawFloat(atan(v.Float())), nil
	case OpFEXP:
		return RawFloat(exp(v.Float())), nil
	case OpFLOG:
		return RawFloat(logf(v.Float())), nil
	case OpFABS:
		return RawFloat(fabs(v.Float())), nil
	case OpFNEG:
		return RawFloat(-v.Float()), nil
	case OpFLT:
		return RawFloat(float64(v.Int())), nil
	case OpFIX:
		return RawInt(int64(v.Float())), nil
	}
	return Word{}, &RuntimeError{PC: m.pc, Msg: "bad unary op"}
}

func (m *Machine) ret() error {
	fp := m.regs[RegFP].Bits
	nw, err := m.load(fp - 4)
	if err != nil {
		return err
	}
	retw, err := m.load(fp - 3)
	if err != nil {
		return err
	}
	oldFP, err := m.load(fp - 2)
	if err != nil {
		return err
	}
	oldEP, err := m.load(fp - 1)
	if err != nil {
		return err
	}
	m.regs[RegSP] = RawInt(int64(fp) - 4 - nw.Int())
	m.regs[RegFP] = oldFP
	m.regs[RegEP] = oldEP
	if err := m.push(m.regs[RegA]); err != nil {
		return err
	}
	if p := m.prof; p != nil {
		p.ret(m)
	}
	m.pc = int(retw.Int())
	if m.pc == 0 {
		m.halted = true
	}
	return nil
}

// tailCall reuses the current frame: "a procedure call in this case is
// more akin to a parameter-passing goto than to a recursive call".
func (m *Machine) tailCall(k int, fn Word) error {
	idx, env, err := m.resolveFn(fn)
	if err != nil {
		return err
	}
	// Pop the k outgoing arguments.
	args := make([]Word, k)
	for i := k - 1; i >= 0; i-- {
		if args[i], err = m.pop(); err != nil {
			return err
		}
	}
	fp := m.regs[RegFP].Bits
	nw, err := m.load(fp - 4)
	if err != nil {
		return err
	}
	savedRet, err := m.load(fp - 3)
	if err != nil {
		return err
	}
	savedFP, err := m.load(fp - 2)
	if err != nil {
		return err
	}
	savedEP, err := m.load(fp - 1)
	if err != nil {
		return err
	}
	m.regs[RegSP] = RawInt(int64(fp) - 4 - nw.Int())
	for _, a := range args {
		if err := m.push(a); err != nil {
			return err
		}
	}
	if err := m.push(RawInt(int64(k))); err != nil {
		return err
	}
	if err := m.push(savedRet); err != nil {
		return err
	}
	if err := m.push(savedFP); err != nil {
		return err
	}
	if err := m.push(savedEP); err != nil {
		return err
	}
	m.regs[RegFP] = m.regs[RegSP]
	m.regs[RegEP] = env
	m.regs[RegR3] = RawInt(int64(k))
	m.pc = m.Funcs[idx].Entry
	if p := m.prof; p != nil {
		p.tail(m, idx)
	}
	return nil
}

func intCond(op Op, x, y int64) bool {
	switch op {
	case OpJEQ:
		return x == y
	case OpJNE:
		return x != y
	case OpJLT:
		return x < y
	case OpJLE:
		return x <= y
	case OpJGT:
		return x > y
	case OpJGE:
		return x >= y
	}
	return false
}

func floatCond(op Op, x, y float64) bool {
	switch op {
	case OpFJEQ:
		return x == y
	case OpFJNE:
		return x != y
	case OpFJLT:
		return x < y
	case OpFJLE:
		return x <= y
	case OpFJGT:
		return x > y
	case OpFJGE:
		return x >= y
	}
	return false
}

// ResetStats clears the meters (not the machine state).
func (m *Machine) ResetStats() { m.Stats = Stats{} }

// HeapLoad reads a heap word (for tests and the disassembler).
func (m *Machine) HeapLoad(addr uint64) (Word, error) { return m.load(addr) }
