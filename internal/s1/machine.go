package s1

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/sexp"
)

// FuncDesc describes one compiled function.
type FuncDesc struct {
	Name             string
	Entry, End       int
	MinArgs, MaxArgs int // MaxArgs -1 for &rest
}

// SymCell is a symbol's runtime record: a value cell (the global/dynamic
// binding of last resort) and a function cell.
type SymCell struct {
	Name     string
	Value    Word
	HasValue bool
	Function Word
}

type bindEntry struct {
	sym int
	val Word
}

type catchFrame struct {
	tag       Word
	sp, fp    Word
	ep        Word
	handler   int
	bindDepth int
	// fnDepth is the profiler's shadow-stack depth at CATCH time, so a
	// THROW unwind can truncate attribution to the handler's frame.
	fnDepth int
	// tierDepth is the tier engine's shadow-stack depth at CATCH time
	// (tier.go), kept the same way for hot-function attribution.
	tierDepth int
}

// Stats are the simulator's meters; every experiment in EXPERIMENTS.md is
// expressed in these.
type Stats struct {
	Cycles int64
	Instrs int64
	// Movs counts dynamically executed MOV instructions (the static count
	// comes from CountMOVs over the listing).
	Movs int64
	// Heap traffic.
	HeapWords    int64
	HeapAllocs   int64
	ConsAllocs   int64
	FlonumAllocs int64 // the E5/E6 metric: boxed floats created
	EnvAllocs    int64
	// MaxStack is the deepest stack extent reached (E3's metric).
	MaxStack int64
	// Pointer certification (§6.3).
	Certifies     int64
	CertifyCopies int64
	// Deep binding (§4.4 / E9).
	SpecialLookups     int64
	SpecialSearchSteps int64
	// Linkage.
	Calls     int64
	TailCalls int64
	SQCalls   int64
	// Compile cache (core's content-addressed memo of compiled bodies).
	CompileCacheHits   int64
	CompileCacheMisses int64
}

// RuntimeError is a Lisp-level runtime error raised by compiled code.
type RuntimeError struct {
	PC  int
	Msg string
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("s1: runtime error at %d: %s", e.PC, e.Msg)
}

// Machine is an S-1 simulator instance with its Lisp runtime state.
type Machine struct {
	Code  []Instr
	Funcs []FuncDesc
	Syms  []SymCell
	// Boxes holds immutable objects outside the word format (bignums,
	// ratios, strings, characters, host symbols for literals).
	Boxes []sexp.Value

	// Out receives print output.
	Out io.Writer
	// StepLimit bounds execution (instructions): a runaway program gets
	// a RuntimeError instead of wedging the process (-max-steps).
	StepLimit int64
	// HeapLimit, when >0, bounds live heap words (-max-heap): an
	// allocation that would exceed it first forces a collection, and if
	// the heap is still over the limit the program gets a RuntimeError
	// ("heap exhausted") instead of growing without bound.
	HeapLimit int64
	// Stats accumulates the meters.
	Stats Stats
	// GCMeters accumulates garbage-collector activity.
	GCMeters GCStats

	funcIdx  map[string]int
	symIdx   map[string]int
	primHook PrimHook

	stack []Word
	heap  []Word
	// GC state (gc.go). gcRecs parallels heap: the entry at a block's
	// start offset holds its record; interior entries stay zero. Offsets
	// into heap are dense, so slices replace the address-keyed maps the
	// allocator used to probe on every allocation.
	gcRecs    []gcRec
	gcBlocks  []uint64
	freeSmall [gcSmallMax + 1][]uint64
	freeBig   map[int][]uint64
	// Generational state (gc.go). youngBlocks lists the blocks allocated
	// since the last collection — the nursery a minor collection sweeps.
	// cards is the remembered set: one byte per cardWords heap words,
	// dirtied by the store write barrier, scanned as extra roots by minor
	// collections. markStack is the reusable mark worklist.
	youngBlocks []uint64
	cards       []byte
	markStack   []uint64
	gcThreshold int64
	liveSinceGC int64
	liveWords   int64
	// gcNoGen forces every automatic collection to be full (-gc-nogen);
	// gcStressMinor forces a minor before every allocation. minorBudget
	// (with its sticky overrun flag) and promotedSinceFull drive the
	// minor→full escalation policy in collectAuto.
	gcNoGen           bool
	gcStressMinor     bool
	minorBudget       time.Duration
	minorOverBudget   bool
	promotedSinceFull int64
	// arena, when non-nil, is the recycled storage pool this machine's
	// slices were drawn from (arena.go); ReleaseArena hands them back.
	arena      *Arena
	regs       [NumRegs]Word
	bindStack  []bindEntry
	catchStack []catchFrame
	pc         int
	halted     bool
	// prof, when non-nil, collects the runtime profile (profile.go).
	// The disabled fast path costs one nil check per instruction.
	prof *Profile
	// Decoded execution state (decode.go / fuse.go). decBase holds one
	// pre-decoded closure per Code index; decFused is the dispatch stream
	// — identical to decBase under -nofuse, otherwise with
	// superinstruction closures installed at group-head indexes.
	decBase  []dinstr
	decFused []dinstr
	noFuse   bool
	// fuseGroups counts statically formed superinstruction groups by
	// opcode signature.
	fuseGroups map[string]int64
	// entrySet holds every function entry PC; fuseRange consults it so
	// groups never straddle a function boundary, and AddFunction extends
	// it incrementally (rebuilding it per decode was quadratic).
	entrySet map[int]bool
	// tier, when non-nil, is the tiered-execution engine (tier.go):
	// per-function hot counters, trace re-fusion and block lowering.
	// tierHeads marks PCs that are block leaders (or not covered by a
	// lowered block at all); a false entry means the PC is a lowered
	// block's interior, so ret/throw landing there report it to the
	// engine as a re-fusion boundary.
	tier      *tierEngine
	tierHeads []bool

	// cap, when non-nil, records emission-time machine mutations for the
	// durable compile cache (capture.go); capDepth guards FromValue
	// recursion so only top-level constant builds are recorded.
	cap      *Capture
	capDepth int
	// symHash incrementally fingerprints the symbol table contents for
	// AllocContext (capture.go).
	symHash uint64
	// gcStress forces a full collection before every allocation
	// (-gc-stress): construction-order bugs that normally need precise
	// heap pressure to surface become deterministic.
	gcStress bool
	// tempRoots protects words held only in host locals (mid-construction
	// structure in FromValue, SQ list builders) across allocations; the
	// collector treats the stack as roots.
	tempRoots []Word
	// signal is the tri-state run/preempt/kill word polled at safepoints
	// (every interruptEvery retired instructions in Run, plus GC-check
	// sites). sigKill makes Run return a RuntimeError (the cooperative
	// cancellation the compile daemon's request deadlines use); sigPreempt
	// makes Run return ErrPreempted with the machine fully resumable — pc,
	// stack, registers and meters intact — so a scheduler can park it and
	// call Run again later.
	signal atomic.Int32
	// safeCharged is the Stats.Cycles value already reported to
	// OnSafepoint; the next safepoint reports the delta. safeErr defers a
	// hook error raised at a GC-site safepoint (where the machine is
	// mid-instruction and cannot stop) to the next Run-loop poll.
	safeCharged int64
	safeErr     error

	// OnEvent, when non-nil, receives rare runtime happenings (kind is an
	// event name matching the obs flight-recorder constants by
	// convention: "gc-pause", "tier-promote", "tier-refusion"; unit names
	// the function where that applies; d carries a duration when the
	// event has one). The hook fires on collection and tier-transition
	// paths only — never per instruction — so the disabled cost is a nil
	// check at those sites.
	OnEvent func(kind, unit string, d time.Duration)

	// OnSafepoint, when non-nil, is called at every safepoint with the
	// S-1 cycles retired since the previous call — the exact currency a
	// gas meter charges — and whether a Preempt request landed at this
	// safepoint. The hook may block (a scheduler parks the goroutine here
	// and the machine simply pauses mid-Run); returning a non-nil error
	// stops the run with that error and halts the machine (the gas-
	// exhausted path). The disabled cost is a nil check per safepoint,
	// never per instruction.
	OnSafepoint func(cycles int64, preempted bool) error
}

// Safepoint signal states (the tri-state interrupt word).
const (
	sigRun int32 = iota
	sigPreempt
	sigKill
)

// ErrPreempted is returned by Run when a Preempt request lands at a
// safepoint and no OnSafepoint hook is installed to park in place: the
// machine is NOT halted — pc, stack, registers and meters are all
// intact — and calling Run again resumes execution exactly where it
// stopped.
var ErrPreempted = errors.New("s1: machine preempted at safepoint")

// interruptEvery is the retired-instruction interval between safepoint
// polls: rare enough to stay off the hot path, frequent enough that a
// deadline or preemption lands within microseconds.
const interruptEvery = 256

// InterruptMsg is the RuntimeError message of an interrupted run.
const InterruptMsg = "execution interrupted"

// Interrupt requests that the current (or next) Run stop at its next
// safepoint with a RuntimeError — the kill state of the tri-state
// signal. Safe to call from another goroutine. A kill always wins over
// a pending preempt.
func (m *Machine) Interrupt() { m.signal.Store(sigKill) }

// Preempt requests that the current Run pause at its next safepoint:
// with an OnSafepoint hook installed the hook observes preempted=true
// (and typically parks in place); without one, Run returns ErrPreempted
// with the machine resumable. A pending kill is never downgraded.
func (m *Machine) Preempt() { m.signal.CompareAndSwap(sigRun, sigPreempt) }

// ClearInterrupt resets the signal to the run state. A machine recycled
// between requests (resident sessions, arenas) must pass through here so
// a stale kill from the previous request cannot leak into the next.
func (m *Machine) ClearInterrupt() { m.signal.Store(sigRun) }

// Interrupted reports whether a kill is pending.
func (m *Machine) Interrupted() bool { return m.signal.Load() == sigKill }

// pollSafepoint is the Run-loop safepoint: it surfaces deferred GC-site
// hook errors, handles the tri-state signal, and reports the cycle delta
// to the OnSafepoint hook. A non-nil return other than ErrPreempted
// halts the machine; ErrPreempted leaves it resumable.
func (m *Machine) pollSafepoint() error {
	if err := m.safeErr; err != nil {
		m.safeErr = nil
		m.halted = true
		return err
	}
	preempted := false
	switch m.signal.Load() {
	case sigKill:
		m.halted = true
		return &RuntimeError{PC: m.pc, Msg: InterruptMsg}
	case sigPreempt:
		// Consume the request (a kill racing in after the load is caught
		// by the CAS failing and the next poll, or by the hook recheck
		// below).
		m.signal.CompareAndSwap(sigPreempt, sigRun)
		if m.OnSafepoint == nil {
			return ErrPreempted
		}
		preempted = true
	}
	if m.OnSafepoint != nil {
		if err := m.OnSafepoint(m.takeUncharged(), preempted); err != nil {
			m.halted = true
			return err
		}
		// The hook may have parked for a long time; a kill that landed
		// during the park must fire now, not after another 256 dispatches.
		if m.signal.Load() == sigKill {
			m.halted = true
			return &RuntimeError{PC: m.pc, Msg: InterruptMsg}
		}
	}
	return nil
}

// takeUncharged returns the cycles retired since the last safepoint
// charge and marks them charged.
func (m *Machine) takeUncharged() int64 {
	d := m.Stats.Cycles - m.safeCharged
	m.safeCharged = m.Stats.Cycles
	return d
}

// gcSafepoint reports accumulated cycles to the OnSafepoint hook from a
// GC-check site. The machine is mid-instruction here, so a hook error
// cannot stop it directly; it is deferred to the next Run-loop poll
// (within interruptEvery retired instructions). The hook may still
// block, which is how a scheduler parks a machine that is allocating
// heavily between loop safepoints.
func (m *Machine) gcSafepoint() {
	if m.OnSafepoint == nil || m.safeErr != nil {
		return
	}
	if err := m.OnSafepoint(m.takeUncharged(), false); err != nil {
		m.safeErr = err
	}
}

// SetGCStress toggles forced collection before every allocation.
func (m *Machine) SetGCStress(v bool) { m.gcStress = v }

// SetNoFuse enables or disables the peephole superinstruction fuser.
// Observable behavior (results, Stats, profiles, GC activity) is
// identical either way; only dispatch granularity changes. Toggling
// rebuilds the fused overlay for already-decoded code.
func (m *Machine) SetNoFuse(v bool) {
	if m.noFuse == v {
		return
	}
	m.noFuse = v
	if v {
		// decFused aliases decBase: no overlay exists, so no lowered
		// blocks either — clear the leader map so landing checks idle.
		m.decFused = m.decBase
		m.fuseGroups = nil
		m.tierHeads = nil
		return
	}
	m.decFused = append([]dinstr(nil), m.decBase...)
	m.fuseRange(0, len(m.decBase))
	if t := m.tier; t != nil {
		for i := range t.fns {
			if t.fns[i].hot {
				t.install(m, i)
			}
		}
	}
}

// New creates an empty machine. Code index 0 is a HALT used as the
// top-level return address.
func New() *Machine { return newMachine(nil) }

func newMachine(a *Arena) *Machine {
	m := &Machine{
		Code:      []Instr{{Op: OpHALT, Comment: "top-level return"}},
		Out:       io.Discard,
		StepLimit: 2_000_000_000,
		funcIdx:   map[string]int{},
		symIdx:    map[string]int{},
		entrySet:  map[int]bool{},
		tier:      &tierEngine{threshold: DefaultHotThreshold},
	}
	if a == nil {
		// Draw from the shared stack pool (cleared on attach) rather than
		// always allocating: a server creating thousands of short-lived or
		// parked machines recycles the same few 16 MB slices.
		m.ensureStack()
		return m
	}
	a.adopt(m)
	return m
}

// AddFunction assembles a function body into the machine, pre-decodes it
// for execution (decode.go), and registers its descriptor; returns the
// function index.
func (m *Machine) AddFunction(name string, minArgs, maxArgs int, items []Item) (int, error) {
	code, entry, err := assemble(name, items, m.Code)
	if err != nil {
		return 0, err
	}
	m.Code = code
	idx := len(m.Funcs)
	m.Funcs = append(m.Funcs, FuncDesc{
		Name: name, Entry: entry, End: len(code),
		MinArgs: minArgs, MaxArgs: maxArgs,
	})
	m.funcIdx[name] = idx
	m.entrySet[entry] = true
	m.ensureDecoded()
	if t := m.tier; t != nil {
		t.ensure(len(m.Funcs))
		if t.threshold <= 0 {
			t.promote(m, idx)
		}
	}
	if m.cap != nil {
		m.cap.Funcs = append(m.cap.Funcs, CapturedFunc{
			Name: name, MinArgs: minArgs, MaxArgs: maxArgs, Items: FromItems(items),
		})
	}
	return idx, nil
}

// DecodedCovers reports whether the decoded stream covers [entry, end) —
// the compile cache validates it before rebinding a name to a resident
// body, since a cache-hit rebind reuses the decoded form without
// re-assembling anything.
func (m *Machine) DecodedCovers(entry, end int) bool {
	return entry >= 0 && entry <= end && end <= len(m.decBase)
}

// FuncNamed returns the descriptor index for name, or -1.
func (m *Machine) FuncNamed(name string) int {
	if i, ok := m.funcIdx[name]; ok {
		return i
	}
	return -1
}

// InternSym returns the runtime symbol index for name.
func (m *Machine) InternSym(name string) int {
	if i, ok := m.symIdx[name]; ok {
		return i
	}
	i := len(m.Syms)
	m.Syms = append(m.Syms, SymCell{Name: name, Function: NilWord})
	m.symIdx[name] = i
	m.foldSymHash(name)
	if m.cap != nil {
		m.cap.Syms = append(m.cap.Syms, name)
	}
	return i
}

// SetSymbolFunction installs a function word in a symbol's function cell.
func (m *Machine) SetSymbolFunction(name string, fn Word) {
	m.Syms[m.InternSym(name)].Function = fn
}

// RebindFunction points name at an already-installed function index
// without assembling anything: the compile cache uses it when a re-loaded
// definition's body is already resident in this machine.
func (m *Machine) RebindFunction(name string, idx int) {
	m.funcIdx[name] = idx
}

// SetGlobal sets a symbol's global value cell.
func (m *Machine) SetGlobal(name string, v Word) {
	i := m.InternSym(name)
	m.Syms[i].Value = v
	m.Syms[i].HasValue = true
}

// Box interns an immutable host object and returns its boxed word.
func (m *Machine) Box(v sexp.Value) Word {
	m.Boxes = append(m.Boxes, v)
	return Ptr(TagBoxed, uint64(len(m.Boxes)-1))
}

// Alloc allocates n heap words and returns the base address, reusing
// collected blocks when the garbage collector has produced any.
func (m *Machine) Alloc(n int) uint64 { return m.gcAlloc(n) }

// Cons allocates a cons cell.
func (m *Machine) Cons(car, cdr Word) Word {
	a := m.Alloc(2)
	m.heap[a-HeapBase] = car
	m.heap[a-HeapBase+1] = cdr
	m.Stats.ConsAllocs++
	return Ptr(TagCons, a)
}

// ConsFlonum heap-allocates a float object (the costly conversion of
// §6.2: "conversion from a raw number back to pointer format … may entail
// allocation of new storage and consequent garbage-collection overhead").
func (m *Machine) ConsFlonum(f float64) Word {
	a := m.Alloc(1)
	m.heap[a-HeapBase] = RawFloat(f)
	m.Stats.FlonumAllocs++
	return Ptr(TagFlonum, a)
}

func (m *Machine) load(addr uint64) (Word, error) {
	switch {
	case IsStackAddr(addr):
		return m.stack[addr-StackBase], nil
	case addr >= HeapBase && addr < HeapBase+uint64(len(m.heap)):
		return m.heap[addr-HeapBase], nil
	}
	return Word{}, &RuntimeError{PC: m.pc, Msg: fmt.Sprintf("load from bad address %#x", addr)}
}

func (m *Machine) store(addr uint64, w Word) error {
	switch {
	case IsStackAddr(addr):
		m.stack[addr-StackBase] = w
		return nil
	case addr >= HeapBase && addr < HeapBase+uint64(len(m.heap)):
		// Write barrier: record the card so a minor collection treats this
		// neighborhood as a root. store and storeFast (tier.go) are the
		// only paths by which compiled code mutates an existing heap block
		// (RPLACA/RPLACD, vector stores, closure-env writes all funnel
		// here), so dirtying the card on every heap store is a complete
		// remembered set.
		off := addr - HeapBase
		m.heap[off] = w
		m.cards[off>>cardShift] = 1
		return nil
	}
	return &RuntimeError{PC: m.pc, Msg: fmt.Sprintf("store to bad address %#x", addr)}
}

func (m *Machine) effaddr(o Operand) (uint64, error) {
	switch o.Mode {
	case MMem:
		return uint64(int64(m.regs[o.Base].Bits) + o.Off), nil
	case MAbs:
		return uint64(o.Off), nil
	case MIdx:
		a := o.Off
		if o.Base != NoReg {
			a += int64(m.regs[o.Base].Bits)
		}
		if o.Index != NoReg {
			a += int64(m.regs[o.Index].Bits) << o.Shift
		}
		return uint64(a), nil
	}
	return 0, &RuntimeError{PC: m.pc, Msg: "operand has no effective address"}
}

func (m *Machine) value(o Operand) (Word, error) {
	switch o.Mode {
	case MReg:
		return m.regs[o.Base], nil
	case MImm:
		return o.Imm, nil
	case MMem, MAbs, MIdx:
		a, err := m.effaddr(o)
		if err != nil {
			return Word{}, err
		}
		return m.load(a)
	}
	return Word{}, &RuntimeError{PC: m.pc, Msg: "unreadable operand"}
}

func (m *Machine) setValue(o Operand, w Word) error {
	switch o.Mode {
	case MReg:
		m.regs[o.Base] = w
		return nil
	case MMem, MAbs, MIdx:
		a, err := m.effaddr(o)
		if err != nil {
			return err
		}
		return m.store(a, w)
	}
	return &RuntimeError{PC: m.pc, Msg: "unwritable operand"}
}

func (m *Machine) push(w Word) error {
	sp := m.regs[RegSP].Bits
	if !IsStackAddr(sp) {
		return &RuntimeError{PC: m.pc, Msg: "stack overflow"}
	}
	m.stack[sp-StackBase] = w
	m.regs[RegSP] = RawInt(int64(sp + 1))
	if d := int64(sp + 1 - StackBase); d > m.Stats.MaxStack {
		m.Stats.MaxStack = d
	}
	return nil
}

func (m *Machine) pop() (Word, error) {
	sp := m.regs[RegSP].Bits - 1
	if !IsStackAddr(sp) {
		return Word{}, &RuntimeError{PC: m.pc, Msg: "stack underflow"}
	}
	m.regs[RegSP] = RawInt(int64(sp))
	return m.stack[sp-StackBase], nil
}

// resolveFn resolves a callable word to a descriptor index and
// environment.
func (m *Machine) resolveFn(w Word) (int, Word, error) {
	switch w.Tag {
	case TagSymbol:
		f := m.Syms[w.Bits].Function
		if f.Tag == TagNil {
			return 0, NilWord, &RuntimeError{PC: m.pc,
				Msg: "undefined function " + m.Syms[w.Bits].Name}
		}
		return m.resolveFn(f)
	case TagFunc:
		return int(w.Bits), NilWord, nil
	case TagClosure:
		fnw, err := m.load(w.Bits)
		if err != nil {
			return 0, NilWord, err
		}
		env, err := m.load(w.Bits + 1)
		if err != nil {
			return 0, NilWord, err
		}
		return int(fnw.Bits), env, nil
	}
	return 0, NilWord, &RuntimeError{PC: m.pc, Msg: "not a function: " + w.String()}
}

// CallFunction invokes a function by name with the given argument words
// and runs to completion, returning the result word.
func (m *Machine) CallFunction(name string, args ...Word) (Word, error) {
	idx := m.FuncNamed(name)
	if idx < 0 {
		return Word{}, fmt.Errorf("s1: no function %q", name)
	}
	return m.CallIndex(idx, args...)
}

// CallIndex invokes function index idx with args. The same panic
// barrier as Run guards the frame setup (argument pushes may allocate
// under a heap limit).
func (m *Machine) CallIndex(idx int, args ...Word) (w Word, err error) {
	defer func() {
		if r := recover(); r != nil {
			m.halted = true
			if he, ok := r.(*heapExhausted); ok {
				err = &RuntimeError{PC: m.pc, Msg: he.Error()}
			} else {
				err = &RuntimeError{PC: m.pc, Msg: fmt.Sprintf("machine fault: %v", r)}
			}
		}
	}()
	if p := m.prof; p != nil {
		p.restart(m)
	}
	if t := m.tier; t != nil {
		t.restart()
	}
	m.ensureStack()
	m.regs[RegSP] = RawInt(StackBase)
	m.regs[RegFP] = RawInt(StackBase)
	m.regs[RegEP] = NilWord
	m.halted = false
	for _, a := range args {
		if err := m.push(a); err != nil {
			return Word{}, err
		}
	}
	if err := m.enterFrame(len(args), 0, Ptr(TagFunc, uint64(idx)), false); err != nil {
		return Word{}, err
	}
	if err := m.Run(); err != nil {
		return Word{}, err
	}
	return m.pop()
}

// enterFrame performs the CALL microcode: frame = [args..., nargs,
// retPC, oldFP, oldEP]; FP points past the saved words.
func (m *Machine) enterFrame(nargs, retPC int, fn Word, fast bool) error {
	idx, env, err := m.resolveFn(fn)
	if err != nil {
		return err
	}
	if err := m.push(RawInt(int64(nargs))); err != nil {
		return err
	}
	if err := m.push(RawInt(int64(retPC))); err != nil {
		return err
	}
	if err := m.push(m.regs[RegFP]); err != nil {
		return err
	}
	if err := m.push(m.regs[RegEP]); err != nil {
		return err
	}
	m.regs[RegFP] = m.regs[RegSP]
	m.regs[RegEP] = env
	m.regs[RegR3] = RawInt(int64(nargs))
	m.pc = m.Funcs[idx].Entry
	m.Stats.Calls++
	if p := m.prof; p != nil {
		p.call(m, idx)
	}
	if t := m.tier; t != nil {
		t.onCall(m, idx)
	}
	return nil
}

// Run executes until HALT or error, dispatching the pre-decoded
// instruction stream (decode.go): one closure call per instruction, or
// per superinstruction group where the fuser collapsed a hot sequence
// (fuse.go). Panics raised below the instruction loop — heap exhaustion
// after a failed collection, or an internal simulator fault — are
// converted into RuntimeErrors so a sick program degrades into an error
// value the REPL and driver can report.
func (m *Machine) Run() (err error) {
	defer func() {
		if r := recover(); r == nil {
			return
		} else if he, ok := r.(*heapExhausted); ok {
			m.halted = true
			err = &RuntimeError{PC: m.pc, Msg: he.Error()}
		} else {
			m.halted = true
			err = &RuntimeError{PC: m.pc, Msg: fmt.Sprintf("machine fault: %v", r)}
		}
	}()
	m.ensureDecoded()
	m.ensureStack()
	dec, limit := m.decFused, m.StepLimit
	// Safepoints are spaced by retired instructions, not dispatches: a
	// lowered-block dispatch can retire blockChunk instructions, so a
	// dispatch counter would stretch the poll interval by that factor.
	nextPoll := m.Stats.Instrs + interruptEvery
	for !m.halted {
		if m.Stats.Instrs >= limit {
			return &RuntimeError{PC: m.pc, Msg: "step limit exceeded"}
		}
		if m.Stats.Instrs >= nextPoll {
			nextPoll = m.Stats.Instrs + interruptEvery
			if err := m.pollSafepoint(); err != nil {
				return err
			}
		}
		pc := m.pc
		if pc < 0 || pc >= len(dec) {
			return &RuntimeError{PC: pc, Msg: "PC out of range"}
		}
		d := dec[pc]
		if d.n > 1 && m.Stats.Instrs+int64(d.n) > limit {
			// The fused group would overshoot -max-steps; retire its
			// instructions one at a time so the limit trips at the exact
			// original-instruction count, as unfused dispatch would.
			d = m.decBase[pc]
		}
		if err := d.run(m); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) ret() error {
	fp := m.regs[RegFP].Bits
	nw, err := m.load(fp - 4)
	if err != nil {
		return err
	}
	retw, err := m.load(fp - 3)
	if err != nil {
		return err
	}
	oldFP, err := m.load(fp - 2)
	if err != nil {
		return err
	}
	oldEP, err := m.load(fp - 1)
	if err != nil {
		return err
	}
	m.regs[RegSP] = RawInt(int64(fp) - 4 - nw.Int())
	m.regs[RegFP] = oldFP
	m.regs[RegEP] = oldEP
	if err := m.push(m.regs[RegA]); err != nil {
		return err
	}
	if p := m.prof; p != nil {
		p.ret(m)
	}
	m.pc = int(retw.Int())
	if th := m.tierHeads; th != nil && m.pc >= 0 && m.pc < len(th) && !th[m.pc] {
		m.tier.noteLanding(m, m.pc)
	}
	if t := m.tier; t != nil {
		t.onRet(m)
	}
	if m.pc == 0 {
		m.halted = true
	}
	return nil
}

// tailCall reuses the current frame: "a procedure call in this case is
// more akin to a parameter-passing goto than to a recursive call".
func (m *Machine) tailCall(k int, fn Word) error {
	idx, env, err := m.resolveFn(fn)
	if err != nil {
		return err
	}
	// Pop the k outgoing arguments.
	args := make([]Word, k)
	for i := k - 1; i >= 0; i-- {
		if args[i], err = m.pop(); err != nil {
			return err
		}
	}
	fp := m.regs[RegFP].Bits
	nw, err := m.load(fp - 4)
	if err != nil {
		return err
	}
	savedRet, err := m.load(fp - 3)
	if err != nil {
		return err
	}
	savedFP, err := m.load(fp - 2)
	if err != nil {
		return err
	}
	savedEP, err := m.load(fp - 1)
	if err != nil {
		return err
	}
	m.regs[RegSP] = RawInt(int64(fp) - 4 - nw.Int())
	for _, a := range args {
		if err := m.push(a); err != nil {
			return err
		}
	}
	if err := m.push(RawInt(int64(k))); err != nil {
		return err
	}
	if err := m.push(savedRet); err != nil {
		return err
	}
	if err := m.push(savedFP); err != nil {
		return err
	}
	if err := m.push(savedEP); err != nil {
		return err
	}
	m.regs[RegFP] = m.regs[RegSP]
	m.regs[RegEP] = env
	m.regs[RegR3] = RawInt(int64(k))
	m.pc = m.Funcs[idx].Entry
	if p := m.prof; p != nil {
		p.tail(m, idx)
	}
	if t := m.tier; t != nil {
		t.onTail(m, idx)
	}
	return nil
}

// ResetStats clears the meters (not the machine state).
func (m *Machine) ResetStats() {
	m.Stats = Stats{}
	m.safeCharged = 0
}

// stackPool recycles full-size machine stacks across parked sessions:
// a resident Machine that is idle between requests has an empty logical
// stack, so ParkStack hands the 16 MB backing slice to the pool and
// ensureStack reattaches (and clears) one on resume. Clearing on attach
// rather than release keeps the park path O(1) and guarantees a program
// that reads stack slots it never wrote cannot see another tenant's
// words.
var stackPool = sync.Pool{}

// ensureStack attaches stack storage to a machine whose stack was
// parked (or never allocated). Idempotent and cheap when the stack is
// already present.
func (m *Machine) ensureStack() {
	if m.stack != nil {
		return
	}
	if v, ok := stackPool.Get().([]Word); ok && len(v) == StackLimit-StackBase {
		clear(v)
		m.stack = v
		return
	}
	m.stack = make([]Word, StackLimit-StackBase)
}

// ParkStack detaches the machine's stack into the shared pool and
// returns true. Only legal between runs; the next Run/CallIndex
// reattaches storage automatically. Arena-built machines decline —
// their stack belongs to the arena and goes back through ReleaseArena —
// and so does a machine with live frames (SP above the stack base,
// e.g. after an interrupted run): parking would silently replace those
// frames with zeros under a live SP, which the GC scans.
func (m *Machine) ParkStack() bool {
	if m.stack == nil || m.arena != nil {
		return false
	}
	if sp := m.regs[RegSP].Bits; IsStackAddr(sp) && sp != StackBase {
		return false
	}
	stackPool.Put(m.stack)
	m.stack = nil
	return true
}

// HeapLoad reads a heap word (for tests and the disassembler).
func (m *Machine) HeapLoad(addr uint64) (Word, error) { return m.load(addr) }
