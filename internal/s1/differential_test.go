package s1

import (
	"strings"
	"testing"

	"repro/internal/sexp"
)

// Differential suite for the decoded execution engine: every corpus
// program runs on a fused machine and a -nofuse machine, and the two
// executions must be indistinguishable — same return word, same error,
// same Stats (instruction counts in original-PC units, cycle totals,
// allocation meters, stack high water), same GC activity, and the same
// heap image word for word. The corpus covers each opcode family the
// fuser can tile: straight-line arithmetic, conditional and
// unconditional jumps (including jumps landing mid-group), calls, tail
// calls, SQ routines, closures, special binding, catch/throw unwinding,
// step-limit trips, and error paths.

// diffProg is one corpus program.
type diffProg struct {
	name string
	// build installs functions (and any heap constants) into m.
	build func(t *testing.T, m *Machine)
	fn    string
	args  []Word
	// stepLim/gcAt configure the machine before build.
	stepLim int64
	gcAt    int64
	// wantErr, when non-empty, is a substring the run error must carry;
	// empty means the run must succeed.
	wantErr string
}

func diffCorpus() []diffProg {
	return []diffProg{
		{name: "fixnum-arith", fn: "add2",
			args:  []Word{FixnumWord(30), FixnumWord(12)},
			build: func(t *testing.T, m *Machine) { buildAdd2(t, m) }},

		{name: "tail-loop", fn: "loop", args: []Word{FixnumWord(500)},
			build: func(t *testing.T, m *Machine) {
				idx := m.InternSym("loop")
				fnIdx := addFn(t, m, "loop", 1, 1, []Item{
					InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: Mem(RegFP, -5)}),
					InstrItem(Instr{Op: OpJEQ, A: R(RegRTA), B: ImmInt(0), C: Lbl("done")}),
					InstrItem(Instr{Op: OpSUB, A: R(RegRTA), B: ImmInt(1)}),
					InstrItem(Instr{Op: OpMOVP, TagArg: int64(TagFixnum), A: R(RegA), B: Idx(RegRTA, 0, NoReg, 0)}),
					InstrItem(Instr{Op: OpPUSH, A: R(RegA)}),
					InstrItem(Instr{Op: OpTCALL, A: Imm(Ptr(TagSymbol, uint64(idx))), TagArg: 1}),
					LabelItem("done"),
					InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(FixnumWord(99))}),
					InstrItem(Instr{Op: OpRET}),
				})
				m.SetSymbolFunction("loop", Ptr(TagFunc, uint64(fnIdx)))
			}},

		{name: "deep-call", fn: "deep", args: []Word{FixnumWord(100)},
			build: func(t *testing.T, m *Machine) {
				sym := m.InternSym("deep")
				fnIdx := addFn(t, m, "deep", 1, 1, []Item{
					InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: Mem(RegFP, -5)}),
					InstrItem(Instr{Op: OpJEQ, A: R(RegRTA), B: ImmInt(0), C: Lbl("base")}),
					InstrItem(Instr{Op: OpSUB, A: R(RegRTA), B: ImmInt(1)}),
					InstrItem(Instr{Op: OpMOVP, TagArg: int64(TagFixnum), A: R(RegA), B: Idx(RegRTA, 0, NoReg, 0)}),
					InstrItem(Instr{Op: OpPUSH, A: R(RegA)}),
					InstrItem(Instr{Op: OpCALL, A: Imm(Ptr(TagSymbol, uint64(sym))), TagArg: 1}),
					InstrItem(Instr{Op: OpPOP, A: R(RegA)}),
					InstrItem(Instr{Op: OpRET}),
					LabelItem("base"),
					InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(FixnumWord(0))}),
					InstrItem(Instr{Op: OpRET}),
				})
				m.SetSymbolFunction("deep", Ptr(TagFunc, uint64(fnIdx)))
			}},

		{name: "float-chain", fn: "f",
			build: func(t *testing.T, m *Machine) {
				addFn(t, m, "f", 0, 0, []Item{
					InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: Imm(RawFloat(3.0))}),
					InstrItem(Instr{Op: OpFMULT, A: R(RegRTA), B: Imm(RawFloat(4.0))}),
					InstrItem(Instr{Op: OpFADD, A: R(RegRTA), B: Imm(RawFloat(0.25))}),
					InstrItem(Instr{Op: OpFSQRT, A: R(RegRTA), B: R(RegRTA)}),
					InstrItem(Instr{Op: OpFSIN, A: R(RegRTB), B: R(RegRTA)}),
					InstrItem(Instr{Op: OpMOV, A: R(RegA), B: R(RegRTA)}),
					InstrItem(Instr{Op: OpCALLSQ, TagArg: SQFlonumCons}),
					InstrItem(Instr{Op: OpRET}),
				})
			}},

		{name: "sq-generic-mixed", fn: "g",
			args: []Word{FixnumWord(40), FixnumWord(2)},
			build: func(t *testing.T, m *Machine) {
				fl := m.ConsFlonum(0.5)
				addFn(t, m, "g", 2, 2, []Item{
					InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Mem(RegFP, -6)}),
					InstrItem(Instr{Op: OpMOV, A: R(RegB), B: Mem(RegFP, -5)}),
					InstrItem(Instr{Op: OpCALLSQ, TagArg: SQAdd}),
					// Contaminate: (40+2) + 0.5 through the generic path.
					InstrItem(Instr{Op: OpMOV, A: R(RegB), B: Imm(fl)}),
					InstrItem(Instr{Op: OpCALLSQ, TagArg: SQAdd}),
					InstrItem(Instr{Op: OpRET}),
				})
			}},

		{name: "cons-gc-churn", fn: "churn", args: []Word{FixnumWord(40)},
			gcAt: 64,
			build: func(t *testing.T, m *Machine) {
				// churn(n): build an n-cons list, dropping it each
				// iteration so the threshold collector runs repeatedly.
				addFn(t, m, "churn", 1, 1, []Item{
					InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: Mem(RegFP, -5)}),
					InstrItem(Instr{Op: OpMOV, A: R(RegB), B: Imm(NilWord)}),
					LabelItem("top"),
					InstrItem(Instr{Op: OpJEQ, A: R(RegRTA), B: ImmInt(0), C: Lbl("done")}),
					InstrItem(Instr{Op: OpMOVP, TagArg: int64(TagFixnum), A: R(RegA), B: Idx(RegRTA, 0, NoReg, 0)}),
					InstrItem(Instr{Op: OpCALLSQ, TagArg: SQCons}),
					InstrItem(Instr{Op: OpMOV, A: R(RegB), B: R(RegA)}),
					InstrItem(Instr{Op: OpSUB, A: R(RegRTA), B: ImmInt(1)}),
					InstrItem(Instr{Op: OpJMP, A: Lbl("top")}),
					LabelItem("done"),
					InstrItem(Instr{Op: OpMOV, A: R(RegA), B: R(RegB)}),
					InstrItem(Instr{Op: OpRET}),
				})
			}},

		{name: "special-binding", fn: "f",
			build: func(t *testing.T, m *Machine) {
				sym := m.InternSym("*depth*")
				m.SetGlobal("*depth*", FixnumWord(0))
				addFn(t, m, "f", 0, 0, []Item{
					InstrItem(Instr{Op: OpSPECBIND, TagArg: int64(sym), A: Imm(FixnumWord(42))}),
					InstrItem(Instr{Op: OpCALLSQ, TagArg: SQSpecFind, B: ImmInt(int64(sym))}),
					InstrItem(Instr{Op: OpCALLSQ, TagArg: SQSpecRead}),
					InstrItem(Instr{Op: OpSPECUNBIND, TagArg: 1}),
					InstrItem(Instr{Op: OpRET}),
				})
			}},

		{name: "catch-throw", fn: "c",
			build: func(t *testing.T, m *Machine) {
				tagSym := Ptr(TagSymbol, uint64(m.InternSym("out")))
				addFn(t, m, "c", 0, 0, []Item{
					InstrItem(Instr{Op: OpCATCH, A: Imm(tagSym), B: Lbl("handler")}),
					InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(tagSym)}),
					InstrItem(Instr{Op: OpMOV, A: R(RegB), B: Imm(FixnumWord(41))}),
					InstrItem(Instr{Op: OpCALLSQ, TagArg: SQThrow}),
					InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(FixnumWord(0))}),
					LabelItem("handler"),
					InstrItem(Instr{Op: OpRET}),
				})
			}},

		{name: "uncaught-throw", fn: "u", wantErr: "uncaught",
			build: func(t *testing.T, m *Machine) {
				addFn(t, m, "u", 0, 0, []Item{
					InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(FixnumWord(1))}),
					InstrItem(Instr{Op: OpMOV, A: R(RegB), B: Imm(FixnumWord(2))}),
					InstrItem(Instr{Op: OpCALLSQ, TagArg: SQThrow}),
					InstrItem(Instr{Op: OpRET}),
				})
			}},

		{name: "closure", fn: "outer", args: []Word{FixnumWord(32)},
			build: func(t *testing.T, m *Machine) {
				innerIdx := addFn(t, m, "inner", 1, 1, []Item{
					InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: Mem(RegEP, 1)}),
					InstrItem(Instr{Op: OpMOV, A: R(RegRTB), B: Mem(RegFP, -5)}),
					InstrItem(Instr{Op: OpADD, A: R(RegRTA), B: R(RegRTB)}),
					InstrItem(Instr{Op: OpMOVP, TagArg: int64(TagFixnum), A: R(RegA), B: Idx(RegRTA, 0, NoReg, 0)}),
					InstrItem(Instr{Op: OpRET}),
				})
				addFn(t, m, "outer", 1, 1, []Item{
					InstrItem(Instr{Op: OpENV, A: R(10), B: Imm(NilWord), TagArg: 1}),
					InstrItem(Instr{Op: OpMOV, A: Idx(10, 1, NoReg, 0), B: Mem(RegFP, -5)}),
					InstrItem(Instr{Op: OpCLOSE, A: R(11), B: R(10), TagArg: int64(innerIdx)}),
					InstrItem(Instr{Op: OpPUSH, A: Imm(FixnumWord(10))}),
					InstrItem(Instr{Op: OpCALL, A: R(11), TagArg: 1}),
					InstrItem(Instr{Op: OpPOP, A: R(RegA)}),
					InstrItem(Instr{Op: OpRET}),
				})
			}},

		{name: "restify", fn: "f",
			args: []Word{FixnumWord(1), FixnumWord(2), FixnumWord(3)},
			build: func(t *testing.T, m *Machine) {
				addFn(t, m, "f", 1, -1, []Item{
					InstrItem(Instr{Op: OpCALLSQ, TagArg: SQRestify, B: ImmInt(1)}),
					InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Mem(RegFP, -5)}),
					InstrItem(Instr{Op: OpRET}),
				})
			}},

		{name: "apply-list", fn: "ap",
			build: func(t *testing.T, m *Machine) {
				buildAdd2(t, m)
				addIdx := m.FuncNamed("add2")
				lst := m.Cons(FixnumWord(40), m.Cons(FixnumWord(2), NilWord))
				addFn(t, m, "ap", 0, 0, []Item{
					InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(Ptr(TagFunc, uint64(addIdx)))}),
					InstrItem(Instr{Op: OpMOV, A: R(RegB), B: Imm(lst)}),
					InstrItem(Instr{Op: OpCALLSQ, TagArg: SQApplyList}),
					InstrItem(Instr{Op: OpPOP, A: R(RegA)}),
					InstrItem(Instr{Op: OpRET}),
				})
			}},

		{name: "indexed-addressing", fn: "el", args: []Word{FixnumWord(2)},
			build: func(t *testing.T, m *Machine) {
				fa := m.FromValue(diffFloatArray())
				dataBase := int64(fa.Bits + 2)
				addFn(t, m, "el", 1, 1, []Item{
					InstrItem(Instr{Op: OpMOV, A: R(RegRTB), B: Mem(RegFP, -5)}),
					InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Idx(NoReg, dataBase, RegRTB, 0)}),
					InstrItem(Instr{Op: OpCALLSQ, TagArg: SQFlonumCons}),
					InstrItem(Instr{Op: OpRET}),
				})
			}},

		// The step limit must trip at the same original-instruction count
		// whether or not the spin loop's body was fused.
		{name: "step-limit", fn: "spin", stepLim: 1000, wantErr: "step limit",
			build: func(t *testing.T, m *Machine) {
				addFn(t, m, "spin", 0, 0, []Item{
					LabelItem("top"),
					InstrItem(Instr{Op: OpMOV, A: R(10), B: ImmInt(1)}),
					InstrItem(Instr{Op: OpMOV, A: R(11), B: R(10)}),
					InstrItem(Instr{Op: OpADD, A: R(RegRTA), B: R(11)}),
					InstrItem(Instr{Op: OpJMP, A: Lbl("top")}),
				})
			}},

		{name: "division-by-zero", fn: "d", wantErr: "division by zero",
			build: func(t *testing.T, m *Machine) {
				addFn(t, m, "d", 0, 0, []Item{
					InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: ImmInt(5)}),
					InstrItem(Instr{Op: OpDIV, A: R(RegRTA), B: ImmInt(0)}),
					InstrItem(Instr{Op: OpRET}),
				})
			}},
	}
}

// diffFloatArray is shared between the two machines of a differential
// run so both embed identical constants.
func diffFloatArray() *sexp.FloatArray {
	return &sexp.FloatArray{Dims: []int{3}, Data: []float64{1.5, 2.5, 3.5}}
}

// diffRun executes p on a fresh machine and returns it with the outcome.
func diffRun(t *testing.T, p diffProg, nofuse bool) (*Machine, Word, error) {
	t.Helper()
	m := New()
	m.SetNoFuse(nofuse)
	if p.stepLim > 0 {
		m.StepLimit = p.stepLim
	}
	if p.gcAt > 0 {
		m.SetGCThreshold(p.gcAt)
	}
	p.build(t, m)
	got, err := m.CallFunction(p.fn, p.args...)
	return m, got, err
}

func TestDifferentialFusedVsUnfused(t *testing.T) {
	anyFused := false
	for _, p := range diffCorpus() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			fm, fw, ferr := diffRun(t, p, false)
			um, uw, uerr := diffRun(t, p, true)

			if fm.FusedGroupCount() > 0 {
				anyFused = true
			}
			if um.FusedGroupCount() != 0 {
				t.Errorf("nofuse machine formed %d groups", um.FusedGroupCount())
			}

			// Outcome.
			if (ferr == nil) != (uerr == nil) {
				t.Fatalf("error divergence: fused=%v unfused=%v", ferr, uerr)
			}
			if p.wantErr == "" {
				if ferr != nil {
					t.Fatalf("run failed: %v", ferr)
				}
				if fw != uw {
					t.Errorf("return divergence: fused=%s unfused=%s", fw, uw)
				}
			} else {
				if ferr == nil || !strings.Contains(ferr.Error(), p.wantErr) {
					t.Fatalf("want error %q, got %v", p.wantErr, ferr)
				}
				if ferr.Error() != uerr.Error() {
					t.Errorf("error text divergence:\n  fused:   %v\n  unfused: %v", ferr, uerr)
				}
			}

			// Meters: instruction counts are in original-PC units, so
			// every field must agree, including cycle totals and stack
			// high water.
			if fm.Stats != um.Stats {
				t.Errorf("stats divergence:\n  fused:   %+v\n  unfused: %+v", fm.Stats, um.Stats)
			}
			if fm.GCMeters != um.GCMeters {
				t.Errorf("GC divergence:\n  fused:   %+v\n  unfused: %+v", fm.GCMeters, um.GCMeters)
			}
			if p.name == "cons-gc-churn" &&
				fm.GCMeters.Collections+fm.GCMeters.MinorCollections == 0 {
				t.Error("churn program never collected; GC path untested")
			}

			// Heap images, word for word.
			if len(fm.heap) != len(um.heap) {
				t.Fatalf("heap extent divergence: fused=%d unfused=%d", len(fm.heap), len(um.heap))
			}
			for i := range fm.heap {
				if fm.heap[i] != um.heap[i] {
					t.Fatalf("heap divergence at +%d: fused=%s unfused=%s",
						i, fm.heap[i], um.heap[i])
				}
			}
		})
	}
	if !anyFused {
		t.Error("no corpus program formed a superinstruction group; the differential is vacuous")
	}
}

// TestDifferentialStepLimitExact pins the step-limit trip point: the
// fused spin loop must retire exactly StepLimit original instructions
// before erroring, matching unfused dispatch instruction for instruction.
func TestDifferentialStepLimitExact(t *testing.T) {
	for _, nofuse := range []bool{false, true} {
		var p diffProg
		for _, c := range diffCorpus() {
			if c.name == "step-limit" {
				p = c
			}
		}
		m, _, err := diffRun(t, p, nofuse)
		if err == nil || !strings.Contains(err.Error(), "step limit") {
			t.Fatalf("nofuse=%v: want step-limit error, got %v", nofuse, err)
		}
		if m.Stats.Instrs != p.stepLim {
			t.Errorf("nofuse=%v: retired %d instructions at trip, want exactly %d",
				nofuse, m.Stats.Instrs, p.stepLim)
		}
	}
}
