package s1

import (
	"testing"

	"repro/internal/sexp"
)

// TestGCMarksDeepListIteratively pins the explicit-worklist mark phase:
// the recursive marker this replaced consumed one Go stack frame per
// cons cell, so a million-cell chain is the regression that would blow
// it up (or, at best, force huge goroutine stack growth).
func TestGCMarksDeepListIteratively(t *testing.T) {
	m := New()
	const cells = 1 << 20
	lst := NilWord
	for i := 0; i < cells; i++ {
		lst = m.Cons(FixnumWord(int64(i)), lst)
	}
	m.regs[RegA] = lst
	if got := m.GC(); got != 0 {
		t.Errorf("live deep list partially reclaimed: %d words", got)
	}
	m.regs[RegA] = NilWord
	if got := m.GC(); got != 2*cells {
		t.Errorf("dropped deep list reclaimed %d words, want %d", got, 2*cells)
	}
	if err := m.CheckHeapInvariants(); err != nil {
		t.Error(err)
	}
}

// TestLiveHeapWordsInvariant: the O(1) counter must agree with a full
// scan of the block records across allocation, full collection, reuse,
// and minor collection. CheckHeapInvariants performs exactly that
// comparison, so it is called at every phase boundary.
func TestLiveHeapWordsInvariant(t *testing.T) {
	m := New()
	check := func(when string) {
		t.Helper()
		if err := m.CheckHeapInvariants(); err != nil {
			t.Fatalf("%s: %v", when, err)
		}
	}
	keep := NilWord
	for i := 0; i < 100; i++ {
		keep = m.Cons(FixnumWord(int64(i)), keep)
		m.Cons(FixnumWord(int64(i)), NilWord) // garbage
	}
	m.regs[RegA] = keep
	check("after allocation")
	m.GC()
	check("after full collection")
	for i := 0; i < 50; i++ {
		m.Cons(FixnumWord(int64(i)), NilWord) // reuses freed blocks
	}
	check("after free-list reuse")
	m.MinorGC()
	check("after minor collection")
	if live := m.LiveHeapWords(); live != 200 {
		t.Errorf("live words = %d, want 200 (the kept 100-cons chain)", live)
	}
}

// TestGCFreeBigPruning: a big-block size class emptied by reuse must be
// deleted from freeBig, not left as a dead zero-length entry.
func TestGCFreeBigPruning(t *testing.T) {
	m := New()
	const big = gcSmallMax + 36
	m.gcAlloc(big) // unreferenced: garbage from birth
	m.regs[RegA] = NilWord
	m.GC()
	if got := len(m.freeBig[big]); got != 1 {
		t.Fatalf("freed big block not on freeBig[%d]: %d entries", big, got)
	}
	m.gcAlloc(big)
	if _, ok := m.freeBig[big]; ok {
		t.Errorf("emptied size class %d still present in freeBig", big)
	}
	if err := m.CheckHeapInvariants(); err != nil {
		t.Error(err)
	}
}

// TestMinorPromotesSurvivors: a minor collection tenures its survivors
// in place, and tenured blocks are invisible to later minors — even
// once dead, only a full collection reclaims them.
func TestMinorPromotesSurvivors(t *testing.T) {
	m := New()
	keep := m.Cons(FixnumWord(7), NilWord)
	m.Cons(FixnumWord(8), NilWord) // young garbage
	m.regs[RegA] = keep
	if got := m.MinorGC(); got != 2 {
		t.Errorf("minor reclaimed %d words, want 2 (the garbage cons)", got)
	}
	off := keep.Bits - HeapBase
	if !m.gcRecs[off].old {
		t.Error("minor survivor not promoted (old bit clear)")
	}
	if m.GCMeters.BlocksPromoted != 1 || m.GCMeters.WordsPromoted != 2 {
		t.Errorf("promotion meters %+v", m.GCMeters)
	}
	// Dead old blocks survive minors…
	m.regs[RegA] = NilWord
	if got := m.MinorGC(); got != 0 {
		t.Errorf("minor swept an old block: %d words", got)
	}
	if m.gcRecs[off].free {
		t.Fatal("old block freed by a minor collection")
	}
	// …and fall to the next full collection.
	if got := m.GC(); got != 2 {
		t.Errorf("full collection reclaimed %d words, want 2", got)
	}
	if err := m.CheckHeapInvariants(); err != nil {
		t.Error(err)
	}
}

// TestWriteBarrierOldToYoung: a young block reachable only through a
// store into an old block must survive a minor collection — the dirty
// card is its only tether. Exercised through both mutation paths, the
// checked Machine.store and the lowered-block storeFast.
func TestWriteBarrierOldToYoung(t *testing.T) {
	for _, path := range []string{"store", "storeFast"} {
		t.Run(path, func(t *testing.T) {
			m := New()
			keep := m.Cons(FixnumWord(1), NilWord)
			m.regs[RegA] = keep
			m.MinorGC() // promote keep
			young := m.Cons(FixnumWord(2), NilWord)
			// RPLACD keep young — the only reference to young is now the
			// cdr of the tenured cell.
			switch path {
			case "store":
				if err := m.store(keep.Bits+1, young); err != nil {
					t.Fatal(err)
				}
			case "storeFast":
				if !m.storeFast(keep.Bits+1, young) {
					t.Fatal("storeFast rejected a heap address")
				}
			}
			m.MinorGC()
			if m.gcRecs[young.Bits-HeapBase].free {
				t.Fatal("young block reachable only from an old block was swept: write barrier hole")
			}
			v, err := m.ToValue(keep)
			if err != nil || sexp.Print(v) != "(1 2)" {
				t.Errorf("structure after barrier-dependent minor: %v %v", v, err)
			}
			if err := m.CheckHeapInvariants(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestMinorBudgetEscalates: after a minor overruns -gc-minor-budget, the
// next automatic collection must be full (which resets the nursery and
// the pressure that made the minor slow).
func TestMinorBudgetEscalates(t *testing.T) {
	m := New()
	m.SetGCThreshold(64)
	m.SetGCMinorBudget(1) // 1ns: any real minor overruns
	m.regs[RegA] = NilWord
	for i := 0; i < 400 && m.GCMeters.Collections == 0; i++ {
		m.Cons(FixnumWord(int64(i)), NilWord)
	}
	if m.GCMeters.MinorCollections == 0 {
		t.Error("no minor collection ran before escalation")
	}
	if m.GCMeters.Collections == 0 {
		t.Error("over-budget minor never escalated to a full collection")
	}
	if m.minorOverBudget {
		t.Error("escalation did not clear the over-budget latch")
	}
}

// TestNoGenForcesFull: with generations disabled every automatic
// collection is full.
func TestNoGenForcesFull(t *testing.T) {
	m := New()
	m.SetGCNoGen(true)
	m.SetGCThreshold(64)
	m.regs[RegA] = NilWord
	for i := 0; i < 200; i++ {
		m.Cons(FixnumWord(int64(i)), NilWord)
	}
	if m.GCMeters.Collections == 0 {
		t.Error("auto GC never triggered")
	}
	if m.GCMeters.MinorCollections != 0 {
		t.Errorf("nogen machine ran %d minor collections", m.GCMeters.MinorCollections)
	}
}

// TestStressMinorForcesMinors: -gc-stress-minor runs a minor before
// every allocation.
func TestStressMinorForcesMinors(t *testing.T) {
	m := New()
	m.SetGCStressMinor(true)
	m.regs[RegA] = NilWord
	for i := 0; i < 10; i++ {
		m.Cons(FixnumWord(int64(i)), NilWord)
	}
	if got := m.GCMeters.MinorCollections; got < 10 {
		t.Errorf("stress-minor ran %d minors for 10 allocations", got)
	}
	if err := m.CheckHeapInvariants(); err != nil {
		t.Error(err)
	}
}

// TestPromotionPressureForcesFull: a workload that tenures everything it
// allocates must eventually get a full collection from collectAuto —
// promotion pressure is the only thing that reclaims a dying old
// generation when no minor ever overruns and nogen is off.
func TestPromotionPressureForcesFull(t *testing.T) {
	m := New()
	m.SetGCThreshold(64)
	lst := NilWord
	for i := 0; i < 2000 && m.GCMeters.Collections == 0; i++ {
		lst = m.Cons(FixnumWord(int64(i)), lst)
		m.regs[RegA] = lst // everything survives, so every minor promotes
	}
	if m.GCMeters.MinorCollections == 0 {
		t.Error("no minors ran under promotion pressure")
	}
	if m.GCMeters.Collections == 0 {
		t.Error("promotion pressure never escalated to a full collection")
	}
	if err := m.CheckHeapInvariants(); err != nil {
		t.Error(err)
	}
}
