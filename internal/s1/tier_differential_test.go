package s1

// Differential suite for tiered execution and mid-group landings
// (DESIGN.md §12). Every program runs under five engine configurations —
// default tiering, forced-hot tiering (every function lowered at
// install), -notier (static fusion only), -nofuse (plain decoded
// dispatch), and -nofuse -notier — and all five executions must be
// indistinguishable: same return word or error text, same Stats, same GC
// activity, the same heap image word for word, and the same -max-steps
// trip points. The dedicated mid-group programs aim control transfers
// (jump targets, catch handlers, call returns) into the interior of what
// both the static fuser and the tier's basic-block lowering would
// otherwise tile over, pinning the identity back-mapping invariant.

import (
	"strings"
	"testing"
)

type tierConfig struct {
	name  string
	apply func(m *Machine)
}

// tierConfigs returns the engine configurations under test. apply runs
// before the program is installed so forced-hot promotion happens at
// AddFunction time, like core.NewSystem wiring would.
func tierConfigs() []tierConfig {
	return []tierConfig{
		{name: "tiered", apply: func(m *Machine) {}},
		{name: "forcehot", apply: func(m *Machine) { m.SetHotThreshold(0) }},
		{name: "notier", apply: func(m *Machine) { m.SetNoTier() }},
		{name: "nofuse", apply: func(m *Machine) { m.SetNoFuse(true) }},
		{name: "nofuse-notier", apply: func(m *Machine) {
			m.SetNoFuse(true)
			m.SetNoTier()
		}},
	}
}

// runTierConfig executes p on a fresh machine under cfg.
func runTierConfig(t *testing.T, p diffProg, cfg tierConfig) (*Machine, Word, error) {
	t.Helper()
	m := New()
	cfg.apply(m)
	if p.stepLim > 0 {
		m.StepLimit = p.stepLim
	}
	if p.gcAt > 0 {
		m.SetGCThreshold(p.gcAt)
	}
	p.build(t, m)
	got, err := m.CallFunction(p.fn, p.args...)
	return m, got, err
}

// assertSameOutcome compares a run against the reference run.
func assertSameOutcome(t *testing.T, cfg string, p diffProg,
	rm *Machine, rw Word, rerr error, m *Machine, w Word, err error) {
	t.Helper()
	if (err == nil) != (rerr == nil) {
		t.Fatalf("%s: error divergence: got %v, reference %v", cfg, err, rerr)
	}
	if rerr != nil {
		if err.Error() != rerr.Error() {
			t.Errorf("%s: error text divergence:\n  got:       %v\n  reference: %v", cfg, err, rerr)
		}
	} else if w != rw {
		t.Errorf("%s: return divergence: got %s, reference %s", cfg, w, rw)
	}
	if m.Stats != rm.Stats {
		t.Errorf("%s: stats divergence:\n  got:       %+v\n  reference: %+v", cfg, m.Stats, rm.Stats)
	}
	if m.GCMeters != rm.GCMeters {
		t.Errorf("%s: GC divergence:\n  got:       %+v\n  reference: %+v", cfg, m.GCMeters, rm.GCMeters)
	}
	if len(m.heap) != len(rm.heap) {
		t.Fatalf("%s: heap extent divergence: got %d, reference %d", cfg, len(m.heap), len(rm.heap))
	}
	for i := range m.heap {
		if m.heap[i] != rm.heap[i] {
			t.Fatalf("%s: heap divergence at +%d: got %s, reference %s",
				cfg, i, m.heap[i], rm.heap[i])
		}
	}
}

// TestTierDifferentialCorpus runs the whole opcode-family corpus under
// every engine configuration against the plainest one. deep-call (100
// recursive CALLs) and tail-loop (500 self-TCALLs) cross the default
// threshold mid-run, so re-optimizing a function live on the call stack
// is exercised here, not just forced promotion at install.
func TestTierDifferentialCorpus(t *testing.T) {
	for _, p := range diffCorpus() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			cfgs := tierConfigs()
			ref := cfgs[len(cfgs)-1] // nofuse-notier
			rm, rw, rerr := runTierConfig(t, p, ref)
			for _, cfg := range cfgs[:len(cfgs)-1] {
				m, w, err := runTierConfig(t, p, cfg)
				assertSameOutcome(t, cfg.name, p, rm, rw, rerr, m, w, err)
			}
		})
	}
}

// midGroupCorpus holds programs whose control transfers land where the
// tiling engines would otherwise fuse straight-line runs.
func midGroupCorpus() []diffProg {
	return []diffProg{
		// A back-edge targeting the middle of a straight-line run: the
		// static fuser tiles the run from the top, so "mid" falls inside
		// a group; the tier splits a block there.
		{name: "jump-mid-run", fn: "jmr",
			build: func(t *testing.T, m *Machine) {
				addFn(t, m, "jmr", 0, 0, []Item{
					InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: ImmInt(4)}),
					InstrItem(Instr{Op: OpMOV, A: R(10), B: ImmInt(0)}),
					InstrItem(Instr{Op: OpMOV, A: R(11), B: ImmInt(0)}),
					LabelItem("mid"),
					InstrItem(Instr{Op: OpMOV, A: R(12), B: ImmInt(1)}),
					InstrItem(Instr{Op: OpADD, A: R(10), B: R(12)}),
					InstrItem(Instr{Op: OpADD, A: R(11), B: ImmInt(2)}),
					InstrItem(Instr{Op: OpSUB, A: R(RegRTA), B: ImmInt(1)}),
					InstrItem(Instr{Op: OpJNE, A: R(RegRTA), B: ImmInt(0), C: Lbl("mid")}),
					InstrItem(Instr{Op: OpADD, A: R(10), B: R(11)}),
					InstrItem(Instr{Op: OpMOVP, TagArg: int64(TagFixnum), A: R(RegA), B: Idx(10, 0, NoReg, 0)}),
					InstrItem(Instr{Op: OpRET}),
				})
			}},

		// A THROW unwinding to a handler placed mid straight-line run.
		{name: "throw-mid-run", fn: "tmr",
			build: func(t *testing.T, m *Machine) {
				tagSym := Ptr(TagSymbol, uint64(m.InternSym("tag")))
				addFn(t, m, "tmr", 0, 0, []Item{
					InstrItem(Instr{Op: OpCATCH, A: Imm(tagSym), B: Lbl("handler")}),
					InstrItem(Instr{Op: OpMOV, A: R(10), B: ImmInt(1)}),
					InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(tagSym)}),
					InstrItem(Instr{Op: OpMOV, A: R(RegB), B: Imm(FixnumWord(21))}),
					InstrItem(Instr{Op: OpCALLSQ, TagArg: SQThrow}),
					// Fusable run the handler label interrupts.
					InstrItem(Instr{Op: OpMOV, A: R(10), B: ImmInt(2)}),
					InstrItem(Instr{Op: OpMOV, A: R(11), B: ImmInt(3)}),
					LabelItem("handler"),
					InstrItem(Instr{Op: OpMOV, A: R(12), B: ImmInt(4)}),
					InstrItem(Instr{Op: OpRET}),
				})
			}},

		// A call whose return point sits before more straight-line code,
		// inside what an unsplit tiling would group.
		{name: "ret-mid-run", fn: "rmr", args: []Word{FixnumWord(20)},
			build: func(t *testing.T, m *Machine) {
				buildAdd2(t, m)
				addSym := m.InternSym("add2")
				m.SetSymbolFunction("add2", Ptr(TagFunc, uint64(m.FuncNamed("add2"))))
				addFn(t, m, "rmr", 1, 1, []Item{
					InstrItem(Instr{Op: OpMOV, A: R(10), B: Mem(RegFP, -5)}),
					InstrItem(Instr{Op: OpPUSH, A: R(10)}),
					InstrItem(Instr{Op: OpPUSH, A: Imm(FixnumWord(22))}),
					InstrItem(Instr{Op: OpCALL, A: Imm(Ptr(TagSymbol, uint64(addSym))), TagArg: 2}),
					InstrItem(Instr{Op: OpPOP, A: R(RegA)}),
					InstrItem(Instr{Op: OpMOV, A: R(11), B: R(RegA)}),
					InstrItem(Instr{Op: OpMOV, A: R(12), B: R(11)}),
					InstrItem(Instr{Op: OpMOV, A: R(RegA), B: R(12)}),
					InstrItem(Instr{Op: OpRET}),
				})
			}},
	}
}

func TestTierDifferentialMidGroupLandings(t *testing.T) {
	for _, p := range midGroupCorpus() {
		p := p
		t.Run(p.name, func(t *testing.T) {
			cfgs := tierConfigs()
			ref := cfgs[len(cfgs)-1]
			rm, rw, rerr := runTierConfig(t, p, ref)
			for _, cfg := range cfgs[:len(cfgs)-1] {
				m, w, err := runTierConfig(t, p, cfg)
				assertSameOutcome(t, cfg.name, p, rm, rw, rerr, m, w, err)
			}
		})
	}
}

// stepLimitSpin is a spin loop whose body is one long straight-line
// block under tiering; the -max-steps sweep below must trip inside it
// at every possible offset.
func stepLimitSpin() diffProg {
	return diffProg{name: "spin-block", fn: "spin2", wantErr: "step limit",
		build: func(t *testing.T, m *Machine) {
			addFn(t, m, "spin2", 0, 0, []Item{
				LabelItem("top"),
				InstrItem(Instr{Op: OpMOV, A: R(10), B: ImmInt(1)}),
				InstrItem(Instr{Op: OpMOV, A: R(11), B: R(10)}),
				InstrItem(Instr{Op: OpADD, A: R(RegRTA), B: R(11)}),
				InstrItem(Instr{Op: OpMOV, A: R(12), B: ImmInt(2)}),
				InstrItem(Instr{Op: OpADD, A: R(12), B: ImmInt(3)}),
				InstrItem(Instr{Op: OpMOV, A: R(13), B: R(12)}),
				InstrItem(Instr{Op: OpJMP, A: Lbl("top")}),
			})
		}}
}

// TestTierDifferentialStepLimitSweep trips -max-steps at every offset
// within the lowered block: the retired-instruction count at the trip
// must equal the limit exactly under every configuration.
func TestTierDifferentialStepLimitSweep(t *testing.T) {
	for _, cfg := range tierConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			for lim := int64(1); lim <= 29; lim++ {
				p := stepLimitSpin()
				p.stepLim = lim
				m, _, err := runTierConfig(t, p, cfg)
				if err == nil || !strings.Contains(err.Error(), "step limit") {
					t.Fatalf("limit %d: want step-limit error, got %v", lim, err)
				}
				if m.Stats.Instrs != lim {
					t.Errorf("limit %d: retired %d instructions at trip", lim, m.Stats.Instrs)
				}
			}
		})
	}
}

// TestTierReentrantPromotion drives a self-recursive function across its
// hot threshold mid-recursion: the function is re-optimized while its
// frames are live on the machine stack and on the tier shadow stack, and
// every outstanding return then lands in the re-fused code. The run must
// match the -notier reference exactly.
func TestTierReentrantPromotion(t *testing.T) {
	prog := diffProg{name: "deep-reentrant", fn: "deep", args: []Word{FixnumWord(150)}}
	for _, c := range diffCorpus() {
		if c.name == "deep-call" {
			prog.build = c.build
		}
	}
	ref, rw, rerr := runTierConfig(t, prog, tierConfig{name: "notier",
		apply: func(m *Machine) { m.SetNoTier() }})
	m, w, err := runTierConfig(t, prog, tierConfig{name: "threshold-7",
		apply: func(m *Machine) { m.SetHotThreshold(7) }})
	assertSameOutcome(t, "threshold-7", prog, ref, rw, rerr, m, w, err)
	if ts := m.TierStats(); ts.Promotions == 0 {
		t.Error("deep recursion never promoted; re-entrancy untested")
	}
}
