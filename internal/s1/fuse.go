package s1

// Peephole superinstruction fusion (DESIGN.md §10). The fuser tiles each
// function's decoded stream with groups of adjacent instructions and
// replaces the group head's decFused entry with a single closure that
// runs the constituents back to back, eliminating the Run-loop overhead
// (halt/step-limit/bounds checks and dispatch) between them.
//
// Grouping is structural rather than an enumerated pair list: a group is
// up to maxFuse instructions where every member but the last always falls
// through (fusableInterior) and the last may transfer control
// (fusableLast). That single rule covers the hot shapes our codegen
// actually emits — constant-load+arith (MOV;ADD), compare+conditional-
// jump (MOV;JNIL, SUB;JEQ), argument staging (MOV;MOV;CALLSQ), and
// push+push+call (PUSH;PUSH;PUSH;TCALL) — and MOV-to-self elimination
// happens at decode time (decMOV). The formed signatures are recorded in
// Machine.FuseGroups for reporting.
//
// Correctness invariants:
//   - Constituents keep their own base closures, which retire exactly one
//     architectural instruction each (tick + stats + profile note), so
//     Stats, -profile output and -max-steps accounting are identical to
//     unfused dispatch.
//   - Only the head's decFused entry changes. A jump, call return, or
//     throw landing in the middle of a group dispatches that PC's own
//     unfused entry — the back-mapping from decoded entries to original
//     PCs is the identity, so there is no mapping table to consult.
//   - Groups never straddle a function entry (fuseRange boundary set), so
//     a group is always within one function's code.
//   - Run consults dinstr.n before dispatching a fused head: if the group
//     would overshoot StepLimit, it falls back to the base entry, making
//     the step-limit trip point exact in original-instruction units.

// maxFuse bounds superinstruction length. Four covers the longest hot
// shape in our listings (PUSH;PUSH;PUSH;TCALL) without building closure
// chains of unbounded depth.
const maxFuse = 4

// fuseRange tiles decFused[lo:hi) with superinstruction groups.
// Function entries are group boundaries; the entry set is maintained
// incrementally by AddFunction (rebuilding it here made each decode
// O(functions), turning program loading quadratic).
func (m *Machine) fuseRange(lo, hi int) {
	for pc := lo; pc < hi; {
		pc += m.tryFuse(pc, hi, m.entrySet)
	}
}

// tryFuse forms the longest legal group starting at pc and returns the
// number of instructions consumed (1 when no group forms).
func (m *Machine) tryFuse(pc, hi int, bounds map[int]bool) int {
	if !fusableInterior(m.Code[pc].Op) {
		return 1
	}
	n := 1
	for n < maxFuse && pc+n < hi && !bounds[pc+n] &&
		fusableInterior(m.Code[pc+n].Op) {
		n++
	}
	if n < maxFuse && pc+n < hi && !bounds[pc+n] &&
		fusableLast(m.Code[pc+n].Op) {
		n++
	}
	if n < 2 {
		return 1
	}
	parts := make([]dexec, n)
	sig := ""
	for i := range parts {
		parts[i] = m.decBase[pc+i].run
		if i > 0 {
			sig += "+"
		}
		sig += m.Code[pc+i].Op.String()
	}
	m.decFused[pc] = dinstr{run: composeGroup(parts), n: int32(n)}
	if m.fuseGroups == nil {
		m.fuseGroups = map[string]int64{}
	}
	m.fuseGroups[sig]++
	return n
}

// composeGroup chains constituent closures. Each non-final constituent
// falls through on success (setting m.pc to the next constituent's index,
// preserving the decode-entry invariant); any error or panic aborts the
// group with m.pc still on the faulting constituent.
func composeGroup(parts []dexec) dexec {
	switch len(parts) {
	case 2:
		a, b := parts[0], parts[1]
		return func(m *Machine) error {
			if err := a(m); err != nil {
				return err
			}
			return b(m)
		}
	case 3:
		a, b, c := parts[0], parts[1], parts[2]
		return func(m *Machine) error {
			if err := a(m); err != nil {
				return err
			}
			if err := b(m); err != nil {
				return err
			}
			return c(m)
		}
	case 4:
		a, b, c, d := parts[0], parts[1], parts[2], parts[3]
		return func(m *Machine) error {
			if err := a(m); err != nil {
				return err
			}
			if err := b(m); err != nil {
				return err
			}
			if err := c(m); err != nil {
				return err
			}
			return d(m)
		}
	}
	return parts[0]
}

// FuseGroups returns the superinstruction groups formed at decode time,
// keyed by opcode signature (e.g. "PUSH+PUSH+TCALL" -> static count).
// Nil when fusion is disabled or nothing fused.
func (m *Machine) FuseGroups() map[string]int64 { return m.fuseGroups }

// FusedGroupCount is the total number of static superinstruction groups.
func (m *Machine) FusedGroupCount() int64 {
	var n int64
	for _, c := range m.fuseGroups {
		n += c
	}
	return n
}
