// GC benchmark behind BENCH_gc.json: the cons-heavy kernel under the
// generational default and under -gc-nogen, with every collection pause
// captured through the machine's event hook. The metrics this reports —
// steps/sec for the speedup ratio, minor/full pause percentiles for the
// bounded-pause claim — are exactly what scripts/bench-runtime.sh
// records.
//
//	go test -bench BenchmarkGC -benchtime=1x ./internal/s1/
package s1_test

import (
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/s1"
)

// pctile returns the p-th percentile of ds (nearest-rank), or 0 when
// empty.
func pctile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

func benchGCConfig(b *testing.B, opts core.Options) {
	b.Helper()
	var k runtimeKernel
	for _, cand := range runtimeKernels() {
		if cand.name == "gc-cons" {
			k = cand
		}
	}
	sys := core.NewSystem(opts)
	sys.Machine.SetGCThreshold(k.gcAt)
	if err := sys.LoadString(k.src); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < s1.DefaultHotThreshold+1; i++ {
		if _, err := sys.Call(k.fn, k.args...); err != nil {
			b.Fatal(err)
		}
	}
	sys.ResetStats()
	// Capture every collection pause in the timed region. The hook fires
	// only on collections, so its cost is invisible next to the
	// collections themselves.
	var minors, fulls []time.Duration
	sys.Machine.OnEvent = func(kind, unit string, d time.Duration) {
		switch kind {
		case "gc-pause":
			fulls = append(fulls, d)
		case "gc-minor-pause":
			minors = append(minors, d)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Call(k.fn, k.args...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := sys.Stats()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(st.Instrs)/secs, "steps/sec")
	}
	gm := sys.Machine.GCMeters
	b.ReportMetric(float64(gm.Collections), "fulls")
	b.ReportMetric(float64(gm.MinorCollections), "minors")
	b.ReportMetric(float64(gm.WordsPromoted), "promoted-words")
	b.ReportMetric(float64(pctile(minors, 0.50))/1e3, "minor-p50-us")
	b.ReportMetric(float64(pctile(minors, 0.99))/1e3, "minor-p99-us")
	b.ReportMetric(float64(pctile(fulls, 0.50))/1e3, "full-p50-us")
	b.ReportMetric(float64(pctile(fulls, 0.99))/1e3, "full-p99-us")
}

// BenchmarkGC runs the gc-cons kernel with generational collection on
// (gen) and off (nogen). Within one invocation the two sub-benchmarks
// share everything but the collector mode, so the steps/sec ratio is the
// generational speedup and the pause percentiles compare minor against
// full pauses directly.
func BenchmarkGC(b *testing.B) {
	b.Run("gen", func(b *testing.B) { benchGCConfig(b, core.Options{}) })
	b.Run("nogen", func(b *testing.B) { benchGCConfig(b, core.Options{GCNoGen: true}) })
}
