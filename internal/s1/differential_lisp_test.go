// Lisp-level differential: the bench kernels compiled by the full
// pipeline must behave identically under fused and -nofuse dispatch —
// same printed results, same machine meters, same GC activity, and
// (satellite of the decoded-engine work) byte-identical -profile output,
// since fused superinstructions attribute cycles to their constituent
// original opcodes.
package s1_test

import (
	"os"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sexp"
)

// lispDiffSystem compiles k's source into a fresh system. CI runs this
// whole file in several tiered-execution configurations (DESIGN.md §12):
// S1_TIER_MODE=notier disables the tier entirely, S1_TIER_MODE=forcehot
// promotes every function to lowered blocks at load time. Either way all
// the equalities below must keep holding.
func lispDiffSystem(t *testing.T, k runtimeKernel, nofuse, profile bool) *core.System {
	t.Helper()
	opts := core.Options{Constants: k.consts, NoFuse: nofuse}
	switch mode := os.Getenv("S1_TIER_MODE"); mode {
	case "":
	case "notier":
		opts.NoTier = true
	case "forcehot":
		opts.HotThreshold = -1
	default:
		t.Fatalf("unknown S1_TIER_MODE %q", mode)
	}
	applyGCModeEnv(t, &opts)
	sys := core.NewSystem(opts)
	if profile {
		sys.EnableProfile()
	}
	if k.gcAt > 0 {
		sys.Machine.SetGCThreshold(k.gcAt)
	}
	if err := sys.LoadString(k.src); err != nil {
		t.Fatal(err)
	}
	sys.ResetStats()
	return sys
}

func TestLispDifferentialFusedVsUnfused(t *testing.T) {
	for _, k := range runtimeKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			fused := lispDiffSystem(t, k, false, false)
			unfused := lispDiffSystem(t, k, true, false)
			fv, ferr := fused.Call(k.fn, k.args...)
			uv, uerr := unfused.Call(k.fn, k.args...)
			if ferr != nil || uerr != nil {
				t.Fatalf("fused err=%v unfused err=%v", ferr, uerr)
			}
			if sexp.Print(fv) != sexp.Print(uv) {
				t.Errorf("result divergence: fused=%s unfused=%s",
					sexp.Print(fv), sexp.Print(uv))
			}
			if *fused.Stats() != *unfused.Stats() {
				t.Errorf("stats divergence:\n  fused:   %+v\n  unfused: %+v",
					*fused.Stats(), *unfused.Stats())
			}
			if fused.Machine.GCMeters != unfused.Machine.GCMeters {
				t.Errorf("GC divergence:\n  fused:   %+v\n  unfused: %+v",
					fused.Machine.GCMeters, unfused.Machine.GCMeters)
			}
			if fused.Machine.FusedGroupCount() == 0 {
				t.Errorf("%s compiled to no superinstruction groups", k.name)
			}
		})
	}
}

// TestLispDifferentialTierModes pins tiered execution at the Lisp level:
// each compiled kernel runs under the default tier, with every function
// forced hot at load, and with the tier disabled — and the three runs
// must agree on printed result, machine meters, and GC activity. The
// forced-hot leg must actually have promoted something, or the mode
// proves nothing.
func TestLispDifferentialTierModes(t *testing.T) {
	modes := []struct {
		name string
		opts func(o *core.Options)
	}{
		{"tiered", func(o *core.Options) {}},
		{"forcehot", func(o *core.Options) { o.HotThreshold = -1 }},
		{"notier", func(o *core.Options) { o.NoTier = true }},
	}
	for _, k := range runtimeKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			type outcome struct {
				sys *core.System
				val string
			}
			runs := map[string]outcome{}
			for _, mode := range modes {
				opts := core.Options{Constants: k.consts}
				mode.opts(&opts)
				applyGCModeEnv(t, &opts)
				sys := core.NewSystem(opts)
				if k.gcAt > 0 {
					sys.Machine.SetGCThreshold(k.gcAt)
				}
				if err := sys.LoadString(k.src); err != nil {
					t.Fatal(err)
				}
				sys.ResetStats()
				v, err := sys.Call(k.fn, k.args...)
				if err != nil {
					t.Fatalf("%s: %v", mode.name, err)
				}
				runs[mode.name] = outcome{sys: sys, val: sexp.Print(v)}
			}
			ref := runs["notier"]
			for _, name := range []string{"tiered", "forcehot"} {
				got := runs[name]
				if got.val != ref.val {
					t.Errorf("%s result divergence: %s vs %s", name, got.val, ref.val)
				}
				if *got.sys.Stats() != *ref.sys.Stats() {
					t.Errorf("%s stats divergence:\n  %s: %+v\n  notier: %+v",
						name, name, *got.sys.Stats(), *ref.sys.Stats())
				}
				if got.sys.Machine.GCMeters != ref.sys.Machine.GCMeters {
					t.Errorf("%s GC divergence:\n  %s: %+v\n  notier: %+v",
						name, name, got.sys.Machine.GCMeters, ref.sys.Machine.GCMeters)
				}
			}
			if ts := runs["forcehot"].sys.Machine.TierStats(); ts.Promotions == 0 {
				t.Error("forced-hot leg promoted nothing")
			}
		})
	}
}

// TestLispDifferentialGCStress re-runs each kernel with a collection
// forced before every allocation. Results must match the unstressed run
// — any divergence or crash means some mid-construction structure was
// reachable only from host locals — and the allocator's block records
// must stay consistent at every step's end.
func TestLispDifferentialGCStress(t *testing.T) {
	for _, k := range runtimeKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			plain := lispDiffSystem(t, k, false, false)
			stressed := lispDiffSystem(t, k, false, false)
			stressed.Machine.SetGCStress(true)
			pv, perr := plain.Call(k.fn, k.args...)
			sv, serr := stressed.Call(k.fn, k.args...)
			if perr != nil || serr != nil {
				t.Fatalf("plain err=%v stressed err=%v", perr, serr)
			}
			if sexp.Print(pv) != sexp.Print(sv) {
				t.Errorf("result divergence under gc-stress: plain=%s stressed=%s",
					sexp.Print(pv), sexp.Print(sv))
			}
			if err := stressed.Machine.CheckHeapInvariants(); err != nil {
				t.Errorf("heap invariants after stressed run: %v", err)
			}
		})
	}
}

// TestProfileStableAcrossFusion runs each kernel under -profile with and
// without fusion and requires identical profile tables: opcode execs and
// cycles, function attribution, and high-water marks. Only the GC-pause
// line carries wall-clock durations, so it is excluded.
func TestProfileStableAcrossFusion(t *testing.T) {
	stripWallClock := func(s string) string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, ";; gc:") {
				continue
			}
			out = append(out, line)
		}
		return strings.Join(out, "\n")
	}
	for _, k := range runtimeKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			var bufs [2]strings.Builder
			for i, nofuse := range []bool{false, true} {
				sys := lispDiffSystem(t, k, nofuse, true)
				if _, err := sys.Call(k.fn, k.args...); err != nil {
					t.Fatal(err)
				}
				sys.Machine.WriteProfile(&bufs[i])
			}
			fusedP, unfusedP := stripWallClock(bufs[0].String()), stripWallClock(bufs[1].String())
			if fusedP != unfusedP {
				t.Errorf("profile diverges across -nofuse:\n--- fused ---\n%s\n--- unfused ---\n%s",
					fusedP, unfusedP)
			}
		})
	}
}
