// Lisp-level differential: the bench kernels compiled by the full
// pipeline must behave identically under fused and -nofuse dispatch —
// same printed results, same machine meters, same GC activity, and
// (satellite of the decoded-engine work) byte-identical -profile output,
// since fused superinstructions attribute cycles to their constituent
// original opcodes.
package s1_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sexp"
)

// lispDiffSystem compiles k's source into a fresh system.
func lispDiffSystem(t *testing.T, k runtimeKernel, nofuse, profile bool) *core.System {
	t.Helper()
	sys := core.NewSystem(core.Options{Constants: k.consts, NoFuse: nofuse})
	if profile {
		sys.EnableProfile()
	}
	if k.gcAt > 0 {
		sys.Machine.SetGCThreshold(k.gcAt)
	}
	if err := sys.LoadString(k.src); err != nil {
		t.Fatal(err)
	}
	sys.ResetStats()
	return sys
}

func TestLispDifferentialFusedVsUnfused(t *testing.T) {
	for _, k := range runtimeKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			fused := lispDiffSystem(t, k, false, false)
			unfused := lispDiffSystem(t, k, true, false)
			fv, ferr := fused.Call(k.fn, k.args...)
			uv, uerr := unfused.Call(k.fn, k.args...)
			if ferr != nil || uerr != nil {
				t.Fatalf("fused err=%v unfused err=%v", ferr, uerr)
			}
			if sexp.Print(fv) != sexp.Print(uv) {
				t.Errorf("result divergence: fused=%s unfused=%s",
					sexp.Print(fv), sexp.Print(uv))
			}
			if *fused.Stats() != *unfused.Stats() {
				t.Errorf("stats divergence:\n  fused:   %+v\n  unfused: %+v",
					*fused.Stats(), *unfused.Stats())
			}
			if fused.Machine.GCMeters != unfused.Machine.GCMeters {
				t.Errorf("GC divergence:\n  fused:   %+v\n  unfused: %+v",
					fused.Machine.GCMeters, unfused.Machine.GCMeters)
			}
			if fused.Machine.FusedGroupCount() == 0 {
				t.Errorf("%s compiled to no superinstruction groups", k.name)
			}
		})
	}
}

// TestLispDifferentialGCStress re-runs each kernel with a collection
// forced before every allocation. Results must match the unstressed run
// — any divergence or crash means some mid-construction structure was
// reachable only from host locals — and the allocator's block records
// must stay consistent at every step's end.
func TestLispDifferentialGCStress(t *testing.T) {
	for _, k := range runtimeKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			plain := lispDiffSystem(t, k, false, false)
			stressed := lispDiffSystem(t, k, false, false)
			stressed.Machine.SetGCStress(true)
			pv, perr := plain.Call(k.fn, k.args...)
			sv, serr := stressed.Call(k.fn, k.args...)
			if perr != nil || serr != nil {
				t.Fatalf("plain err=%v stressed err=%v", perr, serr)
			}
			if sexp.Print(pv) != sexp.Print(sv) {
				t.Errorf("result divergence under gc-stress: plain=%s stressed=%s",
					sexp.Print(pv), sexp.Print(sv))
			}
			if err := stressed.Machine.CheckHeapInvariants(); err != nil {
				t.Errorf("heap invariants after stressed run: %v", err)
			}
		})
	}
}

// TestProfileStableAcrossFusion runs each kernel under -profile with and
// without fusion and requires identical profile tables: opcode execs and
// cycles, function attribution, and high-water marks. Only the GC-pause
// line carries wall-clock durations, so it is excluded.
func TestProfileStableAcrossFusion(t *testing.T) {
	stripWallClock := func(s string) string {
		var out []string
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, ";; gc:") {
				continue
			}
			out = append(out, line)
		}
		return strings.Join(out, "\n")
	}
	for _, k := range runtimeKernels() {
		k := k
		t.Run(k.name, func(t *testing.T) {
			var bufs [2]strings.Builder
			for i, nofuse := range []bool{false, true} {
				sys := lispDiffSystem(t, k, nofuse, true)
				if _, err := sys.Call(k.fn, k.args...); err != nil {
					t.Fatal(err)
				}
				sys.Machine.WriteProfile(&bufs[i])
			}
			fusedP, unfusedP := stripWallClock(bufs[0].String()), stripWallClock(bufs[1].String())
			if fusedP != unfusedP {
				t.Errorf("profile diverges across -nofuse:\n--- fused ---\n%s\n--- unfused ---\n%s",
					fusedP, unfusedP)
			}
		})
	}
}
