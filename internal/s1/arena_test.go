package s1

import (
	"testing"

	"repro/internal/sexp"
)

// TestArenaRecyclesStorage: release-then-adopt hands the next machine
// the previous one's backing arrays, cleared of everything the previous
// tenant wrote.
func TestArenaRecyclesStorage(t *testing.T) {
	ar := &Arena{}
	m1 := NewFromArena(ar)
	lst := NilWord
	for i := 0; i < 100; i++ {
		lst = m1.Cons(FixnumWord(int64(i)), lst)
	}
	m1.regs[RegA] = lst
	m1.GC()
	heapCap := cap(m1.heap)
	if heapCap == 0 {
		t.Fatal("first tenant never grew the heap")
	}
	if !m1.ReleaseArena() {
		t.Fatal("ReleaseArena refused an arena-built machine")
	}

	m2 := NewFromArena(ar)
	if got := ar.Uses(); got != 2 {
		t.Errorf("arena uses = %d, want 2", got)
	}
	if cap(m2.heap) != heapCap {
		t.Errorf("second tenant heap cap = %d, want recycled %d", cap(m2.heap), heapCap)
	}
	if len(m2.heap) != 0 || m2.LiveHeapWords() != 0 {
		t.Errorf("recycled machine not empty: len=%d live=%d", len(m2.heap), m2.LiveHeapWords())
	}
	// The recycled storage must behave exactly like fresh storage:
	// allocate into it, collect, and read structure back.
	m2.regs[RegA] = m2.Cons(FixnumWord(1), m2.Cons(FixnumWord(2), NilWord))
	m2.GC()
	v, err := m2.ToValue(m2.regs[RegA])
	if err != nil || sexp.Print(v) != "(1 2)" {
		t.Errorf("recycled machine structure: %v %v", v, err)
	}
	if err := m2.CheckHeapInvariants(); err != nil {
		t.Error(err)
	}
}

// TestArenaImageRoundTrip: an image exported from a fresh machine loads
// into a recycled-arena machine with an identical fingerprint — leftover
// dirt from the previous tenant must be invisible.
func TestArenaImageRoundTrip(t *testing.T) {
	src := New()
	src.SetGlobal("*keep*", src.FromValue(mustRead("(1 (2 3) 4)")))
	img, err := src.ExportImage()
	if err != nil {
		t.Fatal(err)
	}

	ar := &Arena{}
	m1 := NewFromArena(ar)
	for i := 0; i < 500; i++ {
		m1.Cons(FixnumWord(int64(i)), NilWord)
	}
	if !m1.ReleaseArena() {
		t.Fatal("release failed")
	}

	m2 := NewFromArena(ar)
	if err := m2.LoadImage(img); err != nil {
		t.Fatal(err)
	}
	if got, want := m2.ImageFingerprint(), src.ImageFingerprint(); got != want {
		t.Errorf("fingerprint diverges after arena round trip:\n  got  %s\n  want %s", got, want)
	}
	if err := m2.CheckHeapInvariants(); err != nil {
		t.Error(err)
	}
}

// TestArenaDropsOversizedHeap: a machine whose heap outgrew
// arenaKeepWords is not harvested — the pool must not pin huge request
// heaps — and the emptied arena still serves later machines.
func TestArenaDropsOversizedHeap(t *testing.T) {
	ar := &Arena{}
	m := NewFromArena(ar)
	m.gcAlloc(arenaKeepWords + 1)
	if m.ReleaseArena() {
		t.Fatal("ReleaseArena kept a heap beyond arenaKeepWords")
	}
	// The arena is empty but must still be adoptable.
	m2 := NewFromArena(ar)
	m2.regs[RegA] = m2.Cons(FixnumWord(5), NilWord)
	v, err := m2.ToValue(m2.regs[RegA])
	if err != nil || sexp.Print(v) != "(5)" {
		t.Errorf("post-drop arena machine: %v %v", v, err)
	}
	if !m2.ReleaseArena() {
		t.Error("release failed for the post-drop tenant")
	}
}

// TestArenaReleaseNotArenaBuilt: ReleaseArena on a plain New machine is
// a no-op returning false.
func TestArenaReleaseNotArenaBuilt(t *testing.T) {
	m := New()
	if m.ReleaseArena() {
		t.Error("ReleaseArena returned true for a machine that owns its memory")
	}
}
