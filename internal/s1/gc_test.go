package s1

import (
	"testing"

	"repro/internal/sexp"
)

func TestGCReclaimsGarbage(t *testing.T) {
	m := New()
	// Allocate a chain, keep a pointer to part of it in a register, drop
	// the rest.
	keep := m.Cons(FixnumWord(1), NilWord)
	for i := 0; i < 100; i++ {
		m.Cons(FixnumWord(int64(i)), NilWord) // garbage
	}
	m.regs[RegA] = keep
	live0 := m.LiveHeapWords()
	reclaimed := m.GC()
	if reclaimed != 200 {
		t.Errorf("reclaimed = %d, want 200 (100 conses)", reclaimed)
	}
	if got := m.LiveHeapWords(); got != live0-200 {
		t.Errorf("live = %d", got)
	}
	// The kept cell survives and still reads correctly.
	v, err := m.ToValue(keep)
	if err != nil || sexp.Print(v) != "(1)" {
		t.Errorf("kept value = %v %v", v, err)
	}
}

func TestGCTracesDeepStructure(t *testing.T) {
	m := New()
	// A 50-deep list reachable only through a symbol value cell.
	lst := NilWord
	for i := 0; i < 50; i++ {
		lst = m.Cons(FixnumWord(int64(i)), lst)
	}
	m.SetGlobal("*keep*", lst)
	m.regs[RegA] = NilWord
	if got := m.GC(); got != 0 {
		t.Errorf("nothing should be reclaimed, got %d", got)
	}
	v, err := m.ToValue(m.Syms[m.InternSym("*keep*")].Value)
	if err != nil || sexp.Length(v) != 50 {
		t.Errorf("list damaged: %v %v", v, err)
	}
}

func TestGCTracesStackAndBindings(t *testing.T) {
	m := New()
	c1 := m.Cons(FixnumWord(1), NilWord)
	c2 := m.Cons(FixnumWord(2), NilWord)
	c3 := m.Cons(FixnumWord(3), NilWord)
	m.regs[RegSP] = RawInt(StackBase)
	if err := m.push(c1); err != nil {
		t.Fatal(err)
	}
	m.bindStack = append(m.bindStack, bindEntry{sym: 0, val: c2})
	m.catchStack = append(m.catchStack, catchFrame{tag: c3})
	m.regs[RegA] = NilWord
	if got := m.GC(); got != 0 {
		t.Errorf("stack/bindings/catch roots missed: reclaimed %d", got)
	}
}

func TestGCFreeListReuse(t *testing.T) {
	m := New()
	m.Cons(FixnumWord(1), NilWord) // garbage cons (2 words)
	m.regs[RegA] = NilWord
	m.GC()
	before := len(m.heap)
	w := m.Cons(FixnumWord(9), NilWord)
	if len(m.heap) != before {
		t.Errorf("new cons should reuse the freed block")
	}
	if m.GCMeters.WordsReused != 2 {
		t.Errorf("words reused = %d", m.GCMeters.WordsReused)
	}
	v, _ := m.ToValue(w)
	if sexp.Print(v) != "(9)" {
		t.Errorf("reused block reads %s", sexp.Print(v))
	}
}

func TestGCCodeImmediatesAreRoots(t *testing.T) {
	m := New()
	lst := m.FromValue(mustRead("(1 2 3)"))
	if _, err := m.AddFunction("f", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(lst)}),
		InstrItem(Instr{Op: OpRET}),
	}); err != nil {
		t.Fatal(err)
	}
	m.regs[RegA] = NilWord
	if got := m.GC(); got != 0 {
		t.Errorf("quoted constant collected: %d words", got)
	}
	got, err := m.CallFunction("f")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := m.ToValue(got)
	if sexp.Print(v) != "(1 2 3)" {
		t.Errorf("constant = %s", sexp.Print(v))
	}
}

func TestGCAutoThreshold(t *testing.T) {
	m := New()
	m.SetGCThreshold(64)
	m.regs[RegA] = NilWord
	for i := 0; i < 200; i++ {
		m.Cons(FixnumWord(int64(i)), NilWord)
	}
	// Threshold-triggered collections are minor under the generational
	// default (nothing here survives to force a full).
	if m.GCMeters.MinorCollections == 0 {
		t.Error("auto GC never triggered")
	}
	// Heap growth bounded: 200 conses = 400 words but collections reuse.
	if len(m.heap) > 200 {
		t.Errorf("heap grew to %d words despite GC", len(m.heap))
	}
}

func TestGCPoisonCatchesDanglers(t *testing.T) {
	m := New()
	dead := m.Cons(FixnumWord(1), NilWord)
	m.regs[RegA] = NilWord
	m.GC()
	w, err := m.load(dead.Bits)
	if err != nil {
		t.Fatal(err)
	}
	if w.Tag != TagGC {
		t.Errorf("freed block should be poisoned, got %v", w)
	}
}
