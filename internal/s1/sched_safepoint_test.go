package s1

import (
	"errors"
	"testing"
)

// buildCountLoop assembles loop(n): tail-call itself down to 0, then
// return 99 — a few instructions per iteration, so a moderate n retires
// enough instructions to cross many interruptEvery safepoint polls.
func buildCountLoop(t *testing.T, m *Machine) {
	t.Helper()
	idx := m.InternSym("loop")
	fnIdx := addFn(t, m, "loop", 1, 1, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: Mem(RegFP, -5)}),
		InstrItem(Instr{Op: OpJEQ, A: R(RegRTA), B: ImmInt(0), C: Lbl("done")}),
		InstrItem(Instr{Op: OpSUB, A: R(RegRTA), B: ImmInt(1)}),
		InstrItem(Instr{Op: OpMOVP, TagArg: int64(TagFixnum), A: R(RegA), B: Idx(RegRTA, 0, NoReg, 0)}),
		InstrItem(Instr{Op: OpPUSH, A: R(RegA)}),
		InstrItem(Instr{Op: OpTCALL, A: Imm(Ptr(TagSymbol, uint64(idx))), TagArg: 1}),
		LabelItem("done"),
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(FixnumWord(99))}),
		InstrItem(Instr{Op: OpRET}),
	})
	m.SetSymbolFunction("loop", Ptr(TagFunc, uint64(fnIdx)))
}

// TestPreemptReturnsResumable: without an OnSafepoint hook, a Preempt
// request makes Run return ErrPreempted with the machine fully
// resumable — repeated preempt/resume cycles still produce the exact
// result and meters of an uninterrupted run.
func TestPreemptReturnsResumable(t *testing.T) {
	m := New()
	buildCountLoop(t, m)

	const n = 50000
	m.Preempt()
	_, err := m.CallFunction("loop", FixnumWord(n))
	if !errors.Is(err, ErrPreempted) {
		t.Fatalf("preempted run returned %v, want ErrPreempted", err)
	}
	if m.halted {
		t.Fatal("preempted machine is halted; it must stay resumable")
	}

	// Resume under continuous preemption: every Run segment advances a
	// little and yields, until the program completes.
	resumes := 0
	for {
		m.Preempt()
		err = m.Run()
		if err == nil {
			break
		}
		if !errors.Is(err, ErrPreempted) {
			t.Fatalf("resume %d: %v", resumes, err)
		}
		if resumes++; resumes > 1_000_000 {
			t.Fatal("preempt/resume cycle never terminates")
		}
	}
	got, err := m.pop()
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 99 {
		t.Errorf("result across preemptions = %s, want 99", got)
	}
	if m.Stats.TailCalls != n {
		t.Errorf("tail calls = %d, want %d (state lost across a preemption?)", m.Stats.TailCalls, n)
	}
	if resumes < 10 {
		t.Errorf("only %d preempt/resume cycles over %d tail calls; safepoints are not polling", resumes, n)
	}
}

// TestOnSafepointCycleDeltas: the hook receives non-negative cycle
// deltas whose sum, plus the final uncharged residue, is exactly
// Stats.Cycles — the invariant a gas meter depends on.
func TestOnSafepointCycleDeltas(t *testing.T) {
	m := New()
	buildCountLoop(t, m)

	var sum int64
	calls := 0
	m.OnSafepoint = func(cycles int64, preempted bool) error {
		if cycles < 0 {
			t.Errorf("negative cycle delta %d", cycles)
		}
		if preempted {
			t.Error("preempted=true without a Preempt request")
		}
		sum += cycles
		calls++
		return nil
	}
	got, err := m.CallFunction("loop", FixnumWord(20000))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 99 {
		t.Fatalf("result = %s", got)
	}
	if calls == 0 {
		t.Fatal("OnSafepoint never fired")
	}
	if total := sum + m.takeUncharged(); total != m.Stats.Cycles {
		t.Errorf("charged %d + residue = %d cycles, Stats.Cycles = %d", sum, total, m.Stats.Cycles)
	}
}

// TestOnSafepointPreemptedFlag: with a hook installed, a Preempt request
// is delivered as preempted=true to the hook instead of aborting the
// run, and the program completes normally.
func TestOnSafepointPreemptedFlag(t *testing.T) {
	m := New()
	buildCountLoop(t, m)

	preempts := 0
	m.OnSafepoint = func(cycles int64, preempted bool) error {
		if preempted {
			preempts++
		}
		return nil
	}
	m.Preempt()
	got, err := m.CallFunction("loop", FixnumWord(20000))
	if err != nil {
		t.Fatalf("hooked preemption must not abort the run: %v", err)
	}
	if got.Int() != 99 {
		t.Errorf("result = %s", got)
	}
	if preempts != 1 {
		t.Errorf("hook observed %d preemptions, want 1", preempts)
	}
}

// TestOnSafepointErrorHalts: a hook error (the gas-exhausted path) stops
// the run with that error and halts the machine.
func TestOnSafepointErrorHalts(t *testing.T) {
	m := New()
	buildCountLoop(t, m)

	sentinel := errors.New("out of gas")
	m.OnSafepoint = func(cycles int64, preempted bool) error { return sentinel }
	_, err := m.CallFunction("loop", FixnumWord(50000))
	if !errors.Is(err, sentinel) {
		t.Fatalf("run returned %v, want the hook's error", err)
	}
	if !m.halted {
		t.Error("machine must halt on a safepoint hook error")
	}
}

// TestKillWinsOverPreempt: the tri-state signal never downgrades a
// pending kill, in either arrival order.
func TestKillWinsOverPreempt(t *testing.T) {
	m := New()
	m.Interrupt()
	m.Preempt()
	if m.signal.Load() != sigKill {
		t.Error("Preempt downgraded a pending kill")
	}
	m.ClearInterrupt()
	if m.signal.Load() != sigRun {
		t.Error("ClearInterrupt did not reset the signal")
	}

	// A killed run reports the interrupt error, not ErrPreempted.
	buildCountLoop(t, m)
	m.Preempt()
	m.Interrupt()
	_, err := m.CallFunction("loop", FixnumWord(50000))
	var re *RuntimeError
	if !errors.As(err, &re) || re.Msg != InterruptMsg {
		t.Fatalf("killed run returned %v, want interrupt RuntimeError", err)
	}
}

// TestArenaAdoptStaleInterruptPanics is the recycled-storage regression:
// adopting arena storage into a machine that still carries a pending
// interrupt must panic loudly (a stale kill would otherwise 504 the next
// tenant's first safepoint), and ClearInterrupt makes the same machine
// adoptable again.
func TestArenaAdoptStaleInterruptPanics(t *testing.T) {
	m := New()
	m.Interrupt()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("adopt accepted a machine with a pending interrupt")
			}
		}()
		(&Arena{}).adopt(m)
	}()

	m.ClearInterrupt()
	(&Arena{}).adopt(m) // must not panic
	if !m.ReleaseArena() {
		t.Error("adopted machine did not release back to its arena")
	}
}
