package s1

// Machine-arena reuse (DESIGN.md §15). A request-per-machine server
// allocates the same few large slices — heap, GC records, stack, card
// table — for every request, runs a prelude image into them, and drops
// the lot at request end; the Go allocator pays for that churn. An
// Arena recycles the storage: when a request finishes, ReleaseArena
// detaches the machine's slices into the arena, and NewFromArena hands
// them to the next machine after clearing only the prefix the previous
// tenant actually dirtied (the high-water mark), not the full capacity.
//
// Ownership is strictly alternating: while a machine holds the slices
// the arena's fields are nil, so a machine that is dropped without
// Release (a panic path, an oversized heap) can never alias storage the
// arena later hands to someone else. The daemon keeps arenas in a
// sync.Pool; everything here is single-goroutine.

// Arena holds a previous machine's storage for reuse. The zero value is
// an empty arena: NewFromArena on it behaves like New and the first
// Release stocks it.
type Arena struct {
	heap   []Word
	recs   []gcRec
	stack  []Word
	cards  []byte
	blocks []uint64
	young  []uint64
	mark   []uint64
	// heapUsed/recsUsed are the dirty prefixes: the slice lengths at
	// release time. Capacity beyond them has never been written (heap
	// growth copies into fresh zeroed storage), which is exactly the
	// invariant gcAlloc's in-capacity extension relies on.
	heapUsed, recsUsed int
	uses               int64
}

// arenaKeepWords bounds the heap capacity an arena retains: a machine
// whose heap outgrew it (a request that ran up against -max-heap) is
// dropped on Release rather than pinning tens of megabytes in the pool.
const arenaKeepWords = 1 << 21

// Uses reports how many machines this arena's storage has served.
func (a *Arena) Uses() int64 { return a.uses }

// NewFromArena creates an empty machine drawing its large slices from
// the arena. A nil or empty arena degrades to New.
func NewFromArena(a *Arena) *Machine {
	if a == nil {
		return New()
	}
	return newMachine(a)
}

// adopt transfers the arena's storage into m, clearing the previous
// tenant's dirty prefixes. The stack is cleared in full: lowered blocks
// store through SP-relative addressing directly, so Stats.MaxStack
// under-reports the touched extent and no cheaper high-water mark
// exists for it.
func (a *Arena) adopt(m *Machine) {
	// A machine built on recycled storage must never inherit a pending
	// interrupt: a stale kill left over from a previous tenant's deadline
	// would make the first safepoint 504 instantly. The machine is
	// freshly constructed on this path today, but the invariant is load-
	// bearing for resident sessions, so assert it where the reuse
	// happens rather than trusting every caller to ClearInterrupt.
	if m.signal.Load() != sigRun {
		panic("s1: arena adoption with a pending interrupt")
	}
	a.uses++
	if len(a.stack) != StackLimit-StackBase {
		a.stack = make([]Word, StackLimit-StackBase)
	} else {
		clear(a.stack)
	}
	clear(a.heap[:a.heapUsed])
	clear(a.recs[:a.recsUsed])
	clear(a.cards)
	m.stack = a.stack
	m.heap = a.heap[:0]
	m.gcRecs = a.recs[:0]
	m.cards = a.cards[:0]
	m.gcBlocks = a.blocks[:0]
	m.youngBlocks = a.young[:0]
	m.markStack = a.mark[:0]
	m.arena = a
	// The slices now belong to the machine until ReleaseArena harvests
	// them back; nil the arena's references so a machine dropped without
	// releasing can never alias a later tenant.
	a.heap, a.recs, a.stack, a.cards = nil, nil, nil, nil
	a.blocks, a.young, a.mark = nil, nil, nil
	a.heapUsed, a.recsUsed = 0, 0
}

// ReleaseArena detaches the machine's recycled slices back into the
// arena it was built from and returns true, or returns false when the
// machine owns its memory (not arena-built) or its heap outgrew
// arenaKeepWords (the storage is left to the Go collector). The machine
// must not run again afterwards.
func (m *Machine) ReleaseArena() bool {
	a := m.arena
	if a == nil {
		return false
	}
	m.arena = nil
	if cap(m.heap) > arenaKeepWords {
		return false
	}
	a.heap, a.heapUsed = m.heap, len(m.heap)
	a.recs, a.recsUsed = m.gcRecs, len(m.gcRecs)
	a.stack = m.stack
	a.cards = m.cards
	a.blocks = m.gcBlocks
	a.young = m.youngBlocks
	a.mark = m.markStack
	m.heap, m.gcRecs, m.stack, m.cards = nil, nil, nil, nil
	m.gcBlocks, m.youngBlocks, m.markStack = nil, nil, nil
	return true
}
