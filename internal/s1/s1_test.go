package s1

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/sexp"
)

// addFn is a test helper that panics on assembly errors.
func addFn(t *testing.T, m *Machine, name string, min, max int, items []Item) int {
	t.Helper()
	idx, err := m.AddFunction(name, min, max, items)
	if err != nil {
		t.Fatalf("assemble %s: %v", name, err)
	}
	return idx
}

func TestWordBasics(t *testing.T) {
	if RawInt(-5).Int() != -5 {
		t.Error("RawInt round trip")
	}
	if RawFloat(2.5).Float() != 2.5 {
		t.Error("RawFloat round trip")
	}
	if NilWord.Truthy() || !FixnumWord(0).Truthy() {
		t.Error("truthiness")
	}
	if !IsStackAddr(StackBase) || IsStackAddr(HeapBase) {
		t.Error("region test")
	}
	if FixnumWord(42).String() != "42" {
		t.Errorf("print: %s", FixnumWord(42))
	}
}

func TestTwoAndHalfAddressRule(t *testing.T) {
	m := New()
	// Legal: destination is RTA.
	_, err := m.AddFunction("ok1", 0, 0, []Item{
		InstrItem(Instr{Op: OpADD, A: R(RegRTA), B: Mem(RegFP, 0), C: Mem(RegFP, 1)}),
		InstrItem(Instr{Op: OpRET}),
	})
	if err != nil {
		t.Errorf("RTA-destination form should assemble: %v", err)
	}
	// Legal: first source is RTB.
	_, err = m.AddFunction("ok2", 0, 0, []Item{
		InstrItem(Instr{Op: OpSUB, A: Mem(RegFP, 0), B: R(RegRTB), C: Mem(RegFP, 1)}),
		InstrItem(Instr{Op: OpRET}),
	})
	if err != nil {
		t.Errorf("RTB-source form should assemble: %v", err)
	}
	// Legal: two-operand form with arbitrary operands.
	_, err = m.AddFunction("ok3", 0, 0, []Item{
		InstrItem(Instr{Op: OpADD, A: Mem(RegFP, 0), B: Mem(RegFP, 1)}),
		InstrItem(Instr{Op: OpRET}),
	})
	if err != nil {
		t.Errorf("two-operand form should assemble: %v", err)
	}
	// Illegal: three distinct non-RT operands.
	_, err = m.AddFunction("bad", 0, 0, []Item{
		InstrItem(Instr{Op: OpADD, A: Mem(RegFP, 0), B: Mem(RegFP, 1), C: Mem(RegFP, 2)}),
		InstrItem(Instr{Op: OpRET}),
	})
	if err == nil {
		t.Error("three-operand arithmetic without an RT register must be rejected")
	}
	// MOV is exempt.
	_, err = m.AddFunction("mov", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: Mem(RegFP, 0), B: Mem(RegFP, 1)}),
		InstrItem(Instr{Op: OpRET}),
	})
	if err != nil {
		t.Errorf("MOV is not subject to the rule: %v", err)
	}
}

func TestAssemblerLabelErrors(t *testing.T) {
	m := New()
	_, err := m.AddFunction("f", 0, 0, []Item{
		InstrItem(Instr{Op: OpJMP, A: Lbl("nowhere")}),
	})
	if err == nil {
		t.Error("undefined label should fail")
	}
	_, err = m.AddFunction("g", 0, 0, []Item{
		LabelItem("x"), LabelItem("x"),
		InstrItem(Instr{Op: OpRET}),
	})
	if err == nil {
		t.Error("duplicate label should fail")
	}
}

// buildAdd2 compiles by hand: f(a, b) = a + b on fixnum immediates.
func buildAdd2(t *testing.T, m *Machine) {
	// Args at FP-4-2+i; fixnums are immediate, add their Bits.
	addFn(t, m, "add2", 2, 2, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: Mem(RegFP, -6)}),
		InstrItem(Instr{Op: OpADD, A: R(RegRTA), B: Mem(RegFP, -5)}),
		InstrItem(Instr{Op: OpMOVP, TagArg: int64(TagFixnum), A: R(RegA), B: Idx(RegRTA, 0, NoReg, 0)}),
		InstrItem(Instr{Op: OpRET}),
	})
}

func TestCallAndReturn(t *testing.T) {
	m := New()
	buildAdd2(t, m)
	got, err := m.CallFunction("add2", FixnumWord(30), FixnumWord(12))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != TagFixnum || got.Int() != 42 {
		t.Fatalf("add2 = %s", got)
	}
	if m.Stats.Calls == 0 || m.Stats.Instrs == 0 || m.Stats.Cycles == 0 {
		t.Error("stats not counted")
	}
}

func TestMOVPMakesPointer(t *testing.T) {
	m := New()
	// Store a raw float into a frame slot, then make a pdl pointer to it.
	addFn(t, m, "pdl", 0, 0, []Item{
		InstrItem(Instr{Op: OpADD, A: R(RegSP), B: ImmInt(1)}), // reserve local
		InstrItem(Instr{Op: OpMOV, A: Mem(RegFP, 0), B: Imm(RawFloat(2.5))}),
		InstrItem(Instr{Op: OpMOVP, TagArg: int64(TagFlonum), A: R(RegA), B: Mem(RegFP, 0)}),
		InstrItem(Instr{Op: OpRET}),
	})
	got, err := m.CallFunction("pdl")
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != TagFlonum || !IsStackAddr(got.Bits) {
		t.Fatalf("expected stack flonum pointer, got %s", got)
	}
}

func TestCertifyCopiesStackPointer(t *testing.T) {
	m := New()
	addFn(t, m, "c", 0, 0, []Item{
		InstrItem(Instr{Op: OpADD, A: R(RegSP), B: ImmInt(1)}),
		InstrItem(Instr{Op: OpMOV, A: Mem(RegFP, 0), B: Imm(RawFloat(7.5))}),
		InstrItem(Instr{Op: OpMOVP, TagArg: int64(TagFlonum), A: R(RegA), B: Mem(RegFP, 0)}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQCertify}),
		InstrItem(Instr{Op: OpRET}),
	})
	got, err := m.CallFunction("c")
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != TagFlonum || IsStackAddr(got.Bits) {
		t.Fatalf("certify should move to heap: %s", got)
	}
	if m.Stats.Certifies != 1 || m.Stats.CertifyCopies != 1 {
		t.Errorf("certify stats: %+v", m.Stats)
	}
	if v, _ := m.ToValue(got); sexp.Print(v) != "7.5" {
		t.Errorf("value = %s", sexp.Print(v))
	}
	// A heap pointer passes certification without copying.
	m2 := New()
	addFn(t, m2, "c2", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(RawFloat(1.5))}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQFlonumCons}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQCertify}),
		InstrItem(Instr{Op: OpRET}),
	})
	if _, err := m2.CallFunction("c2"); err != nil {
		t.Fatal(err)
	}
	if m2.Stats.CertifyCopies != 0 {
		t.Error("heap pointer should not be copied")
	}
}

func TestTailCallConstantStack(t *testing.T) {
	// loop(n): if n == 0 return 99 else tail-call loop(n-1).
	m := New()
	idx := m.InternSym("loop")
	items := []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: Mem(RegFP, -5)}), // arg n (fixnum)
		InstrItem(Instr{Op: OpJEQ, A: Idx(RegRTA, 0, NoReg, 0), B: ImmInt(0), C: Lbl("done")}),
		InstrItem(Instr{Op: OpSUB, A: R(RegRTA), B: ImmInt(1)}),
		InstrItem(Instr{Op: OpMOVP, TagArg: int64(TagFixnum), A: R(RegA), B: Idx(RegRTA, 0, NoReg, 0)}),
		InstrItem(Instr{Op: OpPUSH, A: R(RegA)}),
		InstrItem(Instr{Op: OpTCALL, A: Imm(Ptr(TagSymbol, uint64(idx))), TagArg: 1}),
		LabelItem("done"),
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(FixnumWord(99))}),
		InstrItem(Instr{Op: OpRET}),
	}
	// Wait: JEQ compares operand values; arg is a fixnum word whose Bits
	// hold n, so compare via the register's bits. Rebuild: load the word
	// into RTA and compare RTA's bits with 0 directly.
	items[1] = InstrItem(Instr{Op: OpJEQ, A: R(RegRTA), B: ImmInt(0), C: Lbl("done")})
	fnIdx := addFn(t, m, "loop", 1, 1, items)
	m.SetSymbolFunction("loop", Ptr(TagFunc, uint64(fnIdx)))
	got, err := m.CallFunction("loop", FixnumWord(100000))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 99 {
		t.Fatalf("loop = %s", got)
	}
	// Constant stack: frame for 1 arg is 1+4 words + 1 result.
	if m.Stats.MaxStack > 16 {
		t.Errorf("tail calls must not grow the stack: max depth %d", m.Stats.MaxStack)
	}
	if m.Stats.TailCalls != 100000 {
		t.Errorf("tail calls = %d", m.Stats.TailCalls)
	}
}

func TestJEQComparesFixnumBits(t *testing.T) {
	// Fixnum words carry their value in Bits, so JEQ on the word works
	// when tags agree; this test pins that assumption.
	if FixnumWord(5).Int() != 5 {
		t.Fatal("fixnum bits")
	}
}

func TestNonTailCallGrowsStack(t *testing.T) {
	// deep(n): if n == 0 return 0 else 0 + deep(n-1) via real CALL.
	m := New()
	sym := m.InternSym("deep")
	fnIdx := addFn(t, m, "deep", 1, 1, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: Mem(RegFP, -5)}),
		InstrItem(Instr{Op: OpJEQ, A: R(RegRTA), B: ImmInt(0), C: Lbl("base")}),
		InstrItem(Instr{Op: OpSUB, A: R(RegRTA), B: ImmInt(1)}),
		InstrItem(Instr{Op: OpMOVP, TagArg: int64(TagFixnum), A: R(RegA), B: Idx(RegRTA, 0, NoReg, 0)}),
		InstrItem(Instr{Op: OpPUSH, A: R(RegA)}),
		InstrItem(Instr{Op: OpCALL, A: Imm(Ptr(TagSymbol, uint64(sym))), TagArg: 1}),
		InstrItem(Instr{Op: OpPOP, A: R(RegA)}),
		InstrItem(Instr{Op: OpRET}),
		LabelItem("base"),
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(FixnumWord(0))}),
		InstrItem(Instr{Op: OpRET}),
	})
	m.SetSymbolFunction("deep", Ptr(TagFunc, uint64(fnIdx)))
	if _, err := m.CallFunction("deep", FixnumWord(1000)); err != nil {
		t.Fatal(err)
	}
	if m.Stats.MaxStack < 1000 {
		t.Errorf("non-tail recursion should grow stack: max %d", m.Stats.MaxStack)
	}
}

func TestFloatOpsAndTranscendentals(t *testing.T) {
	m := New()
	addFn(t, m, "f", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: Imm(RawFloat(3.0))}),
		InstrItem(Instr{Op: OpFMULT, A: R(RegRTA), B: Imm(RawFloat(4.0))}),
		InstrItem(Instr{Op: OpFADD, A: R(RegRTA), B: Imm(RawFloat(0.25))}),
		InstrItem(Instr{Op: OpFSQRT, A: R(RegRTA), B: R(RegRTA)}),
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: R(RegRTA)}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQFlonumCons}),
		InstrItem(Instr{Op: OpRET}),
	})
	got, err := m.CallFunction("f")
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.ToValue(got)
	if err != nil {
		t.Fatal(err)
	}
	if sexp.Print(v) != "3.5" {
		t.Errorf("sqrt(12.25) = %s", sexp.Print(v))
	}
}

func TestFSINTakesCycles(t *testing.T) {
	m := New()
	addFn(t, m, "s", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(RawFloat(0.25))}), // quarter cycle
		InstrItem(Instr{Op: OpFSIN, A: R(RegA), B: R(RegA)}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQFlonumCons}),
		InstrItem(Instr{Op: OpRET}),
	})
	got, err := m.CallFunction("s")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := m.ToValue(got)
	f, _ := sexp.ToFloat(v)
	if f < 0.999999 || f > 1.000001 {
		t.Errorf("sin(quarter cycle) = %v, want 1.0", f)
	}
}

func TestGenericArithmeticSQ(t *testing.T) {
	m := New()
	addFn(t, m, "g", 2, 2, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Mem(RegFP, -6)}),
		InstrItem(Instr{Op: OpMOV, A: R(RegB), B: Mem(RegFP, -5)}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQAdd}),
		InstrItem(Instr{Op: OpRET}),
	})
	// fixnum + fixnum
	got, err := m.CallFunction("g", FixnumWord(40), FixnumWord(2))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 42 || got.Tag != TagFixnum {
		t.Errorf("40+2 = %s", got)
	}
	// fixnum + flonum with contagion
	fl := m.ConsFlonum(0.5)
	got, err = m.CallFunction("g", FixnumWord(1), fl)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := m.ToValue(got)
	if sexp.Print(v) != "1.5" {
		t.Errorf("1+0.5 = %s", sexp.Print(v))
	}
	// bignum overflow
	got, err = m.CallFunction("g", FixnumWord(1<<62), FixnumWord(1<<62))
	if err != nil {
		t.Fatal(err)
	}
	v, _ = m.ToValue(got)
	if sexp.Print(v) != "9223372036854775808" {
		t.Errorf("overflow = %s", sexp.Print(v))
	}
	// type error
	if _, err := m.CallFunction("g", NilWord, FixnumWord(1)); err == nil {
		t.Error("adding nil should fail")
	}
}

func TestConsCarCdr(t *testing.T) {
	m := New()
	addFn(t, m, "k", 2, 2, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Mem(RegFP, -6)}),
		InstrItem(Instr{Op: OpMOV, A: R(RegB), B: Mem(RegFP, -5)}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQCons}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQCar}),
		InstrItem(Instr{Op: OpRET}),
	})
	got, err := m.CallFunction("k", FixnumWord(7), NilWord)
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 7 {
		t.Errorf("(car (cons 7 nil)) = %s", got)
	}
	if m.Stats.ConsAllocs != 1 {
		t.Errorf("cons allocs = %d", m.Stats.ConsAllocs)
	}
}

func TestSpecialBindingDeep(t *testing.T) {
	m := New()
	sym := m.InternSym("*depth*")
	m.SetGlobal("*depth*", FixnumWord(0))
	// f: bind *depth* to 42, find+read it, unbind, return.
	addFn(t, m, "f", 0, 0, []Item{
		InstrItem(Instr{Op: OpSPECBIND, TagArg: int64(sym), A: Imm(FixnumWord(42))}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQSpecFind, B: ImmInt(int64(sym))}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQSpecRead}),
		InstrItem(Instr{Op: OpSPECUNBIND, TagArg: 1}),
		InstrItem(Instr{Op: OpRET}),
	})
	got, err := m.CallFunction("f")
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 42 {
		t.Errorf("special read = %s", got)
	}
	if m.BindingDepth() != 0 {
		t.Error("binding stack should unwind")
	}
	if m.Stats.SpecialLookups != 1 {
		t.Errorf("lookups = %d", m.Stats.SpecialLookups)
	}
	// With no binding, the global cell is used.
	addFn(t, m, "g", 0, 0, []Item{
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQSpecReadSym, B: ImmInt(int64(sym))}),
		InstrItem(Instr{Op: OpRET}),
	})
	got, err = m.CallFunction("g")
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 0 {
		t.Errorf("global read = %s", got)
	}
}

func TestCatchThrow(t *testing.T) {
	m := New()
	tagSym := Ptr(TagSymbol, uint64(m.InternSym("out")))
	addFn(t, m, "c", 0, 0, []Item{
		InstrItem(Instr{Op: OpCATCH, A: Imm(tagSym), B: Lbl("handler")}),
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(tagSym)}),
		InstrItem(Instr{Op: OpMOV, A: R(RegB), B: Imm(FixnumWord(41))}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQThrow}),
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(FixnumWord(0))}), // skipped
		LabelItem("handler"),
		InstrItem(Instr{Op: OpRET}),
	})
	got, err := m.CallFunction("c")
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 41 {
		t.Errorf("catch/throw = %s", got)
	}
	// Uncaught throw errors.
	addFn(t, m, "u", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(FixnumWord(1))}),
		InstrItem(Instr{Op: OpMOV, A: R(RegB), B: Imm(FixnumWord(2))}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQThrow}),
		InstrItem(Instr{Op: OpRET}),
	})
	if _, err := m.CallFunction("u"); err == nil ||
		!strings.Contains(err.Error(), "uncaught") {
		t.Errorf("uncaught throw: %v", err)
	}
}

func TestClosureCreationAndCall(t *testing.T) {
	m := New()
	// inner: returns its environment slot 0 plus its argument.
	innerIdx := addFn(t, m, "inner", 1, 1, []Item{
		// env slot 0 at EP.addr+1; arg fixnum at FP-5.
		InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: Mem(RegEP, 1)}),
		InstrItem(Instr{Op: OpMOV, A: R(RegRTB), B: Mem(RegFP, -5)}),
		InstrItem(Instr{Op: OpADD, A: R(RegRTA), B: R(RegRTB)}), // add fixnum bits
		InstrItem(Instr{Op: OpMOVP, TagArg: int64(TagFixnum), A: R(RegA), B: Idx(RegRTA, 0, NoReg, 0)}),
		InstrItem(Instr{Op: OpRET}),
	})
	// outer(n): make env {n}, close inner over it, call closure with 10.
	addFn(t, m, "outer", 1, 1, []Item{
		InstrItem(Instr{Op: OpENV, A: R(10), B: Imm(NilWord), TagArg: 1}),
		InstrItem(Instr{Op: OpMOV, A: Idx(10, 1, NoReg, 0), B: Mem(RegFP, -5)}),
		InstrItem(Instr{Op: OpCLOSE, A: R(11), B: R(10), TagArg: int64(innerIdx)}),
		InstrItem(Instr{Op: OpPUSH, A: Imm(FixnumWord(10))}),
		InstrItem(Instr{Op: OpCALL, A: R(11), TagArg: 1}),
		InstrItem(Instr{Op: OpPOP, A: R(RegA)}),
		InstrItem(Instr{Op: OpRET}),
	})
	got, err := m.CallFunction("outer", FixnumWord(32))
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 42 {
		t.Errorf("closure call = %s", got)
	}
	if m.Stats.EnvAllocs != 1 {
		t.Errorf("env allocs = %d", m.Stats.EnvAllocs)
	}
}

func TestRestify(t *testing.T) {
	m := New()
	// f(a, &rest r): return r.
	addFn(t, m, "f", 1, -1, []Item{
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQRestify, B: ImmInt(1)}),
		// Normalized layout: args at FP-4-2+i → a at FP-6, rest at FP-5.
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Mem(RegFP, -5)}),
		InstrItem(Instr{Op: OpRET}),
	})
	got, err := m.CallFunction("f", FixnumWord(1), FixnumWord(2), FixnumWord(3))
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.ToValue(got)
	if err != nil {
		t.Fatal(err)
	}
	if sexp.Print(v) != "(2 3)" {
		t.Errorf("rest = %s", sexp.Print(v))
	}
	// Zero extra args → empty rest.
	got, err = m.CallFunction("f", FixnumWord(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tag != TagNil {
		t.Errorf("empty rest = %s", got)
	}
}

func TestApplyListSQ(t *testing.T) {
	m := New()
	buildAdd2(t, m)
	addIdx := m.FuncNamed("add2")
	lst := m.Cons(FixnumWord(40), m.Cons(FixnumWord(2), NilWord))
	addFn(t, m, "ap", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(Ptr(TagFunc, uint64(addIdx)))}),
		InstrItem(Instr{Op: OpMOV, A: R(RegB), B: Imm(lst)}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQApplyList}),
		InstrItem(Instr{Op: OpPOP, A: R(RegA)}),
		InstrItem(Instr{Op: OpRET}),
	})
	got, err := m.CallFunction("ap")
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 42 {
		t.Errorf("apply = %s", got)
	}
}

func TestValueConversionRoundTrip(t *testing.T) {
	m := New()
	cases := []string{
		"42", "-7", "foo", "nil", "t", "(1 2 3)", "(1 . 2)",
		"#(1 2)", `"str"`, "12345678901234567890123456789", "2/3", "3.25",
	}
	for _, src := range cases {
		v := mustRead(src)
		w := m.FromValue(v)
		back, err := m.ToValue(w)
		if err != nil {
			t.Errorf("%s: %v", src, err)
			continue
		}
		if !sexp.Equal(v, back) {
			t.Errorf("%s round-tripped to %s", src, sexp.Print(back))
		}
	}
}

func TestPrimHook(t *testing.T) {
	m := New()
	m.SetPrimHook(func(name string, args []sexp.Value) (sexp.Value, error) {
		if name != "reverse" {
			t.Errorf("hook name = %s", name)
		}
		return mustRead("(3 2 1)"), nil
	})
	sym := m.InternSym("reverse")
	lst := m.FromValue(mustRead("(1 2 3)"))
	addFn(t, m, "r", 0, 0, []Item{
		InstrItem(Instr{Op: OpPUSH, A: Imm(lst)}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQPrim, B: ImmInt(int64(sym)), C: ImmInt(1)}),
		InstrItem(Instr{Op: OpRET}),
	})
	got, err := m.CallFunction("r")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := m.ToValue(got)
	if sexp.Print(v) != "(3 2 1)" {
		t.Errorf("prim result = %s", sexp.Print(v))
	}
}

func TestStepLimit(t *testing.T) {
	m := New()
	m.StepLimit = 1000
	addFn(t, m, "spin", 0, 0, []Item{
		LabelItem("top"),
		InstrItem(Instr{Op: OpJMP, A: Lbl("top")}),
	})
	if _, err := m.CallFunction("spin"); err == nil ||
		!strings.Contains(err.Error(), "step limit") {
		t.Errorf("step limit: %v", err)
	}
}

func TestIndexedAddressing(t *testing.T) {
	m := New()
	// Build a float array [3] = {1.5, 2.5, 3.5} and fetch element [i]
	// with one indexed operand: mem[data + i].
	fa := m.FromValue(&sexp.FloatArray{Dims: []int{3}, Data: []float64{1.5, 2.5, 3.5}})
	dataBase := int64(fa.Bits + 2) // [rank, dim0, data...]
	addFn(t, m, "el", 1, 1, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegRTB), B: Mem(RegFP, -5)}), // i (fixnum: bits)
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Idx(NoReg, dataBase, RegRTB, 0)}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQFlonumCons}),
		InstrItem(Instr{Op: OpRET}),
	})
	got, err := m.CallFunction("el", FixnumWord(2))
	if err != nil {
		t.Fatal(err)
	}
	v, _ := m.ToValue(got)
	if sexp.Print(v) != "3.5" {
		t.Errorf("a[2] = %s", sexp.Print(v))
	}
}

func TestListingAndMOVCount(t *testing.T) {
	m := New()
	buildAdd2(t, m)
	f := m.Funcs[m.FuncNamed("add2")]
	listing := Listing(m.Code, f.Entry, f.End)
	if !strings.Contains(listing, "ADD") || !strings.Contains(listing, "MOVP") {
		t.Errorf("listing:\n%s", listing)
	}
	if n := CountMOVs(m.Code, f.Entry, f.End); n != 1 {
		t.Errorf("static MOVs = %d, want 1", n)
	}
}

func TestUndefinedFunction(t *testing.T) {
	m := New()
	sym := m.InternSym("nothing")
	addFn(t, m, "f", 0, 0, []Item{
		InstrItem(Instr{Op: OpCALL, A: Imm(Ptr(TagSymbol, uint64(sym))), TagArg: 0}),
		InstrItem(Instr{Op: OpRET}),
	})
	if _, err := m.CallFunction("f"); err == nil ||
		!strings.Contains(err.Error(), "undefined function") {
		t.Errorf("undefined function: %v", err)
	}
}

func TestDivideByZeroTraps(t *testing.T) {
	m := New()
	addFn(t, m, "d", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: ImmInt(5)}),
		InstrItem(Instr{Op: OpDIV, A: R(RegRTA), B: ImmInt(0)}),
		InstrItem(Instr{Op: OpRET}),
	})
	if _, err := m.CallFunction("d"); err == nil {
		t.Error("integer divide by zero should trap")
	}
}

func TestMoreALUOps(t *testing.T) {
	m := New()
	addFn(t, m, "alu", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: ImmInt(5)}),
		InstrItem(Instr{Op: OpASH, A: R(RegRTA), B: ImmInt(2)}),  // 20
		InstrItem(Instr{Op: OpSUB, A: R(RegRTA), B: ImmInt(2)}),  // 18
		InstrItem(Instr{Op: OpDIV, A: R(RegRTA), B: ImmInt(3)}),  // 6
		InstrItem(Instr{Op: OpASH, A: R(RegRTA), B: ImmInt(-1)}), // 3
		InstrItem(Instr{Op: OpMOVP, TagArg: int64(TagFixnum), A: R(RegA), B: Idx(RegRTA, 0, NoReg, 0)}),
		InstrItem(Instr{Op: OpRET}),
	})
	got, err := m.CallFunction("alu")
	if err != nil {
		t.Fatal(err)
	}
	if got.Int() != 3 {
		t.Errorf("alu = %s", got)
	}
}

func TestFloatUnaries(t *testing.T) {
	m := New()
	addFn(t, m, "fu", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(RawFloat(-4.0))}),
		InstrItem(Instr{Op: OpFABS, A: R(RegA), B: R(RegA)}),  // 4
		InstrItem(Instr{Op: OpFNEG, A: R(RegA), B: R(RegA)}),  // -4
		InstrItem(Instr{Op: OpFNEG, A: R(RegA), B: R(RegA)}),  // 4
		InstrItem(Instr{Op: OpFIX, A: R(RegB), B: R(RegA)}),   // raw 4
		InstrItem(Instr{Op: OpFLT, A: R(RegA), B: R(RegB)}),   // 4.0
		InstrItem(Instr{Op: OpFSQRT, A: R(RegA), B: R(RegA)}), // 2.0
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQFlonumCons}),
		InstrItem(Instr{Op: OpRET}),
	})
	got, err := m.CallFunction("fu")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := m.ToValue(got)
	if sexp.Print(v) != "2.0" {
		t.Errorf("fu = %s", sexp.Print(v))
	}
}

func TestMoreJumps(t *testing.T) {
	m := New()
	// f(n): return 1 if n>3, 2 if n<=3 — via JGT.
	addFn(t, m, "jg", 1, 1, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: Mem(RegFP, -5)}),
		InstrItem(Instr{Op: OpJGT, A: R(RegRTA), B: ImmInt(3), C: Lbl("big")}),
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(FixnumWord(2))}),
		InstrItem(Instr{Op: OpRET}),
		LabelItem("big"),
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(FixnumWord(1))}),
		InstrItem(Instr{Op: OpRET}),
	})
	if v, _ := m.CallFunction("jg", FixnumWord(5)); v.Int() != 1 {
		t.Errorf("jg 5 = %s", v)
	}
	if v, _ := m.CallFunction("jg", FixnumWord(2)); v.Int() != 2 {
		t.Errorf("jg 2 = %s", v)
	}
	// Float compare jump.
	addFn(t, m, "fj", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegRTA), B: Imm(RawFloat(1.5))}),
		InstrItem(Instr{Op: OpFJLE, A: R(RegRTA), B: Imm(RawFloat(2.0)), C: Lbl("le")}),
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(NilWord)}),
		InstrItem(Instr{Op: OpRET}),
		LabelItem("le"),
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(TWord)}),
		InstrItem(Instr{Op: OpRET}),
	})
	if v, _ := m.CallFunction("fj"); v.Tag != TagT {
		t.Errorf("fj = %s", v)
	}
}

func TestTagOp(t *testing.T) {
	m := New()
	addFn(t, m, "tg", 1, 1, []Item{
		InstrItem(Instr{Op: OpTAG, A: R(RegRTA), B: Mem(RegFP, -5)}),
		InstrItem(Instr{Op: OpMOVP, TagArg: int64(TagFixnum), A: R(RegA), B: Idx(RegRTA, 0, NoReg, 0)}),
		InstrItem(Instr{Op: OpRET}),
	})
	v, err := m.CallFunction("tg", m.Cons(NilWord, NilWord))
	if err != nil {
		t.Fatal(err)
	}
	if Tag(v.Int()) != TagCons {
		t.Errorf("tag = %d", v.Int())
	}
}

func TestSQEqlAndEqual(t *testing.T) {
	m := New()
	run := func(sq int64, a, b Word) Word {
		name := fmt.Sprintf("eq%d-%s-%s", sq, a, b)
		addFn(t, m, name, 0, 0, []Item{
			InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(a)}),
			InstrItem(Instr{Op: OpMOV, A: R(RegB), B: Imm(b)}),
			InstrItem(Instr{Op: OpCALLSQ, TagArg: sq}),
			InstrItem(Instr{Op: OpRET}),
		})
		v, err := m.CallFunction(name)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	f1, f2 := m.ConsFlonum(1.5), m.ConsFlonum(1.5)
	if v := run(SQEql, f1, f2); v.Tag != TagT {
		t.Error("eql flonums of equal value")
	}
	l1 := m.FromValue(mustRead("(1 2)"))
	l2 := m.FromValue(mustRead("(1 2)"))
	if v := run(SQEql, l1, l2); v.Tag != TagNil {
		t.Error("distinct lists are not eql")
	}
	if v := run(SQEqual, l1, l2); v.Tag != TagT {
		t.Error("equal lists")
	}
}

func TestPrintWordAndSQPrint(t *testing.T) {
	m := New()
	if got := m.PrintWord(FixnumWord(42)); got != "42" {
		t.Errorf("PrintWord = %s", got)
	}
	var buf strings.Builder
	m.Out = &buf
	lst := m.FromValue(mustRead("(a 1 2.5)"))
	addFn(t, m, "pr", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(lst)}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQPrint}),
		InstrItem(Instr{Op: OpRET}),
	})
	if _, err := m.CallFunction("pr"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(a 1 2.5)") {
		t.Errorf("printed %q", buf.String())
	}
}

func TestVectorAndArrayConversion(t *testing.T) {
	m := New()
	v := mustRead("#(1 (2 3) \"s\")")
	w := m.FromValue(v)
	back, err := m.ToValue(w)
	if err != nil || !sexp.Equal(v, back) {
		t.Errorf("vector round trip: %v %v", back, err)
	}
	arr := sexp.NewArray([]int{2, 2}, sexp.Fixnum(7))
	wa := m.FromValue(arr)
	ba, err := m.ToValue(wa)
	if err != nil {
		t.Fatal(err)
	}
	if !sexp.Equal(ba.(*sexp.Array).Items[3], sexp.Fixnum(7)) {
		t.Error("array round trip")
	}
	fn := Ptr(TagFunc, 0)
	m.Funcs = append(m.Funcs, FuncDesc{Name: "zork"})
	fv, err := m.ToValue(fn)
	if err != nil || !strings.Contains(sexp.Print(fv), "zork") {
		t.Errorf("function converts to placeholder: %v %v", fv, err)
	}
}

func TestSpecialWriteSQ(t *testing.T) {
	m := New()
	sym := m.InternSym("*w*")
	m.SetGlobal("*w*", FixnumWord(1))
	addFn(t, m, "w", 0, 0, []Item{
		InstrItem(Instr{Op: OpSPECBIND, TagArg: int64(sym), A: Imm(FixnumWord(10))}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQSpecFind, B: ImmInt(int64(sym))}),
		InstrItem(Instr{Op: OpMOV, A: R(RegB), B: Imm(FixnumWord(20))}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQSpecWrite}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQSpecReadSym, B: ImmInt(int64(sym))}),
		InstrItem(Instr{Op: OpSPECUNBIND, TagArg: 1}),
		InstrItem(Instr{Op: OpRET}),
	})
	v, err := m.CallFunction("w")
	if err != nil {
		t.Fatal(err)
	}
	if v.Int() != 20 {
		t.Errorf("special write/read = %s", v)
	}
	// Global untouched by the bound write.
	if m.Syms[sym].Value.Int() != 1 {
		t.Error("global cell should be unchanged")
	}
	// Write through the symbol (no binding) hits the global.
	addFn(t, m, "w2", 0, 0, []Item{
		InstrItem(Instr{Op: OpMOV, A: R(RegA), B: Imm(FixnumWord(77))}),
		InstrItem(Instr{Op: OpCALLSQ, TagArg: SQSpecWriteSym, B: ImmInt(int64(sym))}),
		InstrItem(Instr{Op: OpRET}),
	})
	if _, err := m.CallFunction("w2"); err != nil {
		t.Fatal(err)
	}
	if m.Syms[sym].Value.Int() != 77 {
		t.Error("global write failed")
	}
}

// mustRead parses one form, panicking on error — a test-table
// convenience; the production reader paths all return errors.
func mustRead(src string) sexp.Value {
	v, err := sexp.ReadOne(src)
	if err != nil {
		panic(err)
	}
	return v
}
