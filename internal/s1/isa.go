package s1

import (
	"fmt"
	"strings"
)

// Op is an opcode.
type Op uint8

// The instruction set. Arithmetic binary operations obey the S-1's
// "2½-address" encoding rule (validated by the assembler): with three
// operands, either the destination or the first source must be RTA or
// RTB.
const (
	OpNOP  Op = iota
	OpMOV     // MOV dst, src            dst := src
	OpMOVP    // MOVP tag dst, src       dst := pointer(tag, effaddr(src))
	OpTAG     // TAG dst, src            dst := raw(tag of src)

	// Integer arithmetic on raw bits.
	OpADD
	OpSUB
	OpMULT
	OpDIV
	OpASH // arithmetic shift: dst := src1 << src2 (negative = right)

	// Floating-point arithmetic on raw bits.
	OpFADD
	OpFSUB
	OpFMULT
	OpFDIV
	OpFMAX
	OpFMIN

	// Hardware transcendentals (§3: "there are single instructions for
	// SIN, COS, EXP, LOG, SQRT, ATAN"). Unary: dst, src. FSIN/FCOS take
	// their argument in cycles.
	OpFSIN
	OpFCOS
	OpFSQRT
	OpFATAN
	OpFEXP
	OpFLOG
	OpFABS
	OpFNEG

	// Conversions between the raw integer and raw float worlds.
	OpFLT // dst := float(int src)
	OpFIX // dst := int(trunc(float src))

	// Control transfer. Compare-and-jump forms take two data operands
	// and a label.
	OpJMP
	OpJEQ // integer compare
	OpJNE
	OpJLT
	OpJLE
	OpJGT
	OpJGE
	OpFJEQ // float compare
	OpFJNE
	OpFJLT
	OpFJLE
	OpFJGT
	OpFJGE
	OpJNIL  // jump if operand is NIL
	OpJNNIL // jump if operand is not NIL
	OpJTAG  // JTAG tag, src, label: jump if src has the tag
	OpJNTAG // jump if src does not have the tag
	OpJEQW  // full-word compare (tag+bits): eq test
	OpJNEW

	// Stack.
	OpPUSH
	OpPOP

	// Heap allocation: ALLOC dst, nwords (dst := raw base address).
	OpALLOC

	// Procedure linkage.
	OpCALL  // CALL fn, #nargs
	OpTCALL // tail call: reuse the current frame
	OpRET   // return A to the caller (pushed on their stack)
	OpCALLF // fast linkage (§4.4): CALL without argument-count checking
	OpTCALLF

	// Closures and environments.
	OpCLOSE // CLOSE dst, #fnIndex, env
	OpENV   // ENV dst, parent, #nslots

	// Dynamic binding (deep binding, §4.4).
	OpSPECBIND   // SPECBIND #sym, val
	OpSPECUNBIND // SPECUNBIND #n

	// Non-local exits.
	OpCATCH    // CATCH tag, handlerLabel: push catch frame
	OpENDCATCH // pop catch frame

	// System (runtime) routines, the SQ world of Table 4.
	OpCALLSQ // CALLSQ #routine

	OpHALT
)

var opNames = map[Op]string{
	OpNOP: "NOP", OpMOV: "MOV", OpMOVP: "MOVP", OpTAG: "TAG",
	OpADD: "ADD", OpSUB: "SUB", OpMULT: "MULT", OpDIV: "DIV", OpASH: "ASH",
	OpFADD: "FADD", OpFSUB: "FSUB", OpFMULT: "FMULT", OpFDIV: "FDIV",
	OpFMAX: "FMAX", OpFMIN: "FMIN",
	OpFSIN: "FSIN", OpFCOS: "FCOS", OpFSQRT: "FSQRT", OpFATAN: "FATAN",
	OpFEXP: "FEXP", OpFLOG: "FLOG", OpFABS: "FABS", OpFNEG: "FNEG",
	OpFLT: "FLT", OpFIX: "FIX",
	OpJMP: "JMPA", OpJEQ: "JEQ", OpJNE: "JNE", OpJLT: "JLT", OpJLE: "JLE",
	OpJGT: "JGT", OpJGE: "JGE",
	OpFJEQ: "FJEQ", OpFJNE: "FJNE", OpFJLT: "FJLT", OpFJLE: "FJLE",
	OpFJGT: "FJGT", OpFJGE: "FJGE",
	OpJNIL: "JNIL", OpJNNIL: "JNNIL", OpJTAG: "JTAG", OpJNTAG: "JNTAG",
	OpJEQW: "JEQW", OpJNEW: "JNEW",
	OpPUSH: "PUSH", OpPOP: "POP", OpALLOC: "ALLOC",
	OpCALL: "CALL", OpTCALL: "TCALL", OpRET: "RET",
	OpCALLF: "CALLF", OpTCALLF: "TCALLF",
	OpCLOSE: "CLOSE", OpENV: "ENV",
	OpSPECBIND: "SPECBIND", OpSPECUNBIND: "SPECUNBIND",
	OpCATCH: "CATCH", OpENDCATCH: "ENDCATCH",
	OpCALLSQ: "CALLSQ", OpHALT: "HALT",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("OP%d", uint8(o))
}

// cycleCost gives the simulator's per-opcode costs, scaled from the S-1
// design (fast integer ALU, multi-cycle float, expensive but single-
// instruction transcendentals, microcoded linkage). A dense array rather
// than a map: the decoder (decode.go) bakes the cost into each closure,
// and the old per-step map lookup was a measurable share of dispatch.
var cycleCost = [NumOps]int64{
	OpNOP: 1, OpMOV: 1, OpMOVP: 1, OpTAG: 1,
	OpADD: 1, OpSUB: 1, OpMULT: 3, OpDIV: 10, OpASH: 1,
	OpFADD: 2, OpFSUB: 2, OpFMULT: 4, OpFDIV: 8, OpFMAX: 2, OpFMIN: 2,
	OpFSIN: 20, OpFCOS: 20, OpFSQRT: 15, OpFATAN: 25, OpFEXP: 22, OpFLOG: 22,
	OpFABS: 1, OpFNEG: 1,
	OpFLT: 2, OpFIX: 2,
	OpJMP: 1, OpJEQ: 1, OpJNE: 1, OpJLT: 1, OpJLE: 1, OpJGT: 1, OpJGE: 1,
	OpFJEQ: 2, OpFJNE: 2, OpFJLT: 2, OpFJLE: 2, OpFJGT: 2, OpFJGE: 2,
	OpJNIL: 1, OpJNNIL: 1, OpJTAG: 1, OpJNTAG: 1, OpJEQW: 1, OpJNEW: 1,
	OpPUSH: 1, OpPOP: 1, OpALLOC: 6,
	OpCALL: 8, OpTCALL: 8, OpRET: 5, OpCALLF: 4, OpTCALLF: 4,
	OpCLOSE: 8, OpENV: 6,
	OpSPECBIND: 4, OpSPECUNBIND: 3,
	OpCATCH: 6, OpENDCATCH: 2,
	OpCALLSQ: 4, // plus the routine's own cost
	OpHALT:   1,
}

// Mode is an operand addressing mode.
type Mode uint8

// Addressing modes. MIdx is the S-1's indexed mode: effective address =
// Off + R[Base] + (R[Index] << Shift), with either register optional —
// rich enough to "fetch from a record a component that is a pointer to an
// array, fetch an index from a local variable, adjust the index for the
// element size, and fetch the selected array element" in one operand.
const (
	MNone  Mode = iota
	MReg        // register
	MImm        // immediate word
	MMem        // mem[R[Base] + Off]
	MAbs        // mem[Off]
	MIdx        // mem[Off + R[Base] + (R[Index] << Shift)]
	MLabel      // code label (jump/call target)
)

// NoReg marks an unused register field in MIdx operands.
const NoReg uint8 = 0xFF

// Operand is one instruction operand.
type Operand struct {
	Mode  Mode
	Base  uint8
	Index uint8
	Shift uint8
	Off   int64
	Imm   Word
	Label string
}

// Convenience constructors.

// R is a register operand.
func R(reg uint8) Operand { return Operand{Mode: MReg, Base: reg} }

// Imm is an immediate operand.
func Imm(w Word) Operand { return Operand{Mode: MImm, Imm: w} }

// ImmInt is an immediate raw integer.
func ImmInt(v int64) Operand { return Imm(RawInt(v)) }

// Mem is mem[reg+off].
func Mem(reg uint8, off int64) Operand { return Operand{Mode: MMem, Base: reg, Off: off} }

// Abs is mem[addr].
func Abs(addr int64) Operand { return Operand{Mode: MAbs, Off: addr} }

// Idx is the indexed mode mem[off + R[base] + (R[index]<<shift)]; pass
// NoReg to omit a register.
func Idx(base uint8, off int64, index uint8, shift uint8) Operand {
	return Operand{Mode: MIdx, Base: base, Off: off, Index: index, Shift: shift}
}

// Lbl is a label operand.
func Lbl(name string) Operand { return Operand{Mode: MLabel, Label: name} }

func (o Operand) isReg(reg uint8) bool { return o.Mode == MReg && o.Base == reg }

// IsRT reports an RTA/RTB register operand (the 2½-address rule).
func (o Operand) IsRT() bool { return o.isReg(RegRTA) || o.isReg(RegRTB) }

func (o Operand) String() string {
	switch o.Mode {
	case MNone:
		return ""
	case MReg:
		return RegName(o.Base)
	case MImm:
		return "(? " + o.Imm.String() + ")"
	case MMem:
		return fmt.Sprintf("(%s %d)", RegName(o.Base), o.Off)
	case MAbs:
		return fmt.Sprintf("(@ %d)", o.Off)
	case MIdx:
		s := fmt.Sprintf("(IDX %d", o.Off)
		if o.Base != NoReg {
			s += " " + RegName(o.Base)
		}
		if o.Index != NoReg {
			s += fmt.Sprintf(" %s<<%d", RegName(o.Index), o.Shift)
		}
		return s + ")"
	case MLabel:
		return o.Label
	}
	return "?"
}

// Instr is one instruction. TagArg carries the tag for MOVP/JTAG, the SQ
// routine index for CALLSQ, the argument count for CALL/TCALL, the slot
// count for ENV, the function index for CLOSE, and the symbol index for
// SPECBIND.
type Instr struct {
	Op      Op
	A, B, C Operand
	TagArg  int64
	Comment string

	// target is the resolved instruction index for label operands,
	// filled by the assembler.
	target int
}

func (i Instr) String() string {
	var b strings.Builder
	b.WriteString(i.Op.String())
	switch i.Op {
	case OpMOVP, OpJTAG, OpJNTAG:
		fmt.Fprintf(&b, " %s", Tag(i.TagArg))
	case OpCALLSQ:
		fmt.Fprintf(&b, " %s", SQName(int(i.TagArg)))
	case OpSPECBIND, OpSPECUNBIND, OpENV, OpCLOSE:
		fmt.Fprintf(&b, " #%d", i.TagArg)
	}
	for _, op := range []Operand{i.A, i.B, i.C} {
		if op.Mode != MNone {
			b.WriteString(" " + op.String())
		}
	}
	switch i.Op {
	case OpCALL, OpTCALL, OpCALLF, OpTCALLF:
		fmt.Fprintf(&b, " #%d", i.TagArg)
	}
	if i.Comment != "" {
		// Align comments for readability of listings.
		for b.Len() < 40 {
			b.WriteByte(' ')
		}
		b.WriteString("; " + i.Comment)
	}
	return b.String()
}

// Item is an element of an assembly listing: a label or an instruction.
type Item struct {
	Label string
	Instr *Instr
}

// LabelItem makes a label item.
func LabelItem(name string) Item { return Item{Label: name} }

// InstrItem makes an instruction item.
func InstrItem(i Instr) Item { return Item{Instr: &i} }
