package s1

import (
	"fmt"

	"repro/internal/sexp"
)

// Machine image export/import: the serializable form of a fully built
// machine — symbol table, function descriptors and name bindings, the
// assembled code with its resolved jump targets, the boxed-object table
// (as printed forms), the heap with its allocator block records and free
// lists, and the registers plus live stack extent (both are GC roots, so
// a restored machine must collect exactly like the one that was
// exported). Decoded closures are never serialized: LoadImage re-derives
// them from Code, the same way AddFunction does (DESIGN.md §14).
//
// The contract is byte-identical restoration: a LoadImage'd machine has
// the same ImageFingerprint and the same AllocContext as the machine
// ExportImage read, so subsequent compiles, durable-cache replays and
// collections evolve it exactly as they would have the original.

// ImageBlock is one allocator block record, in gcBlocks (allocation)
// order — sweep order is observable through free-list contents, so the
// order must survive the round trip.
type ImageBlock struct {
	Off  uint64
	Size int32
	Free bool
}

// ImageBinding is one name→function-descriptor binding. Bindings are
// serialized explicitly rather than rebuilt from Funcs because
// RebindFunction (cache hits) can point a name at an index other than
// its latest descriptor.
type ImageBinding struct {
	Name string
	Idx  int
}

// ImageFreeList is one big-block free list (sizes beyond the array
// buckets), in sorted-size order for deterministic encoding.
type ImageFreeList struct {
	Size int
	Offs []uint64
}

// Image is the machine's serializable state. All fields are exported
// value types, so gob round-trips it without loss — except Instr's
// unexported resolved jump target, which travels in the parallel Targets
// slice.
type Image struct {
	Syms     []SymCell
	Funcs    []FuncDesc
	Bindings []ImageBinding
	Code     []Instr
	// Targets holds Code[i]'s resolved jump target. Instr keeps it
	// unexported (gob would silently drop it and every branch would land
	// on instruction 0), so the image carries it out of band.
	Targets []int64
	// Boxes are the boxed objects' printed forms; FromValue only boxes
	// print/read-stable values (bignums, ratios, strings, characters),
	// the same round trip the durable cache uses for constants.
	Boxes []string
	Heap  []Word
	Regs  []Word
	// Stack is the live extent [StackBase, SP): leftover frames and
	// values are GC roots, so reachability must match the exported
	// machine exactly.
	Stack     []Word
	Blocks    []ImageBlock
	FreeSmall [][]uint64
	FreeBig   []ImageFreeList

	LiveWords   int64
	LiveSinceGC int64
	GCThreshold int64
}

// ExportImage captures the machine's serializable state. It refuses
// mid-activity machines: a capture in progress, dynamic bindings, catch
// frames or temp roots mean an export would bake transient execution
// state into the image.
func (m *Machine) ExportImage() (*Image, error) {
	switch {
	case m.cap != nil:
		return nil, fmt.Errorf("s1: cannot export image during compile capture")
	case len(m.bindStack) > 0:
		return nil, fmt.Errorf("s1: cannot export image with %d live dynamic bindings", len(m.bindStack))
	case len(m.catchStack) > 0:
		return nil, fmt.Errorf("s1: cannot export image with %d live catch frames", len(m.catchStack))
	case len(m.tempRoots) > 0:
		return nil, fmt.Errorf("s1: cannot export image with %d live temp roots", len(m.tempRoots))
	}
	img := &Image{
		Syms:        append([]SymCell(nil), m.Syms...),
		Funcs:       append([]FuncDesc(nil), m.Funcs...),
		Code:        append([]Instr(nil), m.Code...),
		Targets:     make([]int64, len(m.Code)),
		Boxes:       make([]string, len(m.Boxes)),
		Heap:        append([]Word(nil), m.heap...),
		Regs:        append([]Word(nil), m.regs[:]...),
		Blocks:      make([]ImageBlock, 0, len(m.gcBlocks)),
		FreeSmall:   make([][]uint64, gcSmallMax+1),
		LiveWords:   m.liveWords,
		LiveSinceGC: m.liveSinceGC,
		GCThreshold: m.gcThreshold,
	}
	for i := range m.Code {
		img.Targets[i] = int64(m.Code[i].target)
	}
	for i, b := range m.Boxes {
		img.Boxes[i] = sexp.Print(b)
	}
	if sp := m.regs[RegSP].Bits; IsStackAddr(sp) {
		img.Stack = append([]Word(nil), m.stack[:sp-StackBase]...)
	}
	for _, off := range m.gcBlocks {
		rec := m.gcRecs[off]
		img.Blocks = append(img.Blocks, ImageBlock{Off: off, Size: rec.size, Free: rec.free})
	}
	for n := 0; n <= gcSmallMax; n++ {
		if lst := m.freeSmall[n]; len(lst) > 0 {
			img.FreeSmall[n] = append([]uint64(nil), lst...)
		}
	}
	sizes := make([]int, 0, len(m.freeBig))
	for n := range m.freeBig {
		sizes = append(sizes, n)
	}
	for i := 1; i < len(sizes); i++ { // insertion sort; freeBig is tiny
		for j := i; j > 0 && sizes[j] < sizes[j-1]; j-- {
			sizes[j], sizes[j-1] = sizes[j-1], sizes[j]
		}
	}
	for _, n := range sizes {
		img.FreeBig = append(img.FreeBig, ImageFreeList{
			Size: n, Offs: append([]uint64(nil), m.freeBig[n]...),
		})
	}
	img.Bindings = make([]ImageBinding, 0, len(m.funcIdx))
	for name, idx := range m.funcIdx {
		img.Bindings = append(img.Bindings, ImageBinding{Name: name, Idx: idx})
	}
	for i := 1; i < len(img.Bindings); i++ {
		for j := i; j > 0 && img.Bindings[j].Name < img.Bindings[j-1].Name; j-- {
			img.Bindings[j], img.Bindings[j-1] = img.Bindings[j-1], img.Bindings[j]
		}
	}
	return img, nil
}

// validate rejects structurally inconsistent images before any of them
// reaches machine state. A failed load leaves the machine unusable, so
// callers (the snapshot layer) load into a throwaway machine and fall
// back to a cold compile on error.
func (img *Image) validate() error {
	if len(img.Targets) != len(img.Code) {
		return fmt.Errorf("s1: image targets (%d) do not parallel code (%d)", len(img.Targets), len(img.Code))
	}
	if len(img.Code) == 0 {
		return fmt.Errorf("s1: image has no code")
	}
	if len(img.Regs) != NumRegs {
		return fmt.Errorf("s1: image has %d registers, want %d", len(img.Regs), NumRegs)
	}
	if uint64(len(img.Stack)) > uint64(StackLimit-StackBase) {
		return fmt.Errorf("s1: image stack extent %d exceeds stack segment", len(img.Stack))
	}
	if len(img.FreeSmall) != gcSmallMax+1 {
		return fmt.Errorf("s1: image has %d small free lists, want %d", len(img.FreeSmall), gcSmallMax+1)
	}
	for i, f := range img.Funcs {
		if f.Entry < 0 || f.Entry > f.End || f.End > len(img.Code) {
			return fmt.Errorf("s1: image function %d (%s) spans [%d,%d) outside code (%d)",
				i, f.Name, f.Entry, f.End, len(img.Code))
		}
	}
	for _, b := range img.Bindings {
		if b.Idx < 0 || b.Idx >= len(img.Funcs) {
			return fmt.Errorf("s1: image binds %q to function %d of %d", b.Name, b.Idx, len(img.Funcs))
		}
	}
	for i, t := range img.Targets {
		if t < 0 || t > int64(len(img.Code)) {
			return fmt.Errorf("s1: image code %d jump target %d outside code (%d)", i, t, len(img.Code))
		}
	}
	for _, blk := range img.Blocks {
		if blk.Size <= 0 || blk.Off+uint64(blk.Size) > uint64(len(img.Heap)) {
			return fmt.Errorf("s1: image block %d size %d overruns heap (%d)", blk.Off, blk.Size, len(img.Heap))
		}
	}
	return nil
}

// LoadImage restores an exported image into a freshly created machine
// (New plus configuration: Out, limits, noFuse/tier/gc-stress toggles —
// nothing that adds code, symbols or heap). The decoded stream, fused
// overlay, entry set and tier tables are re-derived from the restored
// Code, honoring whatever execution configuration the machine carries.
func (m *Machine) LoadImage(img *Image) error {
	if len(m.Funcs) > 0 || len(m.Syms) > 0 || len(m.heap) > 0 || len(m.Code) > 1 || len(m.Boxes) > 0 {
		return fmt.Errorf("s1: LoadImage target machine is not fresh")
	}
	if err := img.validate(); err != nil {
		return err
	}
	boxes := make([]sexp.Value, len(img.Boxes))
	for i, s := range img.Boxes {
		v, err := sexp.ReadOne(s)
		if err != nil {
			return fmt.Errorf("s1: image box %d unreadable: %w", i, err)
		}
		boxes[i] = v
	}

	m.Code = append([]Instr(nil), img.Code...)
	for i := range m.Code {
		m.Code[i].target = int(img.Targets[i])
	}
	m.Funcs = append([]FuncDesc(nil), img.Funcs...)
	m.funcIdx = make(map[string]int, len(img.Bindings))
	m.entrySet = make(map[int]bool, len(img.Funcs))
	for _, b := range img.Bindings {
		m.funcIdx[b.Name] = b.Idx
	}
	for _, f := range img.Funcs {
		m.entrySet[f.Entry] = true
	}
	// Re-intern in order so symIdx and the incremental symHash (an
	// AllocContext input) match the exporting machine exactly.
	m.Syms = append([]SymCell(nil), img.Syms...)
	m.symIdx = make(map[string]int, len(img.Syms))
	m.symHash = 0
	for i := range m.Syms {
		m.symIdx[m.Syms[i].Name] = i
		m.foldSymHash(m.Syms[i].Name)
	}
	m.Boxes = boxes

	// Appending into the existing slices (rather than allocating fresh)
	// reuses an adopted arena's capacity; on a plain New machine they are
	// nil and this allocates as before. Generational state is never
	// serialized: every restored live block is tenured (old), the nursery
	// is empty and the card table clear. That is always safe — an all-old
	// heap just means the first minor collection finds nothing young to
	// sweep — and it keeps the image bytes and AllocContext identical to
	// the exporting machine's even though that machine may have had young
	// blocks in flight (snapshot byte-identity across re-exports depends
	// on this).
	m.heap = append(m.heap[:0], img.Heap...)
	if n := len(m.heap); n <= cap(m.gcRecs) {
		// Arena capacity: cleared at adoption, so reslicing is all-zero.
		m.gcRecs = m.gcRecs[:n]
	} else {
		m.gcRecs = make([]gcRec, n)
	}
	if cl := cardsFor(len(m.heap)); cl <= cap(m.cards) {
		m.cards = m.cards[:cl]
	} else {
		m.cards = make([]byte, cl)
	}
	m.youngBlocks = m.youngBlocks[:0]
	m.gcBlocks = m.gcBlocks[:0]
	for _, blk := range img.Blocks {
		m.gcRecs[blk.Off] = gcRec{size: blk.Size, free: blk.Free, old: !blk.Free}
		m.gcBlocks = append(m.gcBlocks, blk.Off)
	}
	for n := 0; n <= gcSmallMax; n++ {
		m.freeSmall[n] = nil
		if lst := img.FreeSmall[n]; len(lst) > 0 {
			m.freeSmall[n] = append([]uint64(nil), lst...)
		}
	}
	m.freeBig = nil
	for _, fl := range img.FreeBig {
		if len(fl.Offs) == 0 {
			continue // keep the pruned-empty-classes invariant
		}
		if m.freeBig == nil {
			m.freeBig = map[int][]uint64{}
		}
		m.freeBig[fl.Size] = append([]uint64(nil), fl.Offs...)
	}
	m.liveWords = img.LiveWords
	m.liveSinceGC = img.LiveSinceGC
	m.gcThreshold = img.GCThreshold

	copy(m.regs[:], img.Regs)
	copy(m.stack, img.Stack)
	m.pc, m.halted = 0, false

	// Derived execution state: decode (and fuse, unless noFuse) the whole
	// restored code vector, then bring the tier engine's tables up to
	// size — promoting everything when the machine is configured forced
	// hot, exactly as AddFunction would have.
	m.decBase, m.decFused, m.fuseGroups, m.tierHeads = nil, nil, nil, nil
	m.ensureDecoded()
	if t := m.tier; t != nil {
		t.ensure(len(m.Funcs))
		if t.threshold <= 0 {
			for i := range m.Funcs {
				t.promote(m, i)
			}
		}
	}
	if err := m.CheckHeapInvariants(); err != nil {
		return fmt.Errorf("s1: restored image fails heap invariants: %w", err)
	}
	return nil
}
