// Runtime benchmark suite for the S-1 simulator (the execution-side
// companion of the compile benchmarks in the repo root): the paper's four
// kernels — tail-recursive exptl, quadratic, the §7 testfn, and the
// Table-4 matrix-subscript kernel — plus a cons-heavy GC workload and a
// polymorphic-call kernel. Each kernel runs compiled on the simulator in
// three engine configurations — tiered (default: static fusion plus
// hot-function block lowering), -notier (static fusion only), and
// -nofuse -notier (plain pre-decoded dispatch) — reporting simulated
// steps/sec (instructions retired per wall-clock second — the
// interpreter-overhead metric BENCH_runtime.json tracks) and cycles/op.
// Every configuration gets the same warm-up past the default promotion
// threshold, so the timed region measures each engine's steady state.
//
// The external test package lets the suite drive the full compiler
// (core imports s1, so an in-package benchmark could not).
//
//	go test -bench BenchmarkRuntime -benchtime=1x ./internal/s1/
package s1_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/s1"
	"repro/internal/sexp"
)

// The paper kernels. exptl/quadratic/testfn are the sources used by the
// E3/E1/E7 experiments; matrix-subscript is the §6.1 triple loop whose
// inner statement is the Table-4 open-coded subscript code (the same
// kernel examples/matrix-subscript runs standalone).

const exptlSrc = `
(defun exptl (x n a)
  (cond ((zerop n) a)
        ((oddp n) (exptl (* x x) (floor n 2) (* a x)))
        (t (exptl (* x x) (floor n 2) a))))
(defun exptl-driver (k)
  (prog (i)
    (setq i 0)
   loop
    (if (>=& i k) (return nil) nil)
    (exptl 2 60 1)
    (setq i (+& i 1))
    (go loop)))`

const quadraticSrc = `
(defun quadratic (a b c)
  (let ((d (- (* b b) (* 4.0 a c))))
    (cond ((< d 0) '())
          ((= d 0) (list (/ (- b) (* 2.0 a))))
          (t (let ((2a (* 2.0 a)) (sd (sqrt d)))
               (list (/ (+ (- b) sd) 2a)
                     (/ (- (- b) sd) 2a)))))))
(defun quadratic-driver (k)
  (prog (i)
    (setq i 0)
   loop
    (if (>=& i k) (return nil) nil)
    (quadratic 1.0 -3.0 2.0)
    (quadratic 1.0 2.0 1.0)
    (quadratic 1.0 0.0 1.0)
    (quadratic 2.0 -7.0 3.0)
    (setq i (+& i 1))
    (go loop)))`

const testfnSrc = `
(defun frotz (a b c) nil)
(defun testfn (a &optional (b 3.0) (c a))
  (let ((d (+$f a b c)) (e (*$f a b c)))
    (let ((q (sin$f e)))
      (frotz d e (max$f d e))
      q)))
(defun testfn-driver (k)
  (prog (i)
    (setq i 0)
   loop
    (if (>=& i k) (return nil) nil)
    (testfn 0.5)
    (setq i (+& i 1))
    (go loop)))`

const matrixSubscriptSrc = `
(defun matrix-subscript ()
  (let ((n 16))
    (let ((i 0))
      (prog ()
       iloop
        (if (>=& i n) (return nil) nil)
        (let ((j 0))
          (prog ()
           jloop
            (if (>=& j n) (return nil) nil)
            (let ((k 0))
              (prog ()
               kloop
                (if (>=& k n) (return nil) nil)
                (aset$f zarr
                        (+$f (+$f (*$f (aref$f aarr i j) (aref$f barr j k))
                                  (aref$f carr i k))
                             econst)
                        i k)
                (setq k (+& k 1))
                (go kloop)))
            (setq j (+& j 1))
            (go jloop)))
        (setq i (+& i 1))
        (go iloop)))))`

// gc-cons models a server-shaped heap: *keep*, built once at load, is
// the long-lived resident structure (a prelude, interned data); each
// churn call then allocates only short-lived garbage on top of it. A
// full collection must re-mark the whole resident set every time it
// runs; a minor collection marks and sweeps only the young garbage, so
// the kernel measures exactly the cost asymmetry generational GC buys.
const gcConsSrc = `
(defun build (n)
  (prog (acc i)
    (setq acc nil i 0)
   loop
    (if (>=& i n) (return acc) nil)
    (setq acc (cons i acc))
    (setq i (+& i 1))
    (go loop)))
(defun churn (k n)
  (prog (i last)
    (setq i 0)
   loop
    (if (>=& i k) (return last) nil)
    (setq last (build n))
    (setq i (+& i 1))
    (go loop)))
(setq *keep* (build 20000))`

// poly-call stresses the tier's call inline caches: mono-step's call to
// step1 is compiled before step1 exists, so it late-binds through the
// symbol's function cell (a symbol-keyed cache site that rebinding must
// invalidate — see polyRebindSrc); poly-step's funcall dispatches
// whatever function value arrives in a register, and the driver
// alternates inc and dbl there, so the register-keyed cache site sees a
// genuinely polymorphic callee.
const polyCallSrc = `
(defun inc (x) (+& x 1))
(defun dbl (x) (+& x x))
(defun poly-step (f x) (funcall f x))
(defun mono-step (x) (step1 x))
(defun poly-driver (k)
  (prog (i acc)
    (setq i 0)
    (setq acc 1)
   loop
    (if (>=& i k) (return acc) nil)
    (setq acc (mono-step acc))
    (setq acc (poly-step (if (oddp i) (function inc) (function dbl)) acc))
    (setq i (+& i 1))
    (go loop)))
(defun step1 (x) (if (>=& x 4097) 1 (inc x)))`

// polyRebindSrc redefines step1 (same body, new function index) after
// warm-up: the symbol's function cell moves, so mono-step's warmed
// symbol-keyed inline cache goes stale and the timed region pays the
// invalidate-and-refill path.
const polyRebindSrc = `
(defun step1 (x) (if (>=& x 4097) 1 (inc x)))`

func matrixSubscriptConsts(n int) map[string]sexp.Value {
	mk := func() *sexp.FloatArray {
		fa := sexp.NewFloatArray([]int{n, n})
		for i := range fa.Data {
			fa.Data[i] = float64(i%7) * 0.25
		}
		return fa
	}
	return map[string]sexp.Value{
		"aarr": mk(), "barr": mk(), "carr": mk(),
		"zarr":   sexp.NewFloatArray([]int{n, n}),
		"econst": sexp.Flonum(1.5),
	}
}

// runtimeKernel describes one benchmark program: source, entry call, and
// optional system tweaks (constants, GC threshold).
type runtimeKernel struct {
	name   string
	src    string
	fn     string
	args   []sexp.Value
	consts map[string]sexp.Value
	gcAt   int64
	// rebind, when non-empty, is loaded after benchmark warm-up to move
	// a function's symbol cell under warmed call inline caches.
	rebind string
}

// runtimeKernels returns the suite. Allocation-heavy kernels get a GC
// threshold so they run in free-list steady state — without one the heap
// grows monotonically and the benchmark measures slice-growth copying
// instead of dispatch and allocator cost.
func runtimeKernels() []runtimeKernel {
	return []runtimeKernel{
		{name: "exptl", src: exptlSrc, fn: "exptl-driver",
			args: []sexp.Value{sexp.Fixnum(50)}},
		{name: "quadratic", src: quadraticSrc, fn: "quadratic-driver",
			args: []sexp.Value{sexp.Fixnum(50)}, gcAt: 8192},
		{name: "testfn", src: testfnSrc, fn: "testfn-driver",
			args: []sexp.Value{sexp.Fixnum(100)}, gcAt: 8192},
		{name: "matrix-subscript", src: matrixSubscriptSrc, fn: "matrix-subscript",
			consts: matrixSubscriptConsts(16), gcAt: 16384},
		{name: "gc-cons", src: gcConsSrc, fn: "churn",
			args: []sexp.Value{sexp.Fixnum(20), sexp.Fixnum(100)}, gcAt: 4096},
		{name: "poly-call", src: polyCallSrc, fn: "poly-driver",
			args: []sexp.Value{sexp.Fixnum(400)}, gcAt: 8192,
			rebind: polyRebindSrc},
	}
}

func benchKernel(b *testing.B, k runtimeKernel, opts core.Options) {
	b.Helper()
	opts.Constants = k.consts
	sys := core.NewSystem(opts)
	if k.gcAt > 0 {
		sys.Machine.SetGCThreshold(k.gcAt)
	}
	if err := sys.LoadString(k.src); err != nil {
		b.Fatal(err)
	}
	// Identical warm-up in every configuration: past the default
	// promotion threshold, so a tiered machine enters the timed region
	// with its hot functions already re-optimized, and the other
	// configurations have done the same work.
	for i := 0; i < s1.DefaultHotThreshold+1; i++ {
		if _, err := sys.Call(k.fn, k.args...); err != nil {
			b.Fatal(err)
		}
	}
	if k.rebind != "" {
		if err := sys.LoadString(k.rebind); err != nil {
			b.Fatal(err)
		}
	}
	sys.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Call(k.fn, k.args...); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := sys.Stats()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(st.Instrs)/secs, "steps/sec")
	}
	b.ReportMetric(float64(st.Cycles)/float64(b.N), "cycles/op")
	if k.gcAt > 0 {
		b.ReportMetric(float64(sys.Machine.GCMeters.Collections), "collections")
		b.ReportMetric(float64(sys.Machine.GCMeters.MinorCollections), "minors")
	}
}

// BenchmarkRuntime is the suite behind BENCH_runtime.json: the four paper
// kernels plus the GC and polymorphic-call workloads, in the tiered,
// -notier, and plain-dispatch configurations.
func BenchmarkRuntime(b *testing.B) {
	for _, k := range runtimeKernels() {
		k := k
		b.Run(k.name+"/tiered", func(b *testing.B) {
			benchKernel(b, k, core.Options{})
		})
		b.Run(k.name+"/notier", func(b *testing.B) {
			benchKernel(b, k, core.Options{NoTier: true})
		})
		b.Run(k.name+"/nofuse", func(b *testing.B) {
			benchKernel(b, k, core.Options{NoFuse: true, NoTier: true})
		})
	}
}
